// Package ecstore is a distributed block store that keeps data
// erasure-coded across storage nodes using the AJX protocol (Aguilera,
// Janakiraman, Xu — "Using Erasure Codes Efficiently for Storage in a
// Distributed System", DSN 2005).
//
// A k-of-n Reed-Solomon code spreads every stripe of k data blocks and
// n-k redundant blocks over n storage nodes, tolerating node crashes
// with far less space than replication. Reads cost one round trip to
// one node; writes cost a swap on the data node plus parity deltas on
// the n-k redundant nodes — no locks, no two-phase commit, and no
// old-version logs, even with concurrent writers. Node crashes are
// repaired online by a three-phase recovery procedure.
//
// # Quick start
//
//	store, _ := ecstore.New(ecstore.Options{
//		K: 3, N: 5, BlockSize: 1024,
//	})
//	defer store.Close()
//	_ = store.WriteBlock(ctx, 42, data)
//	got, _ := store.ReadBlock(ctx, 42)
//
// New runs everything in-process (development, testing, experiments).
// Connect speaks the same protocol to storaged servers over TCP
// (cmd/storaged). Both return the unified Store facade; see MIGRATION.md
// if you are coming from the removed NewLocalCluster/ConnectCluster
// API.
package ecstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"ecstore/internal/blockstore"
	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/readcache"
	"ecstore/internal/resilience"
	"ecstore/internal/rpc"
	"ecstore/internal/smallwrite"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
	"ecstore/internal/tier"
	"ecstore/internal/transport"
)

// UpdateMode selects how writes update the redundant nodes.
type UpdateMode = resilience.UpdateMode

// Update modes. Parallel gives 2-round-trip writes; Serial tolerates
// more simultaneous failures (Theorem 1 vs 2); Hybrid interpolates;
// Broadcast sends one unmultiplied delta to all redundant nodes.
const (
	Serial    = resilience.Serial
	Parallel  = resilience.Parallel
	Hybrid    = resilience.Hybrid
	Broadcast = resilience.Broadcast
)

// Errors re-exported from the protocol core.
var (
	// ErrUnrecoverable: too many failures; the stripe cannot be rebuilt.
	ErrUnrecoverable = core.ErrUnrecoverable
	// ErrWriteExhausted: a write kept being interrupted and gave up.
	ErrWriteExhausted = core.ErrWriteExhausted
)

// Options configures a Store (and the deprecated Cluster facade). The
// single struct covers both shapes of deployment: with Groups == 1
// (the default) the store is one stripe group exactly as before; with
// Groups > 1 the flat address space is split into group extents placed
// over a site pool by rendezvous hashing.
type Options struct {
	// K is the number of data blocks per stripe; N the total including
	// redundancy. Required: 2 <= K < N, and N-K <= K for the
	// resiliency theorems to apply.
	K, N int
	// BlockSize is the fixed block size in bytes. Required.
	BlockSize int
	// Mode selects the redundant-update strategy. Default: Parallel.
	Mode UpdateMode
	// TP is the number of simultaneous client crashes to tolerate
	// (affects recovery slack and hybrid grouping). Default 0.
	TP int
	// LockLease expires recovery locks whose holder vanished, for
	// deployments without an external failure detector. Local clusters
	// default to 5 seconds; 0 keeps the default, negative disables.
	LockLease time.Duration
	// DataDir, when set on a local single-group store, persists every
	// node's blocks under DataDir/node-<i>. Reopening a cluster on the
	// same directory restores the data; because a restarting deployment
	// provably missed no writes (every node restarts together), blocks
	// are served as valid.
	DataDir string

	// Groups is the number of stripe groups. Default 1 (a single group,
	// unbounded address space). With Groups > 1 the address space is
	// bounded at Groups*BlocksPerGroup blocks.
	Groups int
	// BlocksPerGroup sizes each group's extent of the flat address
	// space (must be a multiple of K). Defaults to K << 20. Only
	// meaningful with Groups > 1.
	BlocksPerGroup uint64
	// ClientID identifies this store's protocol clients. Every
	// concurrent writer should use its own ID. Defaults to 1.
	ClientID uint32
	// Sites is the pool size of a local multi-group store. Defaults to
	// N; must be >= N.
	Sites int
	// SiteWeights optionally skews placement toward bigger local sites
	// (len must equal Sites).
	SiteWeights []float64

	// EnableRepair starts the background repair/rebalance scheduler on
	// a local sharded store (Groups > 1 or Sites > 0): damaged stripe
	// groups queue by survivor count — a group one shard from data
	// loss repairs before a group missing one of many — fed by failure
	// reports and a periodic sweep, and pool membership changes enqueue
	// rebalance moves toward the rendezvous-hash ideal placement.
	EnableRepair bool
	// RepairBandwidth caps background repair traffic in bytes per
	// second through a token-bucket governor; 0 means unlimited.
	RepairBandwidth int64
	// RepairBurst is the governor's burst allowance in bytes; 0
	// defaults to one second of RepairBandwidth.
	RepairBurst int64
	// RepairInterval paces the scheduler's inspection sweep. Default
	// 30 seconds.
	RepairInterval time.Duration

	// HedgeAfter enables tail-tolerant hedged reads: a read the data
	// node has not answered after this minimum delay (or the site's
	// adaptive, latency-tracked delay, whichever is larger) races a
	// reconstruction from k survivors and takes whichever finishes
	// first. It also turns on per-site health tracking: slot ranking
	// away from gray sites and a per-site circuit breaker. 0 (the
	// default) disables hedging and health tracking.
	HedgeAfter time.Duration
	// HedgeBudget caps the steady-state hedge rate in hedges per read
	// (0.1 = at most ~10% of reads hedge). 0 means 0.1 when hedging
	// is enabled.
	HedgeBudget float64
	// CallDeadline bounds every RPC issued by a TCP deployment and is
	// propagated to storaged inside each request frame, so servers
	// shed queued work whose deadline already expired instead of
	// wasting effort on answers nobody is waiting for. 0 adds none.
	CallDeadline time.Duration
	// GrayRetireAfter, when > 0, retires a site whose latency stays
	// above the gray threshold for this long, exactly as if it had
	// crashed: its groups remap and repair rebuilds the moved shards.
	// Local sharded stores only (TCP pools cannot provision
	// replacement shards). Implies health tracking like HedgeAfter.
	GrayRetireAfter time.Duration

	// SmallWriteTier enables the staged small-write tier: sub-block
	// WriteAt spans are absorbed into a group-committed, erasure-coded
	// staging segment (durable on acknowledge) instead of paying a
	// read-modify-write swap round each, and merge into their home
	// blocks on Flush or when the segment fills. Requires ClientID in
	// [1,16] — each client identity owns a disjoint staging extent. On
	// a bounded store the staging region is carved off the top of the
	// capacity, so Capacity() shrinks accordingly.
	SmallWriteTier bool
	// SmallWriteStaging is the per-client staging segment length in
	// blocks. Default 256. Advanced; only meaningful with
	// SmallWriteTier.
	SmallWriteStaging uint64
	// CacheBytes bounds the client-side hot-read cache in payload
	// bytes; 0 (the default) disables it. The cache is invalidated by
	// the write identifiers that flow on every protocol reply — no
	// TTLs — and fills only from failure-free direct reads, which keeps
	// cached reads regular-register safe (see DESIGN.md section 17).
	CacheBytes int64

	// MaxInFlight bounds the bulk-I/O pipeline window in stripes: how
	// many stripes of a large ReadAt/WriteAt span are in flight at
	// once. Default 16; 1 degrades to the strictly sequential path.
	MaxInFlight int
	// ReadAhead is the streaming Reader's prefetch depth in stripes.
	// Defaults to MaxInFlight.
	ReadAhead int

	// Stripes spreads each storaged endpoint's calls over this many
	// pipelined TCP connections (request ids hashed across them), so
	// bulk transfers are not capped by a single flow's bandwidth
	// ceiling. TCP deployments only. Default 1.
	Stripes int
	// Nagle re-enables Nagle's algorithm on TCP connections. The
	// default (false) sets TCP_NODELAY, which the request/response
	// protocol wants: every frame is a complete message.
	Nagle bool
	// SockReadBuffer and SockWriteBuffer set SO_RCVBUF / SO_SNDBUF on
	// every TCP connection, in bytes. 0 keeps the kernel defaults.
	SockReadBuffer  int
	SockWriteBuffer int

	// Obs optionally collects metrics from every layer the store
	// touches — protocol clients, the bulk engine, the RPC stubs of a
	// TCP cluster, and the persistent block stores of a local one. Nil
	// (the default) disables instrumentation entirely.
	Obs *obs.Registry
}

func (o *Options) normalize() error {
	if o.K < 1 || o.N <= o.K {
		return fmt.Errorf("ecstore: invalid code K=%d N=%d", o.K, o.N)
	}
	if o.BlockSize <= 0 {
		return fmt.Errorf("ecstore: BlockSize must be positive, got %d", o.BlockSize)
	}
	if o.Mode == 0 {
		o.Mode = Parallel
	}
	if o.LockLease == 0 {
		o.LockLease = 5 * time.Second
	}
	if o.LockLease < 0 {
		o.LockLease = 0
	}
	if o.Groups == 0 {
		o.Groups = 1
	}
	if o.Groups < 1 {
		return fmt.Errorf("ecstore: Groups must be >= 1, got %d", o.Groups)
	}
	if o.ClientID == 0 {
		o.ClientID = 1
	}
	if o.Stripes == 0 {
		o.Stripes = 1
	}
	if o.Stripes < 1 {
		return fmt.Errorf("ecstore: Stripes must be >= 1, got %d", o.Stripes)
	}
	return o.checkTierClientID(o.ClientID)
}

// checkTierClientID rejects client identities that cannot own a
// staging slot. The mapping is clientID-1 with no wrapping: a modulo
// would let, say, ID 17 silently share slot 0 with ID 1, and the
// construction-time Salvage would replay and tombstone the live
// sibling client's active staging segment.
func (o *Options) checkTierClientID(clientID uint32) error {
	if o.SmallWriteTier && (clientID < 1 || clientID > tier.StagingSlots) {
		return fmt.Errorf("ecstore: SmallWriteTier requires ClientID in [1,%d], got %d",
			tier.StagingSlots, clientID)
	}
	return nil
}

// tierOptions maps the facade knobs to the tier layer's options for
// one client identity (validated by checkTierClientID when the tier is
// enabled) over the given stamped base. cache, when non-nil, is the
// cluster-wide shared hot-read cache (all client handles of one
// cluster must form one coherence domain).
func (o *Options) tierOptions(base tier.Stamped, clientID uint32, cache *readcache.Cache) tier.Options {
	slot := 0
	if o.SmallWriteTier {
		slot = int(clientID) - 1
	}
	return tier.Options{
		Base:          base,
		SmallWrite:    o.SmallWriteTier,
		StagingBlocks: o.SmallWriteStaging,
		ClientSlot:    slot,
		CacheBytes:    o.CacheBytes,
		Cache:         cache,
		MaxInFlight:   o.MaxInFlight,
		ReadAhead:     o.ReadAhead,
		Obs:           o.Obs,
	}
}

// rpcDialOpts maps the facade's transport knobs to rpc.Dial options.
func (o *Options) rpcDialOpts(m *rpc.Metrics) []rpc.Option {
	return []rpc.Option{
		rpc.WithMetrics(m),
		rpc.WithCallTimeout(o.CallDeadline),
		rpc.WithStripes(o.Stripes),
		rpc.WithNoDelay(!o.Nagle),
		rpc.WithSocketBuffers(o.SockReadBuffer, o.SockWriteBuffer),
	}
}

// hedgePolicy maps the facade's hedge knobs to the core policy.
func (o *Options) hedgePolicy() core.HedgePolicy {
	return core.HedgePolicy{After: o.HedgeAfter, Budget: o.HedgeBudget}
}

// cluster is a handle on a deployment: an erasure code, a set of
// storage nodes, and a directory mapping stripes to nodes. The Store
// facade (New/Connect) wraps it; tests reach it for multi-identity
// clients.
type cluster struct {
	opts   Options
	code   *erasure.Code
	layout stripe.Layout
	dir    *directory.Service

	local []*storage.Node // non-nil for local clusters
	conns []*rpc.Client   // non-nil for TCP clusters
	rpcm  *rpc.Metrics    // shared by all TCP stubs (nil when Obs unset)
	gen   int

	// cache is the hot-read cache shared by every Volume of this
	// cluster (nil when Options.CacheBytes is 0): one coherence domain
	// per process, so one client's write installs/invalidations are
	// visible to every other handle's reads.
	cache *readcache.Cache
}

// newCache builds the cluster-wide shared read cache, or nil when
// disabled.
func (o *Options) newCache() *readcache.Cache {
	if o.CacheBytes <= 0 {
		return nil
	}
	return readcache.New(o.CacheBytes, o.Obs)
}

// newLocalCluster builds an in-process cluster with N in-memory
// storage nodes. Crashed nodes are automatically replaced by fresh
// INIT nodes, which recovery then repopulates.
func newLocalCluster(opts Options) (*cluster, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout := stripe.MustLayout(opts.K, opts.N)
	c := &cluster{opts: opts, code: code, layout: layout, cache: opts.newCache()}

	handles := make([]proto.StorageNode, opts.N)
	c.local = make([]*storage.Node, opts.N)
	for i := 0; i < opts.N; i++ {
		nodeOpts := storage.Options{
			ID:        fmt.Sprintf("local-%d", i),
			BlockSize: opts.BlockSize,
			Code:      code,
			LockLease: opts.LockLease,
		}
		if opts.DataDir != "" {
			store, _, err := blockstore.OpenFile(blockstore.FileOptions{
				Dir:            filepath.Join(opts.DataDir, fmt.Sprintf("node-%d", i)),
				BlockSize:      opts.BlockSize,
				WriteBackLimit: 64,
				Obs:            opts.Obs,
			})
			if err != nil {
				return nil, err
			}
			nodeOpts.Store = store
			nodeOpts.TrustPersisted = true
		}
		node, err := storage.New(nodeOpts)
		if err != nil {
			return nil, err
		}
		c.local[i] = node
		handles[i] = node
	}
	dir, err := directory.New(layout, handles, c.replaceLocal)
	if err != nil {
		return nil, err
	}
	dir.Instrument(opts.Obs)
	c.dir = dir
	return c, nil
}

func (c *cluster) replaceLocal(phys int) proto.StorageNode {
	c.gen++
	node := storage.MustNew(storage.Options{
		ID:          fmt.Sprintf("local-%d.%d", phys, c.gen),
		BlockSize:   c.opts.BlockSize,
		Code:        c.code,
		Replacement: true,
		LockLease:   c.opts.LockLease,
		GarbageSeed: int64(phys)<<16 | int64(c.gen),
	})
	c.local[phys] = node
	return node
}

// connectCluster dials N storaged servers (cmd/storaged) over TCP.
// addrs must have exactly N entries, in slot order. Failed nodes are
// not replaced automatically: start a replacement storaged with
// -replacement and install it with Volume.ReplaceNode.
func connectCluster(opts Options, addrs []string) (*cluster, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(addrs) != opts.N {
		return nil, fmt.Errorf("ecstore: %d addresses for N=%d nodes", len(addrs), opts.N)
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout := stripe.MustLayout(opts.K, opts.N)
	c := &cluster{opts: opts, code: code, layout: layout, cache: opts.newCache()}
	if opts.Obs != nil {
		c.rpcm = rpc.NewMetrics(opts.Obs, "rpc")
	}
	handles := make([]proto.StorageNode, opts.N)
	for i, addr := range addrs {
		cl := rpc.Dial(addr, opts.rpcDialOpts(c.rpcm)...)
		c.conns = append(c.conns, cl)
		handles[i] = cl
	}
	dir, err := directory.New(layout, handles, nil)
	if err != nil {
		return nil, err
	}
	dir.Instrument(opts.Obs)
	c.dir = dir
	return c, nil
}

// ReplaceNode points physical node index phys at a replacement
// storaged server (TCP clusters).
func (c *cluster) ReplaceNode(phys int, addr string) error {
	if phys < 0 || phys >= c.opts.N {
		return fmt.Errorf("ecstore: node index %d out of range [0,%d)", phys, c.opts.N)
	}
	cl := rpc.Dial(addr, c.opts.rpcDialOpts(c.rpcm)...)
	c.conns = append(c.conns, cl)
	c.dir.ReplaceNode(phys, cl)
	return nil
}

// CrashNode fail-stops a local node (testing and demos). It returns an
// error for TCP clusters — crash those by stopping the server.
func (c *cluster) CrashNode(phys int) error {
	if c.local == nil {
		return errors.New("ecstore: CrashNode only applies to local clusters")
	}
	if phys < 0 || phys >= len(c.local) {
		return fmt.Errorf("ecstore: node index %d out of range", phys)
	}
	c.local[phys].Crash()
	return nil
}

// Close releases TCP connections and flushes/close-marks any
// persistent local stores.
func (c *cluster) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, node := range c.local {
		if err := node.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BlockSize returns the configured block size.
func (c *cluster) BlockSize() int { return c.opts.BlockSize }

// Code returns (k, n).
func (c *cluster) Code() (k, n int) { return c.opts.K, c.opts.N }

// Volume opens a client handle with the given non-zero client ID.
// Every concurrent writer (process or thread pool) should use its own
// ID; IDs are embedded in write identifiers for ordering and recovery.
// With SmallWriteTier enabled the ID must lie in [1, tier.StagingSlots]
// — it selects the client's staging extent, and an out-of-range ID must
// never silently alias another client's slot.
func (c *cluster) Volume(clientID uint32) (*Volume, error) {
	if err := c.opts.checkTierClientID(clientID); err != nil {
		return nil, err
	}
	cl, err := core.NewClient(core.Config{
		ID:        proto.ClientID(clientID),
		Code:      c.code,
		Resolver:  c.dir,
		BlockSize: c.opts.BlockSize,
		Mode:      c.opts.Mode,
		TP:        c.opts.TP,
		Multicast: transport.Parallel{},
		Hedge:     c.opts.hedgePolicy(),
		Obs:       c.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	v := &Volume{cluster: c, cl: cl}
	layer, err := tier.NewLayer(c.opts.tierOptions((*clusterTarget)(v), clientID, c.cache))
	if err != nil {
		return nil, err
	}
	v.layer = layer
	return v, nil
}

// Volume is a logical-block view of the cluster for one client
// identity. Applications address flat logical blocks; striping,
// rotation, and the erasure code are hidden (Section 2's design goal).
// All I/O flows through the tier layer: the hot-read cache and the
// staged small-write tier (when enabled by Options) sit between these
// methods and the protocol client. Volumes are safe for concurrent use
// and satisfy Store.
type Volume struct {
	cluster *cluster
	cl      *core.Client
	layer   *tier.Layer
	owns    bool // Close also closes the cluster (Store built via New/Connect)
}

// BlockSize returns the volume's block size in bytes.
func (v *Volume) BlockSize() int { return v.cluster.opts.BlockSize }

// Code returns the erasure code's (k, n).
func (v *Volume) Code() (k, n int) { return v.cluster.Code() }

// NewClient opens a sibling volume over the same cluster under a
// different client identity. Every concurrent writer must use its own
// non-zero ID (IDs are embedded in write timestamps for ordering and
// recovery); with SmallWriteTier enabled the ID also selects the
// client's staging extent, so it must stay within [1, 16]. The sibling
// has its own cache and staging segment and must be Closed, but closing
// it never shuts down the shared cluster — that remains the original
// volume's job.
func (v *Volume) NewClient(clientID uint32) (*Volume, error) {
	return v.cluster.Volume(clientID)
}

// Capacity returns 0: a single-group volume's flat address space is
// unbounded (blocks exist when written; unwritten blocks read as
// zeros).
func (v *Volume) Capacity() uint64 { return 0 }

// Close flushes any staged small writes, then releases the volume. A
// volume obtained from New or Connect owns its cluster and shuts it
// down; one obtained from a shared cluster leaves it to its owner.
func (v *Volume) Close() error {
	err := v.layer.Close()
	if v.owns {
		if cerr := v.cluster.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadBlock reads one logical block. Unwritten blocks read as zeros.
// With CacheBytes set, hot blocks are served from the client-side
// cache; staged small writes are patched over the result either way.
func (v *Volume) ReadBlock(ctx context.Context, logical uint64) ([]byte, error) {
	return v.layer.ReadBlock(ctx, logical)
}

// WriteBlock writes one logical block. data must be exactly BlockSize
// bytes.
func (v *Volume) WriteBlock(ctx context.Context, logical uint64, data []byte) error {
	return v.layer.WriteBlock(ctx, logical, data)
}

// ReadAt reads len(p) bytes at byte offset off, spanning blocks as
// needed. Blocks are fetched concurrently under the bulk engine's
// pipeline window, which is what makes large sequential reads pipeline
// across storage nodes the way Section 3.11 intends. On failure the
// count is the contiguous prefix that definitely succeeded.
func (v *Volume) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.layer.ReadAt(ctx, p, off)
}

// WriteAt writes p at byte offset off, spanning blocks as needed.
// Stripe-aligned runs go through the batched stripe write (Section
// 3.11's sequential optimization: k swaps plus one combined parity
// delta per redundant node) with up to MaxInFlight stripes in flight
// and their same-node deltas coalesced into combined RPCs. Unaligned
// head and tail blocks are read-modify-written; the read-modify-write
// is not atomic with respect to concurrent writers of the same block.
// On failure the count is the length of the longest prefix known
// written. With SmallWriteTier enabled, sub-block head and tail spans
// are absorbed by the staged small-write tier instead of paying a
// read-modify-write swap round each.
func (v *Volume) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.layer.WriteAt(ctx, p, off)
}

// Flush merges every staged small write into its home block and resets
// the staging segment: a barrier after which all acknowledged bytes
// are in their final erasure-coded blocks. A no-op without
// SmallWriteTier.
func (v *Volume) Flush(ctx context.Context) error {
	return v.layer.Flush(ctx)
}

// WriteStripeBlocks writes the k logical blocks of one stripe (those
// with logical indices stripe*k .. stripe*k+k-1) in a single batched
// operation.
func (v *Volume) WriteStripeBlocks(ctx context.Context, stripe uint64, values [][]byte) error {
	k := uint64(v.cluster.opts.K)
	errs, _ := v.layer.WriteStripes(ctx, []bulk.StripeWrite{{Addr: stripe * k, Values: values}})
	return errs[0]
}

// Recover runs the recovery procedure for the stripe containing the
// given logical block. Normally recovery is triggered automatically
// when reads or writes stumble on a failure.
func (v *Volume) Recover(ctx context.Context, logical uint64) error {
	s, _ := v.cluster.layout.Locate(logical)
	err := v.cl.Recover(ctx, s)
	if errors.Is(err, core.ErrRecoveryBusy) {
		return nil // someone else is already repairing it
	}
	return err
}

// CollectGarbage runs one pass of the two-phase GC protocol over every
// stripe this volume has touched, trimming write-id lists at the
// storage nodes. Run it periodically; two consecutive passes fully
// retire completed writes.
func (v *Volume) CollectGarbage(ctx context.Context) error {
	_, err := v.cl.CollectGarbage(ctx)
	return err
}

// Monitor probes every touched stripe for partial writes older than
// maxAge and for crashed nodes, triggering recovery where needed
// (Section 3.10). It returns the number of stripes recovered.
func (v *Volume) Monitor(ctx context.Context, maxAge time.Duration) (int, error) {
	report, err := v.cl.MonitorTracked(ctx, maxAge)
	if err != nil {
		return 0, err
	}
	return len(report.Recovered), nil
}

// Scrub audits every stripe this volume has touched against the
// erasure code, repairing localizable damage (missing blocks, single
// silent corruptions). It returns counts of clean, busy (skipped, try
// again later), and repaired stripes.
func (v *Volume) Scrub(ctx context.Context) (clean, busy, repaired int, err error) {
	return v.cl.ScrubTracked(ctx)
}

// Stats exposes protocol event counters (reads, writes, recoveries...).
func (v *Volume) Stats() *core.ClientStats { return v.cl.Stats() }

// CacheStats exposes the hot-read cache's counters, or nil when
// Options.CacheBytes was 0.
func (v *Volume) CacheStats() *readcache.Stats { return v.layer.CacheStats() }

// TierStats exposes the small-write tier's counters, or nil when
// Options.SmallWriteTier was off.
func (v *Volume) TierStats() *smallwrite.Stats { return v.layer.TierStats() }

// CrashNode fail-stops physical node phys (testing and demos). Local
// stores only; crash a TCP deployment by stopping its server.
func (v *Volume) CrashNode(phys int) error { return v.cluster.CrashNode(phys) }

// ReplaceNode points physical node index phys at a replacement
// storaged server (TCP deployments).
func (v *Volume) ReplaceNode(phys int, addr string) error {
	return v.cluster.ReplaceNode(phys, addr)
}

// Reader returns an io.Reader streaming nBytes from byte offset off,
// prefetching ReadAhead stripes ahead of the consumer. nBytes must be
// >= 0 on this unbounded volume.
func (v *Volume) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return v.layer.Reader(ctx, off, nBytes)
}

// clusterTarget adapts a single-group Volume to bulk.Target: the whole
// logical address space is one group, stripe s holds logical blocks
// s*k .. s*k+k-1.
type clusterTarget Volume

func (t *clusterTarget) BlockSize() int      { return t.cluster.opts.BlockSize }
func (t *clusterTarget) StripeK() int        { return t.cluster.opts.K }
func (t *clusterTarget) GroupBlocks() uint64 { return 0 }
func (t *clusterTarget) Capacity() uint64    { return 0 }

func (t *clusterTarget) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	s, slot := t.cluster.layout.Locate(addr)
	return t.cl.ReadBlock(ctx, s, slot)
}

func (t *clusterTarget) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	s, slot := t.cluster.layout.Locate(addr)
	return t.cl.WriteBlock(ctx, s, slot, data)
}

func (t *clusterTarget) ReadBlockStamped(ctx context.Context, addr uint64) ([]byte, core.ReadStamp, error) {
	s, slot := t.cluster.layout.Locate(addr)
	return t.cl.ReadBlockStamped(ctx, s, slot)
}

func (t *clusterTarget) WriteBlockStamped(ctx context.Context, addr uint64, data []byte) (proto.TID, proto.TID, error) {
	s, slot := t.cluster.layout.Locate(addr)
	return t.cl.WriteBlockStamped(ctx, s, slot, data)
}

func (t *clusterTarget) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	v := (*Volume)(t)
	k := uint64(v.cluster.opts.K)
	sw := make([]core.StripeWrite, len(writes))
	for i, w := range writes {
		sw[i] = core.StripeWrite{Stripe: w.Addr / k, Values: w.Values}
	}
	errs, stats := v.cl.WriteStripes(ctx, sw)
	return errs, bulk.WriteStats{BatchCalls: stats.BatchCalls, BatchRPCs: stats.BatchRPCs}
}

var _ tier.Stamped = (*clusterTarget)(nil)

// Package ecstore is a distributed block store that keeps data
// erasure-coded across storage nodes using the AJX protocol (Aguilera,
// Janakiraman, Xu — "Using Erasure Codes Efficiently for Storage in a
// Distributed System", DSN 2005).
//
// A k-of-n Reed-Solomon code spreads every stripe of k data blocks and
// n-k redundant blocks over n storage nodes, tolerating node crashes
// with far less space than replication. Reads cost one round trip to
// one node; writes cost a swap on the data node plus parity deltas on
// the n-k redundant nodes — no locks, no two-phase commit, and no
// old-version logs, even with concurrent writers. Node crashes are
// repaired online by a three-phase recovery procedure.
//
// # Quick start
//
//	cluster, _ := ecstore.NewLocalCluster(ecstore.Options{
//		K: 3, N: 5, BlockSize: 1024,
//	})
//	vol, _ := cluster.Volume(1)
//	_ = vol.WriteBlock(ctx, 42, data)
//	got, _ := vol.ReadBlock(ctx, 42)
//
// NewLocalCluster runs everything in-process (development, testing,
// experiments). ConnectCluster speaks the same protocol to storaged
// servers over TCP (cmd/storaged).
package ecstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"ecstore/internal/blockstore"
	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
	"ecstore/internal/transport"
)

// UpdateMode selects how writes update the redundant nodes.
type UpdateMode = resilience.UpdateMode

// Update modes. Parallel gives 2-round-trip writes; Serial tolerates
// more simultaneous failures (Theorem 1 vs 2); Hybrid interpolates;
// Broadcast sends one unmultiplied delta to all redundant nodes.
const (
	Serial    = resilience.Serial
	Parallel  = resilience.Parallel
	Hybrid    = resilience.Hybrid
	Broadcast = resilience.Broadcast
)

// Errors re-exported from the protocol core.
var (
	// ErrUnrecoverable: too many failures; the stripe cannot be rebuilt.
	ErrUnrecoverable = core.ErrUnrecoverable
	// ErrWriteExhausted: a write kept being interrupted and gave up.
	ErrWriteExhausted = core.ErrWriteExhausted
)

// Options configures a cluster.
type Options struct {
	// K is the number of data blocks per stripe; N the total including
	// redundancy. Required: 2 <= K < N, and N-K <= K for the
	// resiliency theorems to apply.
	K, N int
	// BlockSize is the fixed block size in bytes. Required.
	BlockSize int
	// Mode selects the redundant-update strategy. Default: Parallel.
	Mode UpdateMode
	// TP is the number of simultaneous client crashes to tolerate
	// (affects recovery slack and hybrid grouping). Default 0.
	TP int
	// LockLease expires recovery locks whose holder vanished, for
	// deployments without an external failure detector. Local clusters
	// default to 5 seconds; 0 keeps the default, negative disables.
	LockLease time.Duration
	// DataDir, when set on a local cluster, persists every node's
	// blocks under DataDir/node-<i>. Reopening a cluster on the same
	// directory restores the data; because a restarting deployment
	// provably missed no writes (every node restarts together), blocks
	// are served as valid.
	DataDir string
	// Obs optionally collects metrics from every layer the cluster
	// touches — protocol clients, the RPC stubs of a TCP cluster, and
	// the persistent block stores of a local one. Nil (the default)
	// disables instrumentation entirely.
	Obs *obs.Registry
}

func (o *Options) normalize() error {
	if o.K < 1 || o.N <= o.K {
		return fmt.Errorf("ecstore: invalid code K=%d N=%d", o.K, o.N)
	}
	if o.BlockSize <= 0 {
		return fmt.Errorf("ecstore: BlockSize must be positive, got %d", o.BlockSize)
	}
	if o.Mode == 0 {
		o.Mode = Parallel
	}
	if o.LockLease == 0 {
		o.LockLease = 5 * time.Second
	}
	if o.LockLease < 0 {
		o.LockLease = 0
	}
	return nil
}

// Cluster is a handle on a deployment: an erasure code, a set of
// storage nodes, and a directory mapping stripes to nodes. Obtain
// Volumes from it to do I/O.
type Cluster struct {
	opts   Options
	code   *erasure.Code
	layout stripe.Layout
	dir    *directory.Service

	local []*storage.Node // non-nil for local clusters
	conns []*rpc.Client   // non-nil for TCP clusters
	rpcm  *rpc.Metrics    // shared by all TCP stubs (nil when Obs unset)
	gen   int
}

// NewLocalCluster builds an in-process cluster with N in-memory
// storage nodes. Crashed nodes are automatically replaced by fresh
// INIT nodes, which recovery then repopulates.
func NewLocalCluster(opts Options) (*Cluster, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout := stripe.MustLayout(opts.K, opts.N)
	c := &Cluster{opts: opts, code: code, layout: layout}

	handles := make([]proto.StorageNode, opts.N)
	c.local = make([]*storage.Node, opts.N)
	for i := 0; i < opts.N; i++ {
		nodeOpts := storage.Options{
			ID:        fmt.Sprintf("local-%d", i),
			BlockSize: opts.BlockSize,
			Code:      code,
			LockLease: opts.LockLease,
		}
		if opts.DataDir != "" {
			store, _, err := blockstore.OpenFile(blockstore.FileOptions{
				Dir:            filepath.Join(opts.DataDir, fmt.Sprintf("node-%d", i)),
				BlockSize:      opts.BlockSize,
				WriteBackLimit: 64,
				Obs:            opts.Obs,
			})
			if err != nil {
				return nil, err
			}
			nodeOpts.Store = store
			nodeOpts.TrustPersisted = true
		}
		node, err := storage.New(nodeOpts)
		if err != nil {
			return nil, err
		}
		c.local[i] = node
		handles[i] = node
	}
	dir, err := directory.New(layout, handles, c.replaceLocal)
	if err != nil {
		return nil, err
	}
	dir.Instrument(opts.Obs)
	c.dir = dir
	return c, nil
}

func (c *Cluster) replaceLocal(phys int) proto.StorageNode {
	c.gen++
	node := storage.MustNew(storage.Options{
		ID:          fmt.Sprintf("local-%d.%d", phys, c.gen),
		BlockSize:   c.opts.BlockSize,
		Code:        c.code,
		Replacement: true,
		LockLease:   c.opts.LockLease,
		GarbageSeed: int64(phys)<<16 | int64(c.gen),
	})
	c.local[phys] = node
	return node
}

// ConnectCluster dials N storaged servers (cmd/storaged) over TCP.
// addrs must have exactly N entries, in slot order. Failed nodes are
// not replaced automatically: start a replacement storaged with
// -replacement and install it with ReplaceNode.
func ConnectCluster(opts Options, addrs []string) (*Cluster, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(addrs) != opts.N {
		return nil, fmt.Errorf("ecstore: %d addresses for N=%d nodes", len(addrs), opts.N)
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout := stripe.MustLayout(opts.K, opts.N)
	c := &Cluster{opts: opts, code: code, layout: layout}
	if opts.Obs != nil {
		c.rpcm = rpc.NewMetrics(opts.Obs, "rpc")
	}
	handles := make([]proto.StorageNode, opts.N)
	for i, addr := range addrs {
		cl := rpc.Dial(addr, rpc.WithMetrics(c.rpcm))
		c.conns = append(c.conns, cl)
		handles[i] = cl
	}
	dir, err := directory.New(layout, handles, nil)
	if err != nil {
		return nil, err
	}
	dir.Instrument(opts.Obs)
	c.dir = dir
	return c, nil
}

// ReplaceNode points physical node index phys at a replacement
// storaged server (TCP clusters).
func (c *Cluster) ReplaceNode(phys int, addr string) error {
	if phys < 0 || phys >= c.opts.N {
		return fmt.Errorf("ecstore: node index %d out of range [0,%d)", phys, c.opts.N)
	}
	cl := rpc.Dial(addr, rpc.WithMetrics(c.rpcm))
	c.conns = append(c.conns, cl)
	c.dir.ReplaceNode(phys, cl)
	return nil
}

// CrashNode fail-stops a local node (testing and demos). It returns an
// error for TCP clusters — crash those by stopping the server.
func (c *Cluster) CrashNode(phys int) error {
	if c.local == nil {
		return errors.New("ecstore: CrashNode only applies to local clusters")
	}
	if phys < 0 || phys >= len(c.local) {
		return fmt.Errorf("ecstore: node index %d out of range", phys)
	}
	c.local[phys].Crash()
	return nil
}

// Close releases TCP connections and flushes/close-marks any
// persistent local stores.
func (c *Cluster) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, node := range c.local {
		if err := node.Shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BlockSize returns the configured block size.
func (c *Cluster) BlockSize() int { return c.opts.BlockSize }

// Code returns (k, n).
func (c *Cluster) Code() (k, n int) { return c.opts.K, c.opts.N }

// Volume opens a client handle with the given non-zero client ID.
// Every concurrent writer (process or thread pool) should use its own
// ID; IDs are embedded in write identifiers for ordering and recovery.
func (c *Cluster) Volume(clientID uint32) (*Volume, error) {
	cl, err := core.NewClient(core.Config{
		ID:        proto.ClientID(clientID),
		Code:      c.code,
		Resolver:  c.dir,
		BlockSize: c.opts.BlockSize,
		Mode:      c.opts.Mode,
		TP:        c.opts.TP,
		Multicast: transport.Parallel{},
		Obs:       c.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	return &Volume{cluster: c, cl: cl}, nil
}

// Volume is a logical-block view of the cluster for one client
// identity. Applications address flat logical blocks; striping,
// rotation, and the erasure code are hidden (Section 2's design goal).
// Volumes are safe for concurrent use.
type Volume struct {
	cluster *Cluster
	cl      *core.Client
}

// BlockSize returns the volume's block size in bytes.
func (v *Volume) BlockSize() int { return v.cluster.opts.BlockSize }

// ReadBlock reads one logical block. Unwritten blocks read as zeros.
func (v *Volume) ReadBlock(ctx context.Context, logical uint64) ([]byte, error) {
	s, slot := v.cluster.layout.Locate(logical)
	return v.cl.ReadBlock(ctx, s, slot)
}

// WriteBlock writes one logical block. data must be exactly BlockSize
// bytes.
func (v *Volume) WriteBlock(ctx context.Context, logical uint64, data []byte) error {
	s, slot := v.cluster.layout.Locate(logical)
	return v.cl.WriteBlock(ctx, s, slot, data)
}

// readAtConcurrency bounds the parallel block fetches of a large
// ReadAt (each fetch is one round trip; reads never contend on
// redundant nodes, so fanning out is free parallelism).
const readAtConcurrency = 8

// ReadAt reads len(p) bytes at byte offset off, spanning blocks as
// needed. Blocks are fetched concurrently (bounded fan-out), which is
// what makes large sequential reads pipeline across storage nodes the
// way Section 3.11 intends.
func (v *Volume) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("ecstore: negative offset")
	}
	bs := int64(v.cluster.opts.BlockSize)

	// Carve p into per-block spans.
	type span struct {
		logical uint64
		within  int64 // offset inside the block
		dst     []byte
	}
	var spans []span
	for read := 0; read < len(p); {
		pos := off + int64(read)
		within := pos % bs
		size := int(min(int64(len(p)-read), bs-within))
		spans = append(spans, span{
			logical: uint64(pos / bs),
			within:  within,
			dst:     p[read : read+size],
		})
		read += size
	}

	sem := make(chan struct{}, readAtConcurrency)
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i := range spans {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			blk, err := v.ReadBlock(ctx, spans[i].logical)
			if err != nil {
				errs[i] = err
				return
			}
			copy(spans[i].dst, blk[spans[i].within:])
		}(i)
	}
	wg.Wait()
	// Report the contiguous prefix that definitely succeeded.
	read := 0
	for i, err := range errs {
		if err != nil {
			return read, err
		}
		read += len(spans[i].dst)
	}
	return read, nil
}

// WriteAt writes p at byte offset off, spanning blocks as needed.
// Spans aligned to full stripes go through the batched stripe write
// (Section 3.11's sequential optimization: k swaps plus one combined
// parity delta per redundant node). Unaligned head and tail blocks are
// read-modify-written; the read-modify-write is not atomic with
// respect to concurrent writers of the same block.
func (v *Volume) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("ecstore: negative offset")
	}
	bs := int64(v.cluster.opts.BlockSize)
	k := int64(v.cluster.opts.K)
	stripeBytes := bs * k
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		within := pos % bs
		logical := uint64(pos / bs)

		// Fast path: a stripe-aligned span covering k whole blocks.
		if within == 0 && pos%stripeBytes == 0 && int64(len(p)-written) >= stripeBytes {
			values := make([][]byte, k)
			for i := int64(0); i < k; i++ {
				values[i] = p[written+int(i*bs) : written+int((i+1)*bs)]
			}
			if err := v.cl.WriteStripe(ctx, logical/uint64(k), values); err != nil {
				return written, err
			}
			written += int(stripeBytes)
			continue
		}

		var blk []byte
		if within == 0 && len(p)-written >= int(bs) {
			blk = p[written : written+int(bs)]
		} else {
			old, err := v.ReadBlock(ctx, logical)
			if err != nil {
				return written, err
			}
			blk = old
			copy(blk[within:], p[written:])
		}
		if err := v.WriteBlock(ctx, logical, blk); err != nil {
			return written, err
		}
		written += int(min(int64(len(p)-written), bs-within))
	}
	return written, nil
}

// WriteStripeBlocks writes the k logical blocks of one stripe (those
// with logical indices stripe*k .. stripe*k+k-1) in a single batched
// operation.
func (v *Volume) WriteStripeBlocks(ctx context.Context, stripe uint64, values [][]byte) error {
	return v.cl.WriteStripe(ctx, stripe, values)
}

// Recover runs the recovery procedure for the stripe containing the
// given logical block. Normally recovery is triggered automatically
// when reads or writes stumble on a failure.
func (v *Volume) Recover(ctx context.Context, logical uint64) error {
	s, _ := v.cluster.layout.Locate(logical)
	err := v.cl.Recover(ctx, s)
	if errors.Is(err, core.ErrRecoveryBusy) {
		return nil // someone else is already repairing it
	}
	return err
}

// CollectGarbage runs one pass of the two-phase GC protocol over every
// stripe this volume has touched, trimming write-id lists at the
// storage nodes. Run it periodically; two consecutive passes fully
// retire completed writes.
func (v *Volume) CollectGarbage(ctx context.Context) error {
	_, err := v.cl.CollectGarbage(ctx)
	return err
}

// Monitor probes every touched stripe for partial writes older than
// maxAge and for crashed nodes, triggering recovery where needed
// (Section 3.10). It returns the number of stripes recovered.
func (v *Volume) Monitor(ctx context.Context, maxAge time.Duration) (int, error) {
	report, err := v.cl.MonitorTracked(ctx, maxAge)
	if err != nil {
		return 0, err
	}
	return len(report.Recovered), nil
}

// Scrub audits every stripe this volume has touched against the
// erasure code, repairing localizable damage (missing blocks, single
// silent corruptions). It returns counts of clean, busy (skipped, try
// again later), and repaired stripes.
func (v *Volume) Scrub(ctx context.Context) (clean, busy, repaired int, err error) {
	return v.cl.ScrubTracked(ctx)
}

// Stats exposes protocol event counters (reads, writes, recoveries...).
func (v *Volume) Stats() *core.ClientStats { return v.cl.Stats() }

// Reader returns an io.Reader streaming nBytes from byte offset off.
func (v *Volume) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return &volumeReader{v: v, ctx: ctx, off: off, remaining: nBytes}
}

type volumeReader struct {
	v         *Volume
	ctx       context.Context
	off       int64
	remaining int64
}

func (r *volumeReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.v.ReadAt(r.ctx, p, r.off)
	r.off += int64(n)
	r.remaining -= int64(n)
	return n, err
}

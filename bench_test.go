// Benchmarks mapping to the paper's tables and figures. Each
// Benchmark's name carries the experiment it regenerates; running
//
//	go test -bench=. -benchmem
//
// produces the microbenchmark numbers behind Figs. 8(a)/8(b), the
// protocol operation costs behind Fig. 1, throughput points behind
// Figs. 9/10 (reported as MB/s metrics), and recovery/GC costs.
// cmd/experiments prints the full tables; these benches give the
// per-operation view with allocation counts.
package ecstore_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ecstore"
	"ecstore/internal/blockstore"
	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/erasure"
	"ecstore/internal/experiments"
	"ecstore/internal/gf"
	"ecstore/internal/obs"
	"ecstore/internal/resilience"
	"ecstore/internal/sim"
	"ecstore/internal/wire"

	"ecstore/internal/proto"
)

const benchBlock = 1024

func randBlock(seed int64) []byte {
	b := make([]byte, benchBlock)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// --- GF(2^8) substrate -------------------------------------------------------

func BenchmarkGF_MulSlice_1KB(b *testing.B) {
	src, dst := randBlock(1), make([]byte, benchBlock)
	b.SetBytes(benchBlock)
	for i := 0; i < b.N; i++ {
		gf.MulSlice(0x1D, dst, src)
	}
}

func BenchmarkGF_MulAddSlice_1KB(b *testing.B) {
	src, dst := randBlock(1), make([]byte, benchBlock)
	b.SetBytes(benchBlock)
	for i := 0; i < b.N; i++ {
		gf.MulAddSlice(0x1D, dst, src)
	}
}

func BenchmarkGF_AddSlice_1KB(b *testing.B) {
	src, dst := randBlock(1), make([]byte, benchBlock)
	b.SetBytes(benchBlock)
	for i := 0; i < b.N; i++ {
		gf.AddSlice(dst, src)
	}
}

// --- Fig. 8(a): per-code computation times, 1 KB blocks ----------------------

func BenchmarkFig8a_Delta(b *testing.B) {
	for _, kn := range [][2]int{{2, 4}, {3, 5}, {5, 7}} {
		b.Run(fmt.Sprintf("%d-of-%d", kn[0], kn[1]), func(b *testing.B) {
			code := erasure.Must(kn[0], kn[1])
			v, w := randBlock(1), randBlock(2)
			b.SetBytes(benchBlock)
			for i := 0; i < b.N; i++ {
				_ = code.Delta(code.K(), 0, v, w)
			}
		})
	}
}

func BenchmarkFig8a_FullEncode(b *testing.B) {
	for _, kn := range [][2]int{{2, 4}, {3, 5}, {5, 7}} {
		b.Run(fmt.Sprintf("%d-of-%d", kn[0], kn[1]), func(b *testing.B) {
			code := erasure.Must(kn[0], kn[1])
			data := make([][]byte, code.K())
			for i := range data {
				data[i] = randBlock(int64(i))
			}
			parity := make([][]byte, code.P())
			for i := range parity {
				parity[i] = make([]byte, benchBlock)
			}
			b.SetBytes(int64(benchBlock * code.K()))
			for i := 0; i < b.N; i++ {
				code.EncodeInto(parity, data)
			}
		})
	}
}

func BenchmarkFig8a_FullDecode(b *testing.B) {
	for _, kn := range [][2]int{{2, 4}, {3, 5}, {5, 7}} {
		b.Run(fmt.Sprintf("%d-of-%d", kn[0], kn[1]), func(b *testing.B) {
			code := erasure.Must(kn[0], kn[1])
			data := make([][]byte, code.K())
			for i := range data {
				data[i] = randBlock(int64(i))
			}
			full, err := code.EncodeStripe(data)
			if err != nil {
				b.Fatal(err)
			}
			erase := min(code.P(), code.K())
			b.SetBytes(int64(benchBlock * code.K()))
			for i := 0; i < b.N; i++ {
				work := make([][]byte, code.N())
				copy(work, full)
				for e := 0; e < erase; e++ {
					work[e] = nil
				}
				if err := code.Reconstruct(work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 8(b): encode grows with k, Delta+Add stays flat --------------------

func BenchmarkFig8b_Encode(b *testing.B) {
	for _, kn := range [][2]int{{4, 8}, {8, 16}, {16, 32}} {
		b.Run(fmt.Sprintf("%d-of-%d", kn[0], kn[1]), func(b *testing.B) {
			code := erasure.Must(kn[0], kn[1])
			data := make([][]byte, code.K())
			for i := range data {
				data[i] = randBlock(int64(i))
			}
			parity := make([][]byte, code.P())
			for i := range parity {
				parity[i] = make([]byte, benchBlock)
			}
			for i := 0; i < b.N; i++ {
				code.EncodeInto(parity, data)
			}
		})
	}
}

func BenchmarkFig8b_DeltaPlusAdd(b *testing.B) {
	for _, kn := range [][2]int{{4, 8}, {8, 16}, {16, 32}} {
		b.Run(fmt.Sprintf("%d-of-%d", kn[0], kn[1]), func(b *testing.B) {
			code := erasure.Must(kn[0], kn[1])
			v, w := randBlock(1), randBlock(2)
			acc := make([]byte, benchBlock)
			for i := 0; i < b.N; i++ {
				d := code.Delta(code.K(), 0, v, w)
				gf.AddSlice(acc, d)
			}
		})
	}
}

// --- Fig. 1: protocol operation costs on the real implementation -------------

func benchCluster(b *testing.B, mode resilience.UpdateMode) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(cluster.Options{
		K: 3, N: 5, BlockSize: benchBlock, Mode: mode,
		RetryDelay: 50 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkFig1_Write(b *testing.B) {
	for _, mode := range []resilience.UpdateMode{resilience.Parallel, resilience.Serial, resilience.Hybrid, resilience.Broadcast} {
		b.Run(mode.String(), func(b *testing.B) {
			c := benchCluster(b, mode)
			cl := c.Clients[0]
			ctx := context.Background()
			v := randBlock(3)
			b.SetBytes(benchBlock)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.WriteBlock(ctx, uint64(i%64), i%3, v); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := cl.CollectGarbage(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkFig1_Read(b *testing.B) {
	c := benchCluster(b, resilience.Parallel)
	cl := c.Clients[0]
	ctx := context.Background()
	if err := cl.WriteBlock(ctx, 0, 0, randBlock(4)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.ReadBlock(ctx, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Recovery and GC costs ----------------------------------------------------

func BenchmarkRecovery_3of5(b *testing.B) {
	c := benchCluster(b, resilience.Parallel)
	cl := c.Clients[0]
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := cl.WriteBlock(ctx, 0, i, randBlock(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Recover(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGarbageCollection(b *testing.B) {
	c := benchCluster(b, resilience.Parallel)
	cl := c.Clients[0]
	ctx := context.Background()
	v := randBlock(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for w := 0; w < 8; w++ {
			if err := cl.WriteBlock(ctx, uint64(w%4), w%3, v); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := cl.CollectGarbage(ctx); err != nil {
			b.Fatal(err)
		}
		if _, err := cl.CollectGarbage(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Wire codec ---------------------------------------------------------------

func BenchmarkWire_EncodeAddReq(b *testing.B) {
	req := &proto.AddReq{
		Stripe: 7, Slot: 4, Delta: randBlock(6), DataSlot: 1, Premultiplied: true,
		NTID: proto.TID{Seq: 1, Block: 1, Client: 2}, Epoch: 3,
	}
	b.SetBytes(int64(wire.Size(req)))
	for i := 0; i < b.N; i++ {
		if _, _, err := wire.Encode(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWire_DecodeAddReq(b *testing.B) {
	req := &proto.AddReq{
		Stripe: 7, Slot: 4, Delta: randBlock(6), DataSlot: 1, Premultiplied: true,
		NTID: proto.TID{Seq: 1, Block: 1, Client: 2}, Epoch: 3,
	}
	mt, buf, err := wire.Encode(req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(mt, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 9/10: throughput points (reported as MB/s metrics) ----------------

// BenchmarkFig9a_ShapedWritePoint measures one Fig. 9(a) point — the
// real protocol under the shaped network model — and reports
// testbed-equivalent MB/s.
func BenchmarkFig9a_ShapedWritePoint(b *testing.B) {
	sc, err := experiments.NewShapedCluster(experiments.ShapedOptions{
		K: 3, N: 5, BlockSize: benchBlock, Clients: 2, TimeScale: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	v := randBlock(7)
	op := func(ctx context.Context, cl *core.Client, worker int) (int, error) {
		s := uint64(worker*131+1) % 512
		if err := cl.WriteBlock(ctx, s, worker%3, v); err != nil {
			return 0, err
		}
		return benchBlock, nil
	}
	var mbps float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunLoad(ctx, sc.Clients, 16, 30*time.Millisecond, 100*time.Millisecond, op)
		mbps = res.MBps() * sc.Scale
	}
	b.ReportMetric(mbps, "MB/s-equiv")
}

// BenchmarkFig10_SimPoint runs one simulator point per protocol and
// reports MB/s; virtual time, fully deterministic.
func BenchmarkFig10_SimPoint(b *testing.B) {
	for _, p := range []sim.Protocol{sim.AJXPar, sim.AJXBcast, sim.FAB, sim.GWGR} {
		b.Run(p.String(), func(b *testing.B) {
			var last sim.Result
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(8, 10, benchBlock, 4, 16, p, sim.RandomWrite)
				cfg.Duration = 100 * time.Millisecond
				r, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.ThroughputMBps(), "MB/s")
		})
	}
}

// BenchmarkVolume_WriteAt exercises the public facade end to end.
func BenchmarkVolume_WriteAt(b *testing.B) {
	vol, err := ecstore.New(ecstore.Options{K: 3, N: 5, BlockSize: benchBlock})
	if err != nil {
		b.Fatal(err)
	}
	defer vol.Close()
	ctx := context.Background()
	payload := make([]byte, 4*benchBlock)
	rand.New(rand.NewSource(8)).Read(payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vol.WriteAt(ctx, payload, int64(i%16)*benchBlock); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteStripe compares the batched full-stripe write against
// k per-block writes on the real in-process implementation.
func BenchmarkWriteStripe(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		c := benchCluster(b, resilience.Parallel)
		cl := c.Clients[0]
		ctx := context.Background()
		values := make([][]byte, 3)
		for i := range values {
			values[i] = randBlock(int64(i))
		}
		b.SetBytes(int64(3 * benchBlock))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.WriteStripe(ctx, uint64(i%64), values); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-block", func(b *testing.B) {
		c := benchCluster(b, resilience.Parallel)
		cl := c.Clients[0]
		ctx := context.Background()
		values := make([][]byte, 3)
		for i := range values {
			values[i] = randBlock(int64(i))
		}
		b.SetBytes(int64(3 * benchBlock))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for slot := 0; slot < 3; slot++ {
				if err := cl.WriteBlock(ctx, uint64(i%64), slot, values[slot]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkObsOverhead compares the 16 KiB write hot path with
// instrumentation disabled (nil registry: every observation is a no-op
// on a nil receiver) against fully enabled. The enabled/noop ratio is
// the overhead budget the obs package has to stay inside (< 2%).
func BenchmarkObsOverhead(b *testing.B) {
	const obsBlock = 16 << 10
	for _, bc := range []struct {
		name string
		reg  *obs.Registry
	}{
		{"noop", nil},
		{"enabled", obs.NewRegistry()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				K: 3, N: 5, BlockSize: obsBlock,
				RetryDelay: 50 * time.Microsecond,
				Obs:        bc.reg,
			})
			if err != nil {
				b.Fatal(err)
			}
			cl := c.Clients[0]
			ctx := context.Background()
			v := make([]byte, obsBlock)
			rand.New(rand.NewSource(9)).Read(v)
			b.SetBytes(obsBlock)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.WriteBlock(ctx, uint64(i%64), i%3, v); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if _, err := cl.CollectGarbage(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDegradedRead16KiB compares the normal 1-RTT read (Fig. 4)
// against the degraded k-survivor fallback at 16 KiB blocks: the data
// node is crashed with no replacement, so every read pays a parallel
// getstate sweep plus a local decode. Recorded in BENCH_robustness.json.
func BenchmarkDegradedRead16KiB(b *testing.B) {
	const dblock = 16 << 10
	for _, bc := range []struct {
		name     string
		degraded bool
	}{
		{"normal", false},
		{"degraded", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c, err := cluster.New(cluster.Options{
				K: 3, N: 5, BlockSize: dblock,
				NoReplacements: true,
				RetryDelay:     50 * time.Microsecond,
				Retry: core.RetryPolicy{
					BaseDelay:     50 * time.Microsecond,
					MaxDelay:      200 * time.Microsecond,
					DegradedAfter: 1,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			cl := c.Clients[0]
			ctx := context.Background()
			v := make([]byte, dblock)
			rand.New(rand.NewSource(10)).Read(v)
			if err := cl.WriteBlock(ctx, 0, 0, v); err != nil {
				b.Fatal(err)
			}
			if bc.degraded {
				c.CrashNodeForStripeSlot(0, 0)
			}
			b.SetBytes(dblock)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.ReadBlock(ctx, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if bc.degraded && cl.Stats().DegradedReads.Load() == 0 {
				b.Fatal("degraded case never took the fallback path")
			}
		})
	}
}

// BenchmarkBlockstoreFilePut measures persistent block writes with and
// without write-back buffering.
func BenchmarkBlockstoreFilePut(b *testing.B) {
	for _, limit := range []int{0, 64} {
		b.Run(fmt.Sprintf("writeback=%d", limit), func(b *testing.B) {
			store, _, err := blockstore.OpenFile(blockstore.FileOptions{
				Dir: b.TempDir(), BlockSize: benchBlock, WriteBackLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			blk := randBlock(11)
			b.SetBytes(benchBlock)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Put(blockstore.Key{Stripe: uint64(i % 128)}, blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

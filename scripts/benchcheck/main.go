// Command benchcheck guards committed performance baselines against
// regressions. It runs the benchmarks named in each baseline file's
// "ci_baseline" section, takes the min ns/op over -count runs, and
// fails if any benchmark is more than -tolerance slower than its
// recorded baseline.
//
// Usage (from the repo root):
//
//	go run ./scripts/benchcheck [-baseline BENCH_kernels.json,BENCH_bulkio.json] [-tolerance 0.20]
//
// -baseline accepts a comma-separated list; every file is checked with
// the same tolerance and a regression in any of them fails the run.
//
// The compare is deliberately one-sided and tolerant: shared CI
// runners are noisy, so only a sustained slowdown beyond the tolerance
// band fails the build. Improvements never fail; refresh the baseline
// when kernels get faster.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baselineFile struct {
	CIBaseline map[string]json.RawMessage `json:"ci_baseline"`
}

// benchLine matches one `go test -bench` result row, e.g.
// "BenchmarkMulSlice16K-8   500220   463.1 ns/op   35375.27 MB/s ..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	baselinePaths := flag.String("baseline", "BENCH_kernels.json", "comma-separated baseline JSON files, each with a ci_baseline section")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional slowdown before failing (0.20 = +20%)")
	benchtime := flag.String("benchtime", "200ms", "per-benchmark time passed to go test")
	count := flag.Int("count", 3, "benchmark repetitions; the min ns/op is compared")
	flag.Parse()

	failed := false
	for _, path := range strings.Split(*baselinePaths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		if !checkBaseline(path, *tolerance, *benchtime, *count) {
			failed = true
		}
	}
	if failed {
		fmt.Println("benchcheck: performance regression beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchcheck: all benchmarks within tolerance")
}

// checkBaseline runs one baseline file's benchmarks and reports
// whether everything stayed within tolerance.
func checkBaseline(baselinePath string, tolerance float64, benchtime string, count int) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fatalf("parse %s: %v", baselinePath, err)
	}
	if len(bf.CIBaseline) == 0 {
		fatalf("%s has no ci_baseline section", baselinePath)
	}

	ok := true
	pkgs := make([]string, 0, len(bf.CIBaseline))
	for pkg := range bf.CIBaseline {
		if pkg == "comment" {
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		var want map[string]float64
		if err := json.Unmarshal(bf.CIBaseline[pkg], &want); err != nil {
			fatalf("ci_baseline[%q]: %v", pkg, err)
		}
		got, err := runBenches(pkg, want, benchtime, count)
		if err != nil {
			fatalf("%s: %v", pkg, err)
		}
		names := make([]string, 0, len(want))
		for name := range want {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			base := want[name]
			min, ran := got[name]
			switch {
			case !ran:
				fmt.Printf("FAIL  %-28s %s: benchmark did not run\n", name, pkg)
				ok = false
			case min > base*(1+tolerance):
				fmt.Printf("FAIL  %-28s %s: %.0f ns/op vs baseline %.0f (+%.0f%% > +%.0f%% allowed)\n",
					name, pkg, min, base, (min/base-1)*100, tolerance*100)
				ok = false
			default:
				fmt.Printf("ok    %-28s %s: %.0f ns/op vs baseline %.0f (%+.0f%%)\n",
					name, pkg, min, base, (min/base-1)*100)
			}
		}
	}
	return ok
}

// runBenches executes the named benchmarks in pkg and returns the min
// ns/op seen per benchmark (cpu suffixes stripped).
func runBenches(pkg string, want map[string]float64, benchtime string, count int) (map[string]float64, error) {
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, strings.TrimPrefix(name, "Benchmark"))
	}
	sort.Strings(names)
	re := "^Benchmark(" + strings.Join(names, "|") + ")$"
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", re, "-benchtime", benchtime, "-count", strconv.Itoa(count),
		"./"+strings.TrimPrefix(pkg, "./"))
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, out.String())
	}
	got := make(map[string]float64)
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := got[m[1]]; !ok || ns < cur {
			got[m[1]] = ns
		}
	}
	return got, sc.Err()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}

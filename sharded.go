package ecstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"sync/atomic"

	"ecstore/internal/core"
	"ecstore/internal/health"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/readcache"
	"ecstore/internal/repair"
	"ecstore/internal/rpc"
	"ecstore/internal/smallwrite"
	"ecstore/internal/tier"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

// ShardedVolume is a flat block address space striped across many
// groups. Block addr lives in group addr/BlocksPerGroup; each group
// runs the unmodified single-group protocol over its assigned sites.
// All I/O flows through the tier layer: the hot-read cache and the
// staged small-write tier (when enabled by Options) sit between these
// methods and the per-group protocol clients. Safe for concurrent
// use; satisfies Store.
type ShardedVolume struct {
	vol   *volume.Volume
	layer *tier.Layer
	local *volume.Local     // non-nil when built by NewLocalShardedVolume
	conns []*rpc.Client     // non-nil when built by ConnectShardedVolume
	sched *repair.Scheduler // non-nil when Options.EnableRepair
}

// newShardedLayer composes the tier layer over a volume's raw bulk
// target.
func newShardedLayer(opts Options, vol *volume.Volume) (*tier.Layer, error) {
	base, ok := vol.BulkTarget().(tier.Stamped)
	if !ok {
		return nil, errors.New("ecstore: volume target lacks stamped block ops")
	}
	return tier.NewLayer(opts.tierOptions(base, opts.ClientID, nil))
}

// NewLocalShardedVolume builds an in-process sharded volume over Sites
// in-memory hosts. A crashed or removed site is retired from the pool
// and only the groups placed on it remap (to fresh INIT shards that
// recovery then rebuilds) — the rendezvous hash leaves every other
// group's placement untouched.
func NewLocalShardedVolume(opts Options) (*ShardedVolume, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	// The scheduler is built after the volume (it needs the volume as
	// its Source), but failure reports can fire as soon as the volume
	// serves traffic — hand the hook a late-bound reference. The
	// health tracker's quarantine hook needs the volume the same way.
	var schedRef atomic.Pointer[repair.Scheduler]
	var volRef atomic.Pointer[volume.Volume]
	var tracker *health.Tracker
	if opts.HedgeAfter > 0 || opts.GrayRetireAfter > 0 {
		tracker = health.NewTracker(health.Options{
			GrayAfter: opts.GrayRetireAfter,
			Obs:       opts.Obs,
			// Persistent grayness is handled like a crash: retire the
			// site, which remaps its groups and feeds OnDamage so the
			// repair scheduler rebuilds the moved shards. Detached: the
			// hook fires on a client's observation path and RetireSite
			// re-resolves placements.
			OnQuarantine: func(site string) {
				if v := volRef.Load(); v != nil {
					go v.RetireSite(site)
				}
			},
		})
	}
	l, err := volume.NewLocal(volume.LocalOptions{
		K: opts.K, N: opts.N, BlockSize: opts.BlockSize,
		Groups:         opts.Groups,
		Sites:          opts.Sites,
		SiteWeights:    opts.SiteWeights,
		BlocksPerGroup: opts.BlocksPerGroup,
		MaxInFlight:    opts.MaxInFlight,
		ReadAhead:      opts.ReadAhead,
		Mode:           opts.Mode,
		TP:             opts.TP,
		ClientID:       proto.ClientID(opts.ClientID),
		Multicast:      transport.Parallel{},
		Aggregate:      transport.Chain{},
		LockLease:      opts.LockLease,
		Hedge:          opts.hedgePolicy(),
		Health:         tracker,
		Obs:            opts.Obs,
		OnDamage: func(g uint64) {
			if s := schedRef.Load(); s != nil {
				s.Report(g)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	volRef.Store(l.Volume)
	layer, err := newShardedLayer(opts, l.Volume)
	if err != nil {
		_ = l.Close()
		return nil, err
	}
	sv := &ShardedVolume{vol: l.Volume, layer: layer, local: l}
	if opts.EnableRepair {
		sched, err := repair.NewScheduler(repair.Options{
			Source:    l.Volume,
			Bandwidth: opts.RepairBandwidth,
			Burst:     opts.RepairBurst,
			Interval:  opts.RepairInterval,
			Obs:       opts.Obs,
		})
		if err != nil {
			_ = l.Close()
			return nil, err
		}
		if err := sched.Start(); err != nil {
			_ = l.Close()
			return nil, err
		}
		schedRef.Store(sched)
		sv.sched = sched
	}
	return sv, nil
}

// ConnectShardedVolume places Groups stripe groups over a pool of
// storaged servers, one site per address (the pool may be any size
// >= N; each group uses the N sites the rendezvous hash assigns it).
// One connection per address is shared by every group placed on it;
// group-namespaced stripe IDs keep their key spaces disjoint.
//
// Failed sites are not remapped automatically — a TCP pool cannot
// provision INIT replacement shards on demand. Degraded reads still
// work; repair the site and the groups pick it back up.
func ConnectShardedVolume(opts Options, addrs []string) (*ShardedVolume, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(addrs) < opts.N {
		return nil, fmt.Errorf("ecstore: %d addresses cannot host %d-node groups", len(addrs), opts.N)
	}
	var rpcm *rpc.Metrics
	if opts.Obs != nil {
		rpcm = rpc.NewMetrics(opts.Obs, "rpc")
	}
	sv := &ShardedVolume{}
	sites := make([]placement.Node, len(addrs))
	conns := make(map[string]*rpc.Client, len(addrs))
	for i, addr := range addrs {
		cl := rpc.Dial(addr, opts.rpcDialOpts(rpcm)...)
		sv.conns = append(sv.conns, cl)
		conns[addr] = cl
		sites[i] = placement.Node{ID: addr}
	}
	pool, err := placement.NewPool(sites...)
	if err != nil {
		for _, c := range sv.conns {
			_ = c.Close()
		}
		return nil, err
	}
	v, err := volume.New(volume.Options{
		K: opts.K, N: opts.N, BlockSize: opts.BlockSize,
		Groups:         opts.Groups,
		BlocksPerGroup: opts.BlocksPerGroup,
		MaxInFlight:    opts.MaxInFlight,
		ReadAhead:      opts.ReadAhead,
		Pool:           pool,
		OpenShard: func(site placement.Node, group uint64, replacement bool) (proto.StorageNode, error) {
			if replacement {
				return nil, errors.New("ecstore: TCP pools cannot provision replacement shards")
			}
			return conns[site.ID], nil
		},
		NoRemap:   true,
		ClientID:  proto.ClientID(opts.ClientID),
		Mode:      opts.Mode,
		TP:        opts.TP,
		Multicast: transport.Parallel{},
		Aggregate: transport.Chain{},
		Hedge:     opts.hedgePolicy(),
		Health:    tcpTracker(opts),
		Obs:       opts.Obs,
	})
	if err != nil {
		for _, c := range sv.conns {
			_ = c.Close()
		}
		return nil, err
	}
	sv.vol = v
	layer, err := newShardedLayer(opts, v)
	if err != nil {
		for _, c := range sv.conns {
			_ = c.Close()
		}
		return nil, err
	}
	sv.layer = layer
	return sv, nil
}

// tcpTracker builds the per-site health tracker for TCP pools. There
// is no quarantine hook: a TCP pool cannot remap (NoRemap makes
// RetireSite a no-op), so a persistently gray server is only scored —
// reads hedge around it — rather than retired.
func tcpTracker(opts Options) *health.Tracker {
	if opts.HedgeAfter <= 0 {
		return nil
	}
	return health.NewTracker(health.Options{Obs: opts.Obs})
}

// BlockSize returns the volume's block size in bytes.
func (v *ShardedVolume) BlockSize() int { return v.vol.BlockSize() }

// Groups returns the configured group count.
func (v *ShardedVolume) Groups() int { return v.vol.Groups() }

// Capacity returns the number of addressable blocks visible to
// callers. With SmallWriteTier enabled the staging region carved off
// the top of the volume is excluded.
func (v *ShardedVolume) Capacity() uint64 { return v.layer.Capacity() }

// ReadBlock reads one block. Unwritten blocks read as zeros. With
// CacheBytes set, hot blocks are served from the client-side cache;
// staged small writes are patched over the result either way.
func (v *ShardedVolume) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	return v.layer.ReadBlock(ctx, addr)
}

// WriteBlock writes one block. data must be exactly BlockSize bytes.
func (v *ShardedVolume) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	return v.layer.WriteBlock(ctx, addr, data)
}

// ReadAt reads len(p) bytes at byte offset off, spanning blocks and
// groups as needed, with up to MaxInFlight stripes of fetches in
// flight. Reads past the volume's capacity are truncated and return
// io.EOF with the partial count.
func (v *ShardedVolume) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.layer.ReadAt(ctx, p, off)
}

// WriteAt writes p at byte offset off through the pipelined bulk
// engine: stripe-aligned runs use the batched stripe write with up to
// MaxInFlight stripes in flight and their same-site parity deltas
// coalesced into combined RPCs. On failure the count is the length of
// the longest prefix known written. With SmallWriteTier enabled,
// sub-block head and tail spans are absorbed by the staged small-write
// tier instead of paying a read-modify-write swap round each.
func (v *ShardedVolume) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.layer.WriteAt(ctx, p, off)
}

// Flush merges every staged small write into its home block and resets
// the staging segment: a barrier after which all acknowledged bytes
// are in their final erasure-coded blocks. A no-op without
// Options.SmallWriteTier.
func (v *ShardedVolume) Flush(ctx context.Context) error {
	return v.layer.Flush(ctx)
}

// Recover forces recovery of the stripe containing addr.
func (v *ShardedVolume) Recover(ctx context.Context, addr uint64) error {
	return v.vol.Recover(ctx, addr)
}

// CollectGarbage runs one GC pass in every touched group.
func (v *ShardedVolume) CollectGarbage(ctx context.Context) error {
	return v.vol.CollectGarbage(ctx)
}

// Monitor probes every touched group's stripes, returning the total
// recovered.
func (v *ShardedVolume) Monitor(ctx context.Context, maxAge time.Duration) (int, error) {
	return v.vol.Monitor(ctx, maxAge)
}

// Scrub audits every touched group's stripes against the code.
func (v *ShardedVolume) Scrub(ctx context.Context) (clean, busy, repaired int, err error) {
	return v.vol.Scrub(ctx)
}

// GroupSites returns the IDs of the sites currently serving a group,
// indexed by physical slot.
func (v *ShardedVolume) GroupSites(g uint64) ([]string, error) {
	sites, err := v.vol.GroupSites(g)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(sites))
	for i, s := range sites {
		ids[i] = s.ID
	}
	return ids, nil
}

// GroupStats exposes one group's protocol counters (nil if untouched).
func (v *ShardedVolume) GroupStats(g uint64) *core.ClientStats { return v.vol.GroupStats(g) }

// CacheStats exposes the hot-read cache's counters, or nil when
// Options.CacheBytes was 0.
func (v *ShardedVolume) CacheStats() *readcache.Stats { return v.layer.CacheStats() }

// TierStats exposes the small-write tier's counters, or nil when
// Options.SmallWriteTier was off.
func (v *ShardedVolume) TierStats() *smallwrite.Stats { return v.layer.TierStats() }

// RepairStats exposes the background repair scheduler's counters, or
// nil when the store was built without EnableRepair.
func (v *ShardedVolume) RepairStats() *repair.Stats {
	if v.sched == nil {
		return nil
	}
	return v.sched.Stats()
}

// RepairQueueDepth returns the number of groups queued for repair or
// rebalance (0 when the scheduler is disabled).
func (v *ShardedVolume) RepairQueueDepth() int {
	if v.sched == nil {
		return 0
	}
	return v.sched.QueueDepth()
}

// KickRepair requests an immediate inspection sweep from the repair
// scheduler. No-op when the scheduler is disabled.
func (v *ShardedVolume) KickRepair() {
	if v.sched != nil {
		v.sched.Kick()
	}
}

// WaitRepairIdle blocks until the repair scheduler has drained its
// queue and has no pending reports or kicks (immediately when the
// scheduler is disabled). Submit work first — kick, crash, report —
// then wait.
func (v *ShardedVolume) WaitRepairIdle(ctx context.Context) error {
	if v.sched == nil {
		return nil
	}
	return v.sched.WaitIdle(ctx)
}

// CrashSite fail-stops a local site (testing and demos).
func (v *ShardedVolume) CrashSite(id string) error {
	if v.local == nil {
		return errors.New("ecstore: CrashSite only applies to local sharded volumes")
	}
	v.local.CrashSite(id)
	return nil
}

// AddSite grows a local pool; groups rebalance lazily.
func (v *ShardedVolume) AddSite(id string, weight float64) error {
	if v.local == nil {
		return errors.New("ecstore: AddSite only applies to local sharded volumes")
	}
	return v.local.AddSite(id, weight)
}

// RemoveSite drains a local site; the groups using it remap and
// recovery rebuilds the moved slots.
func (v *ShardedVolume) RemoveSite(id string) error {
	if v.local == nil {
		return errors.New("ecstore: RemoveSite only applies to local sharded volumes")
	}
	return v.local.RemoveSite(id)
}

// Reader returns an io.Reader streaming nBytes from byte offset off,
// prefetching ReadAhead stripes ahead of the consumer. A negative
// nBytes streams to the volume's capacity.
func (v *ShardedVolume) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return v.layer.Reader(ctx, off, nBytes)
}

// Close releases the volume's resources: staged small writes are
// flushed and the repair scheduler (if running) stopped first, then
// local shards are shut down and TCP connections closed.
func (v *ShardedVolume) Close() error {
	_ = v.layer.Close()
	if v.sched != nil {
		v.sched.Stop()
	}
	if v.local != nil {
		return v.local.Close()
	}
	var first error
	for _, c := range v.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Command gatewayd runs the front-end object gateway: a multi-tenant
// HTTP object API (PUT/GET/HEAD/DELETE /o/<key>, tenant in the
// X-Tenant header) over the erasure-coded block store, with per-tenant
// QoS token buckets, a global concurrency limiter, and typed
// backpressure mapped onto HTTP statuses:
//
//	429 + Retry-After   tenant over its ops/s or bytes/s budget
//	503                 gateway at its concurrency limit, or draining
//	404                 object not found
//
// Usage:
//
//	gatewayd -addr :7080 -nodes h1:7000,...,h5:7000 -k 3 -n 5
//	gatewayd -addr :7080 -local -k 3 -n 5 -groups 4
//	gatewayd -addr :7080 -local -limit acme:100:1048576 -metrics-addr :7071
//
// With -nodes the gateway fronts a live storaged cluster; with -local
// it runs an in-process volume (the paper's RAM-backed evaluation
// setup), handy for demos and load tests. Each -limit flag caps one
// tenant as name:ops_per_sec:bytes_per_sec (0 means unlimited on that
// axis); -default-limit applies to everyone else. On SIGTERM the
// gateway drains: new requests get 503 while in-flight ones (including
// streaming GET bodies) finish, up to -drain-timeout.
//
// With -metrics-addr set, GET /debug/metrics serves a JSON snapshot of
// gateway.* counters, latency histograms, and per-tenant throttle
// counts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ecstore"
	"ecstore/internal/drainsig"
	"ecstore/internal/gateway"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// config collects every knob of one gatewayd instance.
type config struct {
	addr          string
	metricsAddr   string
	nodes         string
	local         bool
	k, n          int
	blockSize     int
	groups        int
	clientID      uint
	maxConcurrent int
	limits        limitFlags
	defaultLimit  string
	drainTimeout  time.Duration
	stripes       int
	nagle         bool
	sockReadBuf   int
	sockWriteBuf  int
	cacheBytes    int64
	smallWrite    bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7080", "HTTP listen address")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /debug/metrics JSON on this address (empty: metrics disabled)")
	flag.StringVar(&cfg.nodes, "nodes", "", "comma-separated storaged addresses (front a live cluster)")
	flag.BoolVar(&cfg.local, "local", false, "run over an in-process volume instead of a cluster")
	flag.IntVar(&cfg.k, "k", 3, "erasure code data blocks")
	flag.IntVar(&cfg.n, "n", 5, "erasure code total blocks")
	flag.IntVar(&cfg.blockSize, "block-size", 4096, "block size in bytes")
	flag.IntVar(&cfg.groups, "groups", 1, "stripe groups (with -local or multi-group clusters)")
	flag.UintVar(&cfg.clientID, "client-id", 1, "client identity for the store connection")
	flag.IntVar(&cfg.maxConcurrent, "max-concurrent", 0, "global in-flight request cap (0: default, negative: unlimited)")
	flag.Var(&cfg.limits, "limit", "per-tenant QoS as name:ops_per_sec:bytes_per_sec (repeatable; 0 = unlimited)")
	flag.StringVar(&cfg.defaultLimit, "default-limit", "", "QoS for unconfigured tenants as ops_per_sec:bytes_per_sec")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "max wait for in-flight requests on SIGTERM")
	flag.IntVar(&cfg.stripes, "stripes", 1, "pipelined TCP connections per storaged endpoint")
	flag.BoolVar(&cfg.nagle, "nagle", false, "re-enable Nagle's algorithm (default keeps TCP_NODELAY on)")
	flag.IntVar(&cfg.sockReadBuf, "sock-read-buffer", 0, "SO_RCVBUF per storaged connection in bytes (0: kernel default)")
	flag.IntVar(&cfg.sockWriteBuf, "sock-write-buffer", 0, "SO_SNDBUF per storaged connection in bytes (0: kernel default)")
	flag.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "client-side hot-read cache budget in bytes (0: disabled)")
	flag.BoolVar(&cfg.smallWrite, "small-write", false, "stage sub-block object tails in the erasure-coded small-write tier")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	d, err := setup(cfg)
	if err != nil {
		return err
	}
	log.Printf("gatewayd serving objects on http://%s/o/<key>", d.ln.Addr())
	if d.metricsLn != nil {
		log.Printf("gatewayd metrics on http://%s/debug/metrics", d.metricsLn.Addr())
	}
	if err := drainsig.Wait(cfg.drainTimeout, func(ctx context.Context) error {
		log.Printf("gatewayd draining (up to %v)", cfg.drainTimeout)
		return d.Drain(ctx)
	}); err != nil {
		log.Printf("gatewayd drain: %v", err)
	}
	log.Printf("gatewayd shutting down")
	return d.Close()
}

// limitFlags parses repeated -limit name:ops:bytes flags.
type limitFlags struct {
	m map[string]gateway.TenantLimit
}

func (l *limitFlags) String() string { return fmt.Sprintf("%v", l.m) }

func (l *limitFlags) Set(s string) error {
	name, limit, err := parseTenantLimit(s)
	if err != nil {
		return err
	}
	if l.m == nil {
		l.m = make(map[string]gateway.TenantLimit)
	}
	l.m[name] = limit
	return nil
}

// parseTenantLimit parses "name:ops:bytes".
func parseTenantLimit(s string) (string, gateway.TenantLimit, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" {
		return "", gateway.TenantLimit{}, fmt.Errorf("limit %q: want name:ops_per_sec:bytes_per_sec", s)
	}
	limit, err := parseRates(parts[1], parts[2])
	if err != nil {
		return "", gateway.TenantLimit{}, fmt.Errorf("limit %q: %w", s, err)
	}
	return parts[0], limit, nil
}

// parseRates parses "ops:bytes" rate pairs.
func parseRates(opsS, bytesS string) (gateway.TenantLimit, error) {
	ops, err := strconv.ParseFloat(opsS, 64)
	if err != nil {
		return gateway.TenantLimit{}, fmt.Errorf("ops rate %q: %w", opsS, err)
	}
	bts, err := strconv.ParseFloat(bytesS, 64)
	if err != nil {
		return gateway.TenantLimit{}, fmt.Errorf("bytes rate %q: %w", bytesS, err)
	}
	if ops < 0 || bts < 0 || math.IsNaN(ops) || math.IsNaN(bts) {
		return gateway.TenantLimit{}, fmt.Errorf("negative rate in %s:%s", opsS, bytesS)
	}
	return gateway.TenantLimit{OpsPerSec: ops, BytesPerSec: bts}, nil
}

// daemon is one running gatewayd: the HTTP server, the gateway, and
// the store behind it.
type daemon struct {
	gw      *gateway.Gateway
	ln      net.Listener
	srv     *http.Server
	store   io.Closer
	httpErr chan error

	reg       *obs.Registry
	metricsLn net.Listener
	metricsWg chan struct{}
}

// Drain refuses new requests (503) while in-flight ones finish, then
// stops the HTTP listener.
func (d *daemon) Drain(ctx context.Context) error {
	gwErr := d.gw.Drain(ctx)
	if err := d.srv.Shutdown(ctx); err != nil && gwErr == nil {
		gwErr = err
	}
	return gwErr
}

// Close stops serving and closes the store connection.
func (d *daemon) Close() error {
	_ = d.srv.Close()
	<-d.httpErr
	if d.metricsLn != nil {
		_ = d.metricsLn.Close()
		<-d.metricsWg
	}
	if d.store != nil {
		return d.store.Close()
	}
	return nil
}

// setup builds the store connection, the gateway, and the HTTP front
// end; main waits for a signal, tests drive the daemon directly.
func setup(cfg config) (*daemon, error) {
	d := &daemon{httpErr: make(chan error, 1)}
	if cfg.metricsAddr != "" {
		d.reg = obs.NewRegistry()
	}

	opts := ecstore.Options{
		K: cfg.k, N: cfg.n, BlockSize: cfg.blockSize,
		Groups: cfg.groups, ClientID: uint32(cfg.clientID), Obs: d.reg,
		Stripes: cfg.stripes, Nagle: cfg.nagle,
		SockReadBuffer: cfg.sockReadBuf, SockWriteBuffer: cfg.sockWriteBuf,
		CacheBytes:     cfg.cacheBytes,
		SmallWriteTier: cfg.smallWrite,
	}
	var backend gateway.Backend
	switch {
	case cfg.nodes != "":
		store, err := ecstore.Connect(opts, strings.Split(cfg.nodes, ","))
		if err != nil {
			return nil, err
		}
		backend, d.store = store, store
	case cfg.local:
		store, err := ecstore.New(opts)
		if err != nil {
			return nil, err
		}
		backend, d.store = store, store
	default:
		return nil, errors.New("one of -nodes or -local is required")
	}

	var defLimit gateway.TenantLimit
	if cfg.defaultLimit != "" {
		parts := strings.Split(cfg.defaultLimit, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("default-limit %q: want ops_per_sec:bytes_per_sec", cfg.defaultLimit)
		}
		var err error
		if defLimit, err = parseRates(parts[0], parts[1]); err != nil {
			return nil, fmt.Errorf("default-limit %q: %w", cfg.defaultLimit, err)
		}
	}
	d.gw = gateway.New(backend, gateway.Options{
		Stripe:        cfg.k,
		Tenants:       cfg.limits.m,
		DefaultLimit:  defLimit,
		MaxConcurrent: cfg.maxConcurrent,
		SmallWrite:    cfg.smallWrite,
		Obs:           d.reg,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		if d.store != nil {
			_ = d.store.Close()
		}
		return nil, err
	}
	d.ln = ln
	d.srv = &http.Server{Handler: newHandler(d.gw)}
	go func() { d.httpErr <- d.srv.Serve(ln) }()

	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			_ = d.srv.Close()
			_ = ln.Close()
			if d.store != nil {
				_ = d.store.Close()
			}
			return nil, err
		}
		d.metricsLn = mln
		d.metricsWg = make(chan struct{})
		mux := http.NewServeMux()
		mux.Handle("/debug/metrics", d.reg.Handler())
		go func() {
			defer close(d.metricsWg)
			_ = http.Serve(mln, mux)
		}()
	}
	return d, nil
}

// newHandler maps the object API onto the gateway.
func newHandler(gw *gateway.Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/o/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/o/")
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		switch r.Method {
		case http.MethodPut:
			if r.ContentLength < 0 {
				http.Error(w, "gatewayd: Content-Length required", http.StatusLengthRequired)
				return
			}
			if err := gw.Put(r.Context(), tenant, key, r.Body, r.ContentLength); err != nil {
				writeErr(w, err)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodGet:
			body, info, err := gw.Get(r.Context(), tenant, key)
			if err != nil {
				writeErr(w, err)
				return
			}
			defer body.Close()
			w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
			w.Header().Set("X-Object-Version", strconv.FormatUint(info.Version, 10))
			w.WriteHeader(http.StatusOK)
			_, _ = io.Copy(w, body)
		case http.MethodHead:
			info, err := gw.Stat(r.Context(), tenant, key)
			if err != nil {
				writeErr(w, err)
				return
			}
			w.Header().Set("Content-Length", strconv.FormatInt(info.Size, 10))
			w.Header().Set("X-Object-Version", strconv.FormatUint(info.Version, 10))
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			if err := gw.Delete(r.Context(), tenant, key); err != nil {
				writeErr(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "gatewayd: method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// writeErr maps the gateway's typed errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	var throttle *gateway.ThrottleError
	switch {
	case errors.As(err, &throttle):
		// Retry-After is whole seconds; round up so clients never
		// retry early.
		secs := int64(math.Ceil(throttle.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, proto.ErrOverloaded), errors.Is(err, proto.ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, gateway.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

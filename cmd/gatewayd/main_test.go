package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"
)

func startDaemon(t *testing.T, cfg config) (*daemon, string) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	d, err := setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d, "http://" + d.ln.Addr().String()
}

func doReq(t *testing.T, method, url, tenant string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPObjectLifecycle(t *testing.T) {
	_, base := startDaemon(t, config{local: true, k: 3, n: 5, blockSize: 512, groups: 1})
	body := make([]byte, 10_000)
	for i := range body {
		body[i] = byte(i * 3)
	}

	resp := doReq(t, http.MethodPut, base+"/o/hello", "acme", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status = %s", resp.Status)
	}

	resp = doReq(t, http.MethodGet, base+"/o/hello", "acme", nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("get status = %s, body match %v (%d bytes)", resp.Status, bytes.Equal(got, body), len(got))
	}
	if v := resp.Header.Get("X-Object-Version"); v != "1" {
		t.Fatalf("version header = %q", v)
	}

	resp = doReq(t, http.MethodHead, base+"/o/hello", "acme", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Length") != strconv.Itoa(len(body)) {
		t.Fatalf("head status = %s, length = %s", resp.Status, resp.Header.Get("Content-Length"))
	}

	// Tenants are namespaces.
	resp = doReq(t, http.MethodGet, base+"/o/hello", "other", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant get status = %s, want 404", resp.Status)
	}

	resp = doReq(t, http.MethodDelete, base+"/o/hello", "acme", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %s", resp.Status)
	}
	resp = doReq(t, http.MethodGet, base+"/o/hello", "acme", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status = %s, want 404", resp.Status)
	}
}

func TestHTTPBackpressureStatuses(t *testing.T) {
	var lf limitFlags
	if err := lf.Set("slow:1:0"); err != nil {
		t.Fatal(err)
	}
	_, base := startDaemon(t, config{local: true, k: 2, n: 3, blockSize: 512, groups: 1, limits: lf})

	// Burn the burst (1) plus the post-paid op, then expect 429.
	var last *http.Response
	for i := 0; i < 3; i++ {
		last = doReq(t, http.MethodPut, base+"/o/k", "slow", []byte("x"))
		io.Copy(io.Discard, last.Body)
		last.Body.Close()
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third op status = %s, want 429", last.Status)
	}
	retry, err := strconv.Atoi(last.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q", last.Header.Get("Retry-After"))
	}
	// An unconfigured tenant is untouched.
	resp := doReq(t, http.MethodPut, base+"/o/k", "fast", []byte("y"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled tenant status = %s", resp.Status)
	}
}

func TestHTTPDrainReturns503(t *testing.T) {
	d, base := startDaemon(t, config{local: true, k: 2, n: 3, blockSize: 512, groups: 1})
	resp := doReq(t, http.MethodPut, base+"/o/k", "t", []byte("hello"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put status = %s", resp.Status)
	}
	// Drain with nothing in flight completes immediately; afterwards the
	// gateway keeps refusing new work.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.gw.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp = doReq(t, http.MethodGet, base+"/o/k", "t", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("get during drain status = %s, want 503", resp.Status)
	}
}

func TestHTTPMissingLengthRejected(t *testing.T) {
	_, base := startDaemon(t, config{local: true, k: 2, n: 3, blockSize: 512, groups: 1})
	// A chunked PUT has no Content-Length; the gateway needs the size
	// up front to allocate the extent.
	req, err := http.NewRequest(http.MethodPut, base+"/o/k", io.NopCloser(neverEnding{}))
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = -1
	req.Header.Set("X-Tenant", "t")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusLengthRequired {
		t.Fatalf("chunked put status = %s, want 411", resp.Status)
	}
}

type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'z'
	}
	return len(p), nil
}

func TestMetricsEndpoint(t *testing.T) {
	d, base := startDaemon(t, config{
		local: true, k: 2, n: 3, blockSize: 512, groups: 1, metricsAddr: "127.0.0.1:0",
	})
	resp := doReq(t, http.MethodPut, base+"/o/m", "t", []byte("metrics"))
	resp.Body.Close()
	mresp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", d.metricsLn.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["gateway.put.calls"]; !ok {
		t.Fatalf("metrics snapshot missing gateway.put.calls; keys: %d", len(snap))
	}
}

func TestParseTenantLimit(t *testing.T) {
	name, limit, err := parseTenantLimit("acme:100:1048576")
	if err != nil || name != "acme" || limit.OpsPerSec != 100 || limit.BytesPerSec != 1048576 {
		t.Fatalf("parse = %q %+v %v", name, limit, err)
	}
	for _, bad := range []string{"", "acme", "acme:1", "acme:x:1", ":1:1", "acme:-1:0"} {
		if _, _, err := parseTenantLimit(bad); err == nil {
			t.Fatalf("limit %q accepted", bad)
		}
	}
}

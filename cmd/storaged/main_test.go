package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ecstore/internal/gf"
	"ecstore/internal/proto"
	"ecstore/internal/rpc"
)

func TestSetupServesAndPersists(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	blk := bytes.Repeat([]byte{0x5C}, 128)

	d, err := setup(config{addr: "127.0.0.1:0", blockSize: 128, k: 2, n: 4, lease: time.Second, id: "t0", dataDir: dir, writeBack: 8})
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.Dial(d.srv.Addr().String())
	rep, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}})
	if err != nil || !rep.OK {
		t.Fatalf("swap over TCP: %v %+v", err, rep)
	}
	_ = cl.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir with -trust-data: the block serves.
	d2, err := setup(config{addr: "127.0.0.1:0", blockSize: 128, k: 2, n: 4, lease: time.Second, id: "t0'", dataDir: dir, writeBack: 8, trust: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	cl2 := rpc.Dial(d2.srv.Addr().String())
	defer cl2.Close()
	got, err := cl2.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if err != nil || !got.OK || !bytes.Equal(got.Block, blk) {
		t.Fatalf("read after restart: %v %+v", err, got)
	}
}

func TestSetupValidation(t *testing.T) {
	if _, err := setup(config{addr: "127.0.0.1:0", blockSize: 128, k: 4, n: 4, id: "bad"}); err == nil {
		t.Fatal("invalid code accepted")
	}
	if _, err := setup(config{addr: "127.0.0.1:0", id: "bad"}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := setup(config{addr: "256.0.0.1:99999", blockSize: 128, id: "bad"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestSetupReplacementMode(t *testing.T) {
	d, err := setup(config{addr: "127.0.0.1:0", blockSize: 64, replacement: true, id: "repl"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := rpc.Dial(d.srv.Addr().String())
	defer cl.Close()
	rep, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 0, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("replacement node served a read from an INIT slot")
	}
}

// TestPartialSumOverTCP round-trips the repair scheduler's
// bandwidth-frugal frame through a real storaged: the reply must carry
// Coef*block XOR Acc so an aggregation tree can fold survivor
// contributions across the wire.
func TestPartialSumOverTCP(t *testing.T) {
	ctx := context.Background()
	d, err := setup(config{addr: "127.0.0.1:0", blockSize: 64, k: 2, n: 4, lease: time.Second, id: "ps0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := rpc.Dial(d.srv.Addr().String())
	defer cl.Close()

	blk := bytes.Repeat([]byte{0x21}, 64)
	if rep, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 7, Slot: 1, Value: blk, NTID: proto.TID{Seq: 1, Block: 0, Client: 3}}); err != nil || !rep.OK {
		t.Fatalf("swap: %v %+v", err, rep)
	}
	acc := bytes.Repeat([]byte{0x0F}, 64)
	rep, err := cl.PartialSum(ctx, &proto.PartialSumReq{Stripe: 7, Slot: 1, Coef: 5, Acc: acc})
	if err != nil {
		t.Fatalf("partial sum over TCP: %v", err)
	}
	if !rep.OK {
		t.Fatalf("partial sum rejected: %+v", rep)
	}
	want := make([]byte, 64)
	gf.MulSlice(5, want, blk)
	gf.AddSlice(want, acc)
	if !bytes.Equal(rep.Sum, want) {
		t.Fatalf("sum = %x..., want %x...", rep.Sum[:4], want[:4])
	}

	// A replacement node's INIT slots decline without a transport
	// error: the coordinator falls back to whole-block recovery, it
	// does not retry the node.
	dr, err := setup(config{addr: "127.0.0.1:0", blockSize: 64, replacement: true, id: "ps1"})
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Close()
	clr := rpc.Dial(dr.srv.Addr().String())
	defer clr.Close()
	rep, err = clr.PartialSum(ctx, &proto.PartialSumReq{Stripe: 7, Slot: 1, Coef: 5})
	if err != nil {
		t.Fatalf("partial sum on INIT slot: %v", err)
	}
	if rep.OK {
		t.Fatal("INIT slot claimed a partial sum")
	}
}

// TestMetricsEndpoint drives one RPC through a metrics-enabled daemon
// and checks /debug/metrics reports it: op counts, a latency
// histogram, and byte totals.
func TestMetricsEndpoint(t *testing.T) {
	d, err := setup(config{addr: "127.0.0.1:0", blockSize: 64, id: "m0", metricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.MetricsAddr() == "" {
		t.Fatal("metrics listener not bound")
	}

	cl := rpc.Dial(d.srv.Addr().String())
	defer cl.Close()
	blk := bytes.Repeat([]byte{7}, 64)
	rep, err := cl.Swap(context.Background(), &proto.SwapReq{Stripe: 3, Slot: 0, Value: blk, NTID: proto.TID{Seq: 1, Block: 0, Client: 9}})
	if err != nil || !rep.OK {
		t.Fatalf("swap: %v %+v", err, rep)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", d.MetricsAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("endpoint did not return JSON: %v", err)
	}
	if got, _ := snap["rpc.swap.calls"].(float64); got < 1 {
		t.Fatalf("rpc.swap.calls = %v, want >= 1 (snapshot: %v)", snap["rpc.swap.calls"], snap)
	}
	hist, ok := snap["rpc.swap.latency"].(map[string]any)
	if !ok || hist["count"].(float64) < 1 {
		t.Fatalf("rpc.swap.latency histogram missing or empty: %v", snap["rpc.swap.latency"])
	}
	if got, _ := snap["rpc.bytes_in"].(float64); got <= 0 {
		t.Fatalf("rpc.bytes_in = %v, want > 0", snap["rpc.bytes_in"])
	}
}

// TestDaemonDrainRefusesNewWork: after Drain, the daemon answers new
// requests with the typed proto.ErrDraining — the departure signal
// clients use to retire the site instantly — and Close still works.
func TestDaemonDrainRefusesNewWork(t *testing.T) {
	d, err := setup(config{addr: "127.0.0.1:0", blockSize: 64, id: "dr0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := rpc.Dial(d.srv.Addr().String())
	defer cl.Close()
	ctx := context.Background()
	blk := bytes.Repeat([]byte{3}, 64)
	if rep, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk, NTID: proto.TID{Seq: 1, Block: 0, Client: 2}}); err != nil || !rep.OK {
		t.Fatalf("swap before drain: %v %+v", err, rep)
	}
	if err := d.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !d.srv.Draining() {
		t.Fatal("server does not report draining")
	}
	if _, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); !errors.Is(err, proto.ErrDraining) {
		t.Fatalf("read after drain: err = %v, want proto.ErrDraining", err)
	}
}

package main

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ecstore/internal/proto"
	"ecstore/internal/rpc"
)

func TestSetupServesAndPersists(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	blk := bytes.Repeat([]byte{0x5C}, 128)

	srv, node, err := setup("127.0.0.1:0", 128, 2, 4, false, time.Second, "t0", dir, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	cl := rpc.Dial(srv.Addr().String())
	rep, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}})
	if err != nil || !rep.OK {
		t.Fatalf("swap over TCP: %v %+v", err, rep)
	}
	_ = cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir with -trust-data: the block serves.
	srv2, node2, err := setup("127.0.0.1:0", 128, 2, 4, false, time.Second, "t0'", dir, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	defer node2.Shutdown()
	cl2 := rpc.Dial(srv2.Addr().String())
	defer cl2.Close()
	got, err := cl2.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if err != nil || !got.OK || !bytes.Equal(got.Block, blk) {
		t.Fatalf("read after restart: %v %+v", err, got)
	}
}

func TestSetupValidation(t *testing.T) {
	if _, _, err := setup("127.0.0.1:0", 128, 4, 4, false, 0, "bad", "", 0, false); err == nil {
		t.Fatal("invalid code accepted")
	}
	if _, _, err := setup("127.0.0.1:0", 0, 0, 0, false, 0, "bad", "", 0, false); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, _, err := setup("256.0.0.1:99999", 128, 0, 0, false, 0, "bad", "", 0, false); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestSetupReplacementMode(t *testing.T) {
	srv, node, err := setup("127.0.0.1:0", 64, 0, 0, true, 0, "repl", "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer node.Shutdown()
	cl := rpc.Dial(srv.Addr().String())
	defer cl.Close()
	rep, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 0, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("replacement node served a read from an INIT slot")
	}
}

// Command storaged runs one AJX storage node: a thin server exposing
// the protocol's operations (swap, add, read, locks, recovery,
// garbage collection) over TCP. Storage is in-memory, matching the
// paper's evaluation setup.
//
// Usage:
//
//	storaged -addr :7000 -block-size 1024 -k 3 -n 5
//	storaged -addr :7001 -block-size 1024 -k 3 -n 5 -replacement
//	storaged -addr :7000 -block-size 1024 -metrics-addr :7070
//
// The -k/-n parameters let the node apply erasure-code coefficients
// itself when clients use the broadcast write optimization. Start a
// node with -replacement when it substitutes for a crashed one: its
// blocks begin in INIT mode and recovery repopulates them.
//
// With -metrics-addr set, the node serves GET /debug/metrics on that
// address: a JSON snapshot of per-operation request counts, error
// counts, latency histograms, byte totals, and (with -data-dir) block
// store counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"ecstore/internal/blockstore"
	"ecstore/internal/drainsig"
	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

// config collects every knob of one storaged instance.
type config struct {
	addr         string
	blockSize    int
	k, n         int
	replacement  bool
	lease        time.Duration
	id           string
	dataDir      string
	writeBack    int
	trust        bool
	metricsAddr  string
	drainTimeout time.Duration
	nagle        bool
	sockReadBuf  int
	sockWriteBuf int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7000", "listen address")
	flag.IntVar(&cfg.blockSize, "block-size", 1024, "block size in bytes")
	flag.IntVar(&cfg.k, "k", 0, "erasure code data blocks (enables broadcast adds)")
	flag.IntVar(&cfg.n, "n", 0, "erasure code total blocks (enables broadcast adds)")
	flag.BoolVar(&cfg.replacement, "replacement", false, "start as a replacement node (blocks in INIT mode)")
	flag.DurationVar(&cfg.lease, "lock-lease", 10*time.Second, "recovery-lock lease before expiry (0 disables)")
	flag.StringVar(&cfg.id, "id", "", "node identifier (defaults to the listen address)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "persist blocks in this directory (empty: RAM only, like the paper's evaluation)")
	flag.IntVar(&cfg.writeBack, "write-back", 64, "dirty blocks buffered before flushing to disk (0: write-through)")
	flag.BoolVar(&cfg.trust, "trust-data", false, "serve persisted blocks as valid after a restart (only when the node provably missed no writes)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /debug/metrics JSON on this address (empty: metrics disabled)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "max wait for in-flight requests on SIGTERM before closing (0: close immediately)")
	flag.BoolVar(&cfg.nagle, "nagle", false, "re-enable Nagle's algorithm (default keeps TCP_NODELAY on)")
	flag.IntVar(&cfg.sockReadBuf, "sock-read-buffer", 0, "SO_RCVBUF per accepted connection in bytes (0: kernel default)")
	flag.IntVar(&cfg.sockWriteBuf, "sock-write-buffer", 0, "SO_SNDBUF per accepted connection in bytes (0: kernel default)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "storaged:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	d, err := setup(cfg)
	if err != nil {
		return err
	}
	log.Printf("storaged %s listening on %s (block size %d, replacement=%v)", d.node.ID(), d.srv.Addr(), cfg.blockSize, cfg.replacement)
	if d.metricsLn != nil {
		log.Printf("storaged %s metrics on http://%s/debug/metrics", d.node.ID(), d.MetricsAddr())
	}

	if err := drainsig.Wait(cfg.drainTimeout, func(ctx context.Context) error {
		log.Printf("storaged %s draining (up to %v)", d.node.ID(), cfg.drainTimeout)
		return d.srv.Drain(ctx)
	}); err != nil {
		log.Printf("storaged %s drain: %v", d.node.ID(), err)
	}
	log.Printf("storaged %s shutting down", d.node.ID())
	return d.Close()
}

// daemon holds one running storaged instance: the RPC server, the
// storage node behind it, and (optionally) the metrics endpoint.
type daemon struct {
	srv  *rpc.Server
	node *storage.Node

	reg       *obs.Registry // nil when metrics are disabled
	metricsLn net.Listener  // nil when metrics are disabled
	metricsWg chan struct{}
}

// MetricsAddr returns the bound metrics listen address, or "" when
// metrics are disabled.
func (d *daemon) MetricsAddr() string {
	if d.metricsLn == nil {
		return ""
	}
	return d.metricsLn.Addr().String()
}

// Drain puts the RPC server into graceful-shutdown mode: new requests
// are refused with a typed ErrDraining (clients instantly retire the
// site and read degraded around it) while in-flight handlers get up to
// timeout to finish. A zero timeout skips the wait.
func (d *daemon) Drain(timeout time.Duration) error {
	ctx, cancel := drainsig.Context(timeout)
	defer cancel()
	return d.srv.Drain(ctx)
}

// Close stops serving and flushes the node's store.
func (d *daemon) Close() error {
	if d.metricsLn != nil {
		_ = d.metricsLn.Close()
		<-d.metricsWg
	}
	if err := d.srv.Close(); err != nil {
		return err
	}
	return d.node.Shutdown()
}

// setup builds the node and starts serving; main waits for a signal,
// tests drive the returned daemon directly.
func setup(cfg config) (*daemon, error) {
	d := &daemon{}
	if cfg.metricsAddr != "" {
		d.reg = obs.NewRegistry()
	}
	opts := storage.Options{
		ID:             cfg.id,
		BlockSize:      cfg.blockSize,
		Replacement:    cfg.replacement,
		LockLease:      cfg.lease,
		TrustPersisted: cfg.trust,
	}
	if opts.ID == "" {
		opts.ID = cfg.addr
	}
	if cfg.dataDir != "" {
		store, clean, err := blockstore.OpenFile(blockstore.FileOptions{
			Dir: cfg.dataDir, BlockSize: cfg.blockSize, WriteBackLimit: cfg.writeBack, Obs: d.reg,
		})
		if err != nil {
			return nil, err
		}
		if cfg.trust && !clean {
			log.Printf("storaged: WARNING: -trust-data set but the previous shutdown was unclean; serving blocks as valid anyway")
		}
		opts.Store = store
	}
	if cfg.k > 0 || cfg.n > 0 {
		code, err := erasure.New(cfg.k, cfg.n)
		if err != nil {
			return nil, err
		}
		opts.Code = code
	}
	node, err := storage.New(opts)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	d.node = node
	var rpcm *rpc.Metrics
	if d.reg != nil {
		rpcm = rpc.NewMetrics(d.reg, "rpc")
	}
	d.srv = rpc.Serve(ln, node,
		rpc.WithMetrics(rpcm),
		rpc.WithNoDelay(!cfg.nagle),
		rpc.WithSocketBuffers(cfg.sockReadBuf, cfg.sockWriteBuf),
	)

	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			_ = d.srv.Close()
			_ = node.Shutdown()
			return nil, err
		}
		d.metricsLn = mln
		d.metricsWg = make(chan struct{})
		mux := http.NewServeMux()
		mux.Handle("/debug/metrics", d.reg.Handler())
		go func() {
			defer close(d.metricsWg)
			_ = http.Serve(mln, mux)
		}()
	}
	return d, nil
}

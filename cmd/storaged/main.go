// Command storaged runs one AJX storage node: a thin server exposing
// the protocol's operations (swap, add, read, locks, recovery,
// garbage collection) over TCP. Storage is in-memory, matching the
// paper's evaluation setup.
//
// Usage:
//
//	storaged -addr :7000 -block-size 1024 -k 3 -n 5
//	storaged -addr :7001 -block-size 1024 -k 3 -n 5 -replacement
//
// The -k/-n parameters let the node apply erasure-code coefficients
// itself when clients use the broadcast write optimization. Start a
// node with -replacement when it substitutes for a crashed one: its
// blocks begin in INIT mode and recovery repopulates them.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecstore/internal/blockstore"
	"ecstore/internal/erasure"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", ":7000", "listen address")
		blockSize   = flag.Int("block-size", 1024, "block size in bytes")
		k           = flag.Int("k", 0, "erasure code data blocks (enables broadcast adds)")
		n           = flag.Int("n", 0, "erasure code total blocks (enables broadcast adds)")
		replacement = flag.Bool("replacement", false, "start as a replacement node (blocks in INIT mode)")
		lease       = flag.Duration("lock-lease", 10*time.Second, "recovery-lock lease before expiry (0 disables)")
		id          = flag.String("id", "", "node identifier (defaults to the listen address)")
		dataDir     = flag.String("data-dir", "", "persist blocks in this directory (empty: RAM only, like the paper's evaluation)")
		writeBack   = flag.Int("write-back", 64, "dirty blocks buffered before flushing to disk (0: write-through)")
		trust       = flag.Bool("trust-data", false, "serve persisted blocks as valid after a restart (only when the node provably missed no writes)")
	)
	flag.Parse()
	if err := run(*addr, *blockSize, *k, *n, *replacement, *lease, *id, *dataDir, *writeBack, *trust); err != nil {
		fmt.Fprintln(os.Stderr, "storaged:", err)
		os.Exit(1)
	}
}

func run(addr string, blockSize, k, n int, replacement bool, lease time.Duration, id, dataDir string, writeBack int, trust bool) error {
	srv, node, err := setup(addr, blockSize, k, n, replacement, lease, id, dataDir, writeBack, trust)
	if err != nil {
		return err
	}
	log.Printf("storaged %s listening on %s (block size %d, replacement=%v)", node.ID(), srv.Addr(), blockSize, replacement)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("storaged %s shutting down", node.ID())
	if err := srv.Close(); err != nil {
		return err
	}
	return node.Shutdown()
}

// setup builds the node and starts serving; main waits for a signal,
// tests drive the returned handles directly.
func setup(addr string, blockSize, k, n int, replacement bool, lease time.Duration, id, dataDir string, writeBack int, trust bool) (*rpc.Server, *storage.Node, error) {
	opts := storage.Options{
		ID:             id,
		BlockSize:      blockSize,
		Replacement:    replacement,
		LockLease:      lease,
		TrustPersisted: trust,
	}
	if opts.ID == "" {
		opts.ID = addr
	}
	if dataDir != "" {
		store, clean, err := blockstore.OpenFile(blockstore.FileOptions{
			Dir: dataDir, BlockSize: blockSize, WriteBackLimit: writeBack,
		})
		if err != nil {
			return nil, nil, err
		}
		if trust && !clean {
			log.Printf("storaged: WARNING: -trust-data set but the previous shutdown was unclean; serving blocks as valid anyway")
		}
		opts.Store = store
	}
	if k > 0 || n > 0 {
		code, err := erasure.New(k, n)
		if err != nil {
			return nil, nil, err
		}
		opts.Code = code
	}
	node, err := storage.New(opts)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return rpc.Serve(ln, node), node, nil
}

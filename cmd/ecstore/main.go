// Command ecstore is the client CLI for an AJX erasure-coded storage
// cluster. It speaks to storaged servers over TCP.
//
// Usage:
//
//	ecstore -nodes h1:7000,h2:7000,... -k 3 -n 5 [flags] <command> [args]
//
// With the default -groups=1, -nodes must list exactly n servers (one
// per slot). With -groups=G (G > 1), -nodes is a site pool of any size
// >= n: the address space is split into G stripe groups and each group
// is placed on the n pool sites its rendezvous hash picks, so many
// groups share a larger pool.
//
// Commands:
//
//	put <logical-block>         write stdin (padded) to one block
//	get <logical-block>         read one block to stdout
//	store <offset>              stream stdin to the volume at a byte offset
//	fetch <offset> <length>     stream a byte range to stdout
//	recover <logical-block>     force recovery of the containing stripe
//	monitor                     probe touched stripes and repair
//	scrub                       audit stripes against the code, repair damage
//	gc                          run one garbage-collection pass
//	flush                       merge staged small writes into home blocks
//
// With -stats, a JSON metrics snapshot (per-op RPC counts, latency
// histograms, protocol counters) is printed to stderr after the
// command completes. With -deadline, every RPC carries that budget in
// its frame so storaged servers shed work whose deadline has already
// expired instead of answering calls nobody is waiting for.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ecstore"
	"ecstore/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ecstore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ecstore", flag.ContinueOnError)
	var (
		nodes     = fs.String("nodes", "", "comma-separated storaged addresses (exactly n)")
		k         = fs.Int("k", 3, "erasure code data blocks")
		n         = fs.Int("n", 5, "erasure code total blocks")
		blockSize = fs.Int("block-size", 1024, "block size in bytes")
		clientID  = fs.Uint("client-id", 1, "unique client identity")
		mode      = fs.String("mode", "parallel", "update mode: serial|parallel|hybrid|broadcast")
		timeout   = fs.Duration("timeout", 30*time.Second, "operation timeout")
		deadline  = fs.Duration("deadline", 0, "per-RPC deadline propagated to storaged so servers shed stale work (0: none)")
		stats     = fs.Bool("stats", false, "print a JSON metrics snapshot to stderr after the command")
		groups    = fs.Int("groups", 1, "stripe groups to place over the node pool")
		bpg       = fs.Uint64("blocks-per-group", 0, "blocks per stripe group (multiple of k; default k<<20)")
		cacheB    = fs.Int64("cache-bytes", 0, "client-side hot-read cache budget in bytes (0: disabled)")
		smallW    = fs.Bool("small-write", false, "stage sub-block writes in the erasure-coded small-write tier")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("missing command; see package doc (put|get|store|fetch|recover|monitor|scrub|gc|flush)")
	}
	if *nodes == "" {
		return fmt.Errorf("-nodes is required")
	}
	updateMode, err := parseMode(*mode)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry()
		defer func() { _ = reg.WriteJSON(os.Stderr) }()
	}
	addrs := strings.Split(*nodes, ",")
	vol, err := ecstore.Connect(ecstore.Options{
		K: *k, N: *n, BlockSize: *blockSize, Mode: updateMode, Obs: reg,
		Groups:         *groups,
		BlocksPerGroup: *bpg,
		ClientID:       uint32(*clientID),
		CallDeadline:   *deadline,
		CacheBytes:     *cacheB,
		SmallWriteTier: *smallW,
	}, addrs)
	if err != nil {
		return err
	}
	defer vol.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "put":
		logical, err := argUint(rest, 0, "logical-block")
		if err != nil {
			return err
		}
		data := make([]byte, *blockSize)
		if _, err := io.ReadFull(stdin, data); err != nil && err != io.ErrUnexpectedEOF {
			return err
		}
		return vol.WriteBlock(ctx, logical, data)
	case "get":
		logical, err := argUint(rest, 0, "logical-block")
		if err != nil {
			return err
		}
		blk, err := vol.ReadBlock(ctx, logical)
		if err != nil {
			return err
		}
		_, err = stdout.Write(blk)
		return err
	case "store":
		off, err := argUint(rest, 0, "offset")
		if err != nil {
			return err
		}
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		written, err := vol.WriteAt(ctx, data, int64(off))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "stored %d bytes at offset %d\n", written, off)
		return nil
	case "fetch":
		off, err := argUint(rest, 0, "offset")
		if err != nil {
			return err
		}
		length, err := argUint(rest, 1, "length")
		if err != nil {
			return err
		}
		_, err = io.Copy(stdout, vol.Reader(ctx, int64(off), int64(length)))
		return err
	case "recover":
		logical, err := argUint(rest, 0, "logical-block")
		if err != nil {
			return err
		}
		if err := vol.Recover(ctx, logical); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "stripe recovered")
		return nil
	case "monitor":
		recovered, err := vol.Monitor(ctx, time.Second)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "monitor pass complete: %d stripe(s) recovered\n", recovered)
		return nil
	case "scrub":
		clean, busy, repaired, err := vol.Scrub(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scrub complete: %d clean, %d busy, %d repaired\n", clean, busy, repaired)
		return nil
	case "gc":
		if err := vol.CollectGarbage(ctx); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "garbage collection pass complete")
		return nil
	case "flush":
		if err := vol.Flush(ctx); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "small-write tier flushed")
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func parseMode(s string) (ecstore.UpdateMode, error) {
	switch s {
	case "serial":
		return ecstore.Serial, nil
	case "parallel":
		return ecstore.Parallel, nil
	case "hybrid":
		return ecstore.Hybrid, nil
	case "broadcast":
		return ecstore.Broadcast, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func argUint(args []string, idx int, name string) (uint64, error) {
	if idx >= len(args) {
		return 0, fmt.Errorf("missing argument <%s>", name)
	}
	v, err := strconv.ParseUint(args[idx], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("argument <%s>: %w", name, err)
	}
	return v, nil
}

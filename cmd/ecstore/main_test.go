package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

const testBlockSize = 64

// startCluster launches n in-process storaged-equivalent servers and
// returns the -nodes flag value.
func startCluster(t *testing.T, n int) string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node := storage.MustNew(storage.Options{ID: fmt.Sprintf("cli%d", i), BlockSize: testBlockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	return strings.Join(addrs, ",")
}

func cli(t *testing.T, nodes string, stdin string, args ...string) (string, error) {
	t.Helper()
	full := append([]string{
		"-nodes", nodes, "-k", "2", "-n", "4",
		"-block-size", fmt.Sprint(testBlockSize),
	}, args...)
	var out bytes.Buffer
	err := run(full, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestCLIPutGet(t *testing.T) {
	nodes := startCluster(t, 4)
	if _, err := cli(t, nodes, "hello stripe", "put", "3"); err != nil {
		t.Fatal(err)
	}
	out, err := cli(t, nodes, "", "get", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "hello stripe") {
		t.Fatalf("get returned %q", out[:20])
	}
	if len(out) != testBlockSize {
		t.Fatalf("get returned %d bytes, want the full block", len(out))
	}
}

func TestCLIStoreFetch(t *testing.T) {
	nodes := startCluster(t, 4)
	payload := strings.Repeat("abcdefgh", 20) // 160 bytes, unaligned
	out, err := cli(t, nodes, payload, "store", "37")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stored 160 bytes at offset 37") {
		t.Fatalf("store output: %q", out)
	}
	out, err = cli(t, nodes, "", "fetch", "37", "160")
	if err != nil {
		t.Fatal(err)
	}
	if out != payload {
		t.Fatalf("fetch mismatch: %q", out)
	}
}

func TestCLIRecoverMonitorGC(t *testing.T) {
	nodes := startCluster(t, 4)
	if _, err := cli(t, nodes, "x", "put", "0"); err != nil {
		t.Fatal(err)
	}
	out, err := cli(t, nodes, "", "recover", "0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stripe recovered") {
		t.Fatalf("recover output: %q", out)
	}
	out, err = cli(t, nodes, "", "monitor")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "monitor pass complete") {
		t.Fatalf("monitor output: %q", out)
	}
	out, err = cli(t, nodes, "", "gc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "garbage collection pass complete") {
		t.Fatalf("gc output: %q", out)
	}
}

func TestCLIModes(t *testing.T) {
	nodes := startCluster(t, 4)
	for _, mode := range []string{"serial", "parallel", "hybrid", "broadcast"} {
		if _, err := cli(t, nodes, "m", "-mode", mode, "put", "1"); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
	if _, err := cli(t, nodes, "", "-mode", "bogus", "get", "1"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	nodes := startCluster(t, 4)
	cases := [][]string{
		{},                      // missing command
		{"frobnicate"},          // unknown command
		{"put"},                 // missing argument
		{"get", "not-a-number"}, // bad argument
		{"fetch", "0"},          // missing length
	}
	for _, args := range cases {
		if _, err := cli(t, nodes, "", args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Missing -nodes entirely.
	var out bytes.Buffer
	if err := run([]string{"get", "0"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing -nodes accepted")
	}
	// Wrong address count.
	if err := run([]string{"-nodes", "a,b", "-k", "2", "-n", "4", "get", "0"}, strings.NewReader(""), &out); err == nil {
		t.Error("wrong address count accepted")
	}
}

func TestCLIScrub(t *testing.T) {
	nodes := startCluster(t, 4)
	if _, err := cli(t, nodes, "x", "put", "0"); err != nil {
		t.Fatal(err)
	}
	out, err := cli(t, nodes, "", "scrub")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "scrub complete") {
		t.Fatalf("scrub output: %q", out)
	}
}

func TestCLISharded(t *testing.T) {
	// A 7-server pool hosting 8 groups of n=4; each group uses the 4
	// sites its rendezvous hash picks. One pass writes a block in
	// several different groups and reads them back through fresh CLI
	// invocations (placement must be deterministic across processes).
	nodes := startCluster(t, 7)
	sharded := []string{"-groups", "8", "-blocks-per-group", "8"}
	for _, blk := range []string{"0", "9", "26", "63"} {
		args := append(append([]string{}, sharded...), "put", blk)
		if _, err := cli(t, nodes, "payload-"+blk, args...); err != nil {
			t.Fatalf("put %s: %v", blk, err)
		}
	}
	for _, blk := range []string{"0", "9", "26", "63"} {
		args := append(append([]string{}, sharded...), "get", blk)
		out, err := cli(t, nodes, "", args...)
		if err != nil {
			t.Fatalf("get %s: %v", blk, err)
		}
		if !strings.HasPrefix(out, "payload-"+blk) {
			t.Fatalf("get %s returned %q", blk, out[:16])
		}
	}
	// Streaming across a group boundary (blocks 7..8 span groups 0/1).
	payload := strings.Repeat("0123456789abcdef", 10) // 160 bytes
	args := append(append([]string{}, sharded...), "store", "450")
	if _, err := cli(t, nodes, payload, args...); err != nil {
		t.Fatal(err)
	}
	args = append(append([]string{}, sharded...), "fetch", "450", "160")
	out, err := cli(t, nodes, "", args...)
	if err != nil {
		t.Fatal(err)
	}
	if out != payload {
		t.Fatalf("sharded fetch mismatch: %q", out)
	}
	// Maintenance commands route across every touched group.
	for _, cmd := range []string{"gc", "scrub", "monitor"} {
		args := append(append([]string{}, sharded...), cmd)
		if _, err := cli(t, nodes, "", args...); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
	// A pool smaller than n is rejected.
	args = append([]string{"-groups", "2"}, "get", "0")
	if _, err := cli(t, "a:1,b:2", "", args...); err == nil {
		t.Fatal("pool smaller than n accepted")
	}
}

// TestCLIDeadline exercises the -deadline flag: a generous per-RPC
// deadline leaves commands working, while a nanosecond budget expires
// before any server can answer and the command fails with the typed
// deadline error propagated back through the wire.
func TestCLIDeadline(t *testing.T) {
	nodes := startCluster(t, 4)
	if _, err := cli(t, nodes, "deadline ok", "-deadline", "5s", "put", "2"); err != nil {
		t.Fatalf("put with 5s deadline: %v", err)
	}
	out, err := cli(t, nodes, "", "-deadline", "5s", "get", "2")
	if err != nil {
		t.Fatalf("get with 5s deadline: %v", err)
	}
	if !strings.HasPrefix(out, "deadline ok") {
		t.Fatalf("get returned %q", out[:16])
	}
	_, err = cli(t, nodes, "wont make it", "-deadline", "1ns", "put", "2")
	if err == nil {
		t.Fatal("put with 1ns deadline succeeded")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("1ns-deadline error does not name the deadline: %v", err)
	}
}

package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestEveryRunnerQuick exercises every experiment runner in quick mode
// and checks that each prints at least one table. This is the CLI's
// integration test; the numeric shape assertions live in
// internal/experiments.
func TestEveryRunnerQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner sweep skipped in -short mode")
	}
	ctx := context.Background()
	for name, r := range runners {
		name, r := name, r
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r(ctx, &buf, true); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "== ") {
				t.Fatalf("%s produced no table:\n%s", name, out)
			}
			if !strings.Contains(out, "---") {
				t.Fatalf("%s table has no separator", name)
			}
		})
	}
}

func TestRunnerNamesCoverDefaultList(t *testing.T) {
	defaults := []string{
		"fig1", "fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"recovery", "latency", "readratio", "space", "ablation",
		"multigroup", "bulkio", "repairstorm", "graytail",
		"gatewayqos", "rpcwire", "smallwrite",
	}
	for _, name := range defaults {
		if _, ok := runners[name]; !ok {
			t.Errorf("default experiment %q has no runner", name)
		}
	}
	if len(runners) != len(defaults) {
		t.Errorf("runners map has %d entries, default list has %d — keep them in sync", len(runners), len(defaults))
	}
}

// Command experiments regenerates every table and figure of the
// paper's evaluation section.
//
// Usage:
//
//	experiments [-quick] [-metrics-out metrics.jsonl]
//	            [fig1 fig8a fig8b fig8c fig9a fig9b fig9c
//	             fig9d fig10a fig10b fig10c fig10d recovery latency
//	             readratio space ablation multigroup bulkio repairstorm graytail
//	             gatewayqos rpcwire smallwrite]
//
// With no arguments it runs everything. -quick shrinks the measurement
// windows so a full run finishes in well under a minute; drop it for
// the numbers recorded in EXPERIMENTS.md. -metrics-out appends one
// JSON line per experiment ({"experiment": ..., "metrics": {...}})
// with the protocol and transport metrics behind each figure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ecstore/internal/experiments"
	"ecstore/internal/obs"
)

type runner func(ctx context.Context, w io.Writer, quick bool) error

func main() {
	quick := flag.Bool("quick", false, "shrink measurement windows for a fast pass")
	metricsOut := flag.String("metrics-out", "", "append one JSON line of metrics per experiment to this file")
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = []string{
			"fig1", "fig8a", "fig8b", "fig8c",
			"fig9a", "fig9b", "fig9c", "fig9d",
			"fig10a", "fig10b", "fig10c", "fig10d",
			"recovery", "latency", "readratio", "space", "ablation",
			"multigroup", "bulkio", "repairstorm", "graytail",
			"gatewayqos", "rpcwire", "smallwrite",
		}
	}
	var metricsFile *os.File
	if *metricsOut != "" {
		f, err := os.OpenFile(*metricsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		metricsFile = f
		defer f.Close()
	}
	ctx := context.Background()
	for _, name := range names {
		r, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if metricsFile != nil {
			// A fresh registry per experiment keeps each JSON line
			// attributable to one figure.
			experiments.SetObsRegistry(obs.NewRegistry())
		}
		if err := r(ctx, os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		if metricsFile != nil {
			if err := writeMetricsLine(metricsFile, name); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
}

// writeMetricsLine appends {"experiment": name, "metrics": {...}} from
// the current registry as one JSON line.
func writeMetricsLine(w io.Writer, name string) error {
	line, err := json.Marshal(map[string]any{
		"experiment": name,
		"metrics":    experiments.ObsRegistry().Snapshot(),
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", line)
	return err
}

func fig9Params(quick bool) experiments.Fig9Params {
	p := experiments.DefaultFig9Params()
	if quick {
		p.PointTime = 120 * time.Millisecond
		p.Warmup = 50 * time.Millisecond
		p.Outstanding = []int{1, 4, 16, 64}
		p.TimeScale = 4
	}
	return p
}

func simParams(quick bool) experiments.SimParams {
	p := experiments.DefaultSimParams()
	if quick {
		p.Duration = 60 * time.Millisecond
	}
	return p
}

func microBudget(quick bool) time.Duration {
	if quick {
		return 2 * time.Millisecond
	}
	return 20 * time.Millisecond
}

func printTable(w io.Writer, t *experiments.Table, err error) error {
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}

var runners = map[string]runner{
	"fig1": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig1Analytic(3, 5)
		if err := printTable(w, t, err); err != nil {
			return err
		}
		ops := 64
		if quick {
			ops = 16
		}
		t, err = experiments.Fig1Measured(ctx, 3, 5, 1024, ops)
		if err := printTable(w, t, err); err != nil {
			return err
		}
		t, err = experiments.Fig1Simulated(8, 10, simParams(quick))
		return printTable(w, t, err)
	},
	"fig8a": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig8a(1024, microBudget(quick))
		return printTable(w, t, err)
	},
	"fig8b": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig8b(1024, microBudget(quick))
		return printTable(w, t, err)
	},
	"fig8c": func(ctx context.Context, w io.Writer, quick bool) error {
		return printTable(w, experiments.Fig8c(16), nil)
	},
	"fig9a": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig9a(ctx, fig9Params(quick))
		return printTable(w, t, err)
	},
	"fig9b": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig9b(ctx, fig9Params(quick))
		return printTable(w, t, err)
	},
	"fig9c": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig9c(ctx, fig9Params(quick))
		return printTable(w, t, err)
	},
	"fig9d": func(ctx context.Context, w io.Writer, quick bool) error {
		buckets, bucket := 15, 200*time.Millisecond
		if quick {
			buckets, bucket = 12, 100*time.Millisecond
		}
		t, err := experiments.Fig9d(ctx, fig9Params(quick), buckets, bucket)
		return printTable(w, t, err)
	},
	"fig10a": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig10a(simParams(quick))
		return printTable(w, t, err)
	},
	"fig10b": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig10b(simParams(quick))
		return printTable(w, t, err)
	},
	"fig10c": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig10c(simParams(quick))
		return printTable(w, t, err)
	},
	"fig10d": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.Fig10d(simParams(quick))
		return printTable(w, t, err)
	},
	"recovery": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.RecoveryThroughput(ctx, fig9Params(quick), 3)
		return printTable(w, t, err)
	},
	"readratio": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.ReadWriteRatio(ctx, fig9Params(quick))
		return printTable(w, t, err)
	},
	"latency": func(ctx context.Context, w io.Writer, quick bool) error {
		writes := 256
		if quick {
			writes = 64
		}
		t, err := experiments.LatencyBreakdown(ctx, fig9Params(quick), writes)
		return printTable(w, t, err)
	},
	"multigroup": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.MultiGroup(ctx, quick)
		return printTable(w, t, err)
	},
	"bulkio": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.BulkIO(ctx, quick)
		return printTable(w, t, err)
	},
	"repairstorm": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.RepairStorm(ctx, quick)
		return printTable(w, t, err)
	},
	"graytail": func(ctx context.Context, w io.Writer, quick bool) error {
		t, _, err := experiments.GrayTail(ctx, quick)
		return printTable(w, t, err)
	},
	"gatewayqos": func(ctx context.Context, w io.Writer, quick bool) error {
		t, _, err := experiments.GatewayQoS(ctx, quick)
		return printTable(w, t, err)
	},
	"rpcwire": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.RPCWire(ctx, quick)
		return printTable(w, t, err)
	},
	"smallwrite": func(ctx context.Context, w io.Writer, quick bool) error {
		t, _, err := experiments.SmallWrite(ctx, quick)
		return printTable(w, t, err)
	},
	"ablation": func(ctx context.Context, w io.Writer, quick bool) error {
		t, err := experiments.AblationHybrid(simParams(quick))
		if err := printTable(w, t, err); err != nil {
			return err
		}
		t, err = experiments.AblationBatchedStripeWrite(simParams(quick))
		if err := printTable(w, t, err); err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "ecstore-ablation")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stripes := 512
		if quick {
			stripes = 64
		}
		t, err = experiments.AblationWriteBack(dir, 1024, stripes, 4)
		if err := printTable(w, t, err); err != nil {
			return err
		}
		t, err = experiments.AblationBatchedReal(ctx, fig9Params(quick))
		return printTable(w, t, err)
	},
	"space": func(ctx context.Context, w io.Writer, quick bool) error {
		blocks := 1024
		if quick {
			blocks = 128
		}
		t, err := experiments.SpaceOverhead(ctx, 1024, blocks)
		return printTable(w, t, err)
	},
}

// Command loadgen drives the object gateway with an open-loop,
// multi-tenant workload: Poisson arrivals at a configured offered
// rate per tenant, Zipfian key popularity (any exponent, including
// the canonical 0.99), and a configurable read/write mix. Because the
// loop is open, a shedding or slow gateway does not throttle the
// generator — queueing shows up in the measured latency, and typed
// sheds (429/ErrThrottled, 503/ErrOverloaded) are counted separately.
//
// Usage:
//
//	loadgen -tenants 2 -rate 500 -duration 5s -size 16384 -zipf-s 0.99
//	loadgen -tenants 2 -limit t1:50:0 -duration 5s -out BENCH_gateway.json
//	loadgen -url http://127.0.0.1:7080 -tenants 1 -rate 200 -duration 10s
//
// By default the generator builds an in-process gateway over a local
// erasure-coded volume (-k/-n/-block-size/-groups); with -url it
// drives a running gatewayd over HTTP instead. Tenants are named
// t0..tN-1; each -limit name:ops_per_sec:bytes_per_sec pins one
// tenant's QoS budget (in-process mode only). Every tenant's keyspace
// is preloaded before the clock starts.
//
// The per-tenant report (offered/completed/shed counts, achieved
// throughput, p50/p95/p99/max latency from interpolated histogram
// quantiles) prints as a table; -out additionally writes it as JSON.
// If the -out file already exists, its ci_baseline section is
// preserved, so regenerating BENCH_gateway.json never loses the CI
// gate numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"ecstore/internal/gateway"
	"ecstore/internal/loadgen"
	"ecstore/internal/proto"
	"ecstore/internal/volume"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		tenants  = fs.Int("tenants", 2, "tenant count (named t0..tN-1)")
		rate     = fs.Float64("rate", 500, "offered load per tenant, ops/s")
		readFrac = fs.Float64("read-frac", 0.7, "fraction of ops that are reads")
		keys     = fs.Int("keys", 256, "keyspace size per tenant")
		zipfS    = fs.Float64("zipf-s", 0.99, "Zipf popularity exponent (0: uniform)")
		size     = fs.Int("size", 16<<10, "object size in bytes")
		duration = fs.Duration("duration", 5*time.Second, "measured window")
		seed     = fs.Int64("seed", 1, "RNG seed (arrivals, keys, mix)")
		settle   = fs.Duration("settle", 0, "sleep between preload and the window (refills QoS debt)")
		maxConc  = fs.Int("max-concurrent", 0, "gateway concurrency cap (0: default, negative: unlimited)")
		k        = fs.Int("k", 3, "erasure code data blocks (in-process mode)")
		n        = fs.Int("n", 5, "erasure code total blocks (in-process mode)")
		bs       = fs.Int("block-size", 4096, "block size in bytes (in-process mode)")
		groups   = fs.Int("groups", 1, "stripe groups (in-process mode)")
		url      = fs.String("url", "", "drive a running gatewayd at this base URL instead")
		defLimit = fs.String("default-limit", "", "QoS for unconfigured tenants as ops:bytes")
		out      = fs.String("out", "", "also write the report as JSON to this file")
	)
	var limits limitFlags
	fs.Var(&limits, "limit", "per-tenant QoS as name:ops_per_sec:bytes_per_sec (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 {
		return fmt.Errorf("-tenants %d", *tenants)
	}

	cfg := loadgen.Config{
		Duration: *duration,
		Seed:     *seed,
		Preload:  true,
		Settle:   *settle,
	}
	for i := 0; i < *tenants; i++ {
		cfg.Tenants = append(cfg.Tenants, loadgen.TenantConfig{
			Name:         fmt.Sprintf("t%d", i),
			Rate:         *rate,
			ReadFraction: *readFrac,
			Keys:         *keys,
			ZipfS:        *zipfS,
			ObjectSize:   *size,
		})
	}

	var tgt loadgen.Target
	var targetDesc string
	if *url != "" {
		tgt = &loadgen.HTTPTarget{BaseURL: strings.TrimRight(*url, "/")}
		targetDesc = *url
	} else {
		local, err := volume.NewLocal(volume.LocalOptions{
			K: *k, N: *n, BlockSize: *bs, Groups: *groups, ClientID: proto.ClientID(1),
		})
		if err != nil {
			return err
		}
		defer local.Close()
		var def gateway.TenantLimit
		if *defLimit != "" {
			parts := strings.Split(*defLimit, ":")
			if len(parts) != 2 {
				return fmt.Errorf("-default-limit %q: want ops:bytes", *defLimit)
			}
			var err error
			if def, err = parseRates(parts[0], parts[1]); err != nil {
				return err
			}
		}
		gw := gateway.New(local, gateway.Options{
			Stripe:        *k,
			Tenants:       limits.m,
			DefaultLimit:  def,
			MaxConcurrent: *maxConc,
		})
		tgt = &loadgen.GatewayTarget{GW: gw}
		targetDesc = fmt.Sprintf("in-process gateway over local k=%d n=%d volume (%d B blocks, %d group(s))", *k, *n, *bs, *groups)
	}

	fmt.Fprintf(stdout, "loadgen: %d tenant(s) x %.0f ops/s offered, %d x %d B keys, Zipf(%.2f), %.0f%% reads, %v window\n",
		*tenants, *rate, *keys, *size, *zipfS, *readFrac*100, *duration)
	fmt.Fprintf(stdout, "target: %s\n\n", targetDesc)

	results, err := loadgen.Run(context.Background(), cfg, tgt)
	if err != nil {
		return err
	}
	printTable(stdout, results)

	if *out != "" {
		if err := writeReport(*out, cfg, results, targetDesc); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *out)
	}
	return nil
}

func printTable(w io.Writer, results []loadgen.Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\toffered\tok\tthrottled\toverload\terrors\tops/s\tMB/s\tp50\tp95\tp99\tmax")
	for _, r := range results {
		mbps := float64(r.Bytes) / r.Elapsed.Seconds() / (1 << 20)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%v\t%v\t%v\t%v\n",
			r.Tenant, r.Offered, r.Completed, r.Throttled, r.Overloaded, r.Errors,
			r.AchievedOps, mbps,
			r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
			r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
	}
	tw.Flush()
}

// tenantReport is one tenant's JSON record.
type tenantReport struct {
	Tenant      string  `json:"tenant"`
	Offered     uint64  `json:"offered"`
	Completed   uint64  `json:"completed"`
	Throttled   uint64  `json:"throttled"`
	Overloaded  uint64  `json:"overloaded"`
	Errors      uint64  `json:"errors"`
	AchievedOps float64 `json:"achieved_ops_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// writeReport writes the JSON report, preserving an existing file's
// ci_baseline (and any other unknown top-level sections).
func writeReport(path string, cfg loadgen.Config, results []loadgen.Result, targetDesc string) error {
	doc := make(map[string]any)
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc) // best-effort: a broken file is replaced
	}
	reports := make([]tenantReport, len(results))
	for i, r := range results {
		reports[i] = tenantReport{
			Tenant:      r.Tenant,
			Offered:     r.Offered,
			Completed:   r.Completed,
			Throttled:   r.Throttled,
			Overloaded:  r.Overloaded,
			Errors:      r.Errors,
			AchievedOps: round2(r.AchievedOps),
			MBPerSec:    round2(float64(r.Bytes) / r.Elapsed.Seconds() / (1 << 20)),
			P50Ms:       roundMs(r.P50),
			P95Ms:       roundMs(r.P95),
			P99Ms:       roundMs(r.P99),
			MaxMs:       roundMs(r.Max),
		}
	}
	doc["recorded"] = time.Now().Format("2006-01-02")
	doc["loadgen_run"] = map[string]any{
		"target":      targetDesc,
		"duration":    cfg.Duration.String(),
		"seed":        cfg.Seed,
		"tenant_cfgs": cfg.Tenants,
		"tenants":     reports,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func roundMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// limitFlags parses repeated -limit name:ops:bytes flags.
type limitFlags struct {
	m map[string]gateway.TenantLimit
}

func (l *limitFlags) String() string { return fmt.Sprintf("%v", l.m) }

func (l *limitFlags) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 || parts[0] == "" {
		return fmt.Errorf("limit %q: want name:ops_per_sec:bytes_per_sec", s)
	}
	limit, err := parseRates(parts[1], parts[2])
	if err != nil {
		return fmt.Errorf("limit %q: %w", s, err)
	}
	if l.m == nil {
		l.m = make(map[string]gateway.TenantLimit)
	}
	l.m[parts[0]] = limit
	return nil
}

func parseRates(opsS, bytesS string) (gateway.TenantLimit, error) {
	ops, err := strconv.ParseFloat(opsS, 64)
	if err != nil {
		return gateway.TenantLimit{}, fmt.Errorf("ops rate %q: %w", opsS, err)
	}
	bts, err := strconv.ParseFloat(bytesS, 64)
	if err != nil {
		return gateway.TenantLimit{}, fmt.Errorf("bytes rate %q: %w", bytesS, err)
	}
	if ops < 0 || bts < 0 || math.IsNaN(ops) || math.IsNaN(bts) {
		return gateway.TenantLimit{}, fmt.Errorf("negative rate in %s:%s", opsS, bytesS)
	}
	return gateway.TenantLimit{OpsPerSec: ops, BytesPerSec: bts}, nil
}

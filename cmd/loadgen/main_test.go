package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIRunsAndReports(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	// Seed the out file with a ci_baseline to check it survives.
	seeded := `{"ci_baseline": {"internal/gateway": {"BenchmarkAdmit": 123.4}}, "stale": true}`
	if err := os.WriteFile(outPath, []byte(seeded), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err := run([]string{
		"-tenants", "2", "-rate", "300", "-keys", "32", "-size", "2048",
		"-duration", "300ms", "-k", "2", "-n", "3", "-block-size", "512",
		"-limit", "t1:20:0",
		"-out", outPath,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	outStr := buf.String()
	for _, want := range []string{"t0", "t1", "throttled", "p99", "report written"} {
		if !strings.Contains(outStr, want) {
			t.Fatalf("output missing %q:\n%s", want, outStr)
		}
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if _, ok := doc["loadgen_run"]; !ok {
		t.Fatal("report missing loadgen_run")
	}
	if string(doc["ci_baseline"]) == "" || !strings.Contains(string(doc["ci_baseline"]), "BenchmarkAdmit") {
		t.Fatalf("ci_baseline not preserved: %s", doc["ci_baseline"])
	}

	var report struct {
		Run struct {
			Tenants []struct {
				Tenant    string  `json:"tenant"`
				Offered   uint64  `json:"offered"`
				Completed uint64  `json:"completed"`
				Throttled uint64  `json:"throttled"`
				P99Ms     float64 `json:"p99_ms"`
			} `json:"tenants"`
		} `json:"loadgen_run"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Run.Tenants) != 2 {
		t.Fatalf("report has %d tenants", len(report.Run.Tenants))
	}
	var sawThrottle bool
	for _, tr := range report.Run.Tenants {
		if tr.Offered == 0 {
			t.Fatalf("tenant %s offered nothing", tr.Tenant)
		}
		if tr.Tenant == "t1" && tr.Throttled > 0 {
			sawThrottle = true
		}
		if tr.Tenant == "t0" && tr.Completed == 0 {
			t.Fatal("unlimited tenant completed nothing")
		}
	}
	// t1 is capped at 20 ops/s against 300 offered: it must have shed.
	if !sawThrottle {
		t.Fatal("capped tenant t1 was never throttled")
	}
}

func TestCLIValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-tenants", "0"}, &buf); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if err := run([]string{"-limit", "bogus"}, &buf); err == nil {
		t.Fatal("malformed -limit accepted")
	}
	if err := run([]string{"-default-limit", "5"}, &buf); err == nil {
		t.Fatal("malformed -default-limit accepted")
	}
}

// Simulate: explore protocol design points with the discrete-event
// simulator — no wall-clock time, fully deterministic. It sweeps a few
// questions a storage architect would ask before deploying: how do the
// AJX variants compare with the FAB/GWGR baselines, what does
// redundancy cost, and what do the broadcast and batched-stripe
// optimizations buy.
package main

import (
	"fmt"
	"log"
	"time"

	"ecstore/internal/sim"
)

func run1(cfg sim.Config) sim.Result {
	r, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	const blockSize = 1024
	dur := 250 * time.Millisecond

	fmt.Println("== protocol face-off: 8-of-10 code, 8 clients, random 1 KB writes ==")
	for _, p := range []sim.Protocol{sim.AJXPar, sim.AJXBcast, sim.AJXSer, sim.FAB, sim.GWGR} {
		cfg := sim.DefaultConfig(8, 10, blockSize, 8, 16, p, sim.RandomWrite)
		cfg.Duration = dur
		r := run1(cfg)
		fmt.Printf("  %-10s %8.1f MB/s   avg latency %v\n", p, r.ThroughputMBps(), r.AvgLatency.Round(time.Microsecond))
	}

	fmt.Println("\n== the price of redundancy: k=8, 1 client, random writes ==")
	for _, p := range []int{1, 2, 4, 8} {
		cfg := sim.DefaultConfig(8, 8+p, blockSize, 1, 16, sim.AJXPar, sim.RandomWrite)
		cfg.Duration = dur
		r := run1(cfg)
		fmt.Printf("  p=%-2d  %8.1f MB/s\n", p, r.ThroughputMBps())
	}

	fmt.Println("\n== broadcast optimization: same sweep with one uplink payload ==")
	for _, p := range []int{1, 2, 4, 8} {
		cfg := sim.DefaultConfig(8, 8+p, blockSize, 1, 16, sim.AJXBcast, sim.RandomWrite)
		cfg.Duration = dur
		r := run1(cfg)
		fmt.Printf("  p=%-2d  %8.1f MB/s\n", p, r.ThroughputMBps())
	}

	fmt.Println("\n== sequential stripe writes: per-block vs batched parity deltas ==")
	for _, kn := range [][2]int{{4, 6}, {8, 10}, {8, 16}} {
		per := run1(func() sim.Config {
			c := sim.DefaultConfig(kn[0], kn[1], blockSize, 1, 8, sim.AJXPar, sim.SequentialWrite)
			c.Duration = dur
			return c
		}())
		bat := run1(func() sim.Config {
			c := sim.DefaultConfig(kn[0], kn[1], blockSize, 1, 8, sim.AJXPar, sim.SequentialWriteBatched)
			c.Duration = dur
			return c
		}())
		fmt.Printf("  %d-of-%-2d  per-block %7.1f MB/s   batched %7.1f MB/s   (%.1fx)\n",
			kn[0], kn[1], per.ThroughputMBps(), bat.ThroughputMBps(),
			bat.ThroughputMBps()/per.ThroughputMBps())
	}

	fmt.Println("\n== node utilization at saturation: 14-of-16, 64 clients ==")
	cfg := sim.DefaultConfig(14, 16, blockSize, 64, 16, sim.AJXPar, sim.RandomWrite)
	cfg.Duration = dur
	r := run1(cfg)
	fmt.Printf("  aggregate %0.1f MB/s; storage-node NIC utilization:", r.ThroughputMBps())
	for _, u := range r.NodeUtilization {
		fmt.Printf(" %2.0f%%", u*100)
	}
	fmt.Println()
}

// Sharded volume walkthrough: place 8 stripe groups over a 12-site
// pool with rendezvous hashing, write across the whole address space,
// then crash one site and watch only the groups placed on it remap —
// every other group's placement and data path is untouched.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"
)

import "ecstore"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 8 stripe groups, each a 2-of-4 code, spread over a 12-site pool.
	// Every group gets the 4 sites its rendezvous hash picks, so the
	// pool's capacity and load are shared without any central map.
	vol, err := ecstore.NewLocalShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: 1024,
		Groups:         8,
		Sites:          12,
		BlocksPerGroup: 64,
	})
	if err != nil {
		return err
	}
	defer vol.Close()

	// One block in every group. The flat address space is split into
	// 64-block group extents: addr 0 is group 0, addr 64 group 1, ...
	for g := uint64(0); g < 8; g++ {
		addr := g*64 + g // a different offset in each group, why not
		block := bytes.Repeat([]byte{byte('A' + g)}, 1024)
		if err := vol.WriteBlock(ctx, addr, block); err != nil {
			return fmt.Errorf("write group %d: %w", g, err)
		}
	}
	fmt.Printf("wrote 8 groups across a 12-site pool (%d blocks capacity)\n", vol.Capacity())

	// Show the placement: deterministic, so any client anywhere
	// computes the same map from just the pool membership.
	victim := ""
	for g := uint64(0); g < 8; g++ {
		sites, err := vol.GroupSites(g)
		if err != nil {
			return err
		}
		fmt.Printf("group %d -> %v\n", g, sites)
		if g == 0 {
			victim = sites[0]
		}
	}

	// Crash one site. Groups placed on it degrade until their next
	// access reports the failure; the pool retires the site and each
	// affected group remaps just the lost slot to a fresh INIT shard,
	// which recovery rebuilds from the survivors.
	if err := vol.CrashSite(victim); err != nil {
		return err
	}
	fmt.Printf("crashed site %s\n", victim)

	for g := uint64(0); g < 8; g++ {
		addr := g*64 + g
		got, err := vol.ReadBlock(ctx, addr)
		if err != nil {
			return fmt.Errorf("read group %d after crash: %w", g, err)
		}
		want := bytes.Repeat([]byte{byte('A' + g)}, 1024)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("group %d corrupted after crash", g)
		}
	}
	fmt.Printf("all 8 groups intact after losing %s\n", victim)

	// Only the groups that used the dead site did any repair work.
	for g := uint64(0); g < 8; g++ {
		st := vol.GroupStats(g)
		repairs := st.DegradedReads.Load() + st.Recoveries.Load() + st.RecoveryPickups.Load()
		sites, err := vol.GroupSites(g)
		if err != nil {
			return err
		}
		fmt.Printf("group %d: %d repair events, now on %v\n", g, repairs, sites)
	}
	return nil
}

// Concurrent: the paper's Fig. 3 scenario live. Multiple writers
// update blocks coupled by the same erasure-code stripe — including
// races on the same block — with zero client-to-client coordination:
// no locks, no two-phase commit. Afterward the stripes are verified
// block-for-block against the erasure code, and one writer is
// "crashed" mid-write to show the monitoring mechanism restoring full
// redundancy (Section 3.10).
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/proto"
)

const (
	blockSize = 256
	writers   = 4
	rounds    = 40
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// internal/cluster exposes the erasure-code verification hooks the
	// public facade deliberately hides.
	c, err := cluster.New(cluster.Options{
		K: 2, N: 4, BlockSize: blockSize, Clients: writers,
		RetryDelay: 200 * time.Microsecond,
	})
	if err != nil {
		return err
	}

	// Phase 1: every writer hammers its own block of stripe 0 — the
	// blocks are different but coupled through the parity nodes.
	fmt.Printf("%d writers, %d rounds each, distinct blocks of one stripe...\n", 2, rounds)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v := make([]byte, blockSize)
				binary.BigEndian.PutUint64(v, uint64(w*1000+r))
				if err := c.Clients[w].WriteBlock(ctx, 0, w, v); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ok, err := c.VerifyStripe(0); err != nil || !ok {
		return fmt.Errorf("stripe 0 inconsistent after concurrent writes (ok=%v err=%v)", ok, err)
	}
	fmt.Println("stripe 0 parity verified: interleaved adds commuted perfectly")

	// Phase 2: all writers race on the SAME block. The swap/otid chain
	// orders them; the final stripe is consistent and holds exactly
	// one of the written values.
	fmt.Printf("%d writers, %d rounds each, the SAME block...\n", writers, rounds/2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds/2; r++ {
				v := make([]byte, blockSize)
				binary.BigEndian.PutUint64(v, uint64(10000+w*100+r))
				if err := c.Clients[w].WriteBlock(ctx, 1, 0, v); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ok, err := c.VerifyStripe(1); err != nil || !ok {
		return fmt.Errorf("stripe 1 inconsistent after same-block races (ok=%v err=%v)", ok, err)
	}
	final, err := c.Clients[0].ReadBlock(ctx, 1, 0)
	if err != nil {
		return err
	}
	fmt.Printf("stripe 1 parity verified; final value %d (one of the racers)\n",
		binary.BigEndian.Uint64(final))

	// Phase 3: a client "crashes" after its swap but before its adds,
	// leaving the stripe's redundancy stale. The monitoring mechanism
	// spots the lingering write identifier and repairs the stripe.
	node, err := c.Dir.Node(2, 0)
	if err != nil {
		return err
	}
	orphan := make([]byte, blockSize)
	for i := range orphan {
		orphan[i] = 0xDD
	}
	if _, err := node.Swap(ctx, &proto.SwapReq{
		Stripe: 2, Slot: 0, Value: orphan,
		NTID: proto.TID{Seq: 1, Block: 0, Client: 99},
	}); err != nil {
		return err
	}
	if ok, _ := c.VerifyStripe(2); ok {
		return fmt.Errorf("expected stripe 2 to be inconsistent after the partial write")
	}
	fmt.Println("injected a partial write (client crash between swap and adds)")
	report, err := c.Clients[0].MonitorStripes(ctx, []uint64{2}, 0)
	if err != nil {
		return err
	}
	if ok, err := c.VerifyStripe(2); err != nil || !ok {
		return fmt.Errorf("monitor did not restore stripe 2 (ok=%v err=%v)", ok, err)
	}
	fmt.Printf("monitoring pass recovered %d stripe(s); full redundancy restored\n", len(report.Recovered))

	for w, cl := range c.Clients {
		s := cl.Stats()
		fmt.Printf("  client %d: writes=%d restarts=%d order-waits=%d recoveries=%d\n",
			w+1, s.Writes.Load(), s.WriteRestarts.Load(), s.OrderWaits.Load(),
			s.Recoveries.Load()+s.RecoveryPickups.Load())
	}
	return nil
}

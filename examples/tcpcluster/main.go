// TCP cluster: the real deployment path. Five storage-node servers
// are started on loopback TCP (the same servers cmd/storaged runs),
// a client connects over the network, writes data, one server is
// killed, a replacement is started and installed, and recovery
// rebuilds the lost blocks onto it — all over real sockets.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"ecstore"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

const blockSize = 1024

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func startNode(replacement bool) (*rpc.Server, error) {
	node, err := storage.New(storage.Options{
		ID:          "tcp-node",
		BlockSize:   blockSize,
		Replacement: replacement,
		LockLease:   5 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return rpc.Serve(ln, node), nil
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const k, n = 3, 5
	servers := make([]*rpc.Server, n)
	addrs := make([]string, n)
	for i := range servers {
		srv, err := startNode(false)
		if err != nil {
			return err
		}
		servers[i] = srv
		addrs[i] = srv.Addr().String()
		defer srv.Close()
	}
	fmt.Printf("started %d storage servers on loopback TCP\n", n)

	store, err := ecstore.Connect(ecstore.Options{
		K: k, N: n, BlockSize: blockSize,
	}, addrs)
	if err != nil {
		return err
	}
	defer store.Close()
	vol := store.(*ecstore.Volume)

	blocks := 9
	for i := 0; i < blocks; i++ {
		data := bytes.Repeat([]byte{byte(i + 1)}, blockSize)
		if err := vol.WriteBlock(ctx, uint64(i), data); err != nil {
			return fmt.Errorf("write over TCP: %w", err)
		}
	}
	fmt.Printf("wrote %d blocks over the network\n", blocks)

	// Kill one server for real.
	if err := servers[2].Close(); err != nil {
		return err
	}
	fmt.Println("killed storage server 2")

	// Start a fresh replacement (INIT blocks) and install it in the
	// directory — the operator workflow with cmd/storaged -replacement.
	repl, err := startNode(true)
	if err != nil {
		return err
	}
	defer repl.Close()
	if err := vol.ReplaceNode(2, repl.Addr().String()); err != nil {
		return err
	}
	fmt.Printf("installed replacement server at %s\n", repl.Addr())

	// Reads trigger recovery stripe by stripe; data comes back intact.
	for i := 0; i < blocks; i++ {
		got, err := vol.ReadBlock(ctx, uint64(i))
		if err != nil {
			return fmt.Errorf("read block %d after node loss: %w", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, blockSize)) {
			return fmt.Errorf("block %d corrupted", i)
		}
	}
	fmt.Println("all blocks verified after node replacement — recovery rebuilt the lost data")

	stats := vol.Stats()
	fmt.Printf("recoveries run: %d\n", stats.Recoveries.Load()+stats.RecoveryPickups.Load())
	return nil
}

// Filestore: use the volume's byte-addressed API as a reliable backing
// store for file contents — the "distributed disk array" deployment
// the paper's conclusion envisions. A pseudo-file is streamed in at an
// unaligned offset, two storage nodes crash, a garbage-collection pass
// trims protocol metadata, and the file streams back out intact
// (verified by checksum).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"ecstore"
)

const (
	blockSize = 512
	fileSize  = 64*blockSize + 123 // deliberately unaligned
	fileOff   = 200                // deliberately unaligned
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	store, err := ecstore.New(ecstore.Options{
		K: 4, N: 6, BlockSize: blockSize, Mode: ecstore.Parallel,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	vol := store.(*ecstore.Volume)

	// Fabricate a "file" and remember its digest.
	file := make([]byte, fileSize)
	rand.New(rand.NewSource(42)).Read(file)
	wantSum := sha256.Sum256(file)

	// Store it at an unaligned byte offset: head and tail blocks go
	// through read-modify-write, full blocks are written directly.
	start := time.Now()
	n, err := vol.WriteAt(ctx, file, fileOff)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fmt.Printf("stored %d bytes (%.1f KiB) in %v\n", n, float64(n)/1024, time.Since(start).Round(time.Millisecond))

	// Trim the protocol's write-id lists (two passes retire them).
	for i := 0; i < 2; i++ {
		if err := vol.CollectGarbage(ctx); err != nil {
			return err
		}
	}
	fmt.Println("garbage collection complete: storage nodes keep no per-write state")

	// Lose two of six nodes — the code's full tolerance.
	for _, phys := range []int{1, 4} {
		if err := vol.CrashNode(phys); err != nil {
			return err
		}
	}
	fmt.Println("crashed storage nodes 1 and 4")

	// Stream the file back through the io.Reader adapter.
	start = time.Now()
	got, err := io.ReadAll(vol.Reader(ctx, fileOff, fileSize))
	if err != nil {
		return fmt.Errorf("fetch after crashes: %w", err)
	}
	if sha256.Sum256(got) != wantSum {
		return fmt.Errorf("checksum mismatch: file corrupted")
	}
	fmt.Printf("fetched %d bytes after double node loss in %v — checksum OK\n",
		len(got), time.Since(start).Round(time.Millisecond))

	// Sanity: bytes around the file are untouched zeros.
	edge := make([]byte, fileOff)
	if _, err := vol.ReadAt(ctx, edge, 0); err != nil {
		return err
	}
	if !bytes.Equal(edge, make([]byte, fileOff)) {
		return fmt.Errorf("bytes before the file were corrupted")
	}
	fmt.Println("surrounding bytes untouched; done")
	return nil
}

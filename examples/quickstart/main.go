// Quickstart: create an in-process erasure-coded cluster, write and
// read blocks, crash as many storage nodes as the code tolerates, and
// watch the data survive via online recovery.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"
)

import "ecstore"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A 3-of-5 Reed-Solomon code: 3 data blocks + 2 redundant blocks
	// per stripe, tolerating 2 simultaneous storage-node crashes with
	// only 67% space overhead (3-way replication would cost 200%).
	cluster, err := ecstore.NewLocalCluster(ecstore.Options{
		K: 3, N: 5, BlockSize: 1024,
	})
	if err != nil {
		return err
	}
	vol, err := cluster.Volume(1)
	if err != nil {
		return err
	}

	// Write a few blocks. Each write is a swap at the data node plus
	// two parity deltas — two round trips, no locks.
	for i := uint64(0); i < 6; i++ {
		block := bytes.Repeat([]byte{byte('A' + i)}, 1024)
		if err := vol.WriteBlock(ctx, i, block); err != nil {
			return fmt.Errorf("write block %d: %w", i, err)
		}
	}
	fmt.Println("wrote 6 blocks across 5 storage nodes (3-of-5 code)")

	// Crash two storage nodes — the maximum this code tolerates.
	for _, phys := range []int{0, 3} {
		if err := cluster.CrashNode(phys); err != nil {
			return err
		}
		fmt.Printf("crashed storage node %d\n", phys)
	}

	// Reads still succeed: the first access to an affected stripe
	// triggers online recovery, which reconstructs the lost blocks
	// from the surviving ones onto fresh replacement nodes.
	for i := uint64(0); i < 6; i++ {
		got, err := vol.ReadBlock(ctx, i)
		if err != nil {
			return fmt.Errorf("read block %d after crashes: %w", i, err)
		}
		want := bytes.Repeat([]byte{byte('A' + i)}, 1024)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("block %d corrupted after recovery", i)
		}
	}
	fmt.Println("all 6 blocks intact after losing 2 of 5 nodes")

	stats := vol.Stats()
	fmt.Printf("protocol events: %d reads, %d writes, %d recoveries\n",
		stats.Reads.Load(), stats.Writes.Load(),
		stats.Recoveries.Load()+stats.RecoveryPickups.Load())
	return nil
}

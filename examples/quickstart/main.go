// Quickstart: create an in-process erasure-coded cluster, drive it
// through the unified ecstore.Store facade — single blocks, a
// pipelined bulk write, a streaming read — then crash as many storage
// nodes as the code tolerates and watch the data survive via online
// recovery.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"time"
)

import "ecstore"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A 3-of-5 Reed-Solomon code: 3 data blocks + 2 redundant blocks
	// per stripe, tolerating 2 simultaneous storage-node crashes with
	// only 67% space overhead (3-way replication would cost 200%).
	// ecstore.New returns the unified Store facade; the concrete
	// *ecstore.Volume behind it adds node administration (CrashNode)
	// and protocol counters.
	store, err := ecstore.New(ecstore.Options{
		K: 3, N: 5, BlockSize: 1024,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	vol := store.(*ecstore.Volume)

	// Write a few blocks. Each write is a swap at the data node plus
	// two parity deltas — two round trips, no locks.
	for i := uint64(0); i < 6; i++ {
		block := bytes.Repeat([]byte{byte('A' + i)}, 1024)
		if err := store.WriteBlock(ctx, i, block); err != nil {
			return fmt.Errorf("write block %d: %w", i, err)
		}
	}
	fmt.Println("wrote 6 blocks across 5 storage nodes (3-of-5 code)")

	// Bulk I/O: a byte-addressed span covering blocks 6..17 goes
	// through the pipelined engine — full stripes are written with up
	// to MaxInFlight stripes concurrently in flight, their parity
	// deltas coalesced into combined frames per redundant node.
	payload := bytes.Repeat([]byte("pipelined bulk write "), 12*1024/21+1)[:12*1024]
	n, err := store.WriteAt(ctx, payload, 6*1024)
	if err != nil {
		return fmt.Errorf("bulk write: %w", err)
	}
	fmt.Printf("bulk-wrote %d bytes (4 full stripes) in one pipelined call\n", n)
	streamed, err := io.ReadAll(store.Reader(ctx, 6*1024, int64(len(payload))))
	if err != nil || !bytes.Equal(streamed, payload) {
		return fmt.Errorf("streaming readback diverged: %v", err)
	}
	fmt.Println("streamed the span back through store.Reader")

	// Crash two storage nodes — the maximum this code tolerates.
	for _, phys := range []int{0, 3} {
		if err := vol.CrashNode(phys); err != nil {
			return err
		}
		fmt.Printf("crashed storage node %d\n", phys)
	}

	// Reads still succeed: the first access to an affected stripe
	// triggers online recovery, which reconstructs the lost blocks
	// from the surviving ones onto fresh replacement nodes.
	for i := uint64(0); i < 6; i++ {
		got, err := store.ReadBlock(ctx, i)
		if err != nil {
			return fmt.Errorf("read block %d after crashes: %w", i, err)
		}
		want := bytes.Repeat([]byte{byte('A' + i)}, 1024)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("block %d corrupted after recovery", i)
		}
	}
	buf := make([]byte, len(payload))
	if _, err := store.ReadAt(ctx, buf, 6*1024); err != nil || !bytes.Equal(buf, payload) {
		return fmt.Errorf("bulk span corrupted after recovery: %v", err)
	}
	fmt.Println("all blocks and the bulk span intact after losing 2 of 5 nodes")

	stats := vol.Stats()
	fmt.Printf("protocol events: %d reads, %d writes, %d recoveries\n",
		stats.Reads.Load(), stats.Writes.Load(),
		stats.Recoveries.Load()+stats.RecoveryPickups.Load())
	return nil
}

package ecstore_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ecstore"
)

// ExampleNewLocalCluster shows the smallest complete program: write a
// block, lose a node, read the block back.
func ExampleNewLocalCluster() {
	ctx := context.Background()
	cluster, err := ecstore.NewLocalCluster(ecstore.Options{
		K: 2, N: 4, BlockSize: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	vol, err := cluster.Volume(1)
	if err != nil {
		log.Fatal(err)
	}

	block := bytes.Repeat([]byte("x"), 512)
	if err := vol.WriteBlock(ctx, 0, block); err != nil {
		log.Fatal(err)
	}
	_ = cluster.CrashNode(0) // lose a storage node

	got, err := vol.ReadBlock(ctx, 0) // online recovery kicks in
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bytes.Equal(got, block))
	// Output: true
}

// ExampleVolume_WriteAt stores a byte stream at an arbitrary offset;
// stripe-aligned spans automatically use batched full-stripe writes.
func ExampleVolume_WriteAt() {
	ctx := context.Background()
	cluster, err := ecstore.NewLocalCluster(ecstore.Options{
		K: 2, N: 4, BlockSize: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	vol, err := cluster.Volume(1)
	if err != nil {
		log.Fatal(err)
	}

	payload := []byte("erasure-coded and crash-tolerant")
	if _, err := vol.WriteAt(ctx, payload, 1000); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := vol.ReadAt(ctx, buf, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output: erasure-coded and crash-tolerant
}

// ExampleVolume_Scrub audits stripes against the erasure code and
// repairs what it can localize.
func ExampleVolume_Scrub() {
	ctx := context.Background()
	cluster, err := ecstore.NewLocalCluster(ecstore.Options{
		K: 2, N: 4, BlockSize: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	vol, err := cluster.Volume(1)
	if err != nil {
		log.Fatal(err)
	}
	if err := vol.WriteBlock(ctx, 0, make([]byte, 256)); err != nil {
		log.Fatal(err)
	}
	// Retire the write's bookkeeping so the stripe is quiescent.
	for pass := 0; pass < 2; pass++ {
		if err := vol.CollectGarbage(ctx); err != nil {
			log.Fatal(err)
		}
	}
	clean, busy, repaired, err := vol.Scrub(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(clean, busy, repaired)
	// Output: 1 0 0
}

package ecstore_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ecstore"
)

// ExampleNew shows the smallest complete program: write a block, lose
// a node, read the block back.
func ExampleNew() {
	ctx := context.Background()
	store, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	vol := store.(*ecstore.Volume) // admin surface: CrashNode etc.

	block := bytes.Repeat([]byte("x"), 512)
	if err := vol.WriteBlock(ctx, 0, block); err != nil {
		log.Fatal(err)
	}
	_ = vol.CrashNode(0) // lose a storage node

	got, err := vol.ReadBlock(ctx, 0) // online recovery kicks in
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bytes.Equal(got, block))
	// Output: true
}

// ExampleVolume_WriteAt stores a byte stream at an arbitrary offset;
// stripe-aligned spans automatically use batched full-stripe writes.
func ExampleVolume_WriteAt() {
	ctx := context.Background()
	store, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	payload := []byte("erasure-coded and crash-tolerant")
	if _, err := store.WriteAt(ctx, payload, 1000); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := store.ReadAt(ctx, buf, 1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output: erasure-coded and crash-tolerant
}

// ExampleNew_smallWriteTier enables the staged small-write tier and
// the hot-read cache: sub-block writes are absorbed by a parity-logged
// staging segment (no read-modify-write round) and hot reads are
// served from the client cache; Flush is the durability barrier that
// merges staged bytes into their erasure-coded home blocks.
func ExampleNew_smallWriteTier() {
	ctx := context.Background()
	store, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: 512,
		SmallWriteTier: true,     // stage sub-block writes
		CacheBytes:     64 << 10, // 64 KiB hot-read cache
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// A 5-byte write at an odd offset: staged, not read-modify-written.
	if _, err := store.WriteAt(ctx, []byte("hello"), 700); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := store.ReadAt(ctx, buf, 700); err != nil {
		log.Fatal(err)
	}
	// Merge staged bytes into their home blocks.
	if err := store.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(buf))
	// Output: hello
}

// ExampleVolume_Scrub audits stripes against the erasure code and
// repairs what it can localize.
func ExampleVolume_Scrub() {
	ctx := context.Background()
	store, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	if err := store.WriteBlock(ctx, 0, make([]byte, 256)); err != nil {
		log.Fatal(err)
	}
	// Retire the write's bookkeeping so the stripe is quiescent.
	for pass := 0; pass < 2; pass++ {
		if err := store.CollectGarbage(ctx); err != nil {
			log.Fatal(err)
		}
	}
	clean, busy, repaired, err := store.Scrub(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(clean, busy, repaired)
	// Output: 1 0 0
}

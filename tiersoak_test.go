package ecstore_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"ecstore"
	"ecstore/internal/regcheck"
)

// TestCachedReadRegcheckSoak hammers one hot block with 4 concurrent
// writers while 4 readers serve from the shared hot-read cache, then
// checks every observed value against multi-writer regular-register
// semantics. A single stale cached read is a violation.
func TestCachedReadRegcheckSoak(t *testing.T) {
	s, err := ecstore.New(ecstore.Options{K: 2, N: 4, BlockSize: blockSize, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	c := s.(*ecstore.Volume)
	t.Cleanup(func() { _ = c.Close() })

	const (
		nWriters        = 4
		nReaders        = 4
		writesPerWriter = 50
		readsPerReader  = 500
		hotAddr         = uint64(3)
	)
	writers := make([]*ecstore.Volume, nWriters)
	readers := make([]*ecstore.Volume, nReaders)
	for i := range writers {
		writers[i] = vol(t, c, uint32(i+1))
	}
	for i := range readers {
		readers[i] = vol(t, c, uint32(nWriters+i+1))
	}

	ctx := ctxT(t)
	h := regcheck.New()
	errs := make(chan error, nWriters+nReaders)
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int, v *ecstore.Volume) {
			defer wg.Done()
			blk := make([]byte, blockSize)
			for i := 0; i < writesPerWriter; i++ {
				val := uint64(w+1)<<32 | uint64(i+1)
				binary.BigEndian.PutUint64(blk, val)
				tok := h.BeginWrite(val)
				if err := v.WriteBlock(ctx, hotAddr, blk); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				h.EndWrite(tok)
			}
		}(w, writers[w])
	}
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int, v *ecstore.Volume) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				tok := h.BeginRead()
				blk, err := v.ReadBlock(ctx, hotAddr)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				h.EndRead(tok, binary.BigEndian.Uint64(blk))
			}
		}(r, readers[r])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("cached reads violated regularity: %v", err)
	}

	st := c.CacheStats()
	hits, misses := st.Hits.Load(), st.Misses.Load()
	rate := float64(hits) / float64(hits+misses)
	t.Logf("cache: %d hits / %d misses (%.2f), %d chain installs, %d breaks, %d poisoned fills",
		hits, misses, rate, st.ChainInstalls.Load(), st.ChainBreaks.Load(), st.FillsPoisoned.Load())
	if rate < 0.3 {
		t.Fatalf("hot-read hit rate %.2f below floor 0.3", rate)
	}
}

// TestStagingSiteCrashSalvage stages sub-block writes without flushing,
// crashes the maximum tolerable number of storage nodes, and then
// recovers the staged bytes from a fresh client handle: the
// parity-logged staging segment is erasure-coded like everything else,
// so an acknowledged small write survives both the client that staged
// it and the loss of n-k sites.
func TestStagingSiteCrashSalvage(t *testing.T) {
	s, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		SmallWriteTier: true, SmallWriteStaging: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := s.(*ecstore.Volume)
	t.Cleanup(func() { _ = v.Close() })
	ctx := ctxT(t)

	const nSpans = 8
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('A' + i)}, 24)
	}
	for i := 0; i < nSpans; i++ {
		off := int64(i)*blockSize + 40 // sub-block: staged, not swapped
		if _, err := v.WriteAt(ctx, payload(i), off); err != nil {
			t.Fatal(err)
		}
	}
	// No Flush: the bytes exist only in the staging segment. Lose two
	// of the four sites (the n-k tolerance bound).
	if err := v.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := v.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	// A recovering client with the same identity salvages the segment;
	// the segment blocks themselves now need reconstruction.
	v2, err := v.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v2.Close() })
	if got := v2.TierStats().Salvaged.Load(); got != nSpans {
		t.Fatalf("salvaged %d records, want %d", got, nSpans)
	}
	check := func(label string, h *ecstore.Volume) {
		for i := 0; i < nSpans; i++ {
			got := make([]byte, 24)
			if _, err := h.ReadAt(ctx, got, int64(i)*blockSize+40); err != nil {
				t.Fatalf("%s: span %d: %v", label, i, err)
			}
			if !bytes.Equal(got, payload(i)) {
				t.Fatalf("%s: span %d lost: got %q", label, i, got)
			}
		}
	}
	check("salvaged", v2)
	// Flush merges the staged bytes into their home blocks; the data
	// must survive the transition too.
	if err := v2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	check("flushed", v2)
}

package ecstore

import (
	"context"
	"io"
	"time"

	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/proto"
)

// Typed sentinel errors. Match with errors.Is; never by string.
var (
	// ErrUnavailable reports that an operation exhausted its retry
	// budget against unreachable storage nodes.
	ErrUnavailable = core.ErrUnavailable
	// ErrShortWrite reports a WriteAt that could not complete its span;
	// the returned count is the longest prefix known durably written.
	ErrShortWrite = bulk.ErrShortWrite
	// ErrOutOfRange reports an access beyond a bounded store's capacity
	// or at a negative offset.
	ErrOutOfRange = bulk.ErrOutOfRange
	// ErrDraining reports a server refusing new work while it shuts
	// down gracefully (storaged or gatewayd under SIGTERM).
	ErrDraining = proto.ErrDraining
	// ErrThrottled reports a request shed by per-tenant QoS at the
	// gateway; retry after backing off (gateway.ThrottleError carries a
	// retry-after hint).
	ErrThrottled = proto.ErrThrottled
	// ErrOverloaded reports a request shed by the gateway's global
	// concurrency limit: systemic pressure, back off multiplicatively.
	ErrOverloaded = proto.ErrOverloaded
)

// Store is the unified facade over every deployment shape: a
// single-group cluster (local or TCP) and a multi-group sharded
// volume expose the same surface, so code written against Store runs
// unchanged on either. Obtain one from New or Connect; *Volume and
// *ShardedVolume both satisfy it.
//
// ReadAt, WriteAt, and Reader route through the pipelined bulk engine
// (Options.MaxInFlight): large spans keep a window of stripes in
// flight and coalesce same-site parity deltas into combined RPCs, so
// bulk throughput scales with the window instead of being bounded by
// per-stripe round-trip latency.
type Store interface {
	// BlockSize returns the fixed block size in bytes.
	BlockSize() int
	// Capacity returns the addressable block count, or 0 when the
	// address space is unbounded (single-group stores).
	Capacity() uint64
	// ReadBlock reads one block. Unwritten blocks read as zeros.
	ReadBlock(ctx context.Context, addr uint64) ([]byte, error)
	// WriteBlock writes one block. data must be exactly BlockSize bytes.
	WriteBlock(ctx context.Context, addr uint64, data []byte) error
	// ReadAt reads len(p) bytes at byte offset off. On a bounded store,
	// reads past the end are truncated and return io.EOF with the
	// partial count.
	ReadAt(ctx context.Context, p []byte, off int64) (int, error)
	// WriteAt writes p at byte offset off. On failure the count is the
	// length of the longest prefix known written and the error wraps
	// ErrShortWrite.
	WriteAt(ctx context.Context, p []byte, off int64) (int, error)
	// Reader streams nBytes from byte offset off with readahead. On a
	// bounded store a negative nBytes streams to capacity.
	Reader(ctx context.Context, off, nBytes int64) io.Reader
	// Flush merges every staged small write into its home block and
	// resets the staging segment: a barrier after which all acknowledged
	// bytes are in their final erasure-coded blocks. A no-op without
	// Options.SmallWriteTier.
	Flush(ctx context.Context) error
	// Recover forces recovery of the stripe containing addr. Normally
	// recovery triggers automatically when I/O stumbles on a failure.
	Recover(ctx context.Context, addr uint64) error
	// CollectGarbage runs one pass of the two-phase GC protocol over
	// every touched stripe. Two consecutive passes fully retire
	// completed writes.
	CollectGarbage(ctx context.Context) error
	// Monitor probes touched stripes for stale partial writes and
	// crashed nodes, returning the number of stripes recovered.
	Monitor(ctx context.Context, maxAge time.Duration) (int, error)
	// Scrub audits touched stripes against the erasure code, repairing
	// localizable damage.
	Scrub(ctx context.Context) (clean, busy, repaired int, err error)
	// IOReaderAt adapts the store to the standard library's io.ReaderAt
	// under a fixed context.
	IOReaderAt(ctx context.Context) io.ReaderAt
	// IOWriterAt adapts the store to the standard library's io.WriterAt
	// under a fixed context.
	IOWriterAt(ctx context.Context) io.WriterAt
	// Close releases the store's resources.
	Close() error
}

var (
	_ Store = (*Volume)(nil)
	_ Store = (*ShardedVolume)(nil)
)

// New builds an in-process Store. With Groups <= 1 and no Sites it is
// a single-group cluster of N in-memory nodes (DataDir optionally
// persists them); with Groups > 1 (or Sites set) it is a sharded
// volume placing the groups over a pool of Sites in-memory hosts.
func New(opts Options) (Store, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.Groups > 1 || opts.Sites > 0 || opts.SiteWeights != nil {
		return NewLocalShardedVolume(opts)
	}
	c, err := newLocalCluster(opts)
	if err != nil {
		return nil, err
	}
	v, err := c.Volume(opts.ClientID)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	v.owns = true
	return v, nil
}

// Connect dials a Store over TCP (cmd/storaged servers). With
// Groups <= 1 addrs must hold exactly N servers in slot order; with
// Groups > 1 it is a site pool of any size >= N that the groups are
// placed over.
func Connect(opts Options, addrs []string) (Store, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if opts.Groups > 1 {
		return ConnectShardedVolume(opts, addrs)
	}
	c, err := connectCluster(opts, addrs)
	if err != nil {
		return nil, err
	}
	v, err := c.Volume(opts.ClientID)
	if err != nil {
		_ = c.Close()
		return nil, err
	}
	v.owns = true
	return v, nil
}

// --- stdlib adapters ---------------------------------------------------------

// readAtWriteAt is the slice of Store the adapters need; both concrete
// facades implement it.
type readAtWriteAt interface {
	ReadAt(ctx context.Context, p []byte, off int64) (int, error)
	WriteAt(ctx context.Context, p []byte, off int64) (int, error)
}

type ioReaderAt struct {
	ctx context.Context
	s   readAtWriteAt
}

func (r ioReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return r.s.ReadAt(r.ctx, p, off)
}

type ioWriterAt struct {
	ctx context.Context
	s   readAtWriteAt
}

func (w ioWriterAt) WriteAt(p []byte, off int64) (int, error) {
	return w.s.WriteAt(w.ctx, p, off)
}

// IOReaderAt returns an io.ReaderAt view of the volume under ctx.
func (v *Volume) IOReaderAt(ctx context.Context) io.ReaderAt { return ioReaderAt{ctx, v} }

// IOWriterAt returns an io.WriterAt view of the volume under ctx.
func (v *Volume) IOWriterAt(ctx context.Context) io.WriterAt { return ioWriterAt{ctx, v} }

// IOReaderAt returns an io.ReaderAt view of the volume under ctx.
func (v *ShardedVolume) IOReaderAt(ctx context.Context) io.ReaderAt { return ioReaderAt{ctx, v} }

// IOWriterAt returns an io.WriterAt view of the volume under ctx.
func (v *ShardedVolume) IOWriterAt(ctx context.Context) io.WriterAt { return ioWriterAt{ctx, v} }

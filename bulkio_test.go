package ecstore_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecstore"
	"ecstore/internal/regcheck"
)

// TestStoreFacade exercises the unified Store interface over both
// deployment shapes: a single-group local cluster and a multi-group
// sharded volume behave identically behind the same surface.
func TestStoreFacade(t *testing.T) {
	ctx := ctxT(t)
	shapes := []struct {
		name string
		opts ecstore.Options
	}{
		{"single-group", ecstore.Options{K: 2, N: 4, BlockSize: blockSize}},
		{"sharded", ecstore.Options{K: 2, N: 4, BlockSize: blockSize, Groups: 4, Sites: 8, BlocksPerGroup: 16}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			s, err := ecstore.New(shape.opts)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = s.Close() })
			if s.BlockSize() != blockSize {
				t.Fatalf("BlockSize = %d", s.BlockSize())
			}

			payload := []byte("store facade payload straddling a few blocks: " +
				string(bytes.Repeat([]byte{0xC3}, 3*blockSize)))
			off := int64(blockSize - 7)
			if n, err := s.WriteAt(ctx, payload, off); err != nil || n != len(payload) {
				t.Fatalf("WriteAt = %d, %v", n, err)
			}
			got := make([]byte, len(payload))
			if _, err := s.ReadAt(ctx, got, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("ReadAt diverged")
			}

			// The streaming Reader sees the same bytes.
			streamed, err := io.ReadAll(s.Reader(ctx, off, int64(len(payload))))
			if err != nil || !bytes.Equal(streamed, payload) {
				t.Fatalf("Reader: %v, %d bytes", err, len(streamed))
			}

			// Stdlib adapters: io.ReaderAt / io.WriterAt round trip.
			wa := s.IOWriterAt(ctx)
			ra := s.IOReaderAt(ctx)
			if _, err := wa.WriteAt([]byte("adapters"), 3); err != nil {
				t.Fatal(err)
			}
			small := make([]byte, 8)
			if _, err := ra.ReadAt(small, 3); err != nil {
				t.Fatal(err)
			}
			if string(small) != "adapters" {
				t.Fatalf("adapter round trip = %q", small)
			}

			// Maintenance surface is uniform too.
			if err := s.CollectGarbage(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Monitor(ctx, time.Hour); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := s.Scrub(ctx); err != nil {
				t.Fatal(err)
			}
			if err := s.Recover(ctx, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreSentinels pins the typed error surface: out-of-range and
// short-write conditions match errors.Is against the root sentinels.
func TestStoreSentinels(t *testing.T) {
	ctx := ctxT(t)
	s, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups: 2, Sites: 6, BlocksPerGroup: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	if s.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", s.Capacity())
	}
	capBytes := int64(s.Capacity()) * int64(blockSize)

	if _, err := s.WriteAt(ctx, []byte("x"), capBytes); !errors.Is(err, ecstore.ErrOutOfRange) {
		t.Fatalf("past-capacity write err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.WriteAt(ctx, []byte("x"), -1); !errors.Is(err, ecstore.ErrOutOfRange) {
		t.Fatalf("negative offset err = %v, want ErrOutOfRange", err)
	}
	// Bounded reads truncate with io.EOF instead of erroring.
	buf := make([]byte, 2*blockSize)
	if n, err := s.ReadAt(ctx, buf, capBytes-int64(blockSize)); err != io.EOF || n != blockSize {
		t.Fatalf("tail read = %d, %v; want %d, EOF", n, err, blockSize)
	}
}

// TestWriteAtWindowEquivalence writes the same pseudo-random span
// schedule through window 1 (the sequential path) and window 16 (the
// pipelined path) and demands byte-identical volumes.
func TestWriteAtWindowEquivalence(t *testing.T) {
	ctx := ctxT(t)
	images := make([][]byte, 0, 2)
	for _, window := range []int{1, 16} {
		s, err := ecstore.New(ecstore.Options{
			K: 2, N: 4, BlockSize: blockSize,
			Groups: 2, Sites: 6, BlocksPerGroup: 32,
			MaxInFlight: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		capBytes := int(s.Capacity()) * blockSize
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 20; i++ {
			off := rng.Int63n(int64(capBytes - 1))
			n := 1 + rng.Intn(capBytes-int(off))
			p := make([]byte, n)
			rng.Read(p)
			if wrote, err := s.WriteAt(ctx, p, off); err != nil || wrote != n {
				t.Fatalf("window %d WriteAt = %d, %v", window, wrote, err)
			}
		}
		img := make([]byte, capBytes)
		if _, err := s.ReadAt(ctx, img, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		images = append(images, img)
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatal("window 1 and window 16 volumes diverged")
	}
}

// TestBulkWriteRegularRegisters asserts the engine preserves the
// protocol's per-block regular-register semantics: concurrent WriteAt
// writers (distinct client identities) and ReadAt readers on the same
// block produce a history regcheck accepts.
func TestBulkWriteRegularRegisters(t *testing.T) {
	c := localCluster(t, 2, 4)
	t.Cleanup(func() { _ = c.Close() })
	ctx := ctxT(t)
	const (
		addr    = 3 // contended block
		writers = 2
		rounds  = 12
	)
	hist := regcheck.New()
	encode := func(v uint64) []byte {
		blk := make([]byte, blockSize)
		binary.BigEndian.PutUint64(blk, v)
		return blk
	}
	var wg sync.WaitGroup
	errs := make([]error, writers+1)
	for w := 0; w < writers; w++ {
		v := vol(t, c, uint32(w+1))
		wg.Add(1)
		go func(w int, v *ecstore.Volume) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				val := uint64(1000*(w+1) + r)
				tok := hist.BeginWrite(val)
				if _, err := v.WriteAt(ctx, encode(val), addr*blockSize); err != nil {
					errs[w] = fmt.Errorf("writer %d: %w", w, err)
					return
				}
				hist.EndWrite(tok)
			}
		}(w, v)
	}
	reader := vol(t, c, writers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, blockSize)
		for r := 0; r < 3*rounds; r++ {
			tok := hist.BeginRead()
			if _, err := reader.ReadAt(ctx, buf, addr*blockSize); err != nil {
				errs[writers] = fmt.Errorf("reader: %w", err)
				return
			}
			hist.EndRead(tok, binary.BigEndian.Uint64(buf))
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := hist.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkChaosMidSpanCrash is the tentpole's consistency claim under
// failure: crash a site while a >=64-stripe pipelined WriteAt is in
// flight. Whatever count WriteAt returns, that prefix must read back
// intact — no acknowledged stripe may be lost — and a failure must be
// a typed short write.
func TestBulkChaosMidSpanCrash(t *testing.T) {
	// Sweep the crash timing so at least some runs interrupt the span
	// mid-flight; the invariant must hold at every point.
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		t.Run(delay.String(), func(t *testing.T) {
			ctx := ctxT(t)
			v, err := ecstore.NewLocalShardedVolume(ecstore.Options{
				K: 2, N: 4, BlockSize: blockSize,
				Groups: 4, Sites: 8, BlocksPerGroup: 32,
				MaxInFlight: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = v.Close() })

			// 128 blocks = 64 stripes spanning all four groups.
			payload := make([]byte, int(v.Capacity())*blockSize)
			rand.New(rand.NewSource(99)).Read(payload)

			// Crash a site serving group 1 once the write is under way.
			sites, err := v.GroupSites(1)
			if err != nil {
				t.Fatal(err)
			}
			crashed := make(chan struct{})
			go func() {
				defer close(crashed)
				time.Sleep(delay)
				_ = v.CrashSite(sites[0])
			}()

			n, err := v.WriteAt(ctx, payload, 0)
			<-crashed
			if err != nil {
				// A failed span must be a typed short write with a
				// consistent count.
				if !errors.Is(err, ecstore.ErrShortWrite) {
					t.Fatalf("err = %v, want ErrShortWrite", err)
				}
				if n < 0 || n > len(payload) {
					t.Fatalf("count %d out of range", n)
				}
			} else if n != len(payload) {
				t.Fatalf("clean WriteAt returned %d of %d", n, len(payload))
			}
			t.Logf("WriteAt acknowledged %d of %d bytes (err=%v)", n, len(payload), err)

			// Every acknowledged byte must survive the crash: the local
			// pool remaps the dead site and degraded reads rebuild from
			// survivors.
			got := make([]byte, n)
			if _, err := v.ReadAt(ctx, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload[:n]) {
				for i := range got {
					if got[i] != payload[i] {
						t.Fatalf("acknowledged byte %d lost (block %d)", i, i/blockSize)
					}
				}
			}
		})
	}
}

module ecstore

go 1.24

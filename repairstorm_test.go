package ecstore_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore"
	"ecstore/internal/regcheck"
)

// stormRegister is one logical block under the repair-storm soak: a
// block address with a dedicated writer and a consistency history.
type stormRegister struct {
	addr uint64
	hist *regcheck.History

	mu            sync.Mutex
	written       map[uint64]bool
	lastCompleted uint64
}

func stormVal(x uint64) []byte {
	b := make([]byte, blockSize)
	binary.BigEndian.PutUint64(b, x)
	return b
}

// latRecorder collects per-operation latencies for one phase.
type latRecorder struct {
	mu   sync.Mutex
	durs []time.Duration
}

func (l *latRecorder) add(d time.Duration) {
	l.mu.Lock()
	l.durs = append(l.durs, d)
	l.mu.Unlock()
}

func (l *latRecorder) p99() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func (l *latRecorder) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.durs)
}

// TestRepairStormSoak is the repair subsystem's acceptance soak: a
// whole site dies under live foreground load while the background
// scheduler drains the damage. Afterwards every register history must
// satisfy multi-writer regular-register semantics, no completed write
// may be lost, untouched blocks must read back their seeded contents
// (the scheduler, not the foreground path, rebuilt them), and the
// foreground p99 during the storm must stay within 2x the pre-storm
// baseline (with a small absolute floor — in-process baselines sit in
// the microseconds, where 2x is noise).
func TestRepairStormSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("repair storm soak skipped in -short mode")
	}
	const (
		groups         = 6
		sites          = 10
		blocksPerGroup = 8
		baselineSoak   = 200 * time.Millisecond
		stormSoak      = 400 * time.Millisecond
	)
	v, err := ecstore.NewLocalShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups:         groups,
		Sites:          sites,
		BlocksPerGroup: blocksPerGroup,
		EnableRepair:   true,
		RepairInterval: 20 * time.Millisecond,
		// Generous cap: the governor is on the paced path but must not
		// stretch this soak; its pacing has its own tests.
		RepairBandwidth: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)

	// Seed every block so the storm damages real data. Non-register
	// blocks are never touched again by the foreground workload: only
	// the background scheduler can rebuild them.
	seedTag := func(addr uint64) byte { return byte(addr)*3 + 1 }
	for addr := uint64(0); addr < v.Capacity(); addr++ {
		if err := v.WriteBlock(ctx, addr, bytes.Repeat([]byte{seedTag(addr)}, blockSize)); err != nil {
			t.Fatal(err)
		}
	}

	// One register per group, clear of each other's stripes. Their
	// seeded tag contents are about to be overwritten by values the
	// history knows about.
	var seq atomic.Uint64
	regs := make([]*stormRegister, groups)
	for g := range regs {
		r := &stormRegister{
			addr:    uint64(g)*blocksPerGroup + 1,
			hist:    regcheck.New(),
			written: map[uint64]bool{},
		}
		x := seq.Add(1)
		r.written[x] = true
		tok := r.hist.BeginWrite(x)
		if err := v.WriteBlock(ctx, r.addr, stormVal(x)); err != nil {
			t.Fatalf("warmup write register %d: %v", g, err)
		}
		r.hist.EndWrite(tok)
		r.lastCompleted = x
		regs[g] = r
	}
	var readErrs, writeErrs atomic.Uint64
	runPhase := func(d time.Duration, rec *latRecorder) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, r := range regs {
			wg.Add(1)
			go func(r *stormRegister) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					x := seq.Add(1)
					r.mu.Lock()
					r.written[x] = true
					r.mu.Unlock()
					tok := r.hist.BeginWrite(x)
					start := time.Now()
					err := v.WriteBlock(ctx, r.addr, stormVal(x))
					el := time.Since(start)
					if err != nil {
						// Leave the write open: a crashed writer's value
						// stays legal for concurrent-or-later reads.
						writeErrs.Add(1)
						continue
					}
					rec.add(el)
					r.hist.EndWrite(tok)
					r.mu.Lock()
					if x > r.lastCompleted {
						r.lastCompleted = x
					}
					r.mu.Unlock()
					time.Sleep(200 * time.Microsecond)
				}
			}(r)
		}
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, r := range regs {
						tok := r.hist.BeginRead()
						start := time.Now()
						b, err := v.ReadBlock(ctx, r.addr)
						el := time.Since(start)
						if err != nil {
							readErrs.Add(1)
							continue
						}
						rec.add(el)
						r.hist.EndRead(tok, binary.BigEndian.Uint64(b))
					}
					time.Sleep(100 * time.Microsecond)
				}
			}()
		}
		time.Sleep(d)
		close(stop)
		wg.Wait()
	}

	// Phase 1: fault-free baseline.
	var baseline latRecorder
	runPhase(baselineSoak, &baseline)

	// Phase 2: kill a whole site mid-load. The scheduler drains the
	// damage in the background while the foreground keeps going.
	victims, err := v.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	var storm latRecorder
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		runPhase(stormSoak, &storm)
	}()
	time.Sleep(20 * time.Millisecond) // let the storm workload get going
	if err := v.CrashSite(victims[0]); err != nil {
		t.Fatal(err)
	}
	<-stormDone

	// Quiesce: kick one final sweep and wait for the scheduler to
	// drain its queue — event-driven, no sweep-counter polling.
	stats := v.RepairStats()
	if stats == nil {
		t.Fatal("EnableRepair did not start a scheduler")
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	v.KickRepair()
	if err := v.WaitRepairIdle(wctx); err != nil {
		t.Fatalf("repair never converged: queue depth %d: %v", v.RepairQueueDepth(), err)
	}
	if stats.StripesRepaired.Load() == 0 {
		t.Fatal("background scheduler repaired no stripes — the storm never reached it")
	}

	// Zero lost writes + regularity, per register, with the final read
	// recorded in the history like any other.
	for _, r := range regs {
		tok := r.hist.BeginRead()
		b, err := v.ReadBlock(ctx, r.addr)
		if err != nil {
			t.Fatalf("final read of block %d: %v", r.addr, err)
		}
		final := binary.BigEndian.Uint64(b)
		r.hist.EndRead(tok, final)

		r.mu.Lock()
		lastCompleted, attempted := r.lastCompleted, r.written[final]
		r.mu.Unlock()
		if !attempted {
			t.Fatalf("block %d: final value %d was never written", r.addr, final)
		}
		if final < lastCompleted {
			t.Fatalf("block %d: completed write %d lost (final value %d)", r.addr, lastCompleted, final)
		}
		if err := r.hist.Check(); err != nil {
			t.Fatalf("block %d: %v", r.addr, err)
		}
	}

	// Every seeded, never-rewritten block must carry its seed contents:
	// those stripes were rebuilt by the scheduler alone.
	isReg := make(map[uint64]bool, len(regs))
	for _, r := range regs {
		isReg[r.addr] = true
	}
	for addr := uint64(0); addr < v.Capacity(); addr++ {
		if isReg[addr] {
			continue
		}
		got, err := v.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after storm: %v", addr, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{seedTag(addr)}, blockSize)) {
			t.Fatalf("block %d corrupted by the storm", addr)
		}
	}

	// Foreground latency: p99 during the storm within 2x baseline,
	// floored at 2ms (in-process baselines are microseconds; the bound
	// is about repair traffic not starving the foreground).
	baseP99, stormP99 := baseline.p99(), storm.p99()
	floor := 2 * time.Millisecond
	budget := 2 * baseP99
	if budget < 2*floor {
		budget = 2 * floor
	}
	if stormP99 > budget {
		t.Fatalf("storm p99 %v exceeds budget %v (baseline p99 %v)", stormP99, budget, baseP99)
	}
	t.Logf("baseline: %d ops p99=%v; storm: %d ops p99=%v; stripes_repaired=%d rebalance_moves=%d repairs=%d read_errs=%d write_errs=%d",
		baseline.count(), baseP99, storm.count(), stormP99,
		stats.StripesRepaired.Load(), stats.RebalanceMoves.Load(), stats.Repairs.Load(),
		readErrs.Load(), writeErrs.Load())
}

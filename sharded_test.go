package ecstore_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"ecstore"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

func TestLocalShardedVolume(t *testing.T) {
	ctx := ctxT(t)
	v, err := ecstore.NewLocalShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups:         4,
		Sites:          10,
		BlocksPerGroup: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	if v.Capacity() != 64 {
		t.Fatalf("capacity = %d, want 64", v.Capacity())
	}
	// One marker block per group (clear of the seam blocks 15-17 the
	// byte span below overwrites) plus a span across the group-0/1 seam.
	for g := uint64(0); g < 4; g++ {
		data := bytes.Repeat([]byte{byte('a' + g)}, blockSize)
		if err := v.WriteBlock(ctx, g*16+4, data); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte(strings.Repeat("xyz", 100))
	off := int64(15*blockSize + 17)
	if _, err := v.WriteAt(ctx, payload, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := v.ReadAt(ctx, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-group span corrupted")
	}
	for g := uint64(0); g < 4; g++ {
		got, err := v.ReadBlock(ctx, g*16+4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte('a'+g) {
			t.Fatalf("group %d block corrupted", g)
		}
	}

	// Crash one of group 2's sites: its data must survive, and the
	// group must no longer map to the dead site afterwards.
	sites, err := v.GroupSites(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CrashSite(sites[0]); err != nil {
		t.Fatal(err)
	}
	// Sweep the whole extent: the stripe rotation guarantees some read
	// lands on the dead site, triggering the report-retire-remap path.
	for addr := uint64(2 * 16); addr < 3*16; addr++ {
		if _, err := v.ReadBlock(ctx, addr); err != nil {
			t.Fatalf("read %d after crash: %v", addr, err)
		}
	}
	got2, err := v.ReadBlock(ctx, 2*16+4)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != 'c' {
		t.Fatal("group 2 block corrupted after crash")
	}
	after, err := v.GroupSites(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == sites[0] {
			t.Fatalf("group 2 still mapped to crashed site %s", id)
		}
	}
	if st := v.GroupStats(2); st == nil || st.Reads.Load() == 0 {
		t.Fatal("group 2 stats missing")
	}

	// Maintenance fan-out.
	if err := v.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := v.Scrub(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConnectShardedVolumeOverTCP(t *testing.T) {
	ctx := ctxT(t)
	// A 7-server pool for 4-node groups: the sharded connector accepts
	// pools larger than n, unlike ConnectCluster.
	const poolSize = 7
	addrs := make([]string, poolSize)
	for i := 0; i < poolSize; i++ {
		node := storage.MustNew(storage.Options{ID: fmt.Sprintf("pool%d", i), BlockSize: blockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	opts := ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups:         6,
		BlocksPerGroup: 8,
	}
	v, err := ecstore.ConnectShardedVolume(opts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	for g := uint64(0); g < 6; g++ {
		data := bytes.Repeat([]byte{byte(g + 1)}, blockSize)
		if err := v.WriteBlock(ctx, g*8+g, data); err != nil {
			t.Fatalf("group %d write: %v", g, err)
		}
	}

	// A second connection must compute the identical placement and read
	// everything back — no coordination beyond the address list.
	v2, err := ecstore.ConnectShardedVolume(opts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v2.Close() })
	for g := uint64(0); g < 6; g++ {
		got, err := v2.ReadBlock(ctx, g*8+g)
		if err != nil {
			t.Fatalf("group %d read: %v", g, err)
		}
		if got[0] != byte(g+1) {
			t.Fatalf("group %d corrupted", g)
		}
		s1, err := v.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := v2.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("group %d placement differs between connections", g)
			}
		}
	}

	// Local-only admin operations are rejected on a TCP volume.
	if err := v.CrashSite(addrs[0]); err == nil {
		t.Fatal("CrashSite accepted on a TCP sharded volume")
	}
	if err := v.AddSite("x", 1); err == nil {
		t.Fatal("AddSite accepted on a TCP sharded volume")
	}

	// Too-small pools are rejected.
	if _, err := ecstore.ConnectShardedVolume(opts, addrs[:3]); err == nil {
		t.Fatal("pool smaller than N accepted")
	}
}

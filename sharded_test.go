package ecstore_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ecstore"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

func TestLocalShardedVolume(t *testing.T) {
	ctx := ctxT(t)
	v, err := ecstore.NewLocalShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups:         4,
		Sites:          10,
		BlocksPerGroup: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	if v.Capacity() != 64 {
		t.Fatalf("capacity = %d, want 64", v.Capacity())
	}
	// One marker block per group (clear of the seam blocks 15-17 the
	// byte span below overwrites) plus a span across the group-0/1 seam.
	for g := uint64(0); g < 4; g++ {
		data := bytes.Repeat([]byte{byte('a' + g)}, blockSize)
		if err := v.WriteBlock(ctx, g*16+4, data); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte(strings.Repeat("xyz", 100))
	off := int64(15*blockSize + 17)
	if _, err := v.WriteAt(ctx, payload, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := v.ReadAt(ctx, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-group span corrupted")
	}
	for g := uint64(0); g < 4; g++ {
		got, err := v.ReadBlock(ctx, g*16+4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte('a'+g) {
			t.Fatalf("group %d block corrupted", g)
		}
	}

	// Crash one of group 2's sites: its data must survive, and the
	// group must no longer map to the dead site afterwards.
	sites, err := v.GroupSites(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CrashSite(sites[0]); err != nil {
		t.Fatal(err)
	}
	// Sweep the whole extent: the stripe rotation guarantees some read
	// lands on the dead site, triggering the report-retire-remap path.
	for addr := uint64(2 * 16); addr < 3*16; addr++ {
		if _, err := v.ReadBlock(ctx, addr); err != nil {
			t.Fatalf("read %d after crash: %v", addr, err)
		}
	}
	got2, err := v.ReadBlock(ctx, 2*16+4)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0] != 'c' {
		t.Fatal("group 2 block corrupted after crash")
	}
	after, err := v.GroupSites(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range after {
		if id == sites[0] {
			t.Fatalf("group 2 still mapped to crashed site %s", id)
		}
	}
	if st := v.GroupStats(2); st == nil || st.Reads.Load() == 0 {
		t.Fatal("group 2 stats missing")
	}

	// Maintenance fan-out.
	if err := v.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := v.Scrub(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConnectShardedVolumeOverTCP(t *testing.T) {
	ctx := ctxT(t)
	// A 7-server pool for 4-node groups: the sharded connector accepts
	// pools larger than n, unlike ConnectCluster.
	const poolSize = 7
	addrs := make([]string, poolSize)
	for i := 0; i < poolSize; i++ {
		node := storage.MustNew(storage.Options{ID: fmt.Sprintf("pool%d", i), BlockSize: blockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	opts := ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups:         6,
		BlocksPerGroup: 8,
	}
	v, err := ecstore.ConnectShardedVolume(opts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	for g := uint64(0); g < 6; g++ {
		data := bytes.Repeat([]byte{byte(g + 1)}, blockSize)
		if err := v.WriteBlock(ctx, g*8+g, data); err != nil {
			t.Fatalf("group %d write: %v", g, err)
		}
	}

	// A second connection must compute the identical placement and read
	// everything back — no coordination beyond the address list.
	v2, err := ecstore.ConnectShardedVolume(opts, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v2.Close() })
	for g := uint64(0); g < 6; g++ {
		got, err := v2.ReadBlock(ctx, g*8+g)
		if err != nil {
			t.Fatalf("group %d read: %v", g, err)
		}
		if got[0] != byte(g+1) {
			t.Fatalf("group %d corrupted", g)
		}
		s1, err := v.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := v2.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("group %d placement differs between connections", g)
			}
		}
	}

	// Local-only admin operations are rejected on a TCP volume.
	if err := v.CrashSite(addrs[0]); err == nil {
		t.Fatal("CrashSite accepted on a TCP sharded volume")
	}
	if err := v.AddSite("x", 1); err == nil {
		t.Fatal("AddSite accepted on a TCP sharded volume")
	}

	// Too-small pools are rejected.
	if _, err := ecstore.ConnectShardedVolume(opts, addrs[:3]); err == nil {
		t.Fatal("pool smaller than N accepted")
	}
}

// TestTailToleranceKnobsThroughFacade: the hedge/health/deadline knobs
// must plumb through both constructors without disturbing the
// fault-free path — reads stay correct, no hedges fire against fast
// in-process sites, and a drained TCP server is read around.
func TestTailToleranceKnobsThroughFacade(t *testing.T) {
	ctx := ctxT(t)
	lv, err := ecstore.NewLocalShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups: 2, Sites: 6, BlocksPerGroup: 8,
		HedgeAfter:      5 * time.Millisecond,
		HedgeBudget:     0.2,
		GrayRetireAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lv.Close() })
	data := bytes.Repeat([]byte{0xEE}, blockSize)
	if err := lv.WriteBlock(ctx, 3, data); err != nil {
		t.Fatal(err)
	}
	got, err := lv.ReadBlock(ctx, 3)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("local round trip with hedging enabled: %v", err)
	}
	if st := lv.GroupStats(0); st != nil && st.HedgedReads.Load() != 0 {
		t.Fatal("fault-free local volume fired a hedge")
	}

	// TCP path: CallDeadline + HedgeAfter through ConnectShardedVolume,
	// then drain one server — reads must degrade around it instantly.
	addrs := make([]string, 4)
	srvs := make([]*rpc.Server, 4)
	for i := range addrs {
		node := storage.MustNew(storage.Options{ID: fmt.Sprintf("tt%d", i), BlockSize: blockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srvs[i].Close() })
		addrs[i] = srvs[i].Addr().String()
	}
	tv, err := ecstore.ConnectShardedVolume(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		Groups: 1, BlocksPerGroup: 8,
		HedgeAfter:   2 * time.Millisecond,
		CallDeadline: 2 * time.Second,
	}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tv.Close() })
	if err := tv.WriteBlock(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	sites, err := tv.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 is stripe 0, slot 0, served by the group's phys-0 site.
	for _, s := range srvs {
		if s.Addr().String() != sites[0] {
			continue
		}
		dctx, cancel := context.WithTimeout(ctx, time.Second)
		err := s.Drain(dctx)
		cancel()
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	got, err = tv.ReadBlock(ctx, 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read around drained site: %v", err)
	}
	if st := tv.GroupStats(0); st == nil || st.DrainRetires.Load() == 0 {
		t.Fatal("drained site was not instantly retired")
	}
}

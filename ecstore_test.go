package ecstore_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"ecstore"
	"ecstore/internal/obs"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
)

const blockSize = 256

// localCluster builds a local in-memory store and returns its facade
// volume (client 1), which owns the underlying cluster.
func localCluster(t *testing.T, k, n int) *ecstore.Volume {
	t.Helper()
	s, err := ecstore.New(ecstore.Options{K: k, N: n, BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s.(*ecstore.Volume)
}

// vol opens a sibling client handle over c's cluster; id 1 is the
// cluster-owning volume itself.
func vol(t *testing.T, c *ecstore.Volume, id uint32) *ecstore.Volume {
	t.Helper()
	if id == 1 {
		return c
	}
	v, err := c.NewClient(id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	return v
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestOptionsValidation(t *testing.T) {
	bad := []ecstore.Options{
		{K: 0, N: 4, BlockSize: 64},
		{K: 4, N: 4, BlockSize: 64},
		{K: 2, N: 4, BlockSize: 0},
	}
	for _, opts := range bad {
		if _, err := ecstore.New(opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}

func TestVolumeBlockRoundTrip(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	data := bytes.Repeat([]byte{0xAB}, blockSize)
	if err := v.WriteBlock(ctx, 7, data); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBlock(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if v.BlockSize() != blockSize {
		t.Fatalf("BlockSize = %d", v.BlockSize())
	}
	if k, n := c.Code(); k != 2 || n != 4 {
		t.Fatalf("Code = %d, %d", k, n)
	}
}

func TestVolumeReadWriteAtUnaligned(t *testing.T) {
	c := localCluster(t, 3, 5)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	payload := make([]byte, 3*blockSize+100)
	rand.New(rand.NewSource(1)).Read(payload)
	const off = 57 // unaligned
	n, err := v.WriteAt(ctx, payload, off)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) {
		t.Fatalf("wrote %d of %d", n, len(payload))
	}
	got := make([]byte, len(payload))
	if _, err := v.ReadAt(ctx, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unaligned ReadAt/WriteAt mismatch")
	}
	// Bytes before the write must be untouched (zero).
	head := make([]byte, off)
	if _, err := v.ReadAt(ctx, head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, off)) {
		t.Fatal("WriteAt corrupted bytes before the offset")
	}
}

func TestVolumeNegativeOffsets(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	if _, err := v.ReadAt(ctx, make([]byte, 4), -1); err == nil {
		t.Error("negative read offset accepted")
	}
	if _, err := v.WriteAt(ctx, make([]byte, 4), -1); err == nil {
		t.Error("negative write offset accepted")
	}
}

func TestVolumeReader(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	payload := make([]byte, 2*blockSize+33)
	rand.New(rand.NewSource(2)).Read(payload)
	if _, err := v.WriteAt(ctx, payload, 11); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(v.Reader(ctx, 11, int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("Reader stream mismatch")
	}
}

func TestCrashAndOnlineRecovery(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	data := bytes.Repeat([]byte{0x5A}, blockSize)
	if err := v.WriteBlock(ctx, 3, data); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBlock(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost after double crash")
	}
	if err := c.CrashNode(-1); err == nil {
		t.Error("out-of-range crash accepted")
	}
}

func TestExplicitRecoverAndMonitor(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	if err := v.WriteBlock(ctx, 0, make([]byte, blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := v.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	recovered, err := v.Monitor(ctx, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 1 {
		t.Fatalf("monitor recovered %d stripes, want 1", recovered)
	}
}

func TestGarbageCollectionThroughFacade(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	for i := uint64(0); i < 8; i++ {
		if err := v.WriteBlock(ctx, i, make([]byte, blockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if err := v.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if v.Stats().Writes.Load() != 8 {
		t.Fatalf("stats writes = %d", v.Stats().Writes.Load())
	}
}

func TestMultipleVolumesShareData(t *testing.T) {
	c := localCluster(t, 2, 4)
	v1 := vol(t, c, 1)
	v2 := vol(t, c, 2)
	ctx := ctxT(t)
	data := bytes.Repeat([]byte{9}, blockSize)
	if err := v1.WriteBlock(ctx, 5, data); err != nil {
		t.Fatal(err)
	}
	got, err := v2.ReadBlock(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("second volume does not see first volume's write")
	}
}

func TestVolumeZeroClientIDRejected(t *testing.T) {
	c := localCluster(t, 2, 4)
	if _, err := c.NewClient(0); err == nil {
		t.Fatal("client ID 0 accepted")
	}
}

func TestTierClientIDOutOfRangeRejected(t *testing.T) {
	// With the small-write tier on, client identities select disjoint
	// staging extents: an out-of-range ID must be rejected, never
	// silently aliased onto another client's slot (whose segment the
	// construction-time salvage would replay and tombstone).
	if _, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		SmallWriteTier: true, SmallWriteStaging: 16, ClientID: 17,
	}); err == nil {
		t.Fatal("ClientID 17 accepted with SmallWriteTier")
	}
	s, err := ecstore.New(ecstore.Options{
		K: 2, N: 4, BlockSize: blockSize,
		SmallWriteTier: true, SmallWriteStaging: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v := s.(*ecstore.Volume)
	if _, err := v.NewClient(17); err == nil {
		t.Fatal("sibling client ID 17 accepted with SmallWriteTier")
	}
	if _, err := v.NewClient(0); err == nil {
		t.Fatal("sibling client ID 0 accepted with SmallWriteTier")
	}
	v2, err := v.NewClient(16) // top of the valid range
	if err != nil {
		t.Fatal(err)
	}
	_ = v2.Close()
}

func TestAllModesThroughFacade(t *testing.T) {
	for _, mode := range []ecstore.UpdateMode{ecstore.Serial, ecstore.Parallel, ecstore.Hybrid, ecstore.Broadcast} {
		v, err := ecstore.New(ecstore.Options{K: 2, N: 5, BlockSize: blockSize, Mode: mode, TP: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = v.Close() })
		ctx := ctxT(t)
		data := bytes.Repeat([]byte{byte(mode)}, blockSize)
		if err := v.WriteBlock(ctx, 1, data); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got, err := v.ReadBlock(ctx, 1)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v: read mismatch (%v)", mode, err)
		}
	}
}

func TestConnectClusterOverTCP(t *testing.T) {
	const k, n = 2, 4
	addrs := make([]string, n)
	nodes := make([]*storage.Node, n)
	for i := 0; i < n; i++ {
		node := storage.MustNew(storage.Options{ID: "tcp", BlockSize: blockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = srv.Addr().String()
		nodes[i] = node
	}
	s, err := ecstore.Connect(ecstore.Options{K: k, N: n, BlockSize: blockSize}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	v := s.(*ecstore.Volume)
	ctx := ctxT(t)
	data := bytes.Repeat([]byte{0xCD}, blockSize)
	if err := v.WriteBlock(ctx, 9, data); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBlock(ctx, 9)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("TCP round trip failed: %v", err)
	}
	// Crash a node server-side and replace it via ReplaceNode.
	nodes[1].Crash()
	repl := storage.MustNew(storage.Options{ID: "tcp-repl", BlockSize: blockSize, Replacement: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.Serve(ln, repl)
	t.Cleanup(func() { _ = srv.Close() })
	if err := v.ReplaceNode(1, srv.Addr().String()); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadBlock(ctx, 9)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after TCP node replacement failed: %v", err)
	}
	if err := v.CrashNode(0); err == nil {
		t.Error("CrashNode on a TCP cluster should error")
	}
	if err := v.ReplaceNode(99, "x"); err == nil {
		t.Error("out-of-range ReplaceNode accepted")
	}
}

// TestConnectClusterStriped proves the facade's transport knobs reach
// the RPC layer: with Stripes=3 every endpoint ends up with three
// pipelined connections (request ids hashed across them), visible as
// exactly 3 dials per node in the shared metrics registry.
func TestConnectClusterStriped(t *testing.T) {
	const k, n = 2, 4
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node := storage.MustNew(storage.Options{ID: "tcps", BlockSize: blockSize})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.Serve(ln, node)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[i] = srv.Addr().String()
	}
	reg := obs.NewRegistry()
	v, err := ecstore.Connect(ecstore.Options{
		K: k, N: n, BlockSize: blockSize,
		Stripes: 3, SockReadBuffer: 64 << 10, SockWriteBuffer: 64 << 10,
		Obs: reg,
	}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v.Close() })
	ctx := ctxT(t)
	for blk := uint64(0); blk < 8; blk++ {
		data := bytes.Repeat([]byte{byte(blk + 1)}, blockSize)
		if err := v.WriteBlock(ctx, blk, data); err != nil {
			t.Fatal(err)
		}
		got, err := v.ReadBlock(ctx, blk)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("striped round trip block %d failed: %v", blk, err)
		}
	}
	// Enough calls hit every node that all three stripes of each
	// endpoint have dialed; healthy stripes never redial.
	if dials := reg.Counter("rpc.dials").Value(); dials != 3*n {
		t.Fatalf("got %d dials, want %d (3 stripes x %d nodes)", dials, 3*n, n)
	}
}

func TestConnectClusterAddressCount(t *testing.T) {
	_, err := ecstore.Connect(ecstore.Options{K: 2, N: 4, BlockSize: 64}, []string{"a"})
	if err == nil {
		t.Fatal("wrong address count accepted")
	}
}

func TestErrorsExported(t *testing.T) {
	if ecstore.ErrUnrecoverable == nil || ecstore.ErrWriteExhausted == nil {
		t.Fatal("exported errors are nil")
	}
	if errors.Is(ecstore.ErrUnrecoverable, ecstore.ErrWriteExhausted) {
		t.Fatal("distinct errors compare equal")
	}
}

func TestWriteAtUsesStripeFastPath(t *testing.T) {
	c := localCluster(t, 3, 5)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	// A 4-stripe aligned payload: the fast path must kick in.
	payload := make([]byte, 4*3*blockSize)
	rand.New(rand.NewSource(9)).Read(payload)
	n, err := v.WriteAt(ctx, payload, 0)
	if err != nil || n != len(payload) {
		t.Fatalf("WriteAt: %d, %v", n, err)
	}
	if got := v.Stats().StripeWrites.Load(); got != 4 {
		t.Fatalf("stripe writes = %d, want 4", got)
	}
	if got := v.Stats().Writes.Load(); got != 0 {
		t.Fatalf("per-block writes = %d, want 0 on the aligned span", got)
	}
	back := make([]byte, len(payload))
	if _, err := v.ReadAt(ctx, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("fast-path write round trip failed")
	}
	// Survives crashes like any other write.
	_ = c.CrashNode(1)
	_ = c.CrashNode(3)
	if _, err := v.ReadAt(ctx, back, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("fast-path data lost after crashes")
	}
}

func TestWriteStripeBlocksFacade(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	values := [][]byte{bytes.Repeat([]byte{1}, blockSize), bytes.Repeat([]byte{2}, blockSize)}
	if err := v.WriteStripeBlocks(ctx, 3, values); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBlock(ctx, 7) // stripe 3, slot 1 => logical 3*2+1
	if err != nil || !bytes.Equal(got, values[1]) {
		t.Fatalf("stripe block read mismatch: %v", err)
	}
}

func TestLocalClusterPersistence(t *testing.T) {
	dir := t.TempDir()
	ctx := ctxT(t)
	opts := ecstore.Options{K: 2, N: 4, BlockSize: blockSize, DataDir: dir}

	v1, err := ecstore.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x42}, blockSize)
	for i := uint64(0); i < 6; i++ {
		if err := v1.WriteBlock(ctx, i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on the same directory: data persists.
	opts.ClientID = 2
	v2, err := ecstore.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	for i := uint64(0); i < 6; i++ {
		got, err := v2.ReadBlock(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("block %d lost across cluster restart", i)
		}
	}
}

func TestVolumeScrub(t *testing.T) {
	c := localCluster(t, 2, 4)
	v := vol(t, c, 1)
	ctx := ctxT(t)
	if err := v.WriteBlock(ctx, 0, bytes.Repeat([]byte{1}, blockSize)); err != nil {
		t.Fatal(err)
	}
	// Quiesce via GC, then scrub: clean.
	for pass := 0; pass < 2; pass++ {
		if err := v.CollectGarbage(ctx); err != nil {
			t.Fatal(err)
		}
	}
	clean, busy, repaired, err := v.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if clean != 1 || busy != 0 || repaired != 0 {
		t.Fatalf("scrub = %d/%d/%d, want 1/0/0", clean, busy, repaired)
	}
	// Crash a node; scrub must repair.
	if err := c.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	_, _, repaired, err = v.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Fatalf("scrub repaired = %d, want 1", repaired)
	}
}

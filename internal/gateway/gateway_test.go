package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"ecstore/internal/bulk"
	"ecstore/internal/proto"
)

// memBackend is an in-memory block space implementing Backend, so the
// namespace/QoS/drain logic is tested without a cluster underneath.
type memBackend struct {
	mu        sync.Mutex
	data      map[int64][]byte // block index → block
	blockSize int
	capacity  uint64
	delay     time.Duration // per-call latency, for overlap tests
}

func newMemBackend(blockSize int, capacity uint64) *memBackend {
	return &memBackend{data: make(map[int64][]byte), blockSize: blockSize, capacity: capacity}
}

func (m *memBackend) BlockSize() int   { return m.blockSize }
func (m *memBackend) Capacity() uint64 { return m.capacity }

func (m *memBackend) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bs := int64(m.blockSize)
	for done := 0; done < len(p); {
		blk, within := (off+int64(done))/bs, (off+int64(done))%bs
		n := int(min64(int64(len(p)-done), bs-within))
		b, ok := m.data[blk]
		if !ok {
			b = make([]byte, bs)
			m.data[blk] = b
		}
		copy(b[within:], p[done:done+n])
		done += n
	}
	return len(p), nil
}

func (m *memBackend) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bs := int64(m.blockSize)
	for done := 0; done < len(p); {
		blk, within := (off+int64(done))/bs, (off+int64(done))%bs
		n := int(min64(int64(len(p)-done), bs-within))
		if b, ok := m.data[blk]; ok {
			copy(p[done:done+n], b[within:within+int64(n)])
		} else {
			for i := done; i < done+n; i++ {
				p[i] = 0
			}
		}
		done += n
	}
	return len(p), nil
}

func (m *memBackend) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return &memReader{m: m, ctx: ctx, off: off, remaining: nBytes}
}

type memReader struct {
	m         *memBackend
	ctx       context.Context
	off       int64
	remaining int64
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.m.ReadAt(r.ctx, p, r.off)
	r.off += int64(n)
	r.remaining -= int64(n)
	return n, err
}

func payload(seed byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed + byte(i*7)
	}
	return p
}

func mustPut(t *testing.T, gw *Gateway, tenant, key string, data []byte) {
	t.Helper()
	if err := gw.Put(context.Background(), tenant, key, bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatalf("put %s/%s: %v", tenant, key, err)
	}
}

func mustGet(t *testing.T, gw *Gateway, tenant, key string) ([]byte, ObjectInfo) {
	t.Helper()
	body, info, err := gw.Get(context.Background(), tenant, key)
	if err != nil {
		t.Fatalf("get %s/%s: %v", tenant, key, err)
	}
	defer body.Close()
	data, err := io.ReadAll(body)
	if err != nil {
		t.Fatalf("read %s/%s: %v", tenant, key, err)
	}
	return data, info
}

func TestPutGetRoundTrip(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 3})
	ctx := context.Background()
	sizes := []int{0, 1, 63, 64, 65, 192, 192*3 + 7, 5000}
	for i, size := range sizes {
		key := fmt.Sprintf("obj-%d", size)
		want := payload(byte(i+1), size)
		mustPut(t, gw, "acme", key, want)
		got, info := mustGet(t, gw, "acme", key)
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: body mismatch (got %d bytes)", size, len(got))
		}
		if info.Size != int64(size) || info.Version != 1 {
			t.Fatalf("size %d: info = %+v", size, info)
		}
		// Extents are stripe-rounded: 3 blocks of 64 bytes per stripe.
		if size > 0 && info.Blocks%3 != 0 {
			t.Fatalf("size %d: extent %d blocks not stripe-rounded", size, info.Blocks)
		}
		st, err := gw.Stat(ctx, "acme", key)
		if err != nil || st != info {
			t.Fatalf("stat = %+v, %v; want %+v", st, err, info)
		}
	}
	// Overwrite bumps the version and changes the content.
	next := payload(99, 5000)
	mustPut(t, gw, "acme", "obj-5000", next)
	got, info := mustGet(t, gw, "acme", "obj-5000")
	if !bytes.Equal(got, next) || info.Version != 2 {
		t.Fatalf("overwrite: version %d, match %v", info.Version, bytes.Equal(got, next))
	}
	// Delete, then every lookup is a typed not-found.
	if err := gw.Delete(ctx, "acme", "obj-5000"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gw.Get(ctx, "acme", "obj-5000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete = %v, want ErrNotFound", err)
	}
	if _, err := gw.Stat(ctx, "acme", "obj-5000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after delete = %v, want ErrNotFound", err)
	}
	if err := gw.Delete(ctx, "acme", "obj-5000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	// Tenants are namespaces: the same key under another tenant is new.
	if _, _, err := gw.Get(ctx, "other", "obj-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant get = %v, want ErrNotFound", err)
	}
}

func TestShortBodyNeverPublishes(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 2})
	ctx := context.Background()
	mustPut(t, gw, "t", "k", payload(1, 100))
	// Claim 200 bytes but deliver 10: the Put must fail and the old
	// version must survive untouched.
	err := gw.Put(ctx, "t", "k", strings.NewReader("short body"), 200)
	if err == nil {
		t.Fatal("short body accepted")
	}
	got, info := mustGet(t, gw, "t", "k")
	if info.Version != 1 || !bytes.Equal(got, payload(1, 100)) {
		t.Fatalf("old version damaged by failed put: v%d", info.Version)
	}
}

func TestExtentReuseAfterDelete(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 2})
	ctx := context.Background()
	mustPut(t, gw, "t", "a", payload(1, 500))
	high := gw.alloc.next
	if err := gw.Delete(ctx, "t", "a"); err != nil {
		t.Fatal(err)
	}
	mustPut(t, gw, "t", "b", payload(2, 500))
	if gw.alloc.next != high {
		t.Fatalf("same-size put after delete grew the space: high-water %d → %d", high, gw.alloc.next)
	}
	if got, _ := mustGet(t, gw, "t", "b"); !bytes.Equal(got, payload(2, 500)) {
		t.Fatal("reused extent serves stale bytes")
	}
}

func TestPinnedReaderSurvivesOverwrite(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 2})
	ctx := context.Background()
	old := payload(1, 1000)
	mustPut(t, gw, "t", "k", old)
	body, info, err := gw.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("version = %d", info.Version)
	}
	// Overwrite twice while the reader is open; the pinned extent must
	// not be recycled (a same-size put would reuse it immediately).
	mustPut(t, gw, "t", "k", payload(2, 1000))
	mustPut(t, gw, "t", "k", payload(3, 1000))
	got, err := io.ReadAll(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("pinned reader saw bytes from a newer version")
	}
	if err := body.Close(); err != nil {
		t.Fatal(err)
	}
	// After the pin drops the old extent recycles: a same-size put no
	// longer grows the space.
	high := gw.alloc.next
	mustPut(t, gw, "t", "k2", payload(4, 1000))
	if gw.alloc.next != high {
		t.Fatalf("freed pinned extent not reused: high-water %d → %d", high, gw.alloc.next)
	}
}

func TestBoundedCapacityRunsOut(t *testing.T) {
	// 8 blocks of 64 bytes, stripe 2 → at most 4 stripes.
	gw := New(newMemBackend(64, 8), Options{Stripe: 2})
	ctx := context.Background()
	mustPut(t, gw, "t", "a", payload(1, 300)) // 3 stripes = 6 blocks
	err := gw.Put(ctx, "t", "b", bytes.NewReader(payload(2, 300)), 300)
	if !errors.Is(err, bulk.ErrOutOfRange) {
		t.Fatalf("over-capacity put = %v, want ErrOutOfRange", err)
	}
	// The remaining stripe still fits.
	mustPut(t, gw, "t", "c", payload(3, 100))
}

func TestThrottleTyped(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{
		Stripe:  2,
		Tenants: map[string]TenantLimit{"slow": {OpsPerSec: 1, OpBurst: 1}},
	})
	ctx := context.Background()
	mustPut(t, gw, "slow", "k", payload(1, 64))
	// Post-paid: the burst is spent and one more op is admitted into
	// debt; after that the tenant must shed with the typed error and a
	// usable retry-after.
	if body, _, err := gw.Get(ctx, "slow", "k"); err != nil {
		t.Fatalf("debt-admitted get: %v", err)
	} else {
		body.Close()
	}
	var throttle *ThrottleError
	_, _, err := gw.Get(ctx, "slow", "k")
	if !errors.Is(err, proto.ErrThrottled) {
		t.Fatalf("over-budget get = %v, want ErrThrottled", err)
	}
	if !errors.As(err, &throttle) {
		t.Fatalf("over-budget get %v does not carry a *ThrottleError", err)
	}
	if throttle.RetryAfter <= 0 || throttle.RetryAfter > 5*time.Second {
		t.Fatalf("retry-after = %v, want a small positive hint", throttle.RetryAfter)
	}
	if throttle.Tenant != "slow" {
		t.Fatalf("throttle names tenant %q", throttle.Tenant)
	}
	// An unconfigured tenant falls back to the (unlimited) default.
	for i := 0; i < 50; i++ {
		mustPut(t, gw, "fast", "k", payload(2, 64))
	}
}

func TestBytesThrottle(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{
		Stripe:  2,
		Tenants: map[string]TenantLimit{"t": {BytesPerSec: 1024, ByteBurst: 1024}},
	})
	ctx := context.Background()
	// Post-paid: a body bigger than the burst is admitted once...
	mustPut(t, gw, "t", "big", payload(1, 4096))
	// ...and the debt throttles the next op for roughly debt/rate.
	err := gw.Put(ctx, "t", "next", bytes.NewReader(payload(2, 64)), 64)
	var throttle *ThrottleError
	if !errors.As(err, &throttle) {
		t.Fatalf("post-debt put = %v, want *ThrottleError", err)
	}
	if throttle.RetryAfter < time.Second || throttle.RetryAfter > 10*time.Second {
		t.Fatalf("retry-after = %v, want ~3s of byte debt", throttle.RetryAfter)
	}
}

func TestOverloadTyped(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 2, MaxConcurrent: 1})
	ctx := context.Background()
	mustPut(t, gw, "t", "k", payload(1, 64))
	// A streaming Get holds its concurrency slot until Close.
	body, _, err := gw.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := gw.Get(ctx, "t", "k"); !errors.Is(err, proto.ErrOverloaded) {
		t.Fatalf("get at the concurrency limit = %v, want ErrOverloaded", err)
	}
	if err := gw.Put(ctx, "t", "k2", bytes.NewReader(payload(2, 64)), 64); !errors.Is(err, proto.ErrOverloaded) {
		t.Fatalf("put at the concurrency limit = %v, want ErrOverloaded", err)
	}
	if err := body.Close(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, gw, "t", "k2", payload(2, 64))
}

func TestDrainRefusesNewWork(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{Stripe: 2})
	ctx := context.Background()
	mustPut(t, gw, "t", "k", payload(1, 64))
	body, _, err := gw.Get(ctx, "t", "k")
	if err != nil {
		t.Fatal(err)
	}
	// With a body still streaming, a bounded drain times out...
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := gw.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with open body = %v, want deadline exceeded", err)
	}
	// ...while every new request is already refused, typed.
	if _, _, err := gw.Get(ctx, "t", "k"); !errors.Is(err, proto.ErrDraining) {
		t.Fatalf("get during drain = %v, want ErrDraining", err)
	}
	if err := gw.Put(ctx, "t", "k2", bytes.NewReader(payload(2, 64)), 64); !errors.Is(err, proto.ErrDraining) {
		t.Fatalf("put during drain = %v, want ErrDraining", err)
	}
	if !gw.Draining() {
		t.Fatal("Draining() = false during drain")
	}
	// Closing the body lets a second drain finish cleanly.
	if err := body.Close(); err != nil {
		t.Fatal(err)
	}
	done, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if err := gw.Drain(done); err != nil {
		t.Fatalf("drain after close = %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{})
	ctx := context.Background()
	if err := gw.Put(ctx, "", "k", strings.NewReader("x"), 1); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if err := gw.Put(ctx, "t", "", strings.NewReader("x"), 1); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := gw.Put(ctx, "t", "k", strings.NewReader("x"), -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

package gateway

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"ecstore/internal/proto"
	"ecstore/internal/regcheck"
)

// TestGatewaySoakRegcheck hammers one hot key with concurrent Puts and
// Gets and validates the observed history against the multi-writer
// regular-register contract (paper §3.1): manifests are published
// atomically and pinned extents are recycled only after the last
// reader, so a Get must never see a torn body, a never-written value,
// or a version that was already strictly overwritten when the read
// began. Run under -race in CI (gateway-soak job).
func TestGatewaySoakRegcheck(t *testing.T) {
	const (
		writers       = 4
		readers       = 4
		putsPerWriter = 150 // bounded so hist.Check() stays cheap
		getsPerReader = 300
		objSize       = 1024
	)
	gw := New(newMemBackend(64, 0), Options{Stripe: 3, MaxConcurrent: -1})
	ctx := context.Background()
	hist := regcheck.New()
	var next atomic.Uint64 // 0 is regcheck's reserved initial value

	body := func(v uint64) []byte {
		p := make([]byte, objSize)
		for off := 0; off+8 <= len(p); off += 8 {
			binary.BigEndian.PutUint64(p[off:], v)
		}
		return p
	}
	decode := func(p []byte) (uint64, bool) {
		if len(p) != objSize {
			return 0, false
		}
		v := binary.BigEndian.Uint64(p)
		for off := 8; off+8 <= len(p); off += 8 {
			if binary.BigEndian.Uint64(p[off:]) != v {
				return 0, false // torn body: two versions interleaved
			}
		}
		return v, true
	}

	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				v := next.Add(1)
				tok := hist.BeginWrite(v)
				if err := gw.Put(ctx, "soak", "hot", bytes.NewReader(body(v)), objSize); err != nil {
					t.Errorf("soak put %d: %v", v, err)
					failed.Store(true)
					return
				}
				hist.EndWrite(tok)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < getsPerReader; i++ {
				tok := hist.BeginRead()
				rc, _, err := gw.Get(ctx, "soak", "hot")
				if errors.Is(err, ErrNotFound) {
					continue // before the first put; read never recorded
				}
				if err != nil {
					t.Errorf("soak get: %v", err)
					failed.Store(true)
					return
				}
				data, err := io.ReadAll(rc)
				rc.Close()
				if err != nil {
					t.Errorf("soak read body: %v", err)
					failed.Store(true)
					return
				}
				v, ok := decode(data)
				if !ok {
					t.Errorf("soak read a torn body: %x...", data[:16])
					failed.Store(true)
					return
				}
				hist.EndRead(tok, v)
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}
	if err := hist.Check(); err != nil {
		t.Fatal(err)
	}
	nw, nr := hist.Counts()
	if nw == 0 || nr == 0 {
		t.Fatalf("soak too quiet: %d writes, %d reads", nw, nr)
	}
	t.Logf("soak: %d writes, %d reads, history regular", nw, nr)
	// Extent hygiene: once quiesced, exactly one live manifest remains
	// and its blocks are the only allocation.
	gw.mu.Lock()
	defer gw.mu.Unlock()
	obj := gw.objects["soak"]["hot"]
	if obj == nil || gw.alloc.allocated != obj.blocks {
		t.Fatalf("extent leak after soak: allocated %d blocks, live manifest %+v", gw.alloc.allocated, obj)
	}
}

// TestQoSIsolationUnderOverload drives one tenant far past its budget
// while a well-behaved tenant shares the gateway, and checks the
// behavioral half of the isolation contract: the greedy tenant is shed
// with typed ErrThrottled (never an un-typed failure), and the polite
// tenant never sheds at all. The latency half (polite p99 within a
// pinned ratio of its solo baseline) is the acceptance experiment in
// internal/experiments.
func TestQoSIsolationUnderOverload(t *testing.T) {
	gw := New(newMemBackend(64, 0), Options{
		Stripe:  2,
		Tenants: map[string]TenantLimit{"greedy": {OpsPerSec: 20, OpBurst: 5}},
	})
	ctx := context.Background()
	mustPut(t, gw, "greedy", "k", payload(1, 256))
	mustPut(t, gw, "polite", "k", payload(2, 256))

	const perTenantOps = 300
	var wg sync.WaitGroup
	var greedyOK, greedyThrottled, greedyOther atomic.Int64
	var politeErrs atomic.Int64
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < perTenantOps; i++ {
			rc, _, err := gw.Get(ctx, "greedy", "k")
			switch {
			case err == nil:
				io.Copy(io.Discard, rc)
				rc.Close()
				greedyOK.Add(1)
			case errors.Is(err, proto.ErrThrottled):
				greedyThrottled.Add(1)
			default:
				greedyOther.Add(1)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < perTenantOps; i++ {
			rc, _, err := gw.Get(ctx, "polite", "k")
			if err != nil {
				politeErrs.Add(1)
				continue
			}
			io.Copy(io.Discard, rc)
			rc.Close()
		}
	}()
	wg.Wait()

	if n := politeErrs.Load(); n != 0 {
		t.Fatalf("well-behaved tenant shed %d times by its neighbor's overload", n)
	}
	if greedyThrottled.Load() == 0 {
		t.Fatal("greedy tenant was never throttled")
	}
	if n := greedyOther.Load(); n != 0 {
		t.Fatalf("greedy tenant saw %d un-typed errors; every shed must be ErrThrottled", n)
	}
	if ok := greedyOK.Load(); ok > perTenantOps/2 {
		t.Fatalf("greedy tenant got %d/%d ops through a 20 op/s budget", ok, perTenantOps)
	}
}

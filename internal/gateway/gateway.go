// Package gateway is the front-end object service (the Access layer,
// in cubeFS BlobStore's split): a simple multi-tenant object API —
// Put/Get/Delete/Stat with streaming bodies — over the unified block
// Store facade. Objects live in an object → block-extent namespace:
// each Put packs its body into a freshly allocated, stripe-rounded
// extent of the flat block space through the pipelined bulk engine,
// then publishes the manifest atomically, so concurrent readers of
// the previous version keep a consistent extent until they finish
// (manifests are reference-counted and extents are recycled only once
// both superseded and unreferenced).
//
// The gateway is also where multi-tenant fairness is enforced: each
// tenant runs behind a post-paid token-bucket pair (ops/s and
// bytes/s, configurable burst), a global concurrency limiter protects
// the store itself, and every rejection is a typed backpressure error
// the front end can map to a transport-level reply — *ThrottleError
// (wrapping proto.ErrThrottled, with a retry-after hint),
// proto.ErrOverloaded, and proto.ErrDraining during graceful drain.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/bulk"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// ErrNotFound reports a Get/Delete/Stat of an object that does not
// exist (or was deleted). Use errors.Is.
var ErrNotFound = errors.New("gateway: object not found")

// Backend is the slice of the Store facade the gateway drives. Both
// facade shapes (*ecstore.Volume, *ecstore.ShardedVolume) and the
// internal volume types satisfy it.
type Backend interface {
	BlockSize() int
	// Capacity returns the addressable block count, or 0 when the
	// block space is unbounded.
	Capacity() uint64
	ReadAt(ctx context.Context, p []byte, off int64) (int, error)
	WriteAt(ctx context.Context, p []byte, off int64) (int, error)
	Reader(ctx context.Context, off, nBytes int64) io.Reader
}

// DefaultMaxConcurrent bounds in-flight requests when Options leaves
// MaxConcurrent zero.
const DefaultMaxConcurrent = 256

// Options configures a Gateway.
type Options struct {
	// Stripe is the backend's data blocks per stripe (the erasure
	// code's k). Extents round up to stripe multiples so object bodies
	// take the bulk engine's full-stripe batched write path instead of
	// read-modify-writing a partial tail block. 0 or 1 rounds extents
	// to single blocks.
	Stripe int
	// Tenants maps tenant names to their QoS budgets. Tenants not in
	// the map get DefaultLimit.
	Tenants map[string]TenantLimit
	// DefaultLimit applies to tenants absent from Tenants. The zero
	// value is unlimited.
	DefaultLimit TenantLimit
	// MaxConcurrent is the global in-flight request cap; a request
	// arriving with every slot taken is shed with proto.ErrOverloaded.
	// A Get holds its slot until the body is closed. Default
	// DefaultMaxConcurrent; negative disables the limiter.
	MaxConcurrent int
	// SmallWrite routes each object's sub-stripe tail through the
	// backend's byte-granular WriteAt instead of zero-padding it to a
	// stripe multiple. On a backend with a small-write tier
	// (ecstore.Options.SmallWriteTier) the tail is absorbed by the
	// staging segment — one parity-logged append instead of a
	// read-modify-write per tail block. Extents stay stripe-rounded
	// either way; reads never see the padding because Get serves
	// exactly the object's size.
	SmallWrite bool
	// Obs receives gateway.* metrics; nil disables them.
	Obs *obs.Registry
}

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	Tenant string
	Key    string
	// Size is the object's logical length in bytes.
	Size int64
	// Version counts Puts of this key, starting at 1.
	Version uint64
	// Blocks is the extent length (includes stripe-rounding padding).
	Blocks uint64
}

// object is one manifest: where a version of a key lives. Manifests
// are immutable after publish; refs/dead are guarded by Gateway.mu.
type object struct {
	off     int64  // extent start, bytes
	blocks  uint64 // extent length, blocks
	size    int64  // logical size, bytes
	version uint64
	refs    int  // readers streaming this version
	dead    bool // superseded or deleted: free the extent at refs==0
}

// Gateway serves the object API over one Backend. Safe for concurrent
// use.
type Gateway struct {
	b          Backend
	stripe     int
	smallWrite bool
	qos        *qos
	sem        chan struct{} // nil: unlimited

	mu      sync.Mutex
	objects map[string]map[string]*object // tenant → key → manifest
	alloc   allocator

	draining atomic.Bool
	inflight sync.WaitGroup
	idleMu   sync.Mutex
	idleCh   chan struct{}
	pending  int

	m metrics
}

type metrics struct {
	putCalls, getCalls, delCalls, statCalls *obs.Counter
	putLat, getLat                          *obs.Histogram
	errors                                  *obs.Counter
	throttled, overloaded, drainRejects     *obs.Counter
	bytesIn, bytesOut                       *obs.Counter
	inflight                                *obs.Gauge
}

// New builds a gateway over b.
func New(b Backend, opts Options) *Gateway {
	stripe := opts.Stripe
	if stripe < 1 {
		stripe = 1
	}
	gw := &Gateway{
		b:          b,
		stripe:     stripe,
		smallWrite: opts.SmallWrite,
		qos:        newQoS(opts.Tenants, opts.DefaultLimit, opts.Obs),
		objects:    make(map[string]map[string]*object),
		alloc:      allocator{capacity: b.Capacity()},
		m: metrics{
			putCalls:     opts.Obs.Counter("gateway.put.calls"),
			getCalls:     opts.Obs.Counter("gateway.get.calls"),
			delCalls:     opts.Obs.Counter("gateway.delete.calls"),
			statCalls:    opts.Obs.Counter("gateway.stat.calls"),
			putLat:       opts.Obs.Histogram("gateway.put.latency"),
			getLat:       opts.Obs.Histogram("gateway.get.latency"),
			errors:       opts.Obs.Counter("gateway.errors"),
			throttled:    opts.Obs.Counter("gateway.throttled"),
			overloaded:   opts.Obs.Counter("gateway.overloaded"),
			drainRejects: opts.Obs.Counter("gateway.drain_rejects"),
			bytesIn:      opts.Obs.Counter("gateway.bytes_in"),
			bytesOut:     opts.Obs.Counter("gateway.bytes_out"),
			inflight:     opts.Obs.Gauge("gateway.inflight"),
		},
	}
	maxc := opts.MaxConcurrent
	if maxc == 0 {
		maxc = DefaultMaxConcurrent
	}
	if maxc > 0 {
		gw.sem = make(chan struct{}, maxc)
	}
	opts.Obs.Func("gateway.objects", func() int64 {
		gw.mu.Lock()
		defer gw.mu.Unlock()
		var n int64
		for _, keys := range gw.objects {
			n += int64(len(keys))
		}
		return n
	})
	opts.Obs.Func("gateway.allocated_blocks", func() int64 {
		gw.mu.Lock()
		defer gw.mu.Unlock()
		return int64(gw.alloc.allocated)
	})
	return gw
}

// --- admission ---------------------------------------------------------------

// begin runs every request's admission chain: drain check, global
// concurrency slot, then (when metered) the tenant's QoS charge. On
// success the caller must call the returned release exactly once (a
// Get defers it to the body's Close).
func (gw *Gateway) begin(tenant string, byteCost int64, metered bool) (release func(), err error) {
	if gw.draining.Load() {
		gw.m.drainRejects.Inc()
		return nil, fmt.Errorf("gateway: %w", proto.ErrDraining)
	}
	if gw.sem != nil {
		select {
		case gw.sem <- struct{}{}:
		default:
			gw.m.overloaded.Inc()
			return nil, fmt.Errorf("gateway: concurrency limit %d: %w", cap(gw.sem), proto.ErrOverloaded)
		}
	}
	if metered {
		if err := gw.qos.admit(tenant, byteCost); err != nil {
			if gw.sem != nil {
				<-gw.sem
			}
			gw.m.throttled.Inc()
			return nil, err
		}
	}
	gw.track(1)
	gw.m.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			gw.m.inflight.Add(-1)
			if gw.sem != nil {
				<-gw.sem
			}
			gw.track(-1)
		})
	}, nil
}

// track maintains the drain accounting (pending count + idle signal).
func (gw *Gateway) track(delta int) {
	gw.idleMu.Lock()
	gw.pending += delta
	if gw.pending == 0 && gw.idleCh != nil {
		close(gw.idleCh)
		gw.idleCh = nil
	}
	gw.idleMu.Unlock()
}

// Drain puts the gateway into graceful shutdown: every new request is
// refused with proto.ErrDraining while in-flight requests (including
// Get bodies still streaming) get until ctx expires to finish. The
// gateway keeps refusing work after Drain returns, mirroring
// rpc.Server.Drain.
func (gw *Gateway) Drain(ctx context.Context) error {
	gw.draining.Store(true)
	for {
		gw.idleMu.Lock()
		if gw.pending == 0 {
			gw.idleMu.Unlock()
			return nil
		}
		if gw.idleCh == nil {
			gw.idleCh = make(chan struct{})
		}
		idle := gw.idleCh
		gw.idleMu.Unlock()
		select {
		case <-idle:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Draining reports whether the gateway is refusing new work.
func (gw *Gateway) Draining() bool { return gw.draining.Load() }

// --- object API --------------------------------------------------------------

// putChunkBytes bounds the staging buffer of one streamed Put: big
// enough to keep the bulk engine's default window full of stripes,
// small enough to stay pooled.
const putChunkBytes = 4 << 20

// Put stores size bytes from r as tenant's object key, overwriting
// any previous version. The body streams into a fresh stripe-rounded
// extent in chunks (each chunk one pipelined WriteAt), and the
// manifest is published only after the last byte is durably written —
// a failed or short body never replaces the old version.
func (gw *Gateway) Put(ctx context.Context, tenant, key string, r io.Reader, size int64) error {
	return gw.put(ctx, tenant, key, r, size, true)
}

// Preload stores an object exactly like Put but without charging the
// tenant's QoS budget (drain and the global concurrency limit still
// apply). It exists for warm-up tooling — a load generator preloading
// a rate-capped tenant's keyspace must not start the measured window
// with the tenant already in debt.
func (gw *Gateway) Preload(ctx context.Context, tenant, key string, r io.Reader, size int64) error {
	return gw.put(ctx, tenant, key, r, size, false)
}

func (gw *Gateway) put(ctx context.Context, tenant, key string, r io.Reader, size int64, metered bool) error {
	if err := checkName(tenant, key); err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("gateway: negative object size %d", size)
	}
	release, err := gw.begin(tenant, size, metered)
	if err != nil {
		return err
	}
	defer release()
	gw.m.putCalls.Inc()
	start := time.Now()

	bs := int64(gw.b.BlockSize())
	stripeBytes := bs * int64(gw.stripe)
	blocks := uint64((size + stripeBytes - 1) / stripeBytes * int64(gw.stripe))
	if size == 0 {
		blocks = 0
	}
	gw.mu.Lock()
	extent, err := gw.alloc.take(blocks)
	gw.mu.Unlock()
	if err != nil {
		gw.m.errors.Inc()
		return err
	}
	off := int64(extent) * bs

	// Stream the body: chunks are stripe-rounded (the final one
	// zero-padded to the extent's stripe boundary) so every WriteAt
	// stays on the full-stripe batched path and a reused extent's old
	// bytes are always overwritten. With Options.SmallWrite the final
	// chunk writes exact bytes instead: a sub-stripe tail becomes one
	// staged append in the store's small-write tier rather than a
	// padded read-modify-write, and the padding region of a reused
	// extent is never read back (Get serves exactly size bytes).
	chunkCap := putChunkBytes / stripeBytes * stripeBytes
	if chunkCap < stripeBytes {
		chunkCap = stripeBytes
	}
	var written int64
	for written < size {
		want := min64(size-written, chunkCap)
		buf := bufpool.Get(int(alignUp(want, stripeBytes)))
		_, rerr := io.ReadFull(r, buf[:want])
		if rerr == nil {
			span := buf
			if gw.smallWrite {
				span = buf[:want]
			} else {
				for i := want; i < int64(len(buf)); i++ {
					buf[i] = 0
				}
			}
			_, rerr = gw.b.WriteAt(ctx, span, off+written)
		}
		bufpool.Put(buf)
		if rerr != nil {
			gw.mu.Lock()
			gw.alloc.give(extent, blocks)
			gw.mu.Unlock()
			gw.m.errors.Inc()
			return fmt.Errorf("gateway: put %s/%s: %w", tenant, key, rerr)
		}
		written += want
	}
	gw.m.bytesIn.Add(uint64(size))

	gw.mu.Lock()
	keys, ok := gw.objects[tenant]
	if !ok {
		keys = make(map[string]*object)
		gw.objects[tenant] = keys
	}
	version := uint64(1)
	if old := keys[key]; old != nil {
		version = old.version + 1
		old.dead = true
		gw.reapLocked(old)
	}
	keys[key] = &object{off: off, blocks: blocks, size: size, version: version}
	gw.mu.Unlock()
	gw.m.putLat.Observe(time.Since(start))
	return nil
}

// Get opens tenant's object key for streaming. The returned body
// reads exactly the object's bytes with the bulk engine's readahead
// behind it; Close releases the version's extent pin and the
// gateway's concurrency slot, so callers must always Close (even on
// early abort). Info is valid immediately.
func (gw *Gateway) Get(ctx context.Context, tenant, key string) (body io.ReadCloser, info ObjectInfo, err error) {
	if err := checkName(tenant, key); err != nil {
		return nil, ObjectInfo{}, err
	}
	gw.mu.Lock()
	obj := gw.objects[tenant][key]
	gw.mu.Unlock()
	if obj == nil {
		return nil, ObjectInfo{}, fmt.Errorf("gateway: %w: %s/%s", ErrNotFound, tenant, key)
	}
	release, err := gw.begin(tenant, obj.size, true)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	gw.m.getCalls.Inc()
	start := time.Now()

	// Re-resolve and pin under the lock: the admission wait may have
	// raced a Delete or an overwrite.
	gw.mu.Lock()
	obj = gw.objects[tenant][key]
	if obj == nil {
		gw.mu.Unlock()
		release()
		return nil, ObjectInfo{}, fmt.Errorf("gateway: %w: %s/%s", ErrNotFound, tenant, key)
	}
	obj.refs++
	gw.mu.Unlock()

	info = ObjectInfo{Tenant: tenant, Key: key, Size: obj.size, Version: obj.version, Blocks: obj.blocks}
	r := gw.b.Reader(ctx, obj.off, obj.size)
	return &objectBody{gw: gw, obj: obj, r: r, release: release, start: start}, info, nil
}

// objectBody streams one pinned object version.
type objectBody struct {
	gw      *Gateway
	obj     *object
	r       io.Reader
	release func()
	start   time.Time
	read    int64
	closed  bool
}

func (b *objectBody) Read(p []byte) (int, error) {
	if b.closed {
		return 0, errors.New("gateway: read of closed object body")
	}
	n, err := b.r.Read(p)
	b.read += int64(n)
	return n, err
}

func (b *objectBody) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	b.gw.m.bytesOut.Add(uint64(b.read))
	b.gw.m.getLat.Observe(time.Since(b.start))
	b.gw.mu.Lock()
	b.obj.refs--
	b.gw.reapLocked(b.obj)
	b.gw.mu.Unlock()
	b.release()
	return nil
}

// Delete removes tenant's object key. The extent is recycled once the
// last in-flight reader of the version finishes.
func (gw *Gateway) Delete(ctx context.Context, tenant, key string) error {
	if err := checkName(tenant, key); err != nil {
		return err
	}
	release, err := gw.begin(tenant, 0, true)
	if err != nil {
		return err
	}
	defer release()
	gw.m.delCalls.Inc()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	obj := gw.objects[tenant][key]
	if obj == nil {
		return fmt.Errorf("gateway: %w: %s/%s", ErrNotFound, tenant, key)
	}
	delete(gw.objects[tenant], key)
	obj.dead = true
	gw.reapLocked(obj)
	return nil
}

// Stat returns the object's manifest. It costs one op of the
// tenant's budget but no bytes.
func (gw *Gateway) Stat(ctx context.Context, tenant, key string) (ObjectInfo, error) {
	if err := checkName(tenant, key); err != nil {
		return ObjectInfo{}, err
	}
	release, err := gw.begin(tenant, 0, true)
	if err != nil {
		return ObjectInfo{}, err
	}
	defer release()
	gw.m.statCalls.Inc()
	gw.mu.Lock()
	defer gw.mu.Unlock()
	obj := gw.objects[tenant][key]
	if obj == nil {
		return ObjectInfo{}, fmt.Errorf("gateway: %w: %s/%s", ErrNotFound, tenant, key)
	}
	return ObjectInfo{Tenant: tenant, Key: key, Size: obj.size, Version: obj.version, Blocks: obj.blocks}, nil
}

// reapLocked recycles a manifest's extent once it is both dead and
// unreferenced. Callers hold gw.mu.
func (gw *Gateway) reapLocked(obj *object) {
	if obj.dead && obj.refs == 0 && obj.blocks > 0 {
		gw.alloc.give(uint64(obj.off)/uint64(gw.b.BlockSize()), obj.blocks)
		obj.blocks = 0
	}
}

func checkName(tenant, key string) error {
	if tenant == "" {
		return errors.New("gateway: empty tenant")
	}
	if key == "" {
		return errors.New("gateway: empty key")
	}
	return nil
}

// --- extent allocator --------------------------------------------------------

// extent is one free run of blocks.
type extent struct{ start, blocks uint64 }

// allocator hands out block extents from the flat address space: a
// bump pointer plus a first-fit free list fed by deletes. Extents are
// stripe-rounded by the caller, so workloads with repeating object
// sizes reuse freed extents exactly; a larger free run is split and
// the remainder stays on the list. Guarded by Gateway.mu.
type allocator struct {
	next      uint64
	capacity  uint64 // blocks; 0 = unbounded
	free      []extent
	allocated uint64 // live blocks, for the gauge
}

func (a *allocator) take(blocks uint64) (uint64, error) {
	if blocks == 0 {
		return 0, nil
	}
	for i := range a.free {
		if a.free[i].blocks >= blocks {
			start := a.free[i].start
			a.free[i].start += blocks
			a.free[i].blocks -= blocks
			if a.free[i].blocks == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.allocated += blocks
			return start, nil
		}
	}
	if a.capacity > 0 && a.next+blocks > a.capacity {
		return 0, fmt.Errorf("gateway: extent of %d blocks: %w (capacity %d, high-water %d)",
			blocks, bulk.ErrOutOfRange, a.capacity, a.next)
	}
	start := a.next
	a.next += blocks
	a.allocated += blocks
	return start, nil
}

func (a *allocator) give(start, blocks uint64) {
	if blocks == 0 {
		return
	}
	a.allocated -= blocks
	a.free = append(a.free, extent{start: start, blocks: blocks})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func alignUp(v, to int64) int64 {
	if to <= 0 {
		return v
	}
	return (v + to - 1) / to * to
}

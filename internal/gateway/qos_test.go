package gateway

import (
	"errors"
	"testing"
	"time"

	"ecstore/internal/proto"
)

// fakeClock drives a qos deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQoS(limits map[string]TenantLimit, fallback TenantLimit) (*qos, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newQoS(limits, fallback, nil)
	q.now = clk.now
	return q, clk
}

func TestQoSUnlimitedByDefault(t *testing.T) {
	q, _ := newTestQoS(nil, TenantLimit{})
	for i := 0; i < 10000; i++ {
		if err := q.admit("anyone", 1<<20); err != nil {
			t.Fatalf("unlimited tenant throttled at op %d: %v", i, err)
		}
	}
}

func TestQoSOpsRate(t *testing.T) {
	q, clk := newTestQoS(map[string]TenantLimit{"t": {OpsPerSec: 10, OpBurst: 5}}, TenantLimit{})
	// Burst of 5 plus the one post-paid op at level 0 → 6 admitted.
	admitted := 0
	for i := 0; i < 20; i++ {
		if q.admit("t", 0) == nil {
			admitted++
		}
	}
	if admitted != 6 {
		t.Fatalf("admitted %d ops from a burst of 5, want 6 (post-paid)", admitted)
	}
	// The deficit refills at 10 ops/s.
	err := q.admit("t", 0)
	var th *ThrottleError
	if !errors.As(err, &th) || th.RetryAfter <= 0 {
		t.Fatalf("throttled admit = %v", err)
	}
	clk.advance(2 * time.Second)
	if err := q.admit("t", 0); err != nil {
		t.Fatalf("admit after refill window: %v", err)
	}
}

func TestQoSBytesRateAndRetryAfter(t *testing.T) {
	q, clk := newTestQoS(map[string]TenantLimit{"t": {BytesPerSec: 1000, ByteBurst: 1000}}, TenantLimit{})
	// One 5000-byte op: admitted post-paid, leaving 4000 bytes of debt
	// that refills at 1000 B/s → the hint should say ~4s.
	if err := q.admit("t", 5000); err != nil {
		t.Fatalf("post-paid big op: %v", err)
	}
	var th *ThrottleError
	if err := q.admit("t", 10); !errors.As(err, &th) {
		t.Fatalf("op during byte debt = %v", err)
	}
	if th.RetryAfter < 3900*time.Millisecond || th.RetryAfter > 4100*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~4s", th.RetryAfter)
	}
	if !errors.Is(th, proto.ErrThrottled) {
		t.Fatal("ThrottleError does not unwrap to proto.ErrThrottled")
	}
	clk.advance(th.RetryAfter + time.Millisecond)
	if err := q.admit("t", 10); err != nil {
		t.Fatalf("admit after waiting out the hint: %v", err)
	}
}

func TestQoSChargeIsAllOrNothing(t *testing.T) {
	q, clk := newTestQoS(map[string]TenantLimit{
		"t": {OpsPerSec: 1, OpBurst: 1, BytesPerSec: 100, ByteBurst: 100},
	}, TenantLimit{})
	// Exhaust the op bucket (burst 1 → two post-paid admits).
	q.admit("t", 0)
	q.admit("t", 0)
	// A huge op rejected on the op axis must not charge the byte axis:
	// if it leaked, the tenant would owe ~10000s of byte debt below.
	if err := q.admit("t", 1_000_000); err == nil {
		t.Fatal("op-throttled request admitted")
	}
	clk.advance(1500 * time.Millisecond)
	if err := q.admit("t", 0); err != nil {
		t.Fatalf("byte budget was charged by a rejected request: %v", err)
	}
}

func TestQoSBurstDefaults(t *testing.T) {
	// OpBurst unset defaults to one second of rate, minimum 1.
	b := newBucket(TenantLimit{OpsPerSec: 0.1}, nil)
	if b.ops.burst != 1 {
		t.Fatalf("sub-1 rate burst = %v, want the floor of 1", b.ops.burst)
	}
	b = newBucket(TenantLimit{OpsPerSec: 50}, nil)
	if b.ops.burst != 50 {
		t.Fatalf("default op burst = %v, want one second of rate", b.ops.burst)
	}
	b = newBucket(TenantLimit{BytesPerSec: 4096}, nil)
	if b.bytes.burst != 4096 {
		t.Fatalf("default byte burst = %v, want one second of rate", b.bytes.burst)
	}
}

func TestQoSTenantsAreIndependent(t *testing.T) {
	q, _ := newTestQoS(map[string]TenantLimit{"slow": {OpsPerSec: 1, OpBurst: 1}}, TenantLimit{})
	// Drive "slow" deep into throttle...
	for i := 0; i < 10; i++ {
		q.admit("slow", 0)
	}
	if err := q.admit("slow", 0); err == nil {
		t.Fatal("slow tenant not throttled")
	}
	// ...while an unconfigured tenant (fallback: unlimited) never sheds.
	for i := 0; i < 1000; i++ {
		if err := q.admit("fast", 1<<20); err != nil {
			t.Fatalf("fast tenant caught slow tenant's throttle: %v", err)
		}
	}
}

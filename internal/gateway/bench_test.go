package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
)

// BenchmarkAdmit measures the QoS admission hot path for a rate-limited
// tenant with plenty of budget (no shedding).
func BenchmarkAdmit(b *testing.B) {
	q := newQoS(map[string]TenantLimit{
		"t": {OpsPerSec: 1e12, BytesPerSec: 1e15},
	}, TenantLimit{}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.admit("t", 16<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitShed measures the rejection path: building the typed
// *ThrottleError for a tenant deep in debt.
func BenchmarkAdmitShed(b *testing.B) {
	q := newQoS(map[string]TenantLimit{"t": {OpsPerSec: 1e-9, OpBurst: 1}}, TenantLimit{}, nil)
	q.admit("t", 0)
	q.admit("t", 0) // now in debt for ~decades
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.admit("t", 0); err == nil {
			b.Fatal("expected throttle")
		}
	}
}

// BenchmarkPut16KiB measures the full Put path — admission, extent
// allocation, stripe-rounded streaming, manifest publish — over an
// in-memory backend, so it prices the gateway's own overhead.
func BenchmarkPut16KiB(b *testing.B) {
	gw := New(newMemBackend(4096, 0), Options{Stripe: 3, MaxConcurrent: -1})
	ctx := context.Background()
	body := payloadB(16 << 10)
	b.SetBytes(16 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%64) // overwrite cycle exercises extent reuse
		if err := gw.Put(ctx, "bench", key, bytes.NewReader(body), int64(len(body))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet16KiB measures the full Get path: admission, manifest
// pin, streamed body, pin release.
func BenchmarkGet16KiB(b *testing.B) {
	gw := New(newMemBackend(4096, 0), Options{Stripe: 3, MaxConcurrent: -1})
	ctx := context.Background()
	body := payloadB(16 << 10)
	if err := gw.Put(ctx, "bench", "k", bytes.NewReader(body), int64(len(body))); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(16 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rc, _, err := gw.Get(ctx, "bench", "k")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, rc); err != nil {
			b.Fatal(err)
		}
		rc.Close()
	}
}

func payloadB(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 13)
	}
	return p
}

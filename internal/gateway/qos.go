package gateway

import (
	"fmt"
	"sync"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// TenantLimit is one tenant's QoS budget. Zero rates mean unlimited
// on that axis, so the zero value is "no limits at all".
type TenantLimit struct {
	// OpsPerSec caps the tenant's request rate across every operation
	// (Put, Get, Delete, Stat each cost one op). 0 = unlimited.
	OpsPerSec float64
	// BytesPerSec caps the tenant's payload throughput (Put bodies in,
	// Get bodies out; Delete and Stat are free). 0 = unlimited.
	BytesPerSec float64
	// OpBurst is the op bucket's depth. 0 defaults to one second of
	// OpsPerSec (minimum 1).
	OpBurst float64
	// ByteBurst is the byte bucket's depth. 0 defaults to one second
	// of BytesPerSec.
	ByteBurst float64
}

// ThrottleError is the typed rejection for a tenant over its QoS
// budget. It wraps proto.ErrThrottled (match with errors.Is) and
// carries the earliest time the request could have been admitted, the
// client's backoff hint (HTTP 429 Retry-After at the gatewayd front
// end).
type ThrottleError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("%v: tenant %q over budget, retry after %v", proto.ErrThrottled, e.Tenant, e.RetryAfter)
}

func (e *ThrottleError) Unwrap() error { return proto.ErrThrottled }

// pool is one post-paid token pool: admission requires a non-negative
// level, and the admitted cost may drive the level negative (debt that
// refills at rate). Post-paid admission means an object larger than
// one burst still goes through — it just makes the tenant wait out
// the debt — while the long-run rate stays pinned at the configured
// budget over any window (the same bound internal/repair's bandwidth
// governor uses).
type pool struct {
	rate  float64 // tokens/sec; 0 = unlimited
	burst float64 // cap on the level
	level float64
	last  time.Time
}

func (p *pool) refill(now time.Time) {
	if p.rate == 0 {
		return
	}
	if !p.last.IsZero() {
		p.level += p.rate * now.Sub(p.last).Seconds()
		if p.level > p.burst {
			p.level = p.burst
		}
	} else {
		p.level = p.burst
	}
	p.last = now
}

// debt returns how long until the pool is admittable again.
func (p *pool) debt() time.Duration {
	if p.rate == 0 || p.level >= 0 {
		return 0
	}
	return time.Duration(-p.level / p.rate * float64(time.Second))
}

// bucket is one tenant's pair of pools plus throttle accounting.
type bucket struct {
	mu        sync.Mutex
	ops       pool
	bytes     pool
	throttled *obs.Counter // gateway.tenant.<name>.throttled
}

func newBucket(l TenantLimit, throttled *obs.Counter) *bucket {
	opBurst := l.OpBurst
	if opBurst <= 0 {
		opBurst = l.OpsPerSec
		if opBurst < 1 {
			opBurst = 1
		}
	}
	byteBurst := l.ByteBurst
	if byteBurst <= 0 {
		byteBurst = l.BytesPerSec
	}
	return &bucket{
		ops:       pool{rate: l.OpsPerSec, burst: opBurst},
		bytes:     pool{rate: l.BytesPerSec, burst: byteBurst},
		throttled: throttled,
	}
}

// admit charges one op plus byteCost bytes, or reports how long the
// caller should wait before retrying. The charge is all-or-nothing:
// a request throttled on one axis does not consume the other.
func (b *bucket) admit(now time.Time, byteCost int64) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops.refill(now)
	b.bytes.refill(now)
	if wait := max(b.ops.debt(), b.bytes.debt()); wait > 0 {
		b.throttled.Inc()
		return wait, false
	}
	if b.ops.rate > 0 {
		b.ops.level--
	}
	if b.bytes.rate > 0 {
		b.bytes.level -= float64(byteCost)
	}
	return 0, true
}

// qos maps tenants to their buckets, creating unknown tenants from
// the default limit on first sight.
type qos struct {
	mu       sync.Mutex
	buckets  map[string]*bucket
	limits   map[string]TenantLimit
	fallback TenantLimit
	reg      *obs.Registry
	now      func() time.Time
}

func newQoS(limits map[string]TenantLimit, fallback TenantLimit, reg *obs.Registry) *qos {
	return &qos{
		buckets:  make(map[string]*bucket),
		limits:   limits,
		fallback: fallback,
		reg:      reg,
		now:      time.Now,
	}
}

func (q *qos) bucket(tenant string) *bucket {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		limit, configured := q.limits[tenant]
		if !configured {
			limit = q.fallback
		}
		b = newBucket(limit, q.reg.Counter("gateway.tenant."+tenant+".throttled"))
		q.buckets[tenant] = b
	}
	return b
}

// admit charges tenant for one op moving byteCost payload bytes and
// returns nil, or a *ThrottleError with the retry-after hint.
func (q *qos) admit(tenant string, byteCost int64) error {
	if wait, ok := q.bucket(tenant).admit(q.now(), byteCost); !ok {
		return &ThrottleError{Tenant: tenant, RetryAfter: wait}
	}
	return nil
}

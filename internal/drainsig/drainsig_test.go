package drainsig

import (
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestWaitOnRunsDrainAfterSignal drives the injectable variant: drain
// must not run before the signal and must see a deadline derived from
// the timeout.
func TestWaitOnRunsDrainAfterSignal(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ran := make(chan time.Time, 1)
	done := make(chan error, 1)
	go func() {
		done <- WaitOn(sig, time.Minute, func(ctx context.Context) error {
			dl, ok := ctx.Deadline()
			if !ok {
				t.Error("drain context has no deadline")
			}
			ran <- dl
			return errors.New("drain says hi")
		})
	}()
	select {
	case <-ran:
		t.Fatal("drain ran before any signal arrived")
	case <-time.After(20 * time.Millisecond):
	}
	sig <- syscall.SIGTERM
	dl := <-ran
	if until := time.Until(dl); until <= 0 || until > time.Minute {
		t.Fatalf("drain deadline %v from now, want within (0, 1m]", until)
	}
	if err := <-done; err == nil || err.Error() != "drain says hi" {
		t.Fatalf("WaitOn returned %v, want the drain's error", err)
	}
}

// TestContextZeroTimeoutExpiresImmediately pins the zero-grace-period
// semantics both daemons rely on: the context must already be (or
// instantly become) expired so a drain refuses new work without
// waiting on stragglers.
func TestContextZeroTimeoutExpiresImmediately(t *testing.T) {
	for _, timeout := range []time.Duration{0, -time.Second} {
		ctx, cancel := Context(timeout)
		select {
		case <-ctx.Done():
		case <-time.After(100 * time.Millisecond):
			cancel()
			t.Fatalf("Context(%v) not expired after 100ms", timeout)
		}
		cancel()
	}
	ctx, cancel := Context(time.Minute)
	defer cancel()
	if ctx.Err() != nil {
		t.Fatalf("Context(1m) already expired: %v", ctx.Err())
	}
}

// TestWaitCatchesRealSIGTERM exercises the registered-signal path end
// to end by delivering a real SIGTERM to the test process.
func TestWaitCatchesRealSIGTERM(t *testing.T) {
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		done <- Wait(time.Second, func(ctx context.Context) error {
			return ctx.Err() // nil: the grace period has not expired
		})
	}()
	<-started
	// Give Wait a moment to install its handler before the kill.
	time.Sleep(20 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not observe SIGTERM")
	}
}

// Package drainsig owns the SIGTERM→graceful-drain pattern shared by
// the long-running daemons (storaged, gatewayd): block until SIGINT or
// SIGTERM, then run the server's drain under a bounded context so new
// work is refused with a typed error (proto.ErrDraining) while
// in-flight requests get a grace period to finish. Keeping the
// pattern in one place means the daemons cannot drift on the signal
// set or the zero-timeout semantics.
package drainsig

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Wait blocks until SIGINT or SIGTERM arrives, then calls drain under
// a context bounded by timeout (see Context) and returns its error.
// The signal registration is removed before returning, so a second
// signal during a slow drain kills the process the default way — the
// operator's escape hatch.
func Wait(timeout time.Duration, drain func(context.Context) error) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	return WaitOn(sig, timeout, drain)
}

// WaitOn is Wait with an injectable signal source, for tests and for
// callers that multiplex their own signal channel.
func WaitOn(sig <-chan os.Signal, timeout time.Duration, drain func(context.Context) error) error {
	<-sig
	ctx, cancel := Context(timeout)
	defer cancel()
	return drain(ctx)
}

// Context returns the drain-bounding context for a grace period. A
// timeout <= 0 still yields an already-expiring (one nanosecond)
// deadline rather than an unbounded context: drain implementations
// poll ctx.Done() to cap their wait, and "no grace period" must mean
// "refuse new work and return now", not "wait forever".
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		timeout = time.Nanosecond
	}
	return context.WithTimeout(context.Background(), timeout)
}

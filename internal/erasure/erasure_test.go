package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ecstore/internal/gf"
)

func randBlocks(rng *rand.Rand, count, blockLen int) [][]byte {
	blocks := make([][]byte, count)
	for i := range blocks {
		blocks[i] = make([]byte, blockLen)
		rng.Read(blocks[i])
	}
	return blocks
}

func TestNewParameterValidation(t *testing.T) {
	tests := []struct {
		k, n   int
		wantOK bool
	}{
		{2, 4, true},
		{1, 2, true},
		{16, 32, true},
		{255, 256, true},
		{0, 4, false},
		{4, 4, false},
		{5, 4, false},
		{2, 257, false},
		{-1, 3, false},
	}
	for _, tt := range tests {
		_, err := New(tt.k, tt.n)
		if (err == nil) != tt.wantOK {
			t.Errorf("New(%d, %d): err = %v, wantOK %v", tt.k, tt.n, err, tt.wantOK)
		}
	}
}

func TestMustPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must(4, 4) did not panic")
		}
	}()
	Must(4, 4)
}

func TestAccessors(t *testing.T) {
	c := Must(3, 5)
	if c.K() != 3 || c.N() != 5 || c.P() != 2 {
		t.Fatalf("K/N/P = %d/%d/%d, want 3/5/2", c.K(), c.N(), c.P())
	}
	if c.String() != "RS(3,5)" {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestSystematicIdentity(t *testing.T) {
	// Data blocks must pass through unchanged: encoding must not alter
	// them, and reconstruction with all data present returns them.
	c := Must(4, 7)
	rng := rand.New(rand.NewSource(11))
	data := randBlocks(rng, 4, 128)
	stripe, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(stripe[i], data[i]) {
			t.Fatalf("systematic property violated at block %d", i)
		}
	}
	ok, err := c.Verify(stripe)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
}

func TestReconstructFromEverySubset(t *testing.T) {
	// For a small code, erase every possible subset of n-k blocks and
	// confirm full reconstruction. This is the MDS property end to end.
	c := Must(3, 6)
	rng := rand.New(rand.NewSource(5))
	data := randBlocks(rng, 3, 64)
	orig, err := c.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	n := c.N()
	// Iterate over all bitmasks with exactly p bits set.
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != c.P() {
			continue
		}
		stripe := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				stripe[i] = append([]byte(nil), orig[i]...)
			}
		}
		if err := c.Reconstruct(stripe); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(stripe[i], orig[i]) {
				t.Fatalf("mask %b: block %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructTooFewBlocks(t *testing.T) {
	c := Must(3, 5)
	stripe := make([][]byte, 5)
	stripe[0] = make([]byte, 16)
	stripe[1] = make([]byte, 16)
	if err := c.Reconstruct(stripe); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestReconstructShapeErrors(t *testing.T) {
	c := Must(2, 4)
	if err := c.Reconstruct(make([][]byte, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("wrong stripe length: err = %v, want ErrShape", err)
	}
	stripe := [][]byte{make([]byte, 8), make([]byte, 16), nil, nil}
	if err := c.Reconstruct(stripe); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched block lengths: err = %v, want ErrShape", err)
	}
}

func TestDecodeData(t *testing.T) {
	c := Must(4, 6)
	rng := rand.New(rand.NewSource(9))
	data := randBlocks(rng, 4, 100)
	stripe, _ := c.EncodeStripe(data)
	// Remove two data blocks; decode from the rest.
	stripe[0] = nil
	stripe[2] = nil
	got, err := c.DecodeData(stripe)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("data block %d mismatch", i)
		}
	}
}

func TestDecodeDataErrors(t *testing.T) {
	c := Must(2, 4)
	if _, err := c.DecodeData(make([][]byte, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	stripe := make([][]byte, 4)
	stripe[3] = make([]byte, 8)
	if _, err := c.DecodeData(stripe); !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v, want ErrShort", err)
	}
	stripe[2] = make([]byte, 9)
	if _, err := c.DecodeData(stripe); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDeltaUpdateEquivalentToReencode(t *testing.T) {
	// The heart of the protocol: updating redundant blocks with
	// alpha*(v-w) deltas must produce exactly the stripe obtained by
	// re-encoding the new data. Checked across codes and block indices.
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{2, 4}, {3, 5}, {5, 7}, {8, 12}} {
		c := Must(dims[0], dims[1])
		data := randBlocks(rng, c.K(), 256)
		stripe, _ := c.EncodeStripe(data)
		for i := 0; i < c.K(); i++ {
			v := make([]byte, 256)
			rng.Read(v)
			w := stripe[i]
			for j := c.K(); j < c.N(); j++ {
				gf.AddSlice(stripe[j], c.Delta(j, i, v, w))
			}
			stripe[i] = v
			data[i] = v
			want, _ := c.Encode(data)
			for j := c.K(); j < c.N(); j++ {
				if !bytes.Equal(stripe[j], want[j-c.K()]) {
					t.Fatalf("%s: delta update of block %d diverged at redundant %d", c, i, j)
				}
			}
		}
	}
}

func TestConcurrentDeltaOrderIndependence(t *testing.T) {
	// Fig. 3(C) of the paper: two writers updating different data
	// blocks may interleave their adds in any order, and the stripe
	// still converges to the encode of the final data. XOR commutes,
	// so order must not matter.
	c := Must(2, 4)
	rng := rand.New(rand.NewSource(21))
	data := randBlocks(rng, 2, 32)
	stripe, _ := c.EncodeStripe(data)
	v0 := make([]byte, 32)
	v1 := make([]byte, 32)
	rng.Read(v0)
	rng.Read(v1)
	d0j2 := c.Delta(2, 0, v0, stripe[0])
	d0j3 := c.Delta(3, 0, v0, stripe[0])
	d1j2 := c.Delta(2, 1, v1, stripe[1])
	d1j3 := c.Delta(3, 1, v1, stripe[1])

	// Interleaving A: writer0 then writer1 on node 2; reversed on 3.
	gf.AddSlice(stripe[2], d0j2)
	gf.AddSlice(stripe[2], d1j2)
	gf.AddSlice(stripe[3], d1j3)
	gf.AddSlice(stripe[3], d0j3)
	stripe[0], stripe[1] = v0, v1

	want, _ := c.Encode([][]byte{v0, v1})
	if !bytes.Equal(stripe[2], want[0]) || !bytes.Equal(stripe[3], want[1]) {
		t.Fatal("interleaved deltas did not converge to re-encoded stripe")
	}
}

func TestRawDelta(t *testing.T) {
	v := []byte{1, 2, 3}
	w := []byte{4, 5, 6}
	d := RawDelta(v, w)
	for i := range d {
		if d[i] != v[i]^w[i] {
			t.Fatal("RawDelta is not XOR")
		}
	}
	// Node-side multiply must match client-side Delta.
	c := Must(2, 4)
	vb := make([]byte, 16)
	wb := make([]byte, 16)
	rand.New(rand.NewSource(2)).Read(vb)
	raw := RawDelta(vb, wb)
	scaled := make([]byte, 16)
	gf.MulSlice(c.Coef(3, 1), scaled, raw)
	if !bytes.Equal(scaled, c.Delta(3, 1, vb, wb)) {
		t.Fatal("server-side multiply of RawDelta != client-side Delta")
	}
}

func TestDeltaLengthMismatchPanics(t *testing.T) {
	c := Must(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Delta with mismatched lengths did not panic")
		}
	}()
	c.Delta(2, 0, make([]byte, 4), make([]byte, 8))
}

func TestCoefRangePanics(t *testing.T) {
	c := Must(2, 4)
	for _, args := range [][2]int{{0, 0}, {1, 0}, {4, 0}, {2, -1}, {2, 2}} {
		func() {
			defer func() { recover() }()
			c.Coef(args[0], args[1])
			t.Errorf("Coef(%d, %d) did not panic", args[0], args[1])
		}()
	}
	// Valid coefficients are non-zero for an MDS code.
	for j := 2; j < 4; j++ {
		for i := 0; i < 2; i++ {
			if c.Coef(j, i) == 0 {
				t.Errorf("Coef(%d, %d) = 0; MDS coefficients must be non-zero", j, i)
			}
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c := Must(3, 5)
	rng := rand.New(rand.NewSource(13))
	stripe, _ := c.EncodeStripe(randBlocks(rng, 3, 50))
	ok, err := c.Verify(stripe)
	if err != nil || !ok {
		t.Fatalf("clean stripe: Verify = %v, %v", ok, err)
	}
	stripe[1][7] ^= 0x40
	ok, err = c.Verify(stripe)
	if err != nil || ok {
		t.Fatalf("corrupt stripe: Verify = %v, %v; want false", ok, err)
	}
}

func TestVerifyShapeError(t *testing.T) {
	c := Must(2, 4)
	if _, err := c.Verify(make([][]byte, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestEncodeShapeErrors(t *testing.T) {
	c := Must(3, 5)
	if _, err := c.Encode(make([][]byte, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("wrong count: err = %v, want ErrShape", err)
	}
	blocks := [][]byte{make([]byte, 4), nil, make([]byte, 4)}
	if _, err := c.Encode(blocks); !errors.Is(err, ErrShape) {
		t.Fatalf("nil block: err = %v, want ErrShape", err)
	}
	blocks[1] = make([]byte, 5)
	if _, err := c.Encode(blocks); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged blocks: err = %v, want ErrShape", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: for random data and a random erasure pattern of size
	// <= p, reconstruction restores the original stripe exactly.
	c := Must(5, 8)
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64, eraseMask uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := randBlocks(rng, c.K(), 48)
		orig, err := c.EncodeStripe(data)
		if err != nil {
			return false
		}
		stripe := make([][]byte, c.N())
		erased := 0
		for i := 0; i < c.N(); i++ {
			if eraseMask&(1<<i) != 0 && erased < c.P() {
				erased++
				continue
			}
			stripe[i] = append([]byte(nil), orig[i]...)
		}
		if err := c.Reconstruct(stripe); err != nil {
			return false
		}
		for i := range stripe {
			if !bytes.Equal(stripe[i], orig[i]) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestLargeCodes(t *testing.T) {
	// The paper evaluates codes up to n=32, k=16. Spot-check a large
	// shape for correct reconstruction with maximal erasures.
	c := Must(16, 32)
	rng := rand.New(rand.NewSource(99))
	data := randBlocks(rng, 16, 64)
	orig, _ := c.EncodeStripe(data)
	stripe := make([][]byte, 32)
	for i := 16; i < 32; i++ { // erase all data blocks... keep parity only
		stripe[i] = append([]byte(nil), orig[i]...)
	}
	if err := c.Reconstruct(stripe); err != nil {
		t.Fatal(err)
	}
	for i := range stripe {
		if !bytes.Equal(stripe[i], orig[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestDeltaPropertyRandomCodes drives the delta-update identity across
// random code shapes, update slots, and block contents with
// testing/quick: applying alpha*(v-w) to every redundant block always
// re-establishes the codeword.
func TestDeltaPropertyRandomCodes(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64, kRaw, nRaw, slotRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%6) + 2     // 2..7
		n := k + int(nRaw%4) + 1 // k+1..k+4
		i := int(slotRaw) % k    // update slot
		c, err := New(k, n)
		if err != nil {
			return false
		}
		data := randBlocks(rng, k, 40)
		stripe, err := c.EncodeStripe(data)
		if err != nil {
			return false
		}
		v := make([]byte, 40)
		rng.Read(v)
		for j := k; j < n; j++ {
			gf.AddSlice(stripe[j], c.Delta(j, i, v, stripe[i]))
		}
		stripe[i] = v
		ok, err := c.Verify(stripe)
		return err == nil && ok
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestReconstructPropertyRandomErasures checks decode-from-any-k over
// random shapes and random erasure patterns.
func TestReconstructPropertyRandomErasures(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	err := quick.Check(func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%6) + 2
		n := k + int(nRaw%4) + 1
		c, err := New(k, n)
		if err != nil {
			return false
		}
		data := randBlocks(rng, k, 32)
		orig, err := c.EncodeStripe(data)
		if err != nil {
			return false
		}
		// Erase a random subset of size p.
		perm := rng.Perm(n)
		erased := make(map[int]bool, n-k)
		for _, idx := range perm[:n-k] {
			erased[idx] = true
		}
		work := make([][]byte, n)
		for idx := range orig {
			if !erased[idx] {
				work[idx] = append([]byte(nil), orig[idx]...)
			}
		}
		if err := c.Reconstruct(work); err != nil {
			return false
		}
		for idx := range orig {
			if !bytes.Equal(work[idx], orig[idx]) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

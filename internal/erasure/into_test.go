package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// Round-trip tests for the reusable-destination coding API: the Into
// variants must match the allocating APIs byte for byte and allocate
// nothing themselves.

func intoBlocks(t *testing.T, seed int64, count, blockLen int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	blocks := make([][]byte, count)
	for i := range blocks {
		blocks[i] = make([]byte, blockLen)
		rng.Read(blocks[i])
	}
	return blocks
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	for _, blockLen := range []int{0, 1, 9, 1024, 16384, 16411} {
		c := Must(4, 6)
		data := intoBlocks(t, int64(blockLen)+1, c.K(), blockLen)
		want, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		parity := make([][]byte, c.P())
		for j := range parity {
			parity[j] = make([]byte, blockLen)
			// Dirty the reusable destinations: EncodeInto must fully
			// overwrite, not accumulate.
			for b := range parity[j] {
				parity[j][b] = 0xee
			}
		}
		c.EncodeInto(parity, data)
		for j := range parity {
			if !bytes.Equal(parity[j], want[j]) {
				t.Fatalf("blockLen=%d: EncodeInto parity %d differs from Encode", blockLen, j)
			}
		}
	}
}

func TestDeltaIntoMatchesDelta(t *testing.T) {
	c := Must(3, 5)
	for _, blockLen := range []int{0, 1, 7, 8, 9, 1024, 16384} {
		v := intoBlocks(t, 77, 1, blockLen)[0]
		w := intoBlocks(t, 78, 1, blockLen)[0]
		for j := c.K(); j < c.N(); j++ {
			for i := 0; i < c.K(); i++ {
				want := c.Delta(j, i, v, w)
				dst := make([]byte, blockLen)
				for b := range dst {
					dst[b] = 0xee
				}
				c.DeltaInto(dst, j, i, v, w)
				if !bytes.Equal(dst, want) {
					t.Fatalf("blockLen=%d j=%d i=%d: DeltaInto differs from Delta", blockLen, j, i)
				}
			}
		}
	}
}

func TestRawDeltaIntoMatchesRawDelta(t *testing.T) {
	v := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	w := []byte{9, 9, 9, 0, 0, 0, 1, 2, 3, 4, 5}
	want := RawDelta(v, w)

	dst := make([]byte, len(v))
	RawDeltaInto(dst, v, w)
	if !bytes.Equal(dst, want) {
		t.Fatal("RawDeltaInto differs from RawDelta")
	}

	// Exact-alias forms: dst == v and dst == w must both work — the
	// stripe writer XORs old content into a copied buffer in place.
	dv := append([]byte(nil), v...)
	RawDeltaInto(dv, dv, w)
	if !bytes.Equal(dv, want) {
		t.Fatal("RawDeltaInto with dst aliasing v differs")
	}
	dw := append([]byte(nil), w...)
	RawDeltaInto(dw, v, dw)
	if !bytes.Equal(dw, want) {
		t.Fatal("RawDeltaInto with dst aliasing w differs")
	}
}

func TestIntoShapePanics(t *testing.T) {
	c := Must(3, 5)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("DeltaInto short dst", func() {
		c.DeltaInto(make([]byte, 3), 3, 0, make([]byte, 4), make([]byte, 4))
	})
	mustPanic("DeltaInto v/w mismatch", func() {
		c.DeltaInto(make([]byte, 4), 3, 0, make([]byte, 4), make([]byte, 5))
	})
	mustPanic("RawDeltaInto mismatch", func() {
		RawDeltaInto(make([]byte, 4), make([]byte, 5), make([]byte, 5))
	})
}

// TestCodingInnerLoopZeroAllocs is the acceptance gate for the
// zero-alloc data plane: the steady-state coding operations must not
// allocate at all once destinations are provided.
func TestCodingInnerLoopZeroAllocs(t *testing.T) {
	c := Must(4, 6)
	const blockLen = 16384
	data := intoBlocks(t, 5, c.K(), blockLen)
	parity := intoBlocks(t, 6, c.P(), blockLen)
	v := intoBlocks(t, 7, 1, blockLen)[0]
	w := intoBlocks(t, 8, 1, blockLen)[0]
	dst := make([]byte, blockLen)

	if n := testing.AllocsPerRun(50, func() { c.EncodeInto(parity, data) }); n != 0 {
		t.Fatalf("EncodeInto allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { c.DeltaInto(dst, 4, 1, v, w) }); n != 0 {
		t.Fatalf("DeltaInto allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { RawDeltaInto(dst, v, w) }); n != 0 {
		t.Fatalf("RawDeltaInto allocates %.1f per run, want 0", n)
	}
}

func BenchmarkEncodeInto16K(b *testing.B) {
	c := Must(4, 6)
	const blockLen = 16384
	rng := rand.New(rand.NewSource(1))
	data := make([][]byte, c.K())
	for i := range data {
		data[i] = make([]byte, blockLen)
		rng.Read(data[i])
	}
	parity := make([][]byte, c.P())
	for j := range parity {
		parity[j] = make([]byte, blockLen)
	}
	b.SetBytes(int64(c.K() * blockLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeInto(parity, data)
	}
}

func BenchmarkDeltaInto16K(b *testing.B) {
	c := Must(4, 6)
	const blockLen = 16384
	rng := rand.New(rand.NewSource(2))
	v := make([]byte, blockLen)
	w := make([]byte, blockLen)
	dst := make([]byte, blockLen)
	rng.Read(v)
	rng.Read(w)
	b.SetBytes(blockLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DeltaInto(dst, 4, 1, v, w)
	}
}

func BenchmarkDelta16K(b *testing.B) {
	// The allocating form, kept for the before/after story in
	// BENCH_kernels.json.
	c := Must(4, 6)
	const blockLen = 16384
	rng := rand.New(rand.NewSource(3))
	v := make([]byte, blockLen)
	w := make([]byte, blockLen)
	rng.Read(v)
	rng.Read(w)
	b.SetBytes(blockLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Delta(4, 1, v, w)
	}
}

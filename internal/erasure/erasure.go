// Package erasure implements systematic k-of-n maximum distance
// separable (MDS) Reed-Solomon codes over GF(2^8).
//
// A stripe consists of k data blocks b_1..b_k and p = n-k redundant
// blocks b_{k+1}..b_n, where each redundant block is a linear
// combination b_j = sum_i alpha_ji * b_i. Any k blocks of a stripe
// reconstruct all n.
//
// Because the code is linear over a characteristic-2 field, a data
// block can be updated in place: when block i changes from w to v,
// each redundant block j changes by alpha_ji * (v XOR w). This is the
// property the distributed protocol in internal/core exploits — the
// paper's swap/add write path never reads the other data blocks.
package erasure

import (
	"errors"
	"fmt"

	"ecstore/internal/gf"
)

// MaxShards bounds n; GF(2^8) Vandermonde construction admits at most
// 256 distinct evaluation points.
const MaxShards = 256

var (
	// ErrShort is returned when fewer than k blocks are available for
	// reconstruction.
	ErrShort = errors.New("erasure: not enough blocks to reconstruct")
	// ErrShape is returned when block counts or lengths do not match
	// the code parameters.
	ErrShape = errors.New("erasure: block shape mismatch")
)

// Code is a systematic k-of-n Reed-Solomon code. It is immutable after
// construction and safe for concurrent use.
type Code struct {
	k int
	n int
	// gen is the n-by-k generator matrix. The top k rows form the
	// identity (the code is systematic); row j >= k holds the
	// coefficients alpha_j* of redundant block j.
	gen *gf.Matrix
}

// New constructs a systematic k-of-n code. It requires 1 <= k < n <=
// MaxShards. The paper's protocol additionally assumes k >= 2 and
// n-k <= k for its resiliency theorems, but the code itself does not.
func New(k, n int) (*Code, error) {
	if k < 1 || n <= k || n > MaxShards {
		return nil, fmt.Errorf("erasure: invalid parameters k=%d n=%d", k, n)
	}
	// Build an n-by-k Vandermonde matrix and normalize its top k rows
	// to the identity by right-multiplying with the inverse of the top
	// square. Row selections of the result remain invertible, so the
	// MDS property is preserved and the code becomes systematic.
	v := gf.VandermondeMatrix(n, k)
	top := v.SubMatrix(seq(0, k))
	topInv, err := top.Invert()
	if err != nil {
		// Cannot happen: any k rows of a Vandermonde matrix over
		// distinct points are linearly independent.
		return nil, fmt.Errorf("erasure: vandermonde top square singular: %w", err)
	}
	return &Code{k: k, n: n, gen: v.Mul(topInv)}, nil
}

// Must is New for static configurations; it panics on invalid
// parameters.
func Must(k, n int) *Code {
	c, err := New(k, n)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of data blocks per stripe.
func (c *Code) K() int { return c.k }

// N returns the total number of blocks per stripe.
func (c *Code) N() int { return c.n }

// P returns the number of redundant blocks per stripe, n-k.
func (c *Code) P() int { return c.n - c.k }

// Coef returns alpha_ji, the generator coefficient applied to data
// block i (0-based, i < k) in redundant block j (0-based, k <= j < n).
func (c *Code) Coef(j, i int) byte {
	if j < c.k || j >= c.n || i < 0 || i >= c.k {
		panic(fmt.Sprintf("erasure: Coef(%d, %d) out of range for %d-of-%d", j, i, c.k, c.n))
	}
	return c.gen.At(j, i)
}

// String describes the code, e.g. "RS(3,5)".
func (c *Code) String() string { return fmt.Sprintf("RS(%d,%d)", c.k, c.n) }

// Encode computes the p redundant blocks for the given k data blocks.
// All data blocks must share a length; the returned blocks have the
// same length. This is the "full encode" used by recovery, not by the
// common-case write path.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if err := c.checkBlocks(data, c.k); err != nil {
		return nil, err
	}
	blockLen := len(data[0])
	parity := make([][]byte, c.P())
	for j := range parity {
		parity[j] = make([]byte, blockLen)
	}
	c.EncodeInto(parity, data)
	return parity, nil
}

// EncodeInto computes redundant blocks into caller-provided storage.
// parity must hold P() blocks of the same length as the data blocks.
func (c *Code) EncodeInto(parity, data [][]byte) {
	for j := 0; j < c.P(); j++ {
		row := c.gen.Row(c.k + j)
		clear(parity[j])
		for i := 0; i < c.k; i++ {
			gf.MulAddSlice(row[i], parity[j], data[i])
		}
	}
}

// EncodeStripe returns the full stripe (data followed by parity) for
// the given data blocks. Data blocks are copied, so mutating the
// result does not alias the input.
func (c *Code) EncodeStripe(data [][]byte) ([][]byte, error) {
	parity, err := c.Encode(data)
	if err != nil {
		return nil, err
	}
	stripe := make([][]byte, 0, c.n)
	for _, d := range data {
		stripe = append(stripe, append([]byte(nil), d...))
	}
	return append(stripe, parity...), nil
}

// Delta returns alpha_ji * (v XOR w): the quantity a writer adds to
// redundant block j when data block i changes from w to v. v and w
// must share a length.
func (c *Code) Delta(j, i int, v, w []byte) []byte {
	d := make([]byte, len(v))
	c.DeltaInto(d, j, i, v, w)
	return d
}

// DeltaInto computes alpha_ji * (v XOR w) into caller-provided
// storage, the zero-allocation form of Delta for the steady-state
// write path. dst, v and w must share a length; dst may alias v or w
// exactly but must not overlap them partially.
func (c *Code) DeltaInto(dst []byte, j, i int, v, w []byte) {
	if len(v) != len(w) || len(dst) != len(v) {
		panic("erasure: DeltaInto length mismatch")
	}
	RawDeltaInto(dst, v, w)
	gf.MulSlice(c.Coef(j, i), dst, dst)
}

// RawDelta returns v XOR w, the un-multiplied delta a writer broadcasts
// when storage nodes apply the coefficient themselves (AJX-bcast).
func RawDelta(v, w []byte) []byte {
	d := make([]byte, len(v))
	RawDeltaInto(d, v, w)
	return d
}

// RawDeltaInto computes v XOR w into caller-provided storage, the
// zero-allocation form of RawDelta. dst, v and w must share a length;
// dst may alias v or w exactly but must not overlap them partially.
func RawDeltaInto(dst, v, w []byte) {
	if len(v) != len(w) || len(dst) != len(v) {
		panic("erasure: RawDeltaInto length mismatch")
	}
	if len(dst) > 0 && &dst[0] == &w[0] {
		// dst aliasing w still works: XOR is commutative, fold v in.
		gf.AddSlice(dst, v)
		return
	}
	copy(dst, v)
	gf.AddSlice(dst, w)
}

// Reconstruct rebuilds the complete stripe from any k available
// blocks. stripe must have length n; present blocks are identified by
// non-nil entries and must share a length. Missing entries are filled
// in place (fresh slices are allocated for them). It returns ErrShort
// when fewer than k blocks are present.
func (c *Code) Reconstruct(stripe [][]byte) error {
	if len(stripe) != c.n {
		return fmt.Errorf("%w: got %d blocks, want n=%d", ErrShape, len(stripe), c.n)
	}
	avail := make([]int, 0, c.k)
	blockLen := -1
	for idx, b := range stripe {
		if b == nil {
			continue
		}
		if blockLen == -1 {
			blockLen = len(b)
		} else if len(b) != blockLen {
			return fmt.Errorf("%w: block %d has length %d, want %d", ErrShape, idx, len(b), blockLen)
		}
		if len(avail) < c.k {
			avail = append(avail, idx)
		}
	}
	if len(avail) < c.k {
		return fmt.Errorf("%w: have %d, need %d", ErrShort, len(avail), c.k)
	}

	data, err := c.decodeData(stripe, avail, blockLen)
	if err != nil {
		return err
	}
	// Fill in every missing block from the recovered data blocks.
	for idx := range stripe {
		if stripe[idx] != nil {
			continue
		}
		if idx < c.k {
			stripe[idx] = data[idx]
			continue
		}
		out := make([]byte, blockLen)
		row := c.gen.Row(idx)
		for i := 0; i < c.k; i++ {
			gf.MulAddSlice(row[i], out, data[i])
		}
		stripe[idx] = out
	}
	return nil
}

// DecodeData recovers the k data blocks from any k available blocks of
// a stripe. stripe must have length n with nil marking missing blocks.
// The returned slices never alias the input.
func (c *Code) DecodeData(stripe [][]byte) ([][]byte, error) {
	if len(stripe) != c.n {
		return nil, fmt.Errorf("%w: got %d blocks, want n=%d", ErrShape, len(stripe), c.n)
	}
	avail := make([]int, 0, c.k)
	blockLen := -1
	for idx, b := range stripe {
		if b == nil {
			continue
		}
		if blockLen == -1 {
			blockLen = len(b)
		} else if len(b) != blockLen {
			return nil, fmt.Errorf("%w: block %d has length %d, want %d", ErrShape, idx, len(b), blockLen)
		}
		if len(avail) < c.k {
			avail = append(avail, idx)
		}
	}
	if len(avail) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrShort, len(avail), c.k)
	}
	return c.decodeData(stripe, avail, blockLen)
}

// decodeData solves for the data blocks using the k rows named by
// avail. It always allocates fresh output blocks.
func (c *Code) decodeData(stripe [][]byte, avail []int, blockLen int) ([][]byte, error) {
	sub := c.gen.SubMatrix(avail)
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for a correctly constructed MDS code.
		return nil, fmt.Errorf("erasure: decode submatrix singular: %w", err)
	}
	in := make([][]byte, c.k)
	for i, idx := range avail {
		in[i] = stripe[idx]
	}
	data := make([][]byte, c.k)
	for i := range data {
		data[i] = make([]byte, blockLen)
	}
	dec.MulVec(data, in)
	return data, nil
}

// ReconstructRows returns, for each target block index, the row of
// per-survivor coefficients that rebuilds it from the k blocks named by
// avail:
//
//	block[target] = sum_m rows[t][m] * stripe[avail[m]]
//
// avail must name exactly k distinct block indices. This is the
// coefficient set the bandwidth-frugal repair path ships to survivors:
// each survivor multiplies its own block by its coefficient locally and
// the contributions are folded together along an aggregation tree, so
// one combined block comes back instead of k raw ones.
func (c *Code) ReconstructRows(avail []int, targets []int) ([][]byte, error) {
	if len(avail) != c.k {
		return nil, fmt.Errorf("%w: %d available rows, need exactly k=%d", ErrShape, len(avail), c.k)
	}
	for _, idx := range avail {
		if idx < 0 || idx >= c.n {
			return nil, fmt.Errorf("%w: available index %d out of range [0,%d)", ErrShape, idx, c.n)
		}
	}
	sub := c.gen.SubMatrix(avail)
	dec, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode submatrix singular: %w", err)
	}
	rows := make([][]byte, len(targets))
	for t, target := range targets {
		if target < 0 || target >= c.n {
			return nil, fmt.Errorf("%w: target index %d out of range [0,%d)", ErrShape, target, c.n)
		}
		row := make([]byte, c.k)
		if target < c.k {
			// Data block: its decode row is row `target` of the inverse.
			copy(row, dec.Row(target))
		} else {
			// Redundant block: combine the generator row with the decode
			// matrix — row[m] = sum_i gen[target][i] * dec[i][m].
			genRow := c.gen.Row(target)
			for m := 0; m < c.k; m++ {
				var acc byte
				for i := 0; i < c.k; i++ {
					acc ^= gf.Mul(genRow[i], dec.At(i, m))
				}
				row[m] = acc
			}
		}
		rows[t] = row
	}
	return rows, nil
}

// Verify reports whether a complete stripe is internally consistent:
// every redundant block equals the coded combination of the data
// blocks. It is used by tests and by the recovery audit path.
func (c *Code) Verify(stripe [][]byte) (bool, error) {
	if err := c.checkBlocks(stripe, c.n); err != nil {
		return false, err
	}
	blockLen := len(stripe[0])
	buf := make([]byte, blockLen)
	for j := c.k; j < c.n; j++ {
		row := c.gen.Row(j)
		clear(buf)
		for i := 0; i < c.k; i++ {
			gf.MulAddSlice(row[i], buf, stripe[i])
		}
		for b := range buf {
			if buf[b] != stripe[j][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *Code) checkBlocks(blocks [][]byte, want int) error {
	if len(blocks) != want {
		return fmt.Errorf("%w: got %d blocks, want %d", ErrShape, len(blocks), want)
	}
	blockLen := len(blocks[0])
	for i, b := range blocks {
		if b == nil {
			return fmt.Errorf("%w: block %d is nil", ErrShape, i)
		}
		if len(b) != blockLen {
			return fmt.Errorf("%w: block %d has length %d, want %d", ErrShape, i, len(b), blockLen)
		}
	}
	return nil
}

func seq(lo, hi int) []int {
	s := make([]int, hi-lo)
	for i := range s {
		s[i] = lo + i
	}
	return s
}

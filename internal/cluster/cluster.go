// Package cluster assembles a complete in-process deployment of the
// AJX storage system — storage nodes, directory service, and protocol
// clients — with hooks for failure injection (storage crashes, client
// crashes, node remap). Tests, examples, and the experiment harness
// all build on it.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
)

// Options configures a cluster.
type Options struct {
	// K, N are the erasure code parameters. Required.
	K, N int
	// BlockSize in bytes. Required.
	BlockSize int
	// Clients is the number of protocol clients. Defaults to 1.
	Clients int
	// Mode is the redundant-update mode. Defaults to Parallel.
	Mode resilience.UpdateMode
	// TP is the tolerated client-crash threshold. Defaults to 0.
	TP int
	// WrapNode optionally wraps every storage-node handle (shaping,
	// counting). Applied to initial nodes and replacements alike.
	WrapNode func(phys int, n proto.StorageNode) proto.StorageNode
	// Multicast optionally equips clients with broadcast delivery.
	Multicast proto.Multicaster
	// NoReplacements disables automatic node remapping: a crashed node
	// stays dead (clients keep erroring). Default is to remap to a
	// fresh INIT node on the first failure report.
	NoReplacements bool
	// LockLease configures lease-based lock expiry on storage nodes;
	// zero means expiry happens only through FailClient (oracle).
	LockLease time.Duration
	// RetryDelay overrides the clients' retry pause (speeds up tests).
	RetryDelay time.Duration
	// Retry overrides the clients' backoff/deadline/budget policy.
	Retry core.RetryPolicy
	// Hedge enables speculative reads against gray nodes (off when
	// zero; see core.HedgePolicy).
	Hedge core.HedgePolicy
	// ClientTweak, when set, may adjust each client config before use.
	ClientTweak func(*core.Config)
	// Obs optionally collects every client's metrics in one registry.
	Obs *obs.Registry
}

// Cluster is an assembled in-process deployment.
type Cluster struct {
	Code    *erasure.Code
	Layout  stripe.Layout
	Dir     *directory.Service
	Clients []*core.Client

	opts Options

	mu    sync.Mutex
	nodes []*storage.Node // current raw node per physical index
	gen   []int           // replacement generation per physical index
}

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Clients == 0 {
		opts.Clients = 1
	}
	if opts.Mode == 0 {
		opts.Mode = resilience.Parallel
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout, err := stripe.NewLayout(opts.K, opts.N)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		Code:   code,
		Layout: layout,
		opts:   opts,
		nodes:  make([]*storage.Node, opts.N),
		gen:    make([]int, opts.N),
	}

	handles := make([]proto.StorageNode, opts.N)
	for i := 0; i < opts.N; i++ {
		node, err := storage.New(storage.Options{
			ID:        fmt.Sprintf("s%d", i),
			BlockSize: opts.BlockSize,
			Code:      code,
			LockLease: opts.LockLease,
		})
		if err != nil {
			return nil, err
		}
		c.nodes[i] = node
		handles[i] = c.wrap(i, node)
	}

	var replacer directory.Replacer
	if !opts.NoReplacements {
		replacer = c.replace
	}
	dir, err := directory.New(layout, handles, replacer)
	if err != nil {
		return nil, err
	}
	dir.Instrument(opts.Obs)
	c.Dir = dir

	for i := 0; i < opts.Clients; i++ {
		cfg := core.Config{
			ID:         proto.ClientID(i + 1),
			Code:       code,
			Resolver:   dir,
			BlockSize:  opts.BlockSize,
			Mode:       opts.Mode,
			TP:         opts.TP,
			Multicast:  opts.Multicast,
			RetryDelay: opts.RetryDelay,
			Retry:      opts.Retry,
			Hedge:      opts.Hedge,
			Obs:        opts.Obs,
		}
		if opts.ClientTweak != nil {
			opts.ClientTweak(&cfg)
		}
		cl, err := core.NewClient(cfg)
		if err != nil {
			return nil, err
		}
		c.Clients = append(c.Clients, cl)
	}
	return c, nil
}

// MustNew is New for tests; it panics on error.
func MustNew(opts Options) *Cluster {
	c, err := New(opts)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cluster) wrap(phys int, n proto.StorageNode) proto.StorageNode {
	if c.opts.WrapNode != nil {
		return c.opts.WrapNode(phys, n)
	}
	return n
}

// replace provisions a fresh INIT replacement node for a crashed
// physical index (directory.Replacer).
func (c *Cluster) replace(phys int) proto.StorageNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen[phys]++
	node := storage.MustNew(storage.Options{
		ID:          fmt.Sprintf("s%d.%d", phys, c.gen[phys]),
		BlockSize:   c.opts.BlockSize,
		Code:        c.Code,
		Replacement: true,
		LockLease:   c.opts.LockLease,
		GarbageSeed: int64(phys)<<8 | int64(c.gen[phys]),
	})
	c.nodes[phys] = node
	return c.wrap(phys, node)
}

// Node returns the current raw storage node at a physical index.
func (c *Cluster) Node(phys int) *storage.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[phys]
}

// CrashNode fail-stops the storage node at a physical index. Clients
// discover the crash on their next access, report it, and the
// directory remaps the index to a fresh INIT node (unless
// NoReplacements).
func (c *Cluster) CrashNode(phys int) {
	c.Node(phys).Crash()
}

// CrashNodeForStripeSlot crashes the node serving the given stripe
// slot and returns its physical index.
func (c *Cluster) CrashNodeForStripeSlot(stripeID uint64, slot int) int {
	phys := c.Layout.PhysicalNode(stripeID, slot)
	c.CrashNode(phys)
	return phys
}

// FailClient simulates a fail-stop client crash observed by an oracle
// failure detector: every storage node expires that client's locks
// (the paper's "upon failure of lid" rule).
func (c *Cluster) FailClient(id proto.ClientID) {
	c.mu.Lock()
	nodes := append([]*storage.Node(nil), c.nodes...)
	c.mu.Unlock()
	for _, n := range nodes {
		n.FailClient(id)
	}
}

// StripeBlocks reads the raw blocks of one stripe directly from the
// current storage nodes (bypassing the protocol), for test assertions.
// Slots on crashed or INIT nodes come back nil.
func (c *Cluster) StripeBlocks(stripeID uint64) [][]byte {
	out := make([][]byte, c.Layout.N())
	for slot := 0; slot < c.Layout.N(); slot++ {
		phys := c.Layout.PhysicalNode(stripeID, slot)
		node := c.Node(phys)
		st, err := node.GetState(noCtx, &proto.GetStateReq{Stripe: stripeID, Slot: int32(slot)})
		if err != nil || !st.BlockValid {
			continue
		}
		out[slot] = st.Block
	}
	return out
}

// VerifyStripe checks that a stripe's surviving blocks are internally
// consistent with the erasure code (all n present and matching).
func (c *Cluster) VerifyStripe(stripeID uint64) (bool, error) {
	blocks := c.StripeBlocks(stripeID)
	for _, b := range blocks {
		if b == nil {
			return false, fmt.Errorf("cluster: stripe %d has missing blocks", stripeID)
		}
	}
	return c.Code.Verify(blocks)
}

var noCtx = context.Background()

package cluster

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/transport"
)

func opts() Options {
	return Options{K: 2, N: 4, BlockSize: 64, RetryDelay: 100 * time.Microsecond}
}

func TestNewDefaults(t *testing.T) {
	c, err := New(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clients) != 1 {
		t.Fatalf("clients = %d, want default 1", len(c.Clients))
	}
	if c.Clients[0].Mode() != resilience.Parallel {
		t.Fatalf("mode = %v, want default Parallel", c.Clients[0].Mode())
	}
	if c.Code.K() != 2 || c.Code.N() != 4 {
		t.Fatal("code mismatch")
	}
}

func TestNewValidation(t *testing.T) {
	bad := opts()
	bad.K = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid code accepted")
	}
	bad = opts()
	bad.BlockSize = 0
	if _, err := New(bad); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Options{})
}

func TestWrapNodeApplied(t *testing.T) {
	ctr := &transport.Counters{}
	o := opts()
	o.WrapNode = func(phys int, n proto.StorageNode) proto.StorageNode {
		return transport.NewCounting(n, ctr)
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Clients[0].WriteBlock(ctx, 0, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ctr.TotalMessages() == 0 {
		t.Fatal("wrapper saw no traffic")
	}
}

func TestCrashAndReplacement(t *testing.T) {
	c, err := New(opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := c.Clients[0]
	want := bytes.Repeat([]byte{7}, 64)
	if err := cl.WriteBlock(ctx, 0, 0, want); err != nil {
		t.Fatal(err)
	}
	phys := c.CrashNodeForStripeSlot(0, 0)
	if !c.Node(phys).Crashed() {
		t.Fatal("node not crashed")
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across crash")
	}
	// The replacement node must be a different instance.
	if c.Node(phys).Crashed() {
		t.Fatal("directory still points at the crashed node")
	}
}

func TestNoReplacements(t *testing.T) {
	o := opts()
	o.NoReplacements = true
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl := c.Clients[0]
	want := bytes.Repeat([]byte{0x5a}, 64)
	if err := cl.WriteBlock(ctx, 0, 0, want); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 0)
	// With no replacement available the data node stays dead, but the
	// read degrades to a k-survivor decode and still returns the real
	// block — never fabricated data, never an indefinite stall.
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("degraded read returned wrong block: %x", got[:8])
	}
	if cl.Stats().DegradedReads.Load() == 0 {
		t.Fatal("read succeeded without the degraded path being counted")
	}
}

func TestNoReplacementsTooManyFailures(t *testing.T) {
	o := opts()
	o.NoReplacements = true
	o.Retry = core.RetryPolicy{
		BaseDelay:   50 * time.Microsecond,
		MaxDelay:    200 * time.Microsecond,
		MaxAttempts: 8,
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// Kill n-k+1 nodes: fewer than k survivors means even a degraded
	// read cannot reconstruct, so the bounded retry budget must surface
	// a typed unavailability error rather than spin forever.
	for phys := 0; phys < 3; phys++ {
		c.CrashNode(phys)
	}
	_, err = cl.ReadBlock(ctx, 0, 0)
	if !errors.Is(err, core.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestFailClientExpiresLocksEverywhere(t *testing.T) {
	c, err := New(opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for phys := 0; phys < 4; phys++ {
		if _, err := c.Node(phys).TryLock(ctx, &proto.TryLockReq{Stripe: 0, Slot: int32(phys), Mode: proto.L1, Caller: 42}); err != nil {
			t.Fatal(err)
		}
	}
	c.FailClient(42)
	for phys := 0; phys < 4; phys++ {
		st, err := c.Node(phys).GetState(ctx, &proto.GetStateReq{Stripe: 0, Slot: int32(phys)})
		if err != nil {
			t.Fatal(err)
		}
		if st.LockMode != proto.Expired {
			t.Fatalf("node %d lock = %v, want EXP", phys, st.LockMode)
		}
	}
}

func TestStripeBlocksAndVerify(t *testing.T) {
	c, err := New(opts())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 3, i, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	blocks := c.StripeBlocks(3)
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	for slot, b := range blocks {
		if b == nil {
			t.Fatalf("slot %d missing", slot)
		}
	}
	ok, err := c.VerifyStripe(3)
	if err != nil || !ok {
		t.Fatalf("VerifyStripe = %v, %v", ok, err)
	}
	// A crashed, un-remapped slot yields an error from VerifyStripe.
	c.CrashNodeForStripeSlot(3, 1)
	if _, err := c.VerifyStripe(3); err == nil {
		t.Fatal("VerifyStripe of a stripe with missing blocks should error")
	}
}

func TestMulticastOptionWiring(t *testing.T) {
	o := opts()
	o.Mode = resilience.Broadcast
	o.Multicast = transport.Parallel{}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Clients[0].WriteBlock(ctx, 0, 1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.VerifyStripe(0); err != nil || !ok {
		t.Fatalf("broadcast write left stripe inconsistent: %v %v", ok, err)
	}
}

func TestClientTweak(t *testing.T) {
	o := opts()
	o.ClientTweak = func(cfg *core.Config) { cfg.OrderRetryLimit = 3 }
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	_ = c
}

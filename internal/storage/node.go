// Package storage implements the thin storage node of the AJX
// protocol. A node stores one block per (stripe, slot) pair together
// with the per-slot protocol state of the paper's Figs. 4-7: operation
// mode, lock mode, epoch, recentlist/oldlist of write identifiers, and
// the saved reconstruction set.
//
// The node is deliberately dumb: every operation is a short,
// independent critical section with no cross-slot coordination, no log
// of old data versions, and no knowledge of other nodes. All
// orchestration lives in the client (internal/core).
package storage

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/blockstore"
	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/proto"
)

// Options configures a Node.
type Options struct {
	// ID names the node in errors and logs.
	ID string
	// BlockSize is the fixed block size in bytes. Required.
	BlockSize int
	// Code lets the node apply erasure-code coefficients itself when a
	// client sends unmultiplied (broadcast) deltas. Optional: nodes
	// serving only premultiplied adds don't need it.
	Code *erasure.Code
	// Replacement marks a node that replaces a crashed one: every slot
	// starts in INIT mode with garbage content (paper Section 3.5).
	Replacement bool
	// LockLease, when non-zero, expires locks whose holder has not
	// completed recovery within the lease. Deployments without an
	// external failure detector use this to realize the paper's
	// "upon failure of lid" transition to EXP. Zero disables leases;
	// the FailClient method is then the only expiry path.
	LockLease time.Duration
	// Now injects a clock for tests. Defaults to time.Now.
	Now func() time.Time
	// GarbageSeed seeds the random content of INIT slots so tests can
	// reproduce the paper's "random blocks after fail-remap".
	GarbageSeed int64
	// Store optionally persists block contents (internal/blockstore).
	// Nil keeps blocks in memory only — the paper's evaluation setup.
	Store blockstore.Store
	// TrustPersisted lets a node restarted on top of a Store serve its
	// persisted blocks as valid (NORM). Leave false unless the
	// deployment can prove the node missed no writes while down;
	// otherwise the slots start INIT and recovery rebuilds them, which
	// is always safe.
	TrustPersisted bool
}

// Node is an in-memory storage node. It is safe for concurrent use.
// The zero value is not usable; construct with New.
type Node struct {
	opts Options
	now  func() time.Time

	crashed atomic.Bool

	mu    sync.Mutex
	slots map[slotKey]*slotState
	clock uint64 // logical timestamp, strictly monotonic per node
	rng   *rand.Rand

	// stats are monotonic operation counters, readable via Stats.
	stats Stats
}

// Stats counts operations served, for experiments and tests.
type Stats struct {
	Reads, Swaps, Adds, BatchAdds, CheckTIDs           uint64
	TryLocks, SetLocks, GetStates, GetRecents          uint64
	Reconstructs, Finalizes, GCOlds, GCRecents, Probes uint64
	RejectedAdds, OrderRejects, StaleEpochs            uint64
	PartialSums                                        uint64
}

type slotKey struct {
	stripe uint64
	slot   int32
}

type slotState struct {
	block      []byte
	opmode     proto.OpMode
	lmode      proto.LockMode
	epoch      uint64
	recent     []proto.TIDTime
	old        []proto.TIDTime
	recentSet  map[proto.TID]struct{} // membership index over recent
	oldSet     map[proto.TID]struct{} // membership index over old
	lid        proto.ClientID
	lockExpiry time.Time
	reconsSet  []int32
}

func (st *slotState) inRecent(t proto.TID) bool {
	_, ok := st.recentSet[t]
	return ok
}

func (st *slotState) inOld(t proto.TID) bool {
	_, ok := st.oldSet[t]
	return ok
}

func (st *slotState) appendRecent(e proto.TIDTime) {
	st.recent = append(st.recent, e)
	st.recentSet[e.TID] = struct{}{}
}

// New constructs a storage node.
func New(opts Options) (*Node, error) {
	if opts.BlockSize <= 0 {
		return nil, fmt.Errorf("storage: BlockSize must be positive, got %d", opts.BlockSize)
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Node{
		opts:  opts,
		now:   opts.Now,
		slots: make(map[slotKey]*slotState),
		rng:   rand.New(rand.NewSource(opts.GarbageSeed)),
	}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(opts Options) *Node {
	n, err := New(opts)
	if err != nil {
		panic(err)
	}
	return n
}

// ID returns the node's configured identifier.
func (n *Node) ID() string { return n.opts.ID }

// Crash fail-stops the node: every subsequent operation returns
// ErrNodeDown and all state is discarded (the paper assumes a crashed
// node may never recover; a replacement node is remapped in its
// place).
func (n *Node) Crash() {
	n.crashed.Store(true)
	n.mu.Lock()
	n.slots = make(map[slotKey]*slotState)
	n.mu.Unlock()
}

// Crashed reports whether the node has fail-stopped.
func (n *Node) Crashed() bool { return n.crashed.Load() }

// FailClient implements the paper's "upon failure of lid" rule with an
// oracle failure detector: every slot locked by the failed client has
// its lock expired. Deployments without an oracle use LockLease.
func (n *Node) FailClient(id proto.ClientID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, st := range n.slots {
		if st.lmode.Locked() && st.lid == id {
			st.lmode = proto.Expired
		}
	}
}

// getSlot returns the slot state, creating it lazily in the node's
// initial mode. Callers must hold n.mu.
func (n *Node) getSlot(stripe uint64, slot int32) *slotState {
	key := slotKey{stripe: stripe, slot: slot}
	st, ok := n.slots[key]
	if !ok {
		st = &slotState{
			block:     make([]byte, n.opts.BlockSize),
			opmode:    proto.Norm,
			lmode:     proto.Unlocked,
			recentSet: make(map[proto.TID]struct{}),
			oldSet:    make(map[proto.TID]struct{}),
		}
		if n.opts.Store != nil {
			if blk, found := n.opts.Store.Get(blockstore.Key{Stripe: stripe, Slot: slot}); found {
				copy(st.block, blk)
				if !n.opts.TrustPersisted {
					// Persisted bytes survive, but the node cannot
					// prove it missed no writes while down: treat the
					// slot as uninitialized and let recovery decide.
					st.opmode = proto.Init
				}
			} else if n.opts.Replacement {
				st.opmode = proto.Init
				n.rng.Read(st.block)
			}
		} else if n.opts.Replacement {
			st.opmode = proto.Init
			n.rng.Read(st.block) // uninitialized garbage
		}
		n.slots[key] = st
	}
	n.maybeExpireLease(st)
	return st
}

// maybeExpireLease applies lease-based lock expiry. Callers hold n.mu.
func (n *Node) maybeExpireLease(st *slotState) {
	if n.opts.LockLease <= 0 || !st.lmode.Locked() {
		return
	}
	if n.now().After(st.lockExpiry) {
		st.lmode = proto.Expired
	}
}

// tick returns a strictly increasing logical timestamp derived from
// the wall clock. Callers hold n.mu.
func (n *Node) tick() uint64 {
	t := uint64(n.now().UnixNano())
	if t <= n.clock {
		t = n.clock + 1
	}
	n.clock = t
	return t
}

func (n *Node) checkUp() error {
	if n.crashed.Load() {
		return proto.ErrNodeDown
	}
	return nil
}

var _ proto.StorageNode = (*Node)(nil)
var _ proto.MultiBatcher = (*Node)(nil)
var _ proto.PartialSummer = (*Node)(nil)

// Read implements the paper's read operation (Fig. 4).
func (n *Node) Read(_ context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Reads++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || st.lmode != proto.Unlocked {
		return &proto.ReadReply{OK: false, LockMode: st.lmode}, nil
	}
	var tid proto.TID
	if len(st.recent) > 0 {
		// Entries are appended with strictly increasing times, so the
		// last one identifies the write that produced this content.
		tid = st.recent[len(st.recent)-1].TID
	}
	return &proto.ReadReply{OK: true, Block: cloneBytes(st.block), LockMode: st.lmode, TID: tid}, nil
}

// Swap implements the paper's swap operation (Fig. 5): atomically
// replace the block, returning its previous content, the slot epoch,
// and the identifier of the previous write.
func (n *Node) Swap(_ context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if len(req.Value) != n.opts.BlockSize {
		return nil, fmt.Errorf("storage: swap value has %d bytes, want %d", len(req.Value), n.opts.BlockSize)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Swaps++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || st.lmode != proto.Unlocked {
		return &proto.SwapReply{OK: false, Epoch: st.epoch, LockMode: st.lmode}, nil
	}
	old := st.block
	st.block = cloneBytes(req.Value)
	if err := n.persist(req.Stripe, req.Slot, st.block); err != nil {
		st.block = old
		return nil, err
	}
	var otid proto.TID
	if len(st.recent) > 0 {
		// Entries are appended with strictly increasing times, so the
		// last one is the previous write.
		otid = st.recent[len(st.recent)-1].TID
	}
	st.appendRecent(proto.TIDTime{TID: req.NTID, Time: n.tick()})
	return &proto.SwapReply{OK: true, Block: old, Epoch: st.epoch, OTID: otid, LockMode: st.lmode}, nil
}

// Add implements the paper's add operation (Fig. 5): fold a delta into
// a redundant block, enforcing write ordering via otid and epoch
// freshness.
func (n *Node) Add(_ context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if len(req.Delta) != n.opts.BlockSize {
		return nil, fmt.Errorf("storage: add delta has %d bytes, want %d", len(req.Delta), n.opts.BlockSize)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Adds++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || (st.lmode != proto.Unlocked && st.lmode != proto.L0) || req.Epoch < st.epoch {
		if req.Epoch < st.epoch {
			n.stats.StaleEpochs++
		}
		n.stats.RejectedAdds++
		return &proto.AddReply{Status: proto.StatusUnavail, OpMode: st.opmode, LockMode: st.lmode}, nil
	}
	if st.inRecent(req.NTID) || st.inOld(req.NTID) {
		// Duplicate delivery of an already-applied add must not fold
		// the delta twice (XOR would cancel it).
		return &proto.AddReply{Status: proto.StatusOK, OpMode: st.opmode, LockMode: st.lmode}, nil
	}
	if !req.OTID.IsZero() && !st.inRecent(req.OTID) && !st.inOld(req.OTID) {
		n.stats.OrderRejects++
		return &proto.AddReply{Status: proto.StatusOrder, OpMode: st.opmode, LockMode: st.lmode}, nil
	}
	if req.Premultiplied {
		gf.AddSlice(st.block, req.Delta)
	} else {
		if n.opts.Code == nil {
			return nil, fmt.Errorf("storage: node %s received broadcast add but has no code configured", n.opts.ID)
		}
		gf.MulAddSlice(n.opts.Code.Coef(int(req.Slot), int(req.DataSlot)), st.block, req.Delta)
	}
	if err := n.persist(req.Stripe, req.Slot, st.block); err != nil {
		return nil, err
	}
	st.appendRecent(proto.TIDTime{TID: req.NTID, Time: n.tick()})
	return &proto.AddReply{Status: proto.StatusOK, OpMode: st.opmode, LockMode: st.lmode}, nil
}

// BatchAdd implements the sequential-I/O optimization (Section 3.11):
// one combined delta carries a full-stripe write's contribution to
// this redundant slot. The batch is atomic — the delta is applied and
// all entry tids recorded only if every entry's ordering constraint
// holds.
func (n *Node) BatchAdd(_ context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if len(req.Delta) != n.opts.BlockSize {
		return nil, fmt.Errorf("storage: batch-add delta has %d bytes, want %d", len(req.Delta), n.opts.BlockSize)
	}
	if len(req.Entries) == 0 {
		return nil, fmt.Errorf("storage: batch-add with no entries")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.BatchAdds++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || (st.lmode != proto.Unlocked && st.lmode != proto.L0) || req.Epoch < st.epoch {
		if req.Epoch < st.epoch {
			n.stats.StaleEpochs++
		}
		n.stats.RejectedAdds++
		return &proto.BatchAddReply{Status: proto.StatusUnavail, OpMode: st.opmode, LockMode: st.lmode}, nil
	}
	// Duplicate delivery: batches apply atomically, so seeing any
	// entry's tid means the whole batch was applied.
	for _, e := range req.Entries {
		if st.inRecent(e.NTID) || st.inOld(e.NTID) {
			return &proto.BatchAddReply{Status: proto.StatusOK, OpMode: st.opmode, LockMode: st.lmode}, nil
		}
	}
	var blockers []int32
	for _, e := range req.Entries {
		if !e.OTID.IsZero() && !st.inRecent(e.OTID) && !st.inOld(e.OTID) {
			blockers = append(blockers, e.DataSlot)
		}
	}
	if len(blockers) > 0 {
		n.stats.OrderRejects++
		return &proto.BatchAddReply{Status: proto.StatusOrder, OpMode: st.opmode, LockMode: st.lmode, Blockers: blockers}, nil
	}
	gf.AddSlice(st.block, req.Delta)
	if err := n.persist(req.Stripe, req.Slot, st.block); err != nil {
		gf.AddSlice(st.block, req.Delta) // roll back (XOR is its own inverse)
		return nil, err
	}
	for _, e := range req.Entries {
		st.appendRecent(proto.TIDTime{TID: e.NTID, Time: n.tick()})
	}
	return &proto.BatchAddReply{Status: proto.StatusOK, OpMode: st.opmode, LockMode: st.lmode}, nil
}

// BatchAddMulti implements proto.MultiBatcher by applying each
// sub-request as an independent BatchAdd. Coalescing exists to save
// round trips on a real transport; at the node there is nothing to
// save, so this is just the loop — each sub-batch keeps its own
// atomicity and there is none across sub-batches. A node-level error
// (crashed, bad delta size) aborts the whole call, mirroring a single
// multi-frame failing on the wire.
func (n *Node) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	rep := &proto.BatchAddMultiReply{Replies: make([]*proto.BatchAddReply, len(req.Adds))}
	for i, sub := range req.Adds {
		r, err := n.BatchAdd(ctx, sub)
		if err != nil {
			return nil, err
		}
		rep.Replies[i] = r
	}
	return rep, nil
}

// CheckTID implements the paper's checktid operation (Fig. 5 /
// Section 3.9).
func (n *Node) CheckTID(_ context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.CheckTIDs++
	st := n.getSlot(req.Stripe, req.Slot)
	switch {
	case !st.inRecent(req.NTID):
		// Our own write's tid is gone: the node crashed and was
		// remapped (or recovery finalized past us).
		return &proto.CheckTIDReply{Status: proto.StatusInit}, nil
	case !st.inRecent(req.OTID):
		// The awaited previous write's tid was garbage collected, so it
		// completed at every node.
		return &proto.CheckTIDReply{Status: proto.StatusGC}, nil
	default:
		return &proto.CheckTIDReply{Status: proto.StatusNoChange}, nil
	}
}

// TryLock implements the paper's trylock operation (Fig. 6).
func (n *Node) TryLock(_ context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if !req.Mode.Locked() {
		return nil, fmt.Errorf("storage: trylock with non-lock mode %v", req.Mode)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.TryLocks++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.lmode.Locked() {
		return &proto.TryLockReply{OK: false, OldMode: st.lmode}, nil
	}
	old := st.lmode
	st.lmode = req.Mode
	st.lid = req.Caller
	st.lockExpiry = n.now().Add(n.opts.LockLease)
	return &proto.TryLockReply{OK: true, OldMode: old}, nil
}

// SetLock implements the paper's setlock operation (Fig. 6).
func (n *Node) SetLock(_ context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.SetLocks++
	st := n.getSlot(req.Stripe, req.Slot)
	st.lmode = req.Mode
	st.lid = req.Caller
	st.lockExpiry = n.now().Add(n.opts.LockLease)
	return &proto.SetLockReply{}, nil
}

// GetState implements the paper's get_state operation (Fig. 6). The
// block is reported valid in NORM and RECONS modes: a RECONS slot
// holds recovered content that a recovery-completing client may reuse.
func (n *Node) GetState(_ context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.GetStates++
	st := n.getSlot(req.Stripe, req.Slot)
	reply := &proto.GetStateReply{
		OpMode:     st.opmode,
		LockMode:   st.lmode,
		Epoch:      st.epoch,
		ReconsSet:  append([]int32(nil), st.reconsSet...),
		OldList:    append([]proto.TIDTime(nil), st.old...),
		RecentList: append([]proto.TIDTime(nil), st.recent...),
	}
	if st.opmode != proto.Init {
		reply.BlockValid = true
		if !req.NoBlock {
			reply.Block = cloneBytes(st.block)
		}
	}
	return reply, nil
}

// GetRecent implements the paper's getrecent operation (Fig. 6):
// atomically change the lock mode and return the recentlist.
func (n *Node) GetRecent(_ context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.GetRecents++
	st := n.getSlot(req.Stripe, req.Slot)
	st.lmode = req.Mode
	st.lid = req.Caller
	st.lockExpiry = n.now().Add(n.opts.LockLease)
	return &proto.GetRecentReply{RecentList: append([]proto.TIDTime(nil), st.recent...)}, nil
}

// Reconstruct implements the paper's reconstruct operation (Fig. 6):
// store recovered content, remember the consistent set, enter RECONS.
func (n *Node) Reconstruct(_ context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if req.InPlace {
		if len(req.Block) != 0 {
			return nil, fmt.Errorf("storage: in-place reconstruct carries a %d-byte block", len(req.Block))
		}
	} else if len(req.Block) != n.opts.BlockSize {
		return nil, fmt.Errorf("storage: reconstruct block has %d bytes, want %d", len(req.Block), n.opts.BlockSize)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Reconstructs++
	st := n.getSlot(req.Stripe, req.Slot)
	if req.InPlace && st.opmode == proto.Init {
		// The coordinator certifies existing content as recovered, but
		// this slot holds garbage: its GetState cannot have shown a valid
		// block, so the certificate is stale. Fail the call; the
		// coordinator retries with a shipped block.
		return nil, fmt.Errorf("storage: in-place reconstruct on INIT slot")
	}
	st.opmode = proto.Recons
	st.reconsSet = append([]int32(nil), req.CSet...)
	if !req.InPlace {
		st.block = cloneBytes(req.Block)
		if err := n.persist(req.Stripe, req.Slot, st.block); err != nil {
			return nil, err
		}
	}
	return &proto.ReconstructReply{Epoch: st.epoch}, nil
}

// Finalize implements the paper's finalize operation (Fig. 6): advance
// the epoch, clear the tid lists, return to NORM, and unlock.
func (n *Node) Finalize(_ context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Finalizes++
	st := n.getSlot(req.Stripe, req.Slot)
	st.epoch = req.Epoch
	st.recent = nil
	st.old = nil
	st.recentSet = make(map[proto.TID]struct{})
	st.oldSet = make(map[proto.TID]struct{})
	st.reconsSet = nil
	if st.opmode == proto.Recons {
		st.opmode = proto.Norm
	}
	st.lmode = proto.Unlocked
	return &proto.FinalizeReply{}, nil
}

// GCOld implements gc_old (Fig. 7): discard tids from the oldlist.
func (n *Node) GCOld(_ context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.GCOlds++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || st.lmode != proto.Unlocked {
		return &proto.GCReply{Status: proto.StatusUnavail}, nil
	}
	if len(req.TIDs) > 0 {
		drop := make(map[proto.TID]bool, len(req.TIDs))
		for _, t := range req.TIDs {
			drop[t] = true
		}
		kept := st.old[:0]
		for _, e := range st.old {
			if drop[e.TID] {
				delete(st.oldSet, e.TID)
			} else {
				kept = append(kept, e)
			}
		}
		st.old = kept
	}
	return &proto.GCReply{Status: proto.StatusOK}, nil
}

// GCRecent implements gc_recent (Fig. 7): move tids from recentlist to
// oldlist.
func (n *Node) GCRecent(_ context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.GCRecents++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode != proto.Norm || st.lmode != proto.Unlocked {
		return &proto.GCReply{Status: proto.StatusUnavail}, nil
	}
	if len(req.TIDs) > 0 {
		move := make(map[proto.TID]bool, len(req.TIDs))
		for _, t := range req.TIDs {
			move[t] = true
		}
		kept := st.recent[:0]
		for _, e := range st.recent {
			if move[e.TID] {
				st.old = append(st.old, e)
				st.oldSet[e.TID] = struct{}{}
				delete(st.recentSet, e.TID)
			} else {
				kept = append(kept, e)
			}
		}
		st.recent = kept
	}
	return &proto.GCReply{Status: proto.StatusOK}, nil
}

// PartialSum implements proto.PartialSummer: multiply this slot's
// block by the requested coefficient and fold it into the running
// accumulator, Sum = Coef*block XOR Acc. It serves NORM and RECONS
// slots regardless of lock mode — the recovery coordinator calls it
// while holding the stripe's L1 locks, exactly as it reads blocks
// through GetState on the naive path. INIT slots cannot contribute.
func (n *Node) PartialSum(_ context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	if len(req.Acc) != 0 && len(req.Acc) != n.opts.BlockSize {
		return nil, fmt.Errorf("storage: partial-sum accumulator has %d bytes, want %d", len(req.Acc), n.opts.BlockSize)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.PartialSums++
	st := n.getSlot(req.Stripe, req.Slot)
	if st.opmode == proto.Init {
		return &proto.PartialSumReply{OK: false, OpMode: st.opmode, LockMode: st.lmode}, nil
	}
	sum := make([]byte, n.opts.BlockSize)
	gf.MulSlice(req.Coef, sum, st.block)
	if len(req.Acc) > 0 {
		gf.AddSlice(sum, req.Acc)
	}
	return &proto.PartialSumReply{OK: true, Sum: sum, OpMode: st.opmode, LockMode: st.lmode}, nil
}

// Probe implements the monitoring check of Section 3.10.
func (n *Node) Probe(_ context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	if err := n.checkUp(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Probes++
	st := n.getSlot(req.Stripe, req.Slot)
	reply := &proto.ProbeReply{
		OpMode:      st.opmode,
		LockMode:    st.lmode,
		RecentCount: int32(len(st.recent)),
		Epoch:       st.epoch,
	}
	if len(st.recent) > 0 {
		oldest := st.recent[0].Time
		nowT := uint64(n.now().UnixNano())
		if nowT > oldest {
			reply.OldestAge = nowT - oldest
		}
		reply.HasRecent = true
	}
	return reply, nil
}

// Stats returns a snapshot of the node's operation counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ControlOverhead reports the protocol's per-slot control state in
// bytes (everything beyond the block itself), averaged across slots.
// The paper's Section 6.5 reports ~10 bytes per block; ours differs by
// the size of Go's in-memory representation but stays O(1) per block
// between garbage collections.
func (n *Node) ControlOverhead() (totalBytes int, slots int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	const (
		tidTimeBytes = 24                // 8 seq + 4 block + 4 client + 8 time
		fixedBytes   = 1 + 1 + 8 + 8 + 4 // opmode, lmode, epoch, lease, lid
	)
	for _, st := range n.slots {
		totalBytes += fixedBytes
		totalBytes += (len(st.recent) + len(st.old)) * tidTimeBytes
		totalBytes += len(st.reconsSet) * 4
	}
	return totalBytes, len(n.slots)
}

// SlotCount returns the number of materialized slots (for tests).
func (n *Node) SlotCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.slots)
}

// persist writes a slot's block to the configured store, if any.
// Callers hold n.mu.
func (n *Node) persist(stripe uint64, slot int32, block []byte) error {
	if n.opts.Store == nil {
		return nil
	}
	if err := n.opts.Store.Put(blockstore.Key{Stripe: stripe, Slot: slot}, block); err != nil {
		return fmt.Errorf("storage: persist block: %w", err)
	}
	return nil
}

// Flush forces buffered block writes to the backing store.
func (n *Node) Flush() error {
	if n.opts.Store == nil {
		return nil
	}
	return n.opts.Store.Flush()
}

// Shutdown flushes and closes the backing store (clean shutdown). The
// node keeps serving from memory afterwards only if it has no store.
func (n *Node) Shutdown() error {
	if n.opts.Store == nil {
		return nil
	}
	return n.opts.Store.Close()
}

func cloneBytes(b []byte) []byte { return append([]byte(nil), b...) }

package storage

import (
	"bytes"
	"context"
	"testing"

	"ecstore/internal/blockstore"
	"ecstore/internal/proto"
)

func openFileStore(t *testing.T, dir string, writeBack int) *blockstore.File {
	t.Helper()
	store, _, err := blockstore.OpenFile(blockstore.FileOptions{
		Dir: dir, BlockSize: testBlockSize, WriteBackLimit: writeBack,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestPersistedBlocksSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	store := openFileStore(t, dir, 4)
	n := MustNew(Options{ID: "p0", BlockSize: testBlockSize, Store: store})
	want := block(0xEE)
	if r, err := n.Swap(ctx, &proto.SwapReq{Stripe: 5, Slot: 1, Value: want, NTID: tid(1, 1, 1)}); err != nil || !r.OK {
		t.Fatalf("swap: %v %+v", err, r)
	}
	if r, err := n.Add(ctx, &proto.AddReq{Stripe: 5, Slot: 3, Delta: block(0x11), Premultiplied: true, NTID: tid(2, 1, 1)}); err != nil || r.Status != proto.StatusOK {
		t.Fatalf("add: %v %+v", err, r)
	}
	if err := n.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Restart with TrustPersisted: blocks come back NORM.
	store2 := openFileStore(t, dir, 0)
	n2 := MustNew(Options{ID: "p0'", BlockSize: testBlockSize, Store: store2, TrustPersisted: true})
	r, err := n2.Read(ctx, &proto.ReadReq{Stripe: 5, Slot: 1})
	if err != nil || !r.OK {
		t.Fatalf("read after restart: %v %+v", err, r)
	}
	if !bytes.Equal(r.Block, want) {
		t.Fatal("persisted block corrupted across restart")
	}
	st, _ := n2.GetState(ctx, &proto.GetStateReq{Stripe: 5, Slot: 3})
	if !bytes.Equal(st.Block, block(0x11)) {
		t.Fatal("persisted parity block corrupted across restart")
	}
	if err := n2.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

func TestUntrustedRestartStartsInit(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	store := openFileStore(t, dir, 0)
	n := MustNew(Options{ID: "u0", BlockSize: testBlockSize, Store: store})
	if r, _ := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: block(0x33), NTID: tid(1, 0, 1)}); !r.OK {
		t.Fatal("swap failed")
	}
	_ = n.Shutdown()

	// Restart WITHOUT TrustPersisted: the bytes are there, but the node
	// cannot prove it missed no writes — the slot must present as INIT
	// so recovery revalidates it.
	store2 := openFileStore(t, dir, 0)
	n2 := MustNew(Options{ID: "u0'", BlockSize: testBlockSize, Store: store2})
	defer n2.Shutdown()
	if r, _ := n2.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); r.OK {
		t.Fatal("untrusted restart served a read")
	}
	st, _ := n2.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0})
	if st.OpMode != proto.Init {
		t.Fatalf("opmode = %v, want INIT", st.OpMode)
	}
	// A slot the store never saw behaves like a fresh slot.
	st, _ = n2.GetState(ctx, &proto.GetStateReq{Stripe: 9, Slot: 0})
	if st.OpMode != proto.Norm {
		t.Fatalf("fresh slot opmode = %v, want NORM", st.OpMode)
	}
}

func TestRecoveryRepopulatesPersistentReplacement(t *testing.T) {
	// End-to-end: a replacement node with a File store receives
	// reconstructed blocks; after a restart they are still there.
	dir := t.TempDir()
	ctx := context.Background()
	store := openFileStore(t, dir, 0)
	n := MustNew(Options{ID: "r0", BlockSize: testBlockSize, Store: store, Replacement: true})
	if _, err := n.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 2, Slot: 0, CSet: []int32{0, 1}, Block: block(0x77)}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Finalize(ctx, &proto.FinalizeReq{Stripe: 2, Slot: 0, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	_ = n.Shutdown()

	store2 := openFileStore(t, dir, 0)
	n2 := MustNew(Options{ID: "r0'", BlockSize: testBlockSize, Store: store2, TrustPersisted: true})
	defer n2.Shutdown()
	r, err := n2.Read(ctx, &proto.ReadReq{Stripe: 2, Slot: 0})
	if err != nil || !r.OK || !bytes.Equal(r.Block, block(0x77)) {
		t.Fatalf("recovered block lost across restart: %v %+v", err, r)
	}
}

func TestFlushNoStoreIsNoop(t *testing.T) {
	n := MustNew(Options{ID: "m", BlockSize: testBlockSize})
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := n.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

package storage

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/proto"
)

const testBlockSize = 64

func newTestNode(t *testing.T) *Node {
	t.Helper()
	n, err := New(Options{ID: "s0", BlockSize: testBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func tid(seq uint64, block uint32, client proto.ClientID) proto.TID {
	return proto.TID{Seq: seq, Block: block, Client: client}
}

func block(fill byte) []byte {
	b := make([]byte, testBlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{BlockSize: 0}); err == nil {
		t.Fatal("New with BlockSize 0 should fail")
	}
	if _, err := New(Options{BlockSize: -5}); err == nil {
		t.Fatal("New with negative BlockSize should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Options{})
}

func TestReadInitialBlockIsZero(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	r, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatal("initial read rejected")
	}
	if !bytes.Equal(r.Block, make([]byte, testBlockSize)) {
		t.Fatal("initial block is not zero")
	}
	if r.LockMode != proto.Unlocked {
		t.Fatalf("lock mode = %v, want UNL", r.LockMode)
	}
}

func TestSwapReturnsOldContentAndOTID(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	t1 := tid(1, 0, 7)
	r1, err := n.Swap(ctx, &proto.SwapReq{Stripe: 3, Slot: 0, Value: block(0xAA), NTID: t1})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.OK {
		t.Fatal("first swap rejected")
	}
	if !r1.OTID.IsZero() {
		t.Fatalf("first swap OTID = %v, want zero", r1.OTID)
	}
	if !bytes.Equal(r1.Block, make([]byte, testBlockSize)) {
		t.Fatal("first swap did not return the zero block")
	}

	t2 := tid(2, 0, 7)
	r2, err := n.Swap(ctx, &proto.SwapReq{Stripe: 3, Slot: 0, Value: block(0xBB), NTID: t2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.OTID != t1 {
		t.Fatalf("second swap OTID = %v, want %v", r2.OTID, t1)
	}
	if !bytes.Equal(r2.Block, block(0xAA)) {
		t.Fatal("second swap did not return first value")
	}

	rd, _ := n.Read(ctx, &proto.ReadReq{Stripe: 3, Slot: 0})
	if !bytes.Equal(rd.Block, block(0xBB)) {
		t.Fatal("read does not see latest swap")
	}
}

func TestSwapWrongSizeRejected(t *testing.T) {
	n := newTestNode(t)
	if _, err := n.Swap(context.Background(), &proto.SwapReq{Value: []byte{1, 2}}); err == nil {
		t.Fatal("swap with wrong block size should error")
	}
}

func TestSwapValueNotAliased(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	v := block(0x11)
	if _, err := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: v, NTID: tid(1, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	v[0] = 0xFF // caller mutates its buffer after the call
	rd, _ := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if rd.Block[0] != 0x11 {
		t.Fatal("node aliased the caller's swap buffer")
	}
}

func TestAddAppliesPremultipliedDelta(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	delta := block(0x0F)
	r, err := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: delta, Premultiplied: true, NTID: tid(1, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != proto.StatusOK {
		t.Fatalf("add status = %v", r.Status)
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if !bytes.Equal(st.Block, delta) {
		t.Fatal("add did not XOR the delta into the zero block")
	}
}

func TestAddBroadcastMultipliesByCoefficient(t *testing.T) {
	code := erasure.Must(2, 4)
	n := MustNew(Options{ID: "s3", BlockSize: testBlockSize, Code: code})
	ctx := context.Background()
	raw := block(0x21)
	r, err := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: raw, DataSlot: 1, Premultiplied: false, NTID: tid(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != proto.StatusOK {
		t.Fatalf("add status = %v", r.Status)
	}
	want := make([]byte, testBlockSize)
	gf.MulAddSlice(code.Coef(3, 1), want, raw)
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if !bytes.Equal(st.Block, want) {
		t.Fatal("broadcast add did not multiply by alpha")
	}
}

func TestAddBroadcastWithoutCodeErrors(t *testing.T) {
	n := newTestNode(t)
	_, err := n.Add(context.Background(), &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: false, NTID: tid(1, 0, 1)})
	if err == nil {
		t.Fatal("broadcast add without code should error")
	}
}

func TestAddOrderEnforcement(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	prev := tid(9, 0, 2)
	// Add ordered after prev, which this node has not seen: ORDER.
	r, err := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(10, 0, 2), OTID: prev})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != proto.StatusOrder {
		t.Fatalf("status = %v, want ORDER", r.Status)
	}
	// Deliver prev, then the ordered add succeeds.
	if r, _ = n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(2), Premultiplied: true, NTID: prev}); r.Status != proto.StatusOK {
		t.Fatalf("prev add status = %v", r.Status)
	}
	if r, _ = n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(10, 0, 2), OTID: prev}); r.Status != proto.StatusOK {
		t.Fatalf("ordered add status = %v, want OK", r.Status)
	}
}

func TestAddOrderSatisfiedByOldList(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	prev := tid(1, 0, 1)
	if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: prev}); r.Status != proto.StatusOK {
		t.Fatal("setup add failed")
	}
	// Move prev to the oldlist; ordering must still be satisfied.
	if r, _ := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 3, TIDs: []proto.TID{prev}}); r.Status != proto.StatusOK {
		t.Fatal("gc_recent failed")
	}
	r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(2), Premultiplied: true, NTID: tid(2, 0, 1), OTID: prev})
	if r.Status != proto.StatusOK {
		t.Fatalf("status = %v, want OK (otid in oldlist)", r.Status)
	}
}

func TestAddDuplicateIsIdempotent(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	req := &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(0x55), Premultiplied: true, NTID: tid(1, 0, 1)}
	if r, _ := n.Add(ctx, req); r.Status != proto.StatusOK {
		t.Fatal("first add failed")
	}
	if r, _ := n.Add(ctx, req); r.Status != proto.StatusOK {
		t.Fatal("duplicate add not acknowledged")
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if !bytes.Equal(st.Block, block(0x55)) {
		t.Fatal("duplicate add was applied twice (XOR cancelled)")
	}
}

func TestAddStaleEpochRejected(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	// Finalize to epoch 5.
	if _, err := n.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 3, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1), Epoch: 4})
	if r.Status != proto.StatusUnavail {
		t.Fatalf("stale-epoch add status = %v, want UNAVAIL", r.Status)
	}
	r, _ = n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(2, 0, 1), Epoch: 5})
	if r.Status != proto.StatusOK {
		t.Fatalf("current-epoch add status = %v, want OK", r.Status)
	}
}

func TestAddAllowedUnderL0RejectedUnderL1(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	if _, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 3, Mode: proto.L0, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1)}); r.Status != proto.StatusOK {
		t.Fatalf("add under L0 = %v, want OK", r.Status)
	}
	if _, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 3, Mode: proto.L1, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(2, 0, 1)}); r.Status != proto.StatusUnavail {
		t.Fatalf("add under L1 = %v, want UNAVAIL", r.Status)
	}
	// Swap must be rejected under both lock modes.
	if _, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 3, Mode: proto.L0, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	if r, _ := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 3, Value: block(1), NTID: tid(3, 0, 1)}); r.OK {
		t.Fatal("swap under L0 succeeded, want rejection")
	}
	// Read must be rejected while locked.
	if r, _ := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 3}); r.OK {
		t.Fatal("read under L0 succeeded, want rejection")
	}
}

func TestCheckTID(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	nt := tid(5, 0, 1)
	ot := tid(4, 0, 2)
	// Node never saw nt: INIT.
	r, _ := n.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 3, NTID: nt, OTID: ot})
	if r.Status != proto.StatusInit {
		t.Fatalf("status = %v, want INIT", r.Status)
	}
	// Apply nt; ot still unseen: GC (treated as collected).
	if rr, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: nt}); rr.Status != proto.StatusOK {
		t.Fatal("add failed")
	}
	r, _ = n.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 3, NTID: nt, OTID: ot})
	if r.Status != proto.StatusGC {
		t.Fatalf("status = %v, want GC", r.Status)
	}
	// Apply ot as well: NOCHANGE.
	if rr, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: ot}); rr.Status != proto.StatusOK {
		t.Fatal("add failed")
	}
	r, _ = n.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 3, NTID: nt, OTID: ot})
	if r.Status != proto.StatusNoChange {
		t.Fatalf("status = %v, want NOCHANGE", r.Status)
	}
}

func TestTryLockSemantics(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	r1, _ := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 1})
	if !r1.OK || r1.OldMode != proto.Unlocked {
		t.Fatalf("first trylock = %+v", r1)
	}
	r2, _ := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 2})
	if r2.OK {
		t.Fatal("second trylock succeeded on a locked slot")
	}
	if r2.OldMode != proto.L1 {
		t.Fatalf("second trylock reports mode %v", r2.OldMode)
	}
	// Unlock, then an expired lock must also be acquirable.
	if _, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 0, Mode: proto.Expired, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	r3, _ := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 3})
	if !r3.OK || r3.OldMode != proto.Expired {
		t.Fatalf("trylock over EXP = %+v", r3)
	}
}

func TestTryLockInvalidMode(t *testing.T) {
	n := newTestNode(t)
	if _, err := n.TryLock(context.Background(), &proto.TryLockReq{Mode: proto.Unlocked}); err == nil {
		t.Fatal("trylock with UNL mode should error")
	}
}

func TestGetStateReportsInitGarbage(t *testing.T) {
	n := MustNew(Options{ID: "fresh", BlockSize: testBlockSize, Replacement: true, GarbageSeed: 42})
	ctx := context.Background()
	st, err := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.OpMode != proto.Init {
		t.Fatalf("opmode = %v, want INIT", st.OpMode)
	}
	if st.BlockValid || st.Block != nil {
		t.Fatal("INIT slot must not report a valid block")
	}
	// Reads and swaps must be rejected on INIT slots.
	if r, _ := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 2}); r.OK {
		t.Fatal("read of INIT slot succeeded")
	}
	if r, _ := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 2, Value: block(1), NTID: tid(1, 0, 1)}); r.OK {
		t.Fatal("swap of INIT slot succeeded")
	}
	if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1)}); r.Status != proto.StatusUnavail {
		t.Fatal("add to INIT slot not rejected")
	}
}

func TestReconstructFinalizeCycle(t *testing.T) {
	n := MustNew(Options{ID: "fresh", BlockSize: testBlockSize, Replacement: true})
	ctx := context.Background()
	rec, err := n.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 1, Slot: 2, CSet: []int32{0, 1, 3}, Block: block(0x77)})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", rec.Epoch)
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 2})
	if st.OpMode != proto.Recons {
		t.Fatalf("opmode = %v, want RECONS", st.OpMode)
	}
	if !st.BlockValid || !bytes.Equal(st.Block, block(0x77)) {
		t.Fatal("RECONS slot must expose recovered block for recovery continuation")
	}
	if len(st.ReconsSet) != 3 {
		t.Fatalf("recons_set = %v", st.ReconsSet)
	}
	if _, err := n.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 2, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	st, _ = n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 2})
	if st.OpMode != proto.Norm || st.LockMode != proto.Unlocked || st.Epoch != 1 {
		t.Fatalf("after finalize: %+v", st)
	}
	if len(st.RecentList) != 0 || len(st.OldList) != 0 {
		t.Fatal("finalize did not clear tid lists")
	}
	rd, _ := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 2})
	if !rd.OK || !bytes.Equal(rd.Block, block(0x77)) {
		t.Fatal("recovered block not readable after finalize")
	}
}

func TestGetRecentSetsLockAtomically(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1)}); r.Status != proto.StatusOK {
		t.Fatal("setup add failed")
	}
	rep, err := n.GetRecent(ctx, &proto.GetRecentReq{Stripe: 1, Slot: 3, Mode: proto.L1, Caller: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RecentList) != 1 || rep.RecentList[0].TID != tid(1, 0, 1) {
		t.Fatalf("recentlist = %v", rep.RecentList)
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if st.LockMode != proto.L1 {
		t.Fatalf("lock mode after getrecent = %v, want L1", st.LockMode)
	}
}

func TestGCOldAndRecent(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	t1, t2 := tid(1, 0, 1), tid(2, 0, 1)
	for _, tt := range []proto.TID{t1, t2} {
		if r, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tt}); r.Status != proto.StatusOK {
			t.Fatal("setup add failed")
		}
	}
	if r, _ := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 3, TIDs: []proto.TID{t1}}); r.Status != proto.StatusOK {
		t.Fatal("gc_recent failed")
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if len(st.RecentList) != 1 || st.RecentList[0].TID != t2 {
		t.Fatalf("recentlist after gc_recent = %v", st.RecentList)
	}
	if len(st.OldList) != 1 || st.OldList[0].TID != t1 {
		t.Fatalf("oldlist after gc_recent = %v", st.OldList)
	}
	if r, _ := n.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 3, TIDs: []proto.TID{t1}}); r.Status != proto.StatusOK {
		t.Fatal("gc_old failed")
	}
	st, _ = n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if len(st.OldList) != 0 {
		t.Fatalf("oldlist after gc_old = %v", st.OldList)
	}
}

func TestGCRejectedWhileLocked(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	if _, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 3, Mode: proto.L1, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	if r, _ := n.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 3}); r.Status != proto.StatusUnavail {
		t.Fatal("gc_old on locked slot not rejected")
	}
	if r, _ := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 3}); r.Status != proto.StatusUnavail {
		t.Fatal("gc_recent on locked slot not rejected")
	}
}

func TestCrashMakesNodeUnreachable(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	n.Crash()
	if !n.Crashed() {
		t.Fatal("Crashed() = false after Crash()")
	}
	if _, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("read after crash: err = %v, want ErrNodeDown", err)
	}
	if _, err := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: block(1), NTID: tid(1, 0, 1)}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("swap after crash: err = %v", err)
	}
	if _, err := n.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 0}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("probe after crash: err = %v", err)
	}
}

func TestFailClientExpiresLocks(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	if _, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 2, Slot: 0, Mode: proto.L0, Caller: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 3, Slot: 0, Mode: proto.L1, Caller: 7}); err != nil {
		t.Fatal(err)
	}
	n.FailClient(42)
	for _, stripe := range []uint64{1, 2} {
		st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: stripe, Slot: 0})
		if st.LockMode != proto.Expired {
			t.Fatalf("stripe %d lock = %v, want EXP", stripe, st.LockMode)
		}
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 3, Slot: 0})
	if st.LockMode != proto.L1 {
		t.Fatalf("other client's lock = %v, want L1", st.LockMode)
	}
}

func TestLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	n := MustNew(Options{
		ID:        "leased",
		BlockSize: testBlockSize,
		LockLease: time.Second,
		Now:       func() time.Time { return now },
	})
	ctx := context.Background()
	if _, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 1}); err != nil {
		t.Fatal(err)
	}
	// Within the lease the lock holds.
	now = now.Add(500 * time.Millisecond)
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0})
	if st.LockMode != proto.L1 {
		t.Fatalf("lock = %v before lease expiry", st.LockMode)
	}
	// Past the lease it expires.
	now = now.Add(time.Second)
	st, _ = n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0})
	if st.LockMode != proto.Expired {
		t.Fatalf("lock = %v after lease expiry, want EXP", st.LockMode)
	}
}

func TestProbe(t *testing.T) {
	base := time.Unix(2000, 0)
	now := base
	n := MustNew(Options{ID: "p", BlockSize: testBlockSize, Now: func() time.Time { return now }})
	ctx := context.Background()
	r, _ := n.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 3})
	if r.HasRecent || r.RecentCount != 0 {
		t.Fatalf("empty probe = %+v", r)
	}
	if rr, _ := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 3, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1)}); rr.Status != proto.StatusOK {
		t.Fatal("add failed")
	}
	now = now.Add(3 * time.Second)
	r, _ = n.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 3})
	if !r.HasRecent || r.RecentCount != 1 {
		t.Fatalf("probe = %+v", r)
	}
	if r.OldestAge < uint64(2*time.Second) {
		t.Fatalf("oldest age = %d, want >= 2s in nanos", r.OldestAge)
	}
}

func TestControlOverheadSmall(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	// Simulate steady state: blocks written once and garbage collected
	// (empty tid lists), as after a GC pass.
	for s := uint64(0); s < 100; s++ {
		if r, _ := n.Swap(ctx, &proto.SwapReq{Stripe: s, Slot: 0, Value: block(1), NTID: tid(s, 0, 1)}); !r.OK {
			t.Fatal("swap failed")
		}
		if r, _ := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: s, Slot: 0, TIDs: []proto.TID{tid(s, 0, 1)}}); r.Status != proto.StatusOK {
			t.Fatal("gc_recent failed")
		}
		if r, _ := n.GCOld(ctx, &proto.GCOldReq{Stripe: s, Slot: 0, TIDs: []proto.TID{tid(s, 0, 1)}}); r.Status != proto.StatusOK {
			t.Fatal("gc_old failed")
		}
	}
	total, slots := n.ControlOverhead()
	if slots != 100 {
		t.Fatalf("slots = %d", slots)
	}
	perBlock := total / slots
	// Paper reports ~10 bytes/block; our fixed state is 22 bytes. Assert
	// it stays O(1) and small relative to even a 1 KB block.
	if perBlock > 64 {
		t.Fatalf("control overhead %d bytes/block, want <= 64", perBlock)
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	// Hammer one node from many goroutines; the race detector checks
	// synchronization, and the final state must reflect every add once.
	n := newTestNode(t)
	ctx := context.Background()
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				d := block(byte(w*perWriter + i))
				if _, err := n.Add(ctx, &proto.AddReq{
					Stripe: 7, Slot: 3, Delta: d, Premultiplied: true,
					NTID: tid(uint64(i), 0, proto.ClientID(w)),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := make([]byte, testBlockSize)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			gf.AddSlice(want, block(byte(w*perWriter+i)))
		}
	}
	st, _ := n.GetState(ctx, &proto.GetStateReq{Stripe: 7, Slot: 3})
	if !bytes.Equal(st.Block, want) {
		t.Fatal("concurrent adds did not all apply exactly once")
	}
	if len(st.RecentList) != writers*perWriter {
		t.Fatalf("recentlist has %d entries, want %d", len(st.RecentList), writers*perWriter)
	}
	// Recentlist times must be strictly increasing.
	for i := 1; i < len(st.RecentList); i++ {
		if st.RecentList[i].Time <= st.RecentList[i-1].Time {
			t.Fatal("recentlist times not strictly increasing")
		}
	}
}

func TestStatsCounters(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	_, _ = n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	_, _ = n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: block(1), NTID: tid(1, 0, 1)})
	_, _ = n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: block(1), Premultiplied: true, NTID: tid(1, 0, 1)})
	s := n.Stats()
	if s.Reads != 1 || s.Swaps != 1 || s.Adds != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSlotCount(t *testing.T) {
	n := newTestNode(t)
	ctx := context.Background()
	_, _ = n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	_, _ = n.Read(ctx, &proto.ReadReq{Stripe: 2, Slot: 0})
	_, _ = n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if got := n.SlotCount(); got != 2 {
		t.Fatalf("SlotCount = %d, want 2", got)
	}
}

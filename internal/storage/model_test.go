package storage

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"ecstore/internal/gf"
	"ecstore/internal/proto"
)

// refSlot is an executable specification of one storage slot, kept
// deliberately dumb: plain lists, linear scans, no indexes. The
// model-based test below drives random operation sequences against
// both the real node and this reference and demands identical
// observable behaviour — it guards the node's optimizations (tid set
// indexes, write-back persistence) against semantic drift.
type refSlot struct {
	block  []byte
	opmode proto.OpMode
	lmode  proto.LockMode
	epoch  uint64
	recent []proto.TID
	old    []proto.TID
}

func newRefSlot(size int) *refSlot {
	return &refSlot{block: make([]byte, size), opmode: proto.Norm, lmode: proto.Unlocked}
}

func (r *refSlot) has(list []proto.TID, t proto.TID) bool {
	for _, x := range list {
		if x == t {
			return true
		}
	}
	return false
}

func (r *refSlot) swap(v []byte, ntid proto.TID) (ok bool, old []byte, otid proto.TID) {
	if r.opmode != proto.Norm || r.lmode != proto.Unlocked {
		return false, nil, proto.TID{}
	}
	old = r.block
	r.block = append([]byte(nil), v...)
	if len(r.recent) > 0 {
		otid = r.recent[len(r.recent)-1]
	}
	r.recent = append(r.recent, ntid)
	return true, old, otid
}

func (r *refSlot) add(delta []byte, ntid, otid proto.TID, epoch uint64) proto.Status {
	if r.opmode != proto.Norm || (r.lmode != proto.Unlocked && r.lmode != proto.L0) || epoch < r.epoch {
		return proto.StatusUnavail
	}
	if r.has(r.recent, ntid) || r.has(r.old, ntid) {
		return proto.StatusOK
	}
	if !otid.IsZero() && !r.has(r.recent, otid) && !r.has(r.old, otid) {
		return proto.StatusOrder
	}
	for i := range r.block {
		r.block[i] ^= delta[i]
	}
	r.recent = append(r.recent, ntid)
	return proto.StatusOK
}

func (r *refSlot) gcRecent(tids []proto.TID) {
	if r.opmode != proto.Norm || r.lmode != proto.Unlocked {
		return
	}
	var kept []proto.TID
	for _, t := range r.recent {
		moved := false
		for _, g := range tids {
			if t == g {
				moved = true
				break
			}
		}
		if moved {
			r.old = append(r.old, t)
		} else {
			kept = append(kept, t)
		}
	}
	r.recent = kept
}

func (r *refSlot) gcOld(tids []proto.TID) {
	if r.opmode != proto.Norm || r.lmode != proto.Unlocked {
		return
	}
	var kept []proto.TID
	for _, t := range r.old {
		drop := false
		for _, g := range tids {
			if t == g {
				drop = true
				break
			}
		}
		if !drop {
			kept = append(kept, t)
		}
	}
	r.old = kept
}

func (r *refSlot) finalize(epoch uint64) {
	r.epoch = epoch
	r.recent = nil
	r.old = nil
	if r.opmode == proto.Recons {
		r.opmode = proto.Norm
	}
	r.lmode = proto.Unlocked
}

// TestNodeMatchesReferenceModel drives random operation sequences
// against the real node and the reference slot in lockstep.
func TestNodeMatchesReferenceModel(t *testing.T) {
	const size = 32
	ctx := context.Background()
	cfg := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		node := MustNew(Options{ID: "model", BlockSize: size})
		ref := newRefSlot(size)
		tids := make([]proto.TID, 0, 16)
		randTID := func() proto.TID {
			// Bias toward reuse so duplicate/ordering paths fire.
			if len(tids) > 0 && rng.Intn(2) == 0 {
				return tids[rng.Intn(len(tids))]
			}
			t := proto.TID{Seq: rng.Uint64() % 1000, Block: 0, Client: proto.ClientID(rng.Uint32()%4 + 1)}
			tids = append(tids, t)
			return t
		}
		block := func() []byte {
			b := make([]byte, size)
			rng.Read(b)
			return b
		}
		for _, op := range opsRaw {
			switch op % 7 {
			case 0: // swap
				v := block()
				ntid := randTID()
				rep, err := node.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: v, NTID: ntid})
				if err != nil {
					return false
				}
				ok, old, otid := ref.swap(v, ntid)
				if rep.OK != ok {
					return false
				}
				if ok && (!bytes.Equal(rep.Block, old) || rep.OTID != otid) {
					return false
				}
			case 1: // add
				d := block()
				ntid, otid := randTID(), proto.TID{}
				if rng.Intn(2) == 0 {
					otid = randTID()
				}
				epoch := uint64(rng.Intn(3))
				rep, err := node.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 0, Delta: d, Premultiplied: true, NTID: ntid, OTID: otid, Epoch: epoch})
				if err != nil {
					return false
				}
				if rep.Status != ref.add(d, ntid, otid, epoch) {
					return false
				}
			case 2: // gc_recent on a random subset
				var subset []proto.TID
				for _, t := range tids {
					if rng.Intn(3) == 0 {
						subset = append(subset, t)
					}
				}
				if _, err := node.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 0, TIDs: subset}); err != nil {
					return false
				}
				ref.gcRecent(subset)
			case 3: // gc_old
				var subset []proto.TID
				for _, t := range tids {
					if rng.Intn(3) == 0 {
						subset = append(subset, t)
					}
				}
				if _, err := node.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 0, TIDs: subset}); err != nil {
					return false
				}
				ref.gcOld(subset)
			case 4: // lock toggling
				mode := []proto.LockMode{proto.Unlocked, proto.L0, proto.L1}[rng.Intn(3)]
				if _, err := node.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 0, Mode: mode, Caller: 1}); err != nil {
					return false
				}
				ref.lmode = mode
			case 5: // finalize with a random epoch bump
				e := ref.epoch + uint64(rng.Intn(2))
				if _, err := node.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 0, Epoch: e}); err != nil {
					return false
				}
				ref.finalize(e)
			default: // read
				rep, err := node.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
				if err != nil {
					return false
				}
				wantOK := ref.opmode == proto.Norm && ref.lmode == proto.Unlocked
				if rep.OK != wantOK {
					return false
				}
				if wantOK && !bytes.Equal(rep.Block, ref.block) {
					return false
				}
			}
		}
		// Final state comparison.
		st, err := node.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0})
		if err != nil {
			return false
		}
		if !bytes.Equal(st.Block, ref.block) || st.Epoch != ref.epoch {
			return false
		}
		if len(st.RecentList) != len(ref.recent) || len(st.OldList) != len(ref.old) {
			return false
		}
		for i, e := range st.RecentList {
			if e.TID != ref.recent[i] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestAddDeltaAlgebra property-checks the XOR-delta algebra that the
// whole protocol rests on: applying deltas in any order yields the
// same block (gf.AddSlice is commutative and associative).
func TestAddDeltaAlgebra(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 24
		deltas := make([][]byte, 5)
		for i := range deltas {
			deltas[i] = make([]byte, size)
			rng.Read(deltas[i])
		}
		a := make([]byte, size)
		b := make([]byte, size)
		for _, d := range deltas {
			gf.AddSlice(a, d)
		}
		perm := rng.Perm(len(deltas))
		for _, i := range perm {
			gf.AddSlice(b, deltas[i])
		}
		return bytes.Equal(a, b)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

package baseline

import "testing"

func TestFig1KnownValues(t *testing.T) {
	// 3-of-5 code: p = 2.
	rows, err := Fig1(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := make(map[Scheme]Costs)
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	par := byScheme[AJXPar]
	if par.WriteMsgs != 6 || par.WriteBandwidthB != 4 || par.WriteLatencyRT != 2 {
		t.Errorf("AJX-par: %+v", par)
	}
	bc := byScheme[AJXBcast]
	if bc.WriteMsgs != 5 || bc.WriteBandwidthB != 3 {
		t.Errorf("AJX-bcast: %+v", bc)
	}
	ser := byScheme[AJXSer]
	if ser.WriteLatencyRT != 3 || ser.WriteMsgs != 6 {
		t.Errorf("AJX-ser: %+v", ser)
	}
	fab := byScheme[FAB]
	if fab.ReadMsgs != 6 || fab.WriteMsgs != 20 || fab.WriteBandwidthB != 11 {
		t.Errorf("FAB: %+v", fab)
	}
	gw := byScheme[GWGR]
	if gw.ReadMsgs != 10 || gw.WriteMsgs != 20 || gw.MinWriteGranularity != 3 || gw.ReadBandwidthB != 5 {
		t.Errorf("GWGR: %+v", gw)
	}
}

func TestFig1AJXIndependentOfN(t *testing.T) {
	// The AJX columns depend only on p, not on n: that is the paper's
	// core scaling claim. Compare 4-of-6 and 14-of-16 (both p=2).
	small, _ := Fig1(4, 6)
	large, _ := Fig1(14, 16)
	for i, s := range small {
		l := large[i]
		if s.Scheme == FAB || s.Scheme == GWGR {
			if l.WriteMsgs <= s.WriteMsgs {
				t.Errorf("%s write msgs should grow with n", s.Scheme)
			}
			continue
		}
		if s.WriteMsgs != l.WriteMsgs || s.WriteBandwidthB != l.WriteBandwidthB {
			t.Errorf("%s costs changed with n at fixed p: %+v vs %+v", s.Scheme, s, l)
		}
	}
}

func TestRow(t *testing.T) {
	r, err := Row(FAB, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != FAB || r.WriteMsgs != 16 {
		t.Fatalf("Row(FAB, 2, 4) = %+v", r)
	}
	if _, err := Row("nope", 2, 4); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Row(FAB, 4, 4); err == nil {
		t.Error("invalid code accepted")
	}
}

func TestFig1Validation(t *testing.T) {
	if _, err := Fig1(0, 4); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Fig1(4, 3); err == nil {
		t.Error("n<k accepted")
	}
}

// Package baseline captures the analytic protocol-cost comparison of
// the paper's Fig. 1: failure-free latency, message counts, and
// bandwidth for the AJX variants and the FAB and Goodson-et-al (GWGR)
// baselines, as functions of the erasure code parameters.
//
// The experiment harness cross-checks the AJX columns against message
// counts measured on the real implementation (transport.Counting), and
// the simulator (internal/sim) embodies the same schedules as
// executable models.
package baseline

import "fmt"

// Scheme names a protocol column of Fig. 1.
type Scheme string

// Schemes compared in Fig. 1.
const (
	AJXPar   Scheme = "AJX-par"
	AJXBcast Scheme = "AJX-bcast"
	AJXSer   Scheme = "AJX-ser"
	FAB      Scheme = "FAB"
	GWGR     Scheme = "GWGR"
)

// Costs is one row of Fig. 1 instantiated for a concrete k-of-n code.
// Bandwidth is expressed in units of the block size B.
type Costs struct {
	Scheme Scheme
	// MinWriteGranularity is the smallest write unit in blocks.
	MinWriteGranularity int
	// ReadLatencyRT / WriteLatencyRT are failure-free latencies in
	// round trips.
	ReadLatencyRT  int
	WriteLatencyRT int
	// ReadMsgs / WriteMsgs count wire messages per operation.
	ReadMsgs  int
	WriteMsgs int
	// ReadBandwidthB / WriteBandwidthB are data volumes in block-size
	// units.
	ReadBandwidthB  float64
	WriteBandwidthB float64
}

// Fig1 instantiates the comparison table for a k-of-n code.
func Fig1(k, n int) ([]Costs, error) {
	if k < 1 || n <= k {
		return nil, fmt.Errorf("baseline: invalid code %d-of-%d", k, n)
	}
	p := n - k
	return []Costs{
		{
			Scheme:              AJXPar,
			MinWriteGranularity: 1,
			ReadLatencyRT:       1,
			WriteLatencyRT:      2,
			ReadMsgs:            2,
			WriteMsgs:           2 * (p + 1),
			ReadBandwidthB:      1,
			WriteBandwidthB:     float64(p + 2),
		},
		{
			Scheme:              AJXBcast,
			MinWriteGranularity: 1,
			ReadLatencyRT:       1,
			WriteLatencyRT:      2,
			ReadMsgs:            2,
			WriteMsgs:           p + 3,
			ReadBandwidthB:      1,
			WriteBandwidthB:     3,
		},
		{
			Scheme:              AJXSer,
			MinWriteGranularity: 1,
			ReadLatencyRT:       1,
			WriteLatencyRT:      p + 1,
			ReadMsgs:            2,
			WriteMsgs:           2 * (p + 1),
			ReadBandwidthB:      1,
			WriteBandwidthB:     float64(p + 2),
		},
		{
			Scheme:              FAB,
			MinWriteGranularity: 1,
			ReadLatencyRT:       1,
			WriteLatencyRT:      2,
			ReadMsgs:            2 * k,
			WriteMsgs:           4 * n,
			ReadBandwidthB:      1,
			WriteBandwidthB:     float64(2*n + 1),
		},
		{
			Scheme:              GWGR,
			MinWriteGranularity: k,
			ReadLatencyRT:       1,
			WriteLatencyRT:      2,
			ReadMsgs:            2 * n,
			WriteMsgs:           4 * n,
			ReadBandwidthB:      float64(n),
			WriteBandwidthB:     float64(n),
		},
	}, nil
}

// Row returns one scheme's costs for a k-of-n code.
func Row(s Scheme, k, n int) (Costs, error) {
	rows, err := Fig1(k, n)
	if err != nil {
		return Costs{}, err
	}
	for _, r := range rows {
		if r.Scheme == s {
			return r, nil
		}
	}
	return Costs{}, fmt.Errorf("baseline: unknown scheme %q", s)
}

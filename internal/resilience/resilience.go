// Package resilience implements the failure-tolerance arithmetic of
// the AJX protocol (Theorems 1-3 and Corollary 1 of the paper).
//
// With a k-of-n code (p = n-k redundant blocks), a threshold t_p of
// tolerated client crashes, and a write-update mode, the theorems
// bound the number t_d of storage-node crashes the protocol survives:
//
//	serial adds:   t_d <= ceil(p/(t_p+1) - t_p/2)
//	parallel adds: t_d <= ceil(p/2^t_p  - t_p/2)
//
// Inverting, the redundancy needed to tolerate (t_p, t_d) is
//
//	serial/hybrid: delta = 1 + (t_p+1)(t_d + t_p/2 - 1)
//	parallel:      delta = 1 + 2^t_p (t_d + t_p/2 - 1)
//
// and the common-case write latency (round trips) is 1+delta for
// serial updates, 2 for parallel updates, and 1 + ceil(delta/d_serial)
// for the hybrid parallel-serial scheme.
package resilience

import (
	"fmt"
	"strings"
)

// UpdateMode selects how a writer applies add operations to the
// redundant storage nodes.
type UpdateMode int

const (
	// Serial applies adds one node at a time (AJX-ser).
	Serial UpdateMode = iota + 1
	// Parallel applies all adds concurrently (AJX-par).
	Parallel
	// Hybrid applies adds in groups: parallel within a group, groups in
	// series (Theorem 3).
	Hybrid
	// Broadcast sends one unmultiplied delta to all redundant nodes
	// (Section 3.11). Its failure analysis matches Parallel: all adds
	// are outstanding at once.
	Broadcast
)

// String returns the paper's name for the mode.
func (m UpdateMode) String() string {
	switch m {
	case Serial:
		return "AJX-ser"
	case Parallel:
		return "AJX-par"
	case Hybrid:
		return "AJX-hybrid"
	case Broadcast:
		return "AJX-bcast"
	default:
		return fmt.Sprintf("UpdateMode(%d)", int(m))
	}
}

// ceilDiv returns ceil(a/b) for b > 0, correct for negative a.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// DSerial returns the maximum tolerated storage-node failures t_d for
// serial (or hybrid) updates with p redundant blocks and client-crash
// threshold tp (Theorem 1): ceil(p/(tp+1) - tp/2), floored at zero.
func DSerial(p, tp int) int {
	if p < 0 || tp < 0 {
		panic(fmt.Sprintf("resilience: DSerial(%d, %d) out of domain", p, tp))
	}
	// ceil(p/(tp+1) - tp/2) = ceil((2p - tp(tp+1)) / (2(tp+1)))
	d := ceilDiv(2*p-tp*(tp+1), 2*(tp+1))
	return max(d, 0)
}

// DParallel returns the maximum tolerated storage-node failures t_d
// for parallel updates (Theorem 2): ceil(p/2^tp - tp/2), floored at
// zero. tp is capped at 62 to avoid shift overflow; beyond ~30 the
// result is always zero anyway.
func DParallel(p, tp int) int {
	if p < 0 || tp < 0 {
		panic(fmt.Sprintf("resilience: DParallel(%d, %d) out of domain", p, tp))
	}
	if tp > 62 {
		return 0
	}
	pow := 1 << tp
	// ceil(p/2^tp - tp/2) = ceil((2p - tp*2^tp) / (2*2^tp))
	d := ceilDiv(2*p-tp*pow, 2*pow)
	return max(d, 0)
}

// D returns the tolerated storage failures for the given mode.
func D(mode UpdateMode, p, tp int) int {
	switch mode {
	case Serial, Hybrid:
		return DSerial(p, tp)
	case Parallel, Broadcast:
		return DParallel(p, tp)
	default:
		panic(fmt.Sprintf("resilience: unknown mode %v", mode))
	}
}

// DeltaSerial returns the redundancy (number of redundant storage
// nodes) required to tolerate tp client and td storage failures with
// serial or hybrid updates (Corollary 1). td must be >= 1.
func DeltaSerial(td, tp int) int {
	if td < 1 || tp < 0 {
		panic(fmt.Sprintf("resilience: DeltaSerial(%d, %d) out of domain", td, tp))
	}
	// 1 + (tp+1)(td + tp/2 - 1); the product is always integral.
	return 1 + (tp+1)*(2*td+tp-2)/2
}

// DeltaParallel returns the redundancy required to tolerate tp client
// and td storage failures with parallel updates (Corollary 1).
func DeltaParallel(td, tp int) int {
	if td < 1 || tp < 0 {
		panic(fmt.Sprintf("resilience: DeltaParallel(%d, %d) out of domain", td, tp))
	}
	return 1 + (1<<tp)*(2*td+tp-2)/2
}

// WriteLatency returns the common-case WRITE latency rho in round
// trips for the given mode, redundancy p, and client threshold tp
// (Corollary 1 and Theorem 3).
func WriteLatency(mode UpdateMode, p, tp int) int {
	switch mode {
	case Serial:
		return 1 + p
	case Parallel, Broadcast:
		return 2
	case Hybrid:
		d := DSerial(p, tp)
		if d <= 0 {
			// Degenerate: hybrid provides no tolerance; group size 1
			// reduces to serial.
			return 1 + p
		}
		return 1 + ceilDiv(p, d)
	default:
		panic(fmt.Sprintf("resilience: unknown mode %v", mode))
	}
}

// HybridGroupSize returns the largest group size r that preserves
// Theorem 3's guarantee (r <= d_serial), given p redundant nodes and
// client threshold tp. The returned size is at least 1 so the hybrid
// scheme degrades to serial updates rather than failing.
func HybridGroupSize(p, tp int) int {
	return max(DSerial(p, tp), 1)
}

// HybridGroups partitions the redundant node indices 0..p-1 into
// groups of at most HybridGroupSize(p, tp) entries, preserving order.
func HybridGroups(p, tp int) [][]int {
	if p <= 0 {
		return nil
	}
	r := HybridGroupSize(p, tp)
	groups := make([][]int, 0, ceilDiv(p, r))
	for start := 0; start < p; start += r {
		end := min(start+r, p)
		g := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			g = append(g, i)
		}
		groups = append(groups, g)
	}
	return groups
}

// Tolerance is one tolerated failure combination: Clients simultaneous
// client crashes together with Storage simultaneous storage-node
// crashes.
type Tolerance struct {
	Clients int
	Storage int
}

// Tolerances enumerates, for redundancy p and a mode, the tolerated
// (clients, storage) combinations with Storage >= 1, ordered by
// decreasing client tolerance. This reproduces Fig. 8(c): the result
// depends only on p = n-k.
func Tolerances(mode UpdateMode, p int) []Tolerance {
	var out []Tolerance
	for tp := 0; ; tp++ {
		td := D(mode, p, tp)
		if td < 1 {
			break
		}
		out = append(out, Tolerance{Clients: tp, Storage: td})
	}
	// Reverse so the highest client tolerance is listed first, matching
	// the paper's "1c1s, 0c2s" presentation.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ResiliencyString renders tolerances in the paper's Fig. 8(a)
// notation, e.g. "1c1s, 0c2s".
func ResiliencyString(mode UpdateMode, p int) string {
	tols := Tolerances(mode, p)
	if len(tols) == 0 {
		return "0c0s"
	}
	parts := make([]string, len(tols))
	for i, tol := range tols {
		parts[i] = fmt.Sprintf("%dc%ds", tol.Clients, tol.Storage)
	}
	return strings.Join(parts, ", ")
}

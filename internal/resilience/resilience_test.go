package resilience

import (
	"testing"
	"testing/quick"
)

func TestDSerialKnownValues(t *testing.T) {
	tests := []struct {
		p, tp, want int
	}{
		// p=2 (e.g. 2-of-4): paper's example "1c1s, 0c2s".
		{2, 0, 2},
		{2, 1, 1},
		{2, 2, 0},
		// p=1: single parity tolerates one storage crash, no client crash.
		{1, 0, 1},
		{1, 1, 0},
		// p=3.
		{3, 0, 3},
		{3, 1, 1},
		{3, 2, 0},
		// p=6.
		{6, 0, 6},
		{6, 1, 3},
		{6, 2, 1},
		{6, 3, 0},
		{0, 0, 0},
	}
	for _, tt := range tests {
		if got := DSerial(tt.p, tt.tp); got != tt.want {
			t.Errorf("DSerial(%d, %d) = %d, want %d", tt.p, tt.tp, got, tt.want)
		}
	}
}

func TestDParallelKnownValues(t *testing.T) {
	tests := []struct {
		p, tp, want int
	}{
		{2, 0, 2},
		{2, 1, 1},  // ceil(2/2 - 1/2) = 1
		{2, 2, 0},  // ceil(2/4 - 1) = 0
		{4, 1, 2},  // ceil(2 - 0.5) = 2
		{4, 2, 0},  // ceil(1 - 1) = 0
		{8, 2, 1},  // ceil(2 - 1) = 1
		{8, 3, 0},  // ceil(1 - 1.5) = 0
		{16, 3, 1}, // ceil(2 - 1.5) = 1
		{16, 0, 16},
		{0, 5, 0},
	}
	for _, tt := range tests {
		if got := DParallel(tt.p, tt.tp); got != tt.want {
			t.Errorf("DParallel(%d, %d) = %d, want %d", tt.p, tt.tp, got, tt.want)
		}
	}
}

func TestDParallelHugeTp(t *testing.T) {
	if got := DParallel(1000, 63); got != 0 {
		t.Fatalf("DParallel(1000, 63) = %d, want 0", got)
	}
	if got := DParallel(1000, 100); got != 0 {
		t.Fatalf("DParallel(1000, 100) = %d, want 0", got)
	}
}

func TestDomainPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"DSerial":       func() { DSerial(-1, 0) },
		"DParallel":     func() { DParallel(0, -1) },
		"DeltaSerial":   func() { DeltaSerial(0, 0) },
		"DeltaParallel": func() { DeltaParallel(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on bad domain", name)
				}
			}()
			fn()
		}()
	}
}

// TestCorollaryInvertsTheorems verifies the paper's internal
// consistency: provisioning delta redundant nodes per Corollary 1
// yields exactly td tolerated storage failures under the matching
// theorem. Algebraically DSerial(DeltaSerial(td, tp), tp) == td.
func TestCorollaryInvertsTheorems(t *testing.T) {
	for tp := 0; tp <= 8; tp++ {
		for td := 1; td <= 8; td++ {
			ds := DeltaSerial(td, tp)
			if got := DSerial(ds, tp); got != td {
				t.Errorf("DSerial(DeltaSerial(%d, %d)=%d, %d) = %d, want %d", td, tp, ds, tp, got, td)
			}
			dp := DeltaParallel(td, tp)
			if got := DParallel(dp, tp); got != td {
				t.Errorf("DParallel(DeltaParallel(%d, %d)=%d, %d) = %d, want %d", td, tp, dp, tp, got, td)
			}
		}
	}
}

func TestDeltaMonotonicityProperty(t *testing.T) {
	// More tolerated failures can never need less redundancy, and
	// parallel updates never need less redundancy than serial.
	err := quick.Check(func(tdRaw, tpRaw uint8) bool {
		td := int(tdRaw%6) + 1
		tp := int(tpRaw % 6)
		if DeltaSerial(td+1, tp) < DeltaSerial(td, tp) {
			return false
		}
		if DeltaSerial(td, tp+1) < DeltaSerial(td, tp) {
			return false
		}
		return DeltaParallel(td, tp) >= DeltaSerial(td, tp)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDDependsOnlyOnP(t *testing.T) {
	// Fig. 8(c): tolerance depends only on n-k, not n or k separately.
	// This is structural (the functions take p), but confirm the
	// enumeration is stable and non-empty for p >= 1.
	for p := 1; p <= 16; p++ {
		if len(Tolerances(Serial, p)) == 0 {
			t.Errorf("Tolerances(Serial, %d) empty", p)
		}
	}
}

func TestTolerancesOrdering(t *testing.T) {
	tols := Tolerances(Serial, 2)
	want := []Tolerance{{Clients: 1, Storage: 1}, {Clients: 0, Storage: 2}}
	if len(tols) != len(want) {
		t.Fatalf("Tolerances(Serial, 2) = %v, want %v", tols, want)
	}
	for i := range want {
		if tols[i] != want[i] {
			t.Fatalf("Tolerances(Serial, 2)[%d] = %v, want %v", i, tols[i], want[i])
		}
	}
}

func TestResiliencyString(t *testing.T) {
	tests := []struct {
		mode UpdateMode
		p    int
		want string
	}{
		{Serial, 2, "1c1s, 0c2s"}, // the paper's Fig. 8(a) example
		{Serial, 1, "0c1s"},
		{Serial, 0, "0c0s"},
		{Parallel, 2, "1c1s, 0c2s"},
		{Serial, 3, "1c1s, 0c3s"},
	}
	for _, tt := range tests {
		if got := ResiliencyString(tt.mode, tt.p); got != tt.want {
			t.Errorf("ResiliencyString(%v, %d) = %q, want %q", tt.mode, tt.p, got, tt.want)
		}
	}
}

func TestWriteLatency(t *testing.T) {
	tests := []struct {
		mode UpdateMode
		p    int
		tp   int
		want int
	}{
		{Parallel, 5, 0, 2},
		{Broadcast, 5, 3, 2},
		{Serial, 3, 0, 4}, // 1 + p
		{Serial, 0, 0, 1},
		{Hybrid, 4, 0, 2},  // d_serial = 4 >= p, one parallel batch
		{Hybrid, 4, 1, 3},  // d_serial = ceil(4/2-1/2)=2 -> 2 groups
		{Hybrid, 6, 2, 7},  // d_serial(6,2)=1 -> serial-equivalent
		{Hybrid, 3, 10, 4}, // degenerate: falls back to serial
	}
	for _, tt := range tests {
		if got := WriteLatency(tt.mode, tt.p, tt.tp); got != tt.want {
			t.Errorf("WriteLatency(%v, %d, %d) = %d, want %d", tt.mode, tt.p, tt.tp, got, tt.want)
		}
	}
}

func TestHybridGroups(t *testing.T) {
	groups := HybridGroups(4, 1) // group size d_serial(4,1)=ceil(2-0.5)=2
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("HybridGroups(4, 1) = %v", groups)
	}
	// Indices must cover 0..p-1 in order.
	idx := 0
	for _, g := range groups {
		for _, i := range g {
			if i != idx {
				t.Fatalf("group element %d, want %d", i, idx)
			}
			idx++
		}
	}
	if HybridGroups(0, 0) != nil {
		t.Fatal("HybridGroups(0, 0) should be nil")
	}
	// Group size must never exceed d_serial when d_serial >= 1.
	for p := 1; p <= 12; p++ {
		for tp := 0; tp <= 4; tp++ {
			d := DSerial(p, tp)
			if d < 1 {
				continue
			}
			for _, g := range HybridGroups(p, tp) {
				if len(g) > d {
					t.Fatalf("p=%d tp=%d: group size %d exceeds d_serial %d", p, tp, len(g), d)
				}
			}
		}
	}
}

func TestDModeDispatch(t *testing.T) {
	if D(Serial, 4, 1) != DSerial(4, 1) {
		t.Error("D(Serial) mismatch")
	}
	if D(Hybrid, 4, 1) != DSerial(4, 1) {
		t.Error("D(Hybrid) must use the serial bound (Theorem 3)")
	}
	if D(Parallel, 4, 1) != DParallel(4, 1) {
		t.Error("D(Parallel) mismatch")
	}
	if D(Broadcast, 4, 1) != DParallel(4, 1) {
		t.Error("D(Broadcast) must use the parallel bound")
	}
}

func TestUpdateModeString(t *testing.T) {
	tests := map[UpdateMode]string{
		Serial:        "AJX-ser",
		Parallel:      "AJX-par",
		Hybrid:        "AJX-hybrid",
		Broadcast:     "AJX-bcast",
		UpdateMode(9): "UpdateMode(9)",
	}
	for mode, want := range tests {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(mode), got, want)
		}
	}
}

func TestUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("D with unknown mode did not panic")
		}
	}()
	D(UpdateMode(0), 1, 0)
}

// Package blockstore provides the block persistence layer under a
// storage node. The paper's storage nodes are thin devices "with some
// storage connected" (Section 2); its evaluation uses RAM, and Section
// 3.11 describes postponing redundant-block disk writes while
// sequential writes are still hitting them.
//
// Two implementations are provided:
//
//   - Mem: blocks live in memory only (the paper's evaluation setup,
//     and the default for storage.Node).
//   - File: blocks persist in a data file with an append-only index,
//     fronted by a write-back cache that coalesces repeated updates to
//     hot blocks (the Section 3.11 optimization) and flushes on demand.
//
// A node restarting on top of a File store finds its blocks again, but
// whether that data is *valid* is a protocol question: the store
// records a clean-shutdown marker, and the deployment decides whether
// a rejoining node may trust it (a node that missed writes while down
// holds stale blocks, so by default the protocol treats a reborn node
// as INIT and lets recovery rebuild it).
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ecstore/internal/bufpool"
	"ecstore/internal/obs"
)

// Key addresses one block: a stripe and a slot within it.
type Key struct {
	Stripe uint64
	Slot   int32
}

// Store is the block persistence interface used by storage nodes.
// Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the block for key, or ok=false if never written.
	// The returned slice must not be retained by the caller across
	// calls; copy if needed.
	Get(key Key) (block []byte, ok bool)
	// Put stores a copy of block under key.
	Put(key Key, block []byte) error
	// Keys lists every stored key (order unspecified).
	Keys() []Key
	// Flush forces buffered writes down to the backing medium.
	Flush() error
	// Close flushes and releases resources; the store is unusable
	// afterwards.
	Close() error
}

// --- Mem ---------------------------------------------------------------------

// Mem is the in-memory store (the paper's evaluation configuration).
type Mem struct {
	mu     sync.RWMutex
	blocks map[Key][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blocks: make(map[Key][]byte)}
}

var _ Store = (*Mem)(nil)

// Get implements Store.
func (m *Mem) Get(key Key) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.blocks[key]
	return b, ok
}

// Put implements Store.
func (m *Mem) Put(key Key, block []byte) error {
	cp := append([]byte(nil), block...)
	m.mu.Lock()
	m.blocks[key] = cp
	m.mu.Unlock()
	return nil
}

// Keys implements Store.
func (m *Mem) Keys() []Key {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Key, 0, len(m.blocks))
	for k := range m.blocks {
		out = append(out, k)
	}
	return out
}

// Flush implements Store (no-op).
func (m *Mem) Flush() error { return nil }

// Close implements Store (no-op).
func (m *Mem) Close() error { return nil }

// --- File --------------------------------------------------------------------

// File layout:
//
//	<dir>/blocks.dat   fixed-size block slots, allocated append-style
//	<dir>/blocks.idx   append-only records (key -> data offset), CRC'd
//	<dir>/clean        present iff the store was closed cleanly
//
// The index is replayed on open; later records for a key win. Blocks
// are updated in place in the data file, so steady-state writes are
// one pwrite each (plus one index append the first time a key is
// seen).
type File struct {
	blockSize int

	mu      sync.Mutex
	data    *os.File
	idx     *os.File
	offsets map[Key]int64 // key -> offset in blocks.dat
	next    int64         // next free data offset

	// write-back cache (Section 3.11): dirty blocks not yet on disk.
	dirty      map[Key][]byte
	dirtyLimit int

	dir    string
	closed bool

	// stats
	puts       uint64
	diskWrites uint64
	flushes    uint64
	gets       uint64

	obsGets, obsPuts, obsDiskWrites, obsFlushes *obs.Counter
}

// FileOptions configures a File store.
type FileOptions struct {
	// Dir is the directory holding the store's files. Required.
	Dir string
	// BlockSize is the fixed block size. Required.
	BlockSize int
	// WriteBackLimit is the number of dirty blocks buffered before an
	// automatic flush (the deferred-parity-write optimization). Zero
	// means write-through.
	WriteBackLimit int
	// Obs optionally receives the store's metrics: blockstore.gets,
	// blockstore.puts, blockstore.disk_writes, blockstore.flushes, and a
	// live blockstore.dirty_blocks gauge.
	Obs *obs.Registry
}

const idxRecordSize = 8 + 4 + 8 + 4 // stripe, slot, offset, crc

var errClosed = errors.New("blockstore: store is closed")

// OpenFile opens (or creates) a file-backed store. It returns the
// store and whether the previous shutdown was clean (false for a fresh
// store or after a crash); the caller decides whether persisted blocks
// may be trusted as valid protocol state.
func OpenFile(opts FileOptions) (*File, bool, error) {
	if opts.BlockSize <= 0 {
		return nil, false, fmt.Errorf("blockstore: BlockSize must be positive, got %d", opts.BlockSize)
	}
	if opts.Dir == "" {
		return nil, false, errors.New("blockstore: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, false, err
	}
	dataPath := filepath.Join(opts.Dir, "blocks.dat")
	idxPath := filepath.Join(opts.Dir, "blocks.idx")
	cleanPath := filepath.Join(opts.Dir, "clean")

	wasClean := false
	if _, err := os.Stat(cleanPath); err == nil {
		wasClean = true
		// Remove the marker: it is re-created only on clean Close.
		if err := os.Remove(cleanPath); err != nil {
			return nil, false, err
		}
	}

	data, err := os.OpenFile(dataPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, err
	}
	idx, err := os.OpenFile(idxPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		_ = data.Close()
		return nil, false, err
	}

	f := &File{
		blockSize:  opts.BlockSize,
		data:       data,
		idx:        idx,
		offsets:    make(map[Key]int64),
		dirty:      make(map[Key][]byte),
		dirtyLimit: opts.WriteBackLimit,
		dir:        opts.Dir,
	}
	if err := f.replayIndex(); err != nil {
		_ = data.Close()
		_ = idx.Close()
		return nil, false, fmt.Errorf("blockstore: replay index: %w", err)
	}
	if reg := opts.Obs; reg != nil {
		f.obsGets = reg.Counter("blockstore.gets")
		f.obsPuts = reg.Counter("blockstore.puts")
		f.obsDiskWrites = reg.Counter("blockstore.disk_writes")
		f.obsFlushes = reg.Counter("blockstore.flushes")
		reg.Func("blockstore.dirty_blocks", func() int64 { return int64(f.DirtyCount()) })
	}
	return f, wasClean, nil
}

// replayIndex loads the key -> offset map. Truncated or corrupt tail
// records (a crash mid-append) are discarded.
func (f *File) replayIndex() error {
	if _, err := f.idx.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var rec [idxRecordSize]byte
	valid := int64(0)
	for {
		_, err := io.ReadFull(f.idx, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			break // truncated tail: drop it
		}
		if err != nil {
			return err
		}
		sum := crc32.ChecksumIEEE(rec[:idxRecordSize-4])
		if sum != binary.BigEndian.Uint32(rec[idxRecordSize-4:]) {
			break // corrupt tail: stop replay here
		}
		key := Key{
			Stripe: binary.BigEndian.Uint64(rec[0:8]),
			Slot:   int32(binary.BigEndian.Uint32(rec[8:12])),
		}
		off := int64(binary.BigEndian.Uint64(rec[12:20]))
		f.offsets[key] = off
		if off+int64(f.blockSize) > f.next {
			f.next = off + int64(f.blockSize)
		}
		valid += idxRecordSize
	}
	// Trim any invalid tail so future appends start clean.
	if err := f.idx.Truncate(valid); err != nil {
		return err
	}
	_, err := f.idx.Seek(valid, io.SeekStart)
	return err
}

var _ Store = (*File)(nil)

// Get implements Store: dirty cache first, then the data file.
func (f *File) Get(key Key) ([]byte, bool) {
	f.obsGets.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false
	}
	f.gets++
	if b, ok := f.dirty[key]; ok {
		// Serve a copy: dirty buffers are pooled, and flushLocked may
		// recycle b the moment f.mu is released — the caller's view
		// must outlive that. Get is the node's cold path (first access
		// per slot), so the copy is off the steady-state write path.
		cp := bufpool.Get(f.blockSize)
		copy(cp, b)
		return cp, true
	}
	off, ok := f.offsets[key]
	if !ok {
		return nil, false
	}
	buf := bufpool.Get(f.blockSize)
	if _, err := f.data.ReadAt(buf, off); err != nil {
		bufpool.Put(buf)
		return nil, false
	}
	return buf, true
}

// Put implements Store: the block lands in the write-back cache and is
// flushed when the cache exceeds its limit (or immediately in
// write-through mode).
func (f *File) Put(key Key, block []byte) error {
	if len(block) != f.blockSize {
		return fmt.Errorf("blockstore: block has %d bytes, want %d", len(block), f.blockSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	f.puts++
	f.obsPuts.Inc()
	if old, ok := f.dirty[key]; ok {
		// Re-dirtying a hot block overwrites its buffer in place —
		// this is the write-back coalescing case, so it is also the
		// pool's best case: no traffic at all.
		copy(old, block)
	} else {
		cp := bufpool.Get(f.blockSize)
		copy(cp, block)
		f.dirty[key] = cp
	}
	if len(f.dirty) > f.dirtyLimit {
		return f.flushLocked()
	}
	return nil
}

// Keys implements Store.
func (f *File) Keys() []Key {
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[Key]bool, len(f.offsets)+len(f.dirty))
	out := make([]Key, 0, len(f.offsets)+len(f.dirty))
	for k := range f.offsets {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range f.dirty {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Flush implements Store.
func (f *File) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errClosed
	}
	return f.flushLocked()
}

// flushLocked writes dirty blocks to the data file (allocating offsets
// and appending index records for new keys) in deterministic order.
func (f *File) flushLocked() error {
	if len(f.dirty) == 0 {
		return nil
	}
	f.flushes++
	f.obsFlushes.Inc()
	keys := make([]Key, 0, len(f.dirty))
	for k := range f.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Stripe != keys[j].Stripe {
			return keys[i].Stripe < keys[j].Stripe
		}
		return keys[i].Slot < keys[j].Slot
	})
	for _, key := range keys {
		block := f.dirty[key]
		off, known := f.offsets[key]
		if !known {
			off = f.next
			f.next += int64(f.blockSize)
		}
		if _, err := f.data.WriteAt(block, off); err != nil {
			return err
		}
		f.diskWrites++
		f.obsDiskWrites.Inc()
		if !known {
			var rec [idxRecordSize]byte
			binary.BigEndian.PutUint64(rec[0:8], key.Stripe)
			binary.BigEndian.PutUint32(rec[8:12], uint32(key.Slot))
			binary.BigEndian.PutUint64(rec[12:20], uint64(off))
			binary.BigEndian.PutUint32(rec[20:24], crc32.ChecksumIEEE(rec[:20]))
			if _, err := f.idx.Write(rec[:]); err != nil {
				return err
			}
			f.offsets[key] = off
		}
		delete(f.dirty, key)
		// On disk and out of the map: nothing references the dirty
		// copy any more (Get hands out copies, never the buffer).
		bufpool.Put(block)
	}
	if err := f.data.Sync(); err != nil {
		return err
	}
	return f.idx.Sync()
}

// Close implements Store: flush, mark clean, release.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	if err := f.flushLocked(); err != nil {
		return err
	}
	f.closed = true
	if err := f.data.Close(); err != nil {
		return err
	}
	if err := f.idx.Close(); err != nil {
		return err
	}
	marker, err := os.Create(filepath.Join(f.dir, "clean"))
	if err != nil {
		return err
	}
	return marker.Close()
}

// Stats reports puts accepted and blocks actually written to disk —
// the gap is the write-back coalescing win (Section 3.11).
func (f *File) Stats() (puts, diskWrites uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.puts, f.diskWrites
}

// DirtyCount reports buffered blocks awaiting flush.
func (f *File) DirtyCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.dirty)
}

package blockstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

const bs = 128

func blockOf(fill byte) []byte {
	b := make([]byte, bs)
	for i := range b {
		b[i] = fill
	}
	return b
}

func openTemp(t *testing.T, writeBack int) (*File, string) {
	t.Helper()
	dir := t.TempDir()
	f, clean, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs, WriteBackLimit: writeBack})
	if err != nil {
		t.Fatal(err)
	}
	if clean {
		t.Fatal("fresh store reported a clean previous shutdown")
	}
	return f, dir
}

func TestMemPutGet(t *testing.T) {
	m := NewMem()
	key := Key{Stripe: 3, Slot: 1}
	if _, ok := m.Get(key); ok {
		t.Fatal("empty store returned a block")
	}
	if err := m.Put(key, blockOf(7)); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get(key)
	if !ok || !bytes.Equal(got, blockOf(7)) {
		t.Fatal("round trip failed")
	}
	if len(m.Keys()) != 1 {
		t.Fatalf("keys = %v", m.Keys())
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemPutCopies(t *testing.T) {
	m := NewMem()
	b := blockOf(1)
	_ = m.Put(Key{}, b)
	b[0] = 0xFF
	got, _ := m.Get(Key{})
	if got[0] != 1 {
		t.Fatal("Put aliased the caller's buffer")
	}
}

func TestFileOptionsValidation(t *testing.T) {
	if _, _, err := OpenFile(FileOptions{Dir: t.TempDir(), BlockSize: 0}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, _, err := OpenFile(FileOptions{BlockSize: 8}); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestFilePutGetFlush(t *testing.T) {
	f, _ := openTemp(t, 0) // write-through
	key := Key{Stripe: 9, Slot: 2}
	if err := f.Put(key, blockOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	got, ok := f.Get(key)
	if !ok || !bytes.Equal(got, blockOf(0xAB)) {
		t.Fatal("round trip failed")
	}
	if err := f.Put(key, blockOf(0xCD)); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Get(key)
	if !bytes.Equal(got, blockOf(0xCD)) {
		t.Fatal("overwrite not visible")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileWrongBlockSizeRejected(t *testing.T) {
	f, _ := openTemp(t, 0)
	defer f.Close()
	if err := f.Put(Key{}, []byte{1, 2}); err == nil {
		t.Fatal("wrong-size block accepted")
	}
}

func TestFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	f, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs, WriteBackLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Key][]byte)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		key := Key{Stripe: uint64(i / 4), Slot: int32(i % 4)}
		b := make([]byte, bs)
		rng.Read(b)
		want[key] = b
		if err := f.Put(key, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, clean, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !clean {
		t.Fatal("clean shutdown not detected")
	}
	if got := len(f2.Keys()); got != len(want) {
		t.Fatalf("keys after reopen = %d, want %d", got, len(want))
	}
	for key, b := range want {
		got, ok := f2.Get(key)
		if !ok || !bytes.Equal(got, b) {
			t.Fatalf("key %v lost or corrupted across reopen", key)
		}
	}
}

func TestFileCleanMarkerConsumedOnOpen(t *testing.T) {
	dir := t.TempDir()
	f, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Put(Key{}, blockOf(1))
	_ = f.Close()
	// First reopen: clean. The marker is consumed, so a crash now
	// (simulated by NOT closing) leaves the next open unclean.
	f2, clean, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	if !clean {
		t.Fatal("first reopen not clean")
	}
	_ = f2.Flush()
	// Abandon f2 without Close (crash).
	f3, clean, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if clean {
		t.Fatal("crashed store reported clean shutdown")
	}
	// Data is still there (blocks survive a crash; validity is the
	// protocol's call).
	if _, ok := f3.Get(Key{}); !ok {
		t.Fatal("flushed block lost after crash")
	}
}

func TestFileWriteBackCoalesces(t *testing.T) {
	f, _ := openTemp(t, 100) // large write-back window
	key := Key{Stripe: 1, Slot: 0}
	// 50 updates to one hot block (a redundant block under sequential
	// writes — the Section 3.11 scenario).
	for i := 0; i < 50; i++ {
		if err := f.Put(key, blockOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	puts, writes := f.Stats()
	if puts != 50 {
		t.Fatalf("puts = %d", puts)
	}
	if writes != 0 {
		t.Fatalf("disk writes = %d before flush, want 0", writes)
	}
	if f.DirtyCount() != 1 {
		t.Fatalf("dirty = %d, want 1 (coalesced)", f.DirtyCount())
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	puts, writes = f.Stats()
	if writes != 1 {
		t.Fatalf("disk writes = %d after flush, want 1 (50 puts coalesced)", writes)
	}
	got, _ := f.Get(key)
	if !bytes.Equal(got, blockOf(49)) {
		t.Fatal("flushed content is not the latest")
	}
	_ = f.Close()
	_ = puts
}

func TestFileAutoFlushAtLimit(t *testing.T) {
	f, _ := openTemp(t, 4)
	for i := 0; i < 6; i++ {
		if err := f.Put(Key{Stripe: uint64(i)}, blockOf(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	_, writes := f.Stats()
	if writes == 0 {
		t.Fatal("write-back limit did not trigger a flush")
	}
	_ = f.Close()
}

func TestFileSurvivesTruncatedIndex(t *testing.T) {
	dir := t.TempDir()
	f, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = f.Put(Key{Stripe: uint64(i)}, blockOf(byte(i)))
	}
	_ = f.Close()
	// Corrupt the index: chop half a record off the tail (a crash
	// mid-append).
	idxPath := filepath.Join(dir, "blocks.idx")
	info, err := os.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(idxPath, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	f2, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	// The first four records are intact; the fifth was truncated.
	if got := len(f2.Keys()); got != 4 {
		t.Fatalf("keys after truncated index = %d, want 4", got)
	}
	for i := 0; i < 4; i++ {
		got, ok := f2.Get(Key{Stripe: uint64(i)})
		if !ok || !bytes.Equal(got, blockOf(byte(i))) {
			t.Fatalf("key %d lost after index truncation", i)
		}
	}
	// And the store must keep working: new writes re-allocate safely.
	if err := f2.Put(Key{Stripe: 99}, blockOf(0x99)); err != nil {
		t.Fatal(err)
	}
	if err := f2.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestFileCorruptIndexRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	f, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = f.Put(Key{Stripe: uint64(i)}, blockOf(byte(i)))
	}
	_ = f.Close()
	// Flip a byte in the LAST index record: its CRC fails and replay
	// stops there, keeping the earlier records.
	idxPath := filepath.Join(dir, "blocks.idx")
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(idxPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f2, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if got := len(f2.Keys()); got != 2 {
		t.Fatalf("keys after corrupt record = %d, want 2", got)
	}
}

func TestFileOperationsAfterClose(t *testing.T) {
	f, _ := openTemp(t, 0)
	_ = f.Close()
	if err := f.Put(Key{}, blockOf(1)); err == nil {
		t.Error("Put after Close succeeded")
	}
	if _, ok := f.Get(Key{}); ok {
		t.Error("Get after Close returned data")
	}
	if err := f.Flush(); err == nil {
		t.Error("Flush after Close succeeded")
	}
	if err := f.Close(); err != nil {
		t.Error("double Close errored")
	}
}

// TestStoreEquivalenceProperty: under any random operation sequence,
// the File store (with write-back) and the Mem store must expose
// identical contents — and the File store must still match after a
// close/reopen cycle.
func TestStoreEquivalenceProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	err := quick.Check(func(seed int64, opsRaw []uint16) bool {
		dir := t.TempDir()
		file, _, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs, WriteBackLimit: 3})
		if err != nil {
			return false
		}
		mem := NewMem()
		rng := rand.New(rand.NewSource(seed))
		for _, raw := range opsRaw {
			key := Key{Stripe: uint64(raw % 7), Slot: int32(raw % 3)}
			b := make([]byte, bs)
			rng.Read(b)
			if err := file.Put(key, b); err != nil {
				return false
			}
			if err := mem.Put(key, b); err != nil {
				return false
			}
		}
		check := func(s Store) bool {
			for _, key := range mem.Keys() {
				want, _ := mem.Get(key)
				got, ok := s.Get(key)
				if !ok || !bytes.Equal(got, want) {
					return false
				}
			}
			return len(s.Keys()) == len(mem.Keys())
		}
		if !check(file) {
			return false
		}
		if err := file.Close(); err != nil {
			return false
		}
		re, clean, err := OpenFile(FileOptions{Dir: dir, BlockSize: bs})
		if err != nil || !clean {
			return false
		}
		defer re.Close()
		return check(re)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

package experiments

import (
	"fmt"
	"time"

	"ecstore/internal/sim"
)

// SimParams tunes the simulated (virtual-time) experiments.
type SimParams struct {
	BlockSize int
	Threads   int // outstanding requests per client
	Duration  time.Duration
}

// DefaultSimParams mirrors the paper's simulation setup: 1 KB blocks
// and enough outstanding requests to saturate.
func DefaultSimParams() SimParams {
	return SimParams{BlockSize: 1024, Threads: 16, Duration: 300 * time.Millisecond}
}

var fig10Codes = [][2]int{{2, 4}, {4, 8}, {8, 10}, {8, 16}, {14, 16}, {16, 32}}

var fig10Clients = []int{1, 2, 4, 8, 16, 32, 64}

func runSim(k, n int, clients int, proto sim.Protocol, w sim.WorkloadKind, p SimParams) (sim.Result, error) {
	cfg := sim.DefaultConfig(k, n, p.BlockSize, clients, p.Threads, proto, w)
	cfg.Duration = p.Duration
	return sim.Run(cfg)
}

// Fig10a reproduces Fig. 10(a): simulated aggregate write throughput
// as the number of clients grows, for codes spanning n=4..32 and
// k=2..16.
func Fig10a(p SimParams) (*Table, error) {
	return fig10Sweep("fig10a", "simulated aggregate write throughput (MB/s) vs clients", sim.AJXPar, sim.RandomWrite, p)
}

// Fig10b reproduces Fig. 10(b): simulated aggregate read throughput vs
// clients. Reads never touch redundant nodes, so throughput depends on
// n but not k.
func Fig10b(p SimParams) (*Table, error) {
	return fig10Sweep("fig10b", "simulated aggregate read throughput (MB/s) vs clients", sim.AJXPar, sim.RandomRead, p)
}

func fig10Sweep(id, title string, proto sim.Protocol, w sim.WorkloadKind, p SimParams) (*Table, error) {
	t := &Table{ID: id, Title: title, Header: []string{"clients"}}
	for _, kn := range fig10Codes {
		t.Header = append(t.Header, fmt.Sprintf("%d-of-%d", kn[0], kn[1]))
	}
	for _, clients := range fig10Clients {
		row := []string{icell(clients)}
		for _, kn := range fig10Codes {
			r, err := runSim(kn[0], kn[1], clients, proto, w, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fcell(r.ThroughputMBps()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "discrete-event simulation, 500 Mbit/s adapters, 25 us one-way latency")
	return t, nil
}

// Fig10c reproduces Fig. 10(c): maximum (64-client) write throughput
// versus the redundancy n-k, for two data widths.
func Fig10c(p SimParams) (*Table, error) {
	t := &Table{
		ID:     "fig10c",
		Title:  "simulated max write throughput (MB/s, 64 clients) vs redundancy n-k",
		Header: []string{"n-k", "k=8", "k=16"},
	}
	for _, redundancy := range []int{1, 2, 4, 8, 16} {
		row := []string{icell(redundancy)}
		for _, k := range []int{8, 16} {
			r, err := runSim(k, k+redundancy, 64, sim.AJXPar, sim.RandomWrite, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fcell(r.ThroughputMBps()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10d reproduces Fig. 10(d): write throughput with the broadcast
// optimization. A single client's throughput stays roughly flat as
// n-k grows (the delta crosses its uplink once); with 64 clients the
// aggregate still falls because the storage nodes' links saturate.
func Fig10d(p SimParams) (*Table, error) {
	t := &Table{
		ID:     "fig10d",
		Title:  "simulated write throughput (MB/s) with broadcast updates vs redundancy n-k, k=8",
		Header: []string{"n-k", "1 client (bcast)", "64 clients (bcast)", "1 client (unicast)"},
	}
	for _, redundancy := range []int{1, 2, 4, 8} {
		one, err := runSim(8, 8+redundancy, 1, sim.AJXBcast, sim.RandomWrite, p)
		if err != nil {
			return nil, err
		}
		many, err := runSim(8, 8+redundancy, 64, sim.AJXBcast, sim.RandomWrite, p)
		if err != nil {
			return nil, err
		}
		uni, err := runSim(8, 8+redundancy, 1, sim.AJXPar, sim.RandomWrite, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			icell(redundancy), fcell(one.ThroughputMBps()), fcell(many.ThroughputMBps()), fcell(uni.ThroughputMBps()),
		})
	}
	t.Notes = append(t.Notes, "paper: 1-client bcast throughput does not decrease with n-k; 64-client aggregate does")
	return t, nil
}

// Fig1Simulated runs the FAB/GWGR comparison as executable models on
// the simulator: random single-block writes and reads, one
// configuration per protocol. It demonstrates who wins and by roughly
// what factor, complementing the analytic Fig. 1.
func Fig1Simulated(k, n int, p SimParams) (*Table, error) {
	t := &Table{
		ID:     "fig1-sim",
		Title:  fmt.Sprintf("simulated protocol comparison, %d-of-%d, 4 clients, random 1-block ops (MB/s)", k, n),
		Header: []string{"protocol", "random write", "random read", "sequential write"},
	}
	for _, proto := range []sim.Protocol{sim.AJXPar, sim.AJXBcast, sim.AJXSer, sim.FAB, sim.GWGR} {
		w, err := runSim(k, n, 4, proto, sim.RandomWrite, p)
		if err != nil {
			return nil, err
		}
		r, err := runSim(k, n, 4, proto, sim.RandomRead, p)
		if err != nil {
			return nil, err
		}
		s, err := runSim(k, n, 4, proto, sim.SequentialWrite, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			proto.String(), fcell(w.ThroughputMBps()), fcell(r.ThroughputMBps()), fcell(s.ThroughputMBps()),
		})
	}
	t.Notes = append(t.Notes,
		"GWGR random 1-block writes are stripe read-modify-writes (min granularity k blocks)",
		"for sequential I/O all protocols pipeline and the gap narrows (Section 1)")
	return t, nil
}

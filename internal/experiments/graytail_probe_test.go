package experiments

import (
	"context"
	"os"
	"testing"
)

func TestGrayTailProbe(t *testing.T) {
	if os.Getenv("GRAYTAIL_PROBE") == "" {
		t.Skip("probe")
	}
	tab, res, err := GrayTail(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	tab.Fprint(os.Stdout)
	for _, r := range res {
		t.Logf("%+v", r)
	}
}

package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

func fastFig9() Fig9Params {
	return Fig9Params{
		BlockSize:   1024,
		Stripes:     512,
		PointTime:   150 * time.Millisecond,
		Warmup:      60 * time.Millisecond,
		Outstanding: []int{1, 8, 32},
		TimeScale:   4,
	}
}

func fastSim() SimParams {
	return SimParams{BlockSize: 1024, Threads: 8, Duration: 50 * time.Millisecond}
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Analytic(t *testing.T) {
	tab, err := Fig1Analytic(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if _, err := Fig1Analytic(5, 5); err == nil {
		t.Fatal("invalid code accepted")
	}
}

func TestFig1MeasuredMatchesAnalytic(t *testing.T) {
	tab, err := Fig1Measured(ctxT(t), 3, 5, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Every measured msgs/op must equal the analytic count exactly in
	// failure-free runs.
	for _, row := range tab.Rows {
		analytic := cellFloat(t, row[2])
		measured := cellFloat(t, row[3])
		if analytic != measured {
			t.Errorf("%s %s: measured %.2f msgs/op, analytic %.2f", row[0], row[1], measured, analytic)
		}
	}
}

func TestFig8a(t *testing.T) {
	tab, err := Fig8a(1024, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Delta and Add must be in the microsecond range, far below a
	// millisecond (the paper's "fast enough for storage" conclusion).
	for _, row := range tab.Rows {
		if d := cellFloat(t, row[2]); d <= 0 || d > 1000 {
			t.Errorf("%s: Delta = %v us", row[0], d)
		}
		if a := cellFloat(t, row[3]); a <= 0 || a > 1000 {
			t.Errorf("%s: Add = %v us", row[0], a)
		}
	}
}

func TestFig8bDeltaFlatEncodeGrows(t *testing.T) {
	tab, err := Fig8b(1024, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	encFirst, encLast := cellFloat(t, first[1]), cellFloat(t, last[1])
	daFirst, daLast := cellFloat(t, first[2]), cellFloat(t, last[2])
	// Full encode must grow substantially from 2-of-4 to 16-of-32.
	if encLast < 3*encFirst {
		t.Errorf("encode time did not grow with k: %.2f -> %.2f us", encFirst, encLast)
	}
	// Delta+Add must stay approximately constant (< 3x drift).
	if daLast > 3*daFirst+1 {
		t.Errorf("Delta+Add grew with k: %.2f -> %.2f us", daFirst, daLast)
	}
}

func TestFig8c(t *testing.T) {
	tab := Fig8c(8)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][1] != "1c1s, 0c2s" {
		t.Fatalf("p=2 serial resiliency = %q", tab.Rows[1][1])
	}
}

func TestFig9aThroughputGrowsWithOutstanding(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := Fig9a(ctxT(t), fastFig9())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The p=3 column must saturate below the p=2 columns (more parity
	// bytes per write on the same uplink).
	lastRow := tab.Rows[len(tab.Rows)-1]
	if cellFloat(t, lastRow[4]) >= cellFloat(t, lastRow[1]) {
		t.Errorf("p=3 saturation (%s) not below p=2 (%s)", lastRow[4], lastRow[1])
	}
	// 32 outstanding must beat 1 outstanding for every code.
	for col := 1; col <= 4; col++ {
		low := cellFloat(t, tab.Rows[0][col])
		high := cellFloat(t, tab.Rows[len(tab.Rows)-1][col])
		if high <= low {
			t.Errorf("column %d: throughput did not grow with outstanding requests (%.2f -> %.2f)", col, low, high)
		}
	}
}

func TestFig9bMoreClientsMoreThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := Fig9b(ctxT(t), fastFig9())
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab.Rows[0][1])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Errorf("2-of-4 throughput did not grow with clients: %.2f -> %.2f", first, last)
	}
}

func TestFig9cThroughputFallsWithRedundancy(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := Fig9c(ctxT(t), fastFig9())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 2; col++ {
		p1 := cellFloat(t, tab.Rows[0][col])
		p3 := cellFloat(t, tab.Rows[2][col])
		if p3 >= p1 {
			t.Errorf("column %d: throughput did not fall with redundancy (%.2f -> %.2f)", col, p1, p3)
		}
	}
	// With one client the per-write cost depends only on p, so the two
	// columns should fall comparably; allow measurement noise.
	dropK2 := 1 - cellFloat(t, tab.Rows[2][1])/cellFloat(t, tab.Rows[0][1])
	dropK4 := 1 - cellFloat(t, tab.Rows[2][2])/cellFloat(t, tab.Rows[0][2])
	if dropK4 > dropK2+0.25 {
		t.Errorf("k=4 drop (%.0f%%) wildly above k=2 drop (%.0f%%)", dropK4*100, dropK2*100)
	}
}

func TestFig9dCrashDipsAndRecovers(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	const buckets = 12
	tab, err := Fig9d(ctxT(t), fastFig9(), buckets, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != buckets {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	crashAt := buckets / 3
	avg := func(from, to int) float64 {
		sum := 0.0
		for i := from; i < to; i++ {
			sum += cellFloat(t, tab.Rows[i][1])
		}
		return sum / float64(to-from)
	}
	before := avg(0, crashAt)
	dip := avg(crashAt, crashAt+3)
	tail := avg(buckets-3, buckets)
	if dip >= before*0.7 {
		t.Errorf("no clear throughput dip at the crash: %.2f -> %.2f", before, dip)
	}
	if tail <= dip*1.1 {
		t.Errorf("throughput did not climb back after the crash: dip %.2f, tail %.2f", dip, tail)
	}
}

func TestRecoveryThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := RecoveryThroughput(ctxT(t), fastFig9(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if mbps := cellFloat(t, tab.Rows[2][1]); mbps <= 0 {
		t.Errorf("recovery throughput = %v", mbps)
	}
}

func TestLatencyBreakdownComputationSmall(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := LatencyBreakdown(ctxT(t), fastFig9(), 64)
	if err != nil {
		t.Fatal(err)
	}
	frac := cellFloat(t, tab.Rows[2][1])
	if frac <= 0 || frac >= 10 {
		t.Errorf("computation share = %.2f%%, paper reports < 5%%", frac)
	}
}

func TestSpaceOverheadSmallAfterGC(t *testing.T) {
	tab, err := SpaceOverhead(ctxT(t), 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	steady := cellFloat(t, tab.Rows[1][1])
	if steady > 64 {
		t.Errorf("steady-state overhead %.1f bytes/block, want <= 64", steady)
	}
	peak := cellFloat(t, tab.Rows[0][1])
	if peak <= steady {
		t.Errorf("peak (%.1f) not above steady state (%.1f)", peak, steady)
	}
}

func TestFig10aWriteThroughputScales(t *testing.T) {
	tab, err := Fig10a(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// 64 clients beat 1 client for every code.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(first); col++ {
		if cellFloat(t, last[col]) <= cellFloat(t, first[col]) {
			t.Errorf("column %d (%s): no scaling with clients", col, tab.Header[col])
		}
	}
}

func TestFig10bReadIndependentOfK(t *testing.T) {
	tab, err := Fig10b(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// Codes 8-of-16 and 14-of-16 share n=16: read throughput at 64
	// clients must be within 10%.
	var col816, col1416 int
	for i, h := range tab.Header {
		switch h {
		case "8-of-16":
			col816 = i
		case "14-of-16":
			col1416 = i
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	a := cellFloat(t, last[col816])
	b := cellFloat(t, last[col1416])
	if diff := (a - b) / a; diff < -0.1 || diff > 0.1 {
		t.Errorf("read throughput differs %.0f%% between k=8 and k=14 at n=16", diff*100)
	}
}

func TestFig10cThroughputFallsWithP(t *testing.T) {
	tab, err := Fig10c(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tab.Rows[0][1])
	last := cellFloat(t, tab.Rows[len(tab.Rows)-1][1])
	if last >= first {
		t.Errorf("max write throughput did not fall with redundancy: %.2f -> %.2f", first, last)
	}
}

func TestFig10dBroadcastFlat(t *testing.T) {
	tab, err := Fig10d(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// 1-client broadcast: p=8 within 25% of p=1. Unicast falls more.
	b1 := cellFloat(t, tab.Rows[0][1])
	b8 := cellFloat(t, tab.Rows[len(tab.Rows)-1][1])
	u1 := cellFloat(t, tab.Rows[0][3])
	u8 := cellFloat(t, tab.Rows[len(tab.Rows)-1][3])
	bDrop := (b1 - b8) / b1
	uDrop := (u1 - u8) / u1
	if bDrop > 0.25 {
		t.Errorf("broadcast dropped %.0f%% with redundancy, want ~flat", bDrop*100)
	}
	if uDrop < 2*bDrop {
		t.Errorf("unicast drop %.0f%% not clearly worse than broadcast %.0f%%", uDrop*100, bDrop*100)
	}
}

func TestFig1Simulated(t *testing.T) {
	tab, err := Fig1Simulated(8, 10, fastSim())
	if err != nil {
		t.Fatal(err)
	}
	// AJX-par random write throughput must beat FAB and GWGR.
	var ajx, fab, gwgr float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "AJX-par":
			ajx = cellFloat(t, row[1])
		case "FAB":
			fab = cellFloat(t, row[1])
		case "GWGR":
			gwgr = cellFloat(t, row[1])
		}
	}
	if ajx <= fab || ajx <= gwgr {
		t.Errorf("AJX (%.2f) does not beat FAB (%.2f) and GWGR (%.2f) on random writes", ajx, fab, gwgr)
	}
}

func TestAblationHybridLatencyMonotone(t *testing.T) {
	tab, err := AblationHybrid(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Larger groups => fewer rounds => lower latency.
	prev := 1e18
	for _, row := range tab.Rows {
		lat := cellFloat(t, row[2])
		if lat >= prev {
			t.Fatalf("latency did not fall with group size: %v", tab.Rows)
		}
		prev = lat
	}
	// The largest group must violate the Theorem 3 bound in this config.
	if tab.Rows[3][4] == "yes" {
		t.Fatal("group size 8 cannot satisfy r <= d_serial at tp=1, p=8")
	}
}

func TestAblationBatchedBeatsPerBlock(t *testing.T) {
	tab, err := AblationBatchedStripeWrite(fastSim())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if cellFloat(t, row[2]) <= cellFloat(t, row[1]) {
			t.Errorf("%s: batched (1 client) not faster than per-block", row[0])
		}
		if cellFloat(t, row[4]) <= cellFloat(t, row[3]) {
			t.Errorf("%s: batched (8 clients) not faster than per-block", row[0])
		}
	}
}

func TestAblationWriteBackCoalesces(t *testing.T) {
	tab, err := AblationWriteBack(t.TempDir(), 256, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	through := cellFloat(t, tab.Rows[0][3])
	buffered := cellFloat(t, tab.Rows[2][3])
	if through != 1.0 {
		t.Fatalf("write-through coalescing factor = %v, want 1.0", through)
	}
	if buffered <= 1.3 {
		t.Fatalf("buffered coalescing factor = %v, want > 1.3", buffered)
	}
}

func TestAblationBatchedRealBeatsPerBlock(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := AblationBatchedReal(ctxT(t), fastFig9())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if speedup := cellFloat(t, row[3]); speedup <= 1.0 {
			t.Errorf("%s: batched speedup = %.2f, want > 1", row[0], speedup)
		}
	}
}

func TestReadWriteRatio(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-sensitive experiment; skipped under -race")
	}
	tab, err := ReadWriteRatio(ctxT(t), fastFig9())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := cellFloat(t, row[3])
		if ratio < 2 || ratio > 12 {
			t.Errorf("%s: read/write ratio = %.2f, expected a clear multiple (paper: 4-5x)", row[0], ratio)
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ecstore/internal/core"
)

// workerOp builds a random-block write (or read) closure over a fixed
// stripe range. Each worker gets its own rng for determinism without
// contention.
func randomWriteOp(blockSize, k int, stripes uint64) func(ctx context.Context, cl *core.Client, worker int) (int, error) {
	var mu sync.Mutex
	rngs := make(map[int]*rand.Rand)
	buf := func(r *rand.Rand) []byte {
		b := make([]byte, blockSize)
		r.Read(b)
		return b
	}
	return func(ctx context.Context, cl *core.Client, worker int) (int, error) {
		mu.Lock()
		r, ok := rngs[worker]
		if !ok {
			r = rand.New(rand.NewSource(int64(worker) + 1))
			rngs[worker] = r
		}
		stripeID := r.Uint64() % stripes
		slot := r.Intn(k)
		v := buf(r)
		mu.Unlock()
		if err := cl.WriteBlock(ctx, stripeID, slot, v); err != nil {
			return 0, err
		}
		return blockSize, nil
	}
}

func randomReadOp(blockSize, k int, stripes uint64) func(ctx context.Context, cl *core.Client, worker int) (int, error) {
	var mu sync.Mutex
	rngs := make(map[int]*rand.Rand)
	return func(ctx context.Context, cl *core.Client, worker int) (int, error) {
		mu.Lock()
		r, ok := rngs[worker]
		if !ok {
			r = rand.New(rand.NewSource(int64(worker) + 1000))
			rngs[worker] = r
		}
		stripeID := r.Uint64() % stripes
		slot := r.Intn(k)
		mu.Unlock()
		if _, err := cl.ReadBlock(ctx, stripeID, slot); err != nil {
			return 0, err
		}
		return blockSize, nil
	}
}

// Fig9Params tunes the wall-clock budget of the measured experiments.
type Fig9Params struct {
	BlockSize   int           // paper: 1 KB
	Stripes     uint64        // working set
	PointTime   time.Duration // measurement window per configuration
	Warmup      time.Duration // pipeline-fill time excluded from measurement
	Outstanding []int         // request counts for fig9a
	TimeScale   float64       // network-model dilation (see ShapedOptions)
}

// DefaultFig9Params keeps a full fig9 sweep to a few seconds.
func DefaultFig9Params() Fig9Params {
	return Fig9Params{
		BlockSize:   1024,
		Stripes:     4096,
		PointTime:   400 * time.Millisecond,
		Warmup:      150 * time.Millisecond,
		Outstanding: []int{1, 2, 4, 8, 16, 32, 64, 128},
		TimeScale:   8,
	}
}

// Fig9a reproduces Fig. 9(a): aggregate write throughput versus the
// number of outstanding requests per client, 2 clients, 1 KB blocks.
// The curves flatten once the clients' NIC bandwidth saturates, and
// increasing k barely helps — exactly the paper's observation.
func Fig9a(ctx context.Context, p Fig9Params) (*Table, error) {
	t := &Table{
		ID:     "fig9a",
		Title:  "aggregate write throughput (MB/s) vs outstanding requests, 2 clients",
		Header: []string{"outstanding/client", "2-of-4", "3-of-5", "5-of-7", "2-of-5 (p=3)"},
	}
	codes := [][2]int{{2, 4}, {3, 5}, {5, 7}, {2, 5}}
	cells := make(map[int][]string)
	for _, kn := range codes {
		sc, err := NewShapedCluster(ShapedOptions{
			K: kn[0], N: kn[1], BlockSize: p.BlockSize, Clients: 2, TimeScale: p.TimeScale,
		})
		if err != nil {
			return nil, err
		}
		op := randomWriteOp(p.BlockSize, kn[0], p.Stripes)
		for _, out := range p.Outstanding {
			res := RunLoad(ctx, sc.Clients, out, p.Warmup, p.PointTime, op)
			cells[out] = append(cells[out], fcell(res.MBps()*sc.Scale))
		}
	}
	for _, out := range p.Outstanding {
		t.Rows = append(t.Rows, append([]string{icell(out)}, cells[out]...))
	}
	t.Notes = append(t.Notes, "real protocol over the shaped transport (500 Mbit/s NICs, 50 us RTT)")
	return t, nil
}

// Fig9b reproduces Fig. 9(b): aggregate write throughput versus the
// number of clients, within the paper's 8-host budget (clients +
// storage nodes <= 8).
func Fig9b(ctx context.Context, p Fig9Params) (*Table, error) {
	t := &Table{
		ID:     "fig9b",
		Title:  "aggregate write throughput (MB/s) vs number of clients (8-host budget)",
		Header: []string{"clients", "2-of-4", "3-of-5"},
	}
	const outstanding = 64
	type point struct {
		clients int
		mbps    map[string]string
	}
	var points []point
	for clients := 1; clients <= 4; clients++ {
		pt := point{clients: clients, mbps: make(map[string]string)}
		for _, kn := range [][2]int{{2, 4}, {3, 5}} {
			if clients+kn[1] > 8 {
				pt.mbps[fmt.Sprintf("%d-of-%d", kn[0], kn[1])] = "-"
				continue
			}
			sc, err := NewShapedCluster(ShapedOptions{
				K: kn[0], N: kn[1], BlockSize: p.BlockSize, Clients: clients, TimeScale: p.TimeScale,
			})
			if err != nil {
				return nil, err
			}
			res := RunLoad(ctx, sc.Clients, outstanding, p.Warmup, p.PointTime, randomWriteOp(p.BlockSize, kn[0], p.Stripes))
			pt.mbps[fmt.Sprintf("%d-of-%d", kn[0], kn[1])] = fcell(res.MBps() * sc.Scale)
		}
		points = append(points, pt)
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []string{icell(pt.clients), pt.mbps["2-of-4"], pt.mbps["3-of-5"]})
	}
	t.Notes = append(t.Notes, "64 outstanding requests per client")
	return t, nil
}

// Fig9c reproduces Fig. 9(c): single-client write throughput versus
// the redundancy n-k. More redundancy means more delta bytes per
// write, so throughput falls; the decline is gentler for larger k
// relative to the data moved.
func Fig9c(ctx context.Context, p Fig9Params) (*Table, error) {
	t := &Table{
		ID:     "fig9c",
		Title:  "write throughput (MB/s) vs redundancy n-k, 1 client",
		Header: []string{"n-k", "k=2", "k=4"},
	}
	const outstanding = 64
	for _, redundancy := range []int{1, 2, 3} {
		row := []string{icell(redundancy)}
		for _, k := range []int{2, 4} {
			sc, err := NewShapedCluster(ShapedOptions{
				K: k, N: k + redundancy, BlockSize: p.BlockSize, Clients: 1, TimeScale: p.TimeScale,
			})
			if err != nil {
				return nil, err
			}
			res := RunLoad(ctx, sc.Clients, outstanding, p.Warmup, p.PointTime, randomWriteOp(p.BlockSize, k, p.Stripes))
			row = append(row, fcell(res.MBps()*sc.Scale))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9d reproduces Fig. 9(d): two clients read and write random blocks
// on a 3-of-5 code; partway through, a storage node crashes. Aggregate
// throughput drops sharply, then climbs back as clients stumble on
// unavailable blocks and recover them online (no suspension of
// reads/writes). The paper runs 56 minutes with the crash at minute
// 28; we compress the timeline and report per-bucket throughput.
func Fig9d(ctx context.Context, p Fig9Params, buckets int, bucketTime time.Duration) (*Table, error) {
	sc, err := NewShapedCluster(ShapedOptions{K: 3, N: 5, BlockSize: p.BlockSize, Clients: 2, TimeScale: p.TimeScale})
	if err != nil {
		return nil, err
	}
	// A sizable working set: every stripe is pre-populated (so the
	// crash has data to lose) and must be individually recovered, which
	// is what shapes the dip and the gradual climb-back.
	p.Stripes = min(p.Stripes, 384)
	seed := make([]byte, p.BlockSize)
	var pwg sync.WaitGroup
	perr := make([]error, 16)
	for w := 0; w < 16; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for s := uint64(w); s < p.Stripes; s += 16 {
				for i := 0; i < 3; i++ {
					if err := sc.Clients[w%2].WriteBlock(ctx, s, i, seed); err != nil {
						perr[w] = err
						return
					}
				}
			}
		}(w)
	}
	pwg.Wait()
	for _, err := range perr {
		if err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:     "fig9d",
		Title:  "online recovery timeline: throughput per bucket, 3-of-5, 2 clients (crash at bucket " + icell(buckets/3) + ")",
		Header: []string{"bucket", "MB/s", "event"},
	}
	writeOp := randomWriteOp(p.BlockSize, 3, p.Stripes)
	readOp := randomReadOp(p.BlockSize, 3, p.Stripes)
	mixed := func(ctx context.Context, cl *core.Client, worker int) (int, error) {
		if worker%2 == 0 {
			return writeOp(ctx, cl, worker)
		}
		return readOp(ctx, cl, worker)
	}
	crashAt := buckets / 3
	monitorAt := 2 * buckets / 3
	allStripes := make([]uint64, p.Stripes)
	for s := range allStripes {
		allStripes[s] = uint64(s)
	}
	for b := 0; b < buckets; b++ {
		event := ""
		if b == crashAt {
			sc.CrashNode(0)
			event = "storage node 0 crashes"
		}
		if b == monitorAt {
			// The Section 3.10 monitoring mechanism: a designated
			// client sweeps the system and recovers whatever the
			// access-driven healing has not reached yet.
			if _, err := sc.Clients[0].MonitorStripes(ctx, allStripes, 0); err != nil {
				return nil, err
			}
			event = "monitoring pass completes restoration"
		}
		res := RunLoad(ctx, sc.Clients, 16, 0, bucketTime, mixed)
		t.Rows = append(t.Rows, []string{icell(b), fcell(res.MBps() * sc.Scale), event})
		// Periodic garbage collection, as in a real deployment: it
		// keeps the nodes' write-id lists short.
		for _, cl := range sc.Clients {
			if _, err := cl.CollectGarbage(ctx); err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"throughput drops after the crash, climbs as stripes are recovered on access, and is fully restored by the monitoring pass",
		fmt.Sprintf("%d stripes, %d-byte blocks; the paper observed a drop to ~1/3 with gradual restoration", p.Stripes, p.BlockSize))
	return t, nil
}

// RecoveryThroughput reproduces the Section 6.2 side experiment:
// clients sequentially recover the blocks of a crashed storage node;
// we report aggregate recovery throughput and per-stripe latency.
func RecoveryThroughput(ctx context.Context, p Fig9Params, clients int) (*Table, error) {
	sc, err := NewShapedCluster(ShapedOptions{K: 3, N: 5, BlockSize: p.BlockSize, Clients: clients, TimeScale: p.TimeScale})
	if err != nil {
		return nil, err
	}
	p.Stripes = min(p.Stripes, 64)
	seed := make([]byte, p.BlockSize)
	for s := uint64(0); s < p.Stripes; s++ {
		for i := 0; i < 3; i++ {
			if err := sc.Clients[0].WriteBlock(ctx, s, i, seed); err != nil {
				return nil, err
			}
		}
	}
	sc.CrashNode(0)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := uint64(c); s < p.Stripes; s += uint64(clients) {
				// Touch the stripe so the failure is detected and the
				// directory remaps, then recover it.
				if _, err := sc.Clients[c].ReadBlock(ctx, s, 0); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	recoveredBytes := float64(p.Stripes) * float64(p.BlockSize) // the crashed node's blocks
	stripeBytes := float64(p.Stripes) * float64(p.BlockSize) * 5
	equivalent := elapsed.Seconds() / sc.Scale // testbed-equivalent time
	t := &Table{
		ID:     "recovery",
		Title:  fmt.Sprintf("sequential recovery of a crashed node, 3-of-5, %d client(s)", clients),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"stripes recovered", icell(int(p.Stripes))},
			{"elapsed, testbed-equivalent (ms)", fcell(equivalent * 1e3)},
			{"recovered-node MB/s", fcell(recoveredBytes / 1e6 / equivalent)},
			{"stripe-data MB/s (all blocks rewritten)", fcell(stripeBytes / 1e6 / equivalent)},
			{"avg per-stripe recovery latency (ms)", fcell(equivalent * 1e3 / float64(p.Stripes) * float64(clients))},
		},
	}
	t.Notes = append(t.Notes, "paper: ~17 MB/s aggregate recovery throughput, ~22 ms per 16-block request")
	return t, nil
}

// LatencyBreakdown reproduces Section 6.3: the share of write latency
// spent on computation (field arithmetic) versus communication. The
// paper reports computation under 5%.
func LatencyBreakdown(ctx context.Context, p Fig9Params, writes int) (*Table, error) {
	sc, err := NewShapedCluster(ShapedOptions{K: 3, N: 5, BlockSize: p.BlockSize, Clients: 1, TimeScale: p.TimeScale})
	if err != nil {
		return nil, err
	}
	cl := sc.Clients[0]
	v := make([]byte, p.BlockSize)
	// Warm up.
	if err := cl.WriteBlock(ctx, 0, 0, v); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < writes; i++ {
		v[0] = byte(i)
		if err := cl.WriteBlock(ctx, uint64(i)%p.Stripes, i%3, v); err != nil {
			return nil, err
		}
	}
	// Undo the time dilation: communication was slowed by Scale.
	total := time.Duration(float64(time.Since(start)/time.Duration(writes)) / sc.Scale)

	// Computation cost per write: p deltas at the client.
	deltaEach := timeOp(20*time.Millisecond, func() { _ = sc.Code.Delta(3, 0, v, v) })
	compute := 2 * deltaEach // p = 2
	frac := float64(compute) / float64(total) * 100

	t := &Table{
		ID:     "latency",
		Title:  fmt.Sprintf("write latency breakdown, 3-of-5, %d-byte blocks (%d writes)", p.BlockSize, writes),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"avg write latency (us)", usCell(total)},
			{"computation per write (us)", usCell(compute)},
			{"computation share (%)", fcell(frac)},
			{"communication share (%)", fcell(100 - frac)},
		},
	}
	t.Notes = append(t.Notes, "paper: computation < 5% of latency; communication dominates")
	return t, nil
}

// ReadWriteRatio reproduces the Section 6.2 remark that read
// throughput runs ~4-5x above write throughput: reads move one block
// over one round trip while writes move p+2 blocks across 1+p nodes.
func ReadWriteRatio(ctx context.Context, p Fig9Params) (*Table, error) {
	t := &Table{
		ID:     "readratio",
		Title:  "read vs write throughput at saturation (MB/s, 2 clients, 64 outstanding)",
		Header: []string{"code", "write", "read", "read/write"},
	}
	for _, kn := range [][2]int{{2, 4}, {3, 5}} {
		sc, err := NewShapedCluster(ShapedOptions{
			K: kn[0], N: kn[1], BlockSize: p.BlockSize, Clients: 2, TimeScale: p.TimeScale,
		})
		if err != nil {
			return nil, err
		}
		w := RunLoad(ctx, sc.Clients, 64, p.Warmup, p.PointTime, randomWriteOp(p.BlockSize, kn[0], p.Stripes))
		r := RunLoad(ctx, sc.Clients, 64, p.Warmup, p.PointTime, randomReadOp(p.BlockSize, kn[0], p.Stripes))
		wMB, rMB := w.MBps()*sc.Scale, r.MBps()*sc.Scale
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-of-%d", kn[0], kn[1]), fcell(wMB), fcell(rMB), fcell(rMB / wMB),
		})
	}
	t.Notes = append(t.Notes, "paper (Section 6.2): reads typically 4-5x writes")
	return t, nil
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/baseline"
	"ecstore/internal/cluster"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/transport"
)

// Fig1Analytic renders the paper's Fig. 1 cost-comparison table for a
// k-of-n code.
func Fig1Analytic(k, n int) (*Table, error) {
	rows, err := baseline.Fig1(k, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig1",
		Title:  fmt.Sprintf("protocol cost comparison, failure-free, %d-of-%d code (p=%d)", k, n, n-k),
		Header: []string{"scheme", "min w granularity", "read lat (RT)", "write lat (RT)", "#msgs read", "#msgs write", "read bw (B)", "write bw (B)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			string(r.Scheme),
			fmt.Sprintf("%d block(s)", r.MinWriteGranularity),
			icell(r.ReadLatencyRT),
			icell(r.WriteLatencyRT),
			icell(r.ReadMsgs),
			icell(r.WriteMsgs),
			fcell(r.ReadBandwidthB),
			fcell(r.WriteBandwidthB),
		})
	}
	t.Notes = append(t.Notes, "B = block size; AJX columns depend only on p = n-k")
	return t, nil
}

// Fig1Measured validates the AJX columns of Fig. 1 against the real
// implementation: it runs failure-free reads and writes through a
// message-counting transport and reports measured messages and bytes
// per operation next to the analytic values.
func Fig1Measured(ctx context.Context, k, n, blockSize, opsPerMode int) (*Table, error) {
	t := &Table{
		ID:    "fig1-measured",
		Title: fmt.Sprintf("measured message counts, %d-of-%d code, %d-byte blocks (%d ops/mode)", k, n, blockSize, opsPerMode),
		Header: []string{
			"scheme", "op", "msgs/op (analytic)", "msgs/op (measured)",
			"payload bytes/op (analytic)", "bytes/op (measured)",
		},
	}
	modes := []struct {
		mode   resilience.UpdateMode
		scheme baseline.Scheme
	}{
		{resilience.Parallel, baseline.AJXPar},
		{resilience.Broadcast, baseline.AJXBcast},
		{resilience.Serial, baseline.AJXSer},
	}
	for _, m := range modes {
		row, err := baseline.Row(m.scheme, k, n)
		if err != nil {
			return nil, err
		}
		ctr := &transport.Counters{}
		opts := cluster.Options{
			K: k, N: n, BlockSize: blockSize,
			Mode:       m.mode,
			RetryDelay: 50 * time.Microsecond,
			Obs:        ObsRegistry(),
			WrapNode: func(phys int, node proto.StorageNode) proto.StorageNode {
				return transport.NewCounting(node, ctr)
			},
		}
		if m.mode == resilience.Broadcast {
			opts.Multicast = transport.NewCountingMulticaster(ctr)
		}
		c, err := cluster.New(opts)
		if err != nil {
			return nil, err
		}
		cl := c.Clients[0]

		// Writes.
		v := make([]byte, blockSize)
		for i := 0; i < opsPerMode; i++ {
			v[0] = byte(i)
			if err := cl.WriteBlock(ctx, uint64(i%8), i%k, v); err != nil {
				return nil, fmt.Errorf("fig1 measured write: %w", err)
			}
		}
		writeMsgs := float64(ctr.Swap.Messages.Load()+ctr.Add.Messages.Load()) / float64(opsPerMode)
		ws, wr := ctr.Swap.BytesSent.Load()+ctr.Add.BytesSent.Load(), ctr.Swap.BytesRecvd.Load()+ctr.Add.BytesRecvd.Load()
		writeBytes := float64(ws+wr) / float64(opsPerMode)
		t.Rows = append(t.Rows, []string{
			string(m.scheme), "write",
			icell(row.WriteMsgs), fcell(writeMsgs),
			fcell(row.WriteBandwidthB * float64(blockSize)), fcell(writeBytes),
		})

		// Reads (identical across AJX modes; measure once on parallel).
		if m.scheme == baseline.AJXPar {
			before := ctr.Read.Messages.Load()
			for i := 0; i < opsPerMode; i++ {
				if _, err := cl.ReadBlock(ctx, uint64(i%8), i%k); err != nil {
					return nil, fmt.Errorf("fig1 measured read: %w", err)
				}
			}
			readMsgs := float64(ctr.Read.Messages.Load()-before) / float64(opsPerMode)
			rs, rr := ctr.Read.BytesSent.Load(), ctr.Read.BytesRecvd.Load()
			readBytes := float64(rs+rr) / float64(opsPerMode)
			t.Rows = append(t.Rows, []string{
				"AJX-*", "read",
				icell(row.ReadMsgs), fcell(readMsgs),
				fcell(row.ReadBandwidthB * float64(blockSize)), fcell(readBytes),
			})
		}
	}
	t.Notes = append(t.Notes,
		"measured bytes exceed analytic payload by per-message headers and the swap's old-block return",
		"FAB/GWGR rows are cost models (see internal/sim) — the paper's own comparison is analytic too")
	return t, nil
}

package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"ecstore/internal/blockstore"
	"ecstore/internal/core"
	"ecstore/internal/resilience"
	"ecstore/internal/sim"
)

// AblationHybrid quantifies the hybrid parallel-serial trade-off
// (Theorem 3): sweeping the add-group size from 1 (serial) to p
// (parallel) trades write latency against the client-crash tolerance
// the serial discipline buys.
func AblationHybrid(p SimParams) (*Table, error) {
	const k, n, tp = 8, 16, 1
	redundancy := n - k
	t := &Table{
		ID:    "ablation-hybrid",
		Title: fmt.Sprintf("hybrid group-size ablation, %d-of-%d, tp=%d", k, n, tp),
		Header: []string{
			"group size", "write latency (RTs, analytic)", "avg latency (sim, us)",
			"1-client MB/s (sim)", "theorem bound holds (r <= d_serial)",
		},
	}
	dSerial := resilience.DSerial(redundancy, tp)
	for _, group := range []int{1, 2, 4, 8} {
		cfg := sim.DefaultConfig(k, n, p.BlockSize, 1, 1, sim.AJXHybrid, sim.RandomWrite)
		cfg.Model.HybridGroup = group
		cfg.Duration = p.Duration
		lat, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		cfgT := cfg
		cfgT.ThreadsPerClient = p.Threads
		thr, err := sim.Run(cfgT)
		if err != nil {
			return nil, err
		}
		analytic := 1 + (redundancy+group-1)/group
		holds := "yes"
		if group > dSerial {
			holds = fmt.Sprintf("no (d_serial=%d)", dSerial)
		}
		t.Rows = append(t.Rows, []string{
			icell(group), icell(analytic), usCell(lat.AvgLatency),
			fcell(thr.ThroughputMBps()), holds,
		})
	}
	t.Notes = append(t.Notes,
		"group size 1 = AJX-ser (max client-crash tolerance), group size p = AJX-par (2-RT writes)",
		"Theorem 3 requires group size <= d_serial to keep the serial failure bound")
	return t, nil
}

// AblationBatchedStripeWrite compares sequential full-stripe writes
// block-by-block against the batched path (Section 3.11 /
// core.WriteStripe): k swaps + p combined deltas instead of k(p+1)
// exchanges.
func AblationBatchedStripeWrite(p SimParams) (*Table, error) {
	t := &Table{
		ID:     "ablation-batch",
		Title:  "sequential stripe writes: per-block vs batched parity deltas (MB/s)",
		Header: []string{"code", "per-block, 1 client", "batched, 1 client", "per-block, 8 clients", "batched, 8 clients"},
	}
	for _, kn := range [][2]int{{4, 6}, {8, 10}, {8, 16}} {
		row := []string{fmt.Sprintf("%d-of-%d", kn[0], kn[1])}
		for _, clients := range []int{1, 8} {
			per, err := runSim(kn[0], kn[1], clients, sim.AJXPar, sim.SequentialWrite, p)
			if err != nil {
				return nil, err
			}
			bat, err := runSim(kn[0], kn[1], clients, sim.AJXPar, sim.SequentialWriteBatched, p)
			if err != nil {
				return nil, err
			}
			row = append(row, fcell(per.ThroughputMBps()), fcell(bat.ThroughputMBps()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"batching cuts a stripe's messages from 2k(p+1) to 2(k+p) and client parity upload from k*p to p blocks")
	return t, nil
}

// AblationWriteBack measures the deferred-parity-flush optimization of
// Section 3.11 at the block-persistence layer: how many disk writes a
// sequential workload costs with and without write-back buffering.
func AblationWriteBack(dir string, blockSize, stripes, k int) (*Table, error) {
	t := &Table{
		ID:     "ablation-writeback",
		Title:  fmt.Sprintf("deferred parity flush: disk writes for %d sequential stripe updates", stripes),
		Header: []string{"write-back limit", "puts", "disk writes", "coalescing factor"},
	}
	for _, limit := range []int{0, 16, 256} {
		store, _, err := blockstore.OpenFile(blockstore.FileOptions{
			Dir:            fmt.Sprintf("%s/wb%d", dir, limit),
			BlockSize:      blockSize,
			WriteBackLimit: limit,
		})
		if err != nil {
			return nil, err
		}
		// A sequential workload repeatedly updates the same parity
		// block while streaming data blocks (the paper's scenario: a
		// redundant block absorbs one delta per data-block write).
		buf := make([]byte, blockSize)
		for s := 0; s < stripes; s++ {
			for i := 0; i < k; i++ {
				buf[0] = byte(s + i)
				// data block: written once
				if err := store.Put(blockstore.Key{Stripe: uint64(s), Slot: int32(i)}, buf); err != nil {
					return nil, err
				}
				// parity block: updated k times per stripe
				if err := store.Put(blockstore.Key{Stripe: uint64(s), Slot: int32(k)}, buf); err != nil {
					return nil, err
				}
			}
		}
		if err := store.Flush(); err != nil {
			return nil, err
		}
		puts, writes := store.Stats()
		factor := float64(puts) / float64(writes)
		t.Rows = append(t.Rows, []string{icell(limit), icell(int(puts)), icell(int(writes)), fcell(factor)})
		if err := store.Close(); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"limit 0 = write-through; larger limits coalesce repeated parity updates before they reach disk (Section 3.11)")
	return t, nil
}

// AblationBatchedReal measures the batched stripe write on the REAL
// implementation over the shaped transport (the sim table above is the
// modeled counterpart): one client streams full stripes sequentially,
// per-block versus core.WriteStripe.
func AblationBatchedReal(ctx context.Context, p Fig9Params) (*Table, error) {
	t := &Table{
		ID:     "ablation-batch-real",
		Title:  "sequential stripe writes on the real protocol (shaped transport, MB/s)",
		Header: []string{"code", "per-block", "batched", "speedup"},
	}
	for _, kn := range [][2]int{{3, 5}, {4, 8}} {
		k := kn[0]
		sc, err := NewShapedCluster(ShapedOptions{
			K: k, N: kn[1], BlockSize: p.BlockSize, Clients: 1, TimeScale: p.TimeScale,
		})
		if err != nil {
			return nil, err
		}
		values := make([][]byte, k)
		for i := range values {
			values[i] = make([]byte, p.BlockSize)
		}
		var stripeSeq atomic.Uint64
		perBlock := func(ctx context.Context, cl *core.Client, worker int) (int, error) {
			s := stripeSeq.Add(1) % p.Stripes
			for i := 0; i < k; i++ {
				if err := cl.WriteBlock(ctx, s, i, values[i]); err != nil {
					return 0, err
				}
			}
			return k * p.BlockSize, nil
		}
		batched := func(ctx context.Context, cl *core.Client, worker int) (int, error) {
			s := stripeSeq.Add(1) % p.Stripes
			if err := cl.WriteStripe(ctx, s, values); err != nil {
				return 0, err
			}
			return k * p.BlockSize, nil
		}
		per := RunLoad(ctx, sc.Clients, 8, p.Warmup, p.PointTime, perBlock)
		bat := RunLoad(ctx, sc.Clients, 8, p.Warmup, p.PointTime, batched)
		perMB := per.MBps() * sc.Scale
		batMB := bat.MBps() * sc.Scale
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-of-%d", kn[0], kn[1]),
			fcell(perMB), fcell(batMB), fcell(batMB / perMB),
		})
	}
	t.Notes = append(t.Notes, "8 outstanding stripe operations; testbed-equivalent units")
	return t, nil
}

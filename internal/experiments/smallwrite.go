package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
	"ecstore/internal/tier"
	"ecstore/internal/transport"
)

// SmallWriteResult carries the numbers the acceptance test asserts on,
// alongside the printable table.
type SmallWriteResult struct {
	SwapWritesPerSec   float64 // 128 B writes through the block-swap RMW path
	StagedWritesPerSec float64 // same workload through the small-write tier
	Speedup            float64
	RPCPerRead         float64 // protocol READs per application read, hot-spot workload
	CacheHitRate       float64
}

// SmallWrite measures the two halves of the small-I/O tier:
//
//   - 128-byte writes, over the bandwidth-modelled shaped transport
//     (the paper's testbed NICs): the block-swap path moves ~4 blocks
//     of wire bytes per sub-block write (RMW read reply, swap block,
//     parity deltas), so the client NIC is the bottleneck; the
//     small-write tier group-commits concurrent writers into one
//     parity-logged staging append per batch, dividing the wire bytes
//     by the batch size.
//   - hot-spot reads, over a latency-only transport: 96% of reads land
//     on the hottest 1% of a cold working set; with the TID-chained
//     cache sized well under the working set, protocol READ RPCs per
//     application read collapse (a count ratio, immune to timing).
func SmallWrite(ctx context.Context, quick bool) (*Table, *SmallWriteResult, error) {
	const (
		k, n      = 2, 4
		blockSize = 4096
		rtt       = 100 * time.Microsecond
		writers   = 64
	)
	perWriter := 12
	universe := uint64(2048)
	reads := 20000
	if quick {
		perWriter = 4
		universe = 512
		reads = 5000
	}

	// --- 128 B writes: swap path vs staged tier -------------------------
	shaped := ShapedOptions{K: k, N: n, BlockSize: blockSize, Clients: 1}
	swap, err := newShapedLayer(shaped, tier.Options{NoSalvage: true})
	if err != nil {
		return nil, nil, err
	}
	swapWps, err := drive128BWrites(ctx, swap.layer, writers, perWriter, blockSize)
	if err != nil {
		return nil, nil, fmt.Errorf("smallwrite: swap path: %w", err)
	}

	staged, err := newShapedLayer(shaped, tier.Options{
		SmallWrite: true, StagingBlocks: 4096, NoSalvage: true,
	})
	if err != nil {
		return nil, nil, err
	}
	stagedWps, err := drive128BWrites(ctx, staged.layer, writers, perWriter, blockSize)
	if err != nil {
		return nil, nil, fmt.Errorf("smallwrite: staged path: %w", err)
	}
	if err := staged.layer.Flush(ctx); err != nil {
		return nil, nil, fmt.Errorf("smallwrite: flush: %w", err)
	}

	// --- hot-spot reads through the TID-chained cache -------------------
	// Cache for ~1/8 of the working set; the hot 1% fits with room, the
	// cold tail churns through the LRU.
	cold, err := newDelayedLayer(k, n, blockSize, rtt, tier.Options{
		NoSalvage:  true,
		CacheBytes: int64(universe/8) * blockSize,
	})
	if err != nil {
		return nil, nil, err
	}
	hot := universe / 100
	if hot == 0 {
		hot = 1
	}
	// Prewarm the hot set so the measured phase sees steady state, not
	// compulsory misses.
	for a := uint64(0); a < hot; a++ {
		if _, err := cold.layer.ReadBlock(ctx, a); err != nil {
			return nil, nil, err
		}
	}
	rng := rand.New(rand.NewSource(1))
	rpcBefore := cold.client.Stats().Reads.Load()
	for i := 0; i < reads; i++ {
		addr := uint64(rng.Int63n(int64(hot)))
		if rng.Intn(100) >= 96 {
			addr = uint64(rng.Int63n(int64(universe)))
		}
		if _, err := cold.layer.ReadBlock(ctx, addr); err != nil {
			return nil, nil, err
		}
	}
	rpcPerRead := float64(cold.client.Stats().Reads.Load()-rpcBefore) / float64(reads)
	cst := cold.layer.CacheStats()
	hits, misses := cst.Hits.Load(), cst.Misses.Load()
	hitRate := float64(hits) / float64(hits+misses)

	res := &SmallWriteResult{
		SwapWritesPerSec:   swapWps,
		StagedWritesPerSec: stagedWps,
		Speedup:            stagedWps / swapWps,
		RPCPerRead:         rpcPerRead,
		CacheHitRate:       hitRate,
	}
	nWrites := writers * perWriter
	t := &Table{
		ID:     "smallwrite",
		Title:  fmt.Sprintf("small-write tier and hot-read cache (%d-of-%d, %d B blocks)", k, n, blockSize),
		Header: []string{"workload", "block-swap path", "small-I/O tier", "ratio"},
		Rows: [][]string{
			{
				fmt.Sprintf("128 B writes, %d writers x %d (ops/s)", writers, perWriter),
				fcell(swapWps), fcell(stagedWps), fcell(res.Speedup) + "x",
			},
			{
				fmt.Sprintf("hot-spot reads, %d over %d blocks (RPC/read)", reads, universe),
				"1.00", fmt.Sprintf("%.3f", rpcPerRead),
				fcell(1/rpcPerRead) + "x fewer",
			},
		},
		Notes: []string{
			fmt.Sprintf("writes: %d sub-block writes over the shaped (NIC-bandwidth) transport; the tier group-commits them into parity-logged staging appends", nWrites),
			fmt.Sprintf("reads: %v-RTT latency-only transport; 96%% of reads to the hottest 1%% of blocks, cache holds ~1/8 of the working set and fills only from primary stamped replies", rtt),
			fmt.Sprintf("cache hit rate %.2f", hitRate),
		},
	}
	return t, res, nil
}

// delayedLayer is a tier.Layer over one core client whose node handles
// each charge a fixed round trip per RPC.
type delayedLayer struct {
	layer  *tier.Layer
	client *core.Client
}

// newShapedLayer builds a tier.Layer over a one-client shaped cluster
// (NIC bandwidth model — concurrent transfers queue), for workloads
// where wire bytes are the bottleneck.
func newShapedLayer(opts ShapedOptions, topts tier.Options) (*delayedLayer, error) {
	sc, err := NewShapedCluster(opts)
	if err != nil {
		return nil, err
	}
	cl := sc.Clients[0]
	topts.Base = &stampedClient{cl: cl, layout: sc.Layout, bs: opts.BlockSize, k: opts.K}
	l, err := tier.NewLayer(topts)
	if err != nil {
		return nil, err
	}
	return &delayedLayer{layer: l, client: cl}, nil
}

// newDelayedLayer assembles storage nodes behind transport.Delayed, a
// core client over them, and a tier.Layer with the given tier options
// (Base is filled in).
func newDelayedLayer(k, n, blockSize int, rtt time.Duration, topts tier.Options) (*delayedLayer, error) {
	code, err := erasure.New(k, n)
	if err != nil {
		return nil, err
	}
	layout, err := stripe.NewLayout(k, n)
	if err != nil {
		return nil, err
	}
	handles := make([]proto.StorageNode, n)
	for i := 0; i < n; i++ {
		nd := storage.MustNew(storage.Options{
			ID: fmt.Sprintf("s%d", i), BlockSize: blockSize, Code: code,
		})
		handles[i] = transport.NewDelayed(nd, rtt)
	}
	dir, err := directory.New(layout, handles, nil)
	if err != nil {
		return nil, err
	}
	cl, err := core.NewClient(core.Config{
		ID: 1, Code: code, Resolver: dir, BlockSize: blockSize,
		Mode: resilience.Parallel,
	})
	if err != nil {
		return nil, err
	}
	topts.Base = &stampedClient{cl: cl, layout: layout, bs: blockSize, k: k}
	l, err := tier.NewLayer(topts)
	if err != nil {
		return nil, err
	}
	return &delayedLayer{layer: l, client: cl}, nil
}

// drive128BWrites issues writers*perWriter 128-byte sub-block writes,
// each to its own home block at an unaligned offset, and returns the
// aggregate ops/s.
func drive128BWrites(ctx context.Context, l *tier.Layer, writers, perWriter, blockSize int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, writers)
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				block := int64(w*perWriter + i)
				off := block*int64(blockSize) + 1000 // sub-block, unaligned
				if _, err := l.WriteAt(ctx, payload, off); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(writers*perWriter) / elapsed, nil
}

// stampedClient adapts a core client to tier.Stamped over a single
// unbounded stripe group (the experiments' analogue of the facade's
// cluster target).
type stampedClient struct {
	cl     *core.Client
	layout stripe.Layout
	bs     int
	k      int
}

func (t *stampedClient) BlockSize() int      { return t.bs }
func (t *stampedClient) StripeK() int        { return t.k }
func (t *stampedClient) GroupBlocks() uint64 { return 0 }
func (t *stampedClient) Capacity() uint64    { return 0 }

func (t *stampedClient) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	s, slot := t.layout.Locate(addr)
	return t.cl.ReadBlock(ctx, s, slot)
}

func (t *stampedClient) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	s, slot := t.layout.Locate(addr)
	return t.cl.WriteBlock(ctx, s, slot, data)
}

func (t *stampedClient) ReadBlockStamped(ctx context.Context, addr uint64) ([]byte, core.ReadStamp, error) {
	s, slot := t.layout.Locate(addr)
	return t.cl.ReadBlockStamped(ctx, s, slot)
}

func (t *stampedClient) WriteBlockStamped(ctx context.Context, addr uint64, data []byte) (proto.TID, proto.TID, error) {
	s, slot := t.layout.Locate(addr)
	return t.cl.WriteBlockStamped(ctx, s, slot, data)
}

func (t *stampedClient) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	sw := make([]core.StripeWrite, len(writes))
	for i, w := range writes {
		sw[i] = core.StripeWrite{Stripe: w.Addr / uint64(t.k), Values: w.Values}
	}
	errs, stats := t.cl.WriteStripes(ctx, sw)
	return errs, bulk.WriteStats{BatchCalls: stats.BatchCalls, BatchRPCs: stats.BatchRPCs}
}

var _ tier.Stamped = (*stampedClient)(nil)

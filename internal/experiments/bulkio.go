package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

// BulkIO measures what the windowed bulk engine buys over the
// sequential path: the same >=64-stripe WriteAt/ReadAt span at window
// sizes 1, 4, and 16, over an in-process cluster whose shard handles
// each charge one fixed round trip per RPC (transport.Delayed). The
// round trip is the quantity the pipeline hides; the table reports
// MB/s, the speedup over window 1, and how many logical batch-adds the
// engine coalesced into each wire RPC.
func BulkIO(ctx context.Context, quick bool) (*Table, error) {
	const (
		k, n      = 2, 4
		sites     = 6
		groups    = 2
		blockSize = 4096
		rtt       = 100 * time.Microsecond
	)
	bpg := uint64(128) // 2 groups x 64 stripes
	if quick {
		bpg = 32
	}
	spanStripes := int(uint64(groups) * bpg / k)

	t := &Table{
		ID:    "bulkio",
		Title: fmt.Sprintf("pipelined bulk I/O, %d-stripe span, %v simulated RTT per RPC (%d-of-%d, %d groups)", spanStripes, rtt, k, n, groups),
		Header: []string{
			"window", "write MB/s", "speedup", "read MB/s", "speedup",
			"batch-adds/RPC", "stalls",
		},
		Notes: []string{
			"window: Options.MaxInFlight in stripes; 1 is the strictly sequential path",
			"transport: in-process nodes behind transport.Delayed (latency only, no bandwidth model)",
			"batch-adds/RPC: redundant-node deltas coalesced per wire RPC (bulk.coalesce_ratio_pct / 100)",
		},
	}

	var baseWrite, baseRead float64
	for _, window := range []int{1, 4, 16} {
		reg := obs.NewRegistry()
		v, err := volume.NewLocal(volume.LocalOptions{
			K: k, N: n, BlockSize: blockSize,
			Groups: groups, Sites: sites, BlocksPerGroup: bpg,
			MaxInFlight: window,
			Obs:         reg,
			WrapShard: func(site placement.Node, group uint64, nd proto.StorageNode) proto.StorageNode {
				return transport.NewDelayed(nd, rtt)
			},
		})
		if err != nil {
			return nil, err
		}

		payload := make([]byte, spanStripes*k*blockSize)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		start := time.Now()
		if wrote, err := v.WriteAt(ctx, payload, 0); err != nil || wrote != len(payload) {
			return nil, fmt.Errorf("bulkio window %d: WriteAt = %d, %v", window, wrote, err)
		}
		writeMBs := float64(len(payload)) / (1 << 20) / time.Since(start).Seconds()

		got := make([]byte, len(payload))
		start = time.Now()
		if _, err := v.ReadAt(ctx, got, 0); err != nil {
			return nil, fmt.Errorf("bulkio window %d: ReadAt: %v", window, err)
		}
		readMBs := float64(len(got)) / (1 << 20) / time.Since(start).Seconds()
		if !bytes.Equal(got, payload) {
			return nil, fmt.Errorf("bulkio window %d: readback diverged", window)
		}

		snap := reg.Snapshot()
		coalesce := float64(asInt64(snap["bulk.coalesce_ratio_pct"])) / 100
		stalls := asInt64(snap["bulk.window_stalls"])

		if window == 1 {
			baseWrite, baseRead = writeMBs, readMBs
		}
		t.Rows = append(t.Rows, []string{
			icell(window),
			fcell(writeMBs),
			fcell(writeMBs/baseWrite) + "x",
			fcell(readMBs),
			fcell(readMBs/baseRead) + "x",
			fcell(coalesce),
			fmt.Sprintf("%d", stalls),
		})
		if err := v.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// asInt64 reads a numeric metric out of a registry snapshot.
func asInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case uint64:
		return int64(x)
	default:
		return 0
	}
}

package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestBulkIOPipelineSpeedup encodes the tentpole's acceptance floor:
// at window 16 the pipelined WriteAt must reach at least 3x the
// sequential-path MB/s over the latency-modelled in-process transport,
// and the coalescer must be combining more than one batch-add per wire
// RPC.
func TestBulkIOPipelineSpeedup(t *testing.T) {
	tab, err := BulkIO(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	mbs := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	w1, w16 := tab.Rows[0], tab.Rows[2]
	if w1[0] != "1" || w16[0] != "16" {
		t.Fatalf("unexpected window order: %v / %v", w1, w16)
	}
	seq, pipe := mbs(w1, 1), mbs(w16, 1)
	if pipe < 3*seq {
		t.Fatalf("window-16 write %.2f MB/s is under 3x the sequential %.2f MB/s", pipe, seq)
	}
	if coalesce := mbs(w16, 5); coalesce <= 1 {
		t.Fatalf("window 16 coalesced %.2f batch-adds per RPC, want > 1", coalesce)
	}
	if !strings.HasSuffix(w16[2], "x") {
		t.Fatalf("speedup cell %q not formatted", w16[2])
	}
}

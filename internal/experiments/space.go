package experiments

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/cluster"
)

// SpaceOverhead reproduces Section 6.5: the protocol's control-state
// overhead per block at the storage nodes, in steady state (after
// garbage collection) and at its transient peak (before GC).
func SpaceOverhead(ctx context.Context, blockSize, blocks int) (*Table, error) {
	c, err := cluster.New(cluster.Options{
		K: 2, N: 4, BlockSize: blockSize,
		RetryDelay: 50 * time.Microsecond,
		Obs:        ObsRegistry(),
	})
	if err != nil {
		return nil, err
	}
	cl := c.Clients[0]
	v := make([]byte, blockSize)
	for b := 0; b < blocks; b++ {
		v[0] = byte(b)
		if err := cl.WriteBlock(ctx, uint64(b/2), b%2, v); err != nil {
			return nil, err
		}
	}
	peakTotal, peakSlots := 0, 0
	for phys := 0; phys < 4; phys++ {
		tot, slots := c.Node(phys).ControlOverhead()
		peakTotal += tot
		peakSlots += slots
	}

	// Two GC passes retire every tid.
	if _, err := cl.CollectGarbage(ctx); err != nil {
		return nil, err
	}
	if _, err := cl.CollectGarbage(ctx); err != nil {
		return nil, err
	}
	steadyTotal, steadySlots := 0, 0
	for phys := 0; phys < 4; phys++ {
		tot, slots := c.Node(phys).ControlOverhead()
		steadyTotal += tot
		steadySlots += slots
	}

	t := &Table{
		ID:     "space",
		Title:  fmt.Sprintf("storage-node control overhead, %d blocks of %d bytes", blocks, blockSize),
		Header: []string{"state", "bytes/block", "overhead vs block (%)"},
		Rows: [][]string{
			{"before GC (peak)", fcell(float64(peakTotal) / float64(peakSlots)), fcell(float64(peakTotal) / float64(peakSlots) / float64(blockSize) * 100)},
			{"after GC (steady)", fcell(float64(steadyTotal) / float64(steadySlots)), fcell(float64(steadyTotal) / float64(steadySlots) / float64(blockSize) * 100)},
		},
	}
	t.Notes = append(t.Notes,
		"paper: ~10 bytes/block (1% of a 1 KB block); ours differs by Go's in-memory representation",
		"no old-version data is ever logged — overhead is O(1) per block between GC passes")
	return t, nil
}

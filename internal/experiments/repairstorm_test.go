package experiments

import (
	"context"
	"strconv"
	"testing"
)

// TestRepairStormFrugalRatio encodes the headline acceptance bound for
// the repair tentpole: draining a site's worth of damage with partial
// sums must pull strictly less than k block payloads per lost block
// through the coordinator, while the naive path pulls at least k.
func TestRepairStormFrugalRatio(t *testing.T) {
	tab, err := RepairStorm(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, col, err)
		}
		return v
	}
	frugal, naive := tab.Rows[0], tab.Rows[1]
	if frugal[0] != "partial sums" || naive[0] != "naive" {
		t.Fatalf("unexpected row order: %v / %v", frugal[0], naive[0])
	}
	const k = 2
	for _, row := range [][]string{frugal, naive} {
		if cell(row, 1) == 0 {
			t.Fatalf("%s: no stripes repaired — the storm never reached the scheduler", row[0])
		}
		if row[6] != "true" {
			t.Fatalf("%s: data not intact after drain", row[0])
		}
	}
	if r := cell(frugal, 4); r >= k {
		t.Fatalf("partial-sum ingress ratio %.2f, want < k = %d", r, k)
	}
	if r := cell(naive, 4); r < k {
		t.Fatalf("naive ingress ratio %.2f, want >= k = %d", r, k)
	}
	if cell(frugal, 5) == 0 {
		t.Fatal("partial-sum drain booked no aggregation-tree bytes")
	}
	if cell(naive, 5) != 0 {
		t.Fatal("naive drain booked aggregation-tree bytes without an aggregator")
	}
}

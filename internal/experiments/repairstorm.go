package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/repair"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

// RepairStorm measures what the background scheduler's bandwidth-frugal
// reconstruction buys: a whole site dies under a sharded volume, the
// scheduler drains the damage, and we account every content byte that
// crosses into the repair coordinator. With partial-sum aggregation the
// survivors fold their alpha*block contributions along the aggregation
// tree and only the final sum reaches the coordinator (~1 block per
// lost block); without it every consistent survivor ships its whole
// block (k blocks per lost block).
func RepairStorm(ctx context.Context, quick bool) (*Table, error) {
	const (
		k, n      = 2, 4
		groups    = 4
		sites     = 8
		blockSize = 4096
	)
	blocksPerGroup := uint64(32)
	if quick {
		blocksPerGroup = 8
	}

	t := &Table{
		ID:    "repairstorm",
		Title: fmt.Sprintf("repair-storm drain: coordinator ingress per lost byte (%d-of-%d, %d groups / %d sites)", k, n, groups, sites),
		Header: []string{
			"recovery path", "stripes repaired", "lost KB",
			"coord ingress KB", "ingress / lost", "tree KB", "intact",
		},
		Notes: []string{
			fmt.Sprintf("lost KB: one %d B shard per damaged stripe (a single site crashed)", blockSize),
			"coord ingress: get_state + partial_sum + read reply bytes at the repair coordinator",
			fmt.Sprintf("naive pulls >= k=%d blocks per lost block; partial sums pull ~1 (plus control replies)", k),
			"tree KB: accumulator bytes on survivor-to-survivor aggregation edges (never cross the coordinator's link)",
		},
	}

	for _, mode := range []struct {
		name string
		agg  func(*transport.Counters) proto.Aggregator
	}{
		{"partial sums", func(ctr *transport.Counters) proto.Aggregator { return transport.NewCountingAggregator(ctr) }},
		{"naive", func(*transport.Counters) proto.Aggregator { return nil }},
	} {
		ctr := &transport.Counters{}
		l, err := volume.NewLocal(volume.LocalOptions{
			K: k, N: n, BlockSize: blockSize,
			Groups:         groups,
			Sites:          sites,
			BlocksPerGroup: blocksPerGroup,
			RetryDelay:     50 * time.Microsecond,
			WrapShard: func(site placement.Node, group uint64, nd proto.StorageNode) proto.StorageNode {
				return transport.NewCounting(nd, ctr)
			},
			Aggregate: mode.agg(ctr),
			Obs:       ObsRegistry(),
		})
		if err != nil {
			return nil, err
		}

		buf := make([]byte, blockSize)
		for addr := uint64(0); addr < l.Capacity(); addr++ {
			for i := range buf {
				buf[i] = byte(addr*131 + uint64(i)*7)
			}
			if err := l.WriteBlock(ctx, addr, buf); err != nil {
				return nil, err
			}
		}

		sched, err := repair.NewScheduler(repair.Options{Source: l.Volume, Interval: time.Hour})
		if err != nil {
			return nil, err
		}
		victims, err := l.GroupSites(0)
		if err != nil {
			return nil, err
		}
		l.CrashSite(victims[0].ID)

		before := ctr.GetState.BytesRecvd.Load() + ctr.PartialSum.BytesRecvd.Load() + ctr.Read.BytesRecvd.Load()
		dctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		err = sched.Drain(dctx)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("drain (%s): %w", mode.name, err)
		}
		ingress := ctr.GetState.BytesRecvd.Load() + ctr.PartialSum.BytesRecvd.Load() + ctr.Read.BytesRecvd.Load() - before

		stripes := sched.Stats().StripesRepaired.Load()
		lost := stripes * blockSize
		intact := true
		for addr := uint64(0); addr < l.Capacity(); addr++ {
			got, err := l.ReadBlock(ctx, addr)
			if err != nil {
				return nil, err
			}
			for i := range buf {
				buf[i] = byte(addr*131 + uint64(i)*7)
			}
			if !bytes.Equal(got, buf) {
				intact = false
				break
			}
		}

		ratio := 0.0
		if lost > 0 {
			ratio = float64(ingress) / float64(lost)
		}
		t.Rows = append(t.Rows, []string{
			mode.name,
			fmt.Sprintf("%d", stripes),
			fcell(float64(lost) / 1024),
			fcell(float64(ingress) / 1024),
			fcell(ratio),
			fcell(float64(ctr.PartialSumTreeBytes.Load()) / 1024),
			fmt.Sprintf("%v", intact),
		})
		if err := l.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

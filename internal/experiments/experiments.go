// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6): the Fig. 1 cost comparison, the
// Fig. 8 erasure-code microbenchmarks and resiliency table, the
// Fig. 9 measured-system throughput/latency/crash experiments (run on
// the real protocol over the shaped transport), and the Fig. 10
// large-system simulations.
//
// Each experiment returns a Table whose rows mirror the series the
// paper plots; cmd/experiments prints them and EXPERIMENTS.md records
// a captured run against the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/storage"
	"ecstore/internal/stripe"
	"ecstore/internal/transport"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig9a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// cell formats helpers.
func fcell(v float64) string { return fmt.Sprintf("%.2f", v) }
func icell(v int) string     { return fmt.Sprintf("%d", v) }

// --- observability ----------------------------------------------------------

var (
	obsMu  sync.Mutex
	obsReg *obs.Registry
)

// SetObsRegistry points every subsequently built experiment cluster
// (shaped or plain) at reg, so cmd/experiments can emit a metrics
// snapshot alongside each figure. Nil (the default) disables
// instrumentation.
func SetObsRegistry(reg *obs.Registry) {
	obsMu.Lock()
	obsReg = reg
	obsMu.Unlock()
}

// ObsRegistry returns the registry installed by SetObsRegistry, or nil.
func ObsRegistry() *obs.Registry {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsReg
}

// --- shaped cluster ---------------------------------------------------------

// ShapedCluster is a full in-process deployment of the real protocol
// under the network model: every client has its own NIC (Host) and its
// own directory of shaped node handles, while the raw storage nodes
// and their NICs are shared. This is the paper's 8-host testbed on one
// machine.
type ShapedCluster struct {
	Code    *erasure.Code
	Layout  stripe.Layout
	Clients []*core.Client

	BlockSize int
	// Scale is the applied time dilation: bandwidths were divided and
	// latencies multiplied by it, so measured throughput times Scale
	// is the testbed-equivalent figure. Scaling keeps intrinsic
	// operation times far above the OS timer granularity, which is
	// what makes the curves reproducible on one machine.
	Scale float64

	shape       transport.ShapeConfig
	clientHosts []*transport.Host
	serverHosts []*transport.Host

	mu    sync.Mutex
	nodes []*storage.Node
	gen   []int
}

// ShapedOptions configures a shaped cluster.
type ShapedOptions struct {
	K, N      int
	BlockSize int
	Clients   int
	Mode      resilience.UpdateMode
	TP        int
	// BytesPerSec is the per-NIC bandwidth (default: the paper's
	// 500 Mbit/s).
	BytesPerSec float64
	// Shape is the latency/service model (default: DefaultShape).
	Shape *transport.ShapeConfig
	// Broadcast equips clients with a shaped multicaster.
	Broadcast bool
	// TimeScale dilates the network model (default 16): bandwidth is
	// divided and latency multiplied by it. Throughput results are
	// reported back in testbed-equivalent units via Scale.
	TimeScale float64
}

// NewShapedCluster assembles the deployment.
func NewShapedCluster(opts ShapedOptions) (*ShapedCluster, error) {
	if opts.BytesPerSec == 0 {
		opts.BytesPerSec = transport.DefaultBytesPerSec
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 16
	}
	shape := transport.DefaultShape()
	if opts.Shape != nil {
		shape = *opts.Shape
	}
	opts.BytesPerSec /= opts.TimeScale
	shape.Latency = time.Duration(float64(shape.Latency) * opts.TimeScale)
	shape.ServerTime = time.Duration(float64(shape.ServerTime) * opts.TimeScale)
	if opts.Mode == 0 {
		opts.Mode = resilience.Parallel
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	layout, err := stripe.NewLayout(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	reg := ObsRegistry()
	sc := &ShapedCluster{
		Code:      code,
		Layout:    layout,
		BlockSize: opts.BlockSize,
		Scale:     opts.TimeScale,
		shape:     shape,
		nodes:     make([]*storage.Node, opts.N),
		gen:       make([]int, opts.N),
	}
	for i := 0; i < opts.N; i++ {
		sc.nodes[i] = storage.MustNew(storage.Options{
			ID:        fmt.Sprintf("s%d", i),
			BlockSize: opts.BlockSize,
			Code:      code,
		})
		host := transport.NewHost(fmt.Sprintf("s%d", i), opts.BytesPerSec)
		host.PublishTo(reg)
		sc.serverHosts = append(sc.serverHosts, host)
	}
	for c := 0; c < opts.Clients; c++ {
		clientHost := transport.NewHost(fmt.Sprintf("c%d", c), opts.BytesPerSec)
		clientHost.PublishTo(reg)
		sc.clientHosts = append(sc.clientHosts, clientHost)
		handles := make([]proto.StorageNode, opts.N)
		for i := 0; i < opts.N; i++ {
			handles[i] = transport.NewShaped(sc.nodes[i], clientHost, sc.serverHosts[i], shape)
		}
		dir, err := directory.New(layout, handles, sc.replacerFor(clientHost))
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ID:        proto.ClientID(c + 1),
			Code:      code,
			Resolver:  dir,
			BlockSize: opts.BlockSize,
			Mode:      opts.Mode,
			TP:        opts.TP,
			Obs:       reg,
		}
		if opts.Broadcast {
			cfg.Multicast = transport.NewShapedMulticaster(clientHost, shape)
		}
		cl, err := core.NewClient(cfg)
		if err != nil {
			return nil, err
		}
		sc.Clients = append(sc.Clients, cl)
	}
	return sc, nil
}

// replacerFor builds a per-client directory replacer that shares raw
// replacement nodes across clients: the first failure report creates
// the replacement; later reports (from any client) wrap the same node
// for their own NIC.
func (sc *ShapedCluster) replacerFor(clientHost *transport.Host) directory.Replacer {
	return func(phys int) proto.StorageNode {
		raw := sc.replacementNode(phys)
		return transport.NewShaped(raw, clientHost, sc.serverHosts[phys], sc.shape)
	}
}

func (sc *ShapedCluster) replacementNode(phys int) *storage.Node {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if !sc.nodes[phys].Crashed() {
		return sc.nodes[phys] // already replaced by another client
	}
	sc.gen[phys]++
	sc.nodes[phys] = storage.MustNew(storage.Options{
		ID:          fmt.Sprintf("s%d.%d", phys, sc.gen[phys]),
		BlockSize:   sc.BlockSize,
		Code:        sc.Code,
		Replacement: true,
		GarbageSeed: int64(phys)<<8 | int64(sc.gen[phys]),
	})
	return sc.nodes[phys]
}

// CrashNode fail-stops a physical node.
func (sc *ShapedCluster) CrashNode(phys int) {
	sc.mu.Lock()
	n := sc.nodes[phys]
	sc.mu.Unlock()
	n.Crash()
}

// --- closed-loop load generator ---------------------------------------------

// LoadResult aggregates a timed run.
type LoadResult struct {
	Ops     int
	Bytes   int64
	Elapsed time.Duration
	Errs    int
}

// MBps returns payload megabytes per second.
func (r LoadResult) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// RunLoad drives every client with `outstanding` goroutines issuing
// ops until warmup+duration elapses, counting only operations that
// complete after the warmup (so pipeline fill does not skew short
// windows). In-flight operations are allowed to FINISH past the
// deadline rather than being cancelled: an aborted write is
// indistinguishable from a client crash to the protocol, and a load
// generator that "crashes" dozens of clients per window would blow any
// t_p budget. op returns the payload bytes moved (0 on failure).
func RunLoad(ctx context.Context, clients []*core.Client, outstanding int, warmup, duration time.Duration, op func(ctx context.Context, cl *core.Client, worker int) (int, error)) LoadResult {
	var (
		mu  sync.Mutex
		res LoadResult
	)
	start := time.Now()
	measureFrom := start.Add(warmup)
	deadline := measureFrom.Add(duration)
	var wg sync.WaitGroup
	for ci, cl := range clients {
		for w := 0; w < outstanding; w++ {
			wg.Add(1)
			go func(cl *core.Client, worker int) {
				defer wg.Done()
				for ctx.Err() == nil && time.Now().Before(deadline) {
					n, err := op(ctx, cl, worker)
					if time.Now().Before(measureFrom) {
						continue
					}
					mu.Lock()
					if err != nil {
						res.Errs++
					} else {
						res.Ops++
						res.Bytes += int64(n)
					}
					mu.Unlock()
				}
			}(cl, ci*outstanding+w)
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start) - warmup
	return res
}

// RawNode returns the current raw storage node at a physical index
// (test and diagnostic use).
func (sc *ShapedCluster) RawNode(phys int) *storage.Node {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.nodes[phys]
}

// ClientHost exposes a client's NIC host (diagnostics).
func (sc *ShapedCluster) ClientHost(i int) *transport.Host { return sc.clientHosts[i] }

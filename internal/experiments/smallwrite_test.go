package experiments

import (
	"context"
	"testing"
)

// TestSmallWriteTierAcceptance encodes the PR's acceptance floors: the
// small-write tier must land 128-byte writes at >= 10x the block-swap
// path's throughput over the latency-modelled transport, and the
// hot-spot read workload must need fewer than 0.1 protocol READ RPCs
// per application read through the TID-chained cache.
func TestSmallWriteTierAcceptance(t *testing.T) {
	tab, res, err := SmallWrite(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	// RPC/read is a count ratio, not a timing: it holds under -race.
	if res.RPCPerRead >= 0.1 {
		t.Fatalf("hot-spot reads cost %.3f RPC/read, want < 0.1", res.RPCPerRead)
	}
	if res.CacheHitRate < 0.9 {
		t.Fatalf("cache hit rate %.2f, want >= 0.9", res.CacheHitRate)
	}
	if raceEnabled {
		t.Logf("skipping throughput ratio under -race: swap %.0f ops/s, staged %.0f ops/s (%.1fx)",
			res.SwapWritesPerSec, res.StagedWritesPerSec, res.Speedup)
		return
	}
	if res.Speedup < 10 {
		t.Fatalf("staged 128 B writes %.0f ops/s vs swap %.0f ops/s: %.1fx, want >= 10x",
			res.StagedWritesPerSec, res.SwapWritesPerSec, res.Speedup)
	}
}

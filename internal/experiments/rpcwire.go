package experiments

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ecstore/internal/proto"
	"ecstore/internal/rpc"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// rpcWirePoint is one measured configuration of the RPC wire: payload
// size, stripe count, and an optional per-connection bandwidth cap
// (0 = raw loopback).
type rpcWirePoint struct {
	payload    int
	stripes    int
	perConnBps float64
}

// RPCWire measures the zero-copy RPC fast path over real loopback TCP:
// closed-loop p50/p99 call latency and aggregate throughput for
// premultiplied Add calls (the paper's hot-path redundant-node write)
// at 1 KiB / 16 KiB / 1 MiB payloads, single-connection vs 4 stripes.
// The shaped rows cap each connection at 64 MiB/s with
// transport.ShapedConn — the per-flow ceiling a real single TCP stream
// hits — which is where striping pays; on raw single-core loopback the
// CPU is the shared bottleneck and stripes are ~break-even.
func RPCWire(ctx context.Context, quick bool) (*Table, error) {
	window := 400 * time.Millisecond
	if quick {
		window = 80 * time.Millisecond
	}
	t := &Table{
		ID:    "rpcwire",
		Title: "zero-copy vectored RPC over loopback TCP, closed loop, 8 workers",
		Header: []string{
			"payload", "stripes", "per-conn cap", "p50 us", "p99 us", "MB/s",
		},
		Notes: []string{
			"op: premultiplied Add (delta rides the request; >= 4 KiB payloads take the writev path)",
			"raw rows share one CPU with the server, so striping is bound by compute, not the wire",
			"shaped rows cap each conn at 64 MiB/s (transport.ShapedConn): the per-flow ceiling striping lifts",
		},
	}
	points := []rpcWirePoint{
		{1 << 10, 1, 0}, {1 << 10, 4, 0},
		{16 << 10, 1, 0}, {16 << 10, 4, 0},
		{1 << 20, 1, 0}, {1 << 20, 4, 0},
		{1 << 20, 1, 64 << 20}, {1 << 20, 4, 64 << 20},
	}
	for _, p := range points {
		p50, p99, mbps, err := runRPCWirePoint(ctx, p, window)
		if err != nil {
			return nil, err
		}
		cap := "-"
		if p.perConnBps > 0 {
			cap = fmt.Sprintf("%.0f MiB/s", p.perConnBps/(1<<20))
		}
		t.Rows = append(t.Rows, []string{
			fmtBytes(p.payload), fmt.Sprintf("%d", p.stripes), cap,
			fmt.Sprintf("%.0f", p50), fmt.Sprintf("%.0f", p99), fmt.Sprintf("%.1f", mbps),
		})
	}
	return t, nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}

// runRPCWirePoint serves one node over loopback and hammers it with 8
// closed-loop workers for the window, returning p50/p99 call latency
// in microseconds and aggregate throughput in MB/s.
func runRPCWirePoint(ctx context.Context, p rpcWirePoint, window time.Duration) (p50, p99, mbps float64, err error) {
	node := storage.MustNew(storage.Options{ID: "rpcwire", BlockSize: p.payload})
	ln, lerr := net.Listen("tcp", "127.0.0.1:0")
	if lerr != nil {
		return 0, 0, 0, lerr
	}
	srv := rpc.Serve(ln, node)
	defer srv.Close()
	opts := []rpc.Option{rpc.WithStripes(p.stripes)}
	if p.perConnBps > 0 {
		bps := p.perConnBps
		opts = append(opts, rpc.WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			conn, derr := d.DialContext(ctx, "tcp", addr)
			if derr != nil {
				return nil, derr
			}
			return transport.NewShapedConn(conn, bps), nil
		}))
	}
	cl := rpc.Dial(srv.Addr().String(), opts...)
	defer cl.Close()

	const workers = 8
	type result struct {
		lats []float64 // microseconds
		ops  int
		err  error
	}
	results := make([]result, workers)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delta := make([]byte, p.payload)
			for i := range delta {
				delta[i] = byte(w + i)
			}
			var seq uint64
			res := &results[w]
			for time.Now().Before(deadline) {
				seq++
				start := time.Now()
				rep, aerr := cl.Add(ctx, &proto.AddReq{
					Stripe: uint64(w), Slot: 3, Delta: delta, Premultiplied: true,
					NTID: proto.TID{Seq: seq, Block: 0, Client: proto.ClientID(w + 1)},
				})
				if aerr != nil {
					res.err = aerr
					return
				}
				if rep.Status != proto.StatusOK {
					res.err = fmt.Errorf("add status %v", rep.Status)
					return
				}
				res.lats = append(res.lats, float64(time.Since(start).Microseconds()))
				res.ops++
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start) // workers stop at the shared deadline
	var lats []float64
	totalOps := 0
	for _, r := range results {
		if r.err != nil {
			return 0, 0, 0, r.err
		}
		lats = append(lats, r.lats...)
		totalOps += r.ops
	}
	if len(lats) == 0 {
		return 0, 0, 0, fmt.Errorf("rpcwire: no completed calls in %v window", window)
	}
	sort.Float64s(lats)
	pick := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	if elapsed <= 0 {
		elapsed = window
	}
	mbps = float64(totalOps) * float64(p.payload) / elapsed.Seconds() / (1 << 20)
	return pick(0.50), pick(0.99), mbps, nil
}

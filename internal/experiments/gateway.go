package experiments

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/gateway"
	"ecstore/internal/loadgen"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

// GatewayQoSResult carries one arm+tenant's raw numbers so the
// acceptance test can pin the ratios without parsing the table.
type GatewayQoSResult struct {
	Arm    string
	Tenant string

	Offered, Completed            uint64
	Throttled, Overloaded, Errors uint64
	P50, P99                      time.Duration
	AchievedOps                   float64
	Elapsed                       time.Duration
	// BudgetOps is the tenant's QoS cap in this arm (0: unlimited).
	BudgetOps float64
}

// GatewayQoS measures the two contracts the object gateway sells:
//
//   - Overhead: the gateway's namespace, QoS accounting, and admission
//     chain must cost almost nothing next to the store itself. The same
//     open-loop Zipf(0.99) workload runs against the raw block store
//     (objects at precomputed extents) and through the gateway; the
//     acceptance bound pins the gateway's p50 within 15% of direct
//     access for 16 KiB objects.
//
//   - Isolation: a tenant offered 10x its ops/s budget must be shed
//     with typed ErrThrottled only, while a well-behaved neighbor's p99
//     stays within 1.5x of its solo baseline on the same gateway.
//
// Every storage shard pays a small deterministic ambient latency, so
// latency quantiles measure protocol work rather than scheduler noise.
func GatewayQoS(ctx context.Context, quick bool) (*Table, []GatewayQoSResult, error) {
	const (
		k, n      = 2, 4
		blockSize = 4096
		objSize   = 16 << 10
		keys      = 64
		zipfS     = 0.99
		ambient   = time.Millisecond
		rateA     = 300.0 // tenant A's offered ops/s (well within capacity)
		capB      = 150.0 // tenant B's QoS budget, ops/s
		overload  = 10.0  // B offers overload x capB
	)
	dur := 3 * time.Second
	if quick {
		dur = 1200 * time.Millisecond
	}

	t := &Table{
		ID: "gatewayqos",
		Title: fmt.Sprintf("object gateway overhead and QoS isolation (%d-of-%d, %d B blocks, %d KiB objects, Zipf(%.2f), %v ambient)",
			k, n, blockSize, objSize>>10, zipfS, ambient),
		Header: []string{"arm", "tenant", "offered", "ok", "throttled", "ops/s", "p50 ms", "p99 ms"},
		Notes: []string{
			"open-loop Poisson arrivals: sheds and queueing never slow the offered load",
			fmt.Sprintf("direct arm writes/reads the same stripe-rounded extents without the gateway"),
			fmt.Sprintf("tenant B is budgeted %.0f ops/s and offered %.0fx that; every shed must be typed ErrThrottled", capB, overload),
		},
	}

	newVol := func() (*volume.Local, error) {
		shard := 0
		return volume.NewLocal(volume.LocalOptions{
			K: k, N: n, BlockSize: blockSize, Groups: 1,
			WrapShard: func(site placement.Node, group uint64, nd proto.StorageNode) proto.StorageNode {
				shard++
				return transport.NewFaulty(nd, transport.FaultConfig{
					Seed:    int64(shard),
					Latency: ambient,
					Jitter:  100 * time.Microsecond,
				})
			},
			Obs: ObsRegistry(),
		})
	}
	tenantA := loadgen.TenantConfig{
		Name: "A", Rate: rateA, ReadFraction: 0.5, Keys: keys, ZipfS: zipfS, ObjectSize: objSize,
	}
	tenantB := loadgen.TenantConfig{
		Name: "B", Rate: capB * overload, ReadFraction: 0.5, Keys: keys, ZipfS: zipfS, ObjectSize: objSize,
	}
	baseCfg := loadgen.Config{Duration: dur, Seed: 42, Preload: true}

	var results []GatewayQoSResult
	record := func(arm string, rs []loadgen.Result) {
		for _, r := range rs {
			var budget float64
			if r.Tenant == "B" {
				budget = capB
			}
			results = append(results, GatewayQoSResult{
				Arm: arm, Tenant: r.Tenant,
				Offered: r.Offered, Completed: r.Completed,
				Throttled: r.Throttled, Overloaded: r.Overloaded, Errors: r.Errors,
				P50: r.P50, P99: r.P99, AchievedOps: r.AchievedOps,
				Elapsed: r.Elapsed, BudgetOps: budget,
			})
			t.Rows = append(t.Rows, []string{
				arm, r.Tenant,
				fmt.Sprintf("%d", r.Offered),
				fmt.Sprintf("%d", r.Completed),
				fmt.Sprintf("%d", r.Throttled),
				fcell(r.AchievedOps),
				fcell(float64(r.P50) / float64(time.Millisecond)),
				fcell(float64(r.P99) / float64(time.Millisecond)),
			})
		}
	}

	// Arm 1: the raw store, no gateway — the overhead baseline.
	{
		l, err := newVol()
		if err != nil {
			return nil, nil, err
		}
		cfg := baseCfg
		cfg.Tenants = []loadgen.TenantConfig{tenantA}
		rs, err := loadgen.Run(ctx, cfg, &loadgen.StoreTarget{
			B: l, Stripe: k, ObjectSize: objSize, Keys: keys, Tenants: []string{"A"},
		})
		if err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("direct arm: %w", err)
		}
		record("direct store, solo", rs)
		if err := l.Close(); err != nil {
			return nil, nil, err
		}
	}

	// Arm 2: through the gateway, tenant A alone, no limits — prices
	// the gateway itself and sets A's solo p99 baseline.
	{
		l, err := newVol()
		if err != nil {
			return nil, nil, err
		}
		gw := gateway.New(l, gateway.Options{Stripe: k, Obs: ObsRegistry()})
		cfg := baseCfg
		cfg.Tenants = []loadgen.TenantConfig{tenantA}
		rs, err := loadgen.Run(ctx, cfg, &loadgen.GatewayTarget{GW: gw})
		if err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("gateway solo arm: %w", err)
		}
		record("gateway, solo", rs)
		if err := l.Close(); err != nil {
			return nil, nil, err
		}
	}

	// Arm 3: the isolation contract — B floods at overload x its
	// budget while A keeps its steady load on the same gateway.
	{
		l, err := newVol()
		if err != nil {
			return nil, nil, err
		}
		// OpBurst trims the default one-second burst allowance so B's
		// window-opening herd is bounded; the budget itself is what the
		// isolation contract is about.
		gw := gateway.New(l, gateway.Options{
			Stripe:  k,
			Tenants: map[string]gateway.TenantLimit{"B": {OpsPerSec: capB, OpBurst: capB / 10}},
			Obs:     ObsRegistry(),
		})
		cfg := baseCfg
		cfg.Tenants = []loadgen.TenantConfig{tenantA, tenantB}
		rs, err := loadgen.Run(ctx, cfg, &loadgen.GatewayTarget{GW: gw})
		if err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("overload arm: %w", err)
		}
		record("gateway, B at 10x budget", rs)
		if err := l.Close(); err != nil {
			return nil, nil, err
		}
	}

	return t, results, nil
}

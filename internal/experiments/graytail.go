package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
	"ecstore/internal/volume"
)

// GrayTailResult carries the raw per-arm numbers so tests can assert
// the acceptance ratios without parsing the rendered table.
type GrayTailResult struct {
	Arm       string
	Reads     int
	P50, P99  time.Duration
	HedgeRate float64 // hedged reads / reads
	HedgeWins uint64
}

// GrayTail measures what hedged reads buy under the gray-failure
// model: every site pays a small fixed RPC latency, and one site
// turns gray with a heavy-tailed (lognormal) service time. Three arms
// run the same uniform read workload:
//
//   - fault-free, hedging on: the baseline tail, and proof that
//     hedging is quiet when nothing is wrong (hedge rate stays small).
//   - one gray site, hedging off: the tail the paper's protocol
//     suffers — a quarter of reads wait out the gray node's full
//     lognormal draw.
//   - one gray site, hedging on: the hedge fires after its delay and
//     reconstructs from the healthy k, collapsing the tail back to
//     within a small factor of fault-free.
func GrayTail(ctx context.Context, quick bool) (*Table, []GrayTailResult, error) {
	const (
		k, n      = 2, 4
		blockSize = 1024
		ambient   = 2 * time.Millisecond // every call pays this
	)
	reads := 2000
	if quick {
		reads = 400
	}
	tail := &transport.TailLatency{Median: 10 * time.Millisecond, Sigma: 1.5}
	hedge := core.HedgePolicy{After: 3500 * time.Microsecond, Budget: 0.5}

	t := &Table{
		ID: "graytail",
		Title: fmt.Sprintf("gray-site read tail: hedged vs unhedged (%d-of-%d, %v ambient, lognormal gray median %v sigma %.1f)",
			k, n, ambient, tail.Median, tail.Sigma),
		Header: []string{"arm", "reads", "p50 ms", "p99 ms", "hedge rate", "hedge wins"},
		Notes: []string{
			"one of the four sites serves every call through a lognormal delay while gray",
			"hedged reads race a speculative reconstruction from the healthy k after the hedge delay",
			fmt.Sprintf("hedge budget %.1f tokens/read bounds speculative load; fault-free arm shows the quiet cost", hedge.Budget),
		},
	}

	arms := []struct {
		name   string
		gray   bool
		hedged bool
	}{
		{"fault-free, hedged", false, true},
		{"gray site, unhedged", true, false},
		{"gray site, hedged", true, true},
	}
	var results []GrayTailResult
	for _, arm := range arms {
		wrappers := make(map[string]*transport.Faulty)
		pol := core.HedgePolicy{}
		if arm.hedged {
			pol = hedge
		}
		l, err := volume.NewLocal(volume.LocalOptions{
			K: k, N: n, BlockSize: blockSize,
			Groups: 1, Sites: n, BlocksPerGroup: 8,
			RetryDelay: 50 * time.Microsecond,
			Hedge:      pol,
			WrapShard: func(site placement.Node, group uint64, nd proto.StorageNode) proto.StorageNode {
				w := transport.NewFaulty(nd, transport.FaultConfig{
					Seed:     int64(len(wrappers) + 1),
					Latency:  ambient,
					Jitter:   200 * time.Microsecond,
					GrayTail: tail,
				})
				wrappers[site.ID] = w
				return w
			},
			Obs: ObsRegistry(),
		})
		if err != nil {
			return nil, nil, err
		}

		buf := make([]byte, blockSize)
		for addr := uint64(0); addr < l.Capacity(); addr++ {
			for i := range buf {
				buf[i] = byte(addr*131 + uint64(i)*7)
			}
			if err := l.WriteBlock(ctx, addr, buf); err != nil {
				return nil, nil, err
			}
		}
		if arm.gray {
			sites, err := l.GroupSites(0)
			if err != nil {
				return nil, nil, err
			}
			// Gray the site at physical slot 0 — one of the n sites;
			// the uniform workload's primary reads hit it for ~1/n of
			// the addresses.
			if w := wrappers[sites[0].ID]; w != nil {
				w.SetGray(true)
			}
		}

		lat := make([]time.Duration, 0, reads)
		for i := 0; i < reads; i++ {
			addr := uint64(i) % l.Capacity()
			start := time.Now()
			got, err := l.ReadBlock(ctx, addr)
			lat = append(lat, time.Since(start))
			if err != nil {
				return nil, nil, fmt.Errorf("%s: read %d: %w", arm.name, i, err)
			}
			for bi := range buf {
				buf[bi] = byte(addr*131 + uint64(bi)*7)
			}
			if !bytes.Equal(got, buf) {
				return nil, nil, fmt.Errorf("%s: read %d returned wrong data", arm.name, i)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res := GrayTailResult{
			Arm:   arm.name,
			Reads: reads,
			P50:   lat[len(lat)/2],
			P99:   lat[len(lat)*99/100],
		}
		if st := l.GroupStats(0); st != nil {
			res.HedgeRate = float64(st.HedgedReads.Load()) / float64(reads)
			res.HedgeWins = st.HedgeWins.Load()
		}
		results = append(results, res)
		t.Rows = append(t.Rows, []string{
			arm.name,
			fmt.Sprintf("%d", reads),
			fcell(float64(res.P50) / float64(time.Millisecond)),
			fcell(float64(res.P99) / float64(time.Millisecond)),
			fcell(res.HedgeRate),
			fmt.Sprintf("%d", res.HedgeWins),
		})
		if err := l.Close(); err != nil {
			return nil, nil, err
		}
	}
	return t, results, nil
}

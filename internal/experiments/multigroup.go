package experiments

import (
	"context"
	"fmt"
	"time"

	"ecstore/internal/volume"
)

// MultiGroup measures what sharding the store into rendezvous-placed
// stripe groups buys over one monolithic group: placement balance
// across the pool, and the blast radius of a single site failure (the
// fraction of groups disturbed, which rendezvous hashing keeps at
// roughly n/sites instead of 1).
func MultiGroup(ctx context.Context, quick bool) (*Table, error) {
	const (
		k, n      = 2, 4
		sites     = 12
		blockSize = 1024
	)
	blocksPerGroup := uint64(64)
	if quick {
		blocksPerGroup = 16
	}

	t := &Table{
		ID:    "multigroup",
		Title: fmt.Sprintf("sharded volume over a %d-site pool (%d-of-%d groups)", sites, k, n),
		Header: []string{
			"groups", "site load min/max", "write MB/s", "read MB/s",
			"groups hit by 1 crash", "recovered",
		},
		Notes: []string{
			"site load: stripe-group slots hosted per site (rendezvous placement)",
			"groups hit: groups whose site set contains the crashed site; only those remap",
		},
	}

	for _, groups := range []int{1, 4, 16} {
		l, err := volume.NewLocal(volume.LocalOptions{
			K: k, N: n, BlockSize: blockSize,
			Groups:         groups,
			Sites:          sites,
			BlocksPerGroup: blocksPerGroup,
			RetryDelay:     50 * time.Microsecond,
			Obs:            ObsRegistry(),
		})
		if err != nil {
			return nil, err
		}

		capacity := l.Capacity()
		buf := make([]byte, blockSize)
		start := time.Now()
		for addr := uint64(0); addr < capacity; addr++ {
			buf[0] = byte(addr)
			if err := l.WriteBlock(ctx, addr, buf); err != nil {
				return nil, err
			}
		}
		writeMBs := mbs(capacity, blockSize, time.Since(start))
		start = time.Now()
		for addr := uint64(0); addr < capacity; addr++ {
			if _, err := l.ReadBlock(ctx, addr); err != nil {
				return nil, err
			}
		}
		readMBs := mbs(capacity, blockSize, time.Since(start))

		// Placement balance: slots hosted per site.
		load := make(map[string]int, sites)
		victim := ""
		for g := 0; g < groups; g++ {
			gs, err := l.GroupSites(uint64(g))
			if err != nil {
				return nil, err
			}
			for _, s := range gs {
				load[s.ID]++
			}
			if g == 0 {
				victim = gs[0].ID
			}
		}
		minLoad, maxLoad := -1, 0
		for _, c := range load {
			if minLoad < 0 || c < minLoad {
				minLoad = c
			}
			if c > maxLoad {
				maxLoad = c
			}
		}

		hit := 0
		for g := 0; g < groups; g++ {
			gs, err := l.GroupSites(uint64(g))
			if err != nil {
				return nil, err
			}
			for _, s := range gs {
				if s.ID == victim {
					hit++
					break
				}
			}
		}

		// Crash the site and verify every block survives.
		l.CrashSite(victim)
		recovered := true
		for addr := uint64(0); addr < capacity; addr++ {
			got, err := l.ReadBlock(ctx, addr)
			if err != nil || got[0] != byte(addr) {
				recovered = false
				break
			}
		}

		t.Rows = append(t.Rows, []string{
			icell(groups),
			fmt.Sprintf("%d/%d", minLoad, maxLoad),
			fcell(writeMBs),
			fcell(readMBs),
			fmt.Sprintf("%d of %d", hit, groups),
			fmt.Sprintf("%v", recovered),
		})
		if err := l.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func mbs(blocks uint64, blockSize int, d time.Duration) float64 {
	return float64(blocks) * float64(blockSize) / (1 << 20) / d.Seconds()
}

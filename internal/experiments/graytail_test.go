package experiments

import (
	"context"
	"testing"
	"time"
)

// TestGrayTailAcceptance encodes the tail-tolerance acceptance bounds:
// with one gray site, the unhedged p99 blows up by an order of
// magnitude over fault-free while the hedged p99 stays within a small
// factor of it, and the fault-free arm hedges on at most ~10% of
// reads. The wall-clock ratios are skipped under the race detector —
// its 5-20x slowdown swamps the injected latencies.
func TestGrayTailAcceptance(t *testing.T) {
	_, res, err := GrayTail(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("arms = %d, want 3", len(res))
	}
	base, unhedged, hedged := res[0], res[1], res[2]
	if base.HedgeRate > 0.10+1e-9 {
		t.Fatalf("fault-free hedge rate = %.3f, want <= 0.10", base.HedgeRate)
	}
	if hedged.HedgeWins == 0 {
		t.Fatal("gray hedged arm never won a hedge")
	}
	if raceEnabled {
		t.Logf("skipping latency ratios under -race: base p99 %v, unhedged %v, hedged %v",
			base.P99, unhedged.P99, hedged.P99)
		return
	}
	if unhedged.P99 < 10*base.P99 {
		t.Fatalf("unhedged gray p99 = %v, want >= 10x fault-free %v", unhedged.P99, base.P99)
	}
	if hedged.P99 > 3*base.P99 {
		t.Fatalf("hedged gray p99 = %v, want <= 3x fault-free %v", hedged.P99, base.P99)
	}
	if hedged.P99 >= unhedged.P99 {
		t.Fatal("hedging did not improve the gray tail at all")
	}
	if base.P99 > 20*time.Millisecond {
		t.Fatalf("fault-free p99 = %v, implausibly slow for 1ms ambient", base.P99)
	}
}

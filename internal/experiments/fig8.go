package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/resilience"
)

// timeOp measures the average duration of one call to fn, running it
// repeatedly for at least minDur (with a warm-up pass).
func timeOp(minDur time.Duration, fn func()) time.Duration {
	fn() // warm up
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minDur {
			return elapsed / time.Duration(iters)
		}
		if elapsed <= 0 {
			iters *= 1000
			continue
		}
		// Scale the iteration count toward the budget.
		iters = int(float64(iters)*float64(minDur)/float64(elapsed)) + 1
	}
}

func usCell(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3) }

// codeTimes measures the Fig. 8 microbenchmark columns for one code:
// Delta (client-side subtract+multiply of a block), Add (node-side
// XOR), and full stripe encode/decode.
func codeTimes(code *erasure.Code, blockSize int, budget time.Duration) (delta, add, encode, decode time.Duration) {
	rng := rand.New(rand.NewSource(7))
	v := make([]byte, blockSize)
	w := make([]byte, blockSize)
	rng.Read(v)
	rng.Read(w)
	delta = timeOp(budget, func() { _ = code.Delta(code.K(), 0, v, w) })

	dst := make([]byte, blockSize)
	add = timeOp(budget, func() { gf.AddSlice(dst, v) })

	data := make([][]byte, code.K())
	for i := range data {
		data[i] = make([]byte, blockSize)
		rng.Read(data[i])
	}
	parity := make([][]byte, code.P())
	for i := range parity {
		parity[i] = make([]byte, blockSize)
	}
	encode = timeOp(budget, func() { code.EncodeInto(parity, data) })

	stripe, _ := code.EncodeStripe(data)
	decode = timeOp(budget, func() {
		work := make([][]byte, code.N())
		// Erase the p data blocks with the highest indices: a worst
		// case that forces a real matrix inversion.
		for i := range stripe {
			if i >= code.K()-code.P() && i < code.K() {
				continue
			}
			work[i] = stripe[i]
		}
		if err := code.Reconstruct(work); err != nil {
			panic(err)
		}
	})
	return delta, add, encode, decode
}

// Fig8a reproduces Fig. 8(a): the erasure codes used for 4-7 storage
// nodes, their failure resiliency, and their computation times for the
// given block size (the paper uses 1 KB).
func Fig8a(blockSize int, budget time.Duration) (*Table, error) {
	t := &Table{
		ID:    "fig8a",
		Title: fmt.Sprintf("erasure codes for 4-7 storage nodes, %d-byte blocks", blockSize),
		Header: []string{
			"code", "resiliency (serial upd)", "Delta (us)", "Add (us)",
			"full encode (us)", "full decode (us)",
		},
	}
	shapes := [][2]int{{2, 4}, {3, 5}, {2, 5}, {4, 6}, {3, 6}, {5, 7}, {4, 7}, {3, 7}}
	for _, s := range shapes {
		code, err := erasure.New(s[0], s[1])
		if err != nil {
			return nil, err
		}
		delta, add, enc, dec := codeTimes(code, blockSize, budget)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-of-%d", s[0], s[1]),
			resilience.ResiliencyString(resilience.Serial, s[1]-s[0]),
			usCell(delta), usCell(add), usCell(enc), usCell(dec),
		})
	}
	t.Notes = append(t.Notes,
		"resiliency strings list tolerated (client,storage) crash combinations, e.g. 1c1s",
		"Delta and Add are the only computations on the common-case write path")
	return t, nil
}

// Fig8b reproduces Fig. 8(b): computation time versus k for the larger
// codes used in the simulations. Full encode grows with k while
// Delta+Add stays flat — the property that lets the protocol scale to
// highly-efficient codes.
func Fig8b(blockSize int, budget time.Duration) (*Table, error) {
	t := &Table{
		ID:     "fig8b",
		Title:  fmt.Sprintf("computation time vs code size, %d-byte blocks", blockSize),
		Header: []string{"code", "full encode (us)", "Delta+Add (us)"},
	}
	shapes := [][2]int{{2, 4}, {4, 6}, {4, 8}, {6, 10}, {8, 12}, {8, 16}, {12, 20}, {16, 24}, {16, 32}}
	for _, s := range shapes {
		code, err := erasure.New(s[0], s[1])
		if err != nil {
			return nil, err
		}
		delta, add, enc, _ := codeTimes(code, blockSize, budget)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-of-%d", s[0], s[1]),
			usCell(enc),
			usCell(delta + add),
		})
	}
	t.Notes = append(t.Notes, "full encode is used only by recovery; common-case writes pay Delta+Add")
	return t, nil
}

// Fig8c reproduces Fig. 8(c): tolerated client and storage crash
// combinations as a function of the redundancy p = n-k, for both the
// serial and parallel update disciplines. The table depends only on p,
// not on n or k individually.
func Fig8c(maxP int) *Table {
	t := &Table{
		ID:     "fig8c",
		Title:  "tolerated (client, storage) crash combinations vs redundancy",
		Header: []string{"p = n-k", "serial updates", "parallel updates", "hybrid write latency (RTs, tp=1)"},
	}
	for p := 1; p <= maxP; p++ {
		t.Rows = append(t.Rows, []string{
			icell(p),
			resilience.ResiliencyString(resilience.Serial, p),
			resilience.ResiliencyString(resilience.Parallel, p),
			icell(resilience.WriteLatency(resilience.Hybrid, p, 1)),
		})
	}
	t.Notes = append(t.Notes, "depends only on p = n-k (Theorems 1-2, Corollary 1)")
	return t
}

package experiments

import (
	"context"
	"strconv"
	"testing"
)

// TestRPCWireQuick smoke-runs the rpcwire experiment at the quick
// window and sanity-checks its shape; the shaped striped-vs-single
// ratio itself is gated (with a proper window) by rpc's
// TestStripedThroughputAcceptance.
func TestRPCWireQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := RPCWire(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rpcwire produced %d rows, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mbps, err := strconv.ParseFloat(row[5], 64)
		if err != nil || mbps <= 0 {
			t.Fatalf("row %v: bad throughput %q (%v)", row, row[5], err)
		}
		if _, err := strconv.ParseFloat(row[3], 64); err != nil {
			t.Fatalf("row %v: bad p50 %q", row, row[3])
		}
	}
}

package experiments

import (
	"context"
	"testing"
	"time"
)

// TestGatewayQoSAcceptance pins the issue's acceptance bounds: gateway
// p50 overhead <= 15% over direct store access for 16 KiB objects, and
// a tenant at 10x its budget shed with typed ErrThrottled only while
// the polite neighbor's p99 stays <= 1.5x its solo baseline.
func TestGatewayQoSAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance experiment is seconds-long")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	tbl, rs, err := GatewayQoS(ctx, true)
	if err != nil {
		t.Fatalf("GatewayQoS: %v", err)
	}
	if tbl == nil || len(tbl.Rows) != len(rs) {
		t.Fatalf("table rows %v vs %d results", tbl, len(rs))
	}
	if len(rs) != 4 {
		t.Fatalf("want 4 arm results (direct A, gateway A, mixed A, mixed B), got %d", len(rs))
	}
	direct, gwSolo, mixedA, mixedB := rs[0], rs[1], rs[2], rs[3]
	if direct.Tenant != "A" || gwSolo.Tenant != "A" || mixedA.Tenant != "A" || mixedB.Tenant != "B" {
		t.Fatalf("unexpected tenant order: %q %q %q %q", direct.Tenant, gwSolo.Tenant, mixedA.Tenant, mixedB.Tenant)
	}

	// Structural facts hold regardless of scheduler noise.
	for _, r := range []GatewayQoSResult{direct, gwSolo, mixedA} {
		if r.Completed == 0 || r.P50 <= 0 {
			t.Fatalf("arm %q tenant %q measured nothing: %+v", r.Arm, r.Tenant, r)
		}
		if r.Throttled != 0 || r.Errors != 0 {
			t.Errorf("arm %q tenant %q: unexpected sheds/errors: %+v", r.Arm, r.Tenant, r)
		}
	}
	// The overloaded tenant must shed — and shed typed, never as a
	// plain error — while still completing its budgeted share.
	if mixedB.Throttled == 0 {
		t.Errorf("tenant B at 10x budget was never throttled: %+v", mixedB)
	}
	if mixedB.Errors != 0 || mixedB.Overloaded != 0 {
		t.Errorf("tenant B sheds must all be typed ErrThrottled: %+v", mixedB)
	}
	if mixedB.Completed == 0 {
		t.Errorf("tenant B should still complete its budgeted share: %+v", mixedB)
	}
	// Post-paid buckets admit at most budget*elapsed plus one burst
	// (a second's worth of budget); the cap must bind even over short
	// windows once that initial allowance is accounted for.
	ceiling := mixedB.BudgetOps*mixedB.Elapsed.Seconds() + mixedB.BudgetOps + 20
	if float64(mixedB.Completed) > ceiling {
		t.Errorf("tenant B completed %d ops in %v against a %.0f ops/s budget (ceiling %.0f)",
			mixedB.Completed, mixedB.Elapsed, mixedB.BudgetOps, ceiling)
	}

	if raceEnabled {
		t.Logf("race detector on: skipping wall-clock ratio bounds (overhead %.3f, p99 ratio %.3f)",
			float64(gwSolo.P50)/float64(direct.P50), float64(mixedA.P99)/float64(gwSolo.P99))
		return
	}

	// Acceptance bound 1: gateway p50 overhead <= 15% over direct.
	overhead := float64(gwSolo.P50) / float64(direct.P50)
	t.Logf("p50 direct %v, gateway %v, overhead %.3fx", direct.P50, gwSolo.P50, overhead)
	if overhead > 1.15 {
		t.Errorf("gateway p50 overhead %.3fx > 1.15x (direct %v, gateway %v)", overhead, direct.P50, gwSolo.P50)
	}
	// Acceptance bound 2: the polite tenant's p99 with an overloaded
	// neighbor stays within 1.5x of its solo baseline.
	iso := float64(mixedA.P99) / float64(gwSolo.P99)
	t.Logf("tenant A p99 solo %v, with overloaded neighbor %v, ratio %.3fx", gwSolo.P99, mixedA.P99, iso)
	if iso > 1.5 {
		t.Errorf("tenant A p99 ratio %.3fx > 1.5x (solo %v, mixed %v)", iso, gwSolo.P99, mixedA.P99)
	}
}

package volume

import (
	"fmt"
	"sync"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/erasure"
	"ecstore/internal/health"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/storage"
)

// LocalOptions configures an in-process sharded volume.
type LocalOptions struct {
	// K, N, BlockSize as in Options. Required.
	K, N, BlockSize int
	// Groups is the stripe-group count. Required.
	Groups int
	// Sites is the physical pool size. Defaults to N; must be >= N.
	Sites int
	// SiteWeights optionally assigns per-site placement weights
	// (len must equal Sites; zero entries mean weight 1).
	SiteWeights []float64
	// BlocksPerGroup, MaxInFlight, ReadAhead, Mode, TP, ClientID,
	// Multicast, RetryDelay, Retry, Obs as in Options.
	BlocksPerGroup uint64
	MaxInFlight    int
	ReadAhead      int
	Mode           resilience.UpdateMode
	TP             int
	ClientID       proto.ClientID
	Multicast      proto.Multicaster
	// Aggregate enables bandwidth-frugal recovery (see Options).
	Aggregate  proto.Aggregator
	RetryDelay time.Duration
	Retry      core.RetryPolicy
	// Hedge, Health enable tail-tolerant reads and per-site health
	// tracking (see Options).
	Hedge  core.HedgePolicy
	Health *health.Tracker
	// OnDamage is the repair scheduler's fast-path damage feed (see
	// Options.OnDamage).
	OnDamage func(group uint64)
	// LockLease configures lease-based lock expiry on every shard.
	LockLease time.Duration
	Obs       *obs.Registry
	// WrapShard optionally wraps every shard handle the volume opens
	// (latency models, fault injection, counting). It sees the site and
	// group the shard serves.
	WrapShard func(site placement.Node, group uint64, n proto.StorageNode) proto.StorageNode
}

// Local is a Volume over an in-process site pool. Each site hosts one
// independent storage.Node shard per stripe group placed on it, so a
// site crash takes down exactly the groups it serves and nothing else.
type Local struct {
	*Volume
	pool *placement.Pool

	mu    sync.Mutex
	sites map[string]*localSite
	gen   map[string]int // replacement generation per site, for shard IDs

	code  *erasure.Code
	lopts LocalOptions
}

// localSite is one physical host: a set of per-group shards that
// crash together.
type localSite struct {
	mu      sync.Mutex
	crashed bool
	shards  map[uint64]*storage.Node
}

// NewLocal builds an in-process sharded volume with Sites hosts named
// "site-0".."site-<S-1>".
func NewLocal(opts LocalOptions) (*Local, error) {
	if opts.Sites == 0 {
		opts.Sites = opts.N
	}
	if opts.Sites < opts.N {
		return nil, fmt.Errorf("volume: %d sites cannot host %d-node groups", opts.Sites, opts.N)
	}
	if opts.SiteWeights != nil && len(opts.SiteWeights) != opts.Sites {
		return nil, fmt.Errorf("volume: %d weights for %d sites", len(opts.SiteWeights), opts.Sites)
	}
	members := make([]placement.Node, opts.Sites)
	for i := range members {
		members[i] = placement.Node{ID: fmt.Sprintf("site-%d", i)}
		if opts.SiteWeights != nil {
			members[i].Weight = opts.SiteWeights[i]
		}
	}
	pool, err := placement.NewPool(members...)
	if err != nil {
		return nil, err
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	l := &Local{
		pool:  pool,
		sites: make(map[string]*localSite),
		gen:   make(map[string]int),
		code:  code,
		lopts: opts,
	}
	v, err := New(Options{
		K: opts.K, N: opts.N, BlockSize: opts.BlockSize,
		Groups:         opts.Groups,
		BlocksPerGroup: opts.BlocksPerGroup,
		MaxInFlight:    opts.MaxInFlight,
		ReadAhead:      opts.ReadAhead,
		Pool:           pool,
		OpenShard:      l.openShard,
		ClientID:       opts.ClientID,
		Mode:           opts.Mode,
		TP:             opts.TP,
		Multicast:      opts.Multicast,
		Aggregate:      opts.Aggregate,
		RetryDelay:     opts.RetryDelay,
		Retry:          opts.Retry,
		Hedge:          opts.Hedge,
		Health:         opts.Health,
		OnDamage:       opts.OnDamage,
		Obs:            opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	l.Volume = v
	return l, nil
}

// Pool exposes the placement pool (admin add/remove, epoch).
func (l *Local) Pool() *placement.Pool { return l.pool }

func (l *Local) site(id string) *localSite {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.sites[id]
	if !ok {
		s = &localSite{shards: make(map[uint64]*storage.Node)}
		l.sites[id] = s
	}
	return s
}

// openShard implements Options.OpenShard over in-memory nodes. A
// replacement request always provisions a fresh INIT shard; reopening
// an existing (site, group) pairing returns the live shard.
func (l *Local) openShard(site placement.Node, group uint64, replacement bool) (proto.StorageNode, error) {
	s := l.site(site.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.shards[group]; ok && !replacement {
		return l.wrapShard(site, group, sh), nil
	}
	l.mu.Lock()
	l.gen[site.ID]++
	gen := l.gen[site.ID]
	l.mu.Unlock()
	node, err := storage.New(storage.Options{
		ID:          fmt.Sprintf("%s/g%d.%d", site.ID, group, gen),
		BlockSize:   l.lopts.BlockSize,
		Code:        l.code,
		Replacement: replacement,
		LockLease:   l.lopts.LockLease,
		GarbageSeed: int64(group)<<16 | int64(gen),
	})
	if err != nil {
		return nil, err
	}
	if s.crashed {
		node.Crash()
	}
	s.shards[group] = node
	return l.wrapShard(site, group, node), nil
}

// wrapShard applies the configured WrapShard hook, if any.
func (l *Local) wrapShard(site placement.Node, group uint64, n proto.StorageNode) proto.StorageNode {
	if l.lopts.WrapShard == nil {
		return n
	}
	return l.lopts.WrapShard(site, group, n)
}

// CrashSite fail-stops every shard on a site. Groups placed on it
// discover the crash on their next access, report it, and the volume
// retires the site and remaps only those groups' affected slots.
func (l *Local) CrashSite(id string) {
	s := l.site(id)
	s.mu.Lock()
	s.crashed = true
	shards := make([]*storage.Node, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	for _, sh := range shards {
		sh.Crash()
	}
}

// AddSite grows the pool (epoch bump); groups lazily rebalance onto
// the new site on their next access.
func (l *Local) AddSite(id string, weight float64) error {
	return l.pool.Add(placement.Node{ID: id, Weight: weight})
}

// RemoveSite drains a live site administratively (epoch bump). Groups
// using it remap to INIT shards elsewhere and recovery rebuilds the
// moved slots from surviving ones.
func (l *Local) RemoveSite(id string) error {
	return l.pool.Remove(id)
}

// SiteShard returns the current shard a site holds for a group, or
// nil (test inspection).
func (l *Local) SiteShard(id string, group uint64) *storage.Node {
	l.mu.Lock()
	s, ok := l.sites[id]
	l.mu.Unlock()
	if !ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[group]
}

// Close shuts down every shard.
func (l *Local) Close() error {
	l.mu.Lock()
	sites := make([]*localSite, 0, len(l.sites))
	for _, s := range l.sites {
		sites = append(sites, s)
	}
	l.mu.Unlock()
	var first error
	for _, s := range sites {
		s.mu.Lock()
		for _, sh := range s.shards {
			if err := sh.Shutdown(); err != nil && first == nil {
				first = err
			}
		}
		s.mu.Unlock()
	}
	return first
}

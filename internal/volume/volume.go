// Package volume scales the AJX protocol past a single stripe group.
//
// The paper defines the protocol over one k-of-n group: one directory,
// one set of n nodes. A Volume multiplexes G such groups over a larger
// physical node pool: a flat block address space is split into
// contiguous group-sized extents (group = addr / BlocksPerGroup), each
// group is deterministically assigned n distinct pool sites by
// weighted rendezvous hashing (internal/placement), and every group
// runs the unmodified per-group machinery — its own directory.Service
// and core.Client — over its assigned sites.
//
// Stripe IDs are namespaced per group (group in the high bits) so two
// groups sharing a physical site never collide in its block store.
//
// Placement resolutions are cached per group and tagged with the
// pool's membership epoch; a pool change (add, remove, failure)
// invalidates lazily on the next access, and only the slots whose site
// actually changed are remapped — the rendezvous hash's minimal-
// movement property keeps that set small. A remapped slot gets a fresh
// INIT shard on its new site, and the paper's Section 3.5 recovery
// path rebuilds the lost blocks online, exactly as it would after a
// single-group node replacement.
package volume

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/bulk"
	"ecstore/internal/core"
	"ecstore/internal/directory"
	"ecstore/internal/erasure"
	"ecstore/internal/health"
	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/stripe"
)

// groupShift positions the group ID in the high bits of a stripe ID.
// Local stripe numbers keep the low 40 bits (a trillion stripes per
// group); group IDs get the high 24.
const groupShift = 40

// Options configures a Volume.
type Options struct {
	// K, N are the per-group erasure code parameters. Required.
	K, N int
	// BlockSize in bytes. Required.
	BlockSize int
	// Groups is the number of stripe groups G. Required (>= 1).
	Groups int
	// BlocksPerGroup sizes each group's extent of the flat address
	// space. Must be a multiple of K (stripes never straddle groups).
	// Defaults to K << 20.
	BlocksPerGroup uint64
	// Pool is the physical site membership groups are placed over.
	// Required; it must hold at least N sites.
	Pool *placement.Pool
	// OpenShard returns the storage handle for one group's slot on a
	// site. Required. With replacement=true the handle must behave as
	// a fresh INIT node (paper Section 3.5) — deployments that cannot
	// provision INIT shards (plain TCP fan-out) should return an error,
	// which leaves the old mapping in place.
	OpenShard func(site placement.Node, group uint64, replacement bool) (proto.StorageNode, error)
	// NoRemap disables failure-driven site retirement: a dead site
	// stays mapped and clients keep erroring (degraded reads still
	// work). Administrative pool changes still refresh placements.
	NoRemap bool
	// OnDamage, when set, is called (possibly concurrently) with a
	// group ID every time a failure report retires one of the group's
	// sites — the repair scheduler's fast path. It must not block.
	OnDamage func(group uint64)

	// MaxInFlight bounds the bulk-I/O window in stripes (see
	// bulk.Options). Zero means the engine default; 1 degrades to the
	// strictly sequential path.
	MaxInFlight int
	// ReadAhead is the streaming Reader's prefetch depth in stripes.
	// Zero means MaxInFlight.
	ReadAhead int

	// ClientID identifies this volume's protocol clients. Defaults 1.
	ClientID proto.ClientID
	// Mode, TP, Multicast, Aggregate, RetryDelay, Retry configure each
	// group's core.Client exactly as in core.Config. Aggregate enables
	// bandwidth-frugal recovery through partial sums.
	Mode       resilience.UpdateMode
	TP         int
	Multicast  proto.Multicaster
	Aggregate  proto.Aggregator
	RetryDelay time.Duration
	Retry      core.RetryPolicy
	// Hedge enables speculative reads against gray sites (see
	// core.HedgePolicy). Zero disables hedging.
	Hedge core.HedgePolicy
	// Health, when set, wraps every shard handle the volume opens so
	// calls feed per-site latency/error records: slot selection is
	// biased away from gray sites, hedge delays adapt to each site's
	// observed tail, and a per-site circuit breaker fails calls fast
	// while a site is down. Pair its OnQuarantine callback with
	// RetireSite to treat persistent grayness like a crash.
	Health *health.Tracker
	// Obs collects metrics across every layer: placement resolves,
	// per-group directories (aggregated), protocol clients, and the
	// volume's own routing counters.
	Obs *obs.Registry
}

func (o *Options) validate() error {
	switch {
	case o.K < 1 || o.N <= o.K:
		return fmt.Errorf("volume: invalid code K=%d N=%d", o.K, o.N)
	case o.BlockSize <= 0:
		return fmt.Errorf("volume: BlockSize must be positive, got %d", o.BlockSize)
	case o.Groups < 1:
		return fmt.Errorf("volume: Groups must be >= 1, got %d", o.Groups)
	case o.Groups >= 1<<(64-groupShift):
		return fmt.Errorf("volume: Groups %d exceeds the %d-bit namespace", o.Groups, 64-groupShift)
	case o.Pool == nil:
		return errors.New("volume: Pool is required")
	case o.OpenShard == nil:
		return errors.New("volume: OpenShard is required")
	}
	if o.BlocksPerGroup == 0 {
		o.BlocksPerGroup = uint64(o.K) << 20
	}
	if o.BlocksPerGroup%uint64(o.K) != 0 {
		return fmt.Errorf("volume: BlocksPerGroup %d must be a multiple of K=%d", o.BlocksPerGroup, o.K)
	}
	if o.BlocksPerGroup/uint64(o.K) > 1<<groupShift {
		return fmt.Errorf("volume: BlocksPerGroup %d exceeds %d stripes per group", o.BlocksPerGroup, uint64(1)<<groupShift)
	}
	if o.ClientID == 0 {
		o.ClientID = 1
	}
	return nil
}

// Volume routes a flat block address space across G stripe groups.
// It is safe for concurrent use.
type Volume struct {
	opts   Options
	code   *erasure.Code
	layout stripe.Layout
	engine *bulk.Engine

	mu     sync.Mutex
	groups map[uint64]*group

	groupInits    *obs.Counter
	remappedSlots *obs.Counter
	refreshErrors *obs.Counter
}

// New builds a volume. Groups are instantiated lazily on first access,
// so a freshly built volume costs nothing per group.
func New(opts Options) (*Volume, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(opts.K, opts.N)
	if err != nil {
		return nil, err
	}
	v := &Volume{
		opts:   opts,
		code:   code,
		layout: stripe.MustLayout(opts.K, opts.N),
		groups: make(map[uint64]*group),
	}
	if reg := opts.Obs; reg != nil {
		opts.Pool.Instrument(reg)
		v.groupInits = reg.Counter("volume.group_inits")
		v.remappedSlots = reg.Counter("volume.remapped_slots")
		v.refreshErrors = reg.Counter("volume.refresh_errors")
		reg.Func("volume.groups_active", func() int64 {
			v.mu.Lock()
			defer v.mu.Unlock()
			return int64(len(v.groups))
		})
	}
	v.engine = bulk.New((*volumeTarget)(v), bulk.Options{
		MaxInFlight: opts.MaxInFlight,
		ReadAhead:   opts.ReadAhead,
		Obs:         opts.Obs,
	})
	return v, nil
}

// BlockSize returns the volume's block size in bytes.
func (v *Volume) BlockSize() int { return v.opts.BlockSize }

// Groups returns the configured group count G.
func (v *Volume) Groups() int { return v.opts.Groups }

// Capacity returns the number of addressable blocks (G * BlocksPerGroup).
func (v *Volume) Capacity() uint64 {
	return uint64(v.opts.Groups) * v.opts.BlocksPerGroup
}

// locate routes a flat block address to its owning group and the
// group-namespaced (stripe, slot) pair.
func (v *Volume) locate(addr uint64) (g uint64, stripeID uint64, slot int, err error) {
	g = addr / v.opts.BlocksPerGroup
	if g >= uint64(v.opts.Groups) {
		return 0, 0, 0, fmt.Errorf("volume: address %d beyond capacity %d: %w", addr, v.Capacity(), bulk.ErrOutOfRange)
	}
	local := addr % v.opts.BlocksPerGroup
	ls, slot := v.layout.Locate(local)
	return g, g<<groupShift | ls, slot, nil
}

// ReadBlock reads one block of the flat address space.
func (v *Volume) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	g, stripeID, slot, err := v.locate(addr)
	if err != nil {
		return nil, err
	}
	grp, err := v.group(g)
	if err != nil {
		return nil, err
	}
	return grp.cl.ReadBlock(ctx, stripeID, slot)
}

// WriteBlock writes one block. data must be exactly BlockSize bytes.
func (v *Volume) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	g, stripeID, slot, err := v.locate(addr)
	if err != nil {
		return err
	}
	grp, err := v.group(g)
	if err != nil {
		return err
	}
	return grp.cl.WriteBlock(ctx, stripeID, slot, data)
}

// ReadBlockStamped reads one block together with the newest write
// identifier the serving node held (see core.ReadStamp); the tier
// layer's read cache fills from primary stamped replies only.
func (v *Volume) ReadBlockStamped(ctx context.Context, addr uint64) ([]byte, core.ReadStamp, error) {
	g, stripeID, slot, err := v.locate(addr)
	if err != nil {
		return nil, core.ReadStamp{}, err
	}
	grp, err := v.group(g)
	if err != nil {
		return nil, core.ReadStamp{}, err
	}
	return grp.cl.ReadBlockStamped(ctx, stripeID, slot)
}

// WriteBlockStamped writes one block, returning the write's identifier
// and that of the write it was serialized directly after.
func (v *Volume) WriteBlockStamped(ctx context.Context, addr uint64, data []byte) (ntid, otid proto.TID, err error) {
	g, stripeID, slot, err := v.locate(addr)
	if err != nil {
		return proto.TID{}, proto.TID{}, err
	}
	grp, err := v.group(g)
	if err != nil {
		return proto.TID{}, proto.TID{}, err
	}
	return grp.cl.WriteBlockStamped(ctx, stripeID, slot, data)
}

// BulkTarget exposes the volume's raw (cache- and tier-free) bulk
// target. The dynamic type also implements the tier layer's Stamped
// interface; facades compose a tier.Layer over it.
func (v *Volume) BulkTarget() bulk.Target { return (*volumeTarget)(v) }

// Recover forces recovery of the stripe containing addr. A recovery
// already running elsewhere is not an error.
func (v *Volume) Recover(ctx context.Context, addr uint64) error {
	g, stripeID, _, err := v.locate(addr)
	if err != nil {
		return err
	}
	grp, err := v.group(g)
	if err != nil {
		return err
	}
	if err := grp.cl.Recover(ctx, stripeID); err != nil && !errors.Is(err, core.ErrRecoveryBusy) {
		return err
	}
	return nil
}

// ReadAt reads len(p) bytes at byte offset off through the pipelined
// bulk engine, spanning blocks and groups as needed. Reads past the
// volume's capacity are truncated and return io.EOF with the partial
// count.
func (v *Volume) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.engine.ReadAt(ctx, p, off)
}

// WriteAt writes p at byte offset off through the pipelined bulk
// engine. Stripe-aligned full-stripe runs go through the batched
// stripe write (Section 3.11) with up to MaxInFlight stripes
// concurrently in flight and their same-site redundant deltas
// coalesced; partial head and tail blocks are read-modify-written (not
// atomic against concurrent writers of the same block). On failure the
// returned count is the length of the longest prefix known written.
func (v *Volume) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	return v.engine.WriteAt(ctx, p, off)
}

// Reader returns an io.Reader streaming nBytes from byte offset off
// with sequential readahead. A negative nBytes streams to the volume's
// capacity.
func (v *Volume) Reader(ctx context.Context, off, nBytes int64) io.Reader {
	return v.engine.Reader(ctx, off, nBytes)
}

// --- bulk target -------------------------------------------------------------

// volumeTarget adapts the volume to bulk.Target.
type volumeTarget Volume

func (t *volumeTarget) BlockSize() int      { return t.opts.BlockSize }
func (t *volumeTarget) StripeK() int        { return t.opts.K }
func (t *volumeTarget) GroupBlocks() uint64 { return t.opts.BlocksPerGroup }
func (t *volumeTarget) Capacity() uint64    { return (*Volume)(t).Capacity() }

func (t *volumeTarget) ReadBlock(ctx context.Context, addr uint64) ([]byte, error) {
	return (*Volume)(t).ReadBlock(ctx, addr)
}

func (t *volumeTarget) WriteBlock(ctx context.Context, addr uint64, data []byte) error {
	return (*Volume)(t).WriteBlock(ctx, addr, data)
}

func (t *volumeTarget) ReadBlockStamped(ctx context.Context, addr uint64) ([]byte, core.ReadStamp, error) {
	return (*Volume)(t).ReadBlockStamped(ctx, addr)
}

func (t *volumeTarget) WriteBlockStamped(ctx context.Context, addr uint64, data []byte) (proto.TID, proto.TID, error) {
	return (*Volume)(t).WriteBlockStamped(ctx, addr, data)
}

// WriteStripes routes one batch — all within one group, per the
// bulk.Target contract — to that group's protocol client, which
// coalesces the stripes' same-site redundant deltas into combined
// RPCs.
func (t *volumeTarget) WriteStripes(ctx context.Context, writes []bulk.StripeWrite) ([]error, bulk.WriteStats) {
	v := (*Volume)(t)
	errs := make([]error, len(writes))
	fail := func(err error) ([]error, bulk.WriteStats) {
		for i := range errs {
			errs[i] = err
		}
		return errs, bulk.WriteStats{}
	}
	if len(writes) == 0 {
		return errs, bulk.WriteStats{}
	}
	g, _, _, err := v.locate(writes[0].Addr)
	if err != nil {
		return fail(err)
	}
	grp, err := v.group(g)
	if err != nil {
		return fail(err)
	}
	sw := make([]core.StripeWrite, len(writes))
	for i, w := range writes {
		_, stripeID, _, err := v.locate(w.Addr)
		if err != nil {
			return fail(err)
		}
		sw[i] = core.StripeWrite{Stripe: stripeID, Values: w.Values}
	}
	werrs, stats := grp.cl.WriteStripes(ctx, sw)
	return werrs, bulk.WriteStats{BatchCalls: stats.BatchCalls, BatchRPCs: stats.BatchRPCs}
}

var _ bulk.Target = (*volumeTarget)(nil)

// CollectGarbage runs one GC pass in every instantiated group.
func (v *Volume) CollectGarbage(ctx context.Context) error {
	for _, grp := range v.activeGroups() {
		if _, err := grp.cl.CollectGarbage(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Monitor probes every instantiated group's touched stripes, returning
// the total number of stripes recovered.
func (v *Volume) Monitor(ctx context.Context, maxAge time.Duration) (int, error) {
	total := 0
	for _, grp := range v.activeGroups() {
		report, err := grp.cl.MonitorTracked(ctx, maxAge)
		if err != nil {
			return total, err
		}
		total += len(report.Recovered)
	}
	return total, nil
}

// Scrub audits every instantiated group's touched stripes.
func (v *Volume) Scrub(ctx context.Context) (clean, busy, repaired int, err error) {
	for _, grp := range v.activeGroups() {
		c, b, r, err := grp.cl.ScrubTracked(ctx)
		clean += c
		busy += b
		repaired += r
		if err != nil {
			return clean, busy, repaired, err
		}
	}
	return clean, busy, repaired, nil
}

// GroupStats returns the protocol counters of one group's client, or
// nil if the group was never touched.
func (v *Volume) GroupStats(g uint64) *core.ClientStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	if grp, ok := v.groups[g]; ok {
		return grp.cl.Stats()
	}
	return nil
}

// GroupSites resolves (instantiating if needed) the sites serving a
// group, indexed by physical slot.
func (v *Volume) GroupSites(g uint64) ([]placement.Node, error) {
	if g >= uint64(v.opts.Groups) {
		return nil, fmt.Errorf("volume: group %d out of range [0,%d)", g, v.opts.Groups)
	}
	grp, err := v.group(g)
	if err != nil {
		return nil, err
	}
	grp.pmu.Lock()
	defer grp.pmu.Unlock()
	return append([]placement.Node(nil), grp.sites...), nil
}

// watchHandle wraps a shard handle with the health tracker's per-site
// record, when one is configured. The wrapped handle is what lands in
// the group directory, so the retire path's identity check still
// compares the handles clients actually use.
func (v *Volume) watchHandle(site placement.Node, h proto.StorageNode) proto.StorageNode {
	if v.opts.Health == nil {
		return h
	}
	return v.opts.Health.Watch(site.ID, h)
}

// RetireSite removes a site from the pool as if it had crashed: every
// instantiated group placed on it is reported damaged (OnDamage) and
// remapped through the ordinary refresh path, so recovery rebuilds the
// moved slots. It is the health tracker's quarantine hook — wire
// health.Options.OnQuarantine to it to treat persistent grayness like
// a crash — and is idempotent: retiring an unknown or already-removed
// site is a no-op. NoRemap disables it like any other remapping.
func (v *Volume) RetireSite(siteID string) {
	if v.opts.NoRemap {
		return
	}
	_ = v.opts.Pool.Remove(siteID) // already gone is fine
	for _, grp := range v.activeGroups() {
		grp.pmu.Lock()
		uses := false
		for _, s := range grp.sites {
			if s.ID == siteID {
				uses = true
				break
			}
		}
		grp.pmu.Unlock()
		if !uses {
			continue
		}
		if v.opts.OnDamage != nil {
			v.opts.OnDamage(grp.id)
		}
		_ = grp.ensureFresh() // best effort; errors surface on the next operation
	}
}

func (v *Volume) activeGroups() []*group {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*group, 0, len(v.groups))
	for _, grp := range v.groups {
		out = append(out, grp)
	}
	return out
}

// --- per-group state ---------------------------------------------------------

// group is one stripe group's slice of the volume: a directory over
// its n assigned sites and a protocol client, plus the epoch-tagged
// placement cache.
type group struct {
	v   *Volume
	id  uint64
	dir *directory.Service
	cl  *core.Client

	// epoch is the pool epoch the cached placement reflects.
	epoch atomic.Uint64

	// pmu guards sites. It is held only for short reads/writes of the
	// slice, never across directory, pool, or OpenShard calls, so it
	// cannot participate in a lock cycle with any of them.
	pmu   sync.Mutex
	sites []placement.Node // physical slot -> site

	// refreshMu serializes placement refreshes.
	refreshMu sync.Mutex
}

// group returns the per-group state, instantiating it on first touch
// and refreshing its placement if the pool epoch moved.
func (v *Volume) group(g uint64) (*group, error) {
	v.mu.Lock()
	grp, ok := v.groups[g]
	if !ok {
		var err error
		grp, err = v.initGroup(g)
		if err != nil {
			v.mu.Unlock()
			return nil, err
		}
		v.groups[g] = grp
	}
	v.mu.Unlock()
	if err := grp.ensureFresh(); err != nil {
		return nil, err
	}
	return grp, nil
}

// initGroup resolves the group's placement and assembles its directory
// and client. Called with v.mu held.
func (v *Volume) initGroup(g uint64) (*group, error) {
	placed, epoch, err := v.opts.Pool.Place(g, v.opts.N)
	if err != nil {
		return nil, fmt.Errorf("volume: place group %d: %w", g, err)
	}
	handles := make([]proto.StorageNode, len(placed))
	for i, site := range placed {
		h, err := v.opts.OpenShard(site, g, false)
		if err != nil {
			return nil, fmt.Errorf("volume: open shard %s/g%d: %w", site.ID, g, err)
		}
		handles[i] = v.watchHandle(site, h)
	}
	grp := &group{v: v, id: g, sites: placed}
	grp.epoch.Store(epoch)
	dir, err := directory.New(v.layout, handles, nil)
	if err != nil {
		return nil, err
	}
	dir.Instrument(v.opts.Obs)
	grp.dir = dir
	cl, err := core.NewClient(core.Config{
		ID:         v.opts.ClientID,
		Code:       v.code,
		Resolver:   (*groupResolver)(grp),
		BlockSize:  v.opts.BlockSize,
		Mode:       v.opts.Mode,
		TP:         v.opts.TP,
		Multicast:  v.opts.Multicast,
		Aggregate:  v.opts.Aggregate,
		RetryDelay: v.opts.RetryDelay,
		Retry:      v.opts.Retry,
		Hedge:      v.opts.Hedge,
		Obs:        v.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	grp.cl = cl
	v.groupInits.Inc()
	return grp, nil
}

// ensureFresh refreshes the cached placement when the pool epoch has
// moved. The fast path is one atomic load.
func (g *group) ensureFresh() error {
	if g.epoch.Load() == g.v.opts.Pool.Epoch() {
		return nil
	}
	return g.refresh()
}

// refresh re-resolves the group's placement and remaps only the slots
// whose site changed: surviving sites keep their slots (and their
// data), incoming sites take the vacated slots with fresh INIT shards
// that per-stripe recovery then rebuilds. Slot stability matters
// because the directory's physical indices are baked into the stripe
// rotation — moving an unaffected site to a different slot would
// orphan its blocks.
func (g *group) refresh() error {
	g.refreshMu.Lock()
	defer g.refreshMu.Unlock()
	v := g.v

	placed, epoch, err := v.opts.Pool.Place(g.id, v.opts.N)
	if err != nil {
		v.refreshErrors.Inc()
		return fmt.Errorf("volume: refresh group %d: %w", g.id, err)
	}
	if g.epoch.Load() == epoch {
		return nil
	}

	g.pmu.Lock()
	current := append([]placement.Node(nil), g.sites...)
	g.pmu.Unlock()

	incoming := make(map[string]placement.Node, len(placed))
	for _, site := range placed {
		incoming[site.ID] = site
	}
	// Sites that keep their slot drop out of `incoming`; the rest of
	// `incoming`, in rank order, fills the vacated slots.
	vacated := make([]int, 0, len(current))
	for slot, site := range current {
		if _, still := incoming[site.ID]; still {
			delete(incoming, site.ID)
		} else {
			vacated = append(vacated, slot)
		}
	}
	type install struct {
		slot   int
		site   placement.Node
		handle proto.StorageNode
	}
	var installs []install
	i := 0
	for _, site := range placed {
		if _, isNew := incoming[site.ID]; !isNew {
			continue
		}
		slot := vacated[i]
		i++
		h, err := v.opts.OpenShard(site, g.id, true)
		if err != nil {
			// Cannot provision an INIT shard here (e.g. a TCP pool):
			// keep the old mapping for this slot and stay stale so the
			// next access retries.
			v.refreshErrors.Inc()
			return fmt.Errorf("volume: open replacement shard %s/g%d: %w", site.ID, g.id, err)
		}
		installs = append(installs, install{slot: slot, site: site, handle: v.watchHandle(site, h)})
	}

	g.pmu.Lock()
	for _, in := range installs {
		g.sites[in.slot] = in.site
	}
	g.pmu.Unlock()
	for _, in := range installs {
		g.dir.ReplaceNode(in.slot, in.handle)
		v.remappedSlots.Inc()
	}
	g.epoch.Store(epoch)
	return nil
}

// retire reports that the site serving a physical slot appears dead.
// The first reporter (across all groups) removes it from the pool;
// the epoch bump then lazily remaps every affected group, this one
// included, through the ordinary refresh path.
func (g *group) retire(phys int, seen proto.StorageNode) {
	v := g.v
	if v.opts.NoRemap {
		return
	}
	g.pmu.Lock()
	if phys < 0 || phys >= len(g.sites) {
		g.pmu.Unlock()
		return
	}
	site := g.sites[phys]
	g.pmu.Unlock()
	// Idempotence: only retire if the reporter was actually using the
	// handle currently mapped for that slot (mirrors the directory's
	// own stale-report guard).
	if h := g.dir.Physical(phys); h != seen {
		return
	}
	_ = v.opts.Pool.Remove(site.ID) // already-gone is fine: someone else retired it
	if v.opts.OnDamage != nil {
		v.opts.OnDamage(g.id)
	}
	_ = g.ensureFresh() // best effort; errors surface on the next operation
}

// --- resolver ----------------------------------------------------------------

// groupResolver adapts a group to core.Resolver: resolves through the
// group's directory and turns failure reports into pool retirement +
// placement refresh instead of the single-cluster replacer path.
type groupResolver group

func (r *groupResolver) Node(stripeID uint64, slot int) (proto.StorageNode, error) {
	g := (*group)(r)
	// Best-effort refresh: a stale placement still resolves, and the
	// operation may succeed on surviving sites (a degraded read needs
	// only k of them).
	_ = g.ensureFresh()
	return g.dir.Node(stripeID, slot)
}

func (r *groupResolver) ReportFailure(stripeID uint64, slot int, seen proto.StorageNode) {
	g := (*group)(r)
	// Count the report in the directory's metrics (its replacer is nil,
	// so this never remaps by itself).
	g.dir.ReportFailure(stripeID, slot, seen)
	g.retire(g.dir.Layout().PhysicalNode(stripeID, slot), seen)
}

package volume

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"ecstore/internal/obs"
)

// disturbance sums the counters a site crash would perturb in one
// group's client.
func disturbance(l *Local, g uint64) uint64 {
	st := l.GroupStats(g)
	if st == nil {
		return 0
	}
	return st.DegradedReads.Load() + st.Recoveries.Load() +
		st.RecoveryPickups.Load() + st.Unavailable.Load() +
		st.WriteRestarts.Load()
}

// TestChaosCrashIsolation is the headline acceptance check: killing one
// site in an 8-group volume degrades only the groups placed on it.
// Bystander groups see zero degraded reads, zero recoveries, and an
// unchanged site mapping; victim groups remap and their data survives.
func TestChaosCrashIsolation(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	l := newLocal(t, 8, 16, reg)

	// Touch every group: one full pass over the address space.
	for addr := uint64(0); addr < l.Capacity(); addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}

	// Pick a victim serving group 0 and record which groups use it.
	g0, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	victim := g0[0].ID
	onVictim := make(map[uint64]bool)
	sitesBefore := make(map[uint64][]string)
	for g := uint64(0); g < 8; g++ {
		sites, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, s := range sites {
			ids = append(ids, s.ID)
			if s.ID == victim {
				onVictim[g] = true
			}
		}
		sitesBefore[g] = ids
	}
	if len(onVictim) == 8 {
		t.Fatalf("victim %s serves every group; isolation check is vacuous", victim)
	}
	before := make(map[uint64]uint64)
	for g := uint64(0); g < 8; g++ {
		before[g] = disturbance(l, g)
	}

	l.CrashSite(victim)

	// Full read pass: every block of every group must come back intact.
	for addr := uint64(0); addr < l.Capacity(); addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after crash: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte(addr))) {
			t.Fatalf("block %d corrupted after crash", addr)
		}
	}

	for g := uint64(0); g < 8; g++ {
		delta := disturbance(l, g) - before[g]
		sites, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		for _, s := range sites {
			if s.ID == victim {
				t.Errorf("group %d still mapped to crashed site %s", g, victim)
			}
			ids = append(ids, s.ID)
		}
		if onVictim[g] {
			if delta == 0 {
				t.Errorf("victim group %d shows no protocol disturbance", g)
			}
			continue
		}
		// Bystanders: not a single degraded read, recovery, restart, or
		// retry-exhaustion — and their site mapping is untouched.
		if delta != 0 {
			t.Errorf("bystander group %d disturbed: delta=%d", g, delta)
		}
		beforeIDs := sitesBefore[g]
		for i := range ids {
			if ids[i] != beforeIDs[i] {
				t.Errorf("bystander group %d slot %d moved %s -> %s", g, i, beforeIDs[i], ids[i])
			}
		}
	}

	// Exactly one pool retirement, regardless of how many groups
	// reported the dead site.
	snap := reg.Snapshot()
	if got := snap["placement.pool_size"].(int64); got != 15 {
		t.Errorf("pool_size = %d, want 15", got)
	}
	if got := snap["volume.remapped_slots"].(uint64); got != uint64(len(onVictim)) {
		t.Errorf("remapped_slots = %d, want %d (one per victim group)", got, len(onVictim))
	}
}

// TestChaosConcurrentCrash hammers the volume from several goroutines
// while a site dies mid-flight. Run under -race this doubles as the
// subsystem's concurrency audit. Each worker owns a disjoint address
// slice (the protocol serializes per-block, but test assertions want
// deterministic final contents).
func TestChaosConcurrentCrash(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 8, 12, obs.NewRegistry())

	const workers = 4
	const rounds = 6
	capacity := l.Capacity()
	per := capacity / workers

	// Seed everything so reads always have data.
	for addr := uint64(0); addr < capacity; addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	sites, err := l.GroupSites(5)
	if err != nil {
		t.Fatal(err)
	}
	victim := sites[1].ID

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := uint64(w)*per, uint64(w+1)*per
			for r := 0; r < rounds; r++ {
				for addr := lo; addr < hi; addr++ {
					if err := l.WriteBlock(ctx, addr, block(byte(addr)+byte(r))); err != nil {
						errs <- err
						return
					}
					if _, err := l.ReadBlock(ctx, addr); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// Let the workers get going, then kill the site under them.
	time.Sleep(2 * time.Millisecond)
	l.CrashSite(victim)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: final contents must reflect each worker's last round.
	for addr := uint64(0); addr < capacity; addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("final read %d: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte(addr)+byte(rounds-1))) {
			t.Fatalf("block %d: wrong final contents", addr)
		}
	}
	for g := uint64(0); g < 8; g++ {
		gs, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range gs {
			if s.ID == victim {
				t.Fatalf("group %d still mapped to crashed site %s", g, victim)
			}
		}
	}
}

package volume

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkVolume16KiB measures 16 KiB stripe-aligned writes and reads
// through a 1-group and an 8-group volume (K=4, 4 KiB blocks: one op
// is exactly one stripe). The delta between the two is the cost of the
// volume routing layer — address split, group lookup, epoch check —
// which should be noise against the erasure-coded write itself.
func BenchmarkVolume16KiB(b *testing.B) {
	for _, groups := range []int{1, 8} {
		l, err := NewLocal(LocalOptions{
			K: 4, N: 6, BlockSize: 4096,
			Groups:         groups,
			Sites:          12,
			BlocksPerGroup: 1 << 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		payload := make([]byte, 16<<10)
		for i := range payload {
			payload[i] = byte(i)
		}
		stripeBytes := int64(len(payload))
		spanBlocks := uint64(4)
		capBlocks := l.Capacity()

		b.Run(fmt.Sprintf("write/groups=%d", groups), func(b *testing.B) {
			b.SetBytes(stripeBytes)
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) * spanBlocks) % capBlocks
				if _, err := l.WriteAt(ctx, payload, int64(addr)*4096); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("read/groups=%d", groups), func(b *testing.B) {
			b.SetBytes(stripeBytes)
			buf := make([]byte, len(payload))
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) * spanBlocks) % capBlocks
				if _, err := l.ReadAt(ctx, buf, int64(addr)*4096); err != nil {
					b.Fatal(err)
				}
			}
		})
		_ = l.Close()
	}
}

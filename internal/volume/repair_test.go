package volume

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/repair"
)

// TestRepairSourceDamageAndRepair exercises the volume's repair.Source
// implementation directly: a crashed site shows up as missing
// survivors, one RepairGroup pass heals the group, and the damage
// probe then reports it whole again.
func TestRepairSourceDamageAndRepair(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 4, 8, nil)
	for addr := uint64(0); addr < l.Capacity(); addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	if s, n, err := l.GroupDamage(ctx, 0); err != nil || s != n {
		t.Fatalf("healthy group: survivors=%d/%d err=%v", s, n, err)
	}

	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	l.CrashSite(sites[0].ID)
	s, n, err := l.GroupDamage(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s >= n {
		t.Fatalf("crashed site not seen: survivors=%d/%d", s, n)
	}

	stripes, nbytes, err := l.RepairGroup(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stripes == 0 {
		t.Fatal("repair pass recovered no stripes")
	}
	if want := int64(stripes) * int64(4) * int64(testBlockSize); nbytes != want {
		t.Fatalf("repair bytes = %d, want %d", nbytes, want)
	}
	if s, n, err := l.GroupDamage(ctx, 0); err != nil || s != n {
		t.Fatalf("after repair: survivors=%d/%d err=%v", s, n, err)
	}
	for addr := uint64(0); addr < 8; addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil || !bytes.Equal(got, block(byte(addr))) {
			t.Fatalf("block %d wrong after repair (err=%v)", addr, err)
		}
	}
}

// TestOnDamageHookFires: retiring a site from a failure report must
// invoke the OnDamage hook with the reporting group — the scheduler's
// fast path, no sweep involved.
func TestOnDamageHookFires(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var damaged []uint64
	l, err := NewLocal(LocalOptions{
		K: 2, N: 4, BlockSize: testBlockSize,
		Groups: 4, Sites: 8, BlocksPerGroup: 8,
		RetryDelay: 50 * time.Microsecond,
		OnDamage: func(g uint64) {
			mu.Lock()
			damaged = append(damaged, g)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })

	if err := l.WriteBlock(ctx, 0, block('a')); err != nil {
		t.Fatal(err)
	}
	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	l.CrashSite(sites[0].ID)
	// A degraded read discovers the crash, reports it, and the retire
	// path fires the hook.
	if _, err := l.ReadBlock(ctx, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(damaged) == 0 {
		t.Fatal("OnDamage never fired")
	}
	for _, g := range damaged {
		if g != 0 {
			t.Fatalf("OnDamage reported group %d, only group 0 was touched", g)
		}
	}
}

// placementIDs snapshots every group's site IDs by slot.
func placementIDs(t *testing.T, l *Local, groups uint64) map[uint64][]string {
	t.Helper()
	out := make(map[uint64][]string, groups)
	for g := uint64(0); g < groups; g++ {
		sites, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(sites))
		for i, s := range sites {
			ids[i] = s.ID
		}
		out[g] = ids
	}
	return out
}

// TestRebalanceConvergesToIdeal is the rebalance property test: after
// random pool membership churn, draining the repair scheduler leaves
// every group exactly on its rendezvous-hash ideal placement, moving
// no more slots than the minimal-movement ideal (surviving sites keep
// their slots), with all data intact and every group fully healthy.
func TestRebalanceConvergesToIdeal(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	const groups, sites = 6, 8
	for trial := 0; trial < 3; trial++ {
		l := newLocal(t, groups, sites, obs.NewRegistry())
		for addr := uint64(0); addr < l.Capacity(); addr++ {
			if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
				t.Fatal(err)
			}
		}
		sched, err := repair.NewScheduler(repair.Options{Source: l.Volume, Interval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		before := placementIDs(t, l, groups)

		// Churn: grow the pool by two sites, drain one original.
		for i := 0; i < 2; i++ {
			if err := l.AddSite(fmt.Sprintf("extra-%d-%d", trial, i), 1); err != nil {
				t.Fatal(err)
			}
		}
		victim := fmt.Sprintf("site-%d", rng.Intn(sites))
		if err := l.RemoveSite(victim); err != nil {
			t.Fatal(err)
		}

		dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err = sched.Drain(dctx)
		cancel()
		if err != nil {
			t.Fatalf("trial %d: drain: %v", trial, err)
		}

		for g := uint64(0); g < groups; g++ {
			ideal, _, err := l.Pool().Place(g, 4)
			if err != nil {
				t.Fatal(err)
			}
			idealSet := make(map[string]bool, len(ideal))
			for _, s := range ideal {
				idealSet[s.ID] = true
			}
			cur, err := l.GroupSites(g)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for slot, s := range cur {
				if !idealSet[s.ID] {
					t.Errorf("trial %d group %d slot %d on %s, not in ideal placement", trial, g, slot, s.ID)
				}
				if s.ID != before[g][slot] {
					moved++
				}
			}
			// Minimal movement: only slots whose old site left the
			// ideal set may have moved.
			minimal := 0
			for _, id := range before[g] {
				if !idealSet[id] {
					minimal++
				}
			}
			if moved > minimal {
				t.Errorf("trial %d group %d moved %d slots, minimal is %d (before=%v after slots on %v)",
					trial, g, moved, minimal, before[g], cur)
			}
			if s, n, err := l.GroupDamage(ctx, g); err != nil || s != n {
				t.Errorf("trial %d group %d not healed: survivors=%d/%d err=%v", trial, g, s, n, err)
			}
		}
		for addr := uint64(0); addr < l.Capacity(); addr++ {
			got, err := l.ReadBlock(ctx, addr)
			if err != nil {
				t.Fatalf("trial %d: read %d after rebalance: %v", trial, addr, err)
			}
			if !bytes.Equal(got, block(byte(addr))) {
				t.Fatalf("trial %d: block %d corrupted by rebalance", trial, addr)
			}
		}
	}
}

// recordingSource wraps the volume Source and records repair order.
type recordingSource struct {
	repair.Source
	mu    sync.Mutex
	order []uint64
}

func (r *recordingSource) RepairGroup(ctx context.Context, g uint64) (int, int64, error) {
	r.mu.Lock()
	r.order = append(r.order, g)
	r.mu.Unlock()
	return r.Source.RepairGroup(ctx, g)
}

// TestRepairOrderPrioritizesWorstGroup drives the scheduler against a
// real volume and checks the headline policy end to end: a group that
// lost two of its four shards (zero parity margin left) repairs before
// a group that lost one.
func TestRepairOrderPrioritizesWorstGroup(t *testing.T) {
	ctx := context.Background()
	const groups, sites = 8, 12
	l := newLocal(t, groups, sites, nil)
	for addr := uint64(0); addr < l.Capacity(); addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	placed := placementIDs(t, l, groups)
	memberOf := func(g uint64, id string) bool {
		for _, s := range placed[g] {
			if s == id {
				return true
			}
		}
		return false
	}
	// Find a crash set {a1, a2, b}: group A loses a1 and a2 (2 of 4),
	// group B loses only b, and no group loses more than N-K=2 sites
	// (data must stay recoverable everywhere). Placement is a
	// deterministic rendezvous hash, so the search is stable.
	var crashA1, crashA2, crashB string
	var groupA, groupB uint64
	found := false
search:
	for a := uint64(0); a < groups && !found; a++ {
		for b := uint64(0); b < groups; b++ {
			if a == b {
				continue
			}
			a1, a2 := placed[a][0], placed[a][1]
			if memberOf(b, a1) || memberOf(b, a2) {
				continue
			}
			for _, cb := range placed[b] {
				if memberOf(a, cb) {
					continue
				}
				ok := true
				for g := uint64(0); g < groups; g++ {
					lost := 0
					for _, id := range []string{a1, a2, cb} {
						if memberOf(g, id) {
							lost++
						}
					}
					if lost > 2 {
						ok = false
						break
					}
				}
				if ok {
					groupA, groupB = a, b
					crashA1, crashA2, crashB = a1, a2, cb
					found = true
					break search
				}
			}
		}
	}
	if !found {
		t.Fatal("no crash set isolates a 2-loss and a 1-loss group under this placement")
	}

	rec := &recordingSource{Source: l.Volume}
	sched, err := repair.NewScheduler(repair.Options{Source: rec, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	l.CrashSite(crashA1)
	l.CrashSite(crashA2)
	l.CrashSite(crashB)

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = sched.Drain(dctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	rec.mu.Lock()
	order := append([]uint64(nil), rec.order...)
	rec.mu.Unlock()
	posA, posB := -1, -1
	for i, g := range order {
		if g == groupA && posA < 0 {
			posA = i
		}
		if g == groupB && posB < 0 {
			posB = i
		}
	}
	if posA < 0 || posB < 0 {
		t.Fatalf("scheduler never repaired both groups: order=%v A=%d B=%d", order, groupA, groupB)
	}
	if posA > posB {
		t.Fatalf("one-shard-from-loss group %d repaired at %d, after healthier group %d at %d (order %v)",
			groupA, posA, groupB, posB, order)
	}
	for addr := uint64(0); addr < l.Capacity(); addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after repair: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte(addr))) {
			t.Fatalf("block %d corrupted", addr)
		}
	}
}

package volume

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
)

const testBlockSize = 64

func newLocal(t *testing.T, groups, sites int, reg *obs.Registry) *Local {
	t.Helper()
	l, err := NewLocal(LocalOptions{
		K: 2, N: 4, BlockSize: testBlockSize,
		Groups:         groups,
		Sites:          sites,
		BlocksPerGroup: 8, // tiny extents so tests hop groups quickly
		RetryDelay:     50 * time.Microsecond,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

func block(tag byte) []byte {
	return bytes.Repeat([]byte{tag}, testBlockSize)
}

func TestOptionsValidation(t *testing.T) {
	pool, _ := placement.NewPool(placement.Node{ID: "a"})
	cases := []Options{
		{K: 0, N: 4, BlockSize: 64, Groups: 1, Pool: pool},
		{K: 2, N: 2, BlockSize: 64, Groups: 1, Pool: pool},
		{K: 2, N: 4, BlockSize: 0, Groups: 1, Pool: pool},
		{K: 2, N: 4, BlockSize: 64, Groups: 0, Pool: pool},
		{K: 2, N: 4, BlockSize: 64, Groups: 1, Pool: nil},
		{K: 2, N: 4, BlockSize: 64, Groups: 1, Pool: pool},                    // missing OpenShard
		{K: 2, N: 4, BlockSize: 64, Groups: 1, Pool: pool, BlocksPerGroup: 7}, // not multiple of K
	}
	for i, opts := range cases {
		if i == 6 {
			opts.OpenShard = func(placement.Node, uint64, bool) (proto.StorageNode, error) { return nil, nil }
		}
		if _, err := New(opts); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opts)
		}
	}
}

func TestRoundtripAcrossGroups(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 4, 8, nil)
	// One block in every group, including the last addressable block.
	addrs := []uint64{0, 7, 8, 13, 16, 23, 24, 31}
	for i, addr := range addrs {
		if err := l.WriteBlock(ctx, addr, block(byte('a'+i))); err != nil {
			t.Fatalf("write %d: %v", addr, err)
		}
	}
	for i, addr := range addrs {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte('a'+i))) {
			t.Fatalf("block %d corrupted", addr)
		}
	}
	if _, err := l.ReadBlock(ctx, l.Capacity()); err == nil {
		t.Fatal("read beyond capacity should error")
	}
	if err := l.WriteBlock(ctx, l.Capacity()+5, block('x')); err == nil {
		t.Fatal("write beyond capacity should error")
	}
}

func TestLazyGroupInstantiation(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	l := newLocal(t, 8, 12, reg)
	if got := reg.Snapshot()["volume.groups_active"].(int64); got != 0 {
		t.Fatalf("fresh volume has %d active groups", got)
	}
	if err := l.WriteBlock(ctx, 0, block('a')); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBlock(ctx, 17, block('b')); err != nil { // group 2
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap["volume.groups_active"].(int64); got != 2 {
		t.Fatalf("groups_active = %d, want 2", got)
	}
	if got := snap["volume.group_inits"].(uint64); got != 2 {
		t.Fatalf("group_inits = %d, want 2", got)
	}
	if got := snap["placement.resolves"].(uint64); got < 2 {
		t.Fatalf("placement.resolves = %d, want >= 2", got)
	}
}

// Placement cache: repeated operations on a warm group must not
// re-resolve placement while the epoch stands still.
func TestPlacementCachedUntilEpochMoves(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	l := newLocal(t, 2, 6, reg)
	if err := l.WriteBlock(ctx, 0, block('a')); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot()["placement.resolves"].(uint64)
	for i := 0; i < 20; i++ {
		if _, err := l.ReadBlock(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}
	after := reg.Snapshot()["placement.resolves"].(uint64)
	if after != before {
		t.Fatalf("placement re-resolved %d times on a warm group", after-before)
	}
	if err := l.AddSite("late-joiner", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadBlock(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot()["placement.resolves"].(uint64); got == after {
		t.Fatal("epoch bump did not trigger a re-resolve")
	}
}

// Administrative drain: removing a live site remaps its slots to INIT
// shards elsewhere; recovery rebuilds them and data stays readable.
func TestDrainSiteRemapsAndRecovers(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	l := newLocal(t, 4, 9, reg)
	for addr := uint64(0); addr < 32; addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain a site that actually serves group 0.
	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	victim := sites[1].ID
	if err := l.RemoveSite(victim); err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < 32; addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after drain: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte(addr))) {
			t.Fatalf("block %d corrupted after drain", addr)
		}
	}
	// The drained site must no longer serve any slot of any group.
	for g := uint64(0); g < 4; g++ {
		sites, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sites {
			if s.ID == victim {
				t.Fatalf("group %d still mapped to drained site %s", g, victim)
			}
		}
	}
	if got := reg.Snapshot()["volume.remapped_slots"].(uint64); got == 0 {
		t.Fatal("drain remapped no slots")
	}
}

// Failure path: crashing a site degrades only the groups placed on it;
// their next accesses retire the site, remap through INIT shards, and
// recovery restores the data.
func TestCrashSiteRetiresAndRecovers(t *testing.T) {
	ctx := context.Background()
	reg := obs.NewRegistry()
	l := newLocal(t, 6, 10, reg)
	for addr := uint64(0); addr < 48; addr++ {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	sites, err := l.GroupSites(3)
	if err != nil {
		t.Fatal(err)
	}
	victim := sites[0].ID
	l.CrashSite(victim)

	epochBefore := l.Pool().Epoch()
	for addr := uint64(0); addr < 48; addr++ {
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after crash: %v", addr, err)
		}
		if !bytes.Equal(got, block(byte(addr))) {
			t.Fatalf("block %d corrupted after crash", addr)
		}
	}
	if got := l.Pool().Epoch(); got != epochBefore+1 {
		t.Fatalf("pool epoch moved %d times, want exactly 1 (one site retirement)", got-epochBefore)
	}
	for g := uint64(0); g < 6; g++ {
		gs, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range gs {
			if s.ID == victim {
				t.Fatalf("group %d still mapped to crashed site %s", g, victim)
			}
		}
	}
	if got := reg.Snapshot()["directory.failure_reports"].(uint64); got == 0 {
		t.Fatal("no failure reports recorded")
	}
}

// TestVolumeMultiGroupSmoke is the CI smoke: an 8-group volume over a
// modest pool, write/read in every group, survive one site crash.
func TestVolumeMultiGroupSmoke(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 8, 12, obs.NewRegistry())
	for g := uint64(0); g < 8; g++ {
		addr := g*8 + uint64(g%8)
		if err := l.WriteBlock(ctx, addr, block(byte(g))); err != nil {
			t.Fatalf("group %d write: %v", g, err)
		}
	}
	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	l.CrashSite(sites[0].ID)
	for g := uint64(0); g < 8; g++ {
		addr := g*8 + uint64(g%8)
		got, err := l.ReadBlock(ctx, addr)
		if err != nil {
			t.Fatalf("group %d read after crash: %v", g, err)
		}
		if !bytes.Equal(got, block(byte(g))) {
			t.Fatalf("group %d data corrupted", g)
		}
	}
}

func TestReadAtWriteAtSpanGroups(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 3, 7, nil)
	// A span crossing the group-0/group-1 boundary (block 8) and a
	// misaligned head/tail.
	payload := make([]byte, 3*testBlockSize+17)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	off := int64(6*testBlockSize + 11) // inside group 0, near its end
	n, err := l.WriteAt(ctx, payload, off)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(payload) {
		t.Fatalf("wrote %d bytes, want %d", n, len(payload))
	}
	got := make([]byte, len(payload))
	if _, err := l.ReadAt(ctx, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-group span corrupted")
	}
}

func TestMaintenanceOpsAcrossGroups(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 4, 8, nil)
	for addr := uint64(0); addr < 32; addr += 4 {
		if err := l.WriteBlock(ctx, addr, block(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	// Two GC passes quiesce the written stripes (drain then expire the
	// recentlists) so scrub reports them clean.
	for pass := 0; pass < 2; pass++ {
		if err := l.CollectGarbage(ctx); err != nil {
			t.Fatal(err)
		}
	}
	clean, busy, repaired, err := l.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if busy != 0 || repaired != 0 || clean == 0 {
		t.Fatalf("scrub: clean=%d busy=%d repaired=%d", clean, busy, repaired)
	}
	if _, err := l.Monitor(ctx, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := l.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if st := l.GroupStats(0); st == nil || st.Writes.Load() == 0 {
		t.Fatal("group 0 stats missing")
	}
	if st := l.GroupStats(99); st != nil {
		t.Fatal("stats for untouched group should be nil")
	}
}

// Stripe namespacing: two groups sharing a site must not collide in
// its store. Force a shared site by using a pool of exactly N sites so
// every group lands on all of them.
func TestGroupsShareSitesWithoutCollision(t *testing.T) {
	ctx := context.Background()
	l := newLocal(t, 2, 4, nil)                              // 4 sites, N=4: both groups use every site
	if err := l.WriteBlock(ctx, 0, block('A')); err != nil { // group 0, stripe 0
		t.Fatal(err)
	}
	if err := l.WriteBlock(ctx, 8, block('B')); err != nil { // group 1, stripe 0
		t.Fatal(err)
	}
	a, err := l.ReadBlock(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.ReadBlock(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, block('A')) || !bytes.Equal(b, block('B')) {
		t.Fatal("groups sharing sites clobbered each other's stripe 0")
	}
	// And the shards really are distinct per group on a shared site.
	s0, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	id := s0[0].ID
	if l.SiteShard(id, 0) == l.SiteShard(id, 1) {
		t.Fatalf("site %s serves both groups from one shard", id)
	}
}

func TestNewLocalValidation(t *testing.T) {
	if _, err := NewLocal(LocalOptions{K: 2, N: 4, BlockSize: 64, Groups: 1, Sites: 3}); err == nil {
		t.Fatal("pool smaller than N accepted")
	}
	if _, err := NewLocal(LocalOptions{K: 2, N: 4, BlockSize: 64, Groups: 1, Sites: 5, SiteWeights: []float64{1}}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestGroupSitesDistinct(t *testing.T) {
	l := newLocal(t, 16, 9, nil)
	for g := uint64(0); g < 16; g++ {
		sites, err := l.GroupSites(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(sites) != 4 {
			t.Fatalf("group %d has %d sites", g, len(sites))
		}
		seen := map[string]bool{}
		for _, s := range sites {
			if seen[s.ID] {
				t.Fatalf("group %d mapped twice to %s", g, s.ID)
			}
			seen[s.ID] = true
		}
	}
	if _, err := l.GroupSites(16); err == nil {
		t.Fatal("out-of-range group accepted")
	}
}

package volume

import (
	"context"
	"time"

	"ecstore/internal/placement"
	"ecstore/internal/proto"
)

// This file implements the repair scheduler's Source view of a volume
// (see internal/repair): per-group damage probes, a repair pass, and
// the placement-staleness check feeding rebalance moves.

// damageSampleStripes bounds how many tracked stripes GroupDamage
// probes when classifying shard health.
const damageSampleStripes = 4

// repairMaxAge is the recentlist age beyond which a pending write is
// treated as abandoned during a repair pass (the monitoring
// mechanism's maxAge); young entries belong to in-flight foreground
// writes and must not trigger recovery.
const repairMaxAge = time.Second

// GroupDamage probes the sites serving one group and reports how many
// of its n shards are healthy. A shard survives if its site answers
// probes and, when the group holds written data, is not a fresh INIT
// replacement (reachable but empty means the data it held is lost
// until repaired). Probing instantiates the group if needed.
func (v *Volume) GroupDamage(ctx context.Context, g uint64) (survivors, total int, err error) {
	grp, err := v.group(g)
	if err != nil {
		return 0, 0, err
	}
	total = v.opts.N

	samples := grp.cl.TrackedStripes()
	if len(samples) > damageSampleStripes {
		samples = samples[:damageSampleStripes]
	}
	if len(samples) == 0 {
		samples = []uint64{g << groupShift}
	}

	reachable := make([]bool, total)
	nonInit := make([]bool, total)
	hasData := false
	for j := 0; j < total; j++ {
		h := grp.dir.Physical(j)
		if h == nil {
			continue
		}
		for _, sid := range samples {
			rep, perr := h.Probe(ctx, &proto.ProbeReq{Stripe: sid, Slot: int32(j)})
			if perr != nil {
				reachable[j] = false
				break
			}
			reachable[j] = true
			if rep.OpMode != proto.Init {
				nonInit[j] = true
				hasData = true
			}
		}
	}
	for j := 0; j < total; j++ {
		if reachable[j] && (!hasData || nonInit[j]) {
			survivors++
		}
	}
	return survivors, total, nil
}

// RepairGroup runs one repair pass over a group: accessing the group
// refreshes its placement to the pool's current ideal (provisioning
// INIT shards on incoming sites), then the monitoring mechanism of
// Section 3.10 probes every tracked stripe and recovers the damaged
// ones. It returns the stripes recovered and the nominal repair
// traffic (stripes * n * blocksize — the write-back volume) for the
// bandwidth governor.
func (v *Volume) RepairGroup(ctx context.Context, g uint64) (stripes int, bytes int64, err error) {
	grp, err := v.group(g)
	if err != nil {
		return 0, 0, err
	}
	report, err := grp.cl.MonitorTracked(ctx, repairMaxAge)
	stripes = len(report.Recovered)
	bytes = int64(stripes) * int64(v.opts.N) * int64(v.opts.BlockSize)
	return stripes, bytes, err
}

// PoolEpoch returns the placement pool's membership version.
func (v *Volume) PoolEpoch() uint64 { return v.opts.Pool.Epoch() }

// StaleGroups lists instantiated groups whose cached site set differs
// from the rendezvous-hash ideal under the current membership. Slot
// order is ignored: refresh keeps surviving sites in their slots, so
// only membership drift constitutes staleness. Untouched groups are
// never stale — they resolve their ideal placement on first access.
func (v *Volume) StaleGroups(ctx context.Context) ([]uint64, error) {
	var stale []uint64
	for _, grp := range v.activeGroups() {
		if err := ctx.Err(); err != nil {
			return stale, err
		}
		placed, _, err := v.opts.Pool.Place(grp.id, v.opts.N)
		if err != nil {
			return stale, err
		}
		grp.pmu.Lock()
		current := append([]placement.Node(nil), grp.sites...)
		grp.pmu.Unlock()
		want := make(map[string]struct{}, len(placed))
		for _, site := range placed {
			want[site.ID] = struct{}{}
		}
		same := len(current) == len(placed)
		for _, site := range current {
			if _, ok := want[site.ID]; !ok {
				same = false
				break
			}
		}
		if !same {
			stale = append(stale, grp.id)
		}
	}
	return stale, nil
}

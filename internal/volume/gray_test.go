package volume

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/core"
	"ecstore/internal/health"
	"ecstore/internal/placement"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
)

// grayLocal builds a local volume whose every shard sits behind a
// transport.Faulty wrapper, so tests can turn whole sites gray. The
// returned map is keyed by site ID; it grows as shards open (guarded
// by mu because replacement shards open on client goroutines).
func grayLocal(t *testing.T, opts LocalOptions, gray time.Duration) (*Local, *sync.Map) {
	t.Helper()
	var wrappers sync.Map // site ID -> []*transport.Faulty
	var mu sync.Mutex
	opts.WrapShard = func(site placement.Node, group uint64, n proto.StorageNode) proto.StorageNode {
		w := transport.NewFaulty(n, transport.FaultConfig{GrayLatency: gray})
		mu.Lock()
		defer mu.Unlock()
		var ws []*transport.Faulty
		if v, ok := wrappers.Load(site.ID); ok {
			ws = v.([]*transport.Faulty)
		}
		wrappers.Store(site.ID, append(ws, w))
		return w
	}
	l, err := NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, &wrappers
}

func setSiteGray(wrappers *sync.Map, site string, v bool) {
	if ws, ok := wrappers.Load(site); ok {
		for _, w := range ws.([]*transport.Faulty) {
			w.SetGray(v)
		}
	}
}

// TestHedgedReadsRouteAroundGraySite: a volume built with a hedge
// policy must serve reads whose data node is gray from the survivors
// in a small fraction of the gray latency, and account the hedges in
// the group's stats.
func TestHedgedReadsRouteAroundGraySite(t *testing.T) {
	ctx := context.Background()
	l, wrappers := grayLocal(t, LocalOptions{
		K: 2, N: 4, BlockSize: testBlockSize,
		Groups: 1, Sites: 4, BlocksPerGroup: 8,
		RetryDelay: 50 * time.Microsecond,
		Hedge:      core.HedgePolicy{After: 500 * time.Microsecond, Budget: 1, Burst: 8},
	}, 100*time.Millisecond)
	if err := l.WriteBlock(ctx, 0, block('a')); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBlock(ctx, 1, block('b')); err != nil {
		t.Fatal(err)
	}
	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 is stripe 0, slot 0; stripe 0 maps slot j to phys j, so
	// sites[0] holds its data block.
	setSiteGray(wrappers, sites[0].ID, true)

	start := time.Now()
	got, err := l.ReadBlock(ctx, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(got, block('a')) {
		t.Fatal("hedged read returned the wrong block")
	}
	if elapsed >= 50*time.Millisecond {
		t.Fatalf("hedged read took %v, want well under the 100ms gray latency", elapsed)
	}
	st := l.GroupStats(0)
	if st == nil || st.HedgedReads.Load() == 0 {
		t.Fatal("group stats did not account the hedge")
	}
}

// TestGrayQuarantineRetiresSite: persistent grayness must flow
// tracker → OnQuarantine → RetireSite, remapping the site's groups
// onto a spare exactly like a crash would, with no data loss.
func TestGrayQuarantineRetiresSite(t *testing.T) {
	ctx := context.Background()
	var volRef atomic.Pointer[Volume]
	var quarantined atomic.Value // string
	tracker := health.NewTracker(health.Options{
		Alpha:       0.5,
		GrayLatency: time.Millisecond,
		GrayAfter:   5 * time.Millisecond,
		OnQuarantine: func(site string) {
			quarantined.Store(site)
			if v := volRef.Load(); v != nil {
				go v.RetireSite(site)
			}
		},
	})
	l, wrappers := grayLocal(t, LocalOptions{
		K: 2, N: 4, BlockSize: testBlockSize,
		Groups: 1, Sites: 5, BlocksPerGroup: 8,
		RetryDelay: 50 * time.Microsecond,
		Health:     tracker,
	}, 5*time.Millisecond)
	volRef.Store(l.Volume)
	if err := l.WriteBlock(ctx, 0, block('q')); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteBlock(ctx, 1, block('r')); err != nil {
		t.Fatal(err)
	}
	before, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	graySite := before[0].ID
	setSiteGray(wrappers, graySite, true)

	// Reads against the gray data node are what feed the tracker, so
	// the loop below both drives and awaits the quarantine.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := l.ReadBlock(ctx, 0); err != nil {
			t.Fatalf("read during gray period: %v", err)
		}
		after, err := l.GroupSites(0)
		if err != nil {
			t.Fatal(err)
		}
		if !slotsContain(after, graySite) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gray site %s was never retired (quarantined=%v)", graySite, quarantined.Load())
		}
	}
	if got, _ := quarantined.Load().(string); got != graySite {
		t.Fatalf("quarantined site = %q, want %q", quarantined.Load(), graySite)
	}
	got, err := l.ReadBlock(ctx, 0)
	if err != nil {
		t.Fatalf("read after retire: %v", err)
	}
	if !bytes.Equal(got, block('q')) {
		t.Fatal("block lost across the quarantine remap")
	}
}

func slotsContain(sites []placement.Node, id string) bool {
	for _, s := range sites {
		if s.ID == id {
			return true
		}
	}
	return false
}

// TestGraySoakRegisterSemantics is the gray regcheck soak: hedged
// reads racing writes to the same block, with one gray site, must
// only ever observe values that were actually written — speculative
// reconstruction may win the race but never invent a torn state. It
// also bounds the read tail: with hedging on, the p99 must stay well
// under the gray latency, and the read path must issue zero mutating
// RPCs (a hedge is pure speculation, not a repair).
func TestGraySoakRegisterSemantics(t *testing.T) {
	ctx := context.Background()
	const grayLat = 4 * time.Millisecond
	l, wrappers := grayLocal(t, LocalOptions{
		K: 2, N: 4, BlockSize: testBlockSize,
		Groups: 1, Sites: 4, BlocksPerGroup: 8,
		RetryDelay: 50 * time.Microsecond,
		Hedge:      core.HedgePolicy{After: 300 * time.Microsecond, Budget: 1, Burst: 8},
	}, grayLat)
	val := func(x byte) []byte { return block('A' + x) }
	if err := l.WriteBlock(ctx, 0, val(0)); err != nil {
		t.Fatal(err)
	}
	sites, err := l.GroupSites(0)
	if err != nil {
		t.Fatal(err)
	}
	setSiteGray(wrappers, sites[0].ID, true)

	const writes, reads = 20, 60
	writerDone := make(chan error, 1)
	go func() {
		for x := byte(1); x <= writes; x++ {
			if err := l.WriteBlock(ctx, 0, val(x)); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()
	st := l.GroupStats(0)
	writesBefore := st.Writes.Load()
	lat := make([]time.Duration, 0, reads)
	for i := 0; i < reads; i++ {
		start := time.Now()
		got, err := l.ReadBlock(ctx, 0)
		lat = append(lat, time.Since(start))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		ok := false
		for x := byte(0); x <= writes; x++ {
			if bytes.Equal(got, val(x)) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("read %d observed a value that was never written", i)
		}
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
	// Zero duplicate side effects: the read soak must not have issued
	// any extra writes (the concurrent writer accounts for exactly
	// `writes` of them).
	if got := st.Writes.Load() - writesBefore; got != writes {
		t.Fatalf("read soak changed the write counter by %d, want %d (writer only)", got, writes)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	// Generous flake floor: a hedged read should finish in well under
	// one gray latency; 3x allows scheduler noise under -race.
	if p99 > 3*grayLat {
		t.Fatalf("hedged read p99 = %v, want <= %v", p99, 3*grayLat)
	}
}

package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Config parameterizes a simulation run.
type Config struct {
	// Model holds the code and message-size parameters.
	Model CostModel
	// Protocol selects the message schedule.
	Protocol Protocol
	// Workload selects reads, writes, or a custom generator.
	Workload WorkloadKind
	// Clients and ThreadsPerClient set the closed-loop population:
	// each thread keeps exactly one operation outstanding.
	Clients          int
	ThreadsPerClient int
	// ClientBW, NodeBW are per-adapter bandwidths in bytes/second.
	ClientBW, NodeBW float64
	// NetworkBW is the shared network fabric bandwidth (0 = unlimited,
	// i.e. a non-blocking switch).
	NetworkBW float64
	// Latency is the one-way network latency.
	Latency time.Duration
	// Duration is the virtual time to simulate.
	Duration time.Duration
	// Seed makes runs deterministic.
	Seed int64
}

// WorkloadKind selects the operation mix.
type WorkloadKind int

// Workloads.
const (
	RandomWrite WorkloadKind = iota + 1
	RandomRead
	SequentialWrite        // full-stripe writes, one block at a time
	SequentialWriteBatched // full-stripe writes via batch-adds (AJX only)
)

func (w WorkloadKind) String() string {
	switch w {
	case RandomWrite:
		return "random-write"
	case RandomRead:
		return "random-read"
	case SequentialWrite:
		return "sequential-write"
	case SequentialWriteBatched:
		return "sequential-write-batched"
	default:
		return "unknown"
	}
}

// Result reports a run's outcome.
type Result struct {
	Ops               int
	PayloadBytes      int64
	Elapsed           time.Duration
	ThroughputBps     float64 // payload bytes per second, aggregate
	AvgLatency        time.Duration
	PerClientOps      []int
	NodeUtilization   []float64
	ClientUtilization []float64
}

// ThroughputMBps converts to the paper's MB/s.
func (r Result) ThroughputMBps() float64 { return r.ThroughputBps / 1e6 }

// Run simulates the configured closed-loop workload and returns
// aggregate results. It is deterministic for a given Config.
func Run(cfg Config) (Result, error) {
	if cfg.Clients <= 0 || cfg.ThreadsPerClient <= 0 {
		return Result{}, fmt.Errorf("sim: need positive clients/threads, got %d/%d", cfg.Clients, cfg.ThreadsPerClient)
	}
	if cfg.Model.N <= cfg.Model.K || cfg.Model.K < 1 {
		return Result{}, fmt.Errorf("sim: invalid code %d-of-%d", cfg.Model.K, cfg.Model.N)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("sim: non-positive duration")
	}

	var gen OpGen
	switch cfg.Workload {
	case RandomWrite:
		gen = cfg.Model.WriteOp(cfg.Protocol)
	case RandomRead:
		gen = cfg.Model.ReadOp(cfg.Protocol)
	case SequentialWrite:
		gen = cfg.Model.StripeWriteOp(cfg.Protocol)
	case SequentialWriteBatched:
		switch cfg.Protocol {
		case AJXPar, AJXSer, AJXHybrid, AJXBcast:
			gen = cfg.Model.StripeWriteBatchedOp(cfg.Protocol)
		default:
			return Result{}, fmt.Errorf("sim: %v does not support batched stripe writes", cfg.Protocol)
		}
	default:
		return Result{}, fmt.Errorf("sim: unknown workload %d", cfg.Workload)
	}

	eng := NewEngine()
	clientNIC := make([]*Link, cfg.Clients)
	clientCPU := make([]*Resource, cfg.Clients)
	for i := range clientNIC {
		clientNIC[i] = NewLink(cfg.ClientBW)
		clientCPU[i] = &Resource{}
	}
	nodeNIC := make([]*Link, cfg.Model.N)
	for i := range nodeNIC {
		nodeNIC[i] = NewLink(cfg.NodeBW)
	}
	var network *Link
	if cfg.NetworkBW > 0 {
		network = NewLink(cfg.NetworkBW)
	}

	res := Result{
		PerClientOps:      make([]int, cfg.Clients),
		NodeUtilization:   make([]float64, cfg.Model.N),
		ClientUtilization: make([]float64, cfg.Clients),
	}
	var latencySum time.Duration

	rng := rand.New(rand.NewSource(cfg.Seed))

	// sendMsg drives one exchange through the resource chain,
	// acquiring each resource when the message reaches it (events fire
	// in virtual-time order, so FCFS queuing is respected).
	var sendMsg func(start time.Duration, client int, m Msg, skipUplink bool, done func())
	sendMsg = func(start time.Duration, client int, m Msg, skipUplink bool, done func()) {
		eng.At(start, func() {
			sent := eng.Now()
			if !skipUplink {
				sent = clientNIC[client].Send(eng.Now(), m.ReqBytes)
			}
			eng.At(sent, func() {
				arrived := eng.Now() + cfg.Latency
				if network != nil {
					arrived = network.Send(eng.Now(), m.ReqBytes) + cfg.Latency
				}
				eng.At(arrived, func() {
					served := nodeNIC[m.Node].Send(eng.Now(), m.ReqBytes) + m.ServerTime
					eng.At(served, func() {
						replied := nodeNIC[m.Node].Send(eng.Now(), m.RepBytes)
						eng.At(replied, func() {
							back := eng.Now() + cfg.Latency
							if network != nil {
								back = network.Send(eng.Now(), m.RepBytes) + cfg.Latency
							}
							eng.At(back, func() {
								delivered := clientNIC[client].Send(eng.Now(), m.RepBytes)
								eng.At(delivered, func() { done() })
							})
						})
					})
				})
			})
		})
	}

	// runRounds executes an op's rounds sequentially for one thread.
	var runRounds func(client int, op Op, idx int, opStart time.Duration, next func())
	runRounds = func(client int, op Op, idx int, opStart time.Duration, next func()) {
		if idx == len(op.Rounds) {
			res.Ops++
			res.PerClientOps[client]++
			res.PayloadBytes += int64(op.PayloadBytes)
			latencySum += eng.Now() - opStart
			next()
			return
		}
		round := op.Rounds[idx]
		if len(round.Msgs) == 0 {
			runRounds(client, op, idx+1, opStart, next)
			return
		}
		remaining := len(round.Msgs)
		onDone := func() {
			remaining--
			if remaining == 0 {
				runRounds(client, op, idx+1, opStart, next)
			}
		}
		if round.Broadcast {
			// One uplink transmission for the shared payload plus a
			// header per extra recipient; recipients then proceed in
			// parallel without re-charging the uplink.
			size := round.Msgs[0].ReqBytes + (len(round.Msgs)-1)*smallHeader
			sent := clientNIC[client].Send(eng.Now(), size)
			for _, m := range round.Msgs {
				sendMsg(sent, client, m, true, onDone)
			}
			return
		}
		for _, m := range round.Msgs {
			sendMsg(eng.Now(), client, m, false, onDone)
		}
	}

	// Closed-loop threads: issue, complete, repeat until the horizon.
	var startOp func(client int)
	startOp = func(client int) {
		if eng.Now() >= cfg.Duration {
			return
		}
		op := gen(rng)
		ready := clientCPU[client].Acquire(eng.Now(), op.CPU)
		eng.At(ready, func() {
			runRounds(client, op, 0, eng.Now(), func() { startOp(client) })
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		for th := 0; th < cfg.ThreadsPerClient; th++ {
			startOp(c)
		}
	}

	eng.Run(cfg.Duration)

	res.Elapsed = cfg.Duration
	res.ThroughputBps = float64(res.PayloadBytes) / cfg.Duration.Seconds()
	if res.Ops > 0 {
		res.AvgLatency = latencySum / time.Duration(res.Ops)
	}
	for i, l := range nodeNIC {
		res.NodeUtilization[i] = l.Utilization(cfg.Duration)
	}
	for i, l := range clientNIC {
		res.ClientUtilization[i] = l.Utilization(cfg.Duration)
	}
	return res, nil
}

// smallHeader is the assumed per-message framing cost for broadcast
// fan-out accounting; kept in sync with the cost model's defaults.
const smallHeader = 48

// DefaultModel returns a cost model tuned against the shaped-transport
// measurements of the real implementation (the paper similarly tuned
// its simulator against its 8-host testbed): ~48-byte headers, 5 us
// service time, and ~0.4 us of client field arithmetic per 1 KB block
// (Fig. 8's Delta+Add).
func DefaultModel(k, n, blockSize int) CostModel {
	return CostModel{
		K: k, N: n,
		BlockSize:   blockSize,
		HeaderBytes: smallHeader,
		ServerTime:  5 * time.Microsecond,
		CPUPerBlock: 400 * time.Nanosecond,
		HybridGroup: 1,
	}
}

// DefaultConfig mirrors the paper's testbed parameters: 500 Mbit/s
// adapters, 25 us one-way latency, non-blocking switch.
func DefaultConfig(k, n, blockSize, clients, threads int, proto Protocol, w WorkloadKind) Config {
	return Config{
		Model:            DefaultModel(k, n, blockSize),
		Protocol:         proto,
		Workload:         w,
		Clients:          clients,
		ThreadsPerClient: threads,
		ClientBW:         500e6 / 8,
		NodeBW:           500e6 / 8,
		Latency:          25 * time.Microsecond,
		Duration:         time.Second,
		Seed:             1,
	}
}

// Package sim is a discrete-event simulator for erasure-coded
// distributed storage protocols, following the methodology of the
// paper's Section 5.2: client nodes have a processor and a network
// adapter of limited bandwidth, the network adds latency and has its
// own bandwidth, and storage nodes charge per-operation service time
// on their adapters. Protocols are expressed as message schedules
// (rounds of request/reply exchanges), so the AJX variants and the
// FAB/GWGR baselines run under identical network assumptions.
//
// The simulator is single-threaded and deterministic: virtual time
// only, no goroutines, no wall-clock dependence.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a deterministic discrete-event scheduler over virtual
// time.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d from now.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the queue empties or virtual time
// passes horizon. Events scheduled beyond the horizon stay unprocessed.
func (e *Engine) Run(horizon time.Duration) {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > horizon {
			e.now = horizon
			return
		}
		e.now = ev.at
		ev.fn()
	}
}

// Resource is a first-come-first-served serial resource (a CPU, a NIC,
// or the shared network): each acquisition books the resource for a
// duration, queuing behind earlier acquisitions.
type Resource struct {
	nextFree time.Duration
	busy     time.Duration // total booked time, for utilization stats
}

// Acquire books the resource for dur starting no earlier than now,
// returning the completion time.
func (r *Resource) Acquire(now, dur time.Duration) time.Duration {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	done := start + dur
	r.nextFree = done
	r.busy += dur
	return done
}

// Utilization returns the fraction of the elapsed virtual time the
// resource was busy.
func (r *Resource) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.busy) / float64(elapsed)
}

// Link models a bandwidth-limited pipe: transmission time is
// size/bandwidth, serialized FCFS.
type Link struct {
	Resource
	perByte time.Duration
}

// NewLink builds a link with the given bandwidth in bytes per second.
func NewLink(bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic("sim: link bandwidth must be positive")
	}
	return &Link{perByte: time.Duration(float64(time.Second) / bytesPerSec)}
}

// Send books a transmission of size bytes starting at now.
func (l *Link) Send(now time.Duration, size int) time.Duration {
	return l.Acquire(now, time.Duration(size)*l.perByte)
}

package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestEngineOrdersEvents(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.At(30*time.Millisecond, func() { order = append(order, 3) })
	eng.At(10*time.Millisecond, func() { order = append(order, 1) })
	eng.At(20*time.Millisecond, func() { order = append(order, 2) })
	eng.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 30*time.Millisecond {
		t.Fatalf("now = %v", eng.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		eng.At(time.Millisecond, func() { order = append(order, i) })
	}
	eng.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(2*time.Second, func() { fired = true })
	eng.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	eng := NewEngine()
	var at time.Duration
	eng.At(10*time.Millisecond, func() {
		eng.At(5*time.Millisecond, func() { at = eng.Now() }) // in the past
	})
	eng.Run(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v", at)
	}
}

func TestResourceQueues(t *testing.T) {
	var r Resource
	d1 := r.Acquire(0, 10*time.Millisecond)
	d2 := r.Acquire(0, 10*time.Millisecond)
	d3 := r.Acquire(25*time.Millisecond, 10*time.Millisecond)
	if d1 != 10*time.Millisecond || d2 != 20*time.Millisecond || d3 != 35*time.Millisecond {
		t.Fatalf("acquisitions: %v %v %v", d1, d2, d3)
	}
	if got := r.Utilization(100 * time.Millisecond); got < 0.29 || got > 0.31 {
		t.Fatalf("utilization = %v, want 0.30", got)
	}
}

func TestLinkSend(t *testing.T) {
	l := NewLink(1e6) // 1 MB/s
	done := l.Send(0, 1000)
	if done != time.Millisecond {
		t.Fatalf("1000 bytes at 1 MB/s = %v, want 1ms", done)
	}
}

func TestLinkPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink(0) did not panic")
		}
	}()
	NewLink(0)
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(2, 4, 1024, 1, 1, AJXPar, RandomWrite)
	cfg.Clients = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero clients accepted")
	}
	cfg = DefaultConfig(2, 4, 1024, 1, 1, AJXPar, RandomWrite)
	cfg.Model.K = 4
	if _, err := Run(cfg); err == nil {
		t.Error("invalid code accepted")
	}
	cfg = DefaultConfig(2, 4, 1024, 1, 1, AJXPar, RandomWrite)
	cfg.Duration = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = DefaultConfig(2, 4, 1024, 1, 1, AJXPar, WorkloadKind(99))
	if _, err := Run(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(3, 5, 1024, 2, 8, AJXPar, RandomWrite)
	cfg.Duration = 200 * time.Millisecond
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ops != r2.Ops || r1.PayloadBytes != r2.PayloadBytes {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d ops/bytes", r1.Ops, r1.PayloadBytes, r2.Ops, r2.PayloadBytes)
	}
}

func TestWriteThroughputBoundedByClientUplink(t *testing.T) {
	// One client, AJX-par, p=2: each written block pushes ~(p+1)B up
	// the client link, so payload throughput <= ClientBW/(p+1).
	cfg := DefaultConfig(2, 4, 1024, 1, 32, AJXPar, RandomWrite)
	cfg.Duration = 500 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxPayload := cfg.ClientBW / 3 // (p+1) = 3 block-size transmissions per write
	if r.ThroughputBps > maxPayload*1.05 {
		t.Fatalf("throughput %.0f exceeds uplink bound %.0f", r.ThroughputBps, maxPayload)
	}
	if r.ThroughputBps < maxPayload*0.5 {
		t.Fatalf("throughput %.0f is far below the uplink bound %.0f — pipelining broken?", r.ThroughputBps, maxPayload)
	}
}

func TestReadsFasterThanWrites(t *testing.T) {
	// Section 6.2: read throughput is ~4-5x write throughput (reads
	// move one block; writes move p+2).
	w, err := Run(DefaultConfig(3, 5, 1024, 2, 32, AJXPar, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(DefaultConfig(3, 5, 1024, 2, 32, AJXPar, RandomRead))
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.ThroughputBps / w.ThroughputBps
	if ratio < 2 {
		t.Fatalf("read/write throughput ratio = %.2f, want clearly > 2", ratio)
	}
}

func TestMoreClientsMoreThroughput(t *testing.T) {
	// Fig. 10(a): aggregate write throughput grows with the client
	// count until storage nodes saturate.
	t1, err := Run(DefaultConfig(4, 6, 1024, 1, 16, AJXPar, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Run(DefaultConfig(4, 6, 1024, 4, 16, AJXPar, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	if t4.ThroughputBps <= t1.ThroughputBps*1.5 {
		t.Fatalf("4 clients (%.0f) not clearly faster than 1 (%.0f)", t4.ThroughputBps, t1.ThroughputBps)
	}
}

func TestWriteThroughputDecreasesWithRedundancy(t *testing.T) {
	// Fig. 9(c)/10(c): more redundancy, less client write throughput.
	prev := 1e18
	for _, p := range []int{1, 2, 4} {
		cfg := DefaultConfig(4, 4+p, 1024, 1, 32, AJXPar, RandomWrite)
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.ThroughputBps >= prev {
			t.Fatalf("throughput did not decrease at p=%d: %.0f >= %.0f", p, r.ThroughputBps, prev)
		}
		prev = r.ThroughputBps
	}
}

func TestBroadcastFlatInRedundancy(t *testing.T) {
	// Fig. 10(d): with broadcast, a single client's write throughput
	// barely depends on n-k.
	r1, err := Run(DefaultConfig(4, 5, 1024, 1, 32, AJXBcast, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(DefaultConfig(4, 12, 1024, 1, 32, AJXBcast, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	drop := (r1.ThroughputBps - r8.ThroughputBps) / r1.ThroughputBps
	// Headers cost a little per extra recipient, so "flat" means a
	// drop well under what the extra p-1 payload copies would cost.
	if drop > 0.25 {
		t.Fatalf("broadcast throughput dropped %.0f%% from p=1 to p=8, want ~flat", drop*100)
	}
	// Whereas unicast parallel drops sharply across the same span.
	u1, _ := Run(DefaultConfig(4, 5, 1024, 1, 32, AJXPar, RandomWrite))
	u8, _ := Run(DefaultConfig(4, 12, 1024, 1, 32, AJXPar, RandomWrite))
	uniDrop := (u1.ThroughputBps - u8.ThroughputBps) / u1.ThroughputBps
	if uniDrop < 0.4 {
		t.Fatalf("unicast dropped only %.0f%% from p=1 to p=8, expected a sharp decline", uniDrop*100)
	}
	if uniDrop < 2*drop {
		t.Fatalf("unicast drop (%.0f%%) not clearly worse than broadcast drop (%.0f%%)", uniDrop*100, drop*100)
	}
}

func TestAJXBeatsFABAndGWGROnRandomWrites(t *testing.T) {
	// Fig. 1's punchline: for random single-block writes with an
	// efficient code (large k, small p), AJX touches 1+p nodes while
	// FAB touches n and GWGR rewrites whole stripes.
	const k, n = 8, 10
	ajx, err := Run(DefaultConfig(k, n, 1024, 4, 16, AJXPar, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	fab, err := Run(DefaultConfig(k, n, 1024, 4, 16, FAB, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	gwgr, err := Run(DefaultConfig(k, n, 1024, 4, 16, GWGR, RandomWrite))
	if err != nil {
		t.Fatal(err)
	}
	if ajx.ThroughputBps < 1.5*fab.ThroughputBps {
		t.Fatalf("AJX (%.0f) not clearly ahead of FAB (%.0f)", ajx.ThroughputBps, fab.ThroughputBps)
	}
	if ajx.ThroughputBps < 1.5*gwgr.ThroughputBps {
		t.Fatalf("AJX (%.0f) not clearly ahead of GWGR (%.0f)", ajx.ThroughputBps, gwgr.ThroughputBps)
	}
}

func TestSerialWriteHigherLatencyThanParallel(t *testing.T) {
	// In the latency-dominated regime (huge bandwidth), the round-trip
	// counts of Fig. 1 show directly: serial takes 1+p round trips vs
	// 2 for parallel, so with p=4 the ratio approaches 2.5.
	mk := func(proto Protocol) Config {
		cfg := DefaultConfig(4, 8, 1024, 1, 1, proto, RandomWrite)
		cfg.ClientBW = 1e12
		cfg.NodeBW = 1e12
		return cfg
	}
	ser, err := Run(mk(AJXSer))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(mk(AJXPar))
	if err != nil {
		t.Fatal(err)
	}
	if ser.AvgLatency <= par.AvgLatency*2 {
		t.Fatalf("serial latency %v not clearly above parallel %v (p=4)", ser.AvgLatency, par.AvgLatency)
	}
}

func TestHybridLatencyBetweenSerAndPar(t *testing.T) {
	cfg := DefaultConfig(4, 8, 1024, 1, 1, AJXHybrid, RandomWrite)
	cfg.Model.HybridGroup = 2 // 2 groups of 2
	hyb, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser, _ := Run(DefaultConfig(4, 8, 1024, 1, 1, AJXSer, RandomWrite))
	par, _ := Run(DefaultConfig(4, 8, 1024, 1, 1, AJXPar, RandomWrite))
	if !(par.AvgLatency < hyb.AvgLatency && hyb.AvgLatency < ser.AvgLatency) {
		t.Fatalf("latencies not ordered: par %v, hybrid %v, ser %v", par.AvgLatency, hyb.AvgLatency, ser.AvgLatency)
	}
}

func TestReadThroughputIndependentOfK(t *testing.T) {
	// Fig. 10(b): AJX reads never touch redundant nodes, so read
	// throughput depends on n (node count) but not on k.
	a, err := Run(DefaultConfig(4, 8, 1024, 2, 32, AJXPar, RandomRead))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(6, 8, 1024, 2, 32, AJXPar, RandomRead))
	if err != nil {
		t.Fatal(err)
	}
	diff := (a.ThroughputBps - b.ThroughputBps) / a.ThroughputBps
	if diff < -0.1 || diff > 0.1 {
		t.Fatalf("read throughput varied %.0f%% with k at fixed n", diff*100)
	}
}

func TestProtocolStrings(t *testing.T) {
	for p, want := range map[Protocol]string{
		AJXPar: "AJX-par", AJXSer: "AJX-ser", AJXHybrid: "AJX-hybrid",
		AJXBcast: "AJX-bcast", FAB: "FAB", GWGR: "GWGR", Protocol(0): "unknown",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
	for w, want := range map[WorkloadKind]string{
		RandomWrite: "random-write", RandomRead: "random-read",
		SequentialWrite: "sequential-write", WorkloadKind(0): "unknown",
	} {
		if got := w.String(); got != want {
			t.Errorf("workload %d = %q, want %q", w, got, want)
		}
	}
}

func TestCostModelMessageCounts(t *testing.T) {
	// The generated schedules must carry exactly the message counts of
	// Fig. 1 (requests; replies are implicit).
	m := DefaultModel(4, 7, 1024) // p = 3
	rng := rand.New(rand.NewSource(1))
	count := func(op Op) int {
		total := 0
		for _, r := range op.Rounds {
			total += len(r.Msgs)
		}
		return total
	}
	if got := count(m.WriteOp(AJXPar)(rng)); got != 1+3 {
		t.Errorf("AJX-par write msgs = %d, want 4 (2(p+1) wire msgs)", got)
	}
	if got := count(m.ReadOp(AJXPar)(rng)); got != 1 {
		t.Errorf("AJX read msgs = %d, want 1", got)
	}
	if got := count(m.WriteOp(FAB)(rng)); got != 2*7 {
		t.Errorf("FAB write msgs = %d, want 2n", got)
	}
	if got := count(m.ReadOp(FAB)(rng)); got != 4 {
		t.Errorf("FAB read msgs = %d, want k", got)
	}
	if got := count(m.ReadOp(GWGR)(rng)); got != 7 {
		t.Errorf("GWGR read msgs = %d, want n", got)
	}
	if got := count(m.WriteOp(GWGR)(rng)); got != 7+2*7 {
		t.Errorf("GWGR block update msgs = %d, want n (read) + 2n (write)", got)
	}
	// Rounds: par = 2, ser = 1+p, hybrid(group 2) = 1+2.
	if got := len(m.WriteOp(AJXPar)(rng).Rounds); got != 2 {
		t.Errorf("AJX-par rounds = %d", got)
	}
	if got := len(m.WriteOp(AJXSer)(rng).Rounds); got != 4 {
		t.Errorf("AJX-ser rounds = %d", got)
	}
	mh := m
	mh.HybridGroup = 2
	if got := len(mh.WriteOp(AJXHybrid)(rng).Rounds); got != 3 {
		t.Errorf("AJX-hybrid rounds = %d", got)
	}
	if got := len(m.WriteOp(AJXBcast)(rng).Rounds); got != 2 {
		t.Errorf("AJX-bcast rounds = %d", got)
	}
}

func TestSequentialWritePayload(t *testing.T) {
	m := DefaultModel(4, 6, 1024)
	rng := rand.New(rand.NewSource(2))
	op := m.StripeWriteOp(AJXPar)(rng)
	if op.PayloadBytes != 4*1024 {
		t.Fatalf("stripe write payload = %d", op.PayloadBytes)
	}
	gw := m.StripeWriteOp(GWGR)(rng)
	if gw.PayloadBytes != 4*1024 {
		t.Fatalf("GWGR stripe write payload = %d", gw.PayloadBytes)
	}
}

func TestBatchedStripeWriteFasterThanPerBlock(t *testing.T) {
	per, err := Run(DefaultConfig(8, 12, 1024, 1, 8, AJXPar, SequentialWrite))
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Run(DefaultConfig(8, 12, 1024, 1, 8, AJXPar, SequentialWriteBatched))
	if err != nil {
		t.Fatal(err)
	}
	if bat.ThroughputBps <= per.ThroughputBps {
		t.Fatalf("batched (%.0f) not faster than per-block (%.0f)", bat.ThroughputBps, per.ThroughputBps)
	}
}

func TestBatchedStripeWriteRejectsBaselines(t *testing.T) {
	if _, err := Run(DefaultConfig(4, 6, 1024, 1, 1, FAB, SequentialWriteBatched)); err == nil {
		t.Fatal("FAB accepted a batched stripe write workload")
	}
}

func TestSharedNetworkBandwidthCaps(t *testing.T) {
	// With a constrained shared fabric, aggregate throughput must cap
	// near NetworkBW divided by the bytes-per-payload factor, no matter
	// how many clients push.
	cfg := DefaultConfig(2, 4, 1024, 8, 16, AJXPar, RandomWrite)
	cfg.NetworkBW = 8e6 // 8 MB/s shared fabric — far below the NICs
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each write moves ~(p+2)B + headers + replies through the fabric
	// (both directions): payload throughput well under NetworkBW.
	if r.ThroughputBps > cfg.NetworkBW {
		t.Fatalf("payload throughput %.0f exceeds the shared fabric bandwidth %.0f", r.ThroughputBps, cfg.NetworkBW)
	}
	// And the cap must bind: an unconstrained run is much faster.
	cfg2 := cfg
	cfg2.NetworkBW = 0
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ThroughputBps < 2*r.ThroughputBps {
		t.Fatalf("removing the fabric cap did not help (%.0f vs %.0f)", r2.ThroughputBps, r.ThroughputBps)
	}
}

func TestUtilizationReporting(t *testing.T) {
	cfg := DefaultConfig(2, 4, 1024, 2, 16, AJXPar, RandomWrite)
	cfg.Duration = 100 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ClientUtilization) != 2 || len(r.NodeUtilization) != 4 {
		t.Fatalf("utilization lengths: %d clients, %d nodes", len(r.ClientUtilization), len(r.NodeUtilization))
	}
	for i, u := range r.ClientUtilization {
		if u <= 0 || u > 1.01 {
			t.Fatalf("client %d utilization = %v", i, u)
		}
	}
	total := 0
	for _, ops := range r.PerClientOps {
		total += ops
	}
	if total != r.Ops {
		t.Fatalf("per-client ops sum %d != total %d", total, r.Ops)
	}
}

package sim

import (
	"math/rand"
	"time"
)

// Msg is one request/reply exchange with a storage node.
type Msg struct {
	Node       int // physical node index
	ReqBytes   int
	RepBytes   int
	ServerTime time.Duration
}

// Round is a set of exchanges issued together; the next round starts
// only when every exchange of this one has completed. Broadcast rounds
// charge the client uplink once for the shared payload (plus a header
// per extra recipient).
type Round struct {
	Broadcast bool
	Msgs      []Msg
}

// Op is one client operation: optional client CPU work followed by a
// sequence of rounds. PayloadBytes is the application data moved,
// which throughput is measured in.
type Op struct {
	CPU          time.Duration
	Rounds       []Round
	PayloadBytes int
}

// OpGen produces the next operation for a client thread. Generators
// are pure functions of the rng, so runs are deterministic per seed.
type OpGen func(rng *rand.Rand) Op

// Protocol identifies a message-schedule model.
type Protocol int

// Protocols available to the simulator.
const (
	AJXPar Protocol = iota + 1
	AJXSer
	AJXHybrid
	AJXBcast
	FAB
	GWGR
)

func (p Protocol) String() string {
	switch p {
	case AJXPar:
		return "AJX-par"
	case AJXSer:
		return "AJX-ser"
	case AJXHybrid:
		return "AJX-hybrid"
	case AJXBcast:
		return "AJX-bcast"
	case FAB:
		return "FAB"
	case GWGR:
		return "GWGR"
	default:
		return "unknown"
	}
}

// CostModel captures the parameters that determine message schedules.
type CostModel struct {
	K, N        int
	BlockSize   int
	HeaderBytes int           // per-message framing + op arguments
	ServerTime  time.Duration // storage-node service time per request
	CPUPerBlock time.Duration // client field-arithmetic time per block
	HybridGroup int           // group size for AJXHybrid (<= d_serial)
}

func (m CostModel) p() int { return m.N - m.K }

// stripeNodes places a random stripe: the data node serving slot i and
// the rotated redundant nodes.
func (m CostModel) stripeNodes(rng *rand.Rand) (dataNode int, redundant []int) {
	stripeRot := rng.Intn(m.N)
	slot := rng.Intn(m.K)
	dataNode = (slot + stripeRot) % m.N
	redundant = make([]int, 0, m.p())
	for j := m.K; j < m.N; j++ {
		redundant = append(redundant, (j+stripeRot)%m.N)
	}
	return dataNode, redundant
}

func (m CostModel) small() int { return m.HeaderBytes }
func (m CostModel) big() int   { return m.HeaderBytes + m.BlockSize }

// WriteOp returns the operation generator for single-block writes
// under the given protocol.
func (m CostModel) WriteOp(p Protocol) OpGen {
	switch p {
	case AJXPar:
		return m.ajxWriteGrouped(m.p()) // one parallel batch
	case AJXSer:
		return m.ajxWriteGrouped(1) // one node per round
	case AJXHybrid:
		g := m.HybridGroup
		if g < 1 {
			g = 1
		}
		return m.ajxWriteGrouped(g)
	case AJXBcast:
		return m.ajxWriteBcast()
	case FAB:
		return m.fabWrite()
	case GWGR:
		// GWGR writes whole stripes; a single-block update is a
		// client-level read-modify-write of the stripe.
		return m.gwgrBlockUpdate()
	default:
		panic("sim: unknown protocol")
	}
}

// ReadOp returns the generator for single-block reads.
func (m CostModel) ReadOp(p Protocol) OpGen {
	switch p {
	case AJXPar, AJXSer, AJXHybrid, AJXBcast:
		return func(rng *rand.Rand) Op {
			dataNode, _ := m.stripeNodes(rng)
			return Op{
				Rounds: []Round{{Msgs: []Msg{
					{Node: dataNode, ReqBytes: m.small(), RepBytes: m.big(), ServerTime: m.ServerTime},
				}}},
				PayloadBytes: m.BlockSize,
			}
		}
	case FAB:
		// FAB reads contact k nodes (2k messages); one reply carries
		// the block (read bandwidth B in Fig. 1).
		return func(rng *rand.Rand) Op {
			_, _ = m.stripeNodes(rng)
			first := rng.Intn(m.N)
			msgs := make([]Msg, 0, m.K)
			for i := 0; i < m.K; i++ {
				rep := m.small()
				if i == 0 {
					rep = m.big()
				}
				msgs = append(msgs, Msg{Node: (first + i) % m.N, ReqBytes: m.small(), RepBytes: rep, ServerTime: m.ServerTime})
			}
			return Op{Rounds: []Round{{Msgs: msgs}}, PayloadBytes: m.BlockSize}
		}
	case GWGR:
		// GWGR reads the whole stripe from all n nodes (2n messages,
		// nB bandwidth) to return k blocks of data.
		return func(rng *rand.Rand) Op {
			msgs := make([]Msg, 0, m.N)
			for j := 0; j < m.N; j++ {
				msgs = append(msgs, Msg{Node: j, ReqBytes: m.small(), RepBytes: m.big(), ServerTime: m.ServerTime})
			}
			return Op{Rounds: []Round{{Msgs: msgs}}, PayloadBytes: m.BlockSize * m.K}
		}
	default:
		panic("sim: unknown protocol")
	}
}

// ajxWriteGrouped models the AJX write: a swap exchange with the data
// node (block out, old block back), then the p redundant adds in
// groups of the given size — p groups of 1 for AJX-ser, one group of p
// for AJX-par, d_serial-sized groups for the hybrid scheme. The client
// pays field-arithmetic CPU per redundant delta.
func (m CostModel) ajxWriteGrouped(group int) OpGen {
	return func(rng *rand.Rand) Op {
		dataNode, redundant := m.stripeNodes(rng)
		rounds := []Round{{Msgs: []Msg{
			{Node: dataNode, ReqBytes: m.big(), RepBytes: m.big(), ServerTime: m.ServerTime},
		}}}
		for start := 0; start < len(redundant); start += group {
			end := min(start+group, len(redundant))
			var msgs []Msg
			for _, node := range redundant[start:end] {
				msgs = append(msgs, Msg{Node: node, ReqBytes: m.big(), RepBytes: m.small(), ServerTime: m.ServerTime})
			}
			rounds = append(rounds, Round{Msgs: msgs})
		}
		return Op{
			CPU:          time.Duration(m.p()) * m.CPUPerBlock,
			Rounds:       rounds,
			PayloadBytes: m.BlockSize,
		}
	}
}

// ajxWriteBcast models the broadcast write: swap, then one broadcast
// delta that crosses the client uplink once; storage nodes do the
// coefficient multiplication, so the client pays CPU for a single
// delta.
func (m CostModel) ajxWriteBcast() OpGen {
	return func(rng *rand.Rand) Op {
		dataNode, redundant := m.stripeNodes(rng)
		var msgs []Msg
		for _, node := range redundant {
			msgs = append(msgs, Msg{Node: node, ReqBytes: m.big(), RepBytes: m.small(), ServerTime: m.ServerTime})
		}
		return Op{
			CPU: m.CPUPerBlock,
			Rounds: []Round{
				{Msgs: []Msg{{Node: dataNode, ReqBytes: m.big(), RepBytes: m.big(), ServerTime: m.ServerTime}}},
				{Broadcast: true, Msgs: msgs},
			},
			PayloadBytes: m.BlockSize,
		}
	}
}

// fabWrite models FAB's erasure-coded write: every write engages all n
// nodes for two rounds (4n messages), moving about (2n+1)B — the
// update data twice (log, then commit-apply) plus the old block.
func (m CostModel) fabWrite() OpGen {
	return func(rng *rand.Rand) Op {
		var r1, r2 []Msg
		for j := 0; j < m.N; j++ {
			rep := m.small()
			if j == 0 {
				rep = m.big() // old-version read-back
			}
			r1 = append(r1, Msg{Node: j, ReqBytes: m.big(), RepBytes: rep, ServerTime: m.ServerTime})
			r2 = append(r2, Msg{Node: j, ReqBytes: m.big(), RepBytes: m.small(), ServerTime: m.ServerTime})
		}
		return Op{
			CPU:          time.Duration(m.p()) * m.CPUPerBlock,
			Rounds:       []Round{{Msgs: r1}, {Msgs: r2}},
			PayloadBytes: m.BlockSize,
		}
	}
}

// gwgrStripeWrite models GWGR's native operation: write an entire
// stripe (two rounds to all n nodes, nB of data).
func (m CostModel) gwgrStripeWrite() OpGen {
	return func(rng *rand.Rand) Op {
		var r1, r2 []Msg
		for j := 0; j < m.N; j++ {
			r1 = append(r1, Msg{Node: j, ReqBytes: m.big(), RepBytes: m.small(), ServerTime: m.ServerTime})
			r2 = append(r2, Msg{Node: j, ReqBytes: m.small(), RepBytes: m.small(), ServerTime: m.ServerTime})
		}
		return Op{
			CPU:          time.Duration(m.N) * m.CPUPerBlock,
			Rounds:       []Round{{Msgs: r1}, {Msgs: r2}},
			PayloadBytes: m.BlockSize * m.K,
		}
	}
}

// gwgrBlockUpdate models updating one block under GWGR: read the
// stripe, re-encode, write the stripe back (the paper notes GWGR's
// minimum write granularity is k blocks).
func (m CostModel) gwgrBlockUpdate() OpGen {
	read := m.ReadOp(GWGR)
	write := m.gwgrStripeWrite()
	return func(rng *rand.Rand) Op {
		r := read(rng)
		w := write(rng)
		return Op{
			CPU:          w.CPU,
			Rounds:       append(r.Rounds, w.Rounds...),
			PayloadBytes: m.BlockSize, // one logical block updated
		}
	}
}

// StripeWriteBatchedOp models the batched full-stripe write of
// Section 3.11 as implemented by core.WriteStripe: k parallel swaps,
// then one combined delta per redundant node. Only the AJX protocols
// support it.
func (m CostModel) StripeWriteBatchedOp(p Protocol) OpGen {
	switch p {
	case AJXPar, AJXSer, AJXHybrid, AJXBcast:
	default:
		panic("sim: batched stripe writes are an AJX operation")
	}
	return func(rng *rand.Rand) Op {
		stripeRot := rng.Intn(m.N)
		swaps := make([]Msg, 0, m.K)
		for i := 0; i < m.K; i++ {
			swaps = append(swaps, Msg{Node: (i + stripeRot) % m.N, ReqBytes: m.big(), RepBytes: m.big(), ServerTime: m.ServerTime})
		}
		batches := make([]Msg, 0, m.p())
		for j := m.K; j < m.N; j++ {
			batches = append(batches, Msg{Node: (j + stripeRot) % m.N, ReqBytes: m.big(), RepBytes: m.small(), ServerTime: m.ServerTime})
		}
		return Op{
			CPU:          time.Duration(m.K*m.p()) * m.CPUPerBlock,
			Rounds:       []Round{{Msgs: swaps}, {Msgs: batches}},
			PayloadBytes: m.BlockSize * m.K,
		}
	}
}

// StripeWriteOp exposes the protocols' best-case sequential write:
// full-stripe writes. AJX writes each block in turn (k swaps + k*p
// adds, pipelined by the runner's threads); GWGR uses its native
// stripe write; FAB writes each block.
func (m CostModel) StripeWriteOp(p Protocol) OpGen {
	if p == GWGR {
		return m.gwgrStripeWrite()
	}
	single := m.WriteOp(p)
	return func(rng *rand.Rand) Op {
		var rounds []Round
		var cpu time.Duration
		for i := 0; i < m.K; i++ {
			op := single(rng)
			rounds = append(rounds, op.Rounds...)
			cpu += op.CPU
		}
		return Op{CPU: cpu, Rounds: rounds, PayloadBytes: m.BlockSize * m.K}
	}
}

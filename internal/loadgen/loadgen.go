// Package loadgen is an open-loop load generator for the object
// gateway. Arrivals are Poisson (exponential inter-arrival times at
// the offered rate), so a slow or shedding server does not slow the
// generator down — queueing delay shows up in the measured latency
// instead of silently throttling the offered load, the classic
// closed-loop coordinated-omission mistake. Key popularity is Zipfian
// with a configurable exponent (hand-rolled CDF sampler, so s <= 1 —
// including the canonical s = 0.99 — works, unlike math/rand's Zipf).
//
// Each tenant runs its own arrival process against a Target (the
// in-process gateway, an HTTP front end, or the raw Store for
// overhead baselines) and reports latency quantiles from an
// obs.Histogram plus typed shed counts.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
)

// Target is the system under load. Implementations must be safe for
// concurrent use.
type Target interface {
	// Put stores body as tenant's key.
	Put(ctx context.Context, tenant, key string, body []byte) error
	// Get reads tenant's key end to end and returns the byte count.
	Get(ctx context.Context, tenant, key string) (int64, error)
}

// Preloader is optionally implemented by Targets with an unmetered
// write path. Preload uses it so warming a rate-capped tenant's
// keyspace does not start the measured window with the tenant already
// in QoS debt; targets without one (e.g. HTTP) fall back to metered
// Puts retried through throttling.
type Preloader interface {
	Preload(ctx context.Context, tenant, key string, body []byte) error
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s, for any s >= 0 (s=0 is uniform). It precomputes the
// CDF once and binary-searches per sample, so construction is O(n)
// and sampling O(log n).
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n keys with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: zipf over %d keys", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("loadgen: zipf exponent %v", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &Zipf{cdf: cdf}, nil
}

// Sample maps a uniform u in [0,1) to a rank.
func (z *Zipf) Sample(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the keyspace size.
func (z *Zipf) N() int { return len(z.cdf) }

// TenantConfig shapes one tenant's offered load.
type TenantConfig struct {
	Name string
	// Rate is the offered load in ops/s (the Poisson arrival rate).
	Rate float64
	// ReadFraction of arrivals are Gets; the rest are Puts. [0,1].
	ReadFraction float64
	// Keys is the keyspace size.
	Keys int
	// ZipfS is the popularity exponent (0 uniform, 0.99 canonical hot-spot).
	ZipfS float64
	// ObjectSize is every object's body length in bytes.
	ObjectSize int
}

// Config drives one Run.
type Config struct {
	Tenants []TenantConfig
	// Duration is the measured window.
	Duration time.Duration
	// Seed makes arrival times, key picks, and op mixes reproducible.
	Seed int64
	// Preload writes every tenant's whole keyspace once before the
	// clock starts, so Gets never miss.
	Preload bool
	// Settle is slept between preload and the measured window, letting
	// QoS buckets refill the budget the preload spent.
	Settle time.Duration
	// MaxOutstanding bounds each tenant's in-flight ops (default 1024).
	// At the bound the arrival process blocks — the generator degrades
	// toward closed-loop rather than spawning unbounded goroutines.
	MaxOutstanding int
}

// Result is one tenant's measured outcome.
type Result struct {
	Tenant  string
	Elapsed time.Duration

	// Offered counts arrivals; Completed the ops that returned success.
	Offered, Completed uint64
	Reads, Writes      uint64
	// Throttled / Overloaded count typed sheds (proto.ErrThrottled /
	// proto.ErrOverloaded + ErrDraining); Errors everything else.
	Throttled, Overloaded, Errors uint64
	// Bytes moved by completed ops (bodies in plus bodies out).
	Bytes uint64

	// Latency quantiles over completed ops.
	P50, P95, P99, Max time.Duration

	// AchievedOps is Completed/Elapsed.
	AchievedOps float64
}

// tenantRun is one tenant's live accounting.
type tenantRun struct {
	cfg  TenantConfig
	zipf *Zipf

	offered, completed    atomic.Uint64
	reads, writes         atomic.Uint64
	throttled, overloaded atomic.Uint64
	errs                  atomic.Uint64
	bytes                 atomic.Uint64
	maxNs                 atomic.Int64

	lat *obs.Histogram
}

func (tr *tenantRun) observe(d time.Duration) {
	tr.lat.Observe(d)
	for {
		cur := tr.maxNs.Load()
		if int64(d) <= cur || tr.maxNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Run generates load against tgt and blocks until the window closes
// and every in-flight op finishes. Cancelling ctx ends the run early;
// results cover whatever was measured.
func Run(ctx context.Context, cfg Config, tgt Target) ([]Result, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("loadgen: no tenants")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration %v", cfg.Duration)
	}
	maxOut := cfg.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 1024
	}
	reg := obs.NewRegistry()
	runs := make([]*tenantRun, len(cfg.Tenants))
	for i, tc := range cfg.Tenants {
		if tc.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: tenant %q rate %v", tc.Name, tc.Rate)
		}
		if tc.ObjectSize < 0 || tc.Keys <= 0 {
			return nil, fmt.Errorf("loadgen: tenant %q size %d keys %d", tc.Name, tc.ObjectSize, tc.Keys)
		}
		z, err := NewZipf(tc.Keys, tc.ZipfS)
		if err != nil {
			return nil, err
		}
		runs[i] = &tenantRun{cfg: tc, zipf: z, lat: reg.Histogram("loadgen." + tc.Name + ".latency")}
	}

	if cfg.Preload {
		put := tgt.Put
		if p, ok := tgt.(Preloader); ok {
			put = p.Preload
		}
		for _, tr := range runs {
			body := objectBody(tr.cfg.Name, tr.cfg.ObjectSize)
			for k := 0; k < tr.cfg.Keys; k++ {
				for {
					err := put(ctx, tr.cfg.Name, keyName(k), body)
					if err == nil {
						break
					}
					// Metered fallback path: wait out backpressure.
					if errors.Is(err, proto.ErrThrottled) || errors.Is(err, proto.ErrOverloaded) {
						select {
						case <-time.After(50 * time.Millisecond):
							continue
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
					return nil, fmt.Errorf("loadgen: preload %s/%s: %w", tr.cfg.Name, keyName(k), err)
				}
			}
		}
		if cfg.Settle > 0 {
			select {
			case <-time.After(cfg.Settle):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i, tr := range runs {
		wg.Add(1)
		go func(seed int64, tr *tenantRun) {
			defer wg.Done()
			drive(runCtx, tr, tgt, seed, maxOut)
		}(cfg.Seed+int64(i)*7919, tr)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := make([]Result, len(runs))
	for i, tr := range runs {
		completed := tr.completed.Load()
		out[i] = Result{
			Tenant:      tr.cfg.Name,
			Elapsed:     elapsed,
			Offered:     tr.offered.Load(),
			Completed:   completed,
			Reads:       tr.reads.Load(),
			Writes:      tr.writes.Load(),
			Throttled:   tr.throttled.Load(),
			Overloaded:  tr.overloaded.Load(),
			Errors:      tr.errs.Load(),
			Bytes:       tr.bytes.Load(),
			P50:         tr.lat.Quantile(0.50),
			P95:         tr.lat.Quantile(0.95),
			P99:         tr.lat.Quantile(0.99),
			Max:         time.Duration(tr.maxNs.Load()),
			AchievedOps: float64(completed) / elapsed.Seconds(),
		}
	}
	return out, nil
}

// drive is one tenant's open-loop arrival process.
func drive(ctx context.Context, tr *tenantRun, tgt Target, seed int64, maxOut int) {
	rng := rand.New(rand.NewSource(seed))
	body := objectBody(tr.cfg.Name, tr.cfg.ObjectSize)
	slots := make(chan struct{}, maxOut)
	var ops sync.WaitGroup
	defer ops.Wait()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// Arrival times follow an absolute virtual clock: each arrival is
	// the previous one plus an exponential gap. Sleeping until the
	// scheduled instant (and firing immediately when already past it)
	// keeps the offered rate honest even when timer granularity or
	// scheduler overhead exceeds the mean gap.
	next := time.Now()
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / tr.cfg.Rate * float64(time.Second)))
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return
			case <-timer.C:
			}
		} else {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		key := keyName(tr.zipf.Sample(rng.Float64()))
		isRead := rng.Float64() < tr.cfg.ReadFraction
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			return
		}
		tr.offered.Add(1)
		ops.Add(1)
		go func() {
			defer ops.Done()
			defer func() { <-slots }()
			// Ops in flight at the window's edge run to completion:
			// measuring them against context.Background() keeps the
			// tail's latency, which is the point of open loop.
			opStart := time.Now()
			var err error
			var n int64
			if isRead {
				tr.reads.Add(1)
				n, err = tgt.Get(context.Background(), tr.cfg.Name, key)
			} else {
				tr.writes.Add(1)
				err = tgt.Put(context.Background(), tr.cfg.Name, key, body)
				n = int64(len(body))
			}
			switch {
			case err == nil:
				tr.completed.Add(1)
				tr.bytes.Add(uint64(n))
				tr.observe(time.Since(opStart))
			case errors.Is(err, proto.ErrThrottled):
				tr.throttled.Add(1)
			case errors.Is(err, proto.ErrOverloaded), errors.Is(err, proto.ErrDraining):
				tr.overloaded.Add(1)
			default:
				tr.errs.Add(1)
			}
		}()
	}
}

func keyName(rank int) string { return fmt.Sprintf("k%06d", rank) }

// objectBody builds a deterministic body for one tenant.
func objectBody(tenant string, size int) []byte {
	p := make([]byte, size)
	seed := byte(len(tenant))
	for _, c := range []byte(tenant) {
		seed += c
	}
	for i := range p {
		p[i] = seed + byte(i*11)
	}
	return p
}

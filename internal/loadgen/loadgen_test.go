package loadgen

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/proto"
)

func TestZipfDistribution(t *testing.T) {
	// s=0.99 must work (math/rand.Zipf panics below s=1) and must be
	// visibly skewed: over 1000 keys the top rank draws ~12% of mass.
	z, err := NewZipf(1000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, z.N())
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[z.Sample(rng.Float64())]++
	}
	top := float64(counts[0]) / samples
	if top < 0.08 || top > 0.20 {
		t.Fatalf("rank-0 mass = %.3f, want ~0.12 for Zipf(0.99) over 1000 keys", top)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("popularity not monotone: %d, %d, %d, %d", counts[0], counts[1], counts[10], counts[500])
	}
	// s=0 degenerates to uniform.
	u, err := NewZipf(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	uc := make([]int, u.N())
	for i := 0; i < samples; i++ {
		uc[u.Sample(rng.Float64())]++
	}
	want := float64(samples) / 100
	for r, c := range uc {
		if math.Abs(float64(c)-want) > want/2 {
			t.Fatalf("uniform rank %d drew %d, want ~%.0f", r, c, want)
		}
	}
}

func TestZipfEdgeCases(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("empty keyspace accepted")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	z, err := NewZipf(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.5, 0.999999} {
		if got := z.Sample(u); got != 0 {
			t.Fatalf("single-key sample(%v) = %d", u, got)
		}
	}
}

// fakeTarget counts ops and optionally sheds every write.
type fakeTarget struct {
	delay      time.Duration
	shedWrites bool
	puts, gets atomic.Uint64
	mu         sync.Mutex
	keys       map[string]map[string]bool
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{keys: make(map[string]map[string]bool)}
}

func (f *fakeTarget) Put(ctx context.Context, tenant, key string, body []byte) error {
	f.puts.Add(1)
	if f.shedWrites {
		return &gatewayThrottle{}
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.keys[tenant] == nil {
		f.keys[tenant] = make(map[string]bool)
	}
	f.keys[tenant][key] = true
	return nil
}

func (f *fakeTarget) Get(ctx context.Context, tenant, key string) (int64, error) {
	f.gets.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return 128, nil
}

type gatewayThrottle struct{}

func (*gatewayThrottle) Error() string { return "shed" }
func (*gatewayThrottle) Unwrap() error { return proto.ErrThrottled }

func TestRunOpenLoop(t *testing.T) {
	tgt := newFakeTarget()
	res, err := Run(context.Background(), Config{
		Tenants: []TenantConfig{{
			Name: "a", Rate: 2000, ReadFraction: 0.7, Keys: 50, ZipfS: 0.99, ObjectSize: 128,
		}},
		Duration: 300 * time.Millisecond,
		Seed:     7,
		Preload:  true,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Tenant != "a" || r.Offered == 0 || r.Completed == 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.Offered != r.Reads+r.Writes {
		t.Fatalf("offered %d != reads %d + writes %d", r.Offered, r.Reads, r.Writes)
	}
	// 2000 ops/s for 300ms → ~600 arrivals; Poisson noise is ~±5%,
	// assert loosely.
	if r.Offered < 400 || r.Offered > 800 {
		t.Fatalf("offered %d arrivals, want ~600", r.Offered)
	}
	// The 70/30 mix, loosely.
	readFrac := float64(r.Reads) / float64(r.Offered)
	if readFrac < 0.55 || readFrac > 0.85 {
		t.Fatalf("read fraction %.2f, want ~0.70", readFrac)
	}
	// Preload wrote the whole keyspace before the window.
	if got := len(tgt.keys["a"]); got != 50 {
		t.Fatalf("preload wrote %d keys, want 50", got)
	}
	if r.Completed != r.Offered {
		t.Fatalf("no-shed target: completed %d != offered %d", r.Completed, r.Offered)
	}
	if r.P50 <= 0 || r.P99 < r.P50 || r.Max < r.P99 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v max=%v", r.P50, r.P99, r.Max)
	}
	if r.AchievedOps < 1000 {
		t.Fatalf("achieved %v ops/s against an instant target", r.AchievedOps)
	}
}

func TestRunCountsTypedSheds(t *testing.T) {
	tgt := newFakeTarget()
	tgt.shedWrites = true
	res, err := Run(context.Background(), Config{
		Tenants:  []TenantConfig{{Name: "w", Rate: 1000, ReadFraction: 0, Keys: 10, ObjectSize: 64}},
		Duration: 200 * time.Millisecond,
		Seed:     1,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Throttled == 0 || r.Throttled != r.Offered {
		t.Fatalf("all-shed run: throttled %d of %d offered", r.Throttled, r.Offered)
	}
	if r.Completed != 0 || r.Errors != 0 {
		t.Fatalf("sheds leaked into completed=%d errors=%d", r.Completed, r.Errors)
	}
}

func TestRunOpenLoopDoesNotCoordinate(t *testing.T) {
	// A slow target must not slow arrivals down: with 20ms service time
	// and 500 ops/s offered, a closed loop would offer ~50 ops/s.
	tgt := newFakeTarget()
	tgt.delay = 20 * time.Millisecond
	res, err := Run(context.Background(), Config{
		Tenants:  []TenantConfig{{Name: "s", Rate: 500, ReadFraction: 1, Keys: 10, ObjectSize: 64}},
		Duration: 400 * time.Millisecond,
		Seed:     3,
	}, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Offered < 100 {
		t.Fatalf("open loop coordinated with the slow target: %d arrivals in 400ms at 500/s", r.Offered)
	}
}

func TestRunValidation(t *testing.T) {
	tgt := newFakeTarget()
	if _, err := Run(context.Background(), Config{Duration: time.Second}, tgt); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := Run(context.Background(), Config{
		Tenants: []TenantConfig{{Name: "a", Rate: 0, Keys: 1}}, Duration: time.Second,
	}, tgt); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Config{
		Tenants: []TenantConfig{{Name: "a", Rate: 1, Keys: 1}},
	}, tgt); err == nil {
		t.Fatal("zero duration accepted")
	}
}

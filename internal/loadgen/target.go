package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ecstore/internal/gateway"
	"ecstore/internal/proto"
)

// GatewayTarget drives an in-process gateway.
type GatewayTarget struct {
	GW *gateway.Gateway
}

func (t *GatewayTarget) Put(ctx context.Context, tenant, key string, body []byte) error {
	return t.GW.Put(ctx, tenant, key, bytes.NewReader(body), int64(len(body)))
}

// Preload writes through the gateway's unmetered path, so warming a
// rate-capped tenant leaves its QoS budget untouched.
func (t *GatewayTarget) Preload(ctx context.Context, tenant, key string, body []byte) error {
	return t.GW.Preload(ctx, tenant, key, bytes.NewReader(body), int64(len(body)))
}

func (t *GatewayTarget) Get(ctx context.Context, tenant, key string) (int64, error) {
	rc, _, err := t.GW.Get(ctx, tenant, key)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	return io.Copy(io.Discard, rc)
}

// StoreTarget drives the raw block store directly, bypassing the
// gateway entirely: the overhead baseline. Each (tenant, key) maps to
// a fixed extent sized like the gateway would size it, so byte volume
// and stripe alignment match the gateway arm exactly.
type StoreTarget struct {
	B gateway.Backend
	// Stripe and ObjectSize mirror the gateway arm's geometry.
	Stripe     int
	ObjectSize int
	// Keys is each tenant's keyspace size (extents are preallocated
	// tenant-major, key-minor).
	Keys    int
	Tenants []string
}

// slot maps (tenant, key rank) to the extent's byte offset.
func (t *StoreTarget) slot(tenant, key string) (int64, error) {
	rank, err := strconv.Atoi(key[1:])
	if err != nil || rank >= t.Keys {
		return 0, fmt.Errorf("loadgen: key %q outside the preallocated keyspace", key)
	}
	ti := -1
	for i, name := range t.Tenants {
		if name == tenant {
			ti = i
			break
		}
	}
	if ti < 0 {
		return 0, fmt.Errorf("loadgen: tenant %q not preallocated", tenant)
	}
	stripe := t.Stripe
	if stripe < 1 {
		stripe = 1
	}
	bs := int64(t.B.BlockSize())
	stripeBytes := bs * int64(stripe)
	extentBytes := (int64(t.ObjectSize) + stripeBytes - 1) / stripeBytes * stripeBytes
	return (int64(ti)*int64(t.Keys) + int64(rank)) * extentBytes, nil
}

func (t *StoreTarget) Put(ctx context.Context, tenant, key string, body []byte) error {
	off, err := t.slot(tenant, key)
	if err != nil {
		return err
	}
	bs := int64(t.B.BlockSize())
	stripeBytes := bs * int64(t.Stripe)
	if t.Stripe < 1 {
		stripeBytes = bs
	}
	padded := (int64(len(body)) + stripeBytes - 1) / stripeBytes * stripeBytes
	buf := make([]byte, padded)
	copy(buf, body)
	_, err = t.B.WriteAt(ctx, buf, off)
	return err
}

func (t *StoreTarget) Get(ctx context.Context, tenant, key string) (int64, error) {
	off, err := t.slot(tenant, key)
	if err != nil {
		return 0, err
	}
	return io.Copy(io.Discard, t.B.Reader(ctx, off, int64(t.ObjectSize)))
}

// HTTPTarget drives a gatewayd front end over its object API
// (PUT/GET /o/<key> with the tenant in the X-Tenant header). Typed
// backpressure survives the hop: 429 maps back to proto.ErrThrottled
// and 503 to proto.ErrOverloaded, so Result shed counts stay accurate.
type HTTPTarget struct {
	// BaseURL is the gatewayd address, e.g. "http://127.0.0.1:7080".
	BaseURL string
	// Client defaults to a dedicated client with a generous pool.
	Client *http.Client
}

func (t *HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTarget) objURL(key string) string {
	return t.BaseURL + "/o/" + url.PathEscape(key)
}

func (t *HTTPTarget) Put(ctx context.Context, tenant, key string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, t.objURL(key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("X-Tenant", tenant)
	req.ContentLength = int64(len(body))
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return statusErr(resp)
}

func (t *HTTPTarget) Get(ctx context.Context, tenant, key string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.objURL(key), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := statusErr(resp); err != nil {
		io.Copy(io.Discard, resp.Body)
		return 0, err
	}
	return io.Copy(io.Discard, resp.Body)
}

// statusErr maps gatewayd's backpressure statuses back to the typed
// sentinels.
func statusErr(resp *http.Response) error {
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusTooManyRequests:
		retry := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.ParseFloat(s, 64); err == nil {
				retry = time.Duration(secs * float64(time.Second))
			}
		}
		return fmt.Errorf("loadgen: http 429 (retry after %v): %w", retry, proto.ErrThrottled)
	case resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("loadgen: http 503: %w", proto.ErrOverloaded)
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("loadgen: http 404: %w", gateway.ErrNotFound)
	default:
		return fmt.Errorf("loadgen: http %s", resp.Status)
	}
}

// Package transport provides node-handle middleware for the AJX
// protocol: direct in-process access, message/byte accounting (used to
// validate the paper's Fig. 1 cost table), a bandwidth/latency-shaped
// wrapper that emulates the paper's gigabit-LAN testbed on one
// machine, and multicast delivery for the broadcast write optimization.
//
// All wrappers implement proto.StorageNode, so clients compose them
// freely: counting over shaping over a real node, or over a TCP stub.
package transport

import (
	"context"
	"sync"

	"ecstore/internal/proto"
)

// Parallel is a proto.Multicaster that simply issues every add
// concurrently. It provides the broadcast API without any bandwidth
// advantage — suitable for in-process tests and TCP deployments where
// no true broadcast medium exists.
type Parallel struct{}

var _ proto.Multicaster = Parallel{}

// MulticastAdd delivers each call on its own goroutine.
func (Parallel) MulticastAdd(ctx context.Context, calls []proto.AddCall) []proto.AddResult {
	results := make([]proto.AddResult, len(calls))
	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := calls[i].Node.Add(ctx, calls[i].Req)
			results[i] = proto.AddResult{Reply: rep, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}

// Package transport provides node-handle middleware for the AJX
// protocol: direct in-process access, message/byte accounting (used to
// validate the paper's Fig. 1 cost table), a bandwidth/latency-shaped
// wrapper that emulates the paper's gigabit-LAN testbed on one
// machine, and multicast delivery for the broadcast write optimization.
//
// All wrappers implement proto.StorageNode, so clients compose them
// freely: counting over shaping over a real node, or over a TCP stub.
package transport

import (
	"context"
	"fmt"
	"sync"

	"ecstore/internal/proto"
)

// Parallel is a proto.Multicaster that simply issues every add
// concurrently. It provides the broadcast API without any bandwidth
// advantage — suitable for in-process tests and TCP deployments where
// no true broadcast medium exists.
type Parallel struct{}

var _ proto.Multicaster = Parallel{}

// MulticastAdd delivers each call on its own goroutine.
func (Parallel) MulticastAdd(ctx context.Context, calls []proto.AddCall) []proto.AddResult {
	results := make([]proto.AddResult, len(calls))
	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := calls[i].Node.Add(ctx, calls[i].Req)
			results[i] = proto.AddResult{Reply: rep, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}

// Chain is a proto.Aggregator modeling a linear aggregation tree: the
// survivors are visited in order, each folding its coefficient-
// multiplied block into the accumulator received from its predecessor
// (Sum = Coef*block XOR Acc), and only the last survivor's sum returns
// to the caller. The inner accumulator hand-offs stand in for the
// survivor-to-survivor edges of the tree; in-process they are function
// arguments, on a real deployment they would be node-to-node transfers
// that never touch the repair coordinator's link.
type Chain struct{}

var _ proto.Aggregator = Chain{}

// AggregateSum walks the calls sequentially, threading the accumulator.
// Every node must support proto.PartialSummer and answer OK; any
// refusal or transport error fails the whole aggregation so the caller
// can fall back to fetching whole blocks.
func (Chain) AggregateSum(ctx context.Context, calls []proto.PartialCall) ([]byte, error) {
	if len(calls) == 0 {
		return nil, fmt.Errorf("transport: empty aggregation")
	}
	var acc []byte
	for _, call := range calls {
		req := *call.Req
		req.Acc = acc
		rep, err := proto.PartialSum(ctx, call.Node, &req)
		if err != nil {
			return nil, err
		}
		if !rep.OK {
			return nil, fmt.Errorf("transport: partial sum refused (opmode %v, lock %v)", rep.OpMode, rep.LockMode)
		}
		acc = rep.Sum
	}
	return acc, nil
}

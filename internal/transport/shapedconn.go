package transport

import (
	"net"
	"sync"
	"time"
)

// ShapedConn wraps a real net.Conn with a per-connection bandwidth cap,
// modelling the per-flow ceiling a single TCP stream hits in practice
// (fair queuing, per-flow policers, window limits on long paths). It
// uses the same transmission-ledger idea as Host: each Write books
// wire time proportional to its size and sleeps until its slot has
// drained, so sustained throughput converges on BytesPerSec without
// per-byte timers.
//
// It deliberately is not a *net.TCPConn, so net.Buffers.WriteTo
// degrades from a single writev to sequential per-segment writes —
// still copy-free, and exactly the degradation mode DESIGN §16
// documents. rpc clients inject it with WithDialer; striping across n
// ShapedConns multiplies the available bandwidth n-fold, which is what
// the striped throughput acceptance test measures.
type ShapedConn struct {
	net.Conn
	bytesPerSec float64

	mu   sync.Mutex
	free time.Time // ledger: when bytes written so far have drained
}

// NewShapedConn caps conn at bytesPerSec per direction of Write.
// bytesPerSec <= 0 means unshaped.
func NewShapedConn(conn net.Conn, bytesPerSec float64) *ShapedConn {
	return &ShapedConn{Conn: conn, bytesPerSec: bytesPerSec}
}

func (s *ShapedConn) Write(b []byte) (int, error) {
	n, err := s.Conn.Write(b)
	if n > 0 && s.bytesPerSec > 0 {
		cost := time.Duration(float64(n) / s.bytesPerSec * float64(time.Second))
		s.mu.Lock()
		now := time.Now()
		if s.free.Before(now) {
			s.free = now
		}
		s.free = s.free.Add(cost)
		wait := s.free.Sub(now)
		s.mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
	}
	return n, err
}

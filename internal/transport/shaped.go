package transport

import (
	"context"
	"sync"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/wire"
)

// Host models one machine's network interface as a virtual-time
// transmission ledger: every message reserves NIC time proportional to
// its size, and concurrent transfers queue behind each other. This is
// what makes a shaped in-process cluster reproduce the paper's
// bandwidth-saturation effects (client uplink limits write throughput;
// storage-node links saturate as clients are added) without real
// hardware.
type Host struct {
	name string

	mu       sync.Mutex
	perByte  time.Duration // transmission time per byte
	nextFree time.Time     // ledger: when the NIC is next idle
	busy     time.Duration // total booked transmission time
}

// NewHost builds a host whose NIC sustains bytesPerSec in each usage
// (the ledger is shared by send and receive, matching the low-end
// half-duplex-ish gigabit cards the paper measured at 500 Mbit/s).
func NewHost(name string, bytesPerSec float64) *Host {
	if bytesPerSec <= 0 {
		panic("transport: NIC bandwidth must be positive")
	}
	return &Host{
		name:    name,
		perByte: time.Duration(float64(time.Second) / bytesPerSec),
	}
}

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// reserve books size bytes of NIC time starting no earlier than `at`,
// returning the completion time.
func (h *Host) reserve(at time.Time, size int) time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := at
	if h.nextFree.After(start) {
		start = h.nextFree
	}
	done := start.Add(time.Duration(size) * h.perByte)
	h.nextFree = done
	h.busy += time.Duration(size) * h.perByte
	return done
}

// ShapeConfig sets the network model parameters.
type ShapeConfig struct {
	// Latency is the one-way network latency (the paper's testbed:
	// 50 us ping RTT => 25 us one-way).
	Latency time.Duration
	// ServerTime is the storage node's per-operation service time.
	ServerTime time.Duration
}

// DefaultShape mirrors the paper's testbed: 500 Mbit/s per node,
// 50 us RTT, and a few microseconds of service time.
func DefaultShape() ShapeConfig {
	return ShapeConfig{Latency: 25 * time.Microsecond, ServerTime: 5 * time.Microsecond}
}

// DefaultBytesPerSec is 500 Mbit/s, the Netperf-measured node
// bandwidth of the paper's testbed.
const DefaultBytesPerSec = 500e6 / 8

// Shaped wraps a storage node handle with the network model for calls
// originating at one specific client host. Each (client, node) pair
// needs its own Shaped handle; server hosts are shared across clients.
type Shaped struct {
	inner  proto.StorageNode
	client *Host
	server *Host
	cfg    ShapeConfig
}

var _ proto.StorageNode = (*Shaped)(nil)

// NewShaped wraps inner with the network model.
func NewShaped(inner proto.StorageNode, client, server *Host, cfg ShapeConfig) *Shaped {
	return &Shaped{inner: inner, client: client, server: server, cfg: cfg}
}

// Inner returns the wrapped node.
func (s *Shaped) Inner() proto.StorageNode { return s.inner }

// sleepUntil blocks until t (or ctx cancellation).
func sleepUntil(ctx context.Context, t time.Time) error {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// shapedCall models one RPC as a fluid-approximation booking: all the
// call's bytes (request out + reply back) are booked on the client and
// server NICs at issue time, and the delivery completes when the more
// loaded of the two has transmitted them, plus two propagation
// latencies and the service time. Booking at issue time (rather than
// chaining future-dated reservations hop by hop) is what keeps the
// ledgers free of false idle holes under concurrency: bandwidth is
// conserved exactly, FCFS order follows real issuance order, and the
// goroutine sleeps once per RPC. The inner call executes eagerly —
// still one point inside the RPC's real-time window — while the
// ledgers carry the timing.
func shapedCall[Req any, Rep any](ctx context.Context, s *Shaped, req Req, call func() (Rep, error)) (Rep, error) {
	var zero Rep
	rep, err := call()
	if err != nil {
		return zero, err
	}
	bytes := wire.Size(req) + wire.Size(rep)
	now := time.Now()
	clientDone := s.client.reserve(now, bytes)
	serverDone := s.server.reserve(now, bytes)
	delivered := maxTime(clientDone, serverDone).Add(2*s.cfg.Latency + s.cfg.ServerTime)
	if err := sleepUntil(ctx, delivered); err != nil {
		return zero, err
	}
	return rep, nil
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func (s *Shaped) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.ReadReply, error) { return s.inner.Read(ctx, req) })
}
func (s *Shaped) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.SwapReply, error) { return s.inner.Swap(ctx, req) })
}
func (s *Shaped) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.AddReply, error) { return s.inner.Add(ctx, req) })
}
func (s *Shaped) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.BatchAddReply, error) { return s.inner.BatchAdd(ctx, req) })
}
func (s *Shaped) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.CheckTIDReply, error) { return s.inner.CheckTID(ctx, req) })
}
func (s *Shaped) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.TryLockReply, error) { return s.inner.TryLock(ctx, req) })
}
func (s *Shaped) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.SetLockReply, error) { return s.inner.SetLock(ctx, req) })
}
func (s *Shaped) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.GetStateReply, error) { return s.inner.GetState(ctx, req) })
}
func (s *Shaped) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.GetRecentReply, error) { return s.inner.GetRecent(ctx, req) })
}
func (s *Shaped) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.ReconstructReply, error) { return s.inner.Reconstruct(ctx, req) })
}
func (s *Shaped) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.FinalizeReply, error) { return s.inner.Finalize(ctx, req) })
}
func (s *Shaped) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.GCReply, error) { return s.inner.GCOld(ctx, req) })
}
func (s *Shaped) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.GCReply, error) { return s.inner.GCRecent(ctx, req) })
}
func (s *Shaped) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	return shapedCall(ctx, s, req, func() (*proto.ProbeReply, error) { return s.inner.Probe(ctx, req) })
}

// ShapedMulticaster implements the broadcast optimization under the
// network model: the shared payload crosses the client uplink once,
// and each recipient then pays only its own receive, service, and
// reply costs. Targets must be *Shaped handles created by the same
// deployment (sharing the client host).
type ShapedMulticaster struct {
	client *Host
	cfg    ShapeConfig
}

var _ proto.Multicaster = (*ShapedMulticaster)(nil)

// NewShapedMulticaster builds a broadcast path out of a client host.
func NewShapedMulticaster(client *Host, cfg ShapeConfig) *ShapedMulticaster {
	return &ShapedMulticaster{client: client, cfg: cfg}
}

// MulticastAdd broadcasts one add payload: the shared delta crosses
// the client uplink once (plus a header per extra recipient and the
// small replies), while each recipient's own NIC pays its full
// request + reply cost.
func (m *ShapedMulticaster) MulticastAdd(ctx context.Context, calls []proto.AddCall) []proto.AddResult {
	results := make([]proto.AddResult, len(calls))
	if len(calls) == 0 {
		return results
	}
	// Execute the adds eagerly so reply sizes are known, then book.
	type outcome struct {
		rep *proto.AddReply
		err error
		sh  *Shaped
	}
	outcomes := make([]outcome, len(calls))
	clientBytes := wire.Size(calls[0].Req) + (len(calls)-1)*wire.FrameOverhead
	for i := range calls {
		if sh, ok := calls[i].Node.(*Shaped); ok {
			rep, err := sh.inner.Add(ctx, calls[i].Req)
			outcomes[i] = outcome{rep: rep, err: err, sh: sh}
			if err == nil {
				clientBytes += wire.Size(rep)
			}
		} else {
			rep, err := calls[i].Node.Add(ctx, calls[i].Req)
			outcomes[i] = outcome{rep: rep, err: err}
		}
	}
	now := time.Now()
	clientDone := m.client.reserve(now, clientBytes)

	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := outcomes[i]
			if o.err != nil {
				results[i] = proto.AddResult{Err: o.err}
				return
			}
			if o.sh == nil {
				results[i] = proto.AddResult{Reply: o.rep}
				return
			}
			serverBytes := wire.Size(calls[i].Req) + wire.Size(o.rep)
			serverDone := o.sh.server.reserve(now, serverBytes)
			delivered := maxTime(clientDone, serverDone).Add(2*m.cfg.Latency + m.cfg.ServerTime)
			if err := sleepUntil(ctx, delivered); err != nil {
				results[i] = proto.AddResult{Err: err}
				return
			}
			results[i] = proto.AddResult{Reply: o.rep}
		}(i)
	}
	wg.Wait()
	return results
}

// Booked returns the total transmission time ever reserved on the
// host's NIC and the current ledger horizon (diagnostics).
func (h *Host) Booked() (busy time.Duration, horizon time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.busy, h.nextFree
}

// PublishTo registers live gauges for this host's NIC ledger:
// transport.<name>.nic_busy_ns (total booked transmission time) and
// transport.<name>.nic_backlog_ns (how far the ledger horizon sits in
// the future — the current queue depth in time units).
func (h *Host) PublishTo(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("transport."+h.name+".nic_busy_ns", func() int64 {
		busy, _ := h.Booked()
		return int64(busy)
	})
	reg.Func("transport."+h.name+".nic_backlog_ns", func() int64 {
		_, horizon := h.Booked()
		if d := time.Until(horizon); d > 0 {
			return int64(d)
		}
		return 0
	})
}

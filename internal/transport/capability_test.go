package transport

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"

	"ecstore/internal/proto"
)

// protoCapabilityMethods parses the proto package's source and returns
// every method declared on any interface there: the node operation set
// plus every optional capability (MultiBatcher, PartialSummer,
// Multicaster, Aggregator, and whatever comes next). This is the
// ground truth the invoker table below is checked against, so adding a
// capability to proto without wiring it through the transport wrappers
// fails this test rather than silently losing the capability behind
// the first wrapper.
func protoCapabilityMethods(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../proto", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse proto package: %v", err)
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, field := range it.Methods.List {
					if _, isFunc := field.Type.(*ast.FuncType); !isFunc {
						continue // embedded interface, methods counted at its own decl
					}
					for _, name := range field.Names {
						seen[name.Name] = true
					}
				}
				return true
			})
		}
	}
	var names []string
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("found no interface methods in the proto package")
	}
	return names
}

// capInvoker drives one proto capability through a wrapped node handle.
type capInvoker struct {
	// call invokes the capability against n with a valid request and
	// returns the transport-level error. Application-level rejections
	// travel inside replies and are not errors here.
	call func(ctx context.Context, n proto.StorageNode) error
	// counter selects the OpCounters that Counting must bump.
	counter func(c *Counters) *OpCounters
}

// capTID hands out unique write identifiers per invocation site.
func capTID(seq uint64) proto.TID { return proto.TID{Seq: seq, Block: 0, Client: 9} }

// capabilityInvokers is the exhaustive invoker table. Every method
// name returned by protoCapabilityMethods must have an entry; a
// missing entry fails TestEveryProtoCapabilityExercised.
func capabilityInvokers() map[string]capInvoker {
	return map[string]capInvoker{
		"Read": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Read },
		},
		"Swap": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk(), NTID: capTID(101)})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Swap },
		},
		"Add": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: blk(), Premultiplied: true, NTID: capTID(102)})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Add },
		},
		"BatchAdd": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.BatchAdd(ctx, &proto.BatchAddReq{
					Stripe: 1, Slot: 2, Delta: blk(),
					Entries: []proto.BatchEntry{{DataSlot: 0, NTID: capTID(103)}},
				})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.BatchAdd },
		},
		"BatchAddMulti": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				// Two sub-requests: the proto helper only engages the
				// MultiBatcher capability when there is something to
				// coalesce.
				_, err := proto.BatchAddMulti(ctx, n, &proto.BatchAddMultiReq{
					Adds: []*proto.BatchAddReq{{
						Stripe: 1, Slot: 3, Delta: blk(),
						Entries: []proto.BatchEntry{{DataSlot: 0, NTID: capTID(104)}},
					}, {
						Stripe: 1, Slot: 2, Delta: blk(),
						Entries: []proto.BatchEntry{{DataSlot: 1, NTID: capTID(106)}},
					}},
				})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.BatchAddMulti },
		},
		"CheckTID": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 0, NTID: capTID(101)})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.CheckTID },
		},
		"TryLock": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 9})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.TryLock },
		},
		"SetLock": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 0, Mode: proto.Unlocked, Caller: 9})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.SetLock },
		},
		"GetState": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0, NoBlock: true})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.GetState },
		},
		"GetRecent": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.GetRecent(ctx, &proto.GetRecentReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 9})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.GetRecent },
		},
		"Reconstruct": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 1, Slot: 0, CSet: []int32{0, 1}, Block: blk()})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Reconstruct },
		},
		"Finalize": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 0, Epoch: 1})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Finalize },
		},
		"GCOld": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{capTID(101)}})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.GCOld },
		},
		"GCRecent": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{capTID(101)}})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.GCRecent },
		},
		"Probe": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := n.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 0})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.Probe },
		},
		"PartialSum": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := proto.PartialSum(ctx, n, &proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 3})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.PartialSum },
		},
		// Transport-side capabilities: the wrapper under test is the
		// delivery transport itself, driven against the wrapped node.
		"MulticastAdd": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				res := Parallel{}.MulticastAdd(ctx, []proto.AddCall{{Node: n, Req: &proto.AddReq{
					Stripe: 1, Slot: 3, Delta: blk(), Premultiplied: true, NTID: capTID(105),
				}}})
				return res[0].Err
			},
			counter: func(c *Counters) *OpCounters { return &c.Add },
		},
		"AggregateSum": {
			call: func(ctx context.Context, n proto.StorageNode) error {
				_, err := Chain{}.AggregateSum(ctx, []proto.PartialCall{{
					Node: n, Req: &proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 5},
				}})
				return err
			},
			counter: func(c *Counters) *OpCounters { return &c.PartialSum },
		},
	}
}

// seedCapNode writes a block so state-dependent capabilities
// (PartialSum needs a non-INIT slot) have something to work on.
func seedCapNode(t *testing.T, n proto.StorageNode) {
	t.Helper()
	if _, err := n.Swap(context.Background(), &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk(), NTID: capTID(100)}); err != nil {
		t.Fatalf("seed swap: %v", err)
	}
}

// TestEveryProtoCapabilityExercised is the regression gate: the
// invoker table must cover every interface method in the proto
// package, each invoker must succeed through Counting with its op
// counter bumped, and each must fail through a crashed Faulty. A new
// proto capability without a table entry (and hence without wrapper
// forwarding) fails here by name.
func TestEveryProtoCapabilityExercised(t *testing.T) {
	ctx := context.Background()
	required := protoCapabilityMethods(t)
	invokers := capabilityInvokers()
	for _, name := range required {
		if _, ok := invokers[name]; !ok {
			t.Errorf("proto capability %s has no transport-wrapper invoker: add a table entry "+
				"(and forwarders on Counting/Faulty if it is a node method)", name)
		}
	}
	for name := range invokers {
		found := false
		for _, r := range required {
			if r == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("invoker %s matches no proto interface method (renamed or removed?)", name)
		}
	}
	if t.Failed() {
		return
	}

	// Counting must forward and account every capability.
	for _, name := range required {
		inv := invokers[name]
		ctr := &Counters{}
		counted := NewCounting(newNode(t), ctr)
		seedCapNode(t, counted)
		before := inv.counter(ctr).Calls.Load()
		if err := inv.call(ctx, counted); err != nil {
			t.Errorf("%s through Counting failed: %v", name, err)
			continue
		}
		if after := inv.counter(ctr).Calls.Load(); after <= before {
			t.Errorf("%s through Counting did not bump its op counter", name)
		}
	}

	// Faulty must fault every capability: a crashed wrapper refuses the
	// frame no matter which path carries it.
	for _, name := range required {
		inv := invokers[name]
		f := NewFaulty(newNode(t), FaultConfig{})
		seedCapNode(t, f)
		f.Crash()
		if err := inv.call(ctx, f); err == nil {
			t.Errorf("%s through a crashed Faulty succeeded — the fault wrapper is not covering this capability", name)
		}
	}
}

package transport

import (
	"context"
	"time"

	"ecstore/internal/proto"
)

// Delayed wraps an in-process node with a fixed per-RPC round-trip
// latency and nothing else: no bandwidth ledger, no service-time
// model. It is the minimal network stand-in for experiments whose
// subject is *latency hiding* — a pipelined client overlaps the sleeps
// of concurrent RPCs exactly as real round trips overlap on a wire,
// even on a single-core machine, while the sequential path pays them
// end to end.
//
// Unlike Shaped, Delayed implements the BatchAddMulti capability: the
// combined frame costs one round trip regardless of how many sub-adds
// it carries, which is precisely the economy bulk-write coalescing
// exists to exploit (fewer round trips, not fewer bytes).
type Delayed struct {
	inner proto.StorageNode
	rtt   time.Duration
}

// NewDelayed wraps inner with a fixed round-trip latency per RPC.
func NewDelayed(inner proto.StorageNode, rtt time.Duration) *Delayed {
	return &Delayed{inner: inner, rtt: rtt}
}

// Inner returns the wrapped node.
func (d *Delayed) Inner() proto.StorageNode { return d.inner }

// wait charges one round trip, honouring cancellation.
func (d *Delayed) wait(ctx context.Context) error {
	if d.rtt <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d.rtt)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (d *Delayed) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Read(ctx, req)
}

func (d *Delayed) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Swap(ctx, req)
}

func (d *Delayed) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Add(ctx, req)
}

func (d *Delayed) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.BatchAdd(ctx, req)
}

// BatchAddMulti forwards the combined frame for a single round trip.
func (d *Delayed) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return proto.BatchAddMulti(ctx, d.inner, req)
}

func (d *Delayed) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.CheckTID(ctx, req)
}

func (d *Delayed) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.TryLock(ctx, req)
}

func (d *Delayed) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.SetLock(ctx, req)
}

func (d *Delayed) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.GetState(ctx, req)
}

func (d *Delayed) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.GetRecent(ctx, req)
}

func (d *Delayed) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Reconstruct(ctx, req)
}

func (d *Delayed) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Finalize(ctx, req)
}

func (d *Delayed) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.GCOld(ctx, req)
}

func (d *Delayed) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.GCRecent(ctx, req)
}

func (d *Delayed) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return d.inner.Probe(ctx, req)
}

// PartialSum charges one round trip and forwards through the inner
// node's capability.
func (d *Delayed) PartialSum(ctx context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	if err := d.wait(ctx); err != nil {
		return nil, err
	}
	return proto.PartialSum(ctx, d.inner, req)
}

var (
	_ proto.StorageNode   = (*Delayed)(nil)
	_ proto.MultiBatcher  = (*Delayed)(nil)
	_ proto.PartialSummer = (*Delayed)(nil)
)

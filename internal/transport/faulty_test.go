package transport

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"ecstore/internal/proto"
)

func faultyPair(t *testing.T, cfg FaultConfig) (*Faulty, *Faulty) {
	t.Helper()
	return NewFaulty(newNode(t), cfg), NewFaulty(newNode(t), cfg)
}

// TestFaultyDeterministicSeed: two wrappers with the same seed and the
// same call sequence must inject exactly the same faults.
func TestFaultyDeterministicSeed(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ErrorRate: 0.5}
	a, b := faultyPair(t, cfg)
	ctx := context.Background()
	req := &proto.ReadReq{Stripe: 0, Slot: 0}
	var pa, pb []bool
	for i := 0; i < 200; i++ {
		_, errA := a.Read(ctx, req)
		_, errB := b.Read(ctx, req)
		pa = append(pa, errA != nil)
		pb = append(pb, errB != nil)
		if errA != nil && !errors.Is(errA, proto.ErrNodeDown) {
			t.Fatalf("injected error does not wrap ErrNodeDown: %v", errA)
		}
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatal("same seed produced different fault patterns")
	}
	inj := a.Stats().InjectedErrors.Load()
	if inj == 0 || inj == 200 {
		t.Fatalf("error rate 0.5 injected %d/200 faults", inj)
	}
	if a.Stats().InjectedErrors.Load() != b.Stats().InjectedErrors.Load() {
		t.Fatal("same seed produced different injection counts")
	}
}

// TestFaultyCrashPreservesState: a Faulty crash refuses calls (wrapping
// proto.ErrNodeDown) but keeps the node's contents, unlike a real
// storage crash — the transient-failure model.
func TestFaultyCrashPreservesState(t *testing.T) {
	f := NewFaulty(newNode(t), FaultConfig{})
	ctx := context.Background()
	nt := proto.TID{Seq: 1, Block: 0, Client: 1}
	if _, err := f.Swap(ctx, &proto.SwapReq{Stripe: 0, Slot: 0, Value: blk(), NTID: nt}); err != nil {
		t.Fatal(err)
	}

	f.Crash()
	if !f.Down() {
		t.Fatal("Down() false after Crash")
	}
	if _, err := f.Read(ctx, &proto.ReadReq{Stripe: 0, Slot: 0}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("crashed read err = %v, want ErrNodeDown", err)
	}
	if f.Stats().RefusedCrash.Load() != 1 {
		t.Fatal("RefusedCrash not counted")
	}

	f.Restart()
	st, err := f.GetState(ctx, &proto.GetStateReq{Stripe: 0, Slot: 0})
	if err != nil {
		t.Fatalf("getstate after restart: %v", err)
	}
	if len(st.RecentList) != 1 || st.RecentList[0].TID != nt {
		t.Fatal("node state lost across a transient crash")
	}
}

func TestFaultyPartition(t *testing.T) {
	f := NewFaulty(newNode(t), FaultConfig{})
	ctx := context.Background()
	f.SetPartitioned(true)
	if _, err := f.Probe(ctx, &proto.ProbeReq{}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("partitioned probe err = %v, want ErrNodeDown", err)
	}
	if f.Stats().RefusedPartition.Load() != 1 {
		t.Fatal("RefusedPartition not counted")
	}
	f.SetPartitioned(false)
	if _, err := f.Probe(ctx, &proto.ProbeReq{}); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
}

// TestFaultyGrayAddsLatency: gray mode keeps the node answering but
// slows every call by at least GrayLatency.
func TestFaultyGrayAddsLatency(t *testing.T) {
	const gray = 20 * time.Millisecond
	f := NewFaulty(newNode(t), FaultConfig{GrayLatency: gray})
	ctx := context.Background()
	f.SetGray(true)
	start := time.Now()
	if _, err := f.Probe(ctx, &proto.ProbeReq{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < gray {
		t.Fatalf("gray call took %v, want >= %v", el, gray)
	}
	if f.Stats().Delayed.Load() == 0 {
		t.Fatal("Delayed not counted")
	}

	// A canceled context aborts the injected sleep.
	cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	if _, err := f.Probe(cctx, &proto.ProbeReq{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gray call under deadline err = %v, want DeadlineExceeded", err)
	}
}

// TestFaultyHooksFireBeforeFaults: hooks observe the request on the
// calling goroutine, even when the node is crashed, and a nil hook
// uninstalls.
func TestFaultyHooksFireBeforeFaults(t *testing.T) {
	f := NewFaulty(newNode(t), FaultConfig{})
	ctx := context.Background()
	var seen []int32
	f.SetHook(OpRead, func(req any) {
		seen = append(seen, req.(*proto.ReadReq).Slot)
	})
	f.Crash()
	f.Read(ctx, &proto.ReadReq{Stripe: 0, Slot: 3})
	if len(seen) != 1 || seen[0] != 3 {
		t.Fatalf("hook saw %v, want [3] (must fire even on a crashed node)", seen)
	}
	f.SetHook(OpRead, nil)
	f.Read(ctx, &proto.ReadReq{Stripe: 0, Slot: 4})
	if len(seen) != 1 {
		t.Fatal("nil hook did not uninstall")
	}
}

// TestFaultyComposesWithCounting checks both stacking orders:
// Counting(Faulty(node)) accounts refused calls (faults happen "behind
// the wire"), Faulty(Counting(node)) hides them (faults happen before
// the wire).
func TestFaultyComposesWithCounting(t *testing.T) {
	ctx := context.Background()

	ctr := &Counters{}
	f := NewFaulty(newNode(t), FaultConfig{})
	f.Crash()
	outer := NewCounting(f, ctr)
	if _, err := outer.Read(ctx, &proto.ReadReq{}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatal("crash not propagated through Counting")
	}
	if ctr.Read.Calls.Load() != 1 {
		t.Fatal("Counting outside Faulty must account the refused call")
	}

	ctr2 := &Counters{}
	f2 := NewFaulty(NewCounting(newNode(t), ctr2), FaultConfig{})
	f2.Crash()
	if _, err := f2.Read(ctx, &proto.ReadReq{}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatal("crash not injected")
	}
	if ctr2.Read.Calls.Load() != 0 {
		t.Fatal("Faulty outside Counting must refuse before the call is accounted")
	}
}

// TestFaultyConcurrentToggles hammers one wrapper from many goroutines
// while another flips crash/partition/gray — the -race target for the
// wrapper itself.
func TestFaultyConcurrentToggles(t *testing.T) {
	f := NewFaulty(newNode(t), FaultConfig{Seed: 7, ErrorRate: 0.05, Jitter: 10 * time.Microsecond})
	ctx := context.Background()
	const (
		workers = 8
		calls   = 200
	)
	var workersWG, togglerWG sync.WaitGroup
	stop := make(chan struct{})
	togglerWG.Add(1)
	go func() {
		defer togglerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 6 {
			case 0:
				f.Crash()
			case 1:
				f.Restart()
			case 2:
				f.SetPartitioned(true)
			case 3:
				f.SetPartitioned(false)
			case 4:
				f.SetGray(true)
			case 5:
				f.SetGray(false)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < calls; i++ {
				switch i % 3 {
				case 0:
					f.Read(ctx, &proto.ReadReq{Stripe: uint64(w), Slot: 0})
				case 1:
					f.Probe(ctx, &proto.ProbeReq{})
				case 2:
					f.GetState(ctx, &proto.GetStateReq{Stripe: uint64(w), Slot: 0})
				}
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	togglerWG.Wait()
	if got := f.Stats().Calls.Load(); got != workers*calls {
		t.Fatalf("Calls = %d, want %d", got, workers*calls)
	}
}

// TestRandomScenarioDeterministic: the generator is a pure function of
// its seed, bounds concurrent faults, and always ends fully healed.
func TestRandomScenarioDeterministic(t *testing.T) {
	const (
		nodes         = 5
		total         = time.Second
		maxConcurrent = 2
	)
	a := RandomScenario(3, nodes, total, maxConcurrent)
	b := RandomScenario(3, nodes, total, maxConcurrent)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	if len(a.Events) == 0 {
		t.Fatal("scenario generated no events")
	}
	if reflect.DeepEqual(a, RandomScenario(4, nodes, total, maxConcurrent)) {
		t.Fatal("different seeds produced identical scenarios")
	}

	// Simulate the schedule: concurrency stays bounded and every node
	// ends healthy.
	faulted := map[int]bool{}
	for _, e := range a.Events {
		if e.After > total {
			t.Fatalf("event %+v beyond scenario end", e)
		}
		switch e.Act {
		case ActCrash, ActPartition, ActSlow:
			faulted[e.Node] = true
		case ActRestart, ActHeal, ActNormal:
			delete(faulted, e.Node)
		}
		if len(faulted) > maxConcurrent {
			t.Fatalf("%d nodes faulted at once, cap %d", len(faulted), maxConcurrent)
		}
	}
	if len(faulted) != 0 {
		t.Fatalf("scenario left nodes %v faulted", faulted)
	}
}

// TestScenarioRunHealsOnCancel: cancellation mid-run still applies the
// pending heal-type events so no node stays faulted.
func TestScenarioRunHealsOnCancel(t *testing.T) {
	f := NewFaulty(newNode(t), FaultConfig{})
	sc := Scenario{Events: []FaultEvent{
		{After: 0, Node: 0, Act: ActCrash},
		{After: time.Hour, Node: 0, Act: ActRestart},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sc.Run(ctx, []*Faulty{f}) }()
	// Wait until the crash event landed, then cancel.
	for i := 0; i < 1000 && !f.Down(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !f.Down() {
		t.Fatal("crash event never applied")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if f.Down() {
		t.Fatal("pending restart not applied on cancellation")
	}
}

// TestTailLatencySample pins the lognormal mapping: the median draw
// (z=0) is the configured median, positive draws blow up
// exponentially, and the cap bounds a pathological sample.
func TestTailLatencySample(t *testing.T) {
	tl := &TailLatency{Median: time.Millisecond}
	if got := tl.sample(0); got != time.Millisecond {
		t.Fatalf("sample(0) = %v, want the median", got)
	}
	if got := tl.sample(1); got <= time.Millisecond {
		t.Fatalf("sample(1) = %v, want > median", got)
	}
	if got := tl.sample(-1); got >= time.Millisecond {
		t.Fatalf("sample(-1) = %v, want < median", got)
	}
	// Default cap is 100x the median; z=10 would be e^10 ≈ 22026x.
	if got := tl.sample(10); got != 100*time.Millisecond {
		t.Fatalf("sample(10) = %v, want the 100x cap", got)
	}
	custom := &TailLatency{Median: time.Millisecond, Sigma: 2, Cap: 5 * time.Millisecond}
	if got := custom.sample(10); got != 5*time.Millisecond {
		t.Fatalf("capped sample = %v, want 5ms", got)
	}
	// Sigma scales the spread: the same draw lands further out.
	if custom.sample(1) <= tl.sample(1) {
		t.Fatal("sigma=2 sample not larger than sigma=1 sample")
	}
}

// TestFaultyGrayTailIsHeavyAndDeterministic drives many gray calls
// through a GrayTail config: same seed → identical delay sequence,
// and the empirical distribution is heavy-tailed (p99 well above the
// median) while fault-free calls pay nothing.
func TestFaultyGrayTailIsHeavyAndDeterministic(t *testing.T) {
	ctx := context.Background()
	cfg := FaultConfig{
		Seed:     42,
		GrayTail: &TailLatency{Median: time.Millisecond, Sigma: 1.5},
	}
	run := func() []time.Duration {
		f := NewFaulty(newNode(t), FaultConfig{Seed: cfg.Seed, GrayTail: cfg.GrayTail})
		f.SetGray(true)
		out := make([]time.Duration, 0, 150)
		for i := 0; i < 150; i++ {
			start := time.Now()
			if _, err := f.Probe(ctx, &proto.ProbeReq{}); err != nil {
				t.Fatal(err)
			}
			out = append(out, time.Since(start))
		}
		return out
	}
	a := run()
	sorted := append([]time.Duration(nil), a...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50, p99 := sorted[75], sorted[148]
	if p99 < 3*p50 {
		t.Fatalf("p99 %v not heavy-tailed vs p50 %v", p99, p50)
	}

	// Determinism: the injected delays come from the seeded rng, so a
	// second wrapper with the same seed must produce the same samples.
	// Compare at the rng level to avoid scheduler noise: drain the
	// sample stream via delay-free probes on a gray, zero-median tail.
	z1 := NewFaulty(newNode(t), FaultConfig{Seed: 7, GrayTail: &TailLatency{Median: time.Nanosecond}})
	z2 := NewFaulty(newNode(t), FaultConfig{Seed: 7, GrayTail: &TailLatency{Median: time.Nanosecond}})
	z1.SetGray(true)
	z2.SetGray(true)
	for i := 0; i < 50; i++ {
		if _, err := z1.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatal(err)
		}
		if _, err := z2.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatal(err)
		}
	}
	if s1, s2 := z1.Stats().Delayed.Load(), z2.Stats().Delayed.Load(); s1 != s2 {
		t.Fatalf("same-seed wrappers diverged: %d vs %d delayed", s1, s2)
	}
}

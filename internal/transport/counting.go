package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ecstore/internal/proto"
	"ecstore/internal/wire"
)

// OpCounters accumulates message and byte counts for one operation
// type. A call counts as two messages (request + reply) unless it
// failed at the transport level, in which case only the request is
// counted.
type OpCounters struct {
	Calls      atomic.Uint64
	Messages   atomic.Uint64
	BytesSent  atomic.Uint64 // client -> storage node
	BytesRecvd atomic.Uint64 // storage node -> client
}

// Counters aggregates per-operation accounting across a Counting
// wrapper (or several sharing it).
type Counters struct {
	Read, Swap, Add, BatchAdd, CheckTID OpCounters
	TryLock, SetLock, GetState          OpCounters
	GetRecent, Reconstruct, Finalize    OpCounters
	GCOld, GCRecent, Probe              OpCounters
	BatchAddMulti, PartialSum           OpCounters
	MulticastPayloadSavings             atomic.Uint64 // bytes not re-sent thanks to broadcast
	// PartialSumTreeBytes counts bytes carried on survivor-to-survivor
	// aggregation-tree edges by CountingAggregator — network traffic
	// that never enters the repair coordinator's link.
	PartialSumTreeBytes atomic.Uint64
}

// TotalMessages sums message counts across operations.
func (c *Counters) TotalMessages() uint64 {
	ops := c.all()
	var total uint64
	for _, op := range ops {
		total += op.Messages.Load()
	}
	return total
}

// TotalBytes sums bytes in both directions.
func (c *Counters) TotalBytes() (sent, recvd uint64) {
	for _, op := range c.all() {
		sent += op.BytesSent.Load()
		recvd += op.BytesRecvd.Load()
	}
	return sent, recvd
}

func (c *Counters) all() []*OpCounters {
	return []*OpCounters{
		&c.Read, &c.Swap, &c.Add, &c.BatchAdd, &c.CheckTID,
		&c.TryLock, &c.SetLock, &c.GetState,
		&c.GetRecent, &c.Reconstruct, &c.Finalize,
		&c.GCOld, &c.GCRecent, &c.Probe,
		&c.BatchAddMulti, &c.PartialSum,
	}
}

// Counting wraps a storage node and accounts every call's messages and
// bytes against a shared Counters. It validates the message-count and
// bandwidth columns of the paper's Fig. 1.
type Counting struct {
	inner proto.StorageNode
	ctr   *Counters
}

var _ proto.StorageNode = (*Counting)(nil)
var _ proto.MultiBatcher = (*Counting)(nil)
var _ proto.PartialSummer = (*Counting)(nil)

// NewCounting wraps a node with accounting into ctr.
func NewCounting(inner proto.StorageNode, ctr *Counters) *Counting {
	return &Counting{inner: inner, ctr: ctr}
}

// Counters returns the shared counter block.
func (c *Counting) Counters() *Counters { return c.ctr }

// Inner returns the wrapped node.
func (c *Counting) Inner() proto.StorageNode { return c.inner }

func account[Req any, Rep any](op *OpCounters, req Req, call func() (Rep, error)) (Rep, error) {
	op.Calls.Add(1)
	op.Messages.Add(1)
	op.BytesSent.Add(uint64(wire.Size(req)))
	rep, err := call()
	if err == nil {
		op.Messages.Add(1)
		op.BytesRecvd.Add(uint64(wire.Size(rep)))
	}
	return rep, err
}

func (c *Counting) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return account(&c.ctr.Read, req, func() (*proto.ReadReply, error) { return c.inner.Read(ctx, req) })
}

func (c *Counting) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	return account(&c.ctr.Swap, req, func() (*proto.SwapReply, error) { return c.inner.Swap(ctx, req) })
}

func (c *Counting) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	return account(&c.ctr.Add, req, func() (*proto.AddReply, error) { return c.inner.Add(ctx, req) })
}

func (c *Counting) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	return account(&c.ctr.BatchAdd, req, func() (*proto.BatchAddReply, error) { return c.inner.BatchAdd(ctx, req) })
}

// BatchAddMulti accounts the coalesced call as one message each way
// (that is the point of coalescing) and delegates through the inner
// node's capability, falling back to its BatchAdd loop when absent.
func (c *Counting) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	return account(&c.ctr.BatchAddMulti, req, func() (*proto.BatchAddMultiReply, error) {
		return proto.BatchAddMulti(ctx, c.inner, req)
	})
}

func (c *Counting) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	return account(&c.ctr.CheckTID, req, func() (*proto.CheckTIDReply, error) { return c.inner.CheckTID(ctx, req) })
}

func (c *Counting) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	return account(&c.ctr.TryLock, req, func() (*proto.TryLockReply, error) { return c.inner.TryLock(ctx, req) })
}

func (c *Counting) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	return account(&c.ctr.SetLock, req, func() (*proto.SetLockReply, error) { return c.inner.SetLock(ctx, req) })
}

func (c *Counting) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	return account(&c.ctr.GetState, req, func() (*proto.GetStateReply, error) { return c.inner.GetState(ctx, req) })
}

func (c *Counting) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	return account(&c.ctr.GetRecent, req, func() (*proto.GetRecentReply, error) { return c.inner.GetRecent(ctx, req) })
}

func (c *Counting) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	return account(&c.ctr.Reconstruct, req, func() (*proto.ReconstructReply, error) { return c.inner.Reconstruct(ctx, req) })
}

func (c *Counting) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	return account(&c.ctr.Finalize, req, func() (*proto.FinalizeReply, error) { return c.inner.Finalize(ctx, req) })
}

func (c *Counting) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	return account(&c.ctr.GCOld, req, func() (*proto.GCReply, error) { return c.inner.GCOld(ctx, req) })
}

func (c *Counting) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	return account(&c.ctr.GCRecent, req, func() (*proto.GCReply, error) { return c.inner.GCRecent(ctx, req) })
}

func (c *Counting) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	return account(&c.ctr.Probe, req, func() (*proto.ProbeReply, error) { return c.inner.Probe(ctx, req) })
}

// PartialSum accounts the partial-sum call like any unicast op and
// forwards through the inner node's capability; an inner node without
// it fails with proto.ErrNoPartialSum before any bytes are charged for
// the reply.
func (c *Counting) PartialSum(ctx context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	return account(&c.ctr.PartialSum, req, func() (*proto.PartialSumReply, error) {
		return proto.PartialSum(ctx, c.inner, req)
	})
}

// CountingMulticaster implements broadcast delivery with Fig. 1's
// AJX-bcast accounting: the shared delta payload is charged once, and
// each extra recipient costs only a per-message header. Replies are
// charged normally.
type CountingMulticaster struct {
	ctr *Counters
}

var _ proto.Multicaster = (*CountingMulticaster)(nil)

// NewCountingMulticaster builds a multicaster accounting into ctr.
func NewCountingMulticaster(ctr *Counters) *CountingMulticaster {
	return &CountingMulticaster{ctr: ctr}
}

// CountingAggregator implements the aggregation-tree partial sum with
// coordinator-centric accounting, the repair analogue of
// CountingMulticaster: the coordinator's link is charged one small
// coefficient request per survivor plus ONE block-sized reply (the
// final sum), while the accumulator bytes flowing between survivors
// along the tree's inner edges are booked separately in
// Counters.PartialSumTreeBytes. This is what makes repair ingress at
// the coordinator measure below k times the lost data: k survivors
// contribute, one block arrives.
type CountingAggregator struct {
	ctr *Counters
}

var _ proto.Aggregator = (*CountingAggregator)(nil)

// NewCountingAggregator builds an aggregator accounting into ctr.
func NewCountingAggregator(ctr *Counters) *CountingAggregator {
	return &CountingAggregator{ctr: ctr}
}

// AggregateSum walks the survivors sequentially, threading the
// accumulator, exactly like Chain, but unwraps Counting handles (the
// per-hop payloads are accounted here, not per call) and books every
// byte in its proper place.
func (a *CountingAggregator) AggregateSum(ctx context.Context, calls []proto.PartialCall) ([]byte, error) {
	if len(calls) == 0 {
		return nil, proto.ErrNoPartialSum
	}
	var acc []byte
	for i, call := range calls {
		// Coordinator -> survivor: the coefficient request, sized
		// without the accumulator (that travels survivor-to-survivor).
		small := *call.Req
		small.Acc = nil
		a.ctr.PartialSum.Calls.Add(1)
		a.ctr.PartialSum.Messages.Add(1)
		a.ctr.PartialSum.BytesSent.Add(uint64(wire.Size(&small)))
		if i > 0 {
			// Inner tree edge: the accumulator moves between survivors.
			a.ctr.PartialSumTreeBytes.Add(uint64(len(acc)))
		}
		node := call.Node
		if cn, ok := node.(*Counting); ok {
			node = cn.Inner() // accounted above
		}
		req := *call.Req
		req.Acc = acc
		rep, err := proto.PartialSum(ctx, node, &req)
		if err != nil {
			return nil, err
		}
		if !rep.OK {
			return nil, fmt.Errorf("transport: partial sum refused (opmode %v, lock %v)", rep.OpMode, rep.LockMode)
		}
		acc = rep.Sum
	}
	// Root survivor -> coordinator: the single combined block.
	a.ctr.PartialSum.Messages.Add(1)
	a.ctr.PartialSum.BytesRecvd.Add(uint64(wire.Size(&proto.PartialSumReply{OK: true, Sum: acc})))
	return acc, nil
}

// MulticastAdd delivers the calls concurrently. The target nodes in
// the calls should be the *inner* (uncounted) handles when they are
// also wrapped by Counting; here we simply count the broadcast once
// and deliver to whatever handle was provided, tolerating
// double-counting only of headers.
func (m *CountingMulticaster) MulticastAdd(ctx context.Context, calls []proto.AddCall) []proto.AddResult {
	if len(calls) > 0 {
		// A broadcast is ONE message on the medium (the paper's
		// AJX-bcast write costs p+3 messages: swap + reply, one
		// broadcast, p add replies): one full payload plus a header
		// per extra recipient.
		m.ctr.Add.Calls.Add(uint64(len(calls)))
		m.ctr.Add.Messages.Add(1)
		m.ctr.Add.BytesSent.Add(uint64(wire.Size(calls[0].Req)))
		extra := uint64(len(calls)-1) * uint64(wire.FrameOverhead)
		m.ctr.Add.BytesSent.Add(extra)
		saved := uint64(len(calls)-1) * uint64(wire.Size(calls[0].Req)-wire.FrameOverhead)
		m.ctr.MulticastPayloadSavings.Add(saved)
	}
	results := make([]proto.AddResult, len(calls))
	var wg sync.WaitGroup
	for i := range calls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := calls[i].Node
			if cn, ok := node.(*Counting); ok {
				node = cn.Inner() // payload already accounted above
			}
			rep, err := node.Add(ctx, calls[i].Req)
			if err == nil {
				m.ctr.Add.Messages.Add(1)
				m.ctr.Add.BytesRecvd.Add(uint64(wire.Size(rep)))
			}
			results[i] = proto.AddResult{Reply: rep, Err: err}
		}(i)
	}
	wg.Wait()
	return results
}

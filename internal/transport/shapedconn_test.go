package transport

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// discardConn is a net.Conn whose writes vanish instantly, isolating
// ShapedConn's pacing from any real socket.
type discardConn struct {
	net.Conn
	written int
}

func (d *discardConn) Write(b []byte) (int, error) { d.written += len(b); return len(b), nil }

func TestShapedConnPacesWrites(t *testing.T) {
	const rate = 32 << 20 // 32 MiB/s
	const total = 4 << 20 // 4 MiB => at least ~125 ms on the wire
	inner := &discardConn{}
	sc := NewShapedConn(inner, rate)
	chunk := make([]byte, 64<<10)
	start := time.Now()
	for sent := 0; sent < total; sent += len(chunk) {
		if _, err := sc.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if inner.written != total {
		t.Fatalf("wrote %d bytes, want %d", inner.written, total)
	}
	// The ledger should make this take at least ~80% of the ideal wire
	// time; an unshaped pass through discardConn finishes in microseconds.
	ideal := time.Duration(float64(total) / rate * float64(time.Second))
	if elapsed < ideal*8/10 {
		t.Fatalf("4 MiB at 32 MiB/s took %v, want >= %v", elapsed, ideal*8/10)
	}
}

// TestShapedConnPassesBytesThrough checks shaping never alters data:
// what goes in over a real pipe comes out byte-identical.
func TestShapedConnPassesBytesThrough(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	sc := NewShapedConn(client, 64<<20)
	payload := make([]byte, 8<<10)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	got := make([]byte, len(payload))
	done := make(chan error, 1)
	go func() {
		_, err := sc.Write(payload)
		_ = sc.Close()
		done <- err
	}()
	if _, err := readFull(server, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shaped conn corrupted the byte stream")
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := c.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

package transport

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/proto"
)

// Op identifies one StorageNode operation for per-op fault rates and
// hooks.
type Op int

const (
	OpRead Op = iota
	OpSwap
	OpAdd
	OpBatchAdd
	OpCheckTID
	OpTryLock
	OpSetLock
	OpGetState
	OpGetRecent
	OpReconstruct
	OpFinalize
	OpGCOld
	OpGCRecent
	OpProbe
	OpPartialSum
	NumOps // count sentinel
)

var opNames = [NumOps]string{
	"read", "swap", "add", "batch_add", "checktid", "trylock", "setlock",
	"getstate", "getrecent", "reconstruct", "finalize", "gc_old",
	"gc_recent", "probe", "partial_sum",
}

func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// DefaultGrayLatency is the extra per-call delay of a gray (slow but
// alive) node when FaultConfig.GrayLatency is zero.
const DefaultGrayLatency = 2 * time.Millisecond

// FaultConfig parameterizes a Faulty wrapper. The zero value injects
// nothing; faults then come only from the runtime controls (Crash,
// SetPartitioned, SetGray) or a Scenario.
type FaultConfig struct {
	// Seed makes the error rolls deterministic. Two wrappers with the
	// same seed and the same call sequence inject the same faults.
	Seed int64
	// ErrorRate is the probability in [0,1] that a call fails with an
	// injected error (wrapping proto.ErrNodeDown) before reaching the
	// node.
	ErrorRate float64
	// OpErrorRate overrides ErrorRate for specific operations.
	OpErrorRate map[Op]float64
	// Latency is a fixed delay added to every call.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every call.
	Jitter time.Duration
	// GrayLatency is the extra delay while the node is gray; zero means
	// DefaultGrayLatency.
	GrayLatency time.Duration
	// GrayTail, when set, replaces the fixed GrayLatency with a
	// heavy-tailed (lognormal) delay drawn per call from the wrapper's
	// seeded rng — the realistic gray-failure shape where most calls
	// are a little slow and a few are very slow.
	GrayTail *TailLatency
}

// TailLatency is a lognormal latency distribution: each sample is
// Median * exp(Sigma * N(0,1)), clamped at Cap. Sigma around 1.0-1.5
// gives production-like tails (p99 roughly 10-30x the median).
type TailLatency struct {
	// Median is the distribution's median delay. Required.
	Median time.Duration
	// Sigma is the lognormal shape parameter. Defaults to 1.0 when
	// zero or negative.
	Sigma float64
	// Cap bounds a single sample; zero means 100x the median.
	Cap time.Duration
}

// sample maps one standard normal draw to a delay.
func (t *TailLatency) sample(z float64) time.Duration {
	sigma := t.Sigma
	if sigma <= 0 {
		sigma = 1.0
	}
	d := time.Duration(float64(t.Median) * math.Exp(sigma*z))
	cap := t.Cap
	if cap <= 0 {
		cap = 100 * t.Median
	}
	if d > cap {
		d = cap
	}
	if d < 0 {
		d = 0
	}
	return d
}

// FaultStats counts what the wrapper did, for test assertions.
type FaultStats struct {
	Calls            atomic.Uint64 // total calls entering the wrapper
	InjectedErrors   atomic.Uint64 // failed by the seeded error roll
	RefusedCrash     atomic.Uint64 // failed because the node was crashed
	RefusedPartition atomic.Uint64 // failed because the node was partitioned
	Delayed          atomic.Uint64 // calls that slept (latency/jitter/gray)
}

// Faulty wraps a proto.StorageNode with deterministic, runtime-
// controllable fault injection: seeded per-op error rates, added
// latency and jitter, crash/restart, network partition, and a "gray"
// slow-node mode. It composes with the other wrappers in this package
// (put it outside Counting to model faults before the wire, inside to
// model faults behind it) and is drivable from a Scenario.
//
// Injected failures wrap proto.ErrNodeDown, so clients treat them
// exactly like a crashed node: transport error, not protocol
// rejection. Hooks fire before any fault decision, preserving the
// "callback between protocol steps" semantics tests rely on.
type Faulty struct {
	inner proto.StorageNode
	cfg   FaultConfig

	down        atomic.Bool
	partitioned atomic.Bool
	gray        atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	hooks [NumOps]func(req any)

	stats FaultStats
}

var _ proto.StorageNode = (*Faulty)(nil)
var _ proto.MultiBatcher = (*Faulty)(nil)
var _ proto.PartialSummer = (*Faulty)(nil)

// NewFaulty wraps inner with fault injection.
func NewFaulty(inner proto.StorageNode, cfg FaultConfig) *Faulty {
	return &Faulty{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Inner returns the wrapped node.
func (f *Faulty) Inner() proto.StorageNode { return f.inner }

// Stats exposes the wrapper's fault counters.
func (f *Faulty) Stats() *FaultStats { return &f.stats }

// Crash makes every call fail with proto.ErrNodeDown until Restart.
// Unlike storage.Node.Crash it keeps the node's state intact, modeling
// the transient unavailability that dominates production traces.
func (f *Faulty) Crash() { f.down.Store(true) }

// Restart ends a Crash.
func (f *Faulty) Restart() { f.down.Store(false) }

// Down reports whether the wrapper is in the crashed state.
func (f *Faulty) Down() bool { return f.down.Load() }

// SetPartitioned isolates the node: calls fail with proto.ErrNodeDown
// while set. Semantically identical to Crash from a single client's
// viewpoint; kept separate so scenarios and stats can distinguish the
// two.
func (f *Faulty) SetPartitioned(v bool) { f.partitioned.Store(v) }

// Partitioned reports whether the node is partitioned away.
func (f *Faulty) Partitioned() bool { return f.partitioned.Load() }

// SetGray toggles gray mode: the node answers, but every call pays
// GrayLatency extra — the slow-but-alive failure mode.
func (f *Faulty) SetGray(v bool) { f.gray.Store(v) }

// Gray reports whether the node is in gray mode.
func (f *Faulty) Gray() bool { return f.gray.Load() }

// SetHook installs fn to run (on the calling goroutine) before every
// op-typed request is processed, with the request as argument. A nil
// fn removes the hook. Hooks fire before fault decisions, so they see
// calls even to a crashed node.
func (f *Faulty) SetHook(op Op, fn func(req any)) {
	f.mu.Lock()
	f.hooks[op] = fn
	f.mu.Unlock()
}

func (f *Faulty) hook(op Op) func(req any) {
	f.mu.Lock()
	fn := f.hooks[op]
	f.mu.Unlock()
	return fn
}

// roll decides whether to inject an error for one call of op.
func (f *Faulty) roll(op Op) bool {
	rate := f.cfg.ErrorRate
	if r, ok := f.cfg.OpErrorRate[op]; ok {
		rate = r
	}
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	return v < rate
}

// delay computes this call's injected latency.
func (f *Faulty) delay() time.Duration {
	d := f.cfg.Latency
	if f.gray.Load() {
		switch {
		case f.cfg.GrayTail != nil:
			f.mu.Lock()
			z := f.rng.NormFloat64()
			f.mu.Unlock()
			d += f.cfg.GrayTail.sample(z)
		case f.cfg.GrayLatency > 0:
			d += f.cfg.GrayLatency
		default:
			d += DefaultGrayLatency
		}
	}
	if f.cfg.Jitter > 0 {
		f.mu.Lock()
		d += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
		f.mu.Unlock()
	}
	return d
}

func faultCall[Req any, Rep any](ctx context.Context, f *Faulty, op Op, req Req, call func() (Rep, error)) (Rep, error) {
	var zero Rep
	f.stats.Calls.Add(1)
	if fn := f.hook(op); fn != nil {
		fn(req)
	}
	if f.down.Load() {
		f.stats.RefusedCrash.Add(1)
		return zero, fmt.Errorf("%w: injected crash (%s)", proto.ErrNodeDown, op)
	}
	if f.partitioned.Load() {
		f.stats.RefusedPartition.Add(1)
		return zero, fmt.Errorf("%w: injected partition (%s)", proto.ErrNodeDown, op)
	}
	if f.roll(op) {
		f.stats.InjectedErrors.Add(1)
		return zero, fmt.Errorf("%w: injected fault (%s)", proto.ErrNodeDown, op)
	}
	if d := f.delay(); d > 0 {
		f.stats.Delayed.Add(1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return zero, ctx.Err()
		case <-t.C:
		}
	}
	return call()
}

func (f *Faulty) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return faultCall(ctx, f, OpRead, req, func() (*proto.ReadReply, error) { return f.inner.Read(ctx, req) })
}
func (f *Faulty) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	return faultCall(ctx, f, OpSwap, req, func() (*proto.SwapReply, error) { return f.inner.Swap(ctx, req) })
}
func (f *Faulty) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	return faultCall(ctx, f, OpAdd, req, func() (*proto.AddReply, error) { return f.inner.Add(ctx, req) })
}
func (f *Faulty) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	return faultCall(ctx, f, OpBatchAdd, req, func() (*proto.BatchAddReply, error) { return f.inner.BatchAdd(ctx, req) })
}

// BatchAddMulti rolls the fault dice once for the whole coalesced call
// — it models one frame on the wire, so a crash or injected error
// takes down every sub-request together — then delegates through the
// inner node's capability (or its BatchAdd loop when absent).
func (f *Faulty) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	return faultCall(ctx, f, OpBatchAdd, req, func() (*proto.BatchAddMultiReply, error) {
		return proto.BatchAddMulti(ctx, f.inner, req)
	})
}
func (f *Faulty) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	return faultCall(ctx, f, OpCheckTID, req, func() (*proto.CheckTIDReply, error) { return f.inner.CheckTID(ctx, req) })
}
func (f *Faulty) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	return faultCall(ctx, f, OpTryLock, req, func() (*proto.TryLockReply, error) { return f.inner.TryLock(ctx, req) })
}
func (f *Faulty) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	return faultCall(ctx, f, OpSetLock, req, func() (*proto.SetLockReply, error) { return f.inner.SetLock(ctx, req) })
}
func (f *Faulty) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	return faultCall(ctx, f, OpGetState, req, func() (*proto.GetStateReply, error) { return f.inner.GetState(ctx, req) })
}
func (f *Faulty) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	return faultCall(ctx, f, OpGetRecent, req, func() (*proto.GetRecentReply, error) { return f.inner.GetRecent(ctx, req) })
}
func (f *Faulty) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	return faultCall(ctx, f, OpReconstruct, req, func() (*proto.ReconstructReply, error) { return f.inner.Reconstruct(ctx, req) })
}
func (f *Faulty) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	return faultCall(ctx, f, OpFinalize, req, func() (*proto.FinalizeReply, error) { return f.inner.Finalize(ctx, req) })
}
func (f *Faulty) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	return faultCall(ctx, f, OpGCOld, req, func() (*proto.GCReply, error) { return f.inner.GCOld(ctx, req) })
}
func (f *Faulty) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	return faultCall(ctx, f, OpGCRecent, req, func() (*proto.GCReply, error) { return f.inner.GCRecent(ctx, req) })
}
func (f *Faulty) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	return faultCall(ctx, f, OpProbe, req, func() (*proto.ProbeReply, error) { return f.inner.Probe(ctx, req) })
}

// PartialSum faults the partial-sum frame like any other op, then
// delegates through the inner node's capability; crash, partition, and
// seeded errors all apply, so frugal repair sees exactly the failure
// modes whole-block fetches would.
func (f *Faulty) PartialSum(ctx context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	return faultCall(ctx, f, OpPartialSum, req, func() (*proto.PartialSumReply, error) {
		return proto.PartialSum(ctx, f.inner, req)
	})
}

// --- scenarios --------------------------------------------------------------

// FaultAction is one state change applied to a Faulty wrapper.
type FaultAction int

const (
	ActCrash FaultAction = iota + 1 // transient crash (state preserved)
	ActRestart
	ActPartition
	ActHeal
	ActSlow // enter gray mode
	ActNormal
)

var actNames = map[FaultAction]string{
	ActCrash: "crash", ActRestart: "restart",
	ActPartition: "partition", ActHeal: "heal",
	ActSlow: "slow", ActNormal: "normal",
}

func (a FaultAction) String() string {
	if s, ok := actNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// recovery maps a fault action to the action that undoes it.
func (a FaultAction) recovery() FaultAction {
	switch a {
	case ActCrash:
		return ActRestart
	case ActPartition:
		return ActHeal
	default:
		return ActNormal
	}
}

// FaultEvent schedules one action on one node at an offset from the
// scenario's start.
type FaultEvent struct {
	After time.Duration
	Node  int
	Act   FaultAction
}

// Scenario is a deterministic schedule of fault events — the spec
// format chaos tests and the soak harness run against.
type Scenario struct {
	Events []FaultEvent
}

// apply performs one event's action on its target wrapper.
func (e FaultEvent) apply(nodes []*Faulty) {
	if e.Node < 0 || e.Node >= len(nodes) {
		return
	}
	f := nodes[e.Node]
	switch e.Act {
	case ActCrash:
		f.Crash()
	case ActRestart:
		f.Restart()
	case ActPartition:
		f.SetPartitioned(true)
	case ActHeal:
		f.SetPartitioned(false)
	case ActSlow:
		f.SetGray(true)
	case ActNormal:
		f.SetGray(false)
	}
}

// Run replays the scenario against the wrappers in real time, sorted
// by event offset. It returns when every event has fired or the
// context is canceled; on cancellation all pending heal-type events
// are applied immediately so no node is left faulted.
func (s Scenario) Run(ctx context.Context, nodes []*Faulty) error {
	events := append([]FaultEvent(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].After < events[j].After })
	start := time.Now()
	for i, e := range events {
		if d := e.After - time.Since(start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				for _, rest := range events[i:] {
					if rest.Act == ActRestart || rest.Act == ActHeal || rest.Act == ActNormal {
						rest.apply(nodes)
					}
				}
				return ctx.Err()
			case <-t.C:
			}
		}
		e.apply(nodes)
	}
	return nil
}

// RandomScenario generates a deterministic random fault schedule:
// nodes enter crash/partition/gray windows of bounded length, with at
// most maxConcurrent nodes faulted at any instant, and every fault is
// healed — the final events restore all nodes, so a soak test can
// assert convergence after Run returns.
func RandomScenario(seed int64, nodes int, total time.Duration, maxConcurrent int) Scenario {
	rng := rand.New(rand.NewSource(seed))
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	var events []FaultEvent
	faulted := make(map[int]FaultAction)
	step := total / 24
	if step <= 0 {
		step = time.Millisecond
	}
	acts := []FaultAction{ActCrash, ActPartition, ActSlow}
	at := time.Duration(0)
	for {
		at += time.Duration(rng.Int63n(int64(step))) + step/2
		if at >= total {
			break
		}
		node := rng.Intn(nodes)
		if act, ok := faulted[node]; ok {
			events = append(events, FaultEvent{After: at, Node: node, Act: act.recovery()})
			delete(faulted, node)
			continue
		}
		if len(faulted) >= maxConcurrent {
			continue
		}
		act := acts[rng.Intn(len(acts))]
		events = append(events, FaultEvent{After: at, Node: node, Act: act})
		faulted[node] = act
	}
	still := make([]int, 0, len(faulted))
	for node := range faulted {
		still = append(still, node)
	}
	sort.Ints(still)
	for _, node := range still {
		events = append(events, FaultEvent{After: total, Node: node, Act: faulted[node].recovery()})
	}
	return Scenario{Events: events}
}

package transport

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"

	"ecstore/internal/proto"
	"ecstore/internal/wire"
)

// protoErrorSentinels parses the proto package's source and returns
// every top-level `var ErrX = errors.New(...)` sentinel, the ground
// truth for the wire-error gate below.
func protoErrorSentinels(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../proto", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse proto package: %v", err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Err") {
							names = append(names, name.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("found no Err* sentinels in the proto package")
	}
	return names
}

// wireExemptSentinels lists proto sentinels that legitimately never
// cross the wire as typed codes, each with the reason. A new sentinel
// missing from both this list and wire's errSentinels table fails the
// gate by name.
var wireExemptSentinels = map[string]string{
	// Synthesized client-side when a dial is in cooldown or a breaker
	// is open; a server never answers with it.
	"ErrNodeDown": "client-side down-marker, never sent by a server",
	// Synthesized client-side by the proto.PartialSum helper when the
	// node lacks the capability; the transport sees only the miss.
	"ErrNoPartialSum": "client-side capability miss, never sent by a server",
}

// sentinelByName maps source names to the live sentinel values so the
// round-trip below exercises the real errors, not reconstructions.
var sentinelByName = map[string]error{
	"ErrNodeDown":         proto.ErrNodeDown,
	"ErrDraining":         proto.ErrDraining,
	"ErrDeadlineExceeded": proto.ErrDeadlineExceeded,
	"ErrNoPartialSum":     proto.ErrNoPartialSum,
	"ErrThrottled":        proto.ErrThrottled,
	"ErrOverloaded":       proto.ErrOverloaded,
}

// TestEveryProtoSentinelSurvivesTheWire is the wire-error half of the
// capability gate: every typed sentinel the proto package declares
// must either round-trip through the wire error encoding (so
// errors.Is works across a TCP hop exactly as in-process — the way
// clients detect a draining or deadline-shedding storaged) or be
// explicitly exempted with a reason. Adding a sentinel to proto
// without extending wire's errSentinels table fails here by name.
func TestEveryProtoSentinelSurvivesTheWire(t *testing.T) {
	for _, name := range protoErrorSentinels(t) {
		sentinel, known := sentinelByName[name]
		if !known {
			t.Errorf("proto sentinel %s is not in sentinelByName: add it here and either to "+
				"wire's errSentinels table or to wireExemptSentinels", name)
			continue
		}
		if reason, exempt := wireExemptSentinels[name]; exempt {
			if wire.CodeOf(sentinel) != wire.CodeGeneric {
				t.Errorf("%s is exempt (%s) but has a typed wire code — drop the exemption", name, reason)
			}
			continue
		}
		wrapped := fmt.Errorf("storaged says: %w", sentinel)
		payload := wire.AppendError(nil, wrapped)
		back := wire.DecodeError(payload)
		if !errors.Is(back, sentinel) {
			t.Errorf("%s did not survive the wire: decoded %v", name, back)
		}
		if !strings.Contains(back.Error(), "storaged says") {
			t.Errorf("%s lost its message text across the wire: %q", name, back.Error())
		}
	}
}

package transport

import (
	"context"
	"testing"
	"time"

	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/wire"
)

const blockSize = 1024

func newNode(t *testing.T) *storage.Node {
	t.Helper()
	return storage.MustNew(storage.Options{ID: "t0", BlockSize: blockSize})
}

func blk() []byte { return make([]byte, blockSize) }

func TestCountingAccountsMessagesAndBytes(t *testing.T) {
	ctr := &Counters{}
	node := NewCounting(newNode(t), ctr)
	ctx := context.Background()

	rreq := &proto.ReadReq{Stripe: 1, Slot: 0}
	rrep, err := node.Read(ctx, rreq)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr.Read.Calls.Load(); got != 1 {
		t.Fatalf("read calls = %d", got)
	}
	if got := ctr.Read.Messages.Load(); got != 2 {
		t.Fatalf("read messages = %d, want 2 (request + reply)", got)
	}
	if got := ctr.Read.BytesSent.Load(); got != uint64(wire.Size(rreq)) {
		t.Fatalf("read bytes sent = %d, want %d", got, wire.Size(rreq))
	}
	if got := ctr.Read.BytesRecvd.Load(); got != uint64(wire.Size(rrep)) {
		t.Fatalf("read bytes recvd = %d, want %d", got, wire.Size(rrep))
	}

	nt := proto.TID{Seq: 1, Block: 0, Client: 1}
	if _, err := node.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk(), NTID: nt}); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: blk(), Premultiplied: true, NTID: nt}); err != nil {
		t.Fatal(err)
	}
	if got := ctr.TotalMessages(); got != 6 {
		t.Fatalf("total messages = %d, want 6", got)
	}
	sent, recvd := ctr.TotalBytes()
	if sent == 0 || recvd == 0 {
		t.Fatal("byte totals not accumulated")
	}
}

func TestCountingFailedCallCountsRequestOnly(t *testing.T) {
	ctr := &Counters{}
	raw := newNode(t)
	node := NewCounting(raw, ctr)
	raw.Crash()
	if _, err := node.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0}); err == nil {
		t.Fatal("read of crashed node succeeded")
	}
	if got := ctr.Read.Messages.Load(); got != 1 {
		t.Fatalf("messages = %d, want 1 (request only)", got)
	}
}

func TestParallelMulticaster(t *testing.T) {
	node := newNode(t)
	calls := make([]proto.AddCall, 3)
	for i := range calls {
		calls[i] = proto.AddCall{Node: node, Req: &proto.AddReq{
			Stripe: 1, Slot: int32(2 + i), Delta: blk(), Premultiplied: true,
			NTID: proto.TID{Seq: uint64(i + 1), Block: 0, Client: 1},
		}}
	}
	results := Parallel{}.MulticastAdd(context.Background(), calls)
	for i, r := range results {
		if r.Err != nil || r.Reply.Status != proto.StatusOK {
			t.Fatalf("call %d: %+v", i, r)
		}
	}
}

func TestCountingMulticasterChargesPayloadOnce(t *testing.T) {
	ctr := &Counters{}
	inner := newNode(t)
	counted := NewCounting(inner, ctr)
	m := NewCountingMulticaster(ctr)
	calls := make([]proto.AddCall, 3)
	for i := range calls {
		calls[i] = proto.AddCall{Node: counted, Req: &proto.AddReq{
			Stripe: 1, Slot: int32(2 + i), Delta: blk(), Premultiplied: false, DataSlot: 0,
			NTID: proto.TID{Seq: uint64(i + 1), Block: 0, Client: 1},
		}}
	}
	// The node needs a code for unmultiplied deltas; rebuild with one.
	_ = inner
	results := m.MulticastAdd(context.Background(), calls)
	for i, r := range results {
		// Premultiplied=false without a code errors server-side — the
		// accounting question is still answered.
		_ = i
		_ = r
	}
	payload := uint64(wire.Size(calls[0].Req))
	wantSent := payload + 2*uint64(wire.FrameOverhead)
	if got := ctr.Add.BytesSent.Load(); got != wantSent {
		t.Fatalf("multicast bytes sent = %d, want %d", got, wantSent)
	}
	if ctr.MulticastPayloadSavings.Load() == 0 {
		t.Fatal("multicast recorded no savings")
	}
}

func TestHostReserveSerializes(t *testing.T) {
	h := NewHost("h", 1e6) // 1 MB/s => 1 us per byte
	start := time.Now()
	d1 := h.reserve(start, 1000)
	d2 := h.reserve(start, 1000)
	if got := d1.Sub(start); got < 900*time.Microsecond || got > 1100*time.Microsecond {
		t.Fatalf("first reservation took %v, want ~1ms", got)
	}
	if got := d2.Sub(start); got < 1900*time.Microsecond || got > 2100*time.Microsecond {
		t.Fatalf("second reservation took %v, want ~2ms (queued)", got)
	}
	// A reservation after the ledger drained starts fresh.
	d3 := h.reserve(start.Add(10*time.Millisecond), 1000)
	if got := d3.Sub(start); got < 10900*time.Microsecond {
		t.Fatalf("post-idle reservation = %v", got)
	}
}

func TestNewHostPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHost(0) did not panic")
		}
	}()
	NewHost("bad", 0)
}

func TestShapedCallAddsLatencyAndSerialization(t *testing.T) {
	inner := newNode(t)
	client := NewHost("c", 1e6) // 1 us/byte: a 1 KB block costs ~1 ms
	server := NewHost("s", 1e6)
	cfg := ShapeConfig{Latency: 2 * time.Millisecond, ServerTime: 0}
	sh := NewShaped(inner, client, server, cfg)

	start := time.Now()
	nt := proto.TID{Seq: 1, Block: 0, Client: 1}
	if _, err := sh.Swap(context.Background(), &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk(), NTID: nt}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Expected: ~1ms tx + 2ms + ~1ms rx + ~1ms reply tx + 2ms + ~1ms
	// reply rx ≈ 8ms. Allow generous slack for timer granularity.
	if elapsed < 6*time.Millisecond {
		t.Fatalf("shaped swap took %v, want >= 6ms", elapsed)
	}
	if elapsed > 40*time.Millisecond {
		t.Fatalf("shaped swap took %v, absurdly long", elapsed)
	}
}

func TestShapedBandwidthLimitsThroughput(t *testing.T) {
	// Pump many concurrent reads through a 2 MB/s client NIC; the
	// achieved goodput must not exceed the configured bandwidth.
	inner := newNode(t)
	client := NewHost("c", 2e6)
	server := NewHost("s", 1e9) // not the bottleneck
	sh := NewShaped(inner, client, server, ShapeConfig{Latency: 0, ServerTime: 0})
	ctx := context.Background()

	const reads = 40
	start := time.Now()
	done := make(chan error, reads)
	for i := 0; i < reads; i++ {
		go func() {
			_, err := sh.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
			done <- err
		}()
	}
	for i := 0; i < reads; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	bytes := float64(reads * blockSize)
	rate := bytes / elapsed.Seconds()
	if rate > 2.4e6 { // 20% tolerance over 2 MB/s
		t.Fatalf("achieved %v B/s through a 2 MB/s NIC", rate)
	}
}

func TestShapedMulticasterSharesUplink(t *testing.T) {
	// Broadcast to 3 servers through a slow client uplink must take
	// roughly one payload transmission, not three.
	cfg := ShapeConfig{Latency: 0, ServerTime: 0}
	client := NewHost("c", 1e6) // ~1 ms per KB
	m := NewShapedMulticaster(client, cfg)
	calls := make([]proto.AddCall, 3)
	for i := range calls {
		inner := storage.MustNew(storage.Options{ID: "m", BlockSize: blockSize})
		server := NewHost("s", 1e9)
		sh := NewShaped(inner, client, server, cfg)
		calls[i] = proto.AddCall{Node: sh, Req: &proto.AddReq{
			Stripe: 1, Slot: int32(2 + i), Delta: blk(), Premultiplied: true,
			NTID: proto.TID{Seq: uint64(i + 1), Block: 0, Client: 1},
		}}
	}
	start := time.Now()
	results := m.MulticastAdd(context.Background(), calls)
	for i, r := range results {
		if r.Err != nil || r.Reply.Status != proto.StatusOK {
			t.Fatalf("call %d failed: %+v", i, r)
		}
	}
	// Judge by the NIC's virtual-time ledger (exact), not wall clock
	// (timer granularity). Unicast would book ~3 payloads (> 3 ms) on
	// the uplink; broadcast books one payload + headers + 3 tiny
	// replies (~1.2 ms).
	client.mu.Lock()
	booked := client.nextFree.Sub(start)
	client.mu.Unlock()
	if booked > 2*time.Millisecond {
		t.Fatalf("uplink booked %v, want ~1.2ms (payload charged once)", booked)
	}
	if booked < 1*time.Millisecond {
		t.Fatalf("uplink booked %v, payload apparently not charged", booked)
	}
}

package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// benchEndpoint builds a loopback server with the given block size and
// a client with the given stripe count and dialer.
func benchEndpoint(tb testing.TB, blockSize, stripes int, dialer DialFunc) *Client {
	tb.Helper()
	node := storage.MustNew(storage.Options{ID: "bench0", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	srv := Serve(ln, node)
	tb.Cleanup(func() { _ = srv.Close() })
	opts := []Option{WithStripes(stripes)}
	if dialer != nil {
		opts = append(opts, WithDialer(dialer))
	}
	cl := Dial(srv.Addr().String(), opts...)
	tb.Cleanup(func() { _ = cl.Close() })
	return cl
}

// benchAddCall runs one premultiplied Add carrying a payload-sized
// delta: the canonical hot-path RPC (the paper's redundant-node write).
func benchAddCall(ctx context.Context, cl *Client, stripe uint64, seq *uint64, delta []byte) error {
	*seq++
	rep, err := cl.Add(ctx, &proto.AddReq{
		Stripe: stripe, Slot: 3, Delta: delta, Premultiplied: true,
		NTID: proto.TID{Seq: *seq, Block: 0, Client: proto.ClientID(stripe + 1)},
	})
	if err != nil {
		return err
	}
	if rep.Status != proto.StatusOK {
		return fmt.Errorf("add status %v", rep.Status)
	}
	return nil
}

func benchRPCAdd(b *testing.B, payload int) {
	cl := benchEndpoint(b, payload, 1, nil)
	ctx := context.Background()
	delta := make([]byte, payload)
	for i := range delta {
		delta[i] = byte(i)
	}
	var seq uint64
	if err := benchAddCall(ctx, cl, 0, &seq, delta); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchAddCall(ctx, cl, 0, &seq, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// Single-connection round-trip cost at the three canonical payload
// sizes; ns/op is the p50-ish closed-loop call latency, MB/s the
// single-stream loopback throughput. Gated by BENCH_rpc.json.
func BenchmarkRPCAdd1KiB(b *testing.B)  { benchRPCAdd(b, 1<<10) }
func BenchmarkRPCAdd16KiB(b *testing.B) { benchRPCAdd(b, 16<<10) }
func BenchmarkRPCAdd1MiB(b *testing.B)  { benchRPCAdd(b, 1<<20) }

// BenchmarkRPCAdd1MiBStriped4 drives 1 MiB adds from parallel workers
// over 4 connection stripes — the configuration the striped-throughput
// acceptance test holds to >= 2x a single shaped connection.
func BenchmarkRPCAdd1MiBStriped4(b *testing.B) {
	const payload = 1 << 20
	cl := benchEndpoint(b, payload, 4, nil)
	ctx := context.Background()
	var seed uint64
	if err := benchAddCall(ctx, cl, 0, &seed, make([]byte, payload)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(payload)
	var worker atomic64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		stripe := worker.next()
		delta := make([]byte, payload)
		var seq uint64
		for pb.Next() {
			if err := benchAddCall(ctx, cl, stripe, &seq, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) next() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	return a.n
}

// measureShapedAddThroughput runs a closed-loop 1 MiB add workload
// against a loopback server with every client connection capped at
// perConnBps by transport.ShapedConn, and returns MB/s.
func measureShapedAddThroughput(t *testing.T, stripes, workers, opsPerWorker int, perConnBps float64) float64 {
	t.Helper()
	const payload = 1 << 20
	dialer := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return transport.NewShapedConn(conn, perConnBps), nil
	}
	cl := benchEndpoint(t, payload, stripes, dialer)
	ctx := context.Background()

	// Warm every stripe: conns dialed, pools and scratch grown.
	var warmSeq uint64
	warm := make([]byte, payload)
	for i := 0; i < stripes; i++ {
		if err := benchAddCall(ctx, cl, uint64(workers+i), &warmSeq, warm); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delta := make([]byte, payload)
			var seq uint64
			for it := 0; it < opsPerWorker; it++ {
				if err := benchAddCall(ctx, cl, uint64(w), &seq, delta); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	totalBytes := float64(workers) * float64(opsPerWorker) * payload
	return totalBytes / elapsed.Seconds() / (1 << 20)
}

// TestStripedThroughputAcceptance is the acceptance gate for striping:
// with each connection capped at 64 MiB/s (transport.ShapedConn models
// the per-flow ceiling a single TCP stream hits — fair queuing, window
// limits — which raw single-core loopback cannot exhibit), spreading
// 1 MiB payloads over 4 stripes must deliver at least 2x the
// single-connection throughput. Skipped under the race detector, whose
// slowdown turns the workload CPU-bound and voids the bandwidth model.
func TestStripedThroughputAcceptance(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock throughput ratios are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		perConnBps = 64 << 20
		workers    = 8
		ops        = 5 // x 8 workers x 1 MiB = 40 MiB per configuration
	)
	single := measureShapedAddThroughput(t, 1, workers, ops, perConnBps)
	striped := measureShapedAddThroughput(t, 4, workers, ops, perConnBps)
	t.Logf("shaped 1 MiB add throughput: single=%.1f MB/s, striped-4=%.1f MB/s (%.2fx)", single, striped, striped/single)
	if striped < 2*single {
		t.Fatalf("striped-4 throughput %.1f MB/s < 2x single-connection %.1f MB/s", striped, single)
	}
}

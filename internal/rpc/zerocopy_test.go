package rpc

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/wire"
)

// sinkConn is a non-TCP net.Conn that swallows writes and records
// whether any Write was handed the exact target buffer (pointer
// identity, not content). Because it is not a *net.TCPConn,
// net.Buffers.WriteTo degrades to sequential per-segment Write calls —
// which is precisely what lets this test observe each segment's base
// pointer. Read blocks until Close so the client's readLoop idles.
type sinkConn struct {
	target    *byte
	targetLen int
	hit       atomic.Bool
	written   atomic.Int64
	closed    chan struct{}
	closeOnce atomic.Bool
}

func newSinkConn() *sinkConn { return &sinkConn{closed: make(chan struct{})} }

func (c *sinkConn) Write(b []byte) (int, error) {
	if len(b) > 0 && len(b) == c.targetLen && &b[0] == c.target {
		c.hit.Store(true)
	}
	c.written.Add(int64(len(b)))
	return len(b), nil
}

func (c *sinkConn) Read(b []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}

func (c *sinkConn) Close() error {
	if c.closeOnce.CompareAndSwap(false, true) {
		close(c.closed)
	}
	return nil
}

func (c *sinkConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c *sinkConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// TestClientWritePathZeroCopy1MiB is the copy-accounting acceptance
// test: a 1 MiB block payload must cross the client write path by
// reference — the kernel-facing Write receives the caller's own
// buffer, never a copy in a pooled frame buffer.
func TestClientWritePathZeroCopy1MiB(t *testing.T) {
	conn := newSinkConn()
	cl := Dial("fake", WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return conn, nil
	}))
	defer cl.Close()

	value := make([]byte, 1<<20)
	value[0], value[len(value)-1] = 0xA5, 0x5A
	conn.target, conn.targetLen = &value[0], len(value)

	req := &proto.SwapReq{Stripe: 1, Slot: 0, Value: value, NTID: proto.TID{Seq: 1, Client: 2}}
	sc := cl.stripes[0]
	ch := make(chan frameOrErr, 1)
	n, vectored, err := sc.send(context.Background(), 1, 0, req, ch)
	if err != nil {
		t.Fatal(err)
	}
	if !vectored {
		t.Fatal("1 MiB payload did not take the vectored write path")
	}
	if want := wire.Size(req); n != want || conn.written.Load() != int64(want) {
		t.Fatalf("wire accounting: send=%d conn=%d want=%d", n, conn.written.Load(), want)
	}
	if !conn.hit.Load() {
		t.Fatal("the kernel-facing write never saw the caller's 1 MiB buffer: the payload was copied")
	}
	sc.mu.Lock()
	delete(sc.pending, 1)
	sc.mu.Unlock()
}

// TestClientWritePathZeroAlloc1MiB is the alloc-accounting half: in
// steady state (connection up, pools warm), sending a 1 MiB payload
// frame allocates nothing on the client write path.
func TestClientWritePathZeroAlloc1MiB(t *testing.T) {
	conn := newSinkConn()
	cl := Dial("fake", WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return conn, nil
	}))
	defer cl.Close()

	var req any = &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, 1<<20), NTID: proto.TID{Seq: 1, Client: 2}}
	sc := cl.stripes[0]
	ch := make(chan frameOrErr, 1)
	ctx := context.Background()
	// Warm up: dial, size the pending map, grow the meta scratch and
	// the Frame's segment backing.
	if _, _, err := sc.send(ctx, 7, 0, req, ch); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		// Re-sending under the same id keeps the pending map at constant
		// size, isolating the write path itself.
		if _, _, err := sc.send(ctx, 7, 0, req, ch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("client vectored send allocates %.1f/op in steady state, want 0", allocs)
	}
	sc.mu.Lock()
	delete(sc.pending, 7)
	sc.mu.Unlock()
}

// TestVectoredPathEngagesOverLoopback checks the threshold end to end:
// block-sized payloads at or above vectoredMinPayload ride writev on
// both request and reply, small frames stay on the copy path, and the
// vec_writes/vec_bytes counters account for it.
func TestVectoredPathEngagesOverLoopback(t *testing.T) {
	const bigBlock = 8 << 10
	node := storage.MustNew(storage.Options{ID: "zc0", BlockSize: bigBlock})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sreg := obs.NewRegistry()
	sm := NewMetrics(sreg, "srv")
	srv := Serve(ln, node, WithMetrics(sm))
	defer srv.Close()
	creg := obs.NewRegistry()
	cm := NewMetrics(creg, "cli")
	cl := Dial(srv.Addr().String(), WithMetrics(cm))
	defer cl.Close()

	ctx := context.Background()
	value := make([]byte, bigBlock)
	for i := range value {
		value[i] = byte(i)
	}
	if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: value, NTID: proto.TID{Seq: 1, Client: 1}}); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if err != nil || !rep.OK {
		t.Fatalf("read: %v %+v", err, rep)
	}

	// Client: the swap request vectored (8 KiB >= threshold); the read
	// request (tiny) did not.
	if got := cm.VecWrites.Value(); got != 1 {
		t.Fatalf("client vec_writes = %d, want 1", got)
	}
	if got := cm.VecBytes.Value(); got != bigBlock {
		t.Fatalf("client vec_bytes = %d, want %d", got, bigBlock)
	}
	// Server: the read reply carried the 8 KiB block back vectored; the
	// swap reply's old block is also 8 KiB (zero-valued) and vectored.
	if got := sm.VecWrites.Value(); got != 2 {
		t.Fatalf("server vec_writes = %d, want 2", got)
	}

	// Below the threshold nothing vectors: against a tiny-block server
	// every frame rides the copy path.
	srv2, _ := startServer(t) // blockSize 32
	cm2 := NewMetrics(obs.NewRegistry(), "cli2")
	cl2 := Dial(srv2.Addr().String(), WithMetrics(cm2))
	defer cl2.Close()
	if _, err := cl2.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: blk(0x1), NTID: proto.TID{Seq: 1, Client: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := cm2.VecWrites.Value(); got != 0 {
		t.Fatalf("sub-threshold traffic vectored %d frames, want 0", got)
	}
}

//go:build race

package rpc

// raceEnabled reports that the race detector is active; wall-clock
// throughput assertions are meaningless under its 5-20x slowdown.
const raceEnabled = true

package rpc

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ecstore/internal/bufpool"
	"ecstore/internal/proto"
)

// TestPooledBuffersDoNotAliasAcrossConcurrentRPCs hammers one real
// TCP server with concurrent swap/read/add traffic while the buffer
// pool runs in debug mode (puts poison their buffers and double-puts
// panic). If any code path recycled a buffer still referenced by
// another in-flight call — or handed the same pooled buffer to two
// calls at once — the poison bytes would corrupt a value or a reply,
// and the race detector would flag the overlapping writes.
//
// Each worker owns distinct stripes, writes values with a fill byte
// unique to (worker, iteration), and checks three invariants per
// round: the read-back block matches what was swapped in, the caller's
// request buffer is untouched by the call, and reply payloads received
// earlier stay intact after later calls reuse the connection's pooled
// frames.
func TestPooledBuffersDoNotAliasAcrossConcurrentRPCs(t *testing.T) {
	bufpool.SetDebug(true)
	t.Cleanup(func() { bufpool.SetDebug(false) })

	_, cl := startServer(t)
	ctx := context.Background()

	const (
		workers = 8
		iters   = 50
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prevReply []byte
			var prevFill byte
			for it := 0; it < iters; it++ {
				fill := byte(w*31 + it + 1)
				stripe := uint64(w)
				nt := proto.TID{Seq: uint64(it + 1), Block: 0, Client: proto.ClientID(w + 1)}

				val := blk(fill)
				if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: stripe, Slot: 0, Value: val, NTID: nt}); err != nil {
					errCh <- fmt.Errorf("worker %d iter %d: swap: %w", w, it, err)
					return
				}
				// The call must not have scribbled on the caller's buffer.
				for i, b := range val {
					if b != fill {
						errCh <- fmt.Errorf("worker %d iter %d: request buffer mutated at %d: %#x", w, it, i, b)
						return
					}
				}

				// A premultiplied add on a redundant slot exercises the
				// server-side request-recycling path (AddReq.Delta is
				// pooled after the reply is written).
				if rep, err := cl.Add(ctx, &proto.AddReq{Stripe: stripe, Slot: 3, Delta: blk(fill), Premultiplied: true, NTID: nt}); err != nil || rep.Status != proto.StatusOK {
					errCh <- fmt.Errorf("worker %d iter %d: add: %v %+v", w, it, err, rep)
					return
				}

				rrep, err := cl.Read(ctx, &proto.ReadReq{Stripe: stripe, Slot: 0})
				if err != nil || !rrep.OK {
					errCh <- fmt.Errorf("worker %d iter %d: read: %v %+v", w, it, err, rrep)
					return
				}
				for i, b := range rrep.Block {
					if b != fill {
						errCh <- fmt.Errorf("worker %d iter %d: read back %#x at %d, want %#x", w, it, b, i, fill)
						return
					}
				}

				// Reply payloads escape to the application and must never
				// be recycled: the previous round's block has to survive
				// all of this round's traffic unchanged.
				for i, b := range prevReply {
					if b != prevFill {
						errCh <- fmt.Errorf("worker %d iter %d: earlier reply corrupted at %d: %#x, want %#x", w, it, i, b, prevFill)
						return
					}
				}
				prevReply, prevFill = rrep.Block, fill
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
)

// startStripedServer is startServer with a metrics-instrumented client
// spreading calls across n connection stripes.
func startStripedServer(t *testing.T, n int) (*Server, *Client, *Metrics) {
	t.Helper()
	node := storage.MustNew(storage.Options{ID: "striped0", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	t.Cleanup(func() { _ = srv.Close() })
	m := NewMetrics(obs.NewRegistry(), "cli")
	cl := Dial(srv.Addr().String(), WithStripes(n), WithMetrics(m))
	t.Cleanup(func() { _ = cl.Close() })
	return srv, cl, m
}

// TestStripedClientDialsOneConnPerStripe: sequential calls walk the
// request-id hash across all stripes, so every stripe dials exactly
// once and stays connected.
func TestStripedClientDialsOneConnPerStripe(t *testing.T) {
	_, cl, m := startStripedServer(t, 4)
	if cl.Stripes() != 4 {
		t.Fatalf("Stripes() = %d, want 4", cl.Stripes())
	}
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := cl.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if got := m.Dials.Value(); got != 4 {
		t.Fatalf("client made %d dials for 12 calls over 4 stripes, want 4", got)
	}
	for i, sc := range cl.stripes {
		sc.mu.Lock()
		up := sc.conn != nil
		sc.mu.Unlock()
		if !up {
			t.Fatalf("stripe %d never connected", i)
		}
	}
	if cl.PendingCalls() != 0 {
		t.Fatalf("quiesced client has %d pending calls", cl.PendingCalls())
	}
}

// TestStripedClientCorrectness runs a read/write workload concurrently
// over every stripe and checks the answers, i.e. striping changes the
// transport layout but not the protocol.
func TestStripedClientCorrectness(t *testing.T) {
	_, cl, _ := startStripedServer(t, 3)
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stripe := uint64(w)
			for it := 0; it < 20; it++ {
				fill := byte(w*31 + it + 1)
				nt := proto.TID{Seq: uint64(it + 1), Block: 0, Client: proto.ClientID(w + 1)}
				if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: stripe, Slot: 0, Value: blk(fill), NTID: nt}); err != nil {
					errc <- err
					return
				}
				rep, err := cl.Read(ctx, &proto.ReadReq{Stripe: stripe, Slot: 0})
				if err != nil {
					errc <- err
					return
				}
				if !rep.OK || !bytes.Equal(rep.Block, blk(fill)) {
					errc <- errors.New("striped read returned the wrong block")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestDialCooldownSharedAcrossStripes: one stripe's failed dial puts
// every stripe in cooldown — a dead endpoint costs one dial attempt
// per window no matter how wide the client is.
func TestDialCooldownSharedAcrossStripes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close() // nothing listens here anymore
	m := NewMetrics(obs.NewRegistry(), "cli")
	cl := Dial(addr, WithStripes(4), WithMetrics(m), WithDialCooldown(time.Minute))
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		if _, err := cl.Probe(ctx, &proto.ProbeReq{}); !errors.Is(err, proto.ErrNodeDown) {
			t.Fatalf("call %d: err = %v, want ErrNodeDown", i, err)
		}
	}
	if got := m.Dials.Value(); got != 1 {
		t.Fatalf("dials = %d, want 1 (cooldown shared across stripes)", got)
	}
	if got := m.DialsSuppressed.Value(); got != 24 {
		t.Fatalf("suppressed = %d, want 24", got)
	}
}

// TestStripedClientCloseFailsAllStripes: Close fails calls on every
// stripe and further calls fail fast without dialing.
func TestStripedClientCloseFailsAllStripes(t *testing.T) {
	_, cl, m := startStripedServer(t, 2)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := cl.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatal(err)
		}
	}
	dials := m.Dials.Value()
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Probe(ctx, &proto.ProbeReq{}); !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("post-Close call: %v, want ErrNodeDown", err)
	}
	if got := m.Dials.Value(); got != dials {
		t.Fatalf("closed client dialed again (%d -> %d)", dials, got)
	}
}

// TestStripedClientReconnectsPerStripe: killing the server's side of
// every conn fails in-flight state per stripe, and the next call on
// each stripe re-dials lazily once the server is back.
func TestStripedClientReconnectsPerStripe(t *testing.T) {
	node := storage.MustNew(storage.Options{ID: "striped-re", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := Serve(ln, node)
	cl := Dial(addr, WithStripes(2), WithDialCooldown(0))
	defer cl.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := cl.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatal(err)
		}
	}
	_ = srv.Close()
	// Wait for both stripes to notice the hangup.
	deadline := time.Now().Add(2 * time.Second)
	for cl.Connected() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := Serve(ln2, node)
	defer srv2.Close()
	for i := 0; i < 4; i++ {
		if _, err := cl.Probe(ctx, &proto.ProbeReq{}); err != nil {
			t.Fatalf("post-restart probe %d: %v", i, err)
		}
	}
}

package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ecstore/internal/bufpool"
	"ecstore/internal/wire"
)

// frameSeed builds a raw frame: a big-endian u32 length prefix
// (claiming `claim` bytes) followed by `body`.
func frameSeed(claim uint32, body []byte) []byte {
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf[:4], claim)
	copy(buf[4:], body)
	return buf
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader. It
// must never panic and never allocate past MaxFrame, whatever the
// length prefix claims.
func FuzzReadFrame(f *testing.F) {
	// A well-formed frame (with a deadline budget).
	var good bytes.Buffer
	if err := writeFrame(&good, wire.TProbe, 42, 1500, []byte{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Length-prefix edge cases around the frameBodyMin minimum and
	// MaxFrame.
	f.Add(frameSeed(0, nil))
	f.Add(frameSeed(frameBodyMin-1, make([]byte, frameBodyMin-1)))
	f.Add(frameSeed(frameBodyMin, make([]byte, frameBodyMin)))
	f.Add(frameSeed(MaxFrame, make([]byte, 64)))
	f.Add(frameSeed(MaxFrame+1, make([]byte, 64)))
	f.Add(frameSeed(^uint32(0), make([]byte, 64)))
	// Truncated header and truncated body.
	f.Add([]byte{0x00, 0x00})
	f.Add(frameSeed(20, []byte{1, 2, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, id, deadlineUS, payload, frame, err := readFrame(bytes.NewReader(data))
		defer bufpool.Put(frame)
		if err != nil {
			if len(data) >= 4 {
				length := binary.BigEndian.Uint32(data[:4])
				if (length < frameBodyMin || length > MaxFrame) && !errors.Is(err, errBadFrame) &&
					!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("impossible length %d rejected with unexpected error: %v", length, err)
				}
			}
			return
		}
		// Accepted frames must be internally consistent and re-framable.
		if len(payload) > MaxFrame {
			t.Fatalf("payload of %d bytes exceeds MaxFrame", len(payload))
		}
		var out bytes.Buffer
		if err := writeFrame(&out, mt, id, deadlineUS, payload); err != nil {
			t.Fatalf("re-framing accepted frame failed: %v", err)
		}
		mt2, id2, deadline2, payload2, frame2, err := readFrame(&out)
		if err != nil {
			t.Fatalf("re-reading re-framed frame failed: %v", err)
		}
		defer bufpool.Put(frame2)
		if mt2 != mt || id2 != id || deadline2 != deadlineUS || !bytes.Equal(payload, payload2) {
			t.Fatalf("frame round-trip mismatch: (%d,%d,%d,%x) vs (%d,%d,%d,%x)",
				mt, id, deadlineUS, payload, mt2, id2, deadline2, payload2)
		}
	})
}

package rpc

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
)

// stallNode blocks every Read on a per-batch gate, signalling `entered`
// when the handler is running, so the test can cancel the caller while
// the reply is guaranteed not to have been sent yet.
type stallNode struct {
	proto.StorageNode
	mu      sync.Mutex
	gate    chan struct{}
	entered chan struct{}
}

func (n *stallNode) newBatch(size int) {
	n.mu.Lock()
	n.gate = make(chan struct{})
	n.entered = make(chan struct{}, size)
	n.mu.Unlock()
}

func (n *stallNode) release() {
	n.mu.Lock()
	close(n.gate)
	n.mu.Unlock()
}

func (n *stallNode) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	n.mu.Lock()
	gate, entered := n.gate, n.entered
	n.mu.Unlock()
	entered <- struct{}{}
	<-gate
	return n.StorageNode.Read(ctx, req)
}

// TestCancelledCallsLeakNothing is the pending-map hygiene regression
// test: a call abandoned by context cancellation must remove its
// pending entry immediately, and the late reply — which the server
// still sends — must have its pooled frame recycled by the read loop.
// Across 10k cancelled calls the pool's outstanding-buffer balance
// (Gets - Puts) must return to its baseline: a leaked reply frame per
// call would show up as ~10k unreturned buffers.
func TestCancelledCallsLeakNothing(t *testing.T) {
	bufpool.SetDebug(true) // poison + double-Put detection on
	defer bufpool.SetDebug(false)
	node := &stallNode{StorageNode: storage.MustNew(storage.Options{ID: "hyg0", BlockSize: blockSize})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	defer srv.Close()
	cl := Dial(srv.Addr().String(), WithStripes(2))
	defer cl.Close()

	// Connect and seed outside the gate.
	node.newBatch(1)
	warm := make(chan error, 1)
	go func() {
		_, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 0, Slot: 0})
		warm <- err
	}()
	<-node.entered
	node.release()
	if err := <-warm; err != nil {
		t.Fatal(err)
	}

	start := bufpool.Snapshot()
	base := int64(start.Gets) - int64(start.Puts)

	const (
		batches   = 40
		batchSize = 256 // 40 * 256 = 10240 cancelled calls
	)
	for b := 0; b < batches; b++ {
		node.newBatch(batchSize)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < batchSize; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := cl.Read(ctx, &proto.ReadReq{Stripe: 0, Slot: 0})
				if !errors.Is(err, context.Canceled) {
					t.Errorf("cancelled call returned %v, want context.Canceled", err)
				}
			}()
		}
		// Every handler is inside the gate: the requests are on the
		// server, no reply has been written. Cancel the whole batch.
		for i := 0; i < batchSize; i++ {
			<-node.entered
		}
		cancel()
		wg.Wait()
		if n := cl.PendingCalls(); n != 0 {
			t.Fatalf("batch %d: %d pending entries survived cancellation", b, n)
		}
		// Now let the late replies flow; the read loop must Put every
		// orphaned reply frame back.
		node.release()
	}

	// Quiesce: wait for the server to finish writing the last replies,
	// then for the pool balance to return to baseline.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("server did not quiesce: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := bufpool.Snapshot()
		out := int64(s.Gets) - int64(s.Puts) - base
		if out <= 2 { // transient slack: a frame still in flight in a read loop
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool balance off by %d buffers after 10k cancelled calls (late reply frames leaked)", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package rpc

import (
	"context"
	"net"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/obs"
	"ecstore/internal/wire"
)

// opNames maps each request message type to its metric label.
var opNames = map[wire.MsgType]string{
	wire.TRead:          "read",
	wire.TSwap:          "swap",
	wire.TAdd:           "add",
	wire.TBatchAdd:      "batch_add",
	wire.TBatchAddMulti: "batch_add_multi",
	wire.TCheckTID:      "checktid",
	wire.TTryLock:       "trylock",
	wire.TSetLock:       "setlock",
	wire.TGetState:      "getstate",
	wire.TGetRecent:     "getrecent",
	wire.TReconstruct:   "reconstruct",
	wire.TFinalize:      "finalize",
	wire.TGCOld:         "gc_old",
	wire.TGCRecent:      "gc_recent",
	wire.TProbe:         "probe",
	wire.TPartialSum:    "partial_sum",
}

// OpMetrics instruments one protocol operation.
type OpMetrics struct {
	// Calls counts requests (server: received; client: issued).
	Calls *obs.Counter
	// Errors counts failed calls: server-side handler errors, transport
	// failures, and TError replies.
	Errors *obs.Counter
	// Latency is the per-call wall time (server: dispatch to reply
	// written; client: request sent to reply decoded).
	Latency *obs.Histogram
}

// Metrics instruments one rpc endpoint (a Server or one or more
// Clients). Build it with NewMetrics and install it with WithMetrics;
// a nil *Metrics — the default — is a total no-op.
type Metrics struct {
	// BytesIn / BytesOut count framed bytes received / sent, including
	// the 17-byte frame header.
	BytesIn, BytesOut *obs.Counter
	// BadFrames counts malformed or oversized frames (MaxFrame).
	BadFrames *obs.Counter
	// Timeouts counts client calls abandoned by context cancellation.
	Timeouts *obs.Counter
	// Dials counts TCP dial attempts actually made by clients;
	// DialErrors the failed ones; DialsSuppressed the calls that failed
	// fast inside a post-failure dial cooldown window without touching
	// the network.
	Dials, DialErrors, DialsSuppressed *obs.Counter
	// ExpiredSheds counts requests a server shed because their
	// propagated deadline budget was already spent at dispatch;
	// DrainRefusals counts requests refused with ErrDraining while the
	// server was shutting down gracefully.
	ExpiredSheds, DrainRefusals *obs.Counter
	// VecWrites counts frames sent through the vectored (writev)
	// zero-copy fast path; VecBytes the payload bytes those frames
	// referenced in place instead of copying into a frame buffer.
	VecWrites, VecBytes *obs.Counter

	ops map[wire.MsgType]*OpMetrics
}

// NewMetrics registers an rpc metric set under the given prefix
// (e.g. "rpc" yields "rpc.swap.calls", "rpc.bytes_in"). A nil registry
// yields a no-op metric set, which callers may still install.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	m := &Metrics{
		BytesIn:         reg.Counter(prefix + ".bytes_in"),
		BytesOut:        reg.Counter(prefix + ".bytes_out"),
		BadFrames:       reg.Counter(prefix + ".bad_frames"),
		Timeouts:        reg.Counter(prefix + ".timeouts"),
		Dials:           reg.Counter(prefix + ".dials"),
		DialErrors:      reg.Counter(prefix + ".dial_errors"),
		DialsSuppressed: reg.Counter(prefix + ".dials_suppressed"),
		ExpiredSheds:    reg.Counter(prefix + ".expired_sheds"),
		DrainRefusals:   reg.Counter(prefix + ".drain_refusals"),
		VecWrites:       reg.Counter(prefix + ".vec_writes"),
		VecBytes:        reg.Counter(prefix + ".vec_bytes"),
		ops:             make(map[wire.MsgType]*OpMetrics, len(opNames)),
	}
	for mt, name := range opNames {
		m.ops[mt] = &OpMetrics{
			Calls:   reg.Counter(prefix + "." + name + ".calls"),
			Errors:  reg.Counter(prefix + "." + name + ".errors"),
			Latency: reg.Histogram(prefix + "." + name + ".latency"),
		}
	}
	// Every instrumented endpoint also exports the shared buffer-pool
	// gauges; Instrument is idempotent per registry and nil-safe.
	bufpool.Instrument(reg)
	return m
}

// Op returns the metrics for a request type, or nil for unknown types
// or a nil metric set.
func (m *Metrics) Op(mt wire.MsgType) *OpMetrics {
	if m == nil {
		return nil
	}
	return m.ops[mt]
}

func (o *OpMetrics) noteError() {
	if o != nil {
		o.Errors.Inc()
	}
}

func (m *Metrics) noteIn(n int) {
	if m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

func (m *Metrics) noteOut(n int) {
	if m != nil {
		m.BytesOut.Add(uint64(n))
	}
}

func (m *Metrics) noteBadFrame() {
	if m != nil {
		m.BadFrames.Inc()
	}
}

func (m *Metrics) noteTimeout() {
	if m != nil {
		m.Timeouts.Inc()
	}
}

func (m *Metrics) noteDial() {
	if m != nil {
		m.Dials.Inc()
	}
}

func (m *Metrics) noteDialError() {
	if m != nil {
		m.DialErrors.Inc()
	}
}

func (m *Metrics) noteDialSuppressed() {
	if m != nil {
		m.DialsSuppressed.Inc()
	}
}

func (m *Metrics) noteExpired() {
	if m != nil {
		m.ExpiredSheds.Inc()
	}
}

func (m *Metrics) noteDrainRefusal() {
	if m != nil {
		m.DrainRefusals.Inc()
	}
}

func (m *Metrics) noteVectored(payloadBytes int) {
	if m != nil {
		m.VecWrites.Inc()
		m.VecBytes.Add(uint64(payloadBytes))
	}
}

// DefaultDialCooldown is the post-failure dial backoff applied to
// clients that don't override it with WithDialCooldown.
const DefaultDialCooldown = 100 * time.Millisecond

// Option configures a Server or Client.
type Option func(*options)

// DialFunc overrides how a client establishes a connection. Tests and
// shaped benchmarks use it to wrap the socket; the default dials TCP
// and applies the client's socket tuning.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

type options struct {
	metrics         *Metrics
	dialCooldown    time.Duration
	dialCooldownSet bool
	callTimeout     time.Duration
	stripes         int
	noDelay         bool
	readBuf         int
	writeBuf        int
	dialer          DialFunc
}

// WithDialCooldown sets the client's post-failure dial backoff: after
// a failed dial, calls within d fail fast (wrapping proto.ErrNodeDown)
// without another dial attempt. Zero disables the cooldown. Servers
// ignore it.
func WithDialCooldown(d time.Duration) Option {
	return func(o *options) { o.dialCooldown = d; o.dialCooldownSet = true }
}

// WithCallTimeout bounds every call issued by the client with a
// per-call deadline, layered under whatever deadline the caller's
// context already carries. Zero (the default) adds none. Servers
// ignore it.
func WithCallTimeout(d time.Duration) Option {
	return func(o *options) { o.callTimeout = d }
}

// WithMetrics instruments the endpoint with m. Servers record per-op
// request counts and handler latency; clients record per-op call
// counts, round-trip latency, transport errors, and timeouts. Both
// account framed bytes in each direction.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// WithStripes spreads a client's calls across n pipelined connections
// (request ids hashed across the stripes, each with its own read
// loop). Striping lifts per-connection throughput ceilings — kernel
// socket buffers, per-flow fair queuing, a blocked 1 MiB writev
// serializing smaller frames behind it — at the cost of n sockets per
// endpoint. n < 1 is treated as 1. Servers ignore it.
func WithStripes(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.stripes = n
	}
}

// WithNoDelay sets TCP_NODELAY on the endpoint's connections. Go's own
// default is on (Nagle off) — matching latency-sensitive RPC — so this
// option exists mainly as WithNoDelay(false) to re-enable Nagle's
// coalescing for bandwidth-bound bulk deployments.
func WithNoDelay(on bool) Option {
	return func(o *options) { o.noDelay = on }
}

// WithSocketBuffers sets the kernel read/write buffer sizes
// (SO_RCVBUF/SO_SNDBUF) in bytes on the endpoint's connections; 0
// keeps the kernel default. Larger buffers keep 1 MiB-frame pipelines
// from stalling on buffer-full round trips at high
// bandwidth-delay-product links.
func WithSocketBuffers(read, write int) Option {
	return func(o *options) { o.readBuf = read; o.writeBuf = write }
}

// WithDialer replaces the client's TCP dialer. The returned conn is
// used as-is (no socket tuning is applied); a non-*net.TCPConn makes
// writev degrade to sequential per-segment writes, which is still
// copy-free. Servers ignore it.
func WithDialer(fn DialFunc) Option {
	return func(o *options) { o.dialer = fn }
}

func applyOptions(opts []Option) options {
	o := options{stripes: 1, noDelay: true}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

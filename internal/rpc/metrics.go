package rpc

import (
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/obs"
	"ecstore/internal/wire"
)

// opNames maps each request message type to its metric label.
var opNames = map[wire.MsgType]string{
	wire.TRead:          "read",
	wire.TSwap:          "swap",
	wire.TAdd:           "add",
	wire.TBatchAdd:      "batch_add",
	wire.TBatchAddMulti: "batch_add_multi",
	wire.TCheckTID:      "checktid",
	wire.TTryLock:       "trylock",
	wire.TSetLock:       "setlock",
	wire.TGetState:      "getstate",
	wire.TGetRecent:     "getrecent",
	wire.TReconstruct:   "reconstruct",
	wire.TFinalize:      "finalize",
	wire.TGCOld:         "gc_old",
	wire.TGCRecent:      "gc_recent",
	wire.TProbe:         "probe",
	wire.TPartialSum:    "partial_sum",
}

// OpMetrics instruments one protocol operation.
type OpMetrics struct {
	// Calls counts requests (server: received; client: issued).
	Calls *obs.Counter
	// Errors counts failed calls: server-side handler errors, transport
	// failures, and TError replies.
	Errors *obs.Counter
	// Latency is the per-call wall time (server: dispatch to reply
	// written; client: request sent to reply decoded).
	Latency *obs.Histogram
}

// Metrics instruments one rpc endpoint (a Server or one or more
// Clients). Build it with NewMetrics and install it with WithMetrics;
// a nil *Metrics — the default — is a total no-op.
type Metrics struct {
	// BytesIn / BytesOut count framed bytes received / sent, including
	// the 17-byte frame header.
	BytesIn, BytesOut *obs.Counter
	// BadFrames counts malformed or oversized frames (MaxFrame).
	BadFrames *obs.Counter
	// Timeouts counts client calls abandoned by context cancellation.
	Timeouts *obs.Counter
	// Dials counts TCP dial attempts actually made by clients;
	// DialErrors the failed ones; DialsSuppressed the calls that failed
	// fast inside a post-failure dial cooldown window without touching
	// the network.
	Dials, DialErrors, DialsSuppressed *obs.Counter
	// ExpiredSheds counts requests a server shed because their
	// propagated deadline budget was already spent at dispatch;
	// DrainRefusals counts requests refused with ErrDraining while the
	// server was shutting down gracefully.
	ExpiredSheds, DrainRefusals *obs.Counter

	ops map[wire.MsgType]*OpMetrics
}

// NewMetrics registers an rpc metric set under the given prefix
// (e.g. "rpc" yields "rpc.swap.calls", "rpc.bytes_in"). A nil registry
// yields a no-op metric set, which callers may still install.
func NewMetrics(reg *obs.Registry, prefix string) *Metrics {
	m := &Metrics{
		BytesIn:         reg.Counter(prefix + ".bytes_in"),
		BytesOut:        reg.Counter(prefix + ".bytes_out"),
		BadFrames:       reg.Counter(prefix + ".bad_frames"),
		Timeouts:        reg.Counter(prefix + ".timeouts"),
		Dials:           reg.Counter(prefix + ".dials"),
		DialErrors:      reg.Counter(prefix + ".dial_errors"),
		DialsSuppressed: reg.Counter(prefix + ".dials_suppressed"),
		ExpiredSheds:    reg.Counter(prefix + ".expired_sheds"),
		DrainRefusals:   reg.Counter(prefix + ".drain_refusals"),
		ops:             make(map[wire.MsgType]*OpMetrics, len(opNames)),
	}
	for mt, name := range opNames {
		m.ops[mt] = &OpMetrics{
			Calls:   reg.Counter(prefix + "." + name + ".calls"),
			Errors:  reg.Counter(prefix + "." + name + ".errors"),
			Latency: reg.Histogram(prefix + "." + name + ".latency"),
		}
	}
	// Every instrumented endpoint also exports the shared buffer-pool
	// gauges; Instrument is idempotent per registry and nil-safe.
	bufpool.Instrument(reg)
	return m
}

// Op returns the metrics for a request type, or nil for unknown types
// or a nil metric set.
func (m *Metrics) Op(mt wire.MsgType) *OpMetrics {
	if m == nil {
		return nil
	}
	return m.ops[mt]
}

func (o *OpMetrics) noteError() {
	if o != nil {
		o.Errors.Inc()
	}
}

func (m *Metrics) noteIn(n int) {
	if m != nil {
		m.BytesIn.Add(uint64(n))
	}
}

func (m *Metrics) noteOut(n int) {
	if m != nil {
		m.BytesOut.Add(uint64(n))
	}
}

func (m *Metrics) noteBadFrame() {
	if m != nil {
		m.BadFrames.Inc()
	}
}

func (m *Metrics) noteTimeout() {
	if m != nil {
		m.Timeouts.Inc()
	}
}

func (m *Metrics) noteDial() {
	if m != nil {
		m.Dials.Inc()
	}
}

func (m *Metrics) noteDialError() {
	if m != nil {
		m.DialErrors.Inc()
	}
}

func (m *Metrics) noteDialSuppressed() {
	if m != nil {
		m.DialsSuppressed.Inc()
	}
}

func (m *Metrics) noteExpired() {
	if m != nil {
		m.ExpiredSheds.Inc()
	}
}

func (m *Metrics) noteDrainRefusal() {
	if m != nil {
		m.DrainRefusals.Inc()
	}
}

// DefaultDialCooldown is the post-failure dial backoff applied to
// clients that don't override it with WithDialCooldown.
const DefaultDialCooldown = 100 * time.Millisecond

// Option configures a Server or Client.
type Option func(*options)

type options struct {
	metrics         *Metrics
	dialCooldown    time.Duration
	dialCooldownSet bool
	callTimeout     time.Duration
}

// WithDialCooldown sets the client's post-failure dial backoff: after
// a failed dial, calls within d fail fast (wrapping proto.ErrNodeDown)
// without another dial attempt. Zero disables the cooldown. Servers
// ignore it.
func WithDialCooldown(d time.Duration) Option {
	return func(o *options) { o.dialCooldown = d; o.dialCooldownSet = true }
}

// WithCallTimeout bounds every call issued by the client with a
// per-call deadline, layered under whatever deadline the caller's
// context already carries. Zero (the default) adds none. Servers
// ignore it.
func WithCallTimeout(d time.Duration) Option {
	return func(o *options) { o.callTimeout = d }
}

// WithMetrics instruments the endpoint with m. Servers record per-op
// request counts and handler latency; clients record per-op call
// counts, round-trip latency, transport errors, and timeouts. Both
// account framed bytes in each direction.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m }
}

func applyOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

package rpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"

	"ecstore/internal/bufpool"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
)

// TestStripedVectoredNoRecycleWhileWritevInFlight is the ownership
// hazard test the zero-copy path introduces: payload buffers are
// handed to the kernel by reference (writev), so recycling or reusing
// one while a write still references it would put poison or another
// call's data on the wire. Concurrent callers hammer a striped client
// with block payloads above vectoredMinPayload — every request and
// every block-carrying reply rides writev — with bufpool poison mode
// on. If any buffer were recycled while a writev referenced it, the
// server would observe poisoned values (read-back mismatch), a reply
// received earlier would mutate, or the debug pool would panic on a
// double Put.
func TestStripedVectoredNoRecycleWhileWritevInFlight(t *testing.T) {
	bufpool.SetDebug(true)
	t.Cleanup(func() { bufpool.SetDebug(false) })

	const vecBlock = 16 << 10 // 4x vectoredMinPayload
	node := storage.MustNew(storage.Options{ID: "vrace0", BlockSize: vecBlock})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	t.Cleanup(func() { _ = srv.Close() })
	cl := Dial(srv.Addr().String(), WithStripes(4))
	t.Cleanup(func() { _ = cl.Close() })

	vblk := func(fill byte) []byte {
		b := make([]byte, vecBlock)
		for i := range b {
			b[i] = fill
		}
		return b
	}

	ctx := context.Background()
	const (
		workers = 8
		iters   = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var prevReply []byte
			var prevFill byte
			for it := 0; it < iters; it++ {
				fill := byte(w*31 + it + 1)
				stripe := uint64(w)
				nt := proto.TID{Seq: uint64(it + 1), Block: 0, Client: proto.ClientID(w + 1)}

				val := vblk(fill)
				if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: stripe, Slot: 0, Value: val, NTID: nt}); err != nil {
					errCh <- fmt.Errorf("worker %d iter %d: swap: %w", w, it, err)
					return
				}
				// The writev borrowed val; after the call returns,
				// ownership is back with us and the bytes are untouched.
				for i, b := range val {
					if b != fill {
						errCh <- fmt.Errorf("worker %d iter %d: request buffer mutated at %d: %#x", w, it, i, b)
						return
					}
				}

				// A premultiplied add: its 16 KiB delta also rides writev
				// and is recycled server-side after the reply.
				if rep, err := cl.Add(ctx, &proto.AddReq{Stripe: stripe, Slot: 3, Delta: vblk(fill), Premultiplied: true, NTID: nt}); err != nil || rep.Status != proto.StatusOK {
					errCh <- fmt.Errorf("worker %d iter %d: add: %v %+v", w, it, err, rep)
					return
				}

				rrep, err := cl.Read(ctx, &proto.ReadReq{Stripe: stripe, Slot: 0})
				if err != nil || !rrep.OK {
					errCh <- fmt.Errorf("worker %d iter %d: read: %v %+v", w, it, err, rrep)
					return
				}
				for i, b := range rrep.Block {
					if b != fill {
						errCh <- fmt.Errorf("worker %d iter %d: read back %#x at %d, want %#x (poisoned payload hit the wire)", w, it, b, i, fill)
						return
					}
				}

				// The server's reply blocks crossed its writev by
				// reference too; an earlier reply must survive all later
				// traffic on the shared stripes.
				for i, b := range prevReply {
					if b != prevFill {
						errCh <- fmt.Errorf("worker %d iter %d: earlier reply corrupted at %d: %#x, want %#x", w, it, i, b, prevFill)
						return
					}
				}
				prevReply, prevFill = rrep.Block, fill
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

package rpc

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/wire"
)

const blockSize = 32

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	node := storage.MustNew(storage.Options{ID: "tcp0", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	t.Cleanup(func() { _ = srv.Close() })
	cl := Dial(srv.Addr().String())
	t.Cleanup(func() { _ = cl.Close() })
	return srv, cl
}

func blk(fill byte) []byte {
	b := make([]byte, blockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestSwapAndReadOverTCP(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	nt := proto.TID{Seq: 1, Block: 0, Client: 1}
	srep, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 3, Slot: 0, Value: blk(0xAB), NTID: nt})
	if err != nil {
		t.Fatal(err)
	}
	if !srep.OK || !bytes.Equal(srep.Block, make([]byte, blockSize)) {
		t.Fatalf("swap reply: %+v", srep)
	}
	rrep, err := cl.Read(ctx, &proto.ReadReq{Stripe: 3, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.OK || !bytes.Equal(rrep.Block, blk(0xAB)) {
		t.Fatal("read over TCP returned wrong block")
	}
}

func TestAllOperationsOverTCP(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	nt := proto.TID{Seq: 1, Block: 0, Client: 1}

	if rep, err := cl.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: blk(1), Premultiplied: true, NTID: nt}); err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("add: %v %+v", err, rep)
	}
	if rep, err := cl.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 2, NTID: nt, OTID: proto.TID{Seq: 9, Block: 0, Client: 2}}); err != nil || rep.Status != proto.StatusGC {
		t.Fatalf("checktid: %v %+v", err, rep)
	}
	if rep, err := cl.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 2, Mode: proto.L1, Caller: 5}); err != nil || !rep.OK {
		t.Fatalf("trylock: %v %+v", err, rep)
	}
	if _, err := cl.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 2, Mode: proto.L0, Caller: 5}); err != nil {
		t.Fatalf("setlock: %v", err)
	}
	st, err := cl.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 2})
	if err != nil || st.OpMode != proto.Norm || st.LockMode != proto.L0 {
		t.Fatalf("getstate: %v %+v", err, st)
	}
	if rep, err := cl.GetRecent(ctx, &proto.GetRecentReq{Stripe: 1, Slot: 2, Mode: proto.L1, Caller: 5}); err != nil || len(rep.RecentList) != 1 {
		t.Fatalf("getrecent: %v %+v", err, rep)
	}
	if rep, err := cl.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 1, Slot: 2, CSet: []int32{0, 1}, Block: blk(7)}); err != nil || rep.Epoch != 0 {
		t.Fatalf("reconstruct: %v %+v", err, rep)
	}
	if _, err := cl.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 2, Epoch: 4}); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if rep, err := cl.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 2, TIDs: []proto.TID{nt}}); err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("gcold: %v %+v", err, rep)
	}
	if rep, err := cl.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 2, TIDs: []proto.TID{nt}}); err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("gcrecent: %v %+v", err, rep)
	}
	if rep, err := cl.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 2}); err != nil || rep.Epoch != 4 {
		t.Fatalf("probe: %v %+v", err, rep)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	_, cl := startServer(t)
	// A swap with the wrong block size is a server-side error.
	_, err := cl.Swap(context.Background(), &proto.SwapReq{Stripe: 1, Slot: 0, Value: []byte{1}, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}})
	if err == nil {
		t.Fatal("server error did not propagate")
	}
	if !IsServerError(err) {
		t.Fatalf("err = %v, want server error", err)
	}
}

func TestCrashedNodePropagatesAsServerError(t *testing.T) {
	node := storage.MustNew(storage.Options{ID: "c", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	defer srv.Close()
	cl := Dial(srv.Addr().String())
	defer cl.Close()
	node.Crash()
	_, err = cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0})
	if err == nil {
		t.Fatal("crashed node read succeeded")
	}
}

func TestConcurrentPipelinedCalls(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	const calls = 64
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nt := proto.TID{Seq: uint64(i + 1), Block: 0, Client: 1}
			_, err := cl.Add(ctx, &proto.AddReq{Stripe: uint64(i % 4), Slot: 3, Delta: blk(byte(i)), Premultiplied: true, NTID: nt})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestServerCloseFailsCalls(t *testing.T) {
	srv, cl := startServer(t)
	ctx := context.Background()
	if _, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	// In-flight/subsequent calls must fail as node-down, not hang.
	deadline, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	_, err := cl.Read(deadline, &proto.ReadReq{Stripe: 1, Slot: 0})
	if err == nil {
		t.Fatal("read after server close succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	cl := Dial("127.0.0.1:1") // nothing listens here
	defer cl.Close()
	_, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0})
	if !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestClientCloseFailsCalls(t *testing.T) {
	_, cl := startServer(t)
	_ = cl.Close()
	_, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0})
	if !errors.Is(err, proto.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestReconnectAfterServerRestart(t *testing.T) {
	node := storage.MustNew(storage.Options{ID: "r", BlockSize: blockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := Serve(ln, node)
	cl := Dial(addr)
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	// Wait for the client to notice.
	for i := 0; i < 50; i++ {
		if _, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Restart on the same address; the client must redial lazily.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := Serve(ln2, node)
	defer srv2.Close()
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); lastErr == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("client did not reconnect: %v", lastErr)
}

func TestDialCooldownLimitsDialAttempts(t *testing.T) {
	// Grab an address nothing listens on by closing a fresh listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	m := NewMetrics(obs.NewRegistry(), "rpc")
	cl := Dial(addr, WithMetrics(m), WithDialCooldown(time.Minute))
	defer cl.Close()
	ctx := context.Background()
	const calls = 25
	for i := 0; i < calls; i++ {
		_, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
		if !errors.Is(err, proto.ErrNodeDown) {
			t.Fatalf("call %d: err = %v, want ErrNodeDown", i, err)
		}
	}
	if got := m.Dials.Value(); got != 1 {
		t.Fatalf("dials = %d, want exactly 1 inside the cooldown window", got)
	}
	if got := m.DialErrors.Value(); got != 1 {
		t.Fatalf("dial errors = %d, want 1", got)
	}
	if got := m.DialsSuppressed.Value(); got != calls-1 {
		t.Fatalf("suppressed = %d, want %d", got, calls-1)
	}
}

func TestDialCooldownExpires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	m := NewMetrics(obs.NewRegistry(), "rpc")
	cl := Dial(addr, WithMetrics(m), WithDialCooldown(10*time.Millisecond))
	defer cl.Close()
	ctx := context.Background()
	cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	time.Sleep(20 * time.Millisecond)
	cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if got := m.Dials.Value(); got != 2 {
		t.Fatalf("dials = %d, want 2 (cooldown expired between calls)", got)
	}
}

func TestPerCallTimeout(t *testing.T) {
	// A listener that accepts connections but never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	m := NewMetrics(obs.NewRegistry(), "rpc")
	cl := Dial(ln.Addr().String(), WithMetrics(m), WithCallTimeout(50*time.Millisecond))
	defer cl.Close()
	start := time.Now()
	_, err = cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0})
	if err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("per-call timeout did not bound the call (%v)", el)
	}
	if got := m.Timeouts.Value(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
}

func TestConnectedAndTryConnect(t *testing.T) {
	srv, cl := startServer(t)
	if cl.Connected() {
		t.Fatal("Connected() true before any call (dialing is lazy)")
	}
	ctx := context.Background()
	if err := cl.TryConnect(ctx); err != nil {
		t.Fatalf("TryConnect against a live server: %v", err)
	}
	if !cl.Connected() {
		t.Fatal("Connected() false after TryConnect")
	}
	_ = srv.Close()
	// After the server goes away the probe must eventually fail.
	var probeErr error
	for i := 0; i < 100; i++ {
		if probeErr = cl.TryConnect(ctx); probeErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if probeErr == nil {
		t.Fatal("TryConnect kept succeeding against a closed server")
	}
}

func TestServerRejectsBadFrameLength(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header claiming 64 MiB (over MaxFrame): the server must
	// drop the connection rather than allocate.
	hdr := []byte{0x04, 0x00, 0x00, 0x00}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection open after a bad frame")
	}
}

func TestServerRejectsTinyFrame(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Length 4 < minimum 13 (type + id + deadline).
	if _, err := conn.Write([]byte{0, 0, 0, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection open after a tiny frame")
	}
}

func TestServerAnswersGarbagePayloadWithError(t *testing.T) {
	// A well-framed request whose payload does not decode must come
	// back as a TError reply, not kill the connection.
	_, cl := startServer(t)
	// Craft an invalid call through the public API instead: a swap with
	// a nil value errors server-side but the connection survives.
	ctx := context.Background()
	if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}}); err == nil {
		t.Fatal("invalid swap succeeded")
	}
	// The same client must still work afterwards.
	if _, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatalf("connection unusable after server error: %v", err)
	}
}

func TestBatchAddOverTCP(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	rep, err := cl.BatchAdd(ctx, &proto.BatchAddReq{
		Stripe: 1, Slot: 3, Delta: blk(2),
		Entries: []proto.BatchEntry{
			{DataSlot: 0, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}},
			{DataSlot: 1, NTID: proto.TID{Seq: 2, Block: 1, Client: 1}},
		},
	})
	if err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("batch add over TCP: %v %+v", err, rep)
	}
	st, err := cl.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 3})
	if err != nil || len(st.RecentList) != 2 {
		t.Fatalf("state after TCP batch: %v %+v", err, st)
	}
}

func TestBatchAddMultiOverTCP(t *testing.T) {
	_, cl := startServer(t)
	ctx := context.Background()
	// Two stripes' redundant-node deltas combined into one frame: this is
	// the wire form bulk-write coalescing produces.
	rep, err := cl.BatchAddMulti(ctx, &proto.BatchAddMultiReq{Adds: []*proto.BatchAddReq{
		{Stripe: 1, Slot: 3, Delta: blk(2),
			Entries: []proto.BatchEntry{{DataSlot: 0, NTID: proto.TID{Seq: 1, Block: 0, Client: 1}}}},
		{Stripe: 2, Slot: 3, Delta: blk(5),
			Entries: []proto.BatchEntry{{DataSlot: 1, NTID: proto.TID{Seq: 1, Block: 1, Client: 1}}}},
	}})
	if err != nil || len(rep.Replies) != 2 {
		t.Fatalf("batch add multi over TCP: %v %+v", err, rep)
	}
	for i, sub := range rep.Replies {
		if sub.Status != proto.StatusOK {
			t.Fatalf("sub-reply %d: %+v", i, sub)
		}
	}
	for _, stripe := range []uint64{1, 2} {
		st, err := cl.GetState(ctx, &proto.GetStateReq{Stripe: stripe, Slot: 3})
		if err != nil || len(st.RecentList) != 1 {
			t.Fatalf("stripe %d state after multi batch: %v %+v", stripe, err, st)
		}
	}
}

// gateNode wraps a storage node so tests can hold a Read open and
// observe the handler's context.
type gateNode struct {
	proto.StorageNode
	entered  chan struct{}
	release  chan struct{}
	deadline chan bool // whether the handler ctx carried a deadline
}

func (n *gateNode) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	if n.deadline != nil {
		_, has := ctx.Deadline()
		select {
		case n.deadline <- has:
		default:
		}
	}
	if n.entered != nil {
		select {
		case n.entered <- struct{}{}:
		default:
		}
	}
	if n.release != nil {
		<-n.release
	}
	return n.StorageNode.Read(ctx, req)
}

func TestDeadlineReachesHandlerContext(t *testing.T) {
	inner := storage.MustNew(storage.Options{ID: "dl", BlockSize: blockSize})
	node := &gateNode{StorageNode: inner, deadline: make(chan bool, 1)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	defer srv.Close()
	cl := Dial(srv.Addr().String(), WithCallTimeout(5*time.Second))
	defer cl.Close()
	if _, err := cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if has := <-node.deadline; !has {
		t.Fatal("handler context carried no deadline despite a per-call timeout")
	}
	// Without any client-side deadline the budget field is 0 and the
	// handler context is unbounded.
	cl2 := Dial(srv.Addr().String())
	defer cl2.Close()
	if _, err := cl2.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0}); err != nil {
		t.Fatal(err)
	}
	if has := <-node.deadline; has {
		t.Fatal("handler context carried a deadline for a budget-less call")
	}
}

func TestServerShedsExpiredDeadline(t *testing.T) {
	// A 2 MiB block makes the decode copy alone last far longer than
	// the 1µs budget this frame carries, so the post-decode deadline
	// check reliably fires and the server sheds instead of dispatching.
	const bigBlock = 2 << 20
	node := storage.MustNew(storage.Options{ID: "shed", BlockSize: bigBlock})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry(), "srv")
	srv := Serve(ln, node, WithMetrics(m))
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &proto.SwapReq{Stripe: 1, Slot: 0, Value: make([]byte, bigBlock),
		NTID: proto.TID{Seq: 1, Block: 0, Client: 1}}
	mt, payload, err := wire.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, mt, 7, 1 /* µs */, payload); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	rmt, rid, _, rpayload, frame, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	defer bufpool.Put(frame)
	if rmt != wire.TError || rid != 7 {
		t.Fatalf("reply = type %d id %d, want TError id 7", rmt, rid)
	}
	if rerr := wire.DecodeError(rpayload); !errors.Is(rerr, proto.ErrDeadlineExceeded) {
		t.Fatalf("shed reply = %v, want ErrDeadlineExceeded", rerr)
	}
	// The counter is bumped before the reply is written, so it is
	// already visible here.
	if m.ExpiredSheds.Value() != 1 {
		t.Fatalf("expired sheds = %d, want 1", m.ExpiredSheds.Value())
	}
}

func TestDrainRefusesNewWorkWaitsForInflight(t *testing.T) {
	inner := storage.MustNew(storage.Options{ID: "drain", BlockSize: blockSize})
	node := &gateNode{StorageNode: inner, entered: make(chan struct{}, 1), release: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry(), "srv")
	srv := Serve(ln, node, WithMetrics(m))
	defer srv.Close()
	cl := Dial(srv.Addr().String())
	defer cl.Close()
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, err := cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
		firstDone <- err
	}()
	<-node.entered // the handler is now in flight

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(ctx) }()
	if !srv.Draining() {
		// Drain sets the flag before waiting; give it a moment.
		time.Sleep(10 * time.Millisecond)
	}
	// New work is refused with the typed sentinel while draining.
	_, err = cl.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
	if !errors.Is(err, proto.ErrDraining) {
		t.Fatalf("read during drain: err = %v, want ErrDraining", err)
	}
	if IsServerError(err) {
		t.Fatal("typed draining error must not look like a generic server error")
	}
	// Drain must not return while the first call is still in flight.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before in-flight call finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(node.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("in-flight call failed during drain: %v", err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after in-flight calls finished")
	}
	if m.DrainRefusals.Value() == 0 {
		t.Fatal("drain refusals not counted")
	}
}

func TestDrainRespectsContext(t *testing.T) {
	inner := storage.MustNew(storage.Options{ID: "drainctx", BlockSize: blockSize})
	node := &gateNode{StorageNode: inner, entered: make(chan struct{}, 1), release: make(chan struct{})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, node)
	cl := Dial(srv.Addr().String())
	go func() { _, _ = cl.Read(context.Background(), &proto.ReadReq{Stripe: 1, Slot: 0}) }()
	<-node.entered
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck handler = %v, want DeadlineExceeded", err)
	}
	close(node.release)
	_ = cl.Close()
	_ = srv.Close()
}

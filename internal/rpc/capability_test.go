package rpc

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net"
	"sort"
	"strings"
	"testing"

	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/storage"
	"ecstore/internal/transport"
)

// rpcProtoMethods parses the proto package's source and returns every
// method declared on any interface there — the same ground truth the
// transport capability gate uses, applied here to the wire: every
// capability must survive a real encode/decode round trip through the
// vectored, striped client, so a new proto RPC without codec + client
// + dispatch support fails this test by name.
func rpcProtoMethods(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "../proto", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse proto package: %v", err)
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				it, ok := n.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, field := range it.Methods.List {
					if _, isFunc := field.Type.(*ast.FuncType); !isFunc {
						continue // embedded interface, counted at its own decl
					}
					for _, name := range field.Names {
						seen[name.Name] = true
					}
				}
				return true
			})
		}
	}
	var names []string
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("found no interface methods in the proto package")
	}
	return names
}

// capBlockSize is sized above vectoredMinPayload so every
// block-carrying request rides the writev path during the sweep.
const capBlockSize = 8 << 10

func capBlk(fill byte) []byte {
	b := make([]byte, capBlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func rpcCapTID(seq uint64) proto.TID { return proto.TID{Seq: seq, Block: 0, Client: 9} }

// rpcCapInvoker drives one proto capability through the TCP client.
type rpcCapInvoker struct {
	call func(ctx context.Context, n proto.StorageNode) error
	// vectored marks capabilities whose request carries a block-sized
	// payload: the call must go out on the client's vectored path.
	vectored bool
}

// rpcCapabilityInvokers is the exhaustive invoker table; every method
// name from rpcProtoMethods must have an entry. Transport-layer
// capabilities (MulticastAdd, AggregateSum) are driven through the
// transport combinators with the rpc client as the underlying node, so
// their frames cross the same wire.
func rpcCapabilityInvokers() map[string]rpcCapInvoker {
	return map[string]rpcCapInvoker{
		"Read": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Read(ctx, &proto.ReadReq{Stripe: 1, Slot: 0})
			return err
		}},
		"Swap": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: capBlk(0x21), NTID: rpcCapTID(201)})
			return err
		}},
		"Add": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Add(ctx, &proto.AddReq{Stripe: 1, Slot: 2, Delta: capBlk(0x22), Premultiplied: true, NTID: rpcCapTID(202)})
			return err
		}},
		"BatchAdd": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.BatchAdd(ctx, &proto.BatchAddReq{
				Stripe: 1, Slot: 2, Delta: capBlk(0x23),
				Entries: []proto.BatchEntry{{DataSlot: 0, NTID: rpcCapTID(203)}},
			})
			return err
		}},
		"BatchAddMulti": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := proto.BatchAddMulti(ctx, n, &proto.BatchAddMultiReq{
				Adds: []*proto.BatchAddReq{{
					Stripe: 1, Slot: 3, Delta: capBlk(0x24),
					Entries: []proto.BatchEntry{{DataSlot: 0, NTID: rpcCapTID(204)}},
				}, {
					Stripe: 1, Slot: 2, Delta: capBlk(0x25),
					Entries: []proto.BatchEntry{{DataSlot: 1, NTID: rpcCapTID(205)}},
				}},
			})
			return err
		}},
		"CheckTID": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.CheckTID(ctx, &proto.CheckTIDReq{Stripe: 1, Slot: 0, NTID: rpcCapTID(210)})
			return err
		}},
		"TryLock": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.TryLock(ctx, &proto.TryLockReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 9})
			return err
		}},
		"SetLock": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.SetLock(ctx, &proto.SetLockReq{Stripe: 1, Slot: 0, Mode: proto.Unlocked, Caller: 9})
			return err
		}},
		"GetState": {call: func(ctx context.Context, n proto.StorageNode) error {
			// NoBlock=false: the reply hauls the 8 KiB block back, which
			// must ride the server's vectored path.
			_, err := n.GetState(ctx, &proto.GetStateReq{Stripe: 1, Slot: 0})
			return err
		}},
		"GetRecent": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.GetRecent(ctx, &proto.GetRecentReq{Stripe: 1, Slot: 0, Mode: proto.L1, Caller: 9})
			return err
		}},
		"Reconstruct": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 1, Slot: 0, CSet: []int32{0, 1}, Block: capBlk(0x26)})
			return err
		}},
		"Finalize": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Finalize(ctx, &proto.FinalizeReq{Stripe: 1, Slot: 0, Epoch: 1})
			return err
		}},
		"GCOld": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.GCOld(ctx, &proto.GCOldReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{rpcCapTID(201)}})
			return err
		}},
		"GCRecent": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.GCRecent(ctx, &proto.GCRecentReq{Stripe: 1, Slot: 0, TIDs: []proto.TID{rpcCapTID(201)}})
			return err
		}},
		"Probe": {call: func(ctx context.Context, n proto.StorageNode) error {
			_, err := n.Probe(ctx, &proto.ProbeReq{Stripe: 1, Slot: 0})
			return err
		}},
		"PartialSum": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			// A block-sized accumulator makes the request itself vector.
			_, err := proto.PartialSum(ctx, n, &proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 3, Acc: capBlk(0x27)})
			return err
		}},
		"MulticastAdd": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			res := transport.Parallel{}.MulticastAdd(ctx, []proto.AddCall{{Node: n, Req: &proto.AddReq{
				Stripe: 1, Slot: 3, Delta: capBlk(0x28), Premultiplied: true, NTID: rpcCapTID(206),
			}}})
			return res[0].Err
		}},
		"AggregateSum": {vectored: true, call: func(ctx context.Context, n proto.StorageNode) error {
			// Two chained calls: the second hop ships the first hop's
			// 8 KiB accumulator, so the chain vectors on the wire.
			_, err := transport.Chain{}.AggregateSum(ctx, []proto.PartialCall{
				{Node: n, Req: &proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 5}},
				{Node: n, Req: &proto.PartialSumReq{Stripe: 1, Slot: 0, Coef: 7}},
			})
			return err
		}},
	}
}

// TestEveryProtoCapabilityOverVectoredClient is the wire-level
// counterpart of transport's capability gate: every proto interface
// method must round-trip through a striped TCP client against a real
// server, and every block-carrying request must take the vectored
// (writev) client path — so a future RPC added to proto without codec,
// client-stub, dispatch, or vectored-payload support fails here by
// name instead of silently copying or falling over at runtime.
func TestEveryProtoCapabilityOverVectoredClient(t *testing.T) {
	required := rpcProtoMethods(t)
	invokers := rpcCapabilityInvokers()
	for _, name := range required {
		if _, ok := invokers[name]; !ok {
			t.Errorf("proto capability %s has no rpc invoker: add a table entry (codec, client stub, and server dispatch)", name)
		}
	}
	for name := range invokers {
		found := false
		for _, r := range required {
			if r == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("invoker %s matches no proto interface method (renamed or removed?)", name)
		}
	}
	if t.Failed() {
		return
	}

	node := storage.MustNew(storage.Options{ID: "cap0", BlockSize: capBlockSize})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sm := NewMetrics(obs.NewRegistry(), "srv")
	srv := Serve(ln, node, WithMetrics(sm))
	defer srv.Close()
	cm := NewMetrics(obs.NewRegistry(), "cli")
	cl := Dial(srv.Addr().String(), WithStripes(4), WithMetrics(cm))
	defer cl.Close()

	ctx := context.Background()
	// Seed so state-dependent capabilities (PartialSum needs a non-INIT
	// slot) have something to fold.
	if _, err := cl.Swap(ctx, &proto.SwapReq{Stripe: 1, Slot: 0, Value: capBlk(0x11), NTID: rpcCapTID(200)}); err != nil {
		t.Fatalf("seed swap: %v", err)
	}

	for _, name := range required {
		inv := invokers[name]
		before := cm.VecWrites.Value()
		if err := inv.call(ctx, cl); err != nil {
			t.Errorf("%s over the striped TCP client failed: %v", name, err)
			continue
		}
		if after := cm.VecWrites.Value(); inv.vectored && after <= before {
			t.Errorf("%s carries a block payload but did not take the vectored client path", name)
		}
	}
	// The sweep pulled blocks back (Read, GetState, PartialSum replies):
	// the server's reply path must have vectored too.
	if sm.VecWrites.Value() == 0 {
		t.Error("no server reply took the vectored path during the capability sweep")
	}
	if cl.PendingCalls() != 0 {
		t.Errorf("capability sweep left %d pending calls", cl.PendingCalls())
	}
}

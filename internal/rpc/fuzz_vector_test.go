package rpc

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"ecstore/internal/bufpool"
	"ecstore/internal/proto"
	"ecstore/internal/wire"
)

// vectoredFuzzMsg builds one payload-bearing message of the given kind
// around the fuzz-chosen payload, covering every shape the vectored
// encoder splices: single payload early, single payload late, payload
// between variable-length meta fields, and multi-payload frames.
func vectoredFuzzMsg(kind byte, payload []byte) any {
	tid := proto.TID{Seq: 3, Block: 2, Client: 1}
	half := payload[:len(payload)/2]
	switch kind % 8 {
	case 0:
		return &proto.SwapReq{Stripe: 1, Slot: 2, Value: payload, NTID: tid}
	case 1:
		return &proto.AddReq{Stripe: 7, Slot: 0, Delta: payload, DataSlot: 1, Premultiplied: true, NTID: tid, OTID: tid, Epoch: 9}
	case 2:
		return &proto.ReadReply{OK: true, Block: payload, LockMode: proto.L1}
	case 3:
		return &proto.GetStateReply{OpMode: proto.Recons, LockMode: proto.L0, Epoch: 4,
			ReconsSet: []int32{0, 2}, OldList: []proto.TIDTime{{TID: tid}},
			Block: payload, BlockValid: len(payload) > 0}
	case 4:
		return &proto.PartialSumReq{Stripe: 2, Slot: 3, Coef: 0x1D, Acc: payload}
	case 5:
		return &proto.BatchAddMultiReq{Adds: []*proto.BatchAddReq{
			{Stripe: 1, Slot: 3, Delta: payload, Entries: []proto.BatchEntry{{DataSlot: 0, NTID: tid}}, Epoch: 1},
			{Stripe: 2, Slot: 3, Delta: nil, Epoch: 1},
			{Stripe: 3, Slot: 4, Delta: half, Epoch: 2},
		}}
	case 6:
		return &proto.SwapReply{OK: true, Block: payload, Epoch: 7, OTID: tid, LockMode: proto.L1}
	default:
		return &proto.ReconstructReq{Stripe: 5, Slot: 1, CSet: []int32{0, 1, 3}, Block: payload, InPlace: true}
	}
}

// lcgReader yields the frame in pseudo-random small chunks so the
// decoder sees arbitrary short-read boundaries, including mid-header
// and mid-length-prefix splits.
type lcgReader struct {
	data []byte
	seed uint64
}

func (r *lcgReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	r.seed = r.seed*6364136223846793005 + 1442695040888963407
	n := 1 + int((r.seed>>33)%29)
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// decodeOneFrame runs the server/client read path over r and returns
// the decoded header fields and message; the pooled frame is returned
// before this helper does.
func decodeOneFrame(t *testing.T, r io.Reader) (wire.MsgType, uint64, uint32, any) {
	t.Helper()
	mt, id, deadlineUS, payload, frame, err := readFrame(r)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if mt == wire.TError {
		bufpool.Put(frame)
		t.Fatalf("unexpected TError frame")
	}
	msg, derr := wire.Decode(mt, payload)
	bufpool.Put(frame)
	if derr != nil {
		t.Fatalf("decode %v: %v", mt, derr)
	}
	return mt, id, deadlineUS, msg
}

// FuzzVectoredFrameRoundTrip holds the zero-copy write path and the
// classic copying path byte-identical and decode-identical: a frame
// emitted as a vectored segment list, split-written to the decoder at
// segment boundaries and at arbitrary short-read boundaries, must
// decode exactly like the single-buffer writeFrame framing.
func FuzzVectoredFrameRoundTrip(f *testing.F) {
	f.Add(byte(0), uint32(0), byte(0xA5), uint64(1), uint32(0), uint64(1))
	f.Add(byte(1), uint32(1), byte(0x00), uint64(1<<40), uint32(123456), uint64(7))
	f.Add(byte(2), uint32(17), byte(0xFF), uint64(0), uint32(1), uint64(99))
	f.Add(byte(3), uint32(4096), byte(0x3C), uint64(12345), uint32(1<<30), uint64(3))
	f.Add(byte(4), uint32(31), byte(0x11), uint64(2), uint32(2), uint64(0xdead))
	f.Add(byte(5), uint32(65536), byte(0x77), uint64(1<<63), uint32(0), uint64(42))
	f.Add(byte(6), uint32(513), byte(0x08), uint64(3), uint32(777), uint64(5))
	f.Add(byte(7), uint32(1024), byte(0x42), uint64(4), uint32(88), uint64(6))
	f.Fuzz(func(t *testing.T, kind byte, plen uint32, fill byte, id uint64, deadlineUS uint32, splitSeed uint64) {
		plen %= 1 << 17
		payload := make([]byte, plen)
		for i := range payload {
			payload[i] = fill ^ byte(i*13)
		}
		msg := vectoredFuzzMsg(kind, payload)
		if wire.Size(msg) > MaxFrame {
			t.Skip("frame over MaxFrame")
		}

		// Reference: the contiguous copying framing.
		mt, body, err := wire.Encode(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		var contig bytes.Buffer
		if err := writeFrame(&contig, mt, id, deadlineUS, body); err != nil {
			t.Fatal(err)
		}

		// Vectored framing must concatenate to the same bytes.
		var fr wire.Frame
		meta := make([]byte, wire.MetaSize(msg))
		if err := wire.EncodeFrame(&fr, msg, id, deadlineUS, meta); err != nil {
			t.Fatalf("EncodeFrame %T: %v", msg, err)
		}
		joined := bytes.Join(fr.Segs, nil)
		if !bytes.Equal(joined, contig.Bytes()) {
			t.Fatalf("%T: vectored framing differs from contiguous framing", msg)
		}

		// Decode the single-buffer path as the reference message.
		wantMT, wantID, wantDL, wantMsg := decodeOneFrame(t, bytes.NewReader(contig.Bytes()))

		// Split-write exactly at every segment boundary (what a writev
		// delivers in the worst case of per-segment TCP pushes) ...
		parts := make([]io.Reader, 0, len(fr.Segs))
		for _, seg := range fr.Segs {
			parts = append(parts, bytes.NewReader(seg))
		}
		segMT, segID, segDL, segMsg := decodeOneFrame(t, io.MultiReader(parts...))
		// ... and at arbitrary short-read boundaries.
		lcgMT, lcgID, lcgDL, lcgMsg := decodeOneFrame(t, &lcgReader{data: joined, seed: splitSeed})

		for _, got := range []struct {
			mt  wire.MsgType
			id  uint64
			dl  uint32
			msg any
		}{{segMT, segID, segDL, segMsg}, {lcgMT, lcgID, lcgDL, lcgMsg}} {
			if got.mt != wantMT || got.id != wantID || got.dl != wantDL {
				t.Fatalf("header mismatch: got (%v,%d,%d), want (%v,%d,%d)",
					got.mt, got.id, got.dl, wantMT, wantID, wantDL)
			}
			if !reflect.DeepEqual(got.msg, wantMsg) {
				t.Fatalf("%T: split-written decode differs from single-buffer decode", msg)
			}
		}
	})
}

// TestVectoredFrameSplitAtEveryBoundary is the deterministic core of
// the fuzz target: one multi-payload frame, split-written at every
// single byte boundary, must decode identically each time.
func TestVectoredFrameSplitAtEveryBoundary(t *testing.T) {
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	msg := vectoredFuzzMsg(5, payload) // BatchAddMultiReq: three sub-deltas
	var fr wire.Frame
	meta := make([]byte, wire.MetaSize(msg))
	if err := wire.EncodeFrame(&fr, msg, 77, 42, meta); err != nil {
		t.Fatal(err)
	}
	joined := bytes.Join(fr.Segs, nil)
	_, _, _, want := decodeOneFrame(t, bytes.NewReader(joined))
	for cut := 1; cut < len(joined); cut++ {
		r := io.MultiReader(bytes.NewReader(joined[:cut]), bytes.NewReader(joined[cut:]))
		mt, id, dl, got := decodeOneFrame(t, r)
		if mt != fr.Type || id != 77 || dl != 42 {
			t.Fatalf("cut %d: header (%v,%d,%d)", cut, mt, id, dl)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: decode differs", cut)
		}
	}
}

// Package rpc carries the AJX storage protocol over TCP. It mirrors
// the paper's implementation choice of user-mode RPC on TCP: a Server
// exposes one storage node on a listener, and a Client implements
// proto.StorageNode by multiplexing concurrent calls over one or more
// pipelined connections (WithStripes) with out-of-order reply matching
// on request ids.
//
// Framing (see package wire): u32 frame length (type + id + deadline +
// payload), u8 message type, u64 request id, u32 deadline budget in
// microseconds (0 = none), payload. Replies carry the same request id
// and a zero deadline; a TError frame carries a server-side failure as
// a code byte plus text (wire.ErrCode), so typed sentinels like
// proto.ErrDraining survive the round trip.
//
// Write paths are zero-copy for block payloads: at or above
// vectoredMinPayload, both the client request path and the server
// reply path encode the header and fixed fields into a small
// per-connection meta scratch buffer and hand the payload to the
// kernel with a vectored write
// (net.Buffers → writev on TCP), so a 1 MiB block never lands in an
// intermediate frame buffer. Below the threshold, frames take the
// classic copy-into-pooled-buffer path, which batches better and costs
// less than iovec bookkeeping for small messages. The payload buffers
// are only borrowed for the duration of the write — the writev
// completes before the call's send phase returns, so caller ownership
// (per proto.StorageNode's contract) is preserved.
//
// Clients translate a context deadline into the frame's budget, and
// the server re-arms it as a context deadline around the handler —
// work whose caller has already given up is shed with
// proto.ErrDeadlineExceeded instead of computing a dead reply. A
// draining server (Server.Drain) refuses new frames with
// proto.ErrDraining while in-flight handlers finish.
package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/bufpool"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/wire"
)

// MaxFrame bounds a frame's length to keep a corrupt or hostile peer
// from forcing huge allocations (16 MiB covers any sane block size).
const MaxFrame = 16 << 20

// vectoredMinPayload is the referenced-payload size at or above which
// a frame is sent with a vectored write (writev) instead of being
// copied into a pooled frame buffer. Below it the copy wins: the frame
// coalesces with its neighbors in the connection's bufio buffer and
// goes out in one syscall, where a writev would pay per-segment iovec
// bookkeeping to save a sub-page memcpy.
const vectoredMinPayload = 4 << 10

// errServer wraps a remote error string delivered in a TError frame.
type errServer struct{ msg string }

func (e *errServer) Error() string { return "rpc: server error: " + e.msg }

// --- Server ----------------------------------------------------------------

// Server serves one storage node over a listener.
type Server struct {
	node     proto.StorageNode
	ln       net.Listener
	metrics  *Metrics
	noDelay  bool
	readBuf  int
	writeBuf int
	draining atomic.Bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	inflight int           // handler goroutines currently running
	idle     chan struct{} // closed when inflight drops to zero
	wg       sync.WaitGroup
}

// Serve starts serving node on ln. It returns immediately; accept and
// request handling run on background goroutines until Close.
func Serve(ln net.Listener, node proto.StorageNode, opts ...Option) *Server {
	o := applyOptions(opts)
	s := &Server{
		node: node, ln: ln, metrics: o.metrics,
		noDelay: o.noDelay, readBuf: o.readBuf, writeBuf: o.writeBuf,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Drain puts the server into graceful-shutdown mode: new requests are
// refused with a typed proto.ErrDraining reply (clients treat it as an
// instant site-retire, not a retry), while in-flight handlers run to
// completion. It returns once the last in-flight handler has finished
// or ctx expires; either way the server keeps refusing work until
// Close. Connections stay open so the refusals can be delivered.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for {
		s.mu.Lock()
		if s.inflight == 0 {
			s.mu.Unlock()
			return nil
		}
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle := s.idle
		s.mu.Unlock()
		select {
		case <-idle:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginHandler registers an in-flight handler for Drain accounting.
func (s *Server) beginHandler() {
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
}

func (s *Server) endHandler() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Close stops the listener and all connections, then waits for
// handler goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		tuneConn(conn, s.noDelay, s.readBuf, s.writeBuf)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// tuneConn applies socket tuning to a TCP connection: TCP_NODELAY
// (Go's own default is on; noDelay=false re-enables Nagle for
// bandwidth-bound deployments that prefer coalescing) and, when
// non-zero, explicit kernel read/write buffer sizes.
func tuneConn(conn net.Conn, noDelay bool, readBuf, writeBuf int) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	_ = tc.SetNoDelay(noDelay)
	if readBuf > 0 {
		_ = tc.SetReadBuffer(readBuf)
	}
	if writeBuf > 0 {
		_ = tc.SetWriteBuffer(writeBuf)
	}
}

// replyWriter serializes reply frames onto one server connection.
// Large reply payloads (read blocks, swap old-values — always owned
// copies, see storage's cloneBytes) go out with a vectored write; the
// Frame and meta scratch live here so the steady state is
// allocation-free.
type replyWriter struct {
	mu    sync.Mutex
	conn  net.Conn
	w     *bufio.Writer
	frame wire.Frame
	vec   net.Buffers
	meta  []byte // vectored meta scratch; only borrowed until WriteTo returns
}

// write sends one reply frame (flushing it) and returns its wire size.
// Errors travel as TError frames with a wire.ErrCode prefix so typed
// sentinels survive; vectored reports whether the payload was sent by
// reference.
func (rw *replyWriter) write(id uint64, reply any) (n int, vectored bool, err error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if e, ok := reply.(error); ok {
		return rw.writeError(id, e)
	}
	if pb := wire.PayloadBytes(reply); pb >= vectoredMinPayload {
		if need := wire.MetaSize(reply); cap(rw.meta) < need {
			rw.meta = make([]byte, need)
		}
		if eerr := wire.EncodeFrame(&rw.frame, reply, id, 0, rw.meta); eerr != nil {
			n, _, err = rw.writeError(id, eerr)
			return n, false, err
		}
		// Flush buffered small frames first so the segments land in
		// order, then hand the segment list to writev. The payload
		// segments alias the reply's buffers; nothing below may recycle
		// or mutate them until WriteTo returns.
		werr := rw.w.Flush()
		if werr == nil {
			rw.vec = net.Buffers(rw.frame.Segs)
			_, werr = rw.vec.WriteTo(rw.conn)
		}
		return rw.frame.Wire, true, werr
	}
	buf := bufpool.Get(wire.Size(reply) - frameHeaderSize)
	mt, payload, eerr := wire.EncodeAppend(reply, buf[:0])
	if eerr != nil {
		bufpool.Put(buf)
		n, _, err = rw.writeError(id, eerr)
		return n, false, err
	}
	werr := writeFrame(rw.w, mt, id, 0, payload)
	if werr == nil {
		werr = rw.w.Flush()
	}
	bufpool.Put(buf)
	return frameHeaderSize + len(payload), false, werr
}

func (rw *replyWriter) writeError(id uint64, e error) (int, bool, error) {
	msg := wire.AppendError(nil, e)
	werr := writeFrame(rw.w, wire.TError, id, 0, msg)
	if werr == nil {
		werr = rw.w.Flush()
	}
	return frameHeaderSize + len(msg), false, werr
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	rw := &replyWriter{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		mt, id, deadlineUS, payload, frame, err := readFrame(r)
		if err != nil {
			if errors.Is(err, errBadFrame) {
				s.metrics.noteBadFrame()
			}
			return
		}
		arrival := time.Now()
		s.metrics.noteIn(frameHeaderSize + len(payload))
		handlers.Add(1)
		s.beginHandler()
		go func() {
			defer handlers.Done()
			defer s.endHandler()
			op := s.metrics.Op(mt)
			var sp obs.Span
			if op != nil {
				op.Calls.Inc()
				sp = obs.StartSpan(op.Latency)
			}
			var reply any
			var msg any
			switch {
			case s.draining.Load():
				// Refuse without decoding: the typed reply tells the
				// client to retire this site immediately.
				bufpool.Put(frame)
				s.metrics.noteDrainRefusal()
				reply = proto.ErrDraining
			default:
				ctx := context.Background()
				var cancel context.CancelFunc
				if deadlineUS > 0 {
					deadline := arrival.Add(time.Duration(deadlineUS) * time.Microsecond)
					ctx, cancel = context.WithDeadline(ctx, deadline)
				}
				// Decode copies every field it keeps, so the frame goes
				// back to the pool before the handler even runs.
				var derr error
				msg, derr = wire.Decode(mt, payload)
				bufpool.Put(frame)
				switch {
				case derr != nil:
					reply = derr
				case ctx.Err() != nil:
					// The caller's budget expired while this frame sat
					// in queues; shed it instead of computing a dead
					// reply.
					s.metrics.noteExpired()
					reply = fmt.Errorf("%w: budget %dµs spent before dispatch",
						proto.ErrDeadlineExceeded, deadlineUS)
				default:
					reply = s.dispatch(ctx, msg)
				}
				if cancel != nil {
					cancel()
				}
			}
			if op != nil {
				if _, failed := reply.(error); failed {
					op.noteError()
				}
			}
			n, vectored, werr := rw.write(id, reply)
			if werr != nil {
				_ = conn.Close()
				return
			}
			if vectored {
				s.metrics.noteVectored(wire.PayloadBytes(reply))
			}
			// The handler has returned and the reply is on the wire;
			// node handlers fold or copy request payloads during the
			// call (package storage), so the request's pooled block
			// buffer is dead here.
			if msg != nil {
				wire.Recycle(msg)
			}
			s.metrics.noteOut(n)
			sp.End()
		}()
	}
}

// dispatch invokes the node handler for a decoded request and returns
// the reply message (or an error to be sent as TError). ctx carries
// the request's propagated deadline, if any.
func (s *Server) dispatch(ctx context.Context, msg any) any {
	var (
		rep any
		e   error
	)
	switch req := msg.(type) {
	case *proto.ReadReq:
		rep, e = s.node.Read(ctx, req)
	case *proto.SwapReq:
		rep, e = s.node.Swap(ctx, req)
	case *proto.AddReq:
		rep, e = s.node.Add(ctx, req)
	case *proto.BatchAddReq:
		rep, e = s.node.BatchAdd(ctx, req)
	case *proto.BatchAddMultiReq:
		rep, e = proto.BatchAddMulti(ctx, s.node, req)
	case *proto.CheckTIDReq:
		rep, e = s.node.CheckTID(ctx, req)
	case *proto.TryLockReq:
		rep, e = s.node.TryLock(ctx, req)
	case *proto.SetLockReq:
		rep, e = s.node.SetLock(ctx, req)
	case *proto.GetStateReq:
		rep, e = s.node.GetState(ctx, req)
	case *proto.GetRecentReq:
		rep, e = s.node.GetRecent(ctx, req)
	case *proto.ReconstructReq:
		rep, e = s.node.Reconstruct(ctx, req)
	case *proto.FinalizeReq:
		rep, e = s.node.Finalize(ctx, req)
	case *proto.GCOldReq:
		rep, e = s.node.GCOld(ctx, req)
	case *proto.GCRecentReq:
		rep, e = s.node.GCRecent(ctx, req)
	case *proto.ProbeReq:
		rep, e = s.node.Probe(ctx, req)
	case *proto.PartialSumReq:
		if ps, ok := s.node.(proto.PartialSummer); ok {
			rep, e = ps.PartialSum(ctx, req)
		} else {
			e = fmt.Errorf("rpc: node %T does not support partial sums", s.node)
		}
	default:
		e = fmt.Errorf("rpc: unexpected request type %T", msg)
	}
	if e != nil {
		return e
	}
	return rep
}

// --- framing ---------------------------------------------------------------

// frameHeaderSize is the framed overhead per message: u32 length, u8
// type, u64 request id, u32 deadline budget (microseconds, 0 = none).
const frameHeaderSize = 4 + 1 + 8 + 4

// frameBodyMin is the post-length-prefix minimum: type + id + deadline.
const frameBodyMin = frameHeaderSize - 4

// errBadFrame reports a frame whose length prefix is impossible (too
// short for a header, or beyond MaxFrame).
var errBadFrame = errors.New("rpc: bad frame length")

// readFrame reads one frame into a pooled buffer. It returns the
// payload view alongside the whole backing frame: the payload starts
// 13 bytes in, so only the full frame can go back to the pool — the
// caller must Put frame (not payload) once the payload is dead.
func readFrame(r io.Reader) (wire.MsgType, uint64, uint32, []byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < frameBodyMin || length > MaxFrame {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w %d", errBadFrame, length)
	}
	body := bufpool.Get(int(length))
	if _, err := io.ReadFull(r, body); err != nil {
		bufpool.Put(body)
		return 0, 0, 0, nil, nil, err
	}
	mt := wire.MsgType(body[0])
	id := binary.BigEndian.Uint64(body[1:9])
	deadlineUS := binary.BigEndian.Uint32(body[9:13])
	return mt, id, deadlineUS, body[13:], body, nil
}

func writeFrame(w io.Writer, mt wire.MsgType, id uint64, deadlineUS uint32, payload []byte) error {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameBodyMin+len(payload)))
	hdr[4] = byte(mt)
	binary.BigEndian.PutUint64(hdr[5:13], id)
	binary.BigEndian.PutUint32(hdr[13:17], deadlineUS)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// --- Client ----------------------------------------------------------------

// Client is a proto.StorageNode stub over TCP. It is safe for
// concurrent use; calls are pipelined and multiplexed out of order by
// request id. With WithStripes(n) the client spreads request ids
// across n connections, each with its own read loop, so one stripe's
// large in-flight payload never head-of-line blocks another's; the
// stripes share the endpoint's dial-cooldown state. A broken
// connection fails that stripe's in-flight calls with ErrNodeDown and
// is re-dialed lazily on the next call routed to it.
type Client struct {
	addr        string
	metrics     *Metrics
	cooldown    time.Duration
	callTimeout time.Duration
	noDelay     bool
	readBuf     int
	writeBuf    int
	dialer      DialFunc
	nextID      atomic.Uint64
	stripes     []*stripeConn

	// dialMu guards the shared dial-cooldown state and the closed flag.
	// Lock order: stripeConn.mu before dialMu; never the reverse.
	dialMu      sync.Mutex
	closed      bool
	lastDialErr error     // cause of the most recent failed dial
	lastDialAt  time.Time // when that dial failed (zero: none pending)
}

// stripeConn is one pipelined connection of a client: its own socket,
// write buffer, pending-reply map, read loop, and vectored-encode
// scratch. All fields are guarded by mu except the read loop's
// transient use of the conn it was started with.
type stripeConn struct {
	c       *Client
	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	frame   wire.Frame  // vectored-encode scratch, reused under mu
	vec     net.Buffers // writev cursor; WriteTo consumes it, frame.Segs stays intact
	meta    []byte      // vectored meta scratch; only borrowed until WriteTo returns
	pending map[uint64]chan frameOrErr
}

type frameOrErr struct {
	mt      wire.MsgType
	payload []byte
	frame   []byte // pooled backing buffer of payload; Put after use
	err     error
}

// Dial creates a client for the given address. Connections are
// established lazily on first use; after a failed dial the client
// backs off for a cooldown window (DefaultDialCooldown unless
// overridden by WithDialCooldown) during which calls fail fast
// without touching the network — a dead node costs one dial attempt
// per window, not one per RPC. The cooldown is shared across stripes:
// one stripe's failed dial suppresses the others' attempts too.
func Dial(addr string, opts ...Option) *Client {
	o := applyOptions(opts)
	cooldown := DefaultDialCooldown
	if o.dialCooldownSet {
		cooldown = o.dialCooldown
	}
	c := &Client{
		addr:        addr,
		metrics:     o.metrics,
		cooldown:    cooldown,
		callTimeout: o.callTimeout,
		noDelay:     o.noDelay,
		readBuf:     o.readBuf,
		writeBuf:    o.writeBuf,
		dialer:      o.dialer,
	}
	c.stripes = make([]*stripeConn, o.stripes)
	for i := range c.stripes {
		c.stripes[i] = &stripeConn{c: c, pending: make(map[uint64]chan frameOrErr)}
	}
	return c
}

var _ proto.StorageNode = (*Client)(nil)
var _ proto.MultiBatcher = (*Client)(nil)
var _ proto.PartialSummer = (*Client)(nil)

// Stripes reports the number of connection stripes this client spreads
// request ids across.
func (c *Client) Stripes() int { return len(c.stripes) }

// PendingCalls reports the number of in-flight (registered, unreplied)
// calls across all stripes. It exists for hygiene tests and
// introspection; a quiesced client must report 0.
func (c *Client) PendingCalls() int {
	total := 0
	for _, sc := range c.stripes {
		sc.mu.Lock()
		total += len(sc.pending)
		sc.mu.Unlock()
	}
	return total
}

// Close shuts all stripe connections down; subsequent calls fail.
func (c *Client) Close() error {
	c.dialMu.Lock()
	c.closed = true
	c.dialMu.Unlock()
	var err error
	for _, sc := range c.stripes {
		sc.mu.Lock()
		conn := sc.conn
		sc.failAllLocked(proto.ErrNodeDown)
		sc.conn = nil
		sc.mu.Unlock()
		if conn != nil {
			if cerr := conn.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// dialConn establishes one stripe's connection using the configured
// dialer (or TCP with socket tuning applied).
func (c *Client) dialConn(ctx context.Context) (net.Conn, error) {
	if c.dialer != nil {
		return c.dialer(ctx, c.addr)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	tuneConn(conn, c.noDelay, c.readBuf, c.writeBuf)
	return conn, nil
}

// ensureConnLocked dials this stripe if needed, honoring the client's
// shared post-failure dial cooldown: within cooldown of any stripe's
// failed dial, calls fail fast with the cached cause instead of
// dialing again. Caller must hold sc.mu (not dialMu).
func (sc *stripeConn) ensureConnLocked(ctx context.Context) error {
	c := sc.c
	c.dialMu.Lock()
	if c.closed {
		c.dialMu.Unlock()
		return proto.ErrNodeDown
	}
	if sc.conn != nil {
		c.dialMu.Unlock()
		return nil
	}
	if c.cooldown > 0 && !c.lastDialAt.IsZero() && time.Since(c.lastDialAt) < c.cooldown {
		c.dialMu.Unlock()
		c.metrics.noteDialSuppressed()
		return fmt.Errorf("%w: %s in dial cooldown after: %v", proto.ErrNodeDown, c.addr, c.lastDialErr)
	}
	c.dialMu.Unlock()
	c.metrics.noteDial()
	conn, err := c.dialConn(ctx)
	if err != nil {
		c.metrics.noteDialError()
		c.dialMu.Lock()
		c.lastDialErr = err
		c.lastDialAt = time.Now()
		c.dialMu.Unlock()
		return fmt.Errorf("%w: %v", proto.ErrNodeDown, err)
	}
	c.dialMu.Lock()
	c.lastDialErr = nil
	c.lastDialAt = time.Time{}
	closed := c.closed
	c.dialMu.Unlock()
	if closed {
		_ = conn.Close()
		return proto.ErrNodeDown
	}
	sc.conn = conn
	sc.w = bufio.NewWriterSize(conn, 64<<10)
	go sc.readLoop(conn)
	return nil
}

// Connected reports whether any stripe's TCP connection is up.
func (c *Client) Connected() bool {
	for _, sc := range c.stripes {
		sc.mu.Lock()
		up := sc.conn != nil
		sc.mu.Unlock()
		if up {
			return true
		}
	}
	return false
}

// TryConnect is a reconnect-aware health probe: it ensures a live
// connection on the first stripe, dialing (subject to the cooldown) if
// none exists, and sends nothing. A nil return means the transport is
// up.
func (c *Client) TryConnect(ctx context.Context) error {
	sc := c.stripes[0]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.ensureConnLocked(ctx)
}

func (sc *stripeConn) readLoop(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		mt, id, _, payload, frame, err := readFrame(r)
		if err != nil {
			sc.mu.Lock()
			if sc.conn == conn {
				sc.failAllLocked(fmt.Errorf("%w: %v", proto.ErrNodeDown, err))
				sc.conn = nil
			}
			sc.mu.Unlock()
			_ = conn.Close()
			return
		}
		sc.mu.Lock()
		ch, ok := sc.pending[id]
		delete(sc.pending, id)
		sc.mu.Unlock()
		if ok {
			ch <- frameOrErr{mt: mt, payload: payload, frame: frame}
		} else {
			// Reply for an abandoned call (timeout); nobody will read
			// the payload.
			bufpool.Put(frame)
		}
	}
}

func (sc *stripeConn) failAllLocked(err error) {
	for id, ch := range sc.pending {
		delete(sc.pending, id)
		ch <- frameOrErr{err: err}
	}
}

// send performs the write phase of one call on this stripe: ensure the
// connection, register ch under id, and put the frame on the wire. At
// or above vectoredMinPayload the frame goes out as a vectored write
// whose payload segments alias req's own buffers — they are borrowed
// only until the writev returns (still inside send, under sc.mu), so
// no payload buffer can be recycled while the writev references it.
// Below the threshold the frame is encoded into a pooled buffer and
// written through the stripe's bufio writer. Returns the frame's wire
// size and whether the vectored path carried it.
func (sc *stripeConn) send(ctx context.Context, id uint64, deadlineUS uint32, req any, ch chan frameOrErr) (n int, vectored bool, err error) {
	pb := wire.PayloadBytes(req)
	sc.mu.Lock()
	if cerr := sc.ensureConnLocked(ctx); cerr != nil {
		sc.mu.Unlock()
		return 0, false, cerr
	}
	sc.pending[id] = ch
	var werr error
	if pb >= vectoredMinPayload {
		vectored = true
		if need := wire.MetaSize(req); cap(sc.meta) < need {
			sc.meta = make([]byte, need)
		}
		if eerr := wire.EncodeFrame(&sc.frame, req, id, deadlineUS, sc.meta); eerr != nil {
			delete(sc.pending, id)
			sc.mu.Unlock()
			return 0, false, eerr
		}
		n = sc.frame.Wire
		// Drain buffered small frames first so segments land in order,
		// then writev the segment list. WriteTo consumes sc.vec (and may
		// trim segment views); sc.frame.Segs is reset on the next encode.
		werr = sc.w.Flush()
		if werr == nil {
			sc.vec = net.Buffers(sc.frame.Segs)
			_, werr = sc.vec.WriteTo(sc.conn)
		}
	} else {
		ebuf := bufpool.Get(wire.Size(req) - frameHeaderSize)
		mt, payload, eerr := wire.EncodeAppend(req, ebuf[:0])
		if eerr != nil {
			delete(sc.pending, id)
			sc.mu.Unlock()
			bufpool.Put(ebuf)
			return 0, false, eerr
		}
		n = frameHeaderSize + len(payload)
		werr = writeFrame(sc.w, mt, id, deadlineUS, payload)
		if werr == nil {
			werr = sc.w.Flush()
		}
		bufpool.Put(ebuf)
	}
	if werr != nil {
		delete(sc.pending, id)
		conn := sc.conn
		sc.failAllLocked(proto.ErrNodeDown)
		sc.conn = nil
		sc.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
		return 0, false, fmt.Errorf("%w: %v", proto.ErrNodeDown, werr)
	}
	sc.mu.Unlock()
	return n, vectored, nil
}

// deadlineBudget translates a context deadline into the frame's u32
// microsecond budget. 0 means "no deadline"; budgets beyond the u32
// range (~71 minutes) are clamped. A context that is already done
// reports ok=false so the caller can fail without touching the wire.
func deadlineBudget(ctx context.Context) (uint32, bool) {
	dl, has := ctx.Deadline()
	if !has {
		return 0, true
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return 0, false
	}
	us := rem.Microseconds()
	if us <= 0 {
		us = 1
	}
	if us > int64(^uint32(0)) {
		us = int64(^uint32(0))
	}
	return uint32(us), true
}

// call performs one RPC: write the request frame on the stripe its id
// hashes to, wait for the reply. The remaining context budget rides
// the frame header so the server can shed the work if it expires
// before dispatch.
func (c *Client) call(ctx context.Context, req any) (any, error) {
	if c.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
		defer cancel()
	}
	deadlineUS, ok := deadlineBudget(ctx)
	if !ok {
		return nil, context.DeadlineExceeded
	}
	mt, known := wire.TypeOf(req)
	if !known {
		return nil, fmt.Errorf("wire: cannot encode %T", req)
	}
	op := c.metrics.Op(mt)
	var sp obs.Span
	if op != nil {
		op.Calls.Inc()
		sp = obs.StartSpan(op.Latency)
	}
	id := c.nextID.Add(1)
	sc := c.stripes[id%uint64(len(c.stripes))]
	ch := make(chan frameOrErr, 1)
	n, vectored, err := sc.send(ctx, id, deadlineUS, req, ch)
	if err != nil {
		op.noteError()
		return nil, err
	}
	c.metrics.noteOut(n)
	if vectored {
		c.metrics.noteVectored(wire.PayloadBytes(req))
	}

	select {
	case <-ctx.Done():
		sc.mu.Lock()
		delete(sc.pending, id)
		sc.mu.Unlock()
		// If the reply raced in just before the delete, reclaim its
		// frame; a reply that arrives later is recycled by readLoop.
		select {
		case f := <-ch:
			bufpool.Put(f.frame)
		default:
		}
		c.metrics.noteTimeout()
		op.noteError()
		return nil, ctx.Err()
	case f := <-ch:
		if f.err != nil {
			op.noteError()
			return nil, f.err
		}
		c.metrics.noteIn(frameHeaderSize + len(f.payload))
		sp.End()
		if f.mt == wire.TError {
			op.noteError()
			code, msg := wire.ParseError(f.payload) // copies before the frame is pooled
			bufpool.Put(f.frame)
			if sentinel := wire.SentinelFor(code); sentinel != nil {
				// Typed server errors (draining, deadline-expired)
				// keep their sentinel so errors.Is works end to end.
				return nil, fmt.Errorf("%w: %s", sentinel, msg)
			}
			return nil, &errServer{msg: msg}
		}
		rep, err := wire.Decode(f.mt, f.payload)
		bufpool.Put(f.frame)
		return rep, err
	}
}

func callTyped[Rep any](c *Client, ctx context.Context, req any) (Rep, error) {
	var zero Rep
	rep, err := c.call(ctx, req)
	if err != nil {
		return zero, err
	}
	typed, ok := rep.(Rep)
	if !ok {
		return zero, fmt.Errorf("rpc: unexpected reply type %T", rep)
	}
	return typed, nil
}

func (c *Client) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return callTyped[*proto.ReadReply](c, ctx, req)
}
func (c *Client) Swap(ctx context.Context, req *proto.SwapReq) (*proto.SwapReply, error) {
	return callTyped[*proto.SwapReply](c, ctx, req)
}
func (c *Client) Add(ctx context.Context, req *proto.AddReq) (*proto.AddReply, error) {
	return callTyped[*proto.AddReply](c, ctx, req)
}
func (c *Client) BatchAdd(ctx context.Context, req *proto.BatchAddReq) (*proto.BatchAddReply, error) {
	return callTyped[*proto.BatchAddReply](c, ctx, req)
}

// BatchAddMulti implements proto.MultiBatcher: several batch-adds in
// one frame and one round trip. The server applies the sub-requests
// independently (no cross-stripe atomicity) and replies in order.
func (c *Client) BatchAddMulti(ctx context.Context, req *proto.BatchAddMultiReq) (*proto.BatchAddMultiReply, error) {
	rep, err := callTyped[*proto.BatchAddMultiReply](c, ctx, req)
	if err != nil {
		return nil, err
	}
	if len(rep.Replies) != len(req.Adds) {
		return nil, fmt.Errorf("rpc: batch-add multi reply count %d, want %d", len(rep.Replies), len(req.Adds))
	}
	return rep, nil
}
func (c *Client) CheckTID(ctx context.Context, req *proto.CheckTIDReq) (*proto.CheckTIDReply, error) {
	return callTyped[*proto.CheckTIDReply](c, ctx, req)
}
func (c *Client) TryLock(ctx context.Context, req *proto.TryLockReq) (*proto.TryLockReply, error) {
	return callTyped[*proto.TryLockReply](c, ctx, req)
}
func (c *Client) SetLock(ctx context.Context, req *proto.SetLockReq) (*proto.SetLockReply, error) {
	return callTyped[*proto.SetLockReply](c, ctx, req)
}
func (c *Client) GetState(ctx context.Context, req *proto.GetStateReq) (*proto.GetStateReply, error) {
	return callTyped[*proto.GetStateReply](c, ctx, req)
}
func (c *Client) GetRecent(ctx context.Context, req *proto.GetRecentReq) (*proto.GetRecentReply, error) {
	return callTyped[*proto.GetRecentReply](c, ctx, req)
}
func (c *Client) Reconstruct(ctx context.Context, req *proto.ReconstructReq) (*proto.ReconstructReply, error) {
	return callTyped[*proto.ReconstructReply](c, ctx, req)
}
func (c *Client) Finalize(ctx context.Context, req *proto.FinalizeReq) (*proto.FinalizeReply, error) {
	return callTyped[*proto.FinalizeReply](c, ctx, req)
}
func (c *Client) GCOld(ctx context.Context, req *proto.GCOldReq) (*proto.GCReply, error) {
	return callTyped[*proto.GCReply](c, ctx, req)
}
func (c *Client) GCRecent(ctx context.Context, req *proto.GCRecentReq) (*proto.GCReply, error) {
	return callTyped[*proto.GCReply](c, ctx, req)
}
func (c *Client) Probe(ctx context.Context, req *proto.ProbeReq) (*proto.ProbeReply, error) {
	return callTyped[*proto.ProbeReply](c, ctx, req)
}

// PartialSum implements proto.PartialSummer: ship a coefficient (and an
// optional accumulator) to the node and get the folded sum back.
func (c *Client) PartialSum(ctx context.Context, req *proto.PartialSumReq) (*proto.PartialSumReply, error) {
	return callTyped[*proto.PartialSumReply](c, ctx, req)
}

// IsServerError reports whether err was produced by the remote node
// rather than the transport.
func IsServerError(err error) bool {
	var se *errServer
	return errors.As(err, &se)
}

package core_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/transport"
)

// hookSet drives transport.Faulty hooks across every wrapper the
// cluster creates — initial nodes and replacements alike — so tests
// can run callbacks "between" protocol steps deterministically (hooks
// fire on the calling goroutine before the request reaches storage).
type hookSet struct {
	mu       sync.Mutex
	wrappers []*transport.Faulty
	hooks    map[transport.Op]func(any)
}

func (h *hookSet) track(w *transport.Faulty) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.wrappers = append(h.wrappers, w)
	for op, fn := range h.hooks {
		w.SetHook(op, fn)
	}
}

func (h *hookSet) set(op transport.Op, fn func(any)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hooks == nil {
		h.hooks = make(map[transport.Op]func(any))
	}
	h.hooks[op] = fn
	for _, w := range h.wrappers {
		w.SetHook(op, fn)
	}
}

func (h *hookSet) setBeforeAdd(f func(*proto.AddReq)) {
	if f == nil {
		h.set(transport.OpAdd, nil)
		return
	}
	h.set(transport.OpAdd, func(req any) { f(req.(*proto.AddReq)) })
}

func (h *hookSet) setBeforeGetState(f func(*proto.GetStateReq)) {
	if f == nil {
		h.set(transport.OpGetState, nil)
		return
	}
	h.set(transport.OpGetState, func(req any) { f(req.(*proto.GetStateReq)) })
}

func hookedCluster(t *testing.T, opts cluster.Options) (*cluster.Cluster, *hookSet) {
	t.Helper()
	h := &hookSet{}
	opts.WrapNode = func(phys int, n proto.StorageNode) proto.StorageNode {
		w := transport.NewFaulty(n, transport.FaultConfig{})
		h.track(w)
		return w
	}
	return testCluster(t, opts), h
}

// TestCheckTIDGCPath drives the Section 3.9 race deterministically: a
// predecessor write W1 completes everywhere, and the garbage collector
// retires its tid AFTER the successor's swap observed otid=W1 but
// BEFORE the successor's adds land. The redundant nodes answer ORDER
// (they no longer remember W1), and the successor must discover via
// checktid that W1 was collected — ordering globally satisfied — and
// proceed without it. No recovery may be involved, and the stripe must
// end consistent.
func TestCheckTIDGCPath(t *testing.T) {
	c, hooks := hookedCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	a, b := c.Clients[0], c.Clients[1]

	// Predecessor W1: a COMPLETE write by client A (swap + all adds).
	if err := a.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}

	// When B's first ordered add arrives (the only non-zero-OTID adds
	// in flight are B's), run both GC phases synchronously: W1 moves
	// recentlist -> oldlist everywhere, then is discarded. B's swap has
	// already returned otid=W1 by the time any add is issued.
	var once sync.Once
	hooks.setBeforeAdd(func(req *proto.AddReq) {
		if req.OTID.IsZero() {
			return
		}
		once.Do(func() {
			for pass := 0; pass < 2; pass++ {
				if _, err := a.CollectGarbage(ctx); err != nil {
					t.Errorf("gc pass %d: %v", pass, err)
				}
			}
		})
	})

	if err := b.WriteBlock(ctx, 0, 0, val(2)); err != nil {
		t.Fatal(err)
	}
	hooks.setBeforeAdd(nil)
	if b.Stats().OrderWaits.Load() == 0 {
		t.Fatal("write never hit the ORDER path; hook did not fire as intended")
	}
	if b.Stats().Recoveries.Load()+b.Stats().RecoveryPickups.Load() != 0 {
		t.Fatal("the GC ordering path must not need recovery")
	}
	got, err := b.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(2)) {
		t.Fatal("successor write lost")
	}
	mustVerify(t, c, 0)
}

// TestStorageCrashDuringRecoveryPhase2 injects a second node crash
// while recovery is reading states: the recovery must ride through it
// (report, remap, retry) and still restore the stripe — the paper's
// "slack" scenario.
func TestStorageCrashDuringRecoveryPhase2(t *testing.T) {
	c, hooks := hookedCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// First crash: redundant slot 3.
	c.CrashNodeForStripeSlot(0, 3)
	// Second crash mid-recovery: when recovery reads slot 1's state,
	// kill slot 2's node (once).
	var once sync.Once
	hooks.setBeforeGetState(func(req *proto.GetStateReq) {
		if req.Slot == 1 {
			once.Do(func() { c.CrashNodeForStripeSlot(0, 2) })
		}
	})
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatalf("recovery with mid-flight crash: %v", err)
	}
	hooks.setBeforeGetState(nil)
	for i := 0; i < 2; i++ {
		got, err := cl.ReadBlock(ctx, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(uint64(i+1))) {
			t.Fatalf("slot %d lost after cascaded crashes", i)
		}
	}
	mustVerify(t, c, 0)
}

// TestPartialFinalizeIsCompleted drives a client crash between
// finalize calls: some nodes are back to NORM at the new epoch, others
// are stuck in RECONS with expired locks. The next client must
// complete the recovery without corrupting anything.
func TestPartialFinalizeIsCompleted(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+5))); err != nil {
			t.Fatal(err)
		}
	}
	// Manual recovery by "client 88": lock, reconstruct all, finalize
	// only the redundant slots, then crash.
	const aID = proto.ClientID(88)
	blocks := c.StripeBlocks(0)
	cset := []int32{0, 1, 2, 3}
	for j := 0; j < 4; j++ {
		node, _ := c.Dir.Node(0, j)
		if rep, err := node.TryLock(ctx, &proto.TryLockReq{Stripe: 0, Slot: int32(j), Mode: proto.L1, Caller: aID}); err != nil || !rep.OK {
			t.Fatalf("manual lock %d: %v %+v", j, err, rep)
		}
	}
	for j := 0; j < 4; j++ {
		node, _ := c.Dir.Node(0, j)
		if _, err := node.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 0, Slot: int32(j), CSet: cset, Block: blocks[j]}); err != nil {
			t.Fatal(err)
		}
	}
	for j := 2; j < 4; j++ { // finalize only the parity slots
		node, _ := c.Dir.Node(0, j)
		if _, err := node.Finalize(ctx, &proto.FinalizeReq{Stripe: 0, Slot: int32(j), Epoch: 1}); err != nil {
			t.Fatal(err)
		}
	}
	c.FailClient(aID) // expire the locks still held on slots 0, 1

	// Client B reads a data block: EXP lock triggers recovery, which
	// must pick up the RECONS state and finish.
	b := c.Clients[1]
	got, err := b.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(5)) {
		t.Fatal("partially finalized recovery corrupted data")
	}
	if b.Stats().RecoveryPickups.Load() == 0 {
		t.Fatal("completion did not take the pickup path")
	}
	mustVerify(t, c, 0)
}

// TestWriterSurvivesRecoveryInterleaving injects a full recovery
// between a writer's swap and its adds: the adds arrive with a stale
// epoch and are rejected, forcing the write to restart — and the
// restarted write must win.
func TestWriterSurvivesRecoveryInterleaving(t *testing.T) {
	c, hooks := hookedCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	cl := c.Clients[0]
	other := c.Clients[1]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	hooks.setBeforeAdd(func(req *proto.AddReq) {
		once.Do(func() {
			// A full recovery completes between the swap and this add.
			if err := other.Recover(ctx, 0); err != nil {
				t.Errorf("interleaved recovery: %v", err)
			}
		})
	})
	if err := cl.WriteBlock(ctx, 0, 0, val(2)); err != nil {
		t.Fatal(err)
	}
	hooks.setBeforeAdd(nil)
	if cl.Stats().WriteRestarts.Load() == 0 {
		t.Fatal("stale-epoch adds did not force a write restart")
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(2)) {
		t.Fatal("restarted write lost")
	}
	mustVerify(t, c, 0)
}

// TestCrashStormWithinBudget runs seeds of a randomized crash schedule
// that stays within the failure budget; every seed must end with a
// fully consistent, correct stripe set.
func TestCrashStormWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("crash storm skipped in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(time.Now().Format("")+"seed", func(t *testing.T) {
			c := testCluster(t, cluster.Options{K: 2, N: 5, Clients: 2})
			ctx := ctxT(t)
			last := make(map[[2]uint64]uint64)
			x := uint64(seed * 1000)
			for round := 0; round < 40; round++ {
				stripeID := uint64(round % 3)
				slot := round % 2
				x++
				if err := c.Clients[round%2].WriteBlock(ctx, stripeID, slot, val(x)); err != nil {
					t.Fatalf("seed %d round %d: %v", seed, round, err)
				}
				last[[2]uint64{stripeID, uint64(slot)}] = x
				// One crash per ~13 rounds, p=3 budget never exceeded
				// between recoveries (reads repair on access).
				if round%13 == int(seed)%13 {
					c.CrashNodeForStripeSlot(stripeID, round%5)
				}
			}
			for key, want := range last {
				got, err := c.Clients[0].ReadBlock(ctx, key[0], int(key[1]))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, val(want)) {
					t.Fatalf("seed %d: stripe %d slot %d lost its last write", seed, key[0], key[1])
				}
			}
			for s := uint64(0); s < 3; s++ {
				if _, err := c.Clients[0].MonitorStripes(ctx, []uint64{s}, 0); err != nil {
					t.Fatal(err)
				}
				mustVerify(t, c, s)
			}
		})
	}
}

// TestTheorem1BudgetOneClientOneStorage exercises the paper's "1c1s"
// cell of Fig. 8(c): with p=2 and serial updates at tp=1, the system
// survives one client crash (a partial write) plus one storage crash,
// in either order.
func TestTheorem1BudgetOneClientOneStorage(t *testing.T) {
	for _, order := range []string{"client-then-storage", "storage-then-client"} {
		order := order
		t.Run(order, func(t *testing.T) {
			c := testCluster(t, cluster.Options{
				K: 2, N: 4, Clients: 2, Mode: resilience.Serial, TP: 1,
			})
			ctx := ctxT(t)
			cl := c.Clients[0]
			for i := 0; i < 2; i++ {
				if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
					t.Fatal(err)
				}
			}
			if order == "client-then-storage" {
				partialWrite(t, c, 0, 0, val(9), 99) // crashed client
				c.CrashNodeForStripeSlot(0, 2)       // then a storage crash
			} else {
				c.CrashNodeForStripeSlot(0, 2)
				partialWrite(t, c, 0, 0, val(9), 99)
			}
			// Reads must still return correct data (old or the crashed
			// writer's value for slot 0; exactly the old value for slot 1).
			got, err := c.Clients[1].ReadBlock(ctx, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, val(1)) && !bytes.Equal(got, val(9)) {
				t.Fatal("slot 0 returned a never-written value")
			}
			got, err = c.Clients[1].ReadBlock(ctx, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, val(2)) {
				t.Fatal("slot 1 lost its value inside the 1c1s budget")
			}
			// A monitoring pass restores full redundancy.
			if _, err := c.Clients[1].MonitorStripes(ctx, []uint64{0}, 0); err != nil {
				t.Fatal(err)
			}
			mustVerify(t, c, 0)
		})
	}
}

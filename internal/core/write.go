package core

import (
	"context"
	"fmt"
	"sync"

	"ecstore/internal/bufpool"
	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
)

// WriteBlock implements WRITE(i, v) (Fig. 5). In the failure-free case
// it is a swap on the data node followed by one batch of add deltas on
// the redundant nodes — two round trips with parallel updates, no
// locks, no old-version logging, even under concurrent writers.
func (c *Client) WriteBlock(ctx context.Context, stripeID uint64, i int, v []byte) error {
	_, _, err := c.WriteBlockStamped(ctx, stripeID, i, v)
	return err
}

// WriteBlockStamped is WriteBlock plus the identifiers the client-side
// read cache needs to chain this write onto its predecessor: ntid is
// the identifier the completed write was recorded under, and otid is
// the identifier of the write it replaced at the data node (the swap's
// OTID — zero when the slot had no recentlist entry). A cache holding
// an entry stamped otid can replace it with this write's value under
// ntid; any other cached stamp is stale in an unprovable way and must
// be invalidated.
func (c *Client) WriteBlockStamped(ctx context.Context, stripeID uint64, i int, v []byte) (ntid, otid proto.TID, err error) {
	if err := c.checkDataSlot(i); err != nil {
		return proto.TID{}, proto.TID{}, err
	}
	if len(v) != c.cfg.BlockSize {
		return proto.TID{}, proto.TID{}, fmt.Errorf("core: write value has %d bytes, want %d", len(v), c.cfg.BlockSize)
	}
	c.track(stripeID)
	c.stats.Writes.Add(1)
	sp := obs.StartSpan(c.obs.writeLatency)
	// The outer `repeat ... until D = {i, k+1..n}` loop: a restart
	// re-swaps with a fresh tid (e.g. after a recovery bumped the
	// epoch under our adds).
	for attempt := 0; attempt < c.cfg.MaxWriteAttempts; attempt++ {
		if attempt > 0 {
			c.stats.WriteRestarts.Add(1)
		}
		done, ntid, otid, err := c.writeOnce(ctx, stripeID, i, v)
		if err != nil {
			return proto.TID{}, proto.TID{}, err
		}
		if done {
			sp.End()
			return ntid, otid, nil
		}
	}
	return proto.TID{}, proto.TID{}, fmt.Errorf("%w (stripe %d, slot %d)", ErrWriteExhausted, stripeID, i)
}

// writeOnce performs one swap-and-update round. It reports done=false
// when the write must be restarted from the swap. On done=true it also
// returns the write's own identifier and the identifier the swap
// displaced — the ORIGINAL swap OTID, not the working copy that the
// checkTIDs loop zeroes once ordering is globally satisfied.
func (c *Client) writeOnce(ctx context.Context, stripeID uint64, i int, v []byte) (bool, proto.TID, proto.TID, error) {
	ntid := c.nextTID(i)

	// --- swap v into the data node (Fig. 5 lines 3-6) ---
	var srep *proto.SwapReply
	bo := c.newBackoff()
	att := newAttempts("swap", stripeID, i)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return false, proto.TID{}, proto.TID{}, err
		}
		if attempt > c.cfg.RecoveryPollLimit {
			// Liveness backstop: the stripe is not becoming available
			// (e.g. it is unrecoverable); surface the restart loop.
			return false, proto.TID{}, proto.TID{}, nil
		}
		node, err := c.cfg.Resolver.Node(stripeID, i)
		if err != nil {
			return false, proto.TID{}, proto.TID{}, fmt.Errorf("core: resolve slot %d: %w", i, err)
		}
		c.obs.swapCalls.Inc()
		actx, cancel := c.retryCtx(ctx, attempt)
		rep, err := node.Swap(actx, &proto.SwapReq{Stripe: stripeID, Slot: int32(i), Value: v, NTID: ntid})
		cancel()
		if err != nil {
			c.obs.swapRetries.Inc()
			att.note(err)
			c.cfg.Resolver.ReportFailure(stripeID, i, node)
			if att.count >= c.cfg.Retry.MaxAttempts {
				// The data node keeps erroring (not rejecting): the
				// budget is spent; surface the typed failure.
				return false, proto.TID{}, proto.TID{}, c.unavailable(att)
			}
			if err := bo.pause(ctx); err != nil {
				return false, proto.TID{}, proto.TID{}, err
			}
			continue
		}
		if rep.OK {
			srep = rep
			break
		}
		if rep.LockMode == proto.Unlocked || rep.LockMode == proto.Expired {
			// Data unavailable and nobody running recovery: fork one
			// (start_recovery) and keep retrying the swap.
			c.StartRecovery(ctx, stripeID)
		}
		if err := bo.pause(ctx); err != nil {
			return false, proto.TID{}, proto.TID{}, err
		}
	}

	oldBlk := srep.Block
	epoch := srep.Epoch
	otid := srep.OTID
	// The adds loop zeroes otid once checkTIDs proves the predecessor
	// completed everywhere; the stamp must keep the original chain link.
	swapOTID := srep.OTID

	// Compute v XOR w once into pooled scratch. Every per-slot delta is
	// alpha_ji * diff, so retry rounds and all update modes scale this
	// one block instead of re-XORing v and w per slot per round.
	diff := bufpool.Get(c.cfg.BlockSize)
	defer bufpool.Put(diff)
	erasure.RawDeltaInto(diff, v, oldBlk)

	k, n := c.cfg.Code.K(), c.cfg.Code.N()
	want := newSlotSet(i)
	for j := k; j < n; j++ {
		want.add(j)
	}

	todo := newSlotSet() // T: redundant slots still to update
	for j := k; j < n; j++ {
		todo.add(j)
	}
	done := newSlotSet(i) // D: slots that completed this write

	orderRounds := 0
	rounds := 0
	abo := c.newBackoff()
	for todo.size() > 0 && done.size() > 0 {
		if err := ctx.Err(); err != nil {
			return false, proto.TID{}, proto.TID{}, err
		}
		if rounds++; rounds > c.cfg.RecoveryPollLimit {
			// Liveness backstop: restart the write from the swap.
			return false, proto.TID{}, proto.TID{}, nil
		}
		// Retry rounds get a per-round deadline covering their adds; the
		// first round is the fast path and rides the caller's context.
		actx, cancel := c.retryCtx(ctx, rounds-1)
		results := c.issueAdds(actx, stripeID, i, diff, todo.sorted(), ntid, otid, epoch)
		cancel()

		retry := newSlotSet()
		needRecovery := false
		anyOrder := false
		for j, res := range results {
			if res.Err != nil {
				// Node unreachable: remap and retry; the replacement
				// will answer INIT, which routes us into recovery.
				c.obs.addRetries.Inc()
				c.cfg.Resolver.ReportFailure(stripeID, j, res.Node)
				retry.add(j)
				continue
			}
			r := res.Reply
			switch r.Status {
			case proto.StatusOK:
				done.add(j)
			case proto.StatusOrder:
				anyOrder = true
				retry.add(j)
			default: // StatusUnavail
				if r.LockMode != proto.Unlocked && r.LockMode != proto.L0 {
					// Locked by a recovery: retry after it finishes.
					retry.add(j)
				}
				// NORM + UNL + stale epoch: drop j; the outer loop
				// will restart the whole write at the new epoch.
			}
			// Fig. 5 lines 13: expired lock, or a non-NORM unlocked
			// node (crashed + remapped), or a persistently stuck
			// ordering — all call for recovery.
			if r.LockMode == proto.Expired || (r.OpMode != proto.Norm && r.LockMode == proto.Unlocked) {
				needRecovery = true
			}
		}
		if anyOrder && orderRounds >= c.cfg.OrderRetryLimit {
			needRecovery = true // "tired of looping"
		}
		if needRecovery {
			// Fork recovery and keep cycling our adds: recovery's L0
			// phase depends on outstanding writers completing them
			// (blocking here would deadlock against recovery).
			c.StartRecovery(ctx, stripeID)
		}
		if anyOrder {
			c.stats.OrderWaits.Add(1)
			orderRounds++
			// Before blindly retrying, learn whether the awaited write
			// completed (its tid was garbage collected) or whether we
			// lost nodes (Fig. 5 lines 15-19).
			collected, lost, err := c.checkTIDs(ctx, stripeID, done.sorted(), ntid, otid)
			if err != nil {
				return false, proto.TID{}, proto.TID{}, err
			}
			if collected {
				otid = proto.TID{} // ordering satisfied everywhere
			}
			for _, j := range lost {
				done.remove(j)
			}
		}
		todo = retry
		if todo.size() > 0 {
			if err := abo.pause(ctx); err != nil {
				return false, proto.TID{}, proto.TID{}, err
			}
		}
	}

	if done.size() != want.size() {
		return false, proto.TID{}, proto.TID{}, nil // restart from swap (outer repeat)
	}
	for j := range want {
		if !done.has(j) {
			return false, proto.TID{}, proto.TID{}, nil
		}
	}
	c.recordGC(stripeID, ntid, done)
	return true, ntid, swapOTID, nil
}

// addResult pairs an add outcome with the node it was sent to, keyed
// by slot in issueAdds's return map.
type addResult struct {
	Node  proto.StorageNode
	Reply *proto.AddReply
	Err   error
}

// issueAdds dispatches add operations to the given redundant slots
// according to the configured update mode and returns a result per
// slot. diff is the caller-owned v XOR w block; per-slot premultiplied
// deltas are drawn from the buffer pool and recycled as each call
// completes (every transport joins its goroutines before returning, so
// the payload is dead once the call strategy returns).
func (c *Client) issueAdds(ctx context.Context, stripeID uint64, i int, diff []byte, slots []int, ntid, otid proto.TID, epoch uint64) map[int]addResult {
	switch c.cfg.Mode {
	case resilience.Serial:
		return c.addSerial(ctx, stripeID, i, diff, slots, ntid, otid, epoch)
	case resilience.Hybrid:
		return c.addHybrid(ctx, stripeID, i, diff, slots, ntid, otid, epoch)
	case resilience.Broadcast:
		return c.addBroadcast(ctx, stripeID, i, diff, slots, ntid, otid, epoch)
	default: // Parallel
		return c.addParallel(ctx, stripeID, i, diff, slots, ntid, otid, epoch)
	}
}

func (c *Client) addReq(stripeID uint64, i, j int, diff []byte, ntid, otid proto.TID, epoch uint64) *proto.AddReq {
	delta := bufpool.Get(len(diff))
	gf.MulSlice(c.cfg.Code.Coef(j, i), delta, diff)
	return &proto.AddReq{
		Stripe:        stripeID,
		Slot:          int32(j),
		Delta:         delta,
		DataSlot:      int32(i),
		Premultiplied: true,
		NTID:          ntid,
		OTID:          otid,
		Epoch:         epoch,
	}
}

func (c *Client) addOne(ctx context.Context, stripeID uint64, j int, req *proto.AddReq) addResult {
	node, err := c.cfg.Resolver.Node(stripeID, j)
	if err != nil {
		return addResult{Err: err}
	}
	c.obs.addCalls.Inc()
	rep, err := node.Add(ctx, req)
	return addResult{Node: node, Reply: rep, Err: err}
}

// addSerial applies adds one node at a time (AJX-ser): each add is
// acknowledged before the next is sent, which is what Theorem 1's
// stronger failure bound relies on.
func (c *Client) addSerial(ctx context.Context, stripeID uint64, i int, diff []byte, slots []int, ntid, otid proto.TID, epoch uint64) map[int]addResult {
	out := make(map[int]addResult, len(slots))
	for _, j := range slots {
		req := c.addReq(stripeID, i, j, diff, ntid, otid, epoch)
		out[j] = c.addOne(ctx, stripeID, j, req)
		bufpool.Put(req.Delta)
	}
	return out
}

// addParallel applies all adds concurrently (AJX-par): one batch, one
// round trip.
func (c *Client) addParallel(ctx context.Context, stripeID uint64, i int, diff []byte, slots []int, ntid, otid proto.TID, epoch uint64) map[int]addResult {
	results := make([]addResult, len(slots))
	var wg sync.WaitGroup
	for idx, j := range slots {
		wg.Add(1)
		go func(idx, j int) {
			defer wg.Done()
			req := c.addReq(stripeID, i, j, diff, ntid, otid, epoch)
			results[idx] = c.addOne(ctx, stripeID, j, req)
			bufpool.Put(req.Delta)
		}(idx, j)
	}
	wg.Wait()
	out := make(map[int]addResult, len(slots))
	for idx, j := range slots {
		out[j] = results[idx]
	}
	return out
}

// addHybrid applies adds in groups: parallel within a group, groups in
// series (Theorem 3). Group size is bounded by d_serial so the hybrid
// scheme keeps the serial failure bound at a fraction of its latency.
func (c *Client) addHybrid(ctx context.Context, stripeID uint64, i int, diff []byte, slots []int, ntid, otid proto.TID, epoch uint64) map[int]addResult {
	out := make(map[int]addResult, len(slots))
	r := resilience.HybridGroupSize(c.cfg.Code.P(), c.cfg.TP)
	for start := 0; start < len(slots); start += r {
		end := min(start+r, len(slots))
		group := c.addParallel(ctx, stripeID, i, diff, slots[start:end], ntid, otid, epoch)
		for j, res := range group {
			out[j] = res
		}
	}
	return out
}

// addBroadcast sends one unmultiplied delta to all redundant nodes
// (Section 3.11): storage nodes apply their own alpha coefficient, and
// a Multicaster-capable transport charges the payload once on the
// client uplink. Without a multicaster it degrades to parallel unicast
// of the same raw payload.
func (c *Client) addBroadcast(ctx context.Context, stripeID uint64, i int, diff []byte, slots []int, ntid, otid proto.TID, epoch uint64) map[int]addResult {
	// diff IS the raw (unmultiplied) delta; it stays owned by writeOnce,
	// so no Put here.
	raw := diff
	calls := make([]proto.AddCall, 0, len(slots))
	nodes := make([]proto.StorageNode, 0, len(slots))
	resolveErr := make(map[int]addResult)
	okSlots := make([]int, 0, len(slots))
	for _, j := range slots {
		node, err := c.cfg.Resolver.Node(stripeID, j)
		if err != nil {
			resolveErr[j] = addResult{Err: err}
			continue
		}
		calls = append(calls, proto.AddCall{Node: node, Req: &proto.AddReq{
			Stripe:        stripeID,
			Slot:          int32(j),
			Delta:         raw,
			DataSlot:      int32(i),
			Premultiplied: false,
			NTID:          ntid,
			OTID:          otid,
			Epoch:         epoch,
		}})
		nodes = append(nodes, node)
		okSlots = append(okSlots, j)
	}

	out := make(map[int]addResult, len(slots))
	for j, res := range resolveErr {
		out[j] = res
	}
	c.obs.addCalls.Add(uint64(len(calls)))
	if c.cfg.Multicast != nil {
		results := c.cfg.Multicast.MulticastAdd(ctx, calls)
		for idx, r := range results {
			out[okSlots[idx]] = addResult{Node: nodes[idx], Reply: r.Reply, Err: r.Err}
		}
		return out
	}
	// Fallback: parallel unicast of the shared raw payload.
	results := make([]addResult, len(calls))
	var wg sync.WaitGroup
	for idx := range calls {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			rep, err := calls[idx].Node.Add(ctx, calls[idx].Req)
			results[idx] = addResult{Node: calls[idx].Node, Reply: rep, Err: err}
		}(idx)
	}
	wg.Wait()
	for idx, r := range results {
		out[okSlots[idx]] = r
	}
	return out
}

// checkTIDs polls the done nodes with checktid (Fig. 5 lines 15-19 and
// Section 3.9). It reports whether the awaited otid was garbage
// collected anywhere (ordering globally satisfied) and which done
// nodes no longer remember our ntid (they crashed and were remapped).
func (c *Client) checkTIDs(ctx context.Context, stripeID uint64, doneSlots []int, ntid, otid proto.TID) (collected bool, lost []int, err error) {
	type reply struct {
		slot   int
		status proto.Status
		err    error
	}
	replies := make([]reply, len(doneSlots))
	var wg sync.WaitGroup
	for idx, j := range doneSlots {
		wg.Add(1)
		go func(idx, j int) {
			defer wg.Done()
			node, nerr := c.cfg.Resolver.Node(stripeID, j)
			if nerr != nil {
				replies[idx] = reply{slot: j, err: nerr}
				return
			}
			rep, cerr := node.CheckTID(ctx, &proto.CheckTIDReq{Stripe: stripeID, Slot: int32(j), NTID: ntid, OTID: otid})
			if cerr != nil {
				c.cfg.Resolver.ReportFailure(stripeID, j, node)
				replies[idx] = reply{slot: j, err: cerr}
				return
			}
			replies[idx] = reply{slot: j, status: rep.Status}
		}(idx, j)
	}
	wg.Wait()
	for _, r := range replies {
		switch {
		case r.err != nil:
			// Treat an unreachable done node as lost; the write will
			// restart if it cannot complete without it.
			lost = append(lost, r.slot)
		case r.status == proto.StatusGC:
			collected = true
		case r.status == proto.StatusInit:
			lost = append(lost, r.slot)
		}
	}
	return collected, lost, nil
}

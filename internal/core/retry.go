package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrUnavailable reports that an operation exhausted its retry budget
// against unreachable storage. Errors returned on that path satisfy
// errors.Is(err, ErrUnavailable) and carry the attempt history as an
// *UnavailableError.
var ErrUnavailable = errors.New("core: storage unavailable")

// RetryPolicy governs how the client retries operations that hit
// transport failures or transient rejections: capped exponential
// backoff with jitter between attempts, a deadline per attempt, and a
// bounded total budget that surfaces ErrUnavailable instead of
// looping forever.
type RetryPolicy struct {
	// BaseDelay is the first backoff pause. Defaults to the client's
	// RetryDelay.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff pause. Defaults to 20ms (or
	// BaseDelay if that is larger).
	MaxDelay time.Duration
	// Multiplier grows the pause each retry. Defaults to 2.
	Multiplier float64
	// Jitter spreads each pause uniformly over ±Jitter/2 of its value
	// (0.2 = ±10%). Defaults to 0.2; negative disables.
	Jitter float64
	// MaxAttempts bounds one operation's retries before it returns
	// ErrUnavailable. Defaults to 256.
	MaxAttempts int
	// AttemptTimeout is the deadline applied to each individual RPC
	// attempt, so one wedged call cannot absorb the whole budget.
	// Defaults to 5s; negative disables.
	AttemptTimeout time.Duration
	// DegradedAfter is the number of consecutive data-node errors a
	// READ tolerates before falling back to a degraded read (decode
	// from any k survivors). Defaults to 3.
	DegradedAfter int
}

func (p *RetryPolicy) applyDefaults(base time.Duration) {
	if p.BaseDelay == 0 {
		p.BaseDelay = base
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 256
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 5 * time.Second
	}
	if p.DegradedAfter == 0 {
		p.DegradedAfter = 3
	}
}

// UnavailableError is the typed failure of an exhausted retry loop.
// It wraps the most recent attempt errors, so errors.Is also matches
// the underlying transport error (e.g. proto.ErrNodeDown).
type UnavailableError struct {
	Op       string
	Stripe   uint64
	Slot     int
	Attempts int
	Elapsed  time.Duration
	History  []error // most recent attempt errors, oldest first
}

func (e *UnavailableError) Error() string {
	last := "no attempt errors recorded"
	if n := len(e.History); n > 0 {
		last = fmt.Sprintf("last: %v", e.History[n-1])
	}
	return fmt.Sprintf("core: %s stripe %d slot %d unavailable after %d attempts in %v (%s)",
		e.Op, e.Stripe, e.Slot, e.Attempts, e.Elapsed.Round(time.Microsecond), last)
}

// Is makes errors.Is(err, ErrUnavailable) match.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// Unwrap exposes the attempt history to errors.Is/As chains.
func (e *UnavailableError) Unwrap() []error { return e.History }

// attemptErrKeep bounds how many attempt errors an UnavailableError
// retains.
const attemptErrKeep = 4

// attempts tracks one retry loop's failure history.
type attempts struct {
	op     string
	stripe uint64
	slot   int
	start  time.Time
	count  int
	errs   []error
}

func newAttempts(op string, stripe uint64, slot int) *attempts {
	return &attempts{op: op, stripe: stripe, slot: slot, start: time.Now()}
}

func (a *attempts) note(err error) {
	a.count++
	if len(a.errs) == attemptErrKeep {
		copy(a.errs, a.errs[1:])
		a.errs[attemptErrKeep-1] = err
		return
	}
	a.errs = append(a.errs, err)
}

func (a *attempts) exhausted() *UnavailableError {
	return &UnavailableError{
		Op: a.op, Stripe: a.stripe, Slot: a.slot,
		Attempts: a.count, Elapsed: time.Since(a.start),
		History: append([]error(nil), a.errs...),
	}
}

// unavailable finalizes an exhausted retry loop: it counts the event
// and returns the typed error.
func (c *Client) unavailable(a *attempts) error {
	c.stats.Unavailable.Add(1)
	c.obs.unavailable.Inc()
	return a.exhausted()
}

// backoffJitter is the shared jitter source; pauses are not part of
// any determinism contract, so one locked PRNG is fine.
var (
	backoffMu  sync.Mutex
	backoffRng = rand.New(rand.NewSource(1))
)

// backoff produces capped exponential pauses with jitter.
type backoff struct {
	pol  *RetryPolicy
	next time.Duration
}

func (c *Client) newBackoff() backoff {
	return backoff{pol: &c.cfg.Retry, next: c.cfg.Retry.BaseDelay}
}

// pause sleeps for the current backoff delay (with jitter), grows the
// next one, and honors context cancellation.
func (b *backoff) pause(ctx context.Context) error {
	d := b.next
	grown := time.Duration(float64(b.next) * b.pol.Multiplier)
	if grown > b.pol.MaxDelay || grown < b.next {
		grown = b.pol.MaxDelay
	}
	b.next = grown
	if j := b.pol.Jitter; j > 0 && d > 0 {
		if span := int64(float64(d) * j); span > 0 {
			backoffMu.Lock()
			off := backoffRng.Int63n(span)
			backoffMu.Unlock()
			d += time.Duration(off - span/2)
		}
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptCtx bounds one RPC attempt with the policy's per-attempt
// deadline.
func (c *Client) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := c.cfg.Retry.AttemptTimeout; d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// retryCtx is attemptCtx for loops with a hot first attempt: attempt 0
// runs under the caller's context alone, so the failure-free fast path
// pays nothing for deadline insurance (context.WithTimeout costs ~1 µs
// per call — several percent of an in-process 16 KiB write). A hung
// first call is still bounded by the caller's deadline or the rpc
// layer's per-call timeout; every retry gets the per-attempt deadline.
func (c *Client) retryCtx(ctx context.Context, attempt int) (context.Context, context.CancelFunc) {
	if attempt == 0 {
		return ctx, func() {}
	}
	return c.attemptCtx(ctx)
}

package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ecstore/internal/proto"
)

// HedgePolicy governs speculative (hedged) reads: when the data node
// has not answered after an adaptive delay, the client races a
// degraded-style reconstruction against it and takes whichever
// finishes first. Hedging turns a gray site's heavy latency tail into
// roughly the latency of the k-th fastest survivor, at the price of a
// bounded amount of extra load.
type HedgePolicy struct {
	// After is the minimum wait before hedging a read; zero disables
	// hedging entirely. When the data node's handle exposes the
	// HedgeDelay() capability (see internal/health), the larger of the
	// two is used, so the trigger adapts to each site's observed p95
	// rather than a global constant.
	After time.Duration
	// Budget is the token income per read: each read earns Budget
	// hedge tokens and each hedge spends one, capping the steady-state
	// hedge rate at Budget (0.1 = at most ~10% of reads hedge).
	// Defaults to 0.1.
	Budget float64
	// Burst caps the token bucket, bounding how many hedges can fire
	// back-to-back after an idle stretch. Defaults to 4.
	Burst int
	// Stagger is the pause before the hedge's second wave: the hedged
	// reconstruction contacts the k+1 healthiest slots immediately and
	// the rest only after Stagger, so a single gray site triggers one
	// spare RPC, not a full fan-out. Defaults to 500µs.
	Stagger time.Duration
}

// Enabled reports whether hedging is switched on.
func (p *HedgePolicy) Enabled() bool { return p.After > 0 }

func (p *HedgePolicy) applyDefaults() {
	if !p.Enabled() {
		return
	}
	if p.Budget == 0 {
		p.Budget = 0.1
	}
	if p.Burst == 0 {
		p.Burst = 4
	}
	if p.Stagger == 0 {
		p.Stagger = 500 * time.Microsecond
	}
}

// hedgeDelayer is the adaptive-delay capability exposed by
// health-tracked node handles.
type hedgeDelayer interface{ HedgeDelay() time.Duration }

// healthScorer is the slot-ranking capability: lower is healthier.
type healthScorer interface{ HealthScore() float64 }

// earnHedgeToken credits the bucket for one primary read.
func (c *Client) earnHedgeToken() {
	c.hedgemu.Lock()
	c.hedgeTokens += c.cfg.Hedge.Budget
	if cap := float64(c.cfg.Hedge.Burst); c.hedgeTokens > cap {
		c.hedgeTokens = cap
	}
	c.hedgemu.Unlock()
}

// spendHedgeToken takes one token if available; a denied spend is
// counted so experiments can see budget pressure.
func (c *Client) spendHedgeToken() bool {
	c.hedgemu.Lock()
	ok := c.hedgeTokens >= 1
	if ok {
		c.hedgeTokens--
	}
	c.hedgemu.Unlock()
	if !ok {
		c.stats.HedgeDenied.Add(1)
		c.obs.hedgeDenied.Inc()
	}
	return ok
}

type primaryRes struct {
	rep *proto.ReadReply
	err error
}

type hedgeRes struct {
	blk []byte
	err error
}

// readMaybeHedged performs one READ attempt against the data node,
// optionally racing a hedged reconstruction after the adaptive delay.
// It returns either the node's reply (hedged == nil) or a
// reconstructed block (hedged != nil) when the hedge won the race.
// Writes are never hedged — only reads are idempotent and
// side-effect-free, so a duplicate in flight is harmless.
func (c *Client) readMaybeHedged(ctx context.Context, stripeID uint64, i int, node proto.StorageNode) (rep *proto.ReadReply, hedged []byte, err error) {
	req := &proto.ReadReq{Stripe: stripeID, Slot: int32(i)}
	if !c.cfg.Hedge.Enabled() {
		rep, err = node.Read(ctx, req)
		return rep, nil, err
	}
	c.earnHedgeToken()
	delay := c.cfg.Hedge.After
	if hd, ok := node.(hedgeDelayer); ok {
		if d := hd.HedgeDelay(); d > delay {
			delay = d
		}
	}

	prim := make(chan primaryRes, 1)
	go func() {
		r, e := node.Read(ctx, req)
		prim <- primaryRes{r, e}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case r := <-prim:
		return r.rep, nil, r.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case <-timer.C:
	}

	// The primary is past its hedge window. Spend a token and race a
	// reconstruction; without budget, keep waiting on the primary.
	if !c.spendHedgeToken() {
		select {
		case r := <-prim:
			return r.rep, nil, r.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	c.stats.HedgedReads.Add(1)
	c.obs.hedgedReads.Inc()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel() // cancels straggler GetStates once either side wins
	hedge := make(chan hedgeRes, 1)
	go func() {
		blk, herr := c.readDegradedFast(hctx, stripeID, i)
		hedge <- hedgeRes{blk, herr}
	}()
	select {
	case r := <-prim:
		if r.err == nil && r.rep.OK {
			return r.rep, nil, nil
		}
		// The primary lost anyway (error or rejection): the hedge may
		// still rescue the attempt, so give it its chance before
		// reporting the primary's outcome to the retry loop.
		select {
		case h := <-hedge:
			if h.err == nil {
				c.noteHedgeWin()
				return nil, h.blk, nil
			}
			return r.rep, nil, r.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	case h := <-hedge:
		if h.err == nil {
			c.noteHedgeWin()
			return nil, h.blk, nil
		}
		// Hedge failed (e.g. concurrent write left no consistent k yet):
		// fall back to the primary.
		select {
		case r := <-prim:
			return r.rep, nil, r.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

func (c *Client) noteHedgeWin() {
	c.stats.HedgeWins.Add(1)
	c.obs.hedgeWins.Inc()
}

// rankSlots orders all n slots healthiest-first using the
// HealthScore() capability of their current handles. Handles without
// the capability score 0 (healthy); the sort is stable so untracked
// deployments keep slot order.
func (c *Client) rankSlots(stripeID uint64) []int {
	n := c.cfg.Code.N()
	order := allSlots(n)
	scores := make([]float64, n)
	tracked := false
	for _, j := range order {
		if node, err := c.cfg.Resolver.Node(stripeID, j); err == nil {
			if hs, ok := node.(healthScorer); ok {
				scores[j] = hs.HealthScore()
				tracked = true
			}
		}
	}
	if tracked {
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	}
	return order
}

// readDegradedFast is the hedge-path reconstruction: like readDegraded
// it decodes block i from any k mutually consistent survivors, but it
// is built for tail latency rather than thoroughness. Slots are
// contacted healthiest-first in two waves (k+1 immediately, the rest
// after the stagger), and the decode is attempted after every arrival
// — the read completes as soon as the first consistent k answer,
// instead of waiting out the slowest site in a full fan-out.
//
// Regularity is preserved for the same reason as readDegraded:
// findConsistentK judges a candidate set only by its own members'
// write lists, so deciding from a subset of arrivals is equivalent to
// the remaining slots being unreachable.
func (c *Client) readDegradedFast(ctx context.Context, stripeID uint64, i int) ([]byte, error) {
	k, n := c.cfg.Code.K(), c.cfg.Code.N()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	order := c.rankSlots(stripeID)
	type arrival struct {
		slot int
		rep  *proto.GetStateReply
	}
	arrivals := make(chan arrival, n) // buffered: stragglers never block
	launch := func(j int) {
		go func() {
			node, err := c.cfg.Resolver.Node(stripeID, j)
			if err != nil {
				arrivals <- arrival{j, nil}
				return
			}
			rep, err := node.GetState(ctx, &proto.GetStateReq{Stripe: stripeID, Slot: int32(j)})
			if err != nil {
				// Don't blame the site for our own cancellation: once a
				// consistent k has decoded, the stragglers are cut off
				// mid-call, which says nothing about their health.
				if ctx.Err() == nil {
					c.cfg.Resolver.ReportFailure(stripeID, j, node)
				}
				arrivals <- arrival{j, nil}
				return
			}
			arrivals <- arrival{j, rep}
		}()
	}

	wave := k + 1
	if wave > n {
		wave = n
	}
	for _, j := range order[:wave] {
		launch(j)
	}
	var stagger <-chan time.Time
	if wave < n {
		t := time.NewTimer(c.cfg.Hedge.Stagger)
		defer t.Stop()
		stagger = t.C
	}
	launchRest := func() {
		for _, j := range order[wave:] {
			launch(j)
		}
		wave = n
		stagger = nil
	}

	states := make([]*proto.GetStateReply, n)
	for got := 0; got < n; {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-stagger:
			launchRest()
			continue
		case a := <-arrivals:
			got++
			states[a.slot] = a.rep
		}
		if blk, ok := c.tryDecodeConsistent(states, i, k, n); ok {
			c.stats.DegradedReads.Add(1)
			c.obs.degradedReads.Inc()
			return blk, nil
		}
		// Everything launched has answered without a consistent k: the
		// second wave is the only hope, so fire it early.
		if got == wave && wave < n {
			launchRest()
		}
	}
	return nil, fmt.Errorf("core: hedged read of stripe %d slot %d: no consistent %d among %d replies",
		stripeID, i, k, n)
}

// tryDecodeConsistent attempts the degraded decode over the states
// gathered so far; ok is false when they do not yet contain a
// consistent set of k readable blocks.
func (c *Client) tryDecodeConsistent(states []*proto.GetStateReply, i, k, n int) ([]byte, bool) {
	cset := findConsistentK(states, k)
	if cset.has(i) && states[i] != nil && states[i].BlockValid {
		return states[i].Block, true
	}
	for j := range cset {
		if states[j] == nil || !states[j].BlockValid {
			cset.remove(j)
		}
	}
	if cset.size() < k {
		return nil, false
	}
	stripeBlocks := make([][]byte, n)
	for j := range cset {
		stripeBlocks[j] = states[j].Block
	}
	data, err := c.cfg.Code.DecodeData(stripeBlocks)
	if err != nil {
		return nil, false
	}
	return data[i], true
}

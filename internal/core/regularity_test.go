package core_test

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/regcheck"
	"ecstore/internal/resilience"
)

// runRegularityWorkload hammers one block with concurrent writers and
// readers, recording a history, and verifies multi-writer regular
// register semantics (Section 3.1) with the regcheck oracle.
func runRegularityWorkload(t *testing.T, c *cluster.Cluster, crashes []int) {
	t.Helper()
	ctx := ctxT(t)
	h := regcheck.New()
	var seq atomic.Uint64
	const writers, readers, opsEach = 2, 2, 20

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Clients[w%len(c.Clients)]
			for i := 0; i < opsEach; i++ {
				x := seq.Add(1)
				tok := h.BeginWrite(x)
				if err := cl.WriteBlock(ctx, 0, 0, val(x)); err != nil {
					errs <- err
					return
				}
				h.EndWrite(tok)
			}
		}(w)
	}
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		for _, phys := range crashes {
			c.CrashNode(phys)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := c.Clients[(r+1)%len(c.Clients)]
			for i := 0; i < opsEach; i++ {
				tok := h.BeginRead()
				got, err := cl.ReadBlock(ctx, 0, 0)
				if err != nil {
					errs <- err
					return
				}
				h.EndRead(tok, binary.BigEndian.Uint64(got))
			}
		}(r)
	}
	wg.Wait()
	<-crashed
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := h.Check(); err != nil {
		t.Fatalf("regularity violated: %v", err)
	}
	ws, rs := h.Counts()
	if ws != writers*opsEach || rs != readers*opsEach {
		t.Fatalf("history incomplete: %d writes, %d reads", ws, rs)
	}
}

func TestRegularityFailureFree(t *testing.T) {
	for _, mode := range []resilience.UpdateMode{resilience.Parallel, resilience.Serial} {
		t.Run(mode.String(), func(t *testing.T) {
			c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2, Mode: mode})
			runRegularityWorkload(t, c, nil)
		})
	}
}

func TestRegularityUnderCrash(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	runRegularityWorkload(t, c, []int{2})
}

func TestRegularityUnderDoubleCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	c := testCluster(t, cluster.Options{K: 3, N: 6, Clients: 2})
	runRegularityWorkload(t, c, []int{1, 4})
}

package core

import (
	"context"
	"fmt"
	"sync"

	"ecstore/internal/bufpool"
	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/proto"
)

// StripeWrite names one full-stripe write in a WriteStripes batch: k
// data blocks, each exactly BlockSize bytes.
type StripeWrite struct {
	Stripe uint64
	Values [][]byte
}

// BatchStats reports how a WriteStripes call's batch-add traffic was
// coalesced: BatchCalls counts logical per-(stripe,slot) batch-adds,
// BatchRPCs the physical RPCs they collapsed into. Equal numbers mean
// no coalescing happened (single stripe, or no shared destinations).
type BatchStats struct {
	BatchCalls uint64
	BatchRPCs  uint64
}

// Coalescing bounds: a multi-frame must stay well under the RPC
// transport's MaxFrame (16 MiB), so a single coalesced RPC carries at
// most maxCoalesce sub-requests and roughly maxCoalesceBytes of delta
// payload, whichever limit hits first.
const (
	maxCoalesce      = 64
	maxCoalesceBytes = 4 << 20
)

// WriteStripe writes all k data blocks of one stripe as a single
// operation: k parallel swaps followed by one combined batch-add per
// redundant node (Section 3.11's sequential-I/O optimization). Against
// per-block writes this cuts the message count from 2k(p+1) to
// 2(k+p) and the client's parity upload from k*p blocks to p blocks —
// the redundant nodes absorb the whole stripe's parity change in one
// delta, since XOR deltas compose:
//
//	Delta_j = sum_i alpha_ji * (v_i XOR w_i)
//
// Consistency is the same as for k individual writes issued together:
// per-slot ordering still flows through the swap-returned otids, which
// the batch carries for every slot and storage nodes check atomically.
func (c *Client) WriteStripe(ctx context.Context, stripeID uint64, values [][]byte) error {
	errs, _ := c.WriteStripes(ctx, []StripeWrite{{Stripe: stripeID, Values: values}})
	return errs[0]
}

// WriteStripes writes several full stripes concurrently as one
// pipelined batch. Each stripe keeps exactly WriteStripe's semantics
// and failure independence — the returned slice has one error slot per
// input, and a failed stripe never blocks the others — but the
// batch-add phase is shared: per round, all pending (stripe, slot)
// adds destined for the same storage node are coalesced into a single
// BatchAddMulti RPC when the node supports it, cutting the round-trip
// count for co-located stripe groups by up to the stripe count.
//
// A one-element batch issues exactly the RPC sequence WriteStripe
// always has (coalescing needs at least two calls to one node).
func (c *Client) WriteStripes(ctx context.Context, writes []StripeWrite) ([]error, BatchStats) {
	errs := make([]error, len(writes))
	var stats BatchStats
	if len(writes) == 0 {
		return errs, stats
	}
	k, n := c.cfg.Code.K(), c.cfg.Code.N()
	pending := make([]int, 0, len(writes))
	for idx, w := range writes {
		if err := c.checkStripeWrite(w, k); err != nil {
			errs[idx] = err
			continue
		}
		c.track(w.Stripe)
		c.stats.StripeWrites.Add(1)
		pending = append(pending, idx)
	}
	for attempt := 0; attempt < c.cfg.MaxWriteAttempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			c.stats.WriteRestarts.Add(uint64(len(pending)))
		}
		pending = c.writeStripesOnce(ctx, writes, pending, errs, &stats, k, n)
	}
	for _, idx := range pending {
		errs[idx] = fmt.Errorf("%w (stripe %d, full-stripe write)", ErrWriteExhausted, writes[idx].Stripe)
	}
	return errs, stats
}

func (c *Client) checkStripeWrite(w StripeWrite, k int) error {
	if len(w.Values) != k {
		return fmt.Errorf("core: WriteStripe needs %d blocks, got %d", k, len(w.Values))
	}
	for i, v := range w.Values {
		if len(v) != c.cfg.BlockSize {
			return fmt.Errorf("core: stripe block %d has %d bytes, want %d", i, len(v), c.cfg.BlockSize)
		}
	}
	return nil
}

// swapOut is the outcome of one data-slot swap.
type swapOut struct {
	old   []byte
	otid  proto.TID
	epoch uint64
	err   error
}

// stripeJob is the in-flight state of one stripe inside a
// writeStripesOnce attempt. It mirrors exactly the locals the old
// single-stripe writeStripeOnce kept on its frame.
type stripeJob struct {
	idx    int // index into writes/errs
	stripe uint64
	values [][]byte

	outs  []swapOut
	ntids []proto.TID
	epoch uint64

	raws    [][]byte // v_i XOR w_i, pooled
	deltas  [][]byte // per redundant slot, pooled
	entries []proto.BatchEntry

	todo        slotSet
	completed   slotSet
	orderRounds int

	// per-round scratch
	retry        slotSet
	anyOrder     bool
	needRecovery bool
	blockers     []int32
}

// writeStripesOnce performs one swap-all-then-batch-add round for
// every pending stripe and returns the indices that must restart
// (epoch change, poll budget, lost swap). Fatal errors land in errs;
// successful stripes simply drop out.
func (c *Client) writeStripesOnce(ctx context.Context, writes []StripeWrite, pending []int, errs []error, stats *BatchStats, k, n int) (restart []int) {
	// --- parallel swaps on every data slot of every stripe ---
	jobs := make([]*stripeJob, 0, len(pending))
	for _, idx := range pending {
		jobs = append(jobs, &stripeJob{
			idx: idx, stripe: writes[idx].Stripe, values: writes[idx].Values,
			outs: make([]swapOut, k), ntids: make([]proto.TID, k),
		})
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		for i := 0; i < k; i++ {
			j.ntids[i] = c.nextTID(i)
			wg.Add(1)
			go func(j *stripeJob, i int) {
				defer wg.Done()
				j.outs[i] = c.swapWithRetry(ctx, j.stripe, i, j.values[i], j.ntids[i])
			}(j, i)
		}
	}
	wg.Wait()

	active := make([]*stripeJob, 0, len(jobs))
	for _, j := range jobs {
		failed := false
		for i := range j.outs {
			if j.outs[i].err != nil {
				errs[j.idx] = j.outs[i].err
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		// All of a stripe's swaps must share an epoch; a mismatch means
		// recovery ran in between, and the batch would be half-stale.
		j.epoch = j.outs[0].epoch
		mismatch := false
		for _, o := range j.outs[1:] {
			if o.epoch != j.epoch {
				mismatch = true
				break
			}
		}
		if mismatch {
			restart = append(restart, j.idx)
			continue
		}
		active = append(active, j)
	}

	// --- combined deltas ---
	// Scratch comes from the buffer pool; the batch-add retry loop below
	// re-sends deltas across rounds, so they stay owned by this frame and
	// are recycled only on return (every transport copies or applies the
	// payload before the call returns).
	for _, j := range active {
		j.raws = make([][]byte, k)
		for i := range j.raws {
			raw := bufpool.Get(c.cfg.BlockSize)
			erasure.RawDeltaInto(raw, j.values[i], j.outs[i].old)
			j.raws[i] = raw
		}
		j.deltas = make([][]byte, 0, n-k)
		for slot := k; slot < n; slot++ {
			d := bufpool.Get(c.cfg.BlockSize)
			clear(d) // pooled buffers carry old contents
			for i := 0; i < k; i++ {
				gf.MulAddSlice(c.cfg.Code.Coef(slot, i), d, j.raws[i])
			}
			j.deltas = append(j.deltas, d)
		}
		j.entries = make([]proto.BatchEntry, k)
		for i := 0; i < k; i++ {
			j.entries[i] = proto.BatchEntry{DataSlot: int32(i), NTID: j.ntids[i], OTID: j.outs[i].otid}
		}
		j.todo = newSlotSet()
		for slot := k; slot < n; slot++ {
			j.todo.add(slot)
		}
		j.completed = newSlotSet()
	}
	defer func() {
		for _, j := range jobs {
			for _, raw := range j.raws {
				bufpool.Put(raw)
			}
			for _, d := range j.deltas {
				bufpool.Put(d)
			}
		}
	}()

	// --- shared batch-add rounds over every stripe's redundant slots ---
	bo := c.newBackoff()
	rounds := 0
	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			for _, j := range active {
				errs[j.idx] = err
			}
			return restart
		}
		if rounds++; rounds > c.cfg.RecoveryPollLimit {
			for _, j := range active {
				restart = append(restart, j.idx)
			}
			return restart
		}
		calls, results, nodes := c.dispatchBatchAdds(ctx, active, stats, rounds)

		for _, j := range active {
			j.retry = newSlotSet()
			j.anyOrder, j.needRecovery = false, false
			j.blockers = j.blockers[:0]
		}
		for ci, call := range calls {
			j, res := call.job, results[ci]
			if res.err != nil {
				c.cfg.Resolver.ReportFailure(j.stripe, call.slot, nodes[ci])
				j.retry.add(call.slot)
				continue
			}
			r := res.reply
			switch r.Status {
			case proto.StatusOK:
				j.completed.add(call.slot)
			case proto.StatusOrder:
				j.anyOrder = true
				j.retry.add(call.slot)
				j.blockers = append(j.blockers, r.Blockers...)
			default:
				if r.LockMode != proto.Unlocked && r.LockMode != proto.L0 {
					j.retry.add(call.slot)
				}
				// stale epoch at NORM+UNL: drop; restart below.
			}
			if r.LockMode == proto.Expired || (r.OpMode != proto.Norm && r.LockMode == proto.Unlocked) {
				j.needRecovery = true
			}
		}

		next := active[:0]
		for _, j := range active {
			if j.anyOrder && j.orderRounds >= c.cfg.OrderRetryLimit {
				j.needRecovery = true
			}
			if j.needRecovery {
				c.StartRecovery(ctx, j.stripe)
			}
			if j.anyOrder {
				c.stats.OrderWaits.Add(1)
				j.orderRounds++
				// Resolve blocked slots via checktid at their data nodes:
				// a GC answer clears that slot's ordering constraint; INIT
				// means we lost the swap and must restart.
				restartJob, err := c.resolveBatchBlockers(ctx, j.stripe, j.entries, j.blockers)
				if err != nil {
					errs[j.idx] = err
					continue
				}
				if restartJob {
					restart = append(restart, j.idx)
					continue
				}
			}
			j.todo = j.retry
			if j.todo.size() > 0 {
				next = append(next, j)
				continue
			}
			if j.completed.size() != n-k {
				restart = append(restart, j.idx)
				continue
			}
			for i := 0; i < k; i++ {
				slots := newSlotSet(i)
				for slot := k; slot < n; slot++ {
					slots.add(slot)
				}
				c.recordGC(j.stripe, j.ntids[i], slots)
			}
		}
		active = next
		if len(active) > 0 {
			if err := bo.pause(ctx); err != nil {
				for _, j := range active {
					errs[j.idx] = err
				}
				return restart
			}
		}
	}
	return restart
}

// batchCall names one pending (stripe, redundant-slot) batch-add.
type batchCall struct {
	job  *stripeJob
	slot int
}

type batchResult struct {
	reply *proto.BatchAddReply
	err   error
}

// dispatchBatchAdds issues one round of batch-adds for every active
// job's pending slots, coalescing calls that resolve to the same
// storage node into single BatchAddMulti RPCs (bounded by maxCoalesce
// and maxCoalesceBytes). It returns the flat call list with aligned
// results and resolved nodes.
func (c *Client) dispatchBatchAdds(ctx context.Context, active []*stripeJob, stats *BatchStats, rounds int) ([]batchCall, []batchResult, []proto.StorageNode) {
	var calls []batchCall
	for _, j := range active {
		for _, slot := range j.todo.sorted() {
			calls = append(calls, batchCall{job: j, slot: slot})
		}
	}
	results := make([]batchResult, len(calls))
	nodes := make([]proto.StorageNode, len(calls))

	// Resolve every call's destination; grouping keys off the node
	// handle itself, so two stripes coalesce exactly when the resolver
	// hands back the same node for both.
	groups := make(map[proto.StorageNode][]int)
	var order []proto.StorageNode
	for ci, call := range calls {
		node, err := c.cfg.Resolver.Node(call.job.stripe, call.slot)
		if err != nil {
			results[ci] = batchResult{err: err}
			continue
		}
		nodes[ci] = node
		if _, seen := groups[node]; !seen {
			order = append(order, node)
		}
		groups[node] = append(groups[node], ci)
	}

	actx, cancel := c.retryCtx(ctx, rounds-1)
	defer cancel()
	var awg sync.WaitGroup
	for _, node := range order {
		idxs := groups[node]
		for start := 0; start < len(idxs); {
			end, bytes := start, 0
			for end < len(idxs) && end-start < maxCoalesce {
				sz := c.cfg.BlockSize
				if bytes+sz > maxCoalesceBytes && end > start {
					break
				}
				bytes += sz
				end++
			}
			chunk := idxs[start:end]
			start = end
			stats.BatchCalls += uint64(len(chunk))
			if _, ok := node.(proto.MultiBatcher); ok && len(chunk) > 1 {
				stats.BatchRPCs++
			} else {
				stats.BatchRPCs += uint64(len(chunk))
			}
			awg.Add(1)
			go func(node proto.StorageNode, chunk []int) {
				defer awg.Done()
				c.sendBatchChunk(actx, node, calls, chunk, results)
			}(node, chunk)
		}
	}
	awg.Wait()
	return calls, results, nodes
}

// sendBatchChunk delivers one node's chunk of batch-adds: a plain
// BatchAdd for a lone call, a coalesced BatchAddMulti otherwise (the
// proto helper falls back to serial delivery when the node lacks the
// capability). A transport error on the multi call fails every
// sub-request in the chunk, exactly as a lost frame would.
func (c *Client) sendBatchChunk(ctx context.Context, node proto.StorageNode, calls []batchCall, chunk []int, results []batchResult) {
	if len(chunk) == 1 {
		ci := chunk[0]
		rep, err := node.BatchAdd(ctx, c.batchReq(calls[ci]))
		results[ci] = batchResult{reply: rep, err: err}
		return
	}
	req := &proto.BatchAddMultiReq{Adds: make([]*proto.BatchAddReq, len(chunk))}
	for i, ci := range chunk {
		req.Adds[i] = c.batchReq(calls[ci])
	}
	rep, err := proto.BatchAddMulti(ctx, node, req)
	if err != nil || len(rep.Replies) != len(chunk) {
		if err == nil {
			err = fmt.Errorf("core: batch-add multi returned %d replies for %d calls", len(rep.Replies), len(chunk))
		}
		for _, ci := range chunk {
			results[ci] = batchResult{err: err}
		}
		return
	}
	for i, ci := range chunk {
		results[ci] = batchResult{reply: rep.Replies[i]}
	}
}

func (c *Client) batchReq(call batchCall) *proto.BatchAddReq {
	j := call.job
	k := c.cfg.Code.K()
	return &proto.BatchAddReq{
		Stripe: j.stripe, Slot: int32(call.slot),
		Delta: j.deltas[call.slot-k], Entries: j.entries, Epoch: j.epoch,
	}
}

// swapWithRetry is the Fig. 5 swap loop shared by WriteStripe.
func (c *Client) swapWithRetry(ctx context.Context, stripeID uint64, i int, v []byte, ntid proto.TID) (out swapOut) {
	// A stripe write's k swaps can straddle a recovery's lock grab: the
	// already-swapped slots look like outstanding writes, and recovery
	// waits its full poll budget before settling without them. The swap
	// budget must exceed that, or the write gives up just before the
	// system unwedges itself.
	budget := 4 * c.cfg.RecoveryPollLimit
	bo := c.newBackoff()
	att := newAttempts("stripe-swap", stripeID, i)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		if attempt > budget {
			out.err = fmt.Errorf("%w: data slot %d unavailable", ErrWriteExhausted, i)
			return out
		}
		node, err := c.cfg.Resolver.Node(stripeID, i)
		if err != nil {
			out.err = err
			return out
		}
		actx, cancel := c.retryCtx(ctx, attempt)
		rep, err := node.Swap(actx, &proto.SwapReq{Stripe: stripeID, Slot: int32(i), Value: v, NTID: ntid})
		cancel()
		if err != nil {
			att.note(err)
			c.cfg.Resolver.ReportFailure(stripeID, i, node)
			if att.count >= c.cfg.Retry.MaxAttempts {
				out.err = c.unavailable(att)
				return out
			}
			if err := bo.pause(ctx); err != nil {
				out.err = err
				return out
			}
			continue
		}
		if rep.OK {
			out.old = rep.Block
			out.otid = rep.OTID
			out.epoch = rep.Epoch
			return out
		}
		if rep.LockMode == proto.Unlocked || rep.LockMode == proto.Expired {
			c.StartRecovery(ctx, stripeID)
		}
		if err := c.pause(ctx); err != nil {
			out.err = err
			return out
		}
	}
}

// resolveBatchBlockers runs checktid at the data node of every blocked
// slot (Section 3.9 adapted to batches). A GC verdict clears that
// entry's OTID in place; an INIT verdict (our own swap's tid is gone)
// demands a restart.
func (c *Client) resolveBatchBlockers(ctx context.Context, stripeID uint64, entries []proto.BatchEntry, blockers []int32) (restart bool, err error) {
	seen := make(map[int32]bool, len(blockers))
	for _, slot := range blockers {
		if seen[slot] {
			continue
		}
		seen[slot] = true
		idx := int(slot)
		if idx < 0 || idx >= len(entries) {
			continue
		}
		node, nerr := c.cfg.Resolver.Node(stripeID, idx)
		if nerr != nil {
			return false, nerr
		}
		rep, cerr := node.CheckTID(ctx, &proto.CheckTIDReq{
			Stripe: stripeID, Slot: slot,
			NTID: entries[idx].NTID, OTID: entries[idx].OTID,
		})
		if cerr != nil {
			c.cfg.Resolver.ReportFailure(stripeID, idx, node)
			return true, nil // data node lost: restart
		}
		switch rep.Status {
		case proto.StatusGC:
			entries[idx].OTID = proto.TID{}
		case proto.StatusInit:
			return true, nil
		}
	}
	return false, nil
}

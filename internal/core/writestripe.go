package core

import (
	"context"
	"fmt"
	"sync"

	"ecstore/internal/bufpool"
	"ecstore/internal/erasure"
	"ecstore/internal/gf"
	"ecstore/internal/proto"
)

// WriteStripe writes all k data blocks of one stripe as a single
// operation: k parallel swaps followed by one combined batch-add per
// redundant node (Section 3.11's sequential-I/O optimization). Against
// per-block writes this cuts the message count from 2k(p+1) to
// 2(k+p) and the client's parity upload from k*p blocks to p blocks —
// the redundant nodes absorb the whole stripe's parity change in one
// delta, since XOR deltas compose:
//
//	Delta_j = sum_i alpha_ji * (v_i XOR w_i)
//
// Consistency is the same as for k individual writes issued together:
// per-slot ordering still flows through the swap-returned otids, which
// the batch carries for every slot and storage nodes check atomically.
func (c *Client) WriteStripe(ctx context.Context, stripeID uint64, values [][]byte) error {
	k, n := c.cfg.Code.K(), c.cfg.Code.N()
	if len(values) != k {
		return fmt.Errorf("core: WriteStripe needs %d blocks, got %d", k, len(values))
	}
	for i, v := range values {
		if len(v) != c.cfg.BlockSize {
			return fmt.Errorf("core: stripe block %d has %d bytes, want %d", i, len(v), c.cfg.BlockSize)
		}
	}
	c.track(stripeID)
	c.stats.StripeWrites.Add(1)
	for attempt := 0; attempt < c.cfg.MaxWriteAttempts; attempt++ {
		if attempt > 0 {
			c.stats.WriteRestarts.Add(1)
		}
		done, err := c.writeStripeOnce(ctx, stripeID, values, k, n)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return fmt.Errorf("%w (stripe %d, full-stripe write)", ErrWriteExhausted, stripeID)
}

// writeStripeOnce performs one swap-all-then-batch-add round. It
// reports done=false when the whole operation must restart (e.g. a
// recovery bumped the epoch underneath it).
func (c *Client) writeStripeOnce(ctx context.Context, stripeID uint64, values [][]byte, k, n int) (bool, error) {
	// --- parallel swaps on every data slot ---
	type swapOut struct {
		old   []byte
		otid  proto.TID
		epoch uint64
		err   error
	}
	outs := make([]swapOut, k)
	ntids := make([]proto.TID, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		ntids[i] = c.nextTID(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = c.swapWithRetry(ctx, stripeID, i, values[i], ntids[i])
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			return false, outs[i].err
		}
	}
	// All swaps must share an epoch; a mismatch means recovery ran in
	// between, and the batch would be half-stale.
	epoch := outs[0].epoch
	for _, o := range outs[1:] {
		if o.epoch != epoch {
			return false, nil // restart
		}
	}

	// --- combined deltas ---
	// Scratch comes from the buffer pool; the batch-add retry loop below
	// re-sends deltas across rounds, so they stay owned by this frame and
	// are recycled only on return (every transport copies or applies the
	// payload before the call returns).
	raws := make([][]byte, k) // v_i XOR w_i
	for i := range raws {
		raw := bufpool.Get(c.cfg.BlockSize)
		erasure.RawDeltaInto(raw, values[i], outs[i].old)
		raws[i] = raw
	}
	deltas := make([][]byte, 0, n-k)
	for j := k; j < n; j++ {
		d := bufpool.Get(c.cfg.BlockSize)
		clear(d) // pooled buffers carry old contents
		for i := 0; i < k; i++ {
			gf.MulAddSlice(c.cfg.Code.Coef(j, i), d, raws[i])
		}
		deltas = append(deltas, d)
	}
	defer func() {
		for _, raw := range raws {
			bufpool.Put(raw)
		}
		for _, d := range deltas {
			bufpool.Put(d)
		}
	}()
	entries := make([]proto.BatchEntry, k)
	for i := 0; i < k; i++ {
		entries[i] = proto.BatchEntry{DataSlot: int32(i), NTID: ntids[i], OTID: outs[i].otid}
	}

	// --- batch-add loop over the redundant slots ---
	todo := newSlotSet()
	for j := k; j < n; j++ {
		todo.add(j)
	}
	completed := newSlotSet()
	orderRounds, rounds := 0, 0
	bo := c.newBackoff()
	for todo.size() > 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if rounds++; rounds > c.cfg.RecoveryPollLimit {
			return false, nil
		}
		type result struct {
			node  proto.StorageNode
			reply *proto.BatchAddReply
			err   error
		}
		slots := todo.sorted()
		results := make([]result, len(slots))
		var awg sync.WaitGroup
		for idx, j := range slots {
			awg.Add(1)
			go func(idx, j int) {
				defer awg.Done()
				node, err := c.cfg.Resolver.Node(stripeID, j)
				if err != nil {
					results[idx] = result{err: err}
					return
				}
				actx, cancel := c.retryCtx(ctx, rounds-1)
				defer cancel()
				rep, err := node.BatchAdd(actx, &proto.BatchAddReq{
					Stripe: stripeID, Slot: int32(j),
					Delta: deltas[j-k], Entries: entries, Epoch: epoch,
				})
				results[idx] = result{node: node, reply: rep, err: err}
			}(idx, j)
		}
		awg.Wait()

		retry := newSlotSet()
		needRecovery := false
		anyOrder := false
		var blockers []int32
		for idx, j := range slots {
			res := results[idx]
			if res.err != nil {
				c.cfg.Resolver.ReportFailure(stripeID, j, res.node)
				retry.add(j)
				continue
			}
			r := res.reply
			switch r.Status {
			case proto.StatusOK:
				completed.add(j)
			case proto.StatusOrder:
				anyOrder = true
				retry.add(j)
				blockers = append(blockers, r.Blockers...)
			default:
				if r.LockMode != proto.Unlocked && r.LockMode != proto.L0 {
					retry.add(j)
				}
				// stale epoch at NORM+UNL: drop; restart below.
			}
			if r.LockMode == proto.Expired || (r.OpMode != proto.Norm && r.LockMode == proto.Unlocked) {
				needRecovery = true
			}
		}
		if anyOrder && orderRounds >= c.cfg.OrderRetryLimit {
			needRecovery = true
		}
		if needRecovery {
			c.StartRecovery(ctx, stripeID)
		}
		if anyOrder {
			c.stats.OrderWaits.Add(1)
			orderRounds++
			// Resolve blocked slots via checktid at their data nodes:
			// a GC answer clears that slot's ordering constraint; INIT
			// means we lost the swap and must restart.
			restart, err := c.resolveBatchBlockers(ctx, stripeID, entries, blockers)
			if err != nil {
				return false, err
			}
			if restart {
				return false, nil
			}
		}
		todo = retry
		if todo.size() > 0 {
			if err := bo.pause(ctx); err != nil {
				return false, err
			}
		}
	}
	if completed.size() != n-k {
		return false, nil
	}
	for i := 0; i < k; i++ {
		slots := newSlotSet(i)
		for j := k; j < n; j++ {
			slots.add(j)
		}
		c.recordGC(stripeID, ntids[i], slots)
	}
	return true, nil
}

// swapWithRetry is the Fig. 5 swap loop shared by WriteStripe.
func (c *Client) swapWithRetry(ctx context.Context, stripeID uint64, i int, v []byte, ntid proto.TID) (out struct {
	old   []byte
	otid  proto.TID
	epoch uint64
	err   error
}) {
	// A stripe write's k swaps can straddle a recovery's lock grab: the
	// already-swapped slots look like outstanding writes, and recovery
	// waits its full poll budget before settling without them. The swap
	// budget must exceed that, or the write gives up just before the
	// system unwedges itself.
	budget := 4 * c.cfg.RecoveryPollLimit
	bo := c.newBackoff()
	att := newAttempts("stripe-swap", stripeID, i)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			out.err = err
			return out
		}
		if attempt > budget {
			out.err = fmt.Errorf("%w: data slot %d unavailable", ErrWriteExhausted, i)
			return out
		}
		node, err := c.cfg.Resolver.Node(stripeID, i)
		if err != nil {
			out.err = err
			return out
		}
		actx, cancel := c.retryCtx(ctx, attempt)
		rep, err := node.Swap(actx, &proto.SwapReq{Stripe: stripeID, Slot: int32(i), Value: v, NTID: ntid})
		cancel()
		if err != nil {
			att.note(err)
			c.cfg.Resolver.ReportFailure(stripeID, i, node)
			if att.count >= c.cfg.Retry.MaxAttempts {
				out.err = c.unavailable(att)
				return out
			}
			if err := bo.pause(ctx); err != nil {
				out.err = err
				return out
			}
			continue
		}
		if rep.OK {
			out.old = rep.Block
			out.otid = rep.OTID
			out.epoch = rep.Epoch
			return out
		}
		if rep.LockMode == proto.Unlocked || rep.LockMode == proto.Expired {
			c.StartRecovery(ctx, stripeID)
		}
		if err := c.pause(ctx); err != nil {
			out.err = err
			return out
		}
	}
}

// resolveBatchBlockers runs checktid at the data node of every blocked
// slot (Section 3.9 adapted to batches). A GC verdict clears that
// entry's OTID in place; an INIT verdict (our own swap's tid is gone)
// demands a restart.
func (c *Client) resolveBatchBlockers(ctx context.Context, stripeID uint64, entries []proto.BatchEntry, blockers []int32) (restart bool, err error) {
	seen := make(map[int32]bool, len(blockers))
	for _, slot := range blockers {
		if seen[slot] {
			continue
		}
		seen[slot] = true
		idx := int(slot)
		if idx < 0 || idx >= len(entries) {
			continue
		}
		node, nerr := c.cfg.Resolver.Node(stripeID, idx)
		if nerr != nil {
			return false, nerr
		}
		rep, cerr := node.CheckTID(ctx, &proto.CheckTIDReq{
			Stripe: stripeID, Slot: slot,
			NTID: entries[idx].NTID, OTID: entries[idx].OTID,
		})
		if cerr != nil {
			c.cfg.Resolver.ReportFailure(stripeID, idx, node)
			return true, nil // data node lost: restart
		}
		switch rep.Status {
		case proto.StatusGC:
			entries[idx].OTID = proto.TID{}
		case proto.StatusInit:
			return true, nil
		}
	}
	return false, nil
}

// Package core implements the client side of the AJX erasure-coded
// storage protocol — the paper's primary contribution (Figs. 4-7).
//
// A Client orchestrates thin storage nodes to read, write, recover,
// and garbage-collect erasure-coded stripes:
//
//   - READ: one round trip to the data node in the failure-free case.
//   - WRITE: swap on the data node, then alpha*(v-w) add deltas on the
//     p = n-k redundant nodes — serially, in parallel, in hybrid
//     groups, or via broadcast, per the configured update mode. No
//     locks, no two-phase commit, no old-version logs.
//   - Recovery: a three-phase, lock-based, restartable procedure that
//     reconstructs lost blocks online.
//   - Garbage collection: a two-phase protocol that trims the write-id
//     lists kept by storage nodes.
//   - Monitoring: probes that detect partial writes and crashed nodes
//     and trigger recovery to restore full resiliency.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/obs"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
)

// Resolver locates the storage node serving a stripe slot and accepts
// failure reports that may remap the slot to a replacement node
// (Section 3.5). directory.Service implements it.
type Resolver interface {
	Node(stripeID uint64, slot int) (proto.StorageNode, error)
	ReportFailure(stripeID uint64, slot int, seen proto.StorageNode)
}

// Config parameterizes a Client.
type Config struct {
	// ID is this client's unique identity; it is embedded in write
	// identifiers. Required (non-zero).
	ID proto.ClientID
	// Code is the erasure code shared by all participants. Required.
	Code *erasure.Code
	// Resolver locates storage nodes. Required.
	Resolver Resolver
	// BlockSize is the fixed block size in bytes. Required.
	BlockSize int
	// Mode selects the redundant-update strategy. Defaults to Parallel.
	Mode resilience.UpdateMode
	// TP is the client-failure threshold t_p used for recovery slack
	// and hybrid group sizing. Defaults to 0.
	TP int
	// TD overrides the storage-failure budget t_d. When zero it is
	// derived from the code and mode via the paper's theorems.
	TD int
	// Multicast optionally provides broadcast delivery for the
	// Broadcast mode; without it the client falls back to parallel
	// unicast of unmultiplied deltas.
	Multicast proto.Multicaster
	// Aggregate optionally provides partial-sum aggregation for
	// bandwidth-frugal recovery. With it set, recovery reads state
	// without block content, tells consistent slots to keep their
	// blocks in place, and fetches each lost block as one aggregated
	// alpha*block sum instead of pulling k whole survivor blocks
	// through this client. Any node or transport lacking the
	// capability makes recovery fall back to the whole-block path.
	Aggregate proto.Aggregator
	// RetryDelay is the base pause between retries of rejected
	// operations; it seeds Retry.BaseDelay and paces recovery's
	// progress polling. Defaults to 500 microseconds.
	RetryDelay time.Duration
	// Retry governs backoff, per-attempt deadlines, and the bounded
	// retry budget for operations riding through failures. Zero fields
	// take defaults (see RetryPolicy).
	Retry RetryPolicy
	// Hedge governs speculative reads against slow ("gray") data
	// nodes: a read unanswered after an adaptive delay races a
	// degraded-style reconstruction, bounded by a token budget. Zero
	// (Hedge.After == 0) disables hedging. See HedgePolicy.
	Hedge HedgePolicy
	// OrderRetryLimit bounds consecutive ORDER rejections tolerated
	// before the writer suspects a crashed predecessor and starts
	// recovery ("tired of looping"). Defaults to 8.
	OrderRetryLimit int
	// MaxWriteAttempts bounds full WRITE restarts (re-swap) before
	// giving up. Defaults to 16.
	MaxWriteAttempts int
	// RecoveryPollLimit bounds phase-2 polling rounds while waiting for
	// outstanding writes to complete. Defaults to 256.
	RecoveryPollLimit int
	// Obs optionally receives the client's metrics (latency histograms,
	// retry counters, recovery phase timings). Nil disables
	// instrumentation at no cost to the hot path.
	Obs *obs.Registry
}

func (c *Config) validate() error {
	switch {
	case c.ID == 0:
		return errors.New("core: Config.ID must be non-zero")
	case c.Code == nil:
		return errors.New("core: Config.Code is required")
	case c.Resolver == nil:
		return errors.New("core: Config.Resolver is required")
	case c.BlockSize <= 0:
		return fmt.Errorf("core: Config.BlockSize must be positive, got %d", c.BlockSize)
	case c.TP < 0:
		return fmt.Errorf("core: Config.TP must be >= 0, got %d", c.TP)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Mode == 0 {
		c.Mode = resilience.Parallel
	}
	if c.TD == 0 {
		c.TD = resilience.D(c.Mode, c.Code.P(), c.TP)
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 500 * time.Microsecond
	}
	if c.OrderRetryLimit == 0 {
		c.OrderRetryLimit = 8
	}
	if c.MaxWriteAttempts == 0 {
		c.MaxWriteAttempts = 16
	}
	if c.RecoveryPollLimit == 0 {
		c.RecoveryPollLimit = 256
	}
	c.Retry.applyDefaults(c.RetryDelay)
	c.Hedge.applyDefaults()
}

// Errors surfaced by the client.
var (
	// ErrRecoveryBusy reports that another client holds the recovery
	// locks; the operation should be retried after a pause.
	ErrRecoveryBusy = errors.New("core: recovery in progress elsewhere")
	// ErrUnrecoverable reports that recovery could not assemble enough
	// consistent blocks — the failure budget was exceeded.
	ErrUnrecoverable = errors.New("core: stripe unrecoverable: too few consistent blocks")
	// ErrWriteExhausted reports that a WRITE did not complete within
	// MaxWriteAttempts restarts. It wraps ErrUnavailable: an exhausted
	// write is one face of the bounded retry budget.
	ErrWriteExhausted = fmt.Errorf("core: write attempts exhausted: %w", ErrUnavailable)
)

// Client is a protocol client. It is safe for concurrent use by
// multiple goroutines; concurrent operations map to the paper's
// multiple outstanding client threads.
type Client struct {
	cfg Config
	seq atomic.Uint64

	// recovering deduplicates concurrent local recoveries per stripe.
	recmu      sync.Mutex
	recovering map[uint64]*recoveryTicket

	// gc tracks completed writes pending garbage collection:
	// stripe -> slot -> tids, in two generations (paper Fig. 7's gc[]
	// and old[]).
	gcmu    sync.Mutex
	gcNew   map[uint64]map[int][]proto.TID
	gcAging map[uint64]map[int][]proto.TID

	// tracked remembers stripes this client touched, for monitoring
	// and GC sweeps.
	trackmu sync.Mutex
	tracked map[uint64]struct{}

	// hedgeTokens is the hedged-read budget bucket: each read earns
	// Hedge.Budget tokens, each hedge spends one (see HedgePolicy).
	hedgemu     sync.Mutex
	hedgeTokens float64

	stats ClientStats
	obs   clientObs
}

// ClientStats counts protocol events, for experiments and tests.
type ClientStats struct {
	Reads            atomic.Uint64
	Writes           atomic.Uint64
	StripeWrites     atomic.Uint64
	WriteRestarts    atomic.Uint64
	Recoveries       atomic.Uint64
	RecoveryPickups  atomic.Uint64 // continuations of a crashed client's recovery
	RecoveryBusy     atomic.Uint64
	FrugalRecoveries atomic.Uint64 // recoveries written back via partial-sum aggregation
	FrugalFallbacks  atomic.Uint64 // frugal attempts that fell back to whole-block recovery
	OrderWaits       atomic.Uint64
	GCRounds         atomic.Uint64
	MonitorTriggered atomic.Uint64
	DegradedReads    atomic.Uint64 // reads served by k-survivor reconstruction
	Unavailable      atomic.Uint64 // operations that exhausted their retry budget
	HedgedReads      atomic.Uint64 // reads that fired a speculative reconstruction
	HedgeWins        atomic.Uint64 // hedges that beat the primary read
	HedgeDenied      atomic.Uint64 // hedge attempts refused by the token budget
	DrainRetires     atomic.Uint64 // draining nodes treated as instantly retired
}

type recoveryTicket struct {
	done chan struct{}
	err  error
}

// NewClient validates the configuration and returns a Client.
func NewClient(cfg Config) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	c := &Client{
		cfg: cfg,
		// Start with a full bucket so a site that grays out right away
		// can be hedged before any income accrues.
		hedgeTokens: float64(cfg.Hedge.Burst),
		recovering:  make(map[uint64]*recoveryTicket),
		gcNew:       make(map[uint64]map[int][]proto.TID),
		gcAging:     make(map[uint64]map[int][]proto.TID),
		tracked:     make(map[uint64]struct{}),
	}
	c.obs = newClientObs(cfg.Obs, &c.stats)
	return c, nil
}

// ID returns the client's identity.
func (c *Client) ID() proto.ClientID { return c.cfg.ID }

// Mode returns the configured update mode.
func (c *Client) Mode() resilience.UpdateMode { return c.cfg.Mode }

// Stats exposes the client's event counters.
func (c *Client) Stats() *ClientStats { return &c.stats }

// ReadBlock implements READ(i) (Fig. 4): fetch data block i of a
// stripe with a single round trip in the failure-free case. When the
// data node rejects the read (crashed-and-remapped node, or a lock
// held by recovery), the client triggers or awaits recovery and
// retries with capped exponential backoff. When the data node keeps
// *erroring* — transport failure, not rejection — the read falls back
// after Retry.DegradedAfter consecutive errors to a degraded read:
// fetch any k consistent surviving blocks and decode locally. The
// retry budget is bounded; an exhausted budget returns ErrUnavailable
// with the attempt history instead of spinning until ctx cancellation.
//
// With Config.Hedge enabled, an attempt whose data node has not
// answered within the adaptive hedge delay races a degraded-style
// reconstruction against it (see HedgePolicy); and a node that
// answers proto.ErrDraining is treated as instantly retired — the
// read degrades immediately instead of burning DegradedAfter retries
// against a site that announced its own departure.
func (c *Client) ReadBlock(ctx context.Context, stripeID uint64, i int) ([]byte, error) {
	blk, _, err := c.ReadBlockStamped(ctx, stripeID, i)
	return blk, err
}

// ReadStamp describes the provenance of a block returned by
// ReadBlockStamped. Primary is true only when the block came straight
// from the data node's reply on the failure-free path; hedged,
// degraded, and locally reconstructed reads report Primary=false. TID
// identifies the write whose content the primary reply carried (the
// newest recentlist entry at the node) and is the zero TID when the
// node's recentlist was empty — e.g. never written, or all write ids
// already garbage-collected. Client-side caches must only install
// blocks with Primary set, and must treat a zero TID conservatively.
type ReadStamp struct {
	TID     proto.TID
	Primary bool
}

// ReadBlockStamped is ReadBlock plus the provenance stamp the
// client-side read cache needs for regular-register-safe invalidation.
// See ReadBlock for the retry/degradation behavior.
func (c *Client) ReadBlockStamped(ctx context.Context, stripeID uint64, i int) ([]byte, ReadStamp, error) {
	if err := c.checkDataSlot(i); err != nil {
		return nil, ReadStamp{}, err
	}
	c.track(stripeID)
	c.stats.Reads.Add(1)
	sp := obs.StartSpan(c.obs.readLatency)
	bo := c.newBackoff()
	att := newAttempts("read", stripeID, i)
	nodeErrs := 0
	for attempt := 0; attempt < c.cfg.Retry.MaxAttempts; attempt++ {
		node, err := c.cfg.Resolver.Node(stripeID, i)
		if err != nil {
			return nil, ReadStamp{}, fmt.Errorf("core: resolve slot %d: %w", i, err)
		}
		actx, cancel := c.retryCtx(ctx, attempt)
		rep, hedged, err := c.readMaybeHedged(actx, stripeID, i, node)
		cancel()
		if hedged != nil {
			sp.End()
			return hedged, ReadStamp{}, nil
		}
		switch {
		case err != nil:
			att.note(err)
			nodeErrs++
			if errors.Is(err, proto.ErrDraining) {
				c.stats.DrainRetires.Add(1)
				nodeErrs = c.cfg.Retry.DegradedAfter
			}
			c.cfg.Resolver.ReportFailure(stripeID, i, node)
			if nodeErrs >= c.cfg.Retry.DegradedAfter {
				if blk, derr := c.readDegraded(ctx, stripeID, i); derr == nil {
					sp.End()
					return blk, ReadStamp{}, nil
				} else if ctx.Err() != nil {
					return nil, ReadStamp{}, ctx.Err()
				} else {
					att.note(derr)
				}
			}
		case rep.OK:
			sp.End()
			return rep.Block, ReadStamp{TID: rep.TID, Primary: true}, nil
		case rep.LockMode == proto.Unlocked || rep.LockMode == proto.Expired:
			nodeErrs = 0
			// Nobody is running recovery: we do it (line 4 of Fig. 4).
			if rerr := c.Recover(ctx, stripeID); rerr != nil && !errors.Is(rerr, ErrRecoveryBusy) {
				// Recovery failed outright (e.g. too few survivors to
				// restore full redundancy) — but a degraded read needs
				// only k consistent blocks, which may still exist.
				if blk, derr := c.readDegraded(ctx, stripeID, i); derr == nil {
					sp.End()
					return blk, ReadStamp{}, nil
				}
				return nil, ReadStamp{}, rerr
			}
		default:
			// Locked by a recovery in progress: wait and retry.
			nodeErrs = 0
		}
		if err := bo.pause(ctx); err != nil {
			return nil, ReadStamp{}, err
		}
	}
	return nil, ReadStamp{}, c.unavailable(att)
}

func (c *Client) checkDataSlot(i int) error {
	if i < 0 || i >= c.cfg.Code.K() {
		return fmt.Errorf("core: data slot %d out of range [0,%d)", i, c.cfg.Code.K())
	}
	return nil
}

// pause sleeps for the retry delay, honoring context cancellation.
func (c *Client) pause(ctx context.Context) error {
	t := time.NewTimer(c.cfg.RetryDelay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) track(stripeID uint64) {
	c.trackmu.Lock()
	c.tracked[stripeID] = struct{}{}
	c.trackmu.Unlock()
}

// TrackedStripes returns the stripes this client has touched, for
// monitoring and garbage-collection sweeps.
func (c *Client) TrackedStripes() []uint64 {
	c.trackmu.Lock()
	defer c.trackmu.Unlock()
	out := make([]uint64, 0, len(c.tracked))
	for s := range c.tracked {
		out = append(out, s)
	}
	return out
}

func (c *Client) nextTID(i int) proto.TID {
	return proto.TID{Seq: c.seq.Add(1), Block: uint32(i), Client: c.cfg.ID}
}

// slotSet is a small set of stripe slot indices.
type slotSet map[int]struct{}

func newSlotSet(slots ...int) slotSet {
	s := make(slotSet, len(slots))
	for _, v := range slots {
		s[v] = struct{}{}
	}
	return s
}

func (s slotSet) add(v int)      { s[v] = struct{}{} }
func (s slotSet) remove(v int)   { delete(s, v) }
func (s slotSet) has(v int) bool { _, ok := s[v]; return ok }
func (s slotSet) size() int      { return len(s) }
func (s slotSet) sorted() []int {
	out := make([]int, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	// insertion sort: sets are tiny (<= n)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

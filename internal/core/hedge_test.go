package core_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
)

// grayCluster builds a K=2/N=4 cluster where every node sits behind a
// transport.Faulty wrapper, so tests can turn individual sites gray.
func grayCluster(t *testing.T, hedge core.HedgePolicy, gray time.Duration) (*cluster.Cluster, []*transport.Faulty) {
	t.Helper()
	wrappers := make([]*transport.Faulty, 4)
	c := testCluster(t, cluster.Options{
		K: 2, N: 4, NoReplacements: true, Hedge: hedge,
		WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
			w := transport.NewFaulty(n, transport.FaultConfig{
				Seed:        int64(phys + 1),
				GrayLatency: gray,
			})
			wrappers[phys] = w
			return w
		},
	})
	return c, wrappers
}

// TestHedgedReadBeatsGrayDataNode is the headline tail-tolerance
// scenario: the data node is gray (alive but 25ms slow) and a hedged
// read must complete from the survivors in a small fraction of that.
func TestHedgedReadBeatsGrayDataNode(t *testing.T) {
	c, wrappers := grayCluster(t, core.HedgePolicy{After: 500 * time.Microsecond}, 25*time.Millisecond)
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(7)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteBlock(ctx, 0, 1, val(8)); err != nil {
		t.Fatal(err)
	}
	wrappers[c.Layout.PhysicalNode(0, 0)].SetGray(true)

	start := time.Now()
	got, err := cl.ReadBlock(ctx, 0, 0)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(got, val(7)) {
		t.Fatal("hedged read returned the wrong block")
	}
	if elapsed >= 20*time.Millisecond {
		t.Fatalf("hedged read took %v, want well under the 25ms gray latency", elapsed)
	}
	if cl.Stats().HedgedReads.Load() == 0 {
		t.Fatal("hedged-read counter did not move")
	}
	if cl.Stats().HedgeWins.Load() == 0 {
		t.Fatal("hedge-win counter did not move")
	}
}

// TestHedgeBudgetBoundsHedgeRate: with an empty income stream
// (Budget≈0) and Burst 1, only the initial token can be spent — later
// gray reads must wait out the primary instead of hedging.
func TestHedgeBudgetBoundsHedgeRate(t *testing.T) {
	c, wrappers := grayCluster(t, core.HedgePolicy{
		After: 200 * time.Microsecond, Budget: 0.0001, Burst: 1,
	}, 3*time.Millisecond)
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteBlock(ctx, 0, 1, val(2)); err != nil {
		t.Fatal(err)
	}
	wrappers[c.Layout.PhysicalNode(0, 0)].SetGray(true)
	for i := 0; i < 5; i++ {
		got, err := cl.ReadBlock(ctx, 0, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, val(1)) {
			t.Fatalf("read %d returned the wrong block", i)
		}
	}
	if hedged := cl.Stats().HedgedReads.Load(); hedged != 1 {
		t.Fatalf("HedgedReads = %d, want exactly 1 (Burst 1, near-zero income)", hedged)
	}
	if cl.Stats().HedgeDenied.Load() < 3 {
		t.Fatalf("HedgeDenied = %d, want >= 3", cl.Stats().HedgeDenied.Load())
	}
}

// TestHedgeFaultFreeStaysQuiet: without any gray site, in-process
// primaries answer in microseconds, so a 5ms hedge delay never fires
// — hedging must cost nothing on the failure-free path.
func TestHedgeFaultFreeStaysQuiet(t *testing.T) {
	c, _ := grayCluster(t, core.HedgePolicy{After: 5 * time.Millisecond}, 25*time.Millisecond)
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := cl.ReadBlock(ctx, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hedged := cl.Stats().HedgedReads.Load(); hedged != 0 {
		t.Fatalf("fault-free run fired %d hedges, want 0", hedged)
	}
}

// slowDelayNode fakes the health HedgeDelay() capability with a huge
// adaptive delay, which must override a tiny configured After.
type slowDelayNode struct {
	proto.StorageNode
}

func (slowDelayNode) HedgeDelay() time.Duration { return time.Minute }

// TestHedgeDelayCapabilityOverridesAfter: when the node handle exposes
// an adaptive delay larger than Hedge.After, the larger value governs
// — a healthy-but-momentarily-slow site is not hedged prematurely.
func TestHedgeDelayCapabilityOverridesAfter(t *testing.T) {
	wrappers := make([]*transport.Faulty, 4)
	c := testCluster(t, cluster.Options{
		K: 2, N: 4, NoReplacements: true,
		Hedge: core.HedgePolicy{After: 100 * time.Microsecond},
		WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
			w := transport.NewFaulty(n, transport.FaultConfig{GrayLatency: 2 * time.Millisecond})
			wrappers[phys] = w
			return slowDelayNode{w}
		},
	})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(4)); err != nil {
		t.Fatal(err)
	}
	wrappers[c.Layout.PhysicalNode(0, 0)].SetGray(true)
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(4)) {
		t.Fatal("read returned the wrong block")
	}
	if cl.Stats().HedgedReads.Load() != 0 {
		t.Fatal("hedge fired despite a one-minute adaptive delay")
	}
}

// drainingNode refuses reads with proto.ErrDraining, like a storaged
// that received SIGTERM; every other op passes through.
type drainingNode struct {
	proto.StorageNode
}

func (d drainingNode) Read(ctx context.Context, req *proto.ReadReq) (*proto.ReadReply, error) {
	return nil, fmt.Errorf("injected: %w", proto.ErrDraining)
}

// TestDrainingDataNodeRetiresInstantly: an ErrDraining answer is a
// deliberate departure announcement, so the read must degrade on the
// first attempt instead of burning DegradedAfter retries and backoff
// against the draining site.
func TestDrainingDataNodeRetiresInstantly(t *testing.T) {
	c := testCluster(t, cluster.Options{
		K: 2, N: 4, NoReplacements: true,
		WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
			if phys == 0 {
				return drainingNode{n}
			}
			return n
		},
	})
	ctx := ctxT(t)
	cl := c.Clients[0]
	// Stripe 0 maps slot j to phys j, so slot 0's data node drains.
	if err := cl.WriteBlock(ctx, 0, 1, val(9)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatalf("read from draining node: %v", err)
	}
	if !bytes.Equal(got, make([]byte, blockSize)) {
		t.Fatal("read returned the wrong block")
	}
	if cl.Stats().DrainRetires.Load() == 0 {
		t.Fatal("drain-retire counter did not move")
	}
	if cl.Stats().DegradedReads.Load() == 0 {
		t.Fatal("draining node's read was not served degraded")
	}
	// Exactly one attempt against the draining node: instant retire,
	// not a DegradedAfter-long error run.
	if reads := cl.Stats().Reads.Load(); reads != 1 {
		t.Fatalf("Reads = %d, want 1", reads)
	}
	if retires := cl.Stats().DrainRetires.Load(); retires != 1 {
		t.Fatalf("DrainRetires = %d, want 1 (one attempt, instant degrade)", retires)
	}
}

// TestHedgedReadConsistentUnderWrites races hedged reads against
// writes to the same stripe: every read must return a value that was
// actually written (regular-register semantics), never a torn decode.
func TestHedgedReadConsistentUnderWrites(t *testing.T) {
	c, wrappers := grayCluster(t, core.HedgePolicy{
		After: 200 * time.Microsecond, Budget: 1, Burst: 8,
	}, 2*time.Millisecond)
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(0)); err != nil {
		t.Fatal(err)
	}
	wrappers[c.Layout.PhysicalNode(0, 0)].SetGray(true)

	done := make(chan error, 1)
	go func() {
		for x := uint64(1); x <= 20; x++ {
			if err := cl.WriteBlock(ctx, 0, 0, val(x)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	seen := make(map[uint64]bool)
	for i := 0; i < 40; i++ {
		got, err := cl.ReadBlock(ctx, 0, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var x uint64
		for x = 0; x <= 20; x++ {
			if bytes.Equal(got, val(x)) {
				break
			}
		}
		if x > 20 {
			t.Fatalf("read %d returned a value that was never written", i)
		}
		seen[x] = true
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

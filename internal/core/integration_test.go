package core_test

import (
	"bytes"
	"context"
	"encoding/binary"

	"math/rand"
	"sync"
	"testing"
	"time"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/resilience"
	"ecstore/internal/transport"
)

const blockSize = 64

func testCluster(t *testing.T, opts cluster.Options) *cluster.Cluster {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = blockSize
	}
	if opts.RetryDelay == 0 {
		opts.RetryDelay = 100 * time.Microsecond
	}
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// val builds a distinguishable block: an 8-byte counter plus fill.
func val(x uint64) []byte {
	b := make([]byte, blockSize)
	binary.BigEndian.PutUint64(b, x)
	for i := 8; i < blockSize; i++ {
		b[i] = byte(x)
	}
	return b
}

func mustVerify(t *testing.T, c *cluster.Cluster, stripeID uint64) {
	t.Helper()
	ok, err := c.VerifyStripe(stripeID)
	if err != nil {
		t.Fatalf("stripe %d: %v", stripeID, err)
	}
	if !ok {
		t.Fatalf("stripe %d: erasure code inconsistent", stripeID)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for stripeID := uint64(0); stripeID < 3; stripeID++ {
		for i := 0; i < c.Code.K(); i++ {
			want := val(stripeID*10 + uint64(i))
			if err := cl.WriteBlock(ctx, stripeID, i, want); err != nil {
				t.Fatalf("write stripe %d slot %d: %v", stripeID, i, err)
			}
			got, err := cl.ReadBlock(ctx, stripeID, i)
			if err != nil {
				t.Fatalf("read stripe %d slot %d: %v", stripeID, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stripe %d slot %d: read mismatch", stripeID, i)
			}
		}
		mustVerify(t, c, stripeID)
	}
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 3, N: 5})
	got, err := c.Clients[0].ReadBlock(ctxT(t), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, blockSize)) {
		t.Fatal("unwritten block is not zero")
	}
}

func TestOverwriteSameBlock(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for x := uint64(1); x <= 10; x++ {
		if err := cl.WriteBlock(ctx, 0, 0, val(x)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(10)) {
		t.Fatal("read does not return last write")
	}
	mustVerify(t, c, 0)
}

func TestAllUpdateModes(t *testing.T) {
	modes := []resilience.UpdateMode{
		resilience.Serial, resilience.Parallel, resilience.Hybrid, resilience.Broadcast,
	}
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			opts := cluster.Options{K: 3, N: 6, Mode: mode, TP: 1}
			if mode == resilience.Broadcast {
				opts.Multicast = transport.Parallel{}
			}
			c := testCluster(t, opts)
			ctx := ctxT(t)
			cl := c.Clients[0]
			for i := 0; i < 3; i++ {
				if err := cl.WriteBlock(ctx, 5, i, val(uint64(100+i))); err != nil {
					t.Fatalf("write slot %d: %v", i, err)
				}
			}
			for i := 0; i < 3; i++ {
				got, err := cl.ReadBlock(ctx, 5, i)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, val(uint64(100+i))) {
					t.Fatalf("slot %d mismatch", i)
				}
			}
			mustVerify(t, c, 5)
		})
	}
}

func TestBroadcastWithoutMulticasterFallsBack(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Mode: resilience.Broadcast})
	ctx := ctxT(t)
	if err := c.Clients[0].WriteBlock(ctx, 0, 1, val(9)); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, c, 0)
}

func TestConcurrentWritersDifferentBlocks(t *testing.T) {
	// The Fig. 3 scenario: writers updating different data blocks of
	// the same stripe, concurrently, with zero coordination. The
	// stripe must converge to the encode of the final data.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	const rounds = 25
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.Clients[w]
			for r := 0; r < rounds; r++ {
				if err := cl.WriteBlock(ctx, 0, w, val(uint64(w*1000+r))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	mustVerify(t, c, 0)
	for w := 0; w < 2; w++ {
		got, err := c.Clients[0].ReadBlock(ctx, 0, w)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(uint64(w*1000+rounds-1))) {
			t.Fatalf("slot %d does not hold its writer's last value", w)
		}
	}
}

func TestConcurrentWritersSameBlock(t *testing.T) {
	// Writers racing on one block: the otid ordering chain must keep
	// the stripe consistent, and the final content must be one of the
	// written values.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 3})
	ctx := ctxT(t)
	const rounds = 10
	var wg sync.WaitGroup
	errs := make([]error, len(c.Clients))
	written := make(map[uint64]bool)
	var mu sync.Mutex
	for w := range c.Clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				x := uint64(w*1000 + r + 1)
				mu.Lock()
				written[x] = true
				mu.Unlock()
				if err := c.Clients[w].WriteBlock(ctx, 0, 0, val(x)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	mustVerify(t, c, 0)
	got, err := c.Clients[0].ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := binary.BigEndian.Uint64(got)
	if !written[x] {
		t.Fatalf("final value %d was never written", x)
	}
}

func TestReadRecoversAfterDataNodeCrash(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 0) // kill the node holding data slot 0
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(1)) {
		t.Fatal("recovered read returned wrong data")
	}
	if cl.Stats().Recoveries.Load()+cl.Stats().RecoveryPickups.Load() == 0 {
		t.Fatal("crash did not trigger recovery")
	}
	mustVerify(t, c, 0)
}

func TestWriteRecoversAfterRedundantNodeCrash(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 2) // kill a parity node
	if err := cl.WriteBlock(ctx, 0, 0, val(2)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(2)) {
		t.Fatal("write after crash lost data")
	}
	mustVerify(t, c, 0)
}

func TestExplicitRecoveryRestoresAllBlocks(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 3, N: 5})
	ctx := ctxT(t)
	cl := c.Clients[0]
	want := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		want[i] = val(uint64(40 + i))
		if err := cl.WriteBlock(ctx, 7, i, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := c.StripeBlocks(7)
	c.CrashNodeForStripeSlot(7, 1)
	c.CrashNodeForStripeSlot(7, 4)
	// Touch the stripe so the directory learns about the crashes and
	// remaps, then recover explicitly.
	if err := cl.Recover(ctx, 7); err != nil {
		t.Fatalf("recover: %v", err)
	}
	after := c.StripeBlocks(7)
	for slot := range after {
		if after[slot] == nil {
			t.Fatalf("slot %d missing after recovery", slot)
		}
		if !bytes.Equal(after[slot], before[slot]) {
			t.Fatalf("slot %d content changed across recovery", slot)
		}
	}
	mustVerify(t, c, 7)
	for i := 0; i < 3; i++ {
		got, err := cl.ReadBlock(ctx, 7, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("slot %d data lost", i)
		}
	}
}

func TestRecoveryToleratesMaxCrashes(t *testing.T) {
	// p = 2, tp = 0 => t_d = 2: crash two nodes at once and recover.
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+7))); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNodeForStripeSlot(0, 0)
	c.CrashNodeForStripeSlot(0, 3)
	for i := 0; i < 2; i++ {
		got, err := cl.ReadBlock(ctx, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(uint64(i+7))) {
			t.Fatalf("slot %d data lost after double crash", i)
		}
	}
	mustVerify(t, c, 0)
}

// partialWrite simulates a client that crashed after its swap but
// before any adds: the fingerprint of the paper's fragile state.
func partialWrite(t *testing.T, c *cluster.Cluster, stripeID uint64, slot int, v []byte, id proto.ClientID) proto.TID {
	t.Helper()
	node, err := c.Dir.Node(stripeID, slot)
	if err != nil {
		t.Fatal(err)
	}
	ntid := proto.TID{Seq: 999999, Block: uint32(slot), Client: id}
	rep, err := node.Swap(context.Background(), &proto.SwapReq{Stripe: stripeID, Slot: int32(slot), Value: v, NTID: ntid})
	if err != nil || !rep.OK {
		t.Fatalf("partial swap failed: %v %+v", err, rep)
	}
	return ntid
}

func TestMonitorRepairsPartialWrite(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	// Client 99 "crashes" mid-write leaving the stripe inconsistent.
	partialWrite(t, c, 0, 0, val(2), 99)
	if ok, _ := c.VerifyStripe(0); ok {
		t.Fatal("partial write unexpectedly left stripe consistent")
	}
	// The monitoring pass detects the stale recentlist entry and
	// triggers recovery.
	mon := c.Clients[1]
	report, err := mon.MonitorStripes(ctx, []uint64{0}, 0 /* any pending write is stale */)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recovered) != 1 {
		t.Fatalf("monitor recovered %v, want stripe 0", report.Recovered)
	}
	mustVerify(t, c, 0)
	// The recovered value must be the old or the new one.
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(1)) && !bytes.Equal(got, val(2)) {
		t.Fatal("recovery produced a value that was never written")
	}
}

func TestMonitorCleanStripeNoRecovery(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	report, err := cl.MonitorStripes(ctx, []uint64{0}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recovered) != 0 {
		t.Fatalf("monitor recovered %v on a healthy stripe", report.Recovered)
	}
}

func TestMonitorDetectsInitNode(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(3)); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 2)
	report, err := cl.MonitorStripes(ctx, []uint64{0}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recovered) != 1 {
		t.Fatalf("monitor report = %+v, want one recovery", report)
	}
	mustVerify(t, c, 0)
}

func TestCrashedRecoveryIsPickedUp(t *testing.T) {
	// Client A starts recovery, writes RECONS state to every node,
	// then crashes before finalizing. Client B must complete exactly
	// A's recovery (the recons_set path) once A's locks expire.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Manually run A's recovery up to (and including) reconstruct.
	const aID = proto.ClientID(77)
	blocks := c.StripeBlocks(0)
	var cset []int32
	for j := 0; j < 4; j++ {
		cset = append(cset, int32(j))
	}
	for j := 0; j < 4; j++ {
		node, _ := c.Dir.Node(0, j)
		if _, err := node.TryLock(ctx, &proto.TryLockReq{Stripe: 0, Slot: int32(j), Mode: proto.L1, Caller: aID}); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 4; j++ {
		node, _ := c.Dir.Node(0, j)
		if _, err := node.Reconstruct(ctx, &proto.ReconstructReq{Stripe: 0, Slot: int32(j), CSet: cset, Block: blocks[j]}); err != nil {
			t.Fatal(err)
		}
	}
	// A crashes; the oracle failure detector expires its locks.
	c.FailClient(aID)
	// B reads: sees EXP, runs recovery, picks up A's recons_set.
	b := c.Clients[1]
	got, err := b.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(1)) {
		t.Fatal("pickup recovery corrupted data")
	}
	if b.Stats().RecoveryPickups.Load() == 0 {
		t.Fatal("recovery did not take the pickup path")
	}
	mustVerify(t, c, 0)
}

func TestGarbageCollection(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for x := uint64(1); x <= 5; x++ {
		if err := cl.WriteBlock(ctx, 0, 0, val(x)); err != nil {
			t.Fatal(err)
		}
	}
	if cl.PendingGC() == 0 {
		t.Fatal("no pending GC after writes")
	}
	// Pass 1 moves tids to oldlists; pass 2 discards them.
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if got := cl.PendingGC(); got != 0 {
		t.Fatalf("pending GC = %d after two passes", got)
	}
	// Every node's lists for the stripe must now be empty.
	for slot := 0; slot < 4; slot++ {
		node, _ := c.Dir.Node(0, slot)
		st, err := node.GetState(ctx, &proto.GetStateReq{Stripe: 0, Slot: int32(slot)})
		if err != nil {
			t.Fatal(err)
		}
		if len(st.RecentList) != 0 || len(st.OldList) != 0 {
			t.Fatalf("slot %d lists not collected: recent=%d old=%d", slot, len(st.RecentList), len(st.OldList))
		}
	}
	// Writes must still work and order correctly after GC.
	if err := cl.WriteBlock(ctx, 0, 0, val(42)); err != nil {
		t.Fatal(err)
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(42)) {
		t.Fatal("write after GC failed")
	}
	mustVerify(t, c, 0)
}

func TestGCSkipsLockedStripe(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	// Lock one node: the second pass must skip (not error, not lose
	// the pending list).
	node, _ := c.Dir.Node(0, 2)
	if _, err := node.SetLock(ctx, &proto.SetLockReq{Stripe: 0, Slot: 2, Mode: proto.L1, Caller: 9}); err != nil {
		t.Fatal(err)
	}
	pendingBefore := cl.PendingGC()
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.PendingGC() != pendingBefore {
		t.Fatal("GC dropped pending tids for a locked stripe")
	}
	// Unlock and finish.
	if _, err := node.SetLock(ctx, &proto.SetLockReq{Stripe: 0, Slot: 2, Mode: proto.Unlocked, Caller: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CollectGarbage(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.PendingGC() != 0 {
		t.Fatal("GC did not finish after unlock")
	}
}

func TestStuckOrderTriggersRecovery(t *testing.T) {
	// A predecessor write swapped but never added ("crashed client"):
	// a successor writing the same block keeps getting ORDER, tires of
	// looping, recovers, and completes.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2, ClientTweak: func(cfg *core.Config) {
		cfg.OrderRetryLimit = 2
	}})
	ctx := ctxT(t)
	if err := c.Clients[0].WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	partialWrite(t, c, 0, 0, val(2), 99)
	// Successor write to the same block.
	b := c.Clients[1]
	if err := b.WriteBlock(ctx, 0, 0, val(3)); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(3)) {
		t.Fatal("successor write lost")
	}
	if b.Stats().OrderWaits.Load() == 0 {
		t.Fatal("write never hit the ORDER path")
	}
	if b.Stats().Recoveries.Load() == 0 {
		t.Fatal("stuck ordering did not trigger recovery")
	}
	mustVerify(t, c, 0)
}

func TestRegularRegisterSemantics(t *testing.T) {
	// Single writer bumping a counter; concurrent reader. Every read
	// must return a written (or initial) value, and at least the last
	// value whose write completed before the read started.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	var lastCompleted int64
	var mu sync.Mutex
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(writerErr)
		for x := uint64(1); x <= 60; x++ {
			if err := c.Clients[0].WriteBlock(ctx, 0, 0, val(x)); err != nil {
				writerErr <- err
				return
			}
			mu.Lock()
			lastCompleted = int64(x)
			mu.Unlock()
		}
	}()
	go func() {
		<-writerErr
		close(stop)
	}()

	reader := c.Clients[1]
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		mu.Lock()
		floor := lastCompleted
		mu.Unlock()
		got, err := reader.ReadBlock(ctx, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		x := int64(binary.BigEndian.Uint64(got))
		if x < floor {
			t.Fatalf("read returned %d, but write %d had already completed (stale read)", x, floor)
		}
		if x > 60 {
			t.Fatalf("read returned %d, which was never written", x)
		}
	}
	if err := <-writerErr; err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedChaos(t *testing.T) {
	// Randomized workload with storage crashes sprinkled in. After the
	// dust settles, a monitoring pass must restore full consistency
	// and reads must return the last completed value per block.
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	c := testCluster(t, cluster.Options{K: 2, N: 5, Clients: 2})
	ctx := ctxT(t)
	rng := rand.New(rand.NewSource(12345))
	last := make(map[int]uint64)
	seq := uint64(100)
	for round := 0; round < 60; round++ {
		slot := rng.Intn(2)
		seq++
		if err := c.Clients[rng.Intn(2)].WriteBlock(ctx, 3, slot, val(seq)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		last[slot] = seq
		if round == 20 || round == 40 {
			c.CrashNodeForStripeSlot(3, rng.Intn(5))
		}
	}
	if _, err := c.Clients[0].MonitorStripes(ctx, []uint64{3}, 0); err != nil {
		t.Fatal(err)
	}
	for slot, want := range last {
		got, err := c.Clients[1].ReadBlock(ctx, 3, slot)
		if err != nil {
			t.Fatal(err)
		}
		if binary.BigEndian.Uint64(got) != want {
			t.Fatalf("slot %d: read %d, want %d", slot, binary.BigEndian.Uint64(got), want)
		}
	}
	mustVerify(t, c, 3)
}

func TestManyStripesIndependent(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	const stripes = 20
	for s := uint64(0); s < stripes; s++ {
		if err := cl.WriteBlock(ctx, s, int(s%2), val(s+500)); err != nil {
			t.Fatal(err)
		}
	}
	for s := uint64(0); s < stripes; s++ {
		got, err := cl.ReadBlock(ctx, s, int(s%2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(s+500)) {
			t.Fatalf("stripe %d mismatch", s)
		}
		mustVerify(t, c, s)
	}
	if got := len(cl.TrackedStripes()); got != stripes {
		t.Fatalf("tracked %d stripes, want %d", got, stripes)
	}
}

func TestWriteToStripeWithHigherSlots(t *testing.T) {
	// Rotation means stripe 1's slots sit on different physical nodes
	// than stripe 0's; exercise several stripes across all slots.
	c := testCluster(t, cluster.Options{K: 3, N: 5})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for s := uint64(0); s < 5; s++ {
		for i := 0; i < 3; i++ {
			if err := cl.WriteBlock(ctx, s, i, val(s*10+uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		mustVerify(t, c, s)
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(5)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if err := cl.Recover(ctx, 0); err != nil {
			t.Fatalf("recovery round %d: %v", round, err)
		}
	}
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(5)) {
		t.Fatal("repeated recovery corrupted data")
	}
	mustVerify(t, c, 0)
}

func TestEpochBumpAcrossRecovery(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	node, _ := c.Dir.Node(0, 0)
	before, _ := node.Probe(ctx, &proto.ProbeReq{Stripe: 0, Slot: 0})
	if err := cl.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	after, _ := node.Probe(ctx, &proto.ProbeReq{Stripe: 0, Slot: 0})
	if after.Epoch <= before.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", before.Epoch, after.Epoch)
	}
}

func TestUnrecoverableStripeReportsError(t *testing.T) {
	// Crash more nodes than the code can tolerate: recovery must fail
	// with ErrUnrecoverable rather than fabricate data.
	c := testCluster(t, cluster.Options{K: 2, N: 4, ClientTweak: func(cfg *core.Config) {
		cfg.RecoveryPollLimit = 4
	}})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ { // 3 crashes > p = 2
		c.CrashNodeForStripeSlot(0, slot)
	}
	// Touch the dead nodes so the directory remaps them to INIT
	// replacements, then attempt recovery.
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	err := cl.Recover(rctx, 0)
	if err == nil {
		t.Fatal("recovery of an unrecoverable stripe succeeded")
	}
}

func TestRunMonitorLoopRepairs(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx, cancel := context.WithCancel(ctxT(t))
	defer cancel()
	cl := c.Clients[0]
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	// Background monitor on client 1 (which must track the stripe).
	if _, err := c.Clients[1].ReadBlock(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- c.Clients[1].RunMonitor(ctx, 5*time.Millisecond, 0)
	}()
	// Injected partial write: the loop must repair it.
	partialWrite(t, c, 0, 0, val(2), 99)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := c.VerifyStripe(0); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor loop did not repair the stripe in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunMonitor returned %v, want context.Canceled", err)
	}
}

package core

import (
	"context"
	"fmt"
	"sync"

	"ecstore/internal/proto"
)

// recordGC remembers a completed write's tid at every slot it touched,
// so a later CollectGarbage pass can retire it from the storage nodes'
// recentlists (Fig. 7's gc[j] accumulation).
func (c *Client) recordGC(stripeID uint64, ntid proto.TID, slots slotSet) {
	c.gcmu.Lock()
	defer c.gcmu.Unlock()
	perSlot := c.gcNew[stripeID]
	if perSlot == nil {
		perSlot = make(map[int][]proto.TID)
		c.gcNew[stripeID] = perSlot
	}
	for j := range slots {
		perSlot[j] = append(perSlot[j], ntid)
	}
}

// CollectGarbage runs one pass of the two-phase garbage collection
// algorithm (Fig. 7) over every stripe with pending work:
//
//	phase 1: gc_old  — discard previously-aged tids from oldlists;
//	phase 2: gc_recent — move freshly completed tids from recentlists
//	         to oldlists;
//	then promote the fresh generation to the aging one.
//
// Two phases are what make client crashes harmless: a tid reaches an
// oldlist only after its write completed at all nodes, so recovery may
// treat any oldlist member as globally applied even if lists diverge.
//
// Stripes whose nodes are locked or recovering are skipped and retried
// on the next pass. The pass returns the number of stripes fully
// collected.
func (c *Client) CollectGarbage(ctx context.Context) (int, error) {
	c.stats.GCRounds.Add(1)
	c.gcmu.Lock()
	stripes := make([]uint64, 0, len(c.gcNew)+len(c.gcAging))
	seen := make(map[uint64]bool)
	for s := range c.gcAging {
		if !seen[s] {
			stripes = append(stripes, s)
			seen[s] = true
		}
	}
	for s := range c.gcNew {
		if !seen[s] {
			stripes = append(stripes, s)
			seen[s] = true
		}
	}
	c.gcmu.Unlock()

	collected := 0
	for _, s := range stripes {
		if err := ctx.Err(); err != nil {
			return collected, err
		}
		ok, err := c.collectStripe(ctx, s)
		if err != nil {
			return collected, err
		}
		if ok {
			collected++
		}
	}
	return collected, nil
}

// collectStripe runs both GC phases for one stripe. It reports false
// (without error) when a node rejected the pass because the stripe is
// locked; pending lists are kept for the next attempt.
func (c *Client) collectStripe(ctx context.Context, stripeID uint64) (bool, error) {
	// Snapshot the two generations without clearing them; the lists are
	// only rotated after both phases succeed.
	c.gcmu.Lock()
	aging := copyGCLists(c.gcAging[stripeID])
	fresh := copyGCLists(c.gcNew[stripeID])
	c.gcmu.Unlock()
	if len(aging) == 0 && len(fresh) == 0 {
		return true, nil
	}

	// Phase 1: discard aged tids from oldlists.
	if ok, err := c.gcPhase(ctx, stripeID, aging, func(node proto.StorageNode, slot int, tids []proto.TID) (proto.Status, error) {
		actx, cancel := c.attemptCtx(ctx)
		defer cancel()
		rep, err := node.GCOld(actx, &proto.GCOldReq{Stripe: stripeID, Slot: int32(slot), TIDs: tids})
		if err != nil {
			return 0, err
		}
		return rep.Status, nil
	}); err != nil || !ok {
		return false, err
	}

	// Phase 2: move completed tids from recentlists to oldlists.
	if ok, err := c.gcPhase(ctx, stripeID, fresh, func(node proto.StorageNode, slot int, tids []proto.TID) (proto.Status, error) {
		actx, cancel := c.attemptCtx(ctx)
		defer cancel()
		rep, err := node.GCRecent(actx, &proto.GCRecentReq{Stripe: stripeID, Slot: int32(slot), TIDs: tids})
		if err != nil {
			return 0, err
		}
		return rep.Status, nil
	}); err != nil || !ok {
		return false, err
	}

	// Both phases succeeded: the aged tids are gone from the nodes'
	// oldlists for good.
	for _, tids := range aging {
		c.obs.gcReclaimed.Add(uint64(len(tids)))
	}

	// Rotate generations: old[j] <- gc[j]; gc[j] <- {} (Fig. 7 line 8).
	// Entries recorded by writes that completed during this pass stay
	// in gcNew for the next one.
	c.gcmu.Lock()
	if len(fresh) == 0 {
		delete(c.gcAging, stripeID)
	} else {
		c.gcAging[stripeID] = fresh
	}
	cur := c.gcNew[stripeID]
	for slot, tids := range fresh {
		cur[slot] = trimPrefix(cur[slot], tids)
		if len(cur[slot]) == 0 {
			delete(cur, slot)
		}
	}
	if len(cur) == 0 {
		delete(c.gcNew, stripeID)
	}
	c.gcmu.Unlock()
	return true, nil
}

// gcPhase applies one GC operation to every slot with pending tids, in
// parallel. It reports false when any node returned UNAVAIL (stripe
// locked — retry later).
func (c *Client) gcPhase(ctx context.Context, stripeID uint64, lists map[int][]proto.TID, op func(proto.StorageNode, int, []proto.TID) (proto.Status, error)) (bool, error) {
	if len(lists) == 0 {
		return true, nil
	}
	type result struct {
		status proto.Status
		err    error
	}
	slots := make([]int, 0, len(lists))
	for slot := range lists {
		slots = append(slots, slot)
	}
	results := make([]result, len(slots))
	var wg sync.WaitGroup
	for idx, slot := range slots {
		wg.Add(1)
		go func(idx, slot int) {
			defer wg.Done()
			node, err := c.cfg.Resolver.Node(stripeID, slot)
			if err != nil {
				results[idx] = result{err: err}
				return
			}
			status, err := op(node, slot, lists[slot])
			if err != nil {
				// The node crashed: its lists died with it; a remapped
				// replacement has nothing to collect. Treat as done.
				c.cfg.Resolver.ReportFailure(stripeID, slot, node)
				results[idx] = result{status: proto.StatusOK}
				return
			}
			results[idx] = result{status: status}
		}(idx, slot)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return false, fmt.Errorf("core: gc pass on stripe %d: %w", stripeID, r.err)
		}
		if r.status != proto.StatusOK {
			return false, nil
		}
	}
	return true, nil
}

// PendingGC reports the number of tids awaiting collection (both
// generations), for tests and monitoring.
func (c *Client) PendingGC() int {
	c.gcmu.Lock()
	defer c.gcmu.Unlock()
	total := 0
	for _, per := range c.gcNew {
		for _, tids := range per {
			total += len(tids)
		}
	}
	for _, per := range c.gcAging {
		for _, tids := range per {
			total += len(tids)
		}
	}
	return total
}

func copyGCLists(m map[int][]proto.TID) map[int][]proto.TID {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int][]proto.TID, len(m))
	for slot, tids := range m {
		out[slot] = append([]proto.TID(nil), tids...)
	}
	return out
}

// trimPrefix removes the leading entries of cur that were snapshotted
// into done (appends only happen at the tail, so the snapshot is
// always a prefix).
func trimPrefix(cur, done []proto.TID) []proto.TID {
	if len(done) >= len(cur) {
		return nil
	}
	return append([]proto.TID(nil), cur[len(done):]...)
}

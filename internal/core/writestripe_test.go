package core_test

import (
	"bytes"
	"sync"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
	"ecstore/internal/transport"
)

func stripeValues(k int, base uint64) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = val(base + uint64(i))
	}
	return out
}

func TestWriteStripeRoundTrip(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 3, N: 5})
	ctx := ctxT(t)
	cl := c.Clients[0]
	vals := stripeValues(3, 100)
	if err := cl.WriteStripe(ctx, 4, vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := cl.ReadBlock(ctx, 4, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	mustVerify(t, c, 4)
	if cl.Stats().StripeWrites.Load() != 1 {
		t.Fatal("stripe write not counted")
	}
}

func TestWriteStripeOverwrites(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	// Per-block writes first, then a stripe write on top, then
	// per-block again: the delta paths must compose.
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteStripe(ctx, 0, stripeValues(2, 10)); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteBlock(ctx, 0, 1, val(30)); err != nil {
		t.Fatal(err)
	}
	got, _ := cl.ReadBlock(ctx, 0, 0)
	if !bytes.Equal(got, val(10)) {
		t.Fatal("slot 0 lost the stripe write")
	}
	got, _ = cl.ReadBlock(ctx, 0, 1)
	if !bytes.Equal(got, val(30)) {
		t.Fatal("slot 1 lost the follow-up write")
	}
	mustVerify(t, c, 0)
}

func TestWriteStripeValidation(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteStripe(ctx, 0, stripeValues(3, 1)); err == nil {
		t.Error("wrong block count accepted")
	}
	bad := stripeValues(2, 1)
	bad[1] = []byte{1, 2, 3}
	if err := cl.WriteStripe(ctx, 0, bad); err == nil {
		t.Error("wrong block size accepted")
	}
}

func TestWriteStripeMessageCount(t *testing.T) {
	// The whole point: 2(k+p) messages instead of 2k(p+1).
	ctr := &transport.Counters{}
	c := testCluster(t, cluster.Options{K: 3, N: 5, WrapNode: func(phys int, n proto.StorageNode) proto.StorageNode {
		return transport.NewCounting(n, ctr)
	}})
	ctx := ctxT(t)
	if err := c.Clients[0].WriteStripe(ctx, 0, stripeValues(3, 50)); err != nil {
		t.Fatal(err)
	}
	msgs := ctr.Swap.Messages.Load() + ctr.BatchAdd.Messages.Load()
	want := uint64(2 * (3 + 2)) // 2(k+p) = 10, vs 2k(p+1) = 18 per-block
	if msgs != want {
		t.Fatalf("stripe write used %d messages, want %d", msgs, want)
	}
}

func TestWriteStripeConcurrentWithBlockWrites(t *testing.T) {
	// A stripe writer racing per-block writers on the same stripe: the
	// otid chains order each slot, and the stripe must stay consistent.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < 15; r++ {
			if err := c.Clients[0].WriteStripe(ctx, 0, stripeValues(2, uint64(1000+10*r))); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 15; r++ {
			if err := c.Clients[1].WriteBlock(ctx, 0, r%2, val(uint64(5000+r))); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	mustVerify(t, c, 0)
}

func TestWriteStripeConcurrentStripeWriters(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2})
	ctx := ctxT(t)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 15; r++ {
				if err := c.Clients[w].WriteStripe(ctx, 0, stripeValues(2, uint64((w+1)*1000+10*r))); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	mustVerify(t, c, 0)
}

func TestWriteStripeAfterCrashRecovers(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	if err := cl.WriteStripe(ctx, 0, stripeValues(2, 1)); err != nil {
		t.Fatal(err)
	}
	c.CrashNodeForStripeSlot(0, 3) // redundant node
	if err := cl.WriteStripe(ctx, 0, stripeValues(2, 20)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := cl.ReadBlock(ctx, 0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val(uint64(20+i))) {
			t.Fatalf("slot %d lost across crash", i)
		}
	}
	mustVerify(t, c, 0)
}

func TestWriteStripeOrderedAfterPartialWrite(t *testing.T) {
	// A crashed predecessor left a swap-only partial write on slot 0:
	// the stripe write's batch gets ORDER, tires, forces recovery, and
	// completes after a restart.
	c := testCluster(t, cluster.Options{K: 2, N: 4, Clients: 2, ClientTweak: tweakOrderLimit})
	ctx := ctxT(t)
	if err := c.Clients[0].WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	partialWrite(t, c, 0, 0, val(2), 99)
	b := c.Clients[1]
	if err := b.WriteStripe(ctx, 0, stripeValues(2, 70)); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(70)) {
		t.Fatal("stripe write lost")
	}
	if b.Stats().OrderWaits.Load() == 0 {
		t.Fatal("batch never hit the ORDER path")
	}
	mustVerify(t, c, 0)
}

func TestBatchAddStorageSemantics(t *testing.T) {
	// Direct storage-level checks for the batch operation.
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	node, _ := c.Dir.Node(0, 2)
	delta := val(3)
	entries := []proto.BatchEntry{
		{DataSlot: 0, NTID: proto.TID{Seq: 1, Block: 0, Client: 9}},
		{DataSlot: 1, NTID: proto.TID{Seq: 2, Block: 1, Client: 9}},
	}
	rep, err := node.BatchAdd(ctx, &proto.BatchAddReq{Stripe: 0, Slot: 2, Delta: delta, Entries: entries})
	if err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("batch add: %v %+v", err, rep)
	}
	// Duplicate delivery: acknowledged, not re-applied.
	rep, err = node.BatchAdd(ctx, &proto.BatchAddReq{Stripe: 0, Slot: 2, Delta: delta, Entries: entries})
	if err != nil || rep.Status != proto.StatusOK {
		t.Fatalf("duplicate batch: %v %+v", err, rep)
	}
	st, _ := node.GetState(ctx, &proto.GetStateReq{Stripe: 0, Slot: 2})
	if !bytes.Equal(st.Block, delta) {
		t.Fatal("duplicate batch re-applied the delta")
	}
	if len(st.RecentList) != 2 {
		t.Fatalf("recentlist = %d entries, want 2", len(st.RecentList))
	}
	// Ordering: a batch blocked on an unseen otid reports the blocker.
	blocked := []proto.BatchEntry{
		{DataSlot: 0, NTID: proto.TID{Seq: 5, Block: 0, Client: 9}, OTID: proto.TID{Seq: 4, Block: 0, Client: 8}},
		{DataSlot: 1, NTID: proto.TID{Seq: 6, Block: 1, Client: 9}},
	}
	rep, err = node.BatchAdd(ctx, &proto.BatchAddReq{Stripe: 0, Slot: 2, Delta: delta, Entries: blocked})
	if err != nil || rep.Status != proto.StatusOrder {
		t.Fatalf("blocked batch: %v %+v", err, rep)
	}
	if len(rep.Blockers) != 1 || rep.Blockers[0] != 0 {
		t.Fatalf("blockers = %v, want [0]", rep.Blockers)
	}
	// Nothing applied, nothing recorded.
	st, _ = node.GetState(ctx, &proto.GetStateReq{Stripe: 0, Slot: 2})
	if len(st.RecentList) != 2 {
		t.Fatal("blocked batch mutated the recentlist")
	}
	// Empty batches are a caller bug.
	if _, err := node.BatchAdd(ctx, &proto.BatchAddReq{Stripe: 0, Slot: 2, Delta: delta}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func tweakOrderLimit(cfg *core.Config) { cfg.OrderRetryLimit = 2 }

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ecstore/internal/erasure"
	"ecstore/internal/proto"
)

func testCode(t *testing.T) *erasure.Code {
	t.Helper()
	code, err := erasure.New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// stubResolver satisfies Resolver for configuration tests; its Node
// method always fails, so operations error out quickly via context.
type stubResolver struct{}

func (stubResolver) Node(uint64, int) (proto.StorageNode, error) {
	return nil, errors.New("stub: no nodes")
}
func (stubResolver) ReportFailure(uint64, int, proto.StorageNode) {}

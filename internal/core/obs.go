package core

import (
	"sync/atomic"

	"ecstore/internal/obs"
)

// clientObs holds the client's registered metrics. All fields are nil
// when Config.Obs is unset, so every observation is a no-op branch.
type clientObs struct {
	// End-to-end operation latency.
	readLatency  *obs.Histogram
	writeLatency *obs.Histogram

	// Degraded-read fallback: reads served by k-survivor decode, and
	// the latency of the fallback path (get_state sweep + local decode).
	degradedReads *obs.Counter
	readFallback  *obs.Histogram
	// Retry budgets exhausted (typed ErrUnavailable surfaced).
	unavailable *obs.Counter

	// Hedged reads: speculative reconstructions fired after the
	// adaptive delay, how many beat the primary, and how many were
	// refused by the token budget.
	hedgedReads *obs.Counter
	hedgeWins   *obs.Counter
	hedgeDenied *obs.Counter

	// Write-path breakdown: the swap on the data node vs. the add
	// deltas on the p redundant nodes (paper Fig. 5).
	swapCalls   *obs.Counter
	swapRetries *obs.Counter
	addCalls    *obs.Counter
	addRetries  *obs.Counter

	// Recovery phase timings (Fig. 6's three phases).
	recPhase1 *obs.Histogram // acquire locks
	recPhase2 *obs.Histogram // collect states, settle on a consistent set
	recPhase3 *obs.Histogram // decode, reconstruct, finalize

	gcReclaimed *obs.Counter
}

// newClientObs registers the client's metrics and mirrors the existing
// ClientStats counters into the registry as live funcs, so one
// snapshot shows both.
func newClientObs(reg *obs.Registry, stats *ClientStats) clientObs {
	o := clientObs{
		readLatency:   reg.Histogram("core.read_latency"),
		writeLatency:  reg.Histogram("core.write_latency"),
		degradedReads: reg.Counter("core.degraded_reads"),
		readFallback:  reg.Histogram("core.read_fallback_latency"),
		unavailable:   reg.Counter("core.unavailable_errors"),
		hedgedReads:   reg.Counter("core.hedged_reads"),
		hedgeWins:     reg.Counter("core.hedge_wins"),
		hedgeDenied:   reg.Counter("core.hedge_denied"),
		swapCalls:     reg.Counter("core.swap_calls"),
		swapRetries:   reg.Counter("core.swap_retries"),
		addCalls:      reg.Counter("core.add_calls"),
		addRetries:    reg.Counter("core.add_retries"),
		recPhase1:     reg.Histogram("core.recovery_phase1"),
		recPhase2:     reg.Histogram("core.recovery_phase2"),
		recPhase3:     reg.Histogram("core.recovery_phase3"),
		gcReclaimed:   reg.Counter("core.gc_reclaimed"),
	}
	if reg != nil {
		mirror := func(name string, u *atomic.Uint64) {
			reg.Func(name, func() int64 { return int64(u.Load()) })
		}
		mirror("core.reads", &stats.Reads)
		mirror("core.writes", &stats.Writes)
		mirror("core.stripe_writes", &stats.StripeWrites)
		mirror("core.write_restarts", &stats.WriteRestarts)
		mirror("core.recoveries", &stats.Recoveries)
		mirror("core.recovery_pickups", &stats.RecoveryPickups)
		mirror("core.recovery_busy", &stats.RecoveryBusy)
		mirror("core.frugal_recoveries", &stats.FrugalRecoveries)
		mirror("core.frugal_fallbacks", &stats.FrugalFallbacks)
		mirror("core.order_waits", &stats.OrderWaits)
		mirror("core.gc_rounds", &stats.GCRounds)
		mirror("core.monitor_triggered", &stats.MonitorTriggered)
		mirror("core.drain_retires", &stats.DrainRetires)
	}
	return o
}

package core

import (
	"context"
	"time"

	"ecstore/internal/proto"
)

// MonitorReport summarizes one monitoring pass (Section 3.10).
type MonitorReport struct {
	// StripesProbed counts stripes examined.
	StripesProbed int
	// Recovered lists stripes for which the pass triggered recovery.
	Recovered []uint64
	// Skipped lists stripes whose recovery was already in progress
	// elsewhere.
	Skipped []uint64
}

// MonitorStripes runs the monitoring mechanism of Section 3.10 over
// the given stripes: for every storage slot it probes for (1) a
// recentlist entry older than maxAge — a started but unfinished write
// — or (2) an INIT or expired-lock slot — a crashed node or client.
// Either finding triggers recovery, restoring the system's full
// resiliency. The mechanism works even after more than t_p client
// crashes, as long as no storage node has crashed since.
func (c *Client) MonitorStripes(ctx context.Context, stripes []uint64, maxAge time.Duration) (*MonitorReport, error) {
	report := &MonitorReport{}
	for _, s := range stripes {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		report.StripesProbed++
		needs, err := c.stripeNeedsRecovery(ctx, s, maxAge)
		if err != nil {
			return report, err
		}
		if !needs {
			continue
		}
		c.stats.MonitorTriggered.Add(1)
		switch err := c.Recover(ctx, s); {
		case err == nil:
			report.Recovered = append(report.Recovered, s)
		case err == ErrRecoveryBusy:
			report.Skipped = append(report.Skipped, s)
		default:
			return report, err
		}
	}
	return report, nil
}

// MonitorTracked monitors every stripe this client has touched.
func (c *Client) MonitorTracked(ctx context.Context, maxAge time.Duration) (*MonitorReport, error) {
	return c.MonitorStripes(ctx, c.TrackedStripes(), maxAge)
}

// stripeNeedsRecovery probes all slots of a stripe. An unreachable
// node also triggers recovery: it is reported to the directory and its
// replacement will need reconstruction.
func (c *Client) stripeNeedsRecovery(ctx context.Context, stripeID uint64, maxAge time.Duration) (bool, error) {
	n := c.cfg.Code.N()
	for j := 0; j < n; j++ {
		node, err := c.cfg.Resolver.Node(stripeID, j)
		if err != nil {
			return false, err
		}
		actx, cancel := c.attemptCtx(ctx)
		rep, err := node.Probe(actx, &proto.ProbeReq{Stripe: stripeID, Slot: int32(j)})
		cancel()
		if err != nil {
			c.cfg.Resolver.ReportFailure(stripeID, j, node)
			return true, nil
		}
		if rep.OpMode == proto.Init || rep.LockMode == proto.Expired {
			return true, nil
		}
		if rep.HasRecent && rep.OldestAge > uint64(maxAge) {
			return true, nil
		}
	}
	return false, nil
}

// RunMonitor loops MonitorTracked every interval until the context is
// cancelled. It is the "periodic pings from some monitoring facility"
// deployment of Section 3.5/3.10; run it from one designated client.
func (c *Client) RunMonitor(ctx context.Context, interval, maxAge time.Duration) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if _, err := c.MonitorTracked(ctx, maxAge); err != nil && err != context.Canceled {
				return err
			}
		}
	}
}

package core_test

import (
	"bytes"
	"testing"

	"ecstore/internal/cluster"
	"ecstore/internal/core"
	"ecstore/internal/proto"
)

// scrubCluster writes a stripe and garbage-collects it so the stripe
// is quiescent (empty tid lists) — the precondition for a meaningful
// scrub.
func scrubCluster(t *testing.T) (*cluster.Cluster, *core.Client) {
	t.Helper()
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	for i := 0; i < 2; i++ {
		if err := cl.WriteBlock(ctx, 0, i, val(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := cl.CollectGarbage(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return c, cl
}

func TestScrubCleanStripe(t *testing.T) {
	_, cl := scrubCluster(t)
	res, err := cl.ScrubStripe(ctxT(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != core.ScrubClean {
		t.Fatalf("scrub = %v, want clean", res)
	}
}

func TestScrubBusyStripe(t *testing.T) {
	c := testCluster(t, cluster.Options{K: 2, N: 4})
	ctx := ctxT(t)
	cl := c.Clients[0]
	// A write without GC leaves recentlist entries: busy.
	if err := cl.WriteBlock(ctx, 0, 0, val(1)); err != nil {
		t.Fatal(err)
	}
	res, err := cl.ScrubStripe(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != core.ScrubBusy {
		t.Fatalf("scrub = %v, want busy", res)
	}
}

func TestScrubDetectsBitRot(t *testing.T) {
	c, cl := scrubCluster(t)
	ctx := ctxT(t)
	// Corrupt one parity block directly on the node — silent bit rot
	// that no read would notice (reads only touch data nodes).
	rotParity(t, c, 0)

	res, err := cl.ScrubStripe(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != core.ScrubRepaired {
		t.Fatalf("scrub = %v, want repaired", res)
	}
	mustVerify(t, c, 0)
	// Data must be intact after the repair.
	got, err := cl.ReadBlock(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val(1)) {
		t.Fatal("scrub repair corrupted data")
	}
}

func TestScrubRepairsCrashedNode(t *testing.T) {
	c, cl := scrubCluster(t)
	ctx := ctxT(t)
	c.CrashNodeForStripeSlot(0, 1)
	res, err := cl.ScrubStripe(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != core.ScrubRepaired {
		t.Fatalf("scrub = %v, want repaired", res)
	}
	mustVerify(t, c, 0)
}

func TestScrubTrackedCounts(t *testing.T) {
	c, cl := scrubCluster(t) // stripe 0: written + GC'd => clean
	ctx := ctxT(t)
	// Stripe 2: written, GC'd, then one parity block silently rotted.
	if err := cl.WriteBlock(ctx, 2, 0, val(10)); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := cl.CollectGarbage(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rotParity(t, c, 2)
	// Stripe 1: written WITHOUT GC => busy (in-flight tids).
	if err := cl.WriteBlock(ctx, 1, 0, val(9)); err != nil {
		t.Fatal(err)
	}
	clean, busy, repaired, err := cl.ScrubTracked(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if clean != 1 || busy != 1 || repaired != 1 {
		t.Fatalf("clean/busy/repaired = %d/%d/%d, want 1/1/1", clean, busy, repaired)
	}
	mustVerify(t, c, 2)
}

// rotParity flips a bit in one quiescent parity block of the stripe,
// simulating silent corruption (reconstruct+finalize keeps the tid
// lists empty and the slot NORM).
func rotParity(t *testing.T, c *cluster.Cluster, stripeID uint64) {
	t.Helper()
	ctx := ctxT(t)
	node, _ := c.Dir.Node(stripeID, 3)
	st, err := node.GetState(ctx, &proto.GetStateReq{Stripe: stripeID, Slot: 3})
	if err != nil {
		t.Fatal(err)
	}
	rotted := append([]byte(nil), st.Block...)
	rotted[7] ^= 0x10
	if _, err := node.Reconstruct(ctx, &proto.ReconstructReq{Stripe: stripeID, Slot: 3, CSet: nil, Block: rotted}); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Finalize(ctx, &proto.FinalizeReq{Stripe: stripeID, Slot: 3, Epoch: st.Epoch}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.VerifyStripe(stripeID); ok {
		t.Fatal("bit rot injection failed")
	}
}

func TestScrubResultString(t *testing.T) {
	for res, want := range map[core.ScrubResult]string{
		core.ScrubClean: "clean", core.ScrubBusy: "busy", core.ScrubRepaired: "repaired",
		core.ScrubResult(9): "ScrubResult(9)",
	} {
		if got := res.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", res, got, want)
		}
	}
}
